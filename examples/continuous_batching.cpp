// Continuous-batching demo: the iteration-level scheduler over the paged KV
// cache serving a bursty mix of request lengths on LLaMA2-7B / LiquidServe —
// the runtime loop beneath the Table 1 numbers (Section 6's PagedAttention +
// scheduler components).

#include <cstdio>

#include "serving/scheduler.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace liquid;
using namespace liquid::serving;

int main() {
  const auto hw = simgpu::HardwareSpec::H800();
  const ServingEngine engine(hw, SystemPreset::LiquidServe(),
                             LlmConfig::Llama2_7B());

  // KV pool: what remains of 80 GB after W4A8 weights, paged in 16-token
  // blocks (~64 GiB of INT8 KV for LLaMA2-7B).
  const double pool_bytes = 80e9 - engine.WeightMemoryBytes() - 1.5e9;
  const double block_bytes =
      16 * engine.model().KvBytesPerToken(engine.preset().kv_bits);
  const std::size_t pool_blocks =
      static_cast<std::size_t>(pool_bytes / block_bytes);

  std::printf("== Continuous batching on %s / %s ==\n",
              engine.model().name.c_str(), engine.preset().name.c_str());
  std::printf("KV pool: %zu blocks x 16 tokens (%s)\n\n", pool_blocks,
              HumanBytes(pool_blocks * block_bytes).c_str());

  Rng rng(99);
  ContinuousBatchScheduler sched(engine, pool_blocks, 16, /*max_batch=*/128);
  // A bursty trace: short chats, mid-size completions, a few long documents.
  SeqId next_id = 0;
  for (int i = 0; i < 48; ++i) {
    sched.Submit({next_id++, static_cast<std::size_t>(rng.Int(32, 256)),
                  static_cast<std::size_t>(rng.Int(16, 128))});
  }
  for (int i = 0; i < 8; ++i) {
    sched.Submit({next_id++, static_cast<std::size_t>(rng.Int(1024, 2048)),
                  static_cast<std::size_t>(rng.Int(128, 512))});
  }

  const SchedulerStats stats = sched.RunToCompletion();

  Table t("Run summary");
  t.SetHeader({"metric", "value"});
  t.AddRow({"requests completed", std::to_string(stats.completed)});
  t.AddRow({"requests dropped", std::to_string(stats.dropped)});
  t.AddRow({"engine iterations", std::to_string(stats.iterations)});
  t.AddRow({"preemptions", std::to_string(stats.preemptions)});
  t.AddRow({"peak concurrent sequences", std::to_string(stats.peak_running)});
  t.AddRow({"generated tokens",
            WithCommas(static_cast<long long>(stats.generated_tokens))});
  t.AddRow({"simulated wall clock", HumanTime(stats.simulated_seconds)});
  t.AddRow({"throughput (tokens/s)",
            WithCommas(static_cast<long long>(stats.TokensPerSecond()))});
  t.Print();
  return 0;
}
