// MoE grouped-GEMM study on Mixtral-8x7B expert shapes (paper Sections 5.1
// and 7.3): how the ImFP persistent kernel, a grouped-launch non-persistent
// kernel, and a relaunch-per-expert kernel behave as the per-expert batch
// grows — plus the pipeline ablation on the grouped workload, where the
// paper notes ExCP/ImFP gains are most pronounced.

#include <cstdio>

#include "serving/model_config.hpp"
#include "simgpu/gemm_sim.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace liquid;
using namespace liquid::simgpu;

int main() {
  const HardwareSpec hw = HardwareSpec::H800();
  const serving::LlmConfig mixtral = serving::LlmConfig::Mixtral_8x7B();

  std::printf("== Mixtral-8x7B expert FFN: 8 grouped GEMMs per layer ==\n\n");

  {
    Table t("Launch strategy: gate+up expert GEMM (N=28672, K=4096), grouped x8");
    t.SetHeader({"tokens/expert", "persistent (LiquidGEMM)",
                 "grouped launch", "relaunch per expert"});
    KernelConfig persistent = KernelConfig::For(KernelKind::kLiquidW4A8);
    KernelConfig grouped = persistent;
    grouped.persistent = false;
    KernelConfig relaunch = grouped;
    relaunch.grouped_launch = false;
    GemmSimOptions opt;
    opt.grouped = mixtral.experts;
    for (const std::size_t m : {2u, 8u, 16u, 32u, 64u, 128u}) {
      const GemmShape shape{m, 2u * 14336, 4096};
      t.AddRow({std::to_string(m),
                HumanTime(SimulateGemm(hw, persistent, shape, opt).seconds),
                HumanTime(SimulateGemm(hw, grouped, shape, opt).seconds),
                HumanTime(SimulateGemm(hw, relaunch, shape, opt).seconds)});
    }
    t.Print();
  }

  std::printf("\n");

  {
    Table t("Pipeline ablation on the full Mixtral FFN (both expert GEMMs)");
    t.SetHeader({"batch", "Baseline", "+LQQ", "+LQQ+ExCP", "+LQQ+ImFP",
                 "ImFP speedup"});
    for (const std::size_t batch : {16u, 64u, 256u}) {
      const auto calls = mixtral.LayerGemms(batch);
      const auto run = [&](KernelKind kind) {
        return SimulateGemmSequence(hw, KernelConfig::For(kind),
                                    {calls[2], calls[3]});
      };
      const double base = run(KernelKind::kBaselineW4A8);
      const double lqq = run(KernelKind::kLiquidW4A8Serial);
      const double excp = run(KernelKind::kLiquidW4A8ExCP);
      const double imfp = run(KernelKind::kLiquidW4A8);
      t.AddRow({std::to_string(batch), HumanTime(base), HumanTime(lqq),
                HumanTime(excp), HumanTime(imfp),
                Format("%.2fx", base / imfp)});
    }
    t.Print();
  }

  std::printf(
      "\nThe persistent ImFP kernel streams all experts' tiles through one\n"
      "launch: no relaunch latency, no pipeline drain between experts —\n"
      "the \"inter-GEMM pipelining\" the paper credits for MoE gains.\n");
  return 0;
}
