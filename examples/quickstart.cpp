// Quickstart: the 5-minute tour of the LiquidGEMM public API.
//
//   1. Build an FP32 weight matrix and a calibration activation sample.
//   2. PrepareWeights(): SmoothQuant smoothing + two-level LiquidQuant +
//      dual-MMA supertile packing (all offline).
//   3. LiquidGemm(): per-token activation quantization + W4A8 GEMM with
//      register-level dequantization in the main loop.
//   4. Compare against the FP32 reference and inspect memory savings.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/api.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

using namespace liquid;

int main() {
  // A weight matrix shaped like a small projection layer: 512 output
  // channels, 1024 input features.
  constexpr std::size_t kN = 512, kK = 1024, kBatch = 16, kCalib = 32;
  Rng rng(42);
  MatrixF weights(kN, kK);
  for (auto& v : weights.Flat()) v = static_cast<float>(rng.Normal(0, 0.05));

  // Calibration activations (with a mild outlier channel, as real LLM
  // activations have) drive the SmoothQuant grid search.
  MatrixF calib(kCalib, kK);
  for (auto& v : calib.Flat()) v = static_cast<float>(rng.Normal(0, 1.0));
  for (std::size_t i = 0; i < kCalib; ++i) calib.At(i, 100) *= 25.0f;

  std::printf("== LiquidGEMM quickstart ==\n");
  const PreparedWeights prep = PrepareWeights(weights, calib, {});
  std::printf("offline: smooth alpha = %.1f, group size = %zu\n",
              prep.smooth_alpha, prep.weights.group_size);
  std::printf("weights: FP32 %s -> W4A8 %s (%.1fx smaller)\n",
              HumanBytes(static_cast<double>(weights.size()) * 4).c_str(),
              HumanBytes(static_cast<double>(prep.weights.StorageBytes())).c_str(),
              static_cast<double>(weights.size()) * 4 /
                  static_cast<double>(prep.weights.StorageBytes()));

  // Online: a batch of activations through the W4A8 pipeline.
  MatrixF x(kBatch, kK);
  for (auto& v : x.Flat()) v = static_cast<float>(rng.Normal(0, 1.0));
  for (std::size_t i = 0; i < kBatch; ++i) x.At(i, 100) *= 25.0f;

  const MatrixF reference = GemmReference(x, weights);

  MatrixF x_smoothed = x;
  SmoothActivations(x_smoothed, prep.smooth_scale);
  const MatrixF y = LiquidGemm(x_smoothed, prep.weights);

  std::printf("\nonline: Y = X * W^T, [%zu x %zu] * [%zu x %zu]^T\n", kBatch,
              kK, kN, kK);
  std::printf("relative Frobenius error vs FP32: %.4f\n",
              RelativeFrobeniusError(reference.Flat(), y.Flat()));
  std::printf("SQNR: %.1f dB\n",
              SignalToQuantNoiseDb(reference.Flat(), y.Flat()));

  // The dual-MMA packed path computes the identical result (bit-exact).
  const MatrixF y_packed = GemmW4A8LiquidDualMma(
      QuantizeActivationsPerToken(x_smoothed), prep.packed);
  bool identical = true;
  for (std::size_t i = 0; i < y.size(); ++i) {
    identical &= y.Flat()[i] == y_packed.Flat()[i];
  }
  std::printf("dual-MMA supertile path bit-identical: %s\n",
              identical ? "yes" : "NO (bug!)");
  return identical ? 0 : 1;
}
