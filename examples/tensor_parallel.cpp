// Tensor-parallel deployment study: LLaMA2-70B on 1-8 H800s.
//
// The paper's single-GPU pitch in one table: on the H800 (NVLink cut to
// 400 GB/s), TP scaling pays a steep all-reduce tax, while W4A8 fits the
// whole 70B model in 80 GB — so one GPU per replica beats sharded FP16 on
// cost-per-token.  This example quantifies both sides with the TP engine.

#include <cstdio>

#include "serving/tensor_parallel.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace liquid;
using namespace liquid::serving;

int main() {
  const auto model = LlmConfig::Llama2_70B();
  const ServingWorkload workload{1024, 512, 32};

  for (const auto& hw :
       {simgpu::HardwareSpec::H800(), simgpu::HardwareSpec::H100()}) {
    std::printf("== %s (NVLink %.0f GB/s) — LLaMA2-70B, batch %zu ==\n",
                hw.name.c_str(), hw.nvlink_bw_bytes / 1e9, workload.batch);
    Table t;
    t.SetHeader({"system", "TP", "tokens/s", "tokens/s per GPU",
                 "allreduce/layer", "mem/GPU", "scaling eff"});
    for (const auto& preset :
         {SystemPreset::TrtFp16(), SystemPreset::LiquidServe()}) {
      for (const int tp : {1, 2, 4, 8}) {
        if (!CanShard(model, tp)) continue;
        TensorParallelEngine engine(hw, preset, model, tp);
        const TpResult r = engine.Run(workload);
        if (!r.feasible) {
          t.AddRow({preset.name, std::to_string(tp), "OOM",
                    "-", "-", HumanBytes(r.memory_per_gpu), "-"});
          continue;
        }
        t.AddRow({preset.name, std::to_string(tp),
                  WithCommas(static_cast<long long>(r.tokens_per_second)),
                  WithCommas(static_cast<long long>(r.tokens_per_second / tp)),
                  HumanTime(r.allreduce_seconds_per_layer),
                  HumanBytes(r.memory_per_gpu),
                  r.scaling_efficiency > 0
                      ? Format("%.0f%%", 100 * r.scaling_efficiency)
                      : "-"});
      }
    }
    t.Print();
    std::printf("\n");
  }
  std::printf(
      "Reading: FP16 needs TP>=2 just to fit; W4A8 serves 70B on ONE GPU,\n"
      "and its single-GPU tokens/s-per-GPU beats every sharded FP16 point —\n"
      "especially on the H800, whose cut NVLink taxes each all-reduce.\n");
  return 0;
}
