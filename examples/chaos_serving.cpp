// Chaos serving demo: a fleet under abrupt replica failure and overload,
// with and without SLO admission control.
//
// The episode: 3 replicas absorb a ~2x-overload Poisson trace; halfway
// through, one replica is killed WITHOUT draining — its in-flight work is
// lost (wasted tokens) and re-submitted from scratch through the router (the
// re-route storm).  Run once with unbounded queueing and once with a TTFT
// budget at the router; the second fleet sheds load (429-style rejections)
// instead of letting the backlog push tail TTFT out by an order of magnitude.
//
// Usage: chaos_serving [replicas] [requests] [ttft_budget_seconds]
//                      [--seed N] [--trace-out PATH] [--metrics-out PATH]
//   replicas     fleet size, >= 2 (default 3)
//   requests     trace size (default 240)
//   ttft_budget  SLO budget for the admission-controlled run (default 1.0)
//   --seed       trace seed (default 1337); the telemetry sinks capture the
//                SLO-controlled run (full flag list: util/cli_flags.hpp)

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "obs/prof/prof_sink.hpp"
#include "obs/telemetry_sink.hpp"
#include "util/cli_flags.hpp"
#include "util/strings.hpp"

using namespace liquid;
using namespace liquid::cluster;

namespace {

ReplicaSpec ChaosSpec() {
  ReplicaSpec spec;
  spec.hw = simgpu::HardwareSpec::H800();
  spec.preset = serving::SystemPreset::LiquidServe();
  spec.model = serving::LlmConfig::Llama2_7B();
  spec.kv_pool_blocks = 512;
  spec.block_tokens = 16;
  spec.max_batch = 16;
  return spec;
}

/// --threads: worker count for every episode (results are identical to the
/// serial oracle by the parallel runtime's contract).
std::size_t g_threads = 1;

FleetStats RunEpisode(std::size_t replicas,
                      const std::vector<serving::TimedRequest>& trace,
                      SloConfig slo, obs::TraceRecorder* recorder = nullptr,
                      obs::MetricsRegistry* metrics = nullptr) {
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding, AutoscaleConfig{}, slo);
  sim.SetThreads(g_threads);
  for (std::size_t i = 0; i < replicas; ++i) sim.AddReplica(ChaosSpec());
  sim.ScheduleKill({trace[trace.size() / 2].arrival_seconds, /*replica=*/1});
  sim.AttachTelemetry(recorder, metrics);
  return sim.Run(trace);
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags = ParseCliFlags(argc, argv);
  obs::MaybeEnableProfiler(flags);
  g_threads = flags.threads;
  const auto& pos = flags.positional;
  const std::size_t replicas =
      pos.size() > 0 ? std::max(2L, std::atol(pos[0].c_str())) : 3;
  const std::size_t requests =
      pos.size() > 1 ? std::max(16L, std::atol(pos[1].c_str())) : 240;
  const double budget = pos.size() > 2 ? std::atof(pos[2].c_str()) : 1.0;
  obs::TraceRecorder recorder;
  obs::MetricsRegistry metrics;
  const bool telemetry = flags.WantsTrace() || flags.WantsMetrics();

  // Offered load ~2x what the fleet retires (one replica of this spec
  // serves roughly 18 req/s of this mix): queues grow without shedding.
  serving::TraceConfig config;
  config.arrival_rate_per_s = 110.0;
  config.count = requests;
  config.prompt_min = 256;
  config.prompt_max = 2048;
  config.output_min = 64;
  config.output_max = 256;
  config.sessions = 24;
  const auto trace = serving::GenerateTrace(
      config, flags.seed_set ? flags.seed : 1337);

  std::printf(
      "== Chaos: %zu x %s, %zu requests at %.0f req/s, replica 1 killed "
      "mid-run ==\n\n",
      replicas, ChaosSpec().Label().c_str(), trace.size(),
      config.arrival_rate_per_s);

  std::printf("-- unbounded queueing (no SLO) --\n");
  const FleetStats open = RunEpisode(replicas, trace, SloConfig{});
  PrintFleetStats(open);

  std::printf("\n-- SLO admission control (TTFT budget %.2fs) --\n", budget);
  const FleetStats slo =
      RunEpisode(replicas, trace, SloConfig{budget, /*reject_above=*/1.0},
                 telemetry ? &recorder : nullptr,
                 telemetry ? &metrics : nullptr);
  PrintFleetStats(slo);

  std::printf(
      "\np99 TTFT %s -> %s; completed %zu -> %zu (rejected %zu); "
      "wasted tokens %.0f -> %.0f\n",
      HumanTime(open.ttft.p99).c_str(), HumanTime(slo.ttft.p99).c_str(),
      open.completed, slo.completed, slo.rejected_requests,
      open.wasted_tokens, slo.wasted_tokens);
  if (!obs::WriteProfile(flags)) return 1;
  return obs::WriteTelemetry(flags, recorder, metrics) ? 0 : 1;
}
