// Cluster serving demo: N replica engines behind a pluggable router serving
// a multi-tenant Poisson trace — the fleet layer above the single-engine
// Table 1 loop.  Chat traffic (short prompts, many sessions) and document
// traffic (long prompts) share the fleet; the router policy decides who
// absorbs the bursts, and the fleet summary reports the p50/p95/p99
// TTFT/TPOT SLO numbers operators watch.
//
// Usage: cluster_serving [policy] [replicas] [requests]
//                        [--seed N] [--trace-out PATH] [--metrics-out PATH]
//   policy   round_robin | least_outstanding | least_kv | affinity |
//            prefix_aware (default least_kv)
//   replicas number of H800/LiquidServe replicas, >= 1 (default 4)
//   requests total trace size, split 3:1 chat:document (default 240)
//   --seed   trace seed (default 2024); full flag list: util/cli_flags.hpp

#include <cstdio>
#include <cstdlib>
#include <string>

#include "cluster/cluster_sim.hpp"
#include "obs/prof/prof_sink.hpp"
#include "obs/telemetry_sink.hpp"
#include "util/cli_flags.hpp"
#include "util/strings.hpp"

using namespace liquid;
using namespace liquid::cluster;

int main(int argc, char** argv) {
  const CliFlags flags = ParseCliFlags(argc, argv);
  obs::MaybeEnableProfiler(flags);
  const auto& pos = flags.positional;
  RoutePolicy policy = RoutePolicy::kLeastKvLoad;
  if (pos.size() > 0) {
    const auto parsed = ParseRoutePolicy(pos[0]);
    if (!parsed) {
      std::fprintf(stderr, "unknown policy '%s' (want %s)\n", pos[0].c_str(),
                   RoutePolicyNames().c_str());
      return 1;
    }
    policy = *parsed;
  }
  const std::size_t replicas =
      pos.size() > 1 ? std::max(1L, std::atol(pos[1].c_str())) : 4;
  const std::size_t requests =
      pos.size() > 2 ? std::max(8L, std::atol(pos[2].c_str())) : 240;

  // One replica = LLaMA2-7B on H800 under the LiquidServe preset, with a
  // deliberately tight paged-KV pool (1024 blocks x 16 tokens) so routing
  // quality is visible as preemption/TTFT differences.
  ReplicaSpec spec;
  spec.hw = simgpu::HardwareSpec::H800();
  spec.preset = serving::SystemPreset::LiquidServe();
  spec.model = serving::LlmConfig::Llama2_7B();
  spec.kv_pool_blocks = 1024;
  spec.block_tokens = 16;
  spec.max_batch = 64;

  // Two tenants superposed: bursty short chats and occasional long documents.
  std::vector<serving::TenantConfig> tenants(2);
  tenants[0].tenant = 1;  // chat
  tenants[0].trace.arrival_rate_per_s = 24.0;
  tenants[0].trace.count = requests * 3 / 4;
  tenants[0].trace.prompt_min = 32;
  tenants[0].trace.prompt_max = 512;
  tenants[0].trace.output_min = 16;
  tenants[0].trace.output_max = 128;
  tenants[0].sessions = 16;
  tenants[1].tenant = 2;  // documents
  tenants[1].trace.arrival_rate_per_s = 6.0;
  tenants[1].trace.count = requests - tenants[0].trace.count;
  tenants[1].trace.prompt_min = 1024;
  tenants[1].trace.prompt_max = 8192;
  tenants[1].trace.output_min = 64;
  tenants[1].trace.output_max = 256;
  tenants[1].sessions = 4;
  const auto trace = serving::GenerateMultiTenantTrace(
      tenants, flags.seed_set ? flags.seed : 2024);

  std::printf("== Cluster serving: %zu x %s, %s, policy=%s, %zu requests ==\n\n",
              replicas, spec.Label().c_str(), spec.model.name.c_str(),
              ToString(policy), trace.size());

  obs::TraceRecorder recorder;
  obs::MetricsRegistry metrics;
  const bool telemetry = flags.WantsTrace() || flags.WantsMetrics();

  ClusterSimulator sim(policy);
  sim.SetThreads(flags.threads);
  for (std::size_t i = 0; i < replicas; ++i) sim.AddReplica(spec);
  sim.AttachTelemetry(telemetry ? &recorder : nullptr,
                      telemetry ? &metrics : nullptr);
  const FleetStats stats = sim.Run(trace);
  PrintFleetStats(stats);
  if (!obs::WriteProfile(flags)) return 1;
  return obs::WriteTelemetry(flags, recorder, metrics) ? 0 : 1;
}
