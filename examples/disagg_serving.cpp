// Disaggregated serving demo: one fleet, two ways.
//
// The episode: kilotoken prompts with short answers — the mix where a
// monolithic replica's decode steps keep stalling behind other requests'
// prefills.  First the fleet runs unified (every replica prefills AND
// decodes); then the same six replicas are split into a prefill pool and a
// decode pool connected by an NVLink-class interconnect: prompts run to
// their first token on a prefill replica, the sequence's KV is exported and
// migrated over the link (layer-wise streaming hides most of the bytes
// under the prefill itself), and decode continues on a decode replica no
// prefill will ever interrupt.  The printout narrates the migration
// economics: handoffs, KV bytes moved, visible stalls, and the
// interference-free decode tail.
//
// Usage: disagg_serving [prefill_replicas] [decode_replicas] [requests]
//                       [--seed N] [--trace-out PATH] [--metrics-out PATH]
//   prefill_replicas  size of the prefill pool (default 3)
//   decode_replicas   size of the decode pool (default 3)
//   requests          trace size (default 200)
//   --seed            trace seed (default 2025); the telemetry sinks capture
//                     the disaggregated run (full list: util/cli_flags.hpp)

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "obs/prof/prof_sink.hpp"
#include "obs/telemetry_sink.hpp"
#include "util/cli_flags.hpp"
#include "util/strings.hpp"

using namespace liquid;
using namespace liquid::cluster;

namespace {

ReplicaSpec DisaggSpec(ReplicaRole role) {
  ReplicaSpec spec;
  spec.hw = simgpu::HardwareSpec::H800();
  spec.preset = serving::SystemPreset::LiquidServe();
  spec.model = serving::LlmConfig::Llama2_7B();
  spec.kv_pool_blocks = 4096;
  spec.block_tokens = 16;
  spec.max_batch = 16;
  spec.role = role;
  // The prefill pool runs chunked by default (2048-token chunks): a fresh
  // prompt starts within one chunk instead of behind a whole competing
  // kilotoken prefill.
  if (role == ReplicaRole::kPrefill) {
    spec.options.prefill_chunk_tokens = 2048;
  }
  spec.dollars_per_hour = role == ReplicaRole::kPrefill ? 2.8 : 2.2;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags = ParseCliFlags(argc, argv);
  obs::MaybeEnableProfiler(flags);
  const auto& pos = flags.positional;
  const std::size_t prefills =
      pos.size() > 0 ? static_cast<std::size_t>(std::atoi(pos[0].c_str())) : 3;
  const std::size_t decodes =
      pos.size() > 1 ? static_cast<std::size_t>(std::atoi(pos[1].c_str())) : 3;
  const std::size_t requests =
      pos.size() > 2 ? static_cast<std::size_t>(std::atoi(pos[2].c_str()))
                     : 200;

  serving::TraceConfig config;
  config.arrival_rate_per_s = 4.7 * static_cast<double>(prefills + decodes);
  config.count = requests;
  config.prompt_min = 2048;
  config.prompt_max = 8192;
  config.output_min = 32;
  config.output_max = 128;
  config.sessions = 32;
  const std::vector<serving::TimedRequest> trace =
      serving::GenerateTrace(config, flags.seed_set ? flags.seed : 2025);

  std::printf(
      "trace: %zu requests, %.0f/s, prompts %zu-%zu tokens, outputs %zu-%zu\n\n",
      trace.size(), config.arrival_rate_per_s, config.prompt_min,
      config.prompt_max, config.output_min, config.output_max);

  // ---- Unified baseline: same replica count, everyone does everything.
  std::printf("=== unified x%zu ===\n", prefills + decodes);
  ClusterSimulator unified(RoutePolicy::kLeastOutstanding);
  unified.SetThreads(flags.threads);
  for (std::size_t i = 0; i < prefills + decodes; ++i) {
    unified.AddReplica(DisaggSpec(ReplicaRole::kUnified));
  }
  const FleetStats base = unified.Run(trace);
  PrintFleetStats(base);

  // ---- Disaggregated: prefill pool + decode pool over a 400 GB/s link.
  std::printf("\n=== disaggregated %zuP : %zuD over 400 GB/s ===\n", prefills,
              decodes);
  DisaggConfig disagg;
  disagg.interconnect.bandwidth_gb_per_s = 400.0;
  disagg.max_migration_seconds = 0.25;
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding, {}, {}, {}, disagg);
  sim.SetThreads(flags.threads);
  for (std::size_t i = 0; i < prefills; ++i) {
    sim.AddReplica(DisaggSpec(ReplicaRole::kPrefill));
  }
  for (std::size_t i = 0; i < decodes; ++i) {
    sim.AddReplica(DisaggSpec(ReplicaRole::kDecode));
  }
  obs::TraceRecorder recorder;
  obs::MetricsRegistry metrics;
  const bool telemetry = flags.WantsTrace() || flags.WantsMetrics();
  sim.AttachTelemetry(telemetry ? &recorder : nullptr,
                      telemetry ? &metrics : nullptr);
  const FleetStats split = sim.Run(trace);
  PrintFleetStats(split);

  std::printf(
      "\nthe story: %zu prompts prefilled in the prefill pool, %zu migrated "
      "%.1f MB of KV\n(p50 stall %s, p99 %s), %zu decoded locally when "
      "migration did not pay.\n",
      split.disagg.prefill_handoffs, split.disagg.migrated_requests,
      split.disagg.migrated_kv_bytes / 1e6,
      HumanTime(split.disagg.migration_seconds.p50).c_str(),
      HumanTime(split.disagg.migration_seconds.p99).c_str(),
      split.disagg.local_decode_fallbacks);
  std::printf(
      "p99 TPOT: unified %s -> disaggregated %s (interference-free decode), "
      "p99 TTFT %s -> %s,\ncost $%.2f/1M tok -> $%.2f/1M tok.\n",
      HumanTime(base.tpot.p99).c_str(), HumanTime(split.tpot.p99).c_str(),
      HumanTime(base.ttft.p99).c_str(), HumanTime(split.ttft.p99).c_str(),
      base.dollars_per_m_tokens, split.dollars_per_m_tokens);
  if (!obs::WriteProfile(flags)) return 1;
  return obs::WriteTelemetry(flags, recorder, metrics) ? 0 : 1;
}
