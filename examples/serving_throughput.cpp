// Serving-throughput explorer: sweeps batch size for a chosen model under
// every system preset and prints throughput, latency, and memory — the tool
// you would use to pick a deployment configuration (paper Section 7.2).
//
// Usage: serving_throughput [model]
//   model in {llama2-7b, llama2-13b, llama2-70b, llama3-8b, mistral-7b,
//             yi-34b, llama1-30b, mixtral-8x7b}; default llama2-7b.

#include <cstdio>
#include <cstring>

#include "serving/engine.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace liquid;
using namespace liquid::serving;

namespace {

LlmConfig PickModel(const char* name) {
  for (const auto& m : LlmConfig::PaperModels()) {
    std::string key = m.name;
    for (auto& c : key) c = c == ' ' ? '-' : static_cast<char>(std::tolower(c));
    if (key == name) return m;
  }
  std::fprintf(stderr, "unknown model '%s', using LLaMA2-7B\n", name);
  return LlmConfig::Llama2_7B();
}

}  // namespace

int main(int argc, char** argv) {
  const LlmConfig model =
      argc > 1 ? PickModel(argv[1]) : LlmConfig::Llama2_7B();
  const auto hw = simgpu::HardwareSpec::H800();
  constexpr std::size_t kIn = 1024, kOut = 512;

  std::printf("== Serving sweep: %s on %s (80 GB), in/out %zu/%zu ==\n\n",
              model.name.c_str(), hw.name.c_str(), kIn, kOut);

  for (const auto& preset : SystemPreset::PaperSystems()) {
    const ServingEngine engine(hw, preset, model);
    if (!preset.Supports(model)) {
      std::printf("-- %s: model not supported --\n\n", preset.name.c_str());
      continue;
    }
    Table t(Format("%s (weights %s)", preset.name.c_str(),
                   HumanBytes(engine.WeightMemoryBytes()).c_str()));
    t.SetHeader({"batch", "tokens/s", "decode step", "prefill", "memory"});
    bool any = false;
    for (std::size_t b = 1; b <= 256; b *= 2) {
      const ServingResult r = engine.Run({kIn, kOut, b});
      if (r.oom) {
        t.AddRow({std::to_string(b), "OOM", "-", "-",
                  HumanBytes(r.memory_bytes)});
        break;
      }
      any = true;
      t.AddRow({std::to_string(b),
                WithCommas(static_cast<long long>(r.tokens_per_second)),
                HumanTime(r.decode_step_seconds),
                HumanTime(r.prefill_seconds), HumanBytes(r.memory_bytes)});
    }
    const auto peak = engine.PeakThroughput(kIn, kOut);
    if (any && !peak.oom) {
      t.AddRule();
      t.AddRow({Format("peak @%zu", peak.batch),
                WithCommas(static_cast<long long>(peak.tokens_per_second)),
                "-", "-", "-"});
    }
    t.Print();
    std::printf("\n");
  }
  return 0;
}
