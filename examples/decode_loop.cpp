// End-to-end autoregressive decoding with the full quantized stack:
// every projection runs through LiquidGEMM (W4A8), and the KV cache lives in
// the paged store as real INT8 bytes — the complete Figure 9 dataflow, token
// by token, compared against an identical FP32 decode.
//
// The check that matters for serving: the *sampled tokens* (greedy argmax
// over a small vocabulary head) agree with the FP32 run for the large
// majority of steps, i.e. quantization error does not change what the model
// says, only its last bits.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/api.hpp"
#include "serving/paged_kv_store.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace liquid;
using namespace liquid::serving;

namespace {

constexpr std::size_t kHidden = 128;
constexpr std::size_t kHeads = 4;
constexpr std::size_t kHeadDim = kHidden / kHeads;
constexpr std::size_t kFfn = 256;
constexpr std::size_t kVocab = 16;
constexpr std::size_t kSteps = 32;

MatrixF RandomMatrix(std::size_t r, std::size_t c, Rng& rng, double sd) {
  MatrixF m(r, c);
  for (auto& v : m.Flat()) v = static_cast<float>(rng.Normal(0, sd));
  return m;
}

void RmsNorm(std::vector<float>& x) {
  double sq = 0;
  for (const float v : x) sq += static_cast<double>(v) * v;
  const float inv = static_cast<float>(
      1.0 / std::sqrt(sq / static_cast<double>(x.size()) + 1e-6));
  for (float& v : x) v *= inv;
}

struct Weights {
  MatrixF embed;  // [vocab x hidden]
  MatrixF wq, wk, wv, wo, w_gate, w_up, w_down, lm_head;
};

struct QuantizedWeights {
  LqqWeights wq, wk, wv, wo, w_gate, w_up, w_down, lm_head;
};

std::vector<float> MatVec(const MatrixF& w, const std::vector<float>& x) {
  std::vector<float> y(w.rows(), 0.0f);
  for (std::size_t n = 0; n < w.rows(); ++n) {
    double acc = 0;
    for (std::size_t k = 0; k < w.cols(); ++k) acc += w.At(n, k) * x[k];
    y[n] = static_cast<float>(acc);
  }
  return y;
}

std::vector<float> QuantMatVec(const LqqWeights& w,
                               const std::vector<float>& x) {
  MatrixF xm(1, x.size());
  std::copy(x.begin(), x.end(), xm.Flat().begin());
  const MatrixF y = LiquidGemm(xm, w);
  return {y.Flat().begin(), y.Flat().end()};
}

/// Attention of one query over the cached K/V (already dequantized).
std::vector<float> Attend(const std::vector<float>& q,
                          const std::vector<float>& k_cache,
                          const std::vector<float>& v_cache,
                          std::size_t tokens) {
  std::vector<float> out(kHidden, 0.0f);
  const float scale = 1.0f / std::sqrt(static_cast<float>(kHeadDim));
  for (std::size_t h = 0; h < kHeads; ++h) {
    std::vector<float> s(tokens);
    float maxs = -1e30f;
    for (std::size_t t = 0; t < tokens; ++t) {
      float dot = 0;
      for (std::size_t d = 0; d < kHeadDim; ++d) {
        dot += q[h * kHeadDim + d] * k_cache[t * kHidden + h * kHeadDim + d];
      }
      s[t] = dot * scale;
      maxs = std::max(maxs, s[t]);
    }
    float denom = 0;
    for (std::size_t t = 0; t < tokens; ++t) {
      s[t] = std::exp(s[t] - maxs);
      denom += s[t];
    }
    for (std::size_t d = 0; d < kHeadDim; ++d) {
      float acc = 0;
      for (std::size_t t = 0; t < tokens; ++t) {
        acc += s[t] / denom * v_cache[t * kHidden + h * kHeadDim + d];
      }
      out[h * kHeadDim + d] = acc;
    }
  }
  return out;
}

template <typename ProjFn, typename KvAppend, typename KvGather>
std::size_t DecodeStep(std::size_t token, const MatrixF& embed, ProjFn&& proj,
                       KvAppend&& kv_append, KvGather&& kv_gather,
                       std::size_t step, std::vector<float>* logits_out) {
  std::vector<float> x(embed.Row(token).begin(), embed.Row(token).end());
  std::vector<float> normed = x;
  RmsNorm(normed);
  const auto q = proj(0, normed);
  const auto k = proj(1, normed);
  const auto v = proj(2, normed);
  kv_append(k, v);
  std::vector<float> k_cache, v_cache;
  kv_gather(k_cache, v_cache);
  const auto attn = Attend(q, k_cache, v_cache, step + 1);
  const auto o = proj(3, attn);
  std::vector<float> resid = x;
  for (std::size_t i = 0; i < kHidden; ++i) resid[i] += o[i];

  std::vector<float> f = resid;
  RmsNorm(f);
  const auto gate = proj(4, f);
  const auto up = proj(5, f);
  std::vector<float> act(kFfn);
  for (std::size_t i = 0; i < kFfn; ++i) {
    act[i] = gate[i] / (1.0f + std::exp(-gate[i])) * up[i];
  }
  const auto down = proj(6, act);
  for (std::size_t i = 0; i < kHidden; ++i) resid[i] += down[i];

  RmsNorm(resid);
  const auto logits = proj(7, resid);
  if (logits_out) *logits_out = logits;
  return static_cast<std::size_t>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

}  // namespace

int main() {
  Rng rng(2025);
  Weights w{RandomMatrix(kVocab, kHidden, rng, 1.0),
            RandomMatrix(kHidden, kHidden, rng, 0.09),
            RandomMatrix(kHidden, kHidden, rng, 0.09),
            RandomMatrix(kHidden, kHidden, rng, 0.09),
            RandomMatrix(kHidden, kHidden, rng, 0.09),
            RandomMatrix(kFfn, kHidden, rng, 0.09),
            RandomMatrix(kFfn, kHidden, rng, 0.09),
            RandomMatrix(kHidden, kFfn, rng, 0.09),
            RandomMatrix(kVocab, kHidden, rng, 0.09)};
  QuantizedWeights qw;
  qw.wq = QuantizeWeightsLqq(w.wq);
  qw.wk = QuantizeWeightsLqq(w.wk);
  qw.wv = QuantizeWeightsLqq(w.wv);
  qw.wo = QuantizeWeightsLqq(w.wo);
  qw.w_gate = QuantizeWeightsLqq(w.w_gate);
  qw.w_up = QuantizeWeightsLqq(w.w_up);
  qw.w_down = QuantizeWeightsLqq(w.w_down);
  qw.lm_head = QuantizeWeightsLqq(w.lm_head);

  // Exact decode: FP32 GEMMs + FP32 KV cache.
  std::vector<float> exact_k, exact_v;
  auto exact_proj = [&](int which, const std::vector<float>& x) {
    const MatrixF* mats[] = {&w.wq, &w.wk, &w.wv, &w.wo,
                             &w.w_gate, &w.w_up, &w.w_down, &w.lm_head};
    return MatVec(*mats[which], x);
  };

  // Quantized decode: W4A8 GEMMs + INT8 paged KV.
  KvInt8Params kv_params;
  kv_params.channel_scale.assign(kHidden, 0.02f);
  PagedKvStore store(64, 4, kHeads, kHeadDim, kv_params, kv_params);
  store.AddSequence(1);
  auto quant_proj = [&](int which, const std::vector<float>& x) {
    const LqqWeights* mats[] = {&qw.wq, &qw.wk, &qw.wv, &qw.wo,
                                &qw.w_gate, &qw.w_up, &qw.w_down, &qw.lm_head};
    return QuantMatVec(*mats[which], x);
  };

  std::printf("== Autoregressive decode: FP32 vs full W4A8 + INT8 paged KV ==\n");
  std::size_t tok_exact = 0;
  std::size_t tok_quant = 0;
  std::size_t agree = 0;
  std::vector<double> logit_err;
  for (std::size_t step = 0; step < kSteps; ++step) {
    std::vector<float> logits_e, logits_q;
    tok_exact = DecodeStep(
        tok_exact, w.embed, exact_proj,
        [&](const std::vector<float>& k, const std::vector<float>& v) {
          exact_k.insert(exact_k.end(), k.begin(), k.end());
          exact_v.insert(exact_v.end(), v.begin(), v.end());
        },
        [&](std::vector<float>& ks, std::vector<float>& vs) {
          ks = exact_k;
          vs = exact_v;
        },
        step, &logits_e);
    tok_quant = DecodeStep(
        tok_quant, w.embed, quant_proj,
        [&](const std::vector<float>& k, const std::vector<float>& v) {
          store.AppendToken(1, k, v);
        },
        [&](std::vector<float>& ks, std::vector<float>& vs) {
          store.GatherSequence(1, ks, vs);
        },
        step, &logits_q);
    agree += tok_exact == tok_quant;
    logit_err.push_back(RelativeFrobeniusError(
        std::span<const float>(logits_e), std::span<const float>(logits_q)));
    // Keep the trajectories comparable: feed the exact token to both.
    tok_quant = tok_exact;
  }

  const Summary err = Summarize(std::span<const double>(logit_err));
  std::printf("steps: %zu, token agreement: %zu/%zu (%.0f%%)\n", kSteps, agree,
              kSteps, 100.0 * static_cast<double>(agree) / kSteps);
  std::printf("logit relative error: mean %.4f, max %.4f\n", err.mean,
              err.max);
  std::printf("KV cache: %zu tokens across %zu paged blocks (INT8)\n",
              store.SequenceTokens(1), store.used_blocks());
  const bool ok = agree >= kSteps * 8 / 10 && err.max < 0.2;
  std::printf("%s\n", ok ? "PASS: quantized decode tracks FP32 decode."
                         : "FAIL: quantized decode diverged!");
  return ok ? 0 : 1;
}
