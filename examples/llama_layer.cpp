// One LLaMA decoder layer, end to end, through the W4A8 pipeline — the
// dataflow of Figure 9: RMSNorm -> (QKV GEMM) -> attention -> (O GEMM) ->
// residual -> RMSNorm -> (gate/up GEMM) -> SwiGLU -> (down GEMM) -> residual,
// with every projection served by LiquidGEMM and compared against an FP32
// run of the same layer.
//
// The model is a scaled-down LLaMA (hidden 256, 4 heads, FFN 512) so the
// example runs in milliseconds while exercising every numerical path.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/api.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace liquid;

namespace {

constexpr std::size_t kHidden = 256;
constexpr std::size_t kHeads = 4;
constexpr std::size_t kHeadDim = kHidden / kHeads;
constexpr std::size_t kFfn = 512;
constexpr std::size_t kSeq = 24;  // tokens (prefill-style, causal)

MatrixF RandomMatrix(std::size_t r, std::size_t c, Rng& rng, double sd) {
  MatrixF m(r, c);
  for (auto& v : m.Flat()) v = static_cast<float>(rng.Normal(0, sd));
  return m;
}

void RmsNorm(MatrixF& x) {
  for (std::size_t i = 0; i < x.rows(); ++i) {
    double sq = 0;
    for (const float v : x.Row(i)) sq += static_cast<double>(v) * v;
    const float inv =
        static_cast<float>(1.0 / std::sqrt(sq / static_cast<double>(x.cols()) + 1e-6));
    for (float& v : x.Row(i)) v *= inv;
  }
}

/// Causal softmax attention over all heads (FP32; the paper keeps attention
/// in its own kernels — FlashAttention-2 — outside the W4A8 GEMM path).
MatrixF Attention(const MatrixF& q, const MatrixF& k, const MatrixF& v) {
  MatrixF out(kSeq, kHidden);
  const float scale = 1.0f / std::sqrt(static_cast<float>(kHeadDim));
  for (std::size_t h = 0; h < kHeads; ++h) {
    const std::size_t off = h * kHeadDim;
    for (std::size_t i = 0; i < kSeq; ++i) {
      // scores over j <= i
      std::vector<float> score(i + 1);
      float maxs = -1e30f;
      for (std::size_t j = 0; j <= i; ++j) {
        float dot = 0;
        for (std::size_t d = 0; d < kHeadDim; ++d) {
          dot += q.At(i, off + d) * k.At(j, off + d);
        }
        score[j] = dot * scale;
        maxs = std::max(maxs, score[j]);
      }
      float denom = 0;
      for (std::size_t j = 0; j <= i; ++j) {
        score[j] = std::exp(score[j] - maxs);
        denom += score[j];
      }
      for (std::size_t d = 0; d < kHeadDim; ++d) {
        float acc = 0;
        for (std::size_t j = 0; j <= i; ++j) {
          acc += score[j] / denom * v.At(j, off + d);
        }
        out.At(i, off + d) = acc;
      }
    }
  }
  return out;
}

MatrixF Silu(const MatrixF& gate, const MatrixF& up) {
  MatrixF out(gate.rows(), gate.cols());
  for (std::size_t i = 0; i < gate.size(); ++i) {
    const float g = gate.Flat()[i];
    out.Flat()[i] = g / (1.0f + std::exp(-g)) * up.Flat()[i];
  }
  return out;
}

struct LayerWeights {
  MatrixF wq, wk, wv, wo, w_gate, w_up, w_down;
};

/// Runs the layer with a pluggable GEMM. `gemm(x, w)` computes x * w^T.
template <typename Gemm>
MatrixF RunLayer(const MatrixF& input, const LayerWeights& w, Gemm&& gemm) {
  MatrixF x = input;
  RmsNorm(x);
  const MatrixF q = gemm(x, w.wq);
  const MatrixF k = gemm(x, w.wk);
  const MatrixF v = gemm(x, w.wv);
  const MatrixF attn = Attention(q, k, v);
  const MatrixF o = gemm(attn, w.wo);
  MatrixF resid = input;
  for (std::size_t i = 0; i < resid.size(); ++i) resid.Flat()[i] += o.Flat()[i];

  MatrixF ffn_in = resid;
  RmsNorm(ffn_in);
  const MatrixF gate = gemm(ffn_in, w.w_gate);
  const MatrixF up = gemm(ffn_in, w.w_up);
  const MatrixF act = Silu(gate, up);
  const MatrixF down = gemm(act, w.w_down);
  for (std::size_t i = 0; i < resid.size(); ++i) {
    resid.Flat()[i] += down.Flat()[i];
  }
  return resid;
}

}  // namespace

int main() {
  Rng rng(7);
  LayerWeights w{
      RandomMatrix(kHidden, kHidden, rng, 0.06),
      RandomMatrix(kHidden, kHidden, rng, 0.06),
      RandomMatrix(kHidden, kHidden, rng, 0.06),
      RandomMatrix(kHidden, kHidden, rng, 0.06),
      RandomMatrix(kFfn, kHidden, rng, 0.06),
      RandomMatrix(kFfn, kHidden, rng, 0.06),
      RandomMatrix(kHidden, kFfn, rng, 0.06),
  };
  const MatrixF input = RandomMatrix(kSeq, kHidden, rng, 1.0);

  std::printf("== LLaMA decoder layer through LiquidGEMM (Figure 9 dataflow) ==\n");
  std::printf("hidden %zu, heads %zu, ffn %zu, seq %zu\n\n", kHidden, kHeads,
              kFfn, kSeq);

  // FP32 reference layer.
  const MatrixF y_ref = RunLayer(input, w, [](const MatrixF& x, const MatrixF& ww) {
    return GemmReference(x, ww);
  });

  // W4A8 layer: every projection quantized offline, activations per token.
  const MatrixF y_w4a8 = RunLayer(input, w, [](const MatrixF& x, const MatrixF& ww) {
    return LiquidGemm(x, QuantizeWeightsLqq(ww));
  });

  // W8A8 baseline layer.
  const MatrixF y_w8a8 = RunLayer(input, w, [](const MatrixF& x, const MatrixF& ww) {
    return GemmW8A8(QuantizeActivationsPerToken(x), QuantizeWeightsW8A8(ww));
  });

  std::printf("layer output error vs FP32 (relative Frobenius):\n");
  std::printf("  W8A8 (TRT-style)      : %.4f\n",
              RelativeFrobeniusError(y_ref.Flat(), y_w8a8.Flat()));
  std::printf("  W4A8 (LiquidGEMM/LQQ) : %.4f\n",
              RelativeFrobeniusError(y_ref.Flat(), y_w4a8.Flat()));
  std::printf(
      "\nBoth residual streams stay close to FP32 through norms, attention,\n"
      "SwiGLU and two quantized GEMM stages — the W4A8 path loses ~one\n"
      "extra bit of precision in exchange for 4x smaller weights.\n");
  return 0;
}
