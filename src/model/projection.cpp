#include "model/projection.hpp"

#include "util/strings.hpp"

namespace liquid::model {

std::vector<GenerationSpec> ProjectGenerations(int future_parts,
                                               double compute_growth,
                                               double bw_growth) {
  std::vector<GenerationSpec> out;
  // Published datacenter parts (dense INT8 tensor ops, HBM bandwidth).
  out.push_back({"V100", 125e12 /*no INT8 TC: FP16 rate*/, 0.9e12});
  out.push_back({"A100", 624e12, 2.0e12});
  out.push_back({"H100", 1978.9e12, 3.3e12});
  GenerationSpec last = out.back();
  for (int i = 1; i <= future_parts; ++i) {
    GenerationSpec next;
    next.name = Format("gen+%d", i);
    next.int8_ops = last.int8_ops * compute_growth;
    next.mem_bw = last.mem_bw * bw_growth;
    out.push_back(next);
    last = next;
  }
  return out;
}

std::vector<TransitionPoint> TransitionTrend(
    const std::vector<GenerationSpec>& generations) {
  std::vector<TransitionPoint> out;
  double a100_w8 = 0;
  for (const GenerationSpec& g : generations) {
    TransitionPoint p;
    p.generation = g.name;
    p.w8a8_batch = g.int8_ops * 1.0 / (2.0 * g.mem_bw);
    p.w4a8_batch = g.int8_ops * 0.5 / (2.0 * g.mem_bw);
    if (g.name == "A100") a100_w8 = p.w8a8_batch;
    p.ratio_vs_a100 = a100_w8 > 0 ? p.w8a8_batch / a100_w8 : 0;
    out.push_back(p);
  }
  return out;
}

double KvBytesToSaturate(double transition_batch, double seq_len,
                         double kv_bytes_per_token) {
  return transition_batch * seq_len * kv_bytes_per_token;
}

}  // namespace liquid::model
