#pragma once
// Analytical cost model of pipelined W4A8 GEMM execution (paper Section 3.2,
// Equations 3–6) and the design-space implications of Section 3.3.
//
// The model predicts GEMM time from five quantities: memory bandwidth,
// CUDA-core throughput, tensor-core throughput for the MMA dtype, the weight
// bit width, and the per-element dequantization instruction cost alpha:
//
//   T = ceil(M / Mt) * max( N*K / Phi_BD,
//                           alpha*N*K / Phi_CUDA + min(Mt,M)*2*N*K / Phi_TC )
//
// It is deliberately simpler than the discrete-event simulator in simgpu —
// it has no pipeline structure — and is used for the roofline analysis
// (Figure 1c), the memory/compute transition thresholds (batch 150/300 on
// H100), and the alpha budget (alpha <= ~5 for full overlap).

#include <string>
#include <vector>

#include "core/types.hpp"
#include "simgpu/hardware.hpp"

namespace liquid::model {

using simgpu::HardwareSpec;

/// Precision configuration for the analytical model.
struct PrecisionConfig {
  std::string name;
  double weight_bits = 4;
  double act_bits = 8;
  double mma_ops = 0;   ///< device tensor-core ops/s for the MMA dtype
  double alpha = 0;     ///< dequant instructions per weight element

  static PrecisionConfig Fp16(const HardwareSpec& hw);
  static PrecisionConfig W8A8(const HardwareSpec& hw);
  static PrecisionConfig Fp8(const HardwareSpec& hw);
  static PrecisionConfig W4A16(const HardwareSpec& hw, double alpha = 1.5);
  static PrecisionConfig W4A8(const HardwareSpec& hw, double alpha);
  static PrecisionConfig W4A4(const HardwareSpec& hw);
};

/// Eq. 6 decomposition for one GEMM.
struct CostBreakdown {
  double t_load = 0;     ///< N*K*bytes / Phi_BD           (T_LD)
  double t_dequant = 0;  ///< alpha*N*K / Phi_CUDA         (T_DQ)
  double t_mma = 0;      ///< min(Mt,M)*2*N*K / Phi_TC     (T_MMA)
  double total = 0;      ///< ceil(M/Mt) * max(T_LD, T_DQ + T_MMA)
  bool memory_bound = false;
};

struct CostModelOptions {
  std::size_t tile_m = 256;  ///< maximum batch-side tile
};

CostBreakdown PredictGemm(const HardwareSpec& hw, const PrecisionConfig& cfg,
                          const GemmShape& shape, CostModelOptions opt = {});

/// Batch size at which the kernel transitions from memory- to compute-bound
/// (T_LD == T_MMA with dequant overlapped): M* = Phi_TC * bytes / (2*Phi_BD).
/// Paper: 150 for W4A8 / 300 for W8A8 on H100; 156 for W8A8 on A100.
double TransitionBatchSize(const HardwareSpec& hw, const PrecisionConfig& cfg);

/// Maximum per-element dequant cost alpha that still hides behind loading in
/// the memory-bound regime (T_DQ <= T_LD): Phi_CUDA * bytes / Phi_BD.
/// Paper: alpha <= 5.07 on H100 for W4.
double AlphaBudgetMemoryBound(const HardwareSpec& hw,
                              const PrecisionConfig& cfg);

/// Alpha budget in the compute-bound regime at batch M (T_DQ <= T_MMA):
/// 2 * min(Mt, M) * Phi_CUDA / Phi_TC.  Paper: alpha <= 5.05 at M = 150.
double AlphaBudgetComputeBound(const HardwareSpec& hw,
                               const PrecisionConfig& cfg, double batch,
                               double tile_m = 256);

// --- Roofline (Figure 1c) ---------------------------------------------------

struct RooflinePoint {
  double arithmetic_intensity = 0;  ///< ops per weight element loaded
  double attainable_ops = 0;        ///< min(peak, AI * BW_elements)
};

/// Attainable throughput curve for a precision config on given hardware.
/// Arithmetic intensity for GEMM layers is 2*min(Mt,M) ops per weight element
/// (Section 3.2), so each batch size maps to a point on this curve.
std::vector<RooflinePoint> RooflineCurve(const HardwareSpec& hw,
                                         const PrecisionConfig& cfg,
                                         double max_intensity, int samples);

/// The intensity at which the roofline bends (compute = bandwidth).
double RooflineKneeIntensity(const HardwareSpec& hw,
                             const PrecisionConfig& cfg);

}  // namespace liquid::model
