#pragma once
// Hardware-trend projection (paper Section 3.3, "Implication on LLM
// Serving"): tensor-core throughput is improving faster than memory
// bandwidth, pushing the memory-to-compute transition to ever larger batch
// sizes — W8A8 moved from batch 156 (A100) to 300 (H100) — while W4A8 cuts
// the threshold in half on every generation.  This module projects that
// trend over synthetic future parts and quantifies the batch-size (and
// therefore latency/KV-memory) relief that W4A8 buys.

#include <string>
#include <vector>

#include "model/cost_model.hpp"

namespace liquid::model {

struct GenerationSpec {
  std::string name;
  double int8_ops = 0;   ///< tensor-core INT8 ops/s
  double mem_bw = 0;     ///< bytes/s
};

/// The published trajectory plus extrapolated generations: each future part
/// multiplies compute by `compute_growth` and bandwidth by `bw_growth`.
std::vector<GenerationSpec> ProjectGenerations(int future_parts,
                                               double compute_growth,
                                               double bw_growth);

struct TransitionPoint {
  std::string generation;
  double w8a8_batch = 0;   ///< memory->compute transition batch, W8A8
  double w4a8_batch = 0;   ///< same, W4A8 (always half)
  double ratio_vs_a100 = 0;  ///< growth of the W8A8 threshold vs A100
};

/// Transition batch size per generation: M* = ops * bytes_per_elem / (2*BW).
std::vector<TransitionPoint> TransitionTrend(
    const std::vector<GenerationSpec>& generations);

/// KV-cache bytes needed to *reach* the compute-bound regime for a model at
/// a given sequence length: transition_batch * seq_len * kv_bytes_per_token.
/// The paper's operational point: smaller transition batches mean less KV
/// memory pinned just to saturate the GPU.
double KvBytesToSaturate(double transition_batch, double seq_len,
                         double kv_bytes_per_token);

}  // namespace liquid::model
