#include "model/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace liquid::model {

PrecisionConfig PrecisionConfig::Fp16(const HardwareSpec& hw) {
  return {"FP16", 16, 16, hw.tc_fp16_ops, 0};
}
PrecisionConfig PrecisionConfig::W8A8(const HardwareSpec& hw) {
  return {"W8A8", 8, 8, hw.tc_int8_ops, 0};
}
PrecisionConfig PrecisionConfig::Fp8(const HardwareSpec& hw) {
  return {"FP8", 8, 8, hw.tc_fp8_ops > 0 ? hw.tc_fp8_ops : hw.tc_int8_ops, 0};
}
PrecisionConfig PrecisionConfig::W4A16(const HardwareSpec& hw, double alpha) {
  return {"W4A16", 4, 16, hw.tc_fp16_ops, alpha};
}
PrecisionConfig PrecisionConfig::W4A8(const HardwareSpec& hw, double alpha) {
  return {"W4A8", 4, 8, hw.tc_int8_ops, alpha};
}
PrecisionConfig PrecisionConfig::W4A4(const HardwareSpec& hw) {
  // INT4 tensor cores; unsupported on Hopper (mma_ops == 0 signals NA).
  return {"W4A4", 4, 4, hw.tc_int4_ops, 0};
}

CostBreakdown PredictGemm(const HardwareSpec& hw, const PrecisionConfig& cfg,
                          const GemmShape& shape, CostModelOptions opt) {
  CostBreakdown out;
  const double nk =
      static_cast<double>(shape.n) * static_cast<double>(shape.k);
  const double m = static_cast<double>(std::max<std::size_t>(1, shape.m));
  const double mt = static_cast<double>(opt.tile_m);
  const double m_tiles = std::ceil(m / mt);
  const double eff_rows = std::min(mt, m);

  out.t_load = nk * (cfg.weight_bits / 8.0) / hw.mem_bw_bytes;
  out.t_dequant = cfg.alpha * nk / hw.cuda_int32_ops;
  out.t_mma = eff_rows * 2.0 * nk / cfg.mma_ops;
  const double compute = out.t_dequant + out.t_mma;
  out.memory_bound = out.t_load >= compute;
  out.total = m_tiles * std::max(out.t_load, compute);
  return out;
}

double TransitionBatchSize(const HardwareSpec& hw,
                           const PrecisionConfig& cfg) {
  return cfg.mma_ops * (cfg.weight_bits / 8.0) / (2.0 * hw.mem_bw_bytes);
}

double AlphaBudgetMemoryBound(const HardwareSpec& hw,
                              const PrecisionConfig& cfg) {
  return hw.cuda_int32_ops * (cfg.weight_bits / 8.0) / hw.mem_bw_bytes;
}

double AlphaBudgetComputeBound(const HardwareSpec& hw,
                               const PrecisionConfig& cfg, double batch,
                               double tile_m) {
  return 2.0 * std::min(tile_m, batch) * hw.cuda_int32_ops / cfg.mma_ops;
}

std::vector<RooflinePoint> RooflineCurve(const HardwareSpec& hw,
                                         const PrecisionConfig& cfg,
                                         double max_intensity, int samples) {
  std::vector<RooflinePoint> curve;
  curve.reserve(static_cast<std::size_t>(samples));
  // Bandwidth expressed in weight *elements* per second, matching the
  // paper's "OPs/Element" intensity axis.
  const double elem_bw = hw.mem_bw_bytes / (cfg.weight_bits / 8.0);
  for (int i = 0; i < samples; ++i) {
    const double ai =
        max_intensity * static_cast<double>(i + 1) / samples;
    RooflinePoint p;
    p.arithmetic_intensity = ai;
    p.attainable_ops = std::min(cfg.mma_ops, ai * elem_bw);
    curve.push_back(p);
  }
  return curve;
}

double RooflineKneeIntensity(const HardwareSpec& hw,
                             const PrecisionConfig& cfg) {
  const double elem_bw = hw.mem_bw_bytes / (cfg.weight_bits / 8.0);
  return cfg.mma_ops / elem_bw;
}

}  // namespace liquid::model
