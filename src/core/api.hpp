#pragma once
// LiquidGEMM public API — the single header downstream users include.
//
// Typical offline flow (Section 6, "Offline Quantization"):
//
//   liquid::MatrixF w = LoadWeights();                    // [N x K] fp32
//   liquid::MatrixF calib = SampleActivations();          // [S x K]
//   auto packed = liquid::PrepareWeights(w, calib, {});   // smooth + 2-level
//
// and online per GEMM call:
//
//   liquid::MatrixF y = liquid::LiquidGemm(x, packed.weights);
//
// For the performance model / simulator entry points see model/cost_model.hpp
// and simgpu/gemm_sim.hpp; for end-to-end serving see serving/engine.hpp.

#include "core/dequant/dequant.hpp"
#include "core/gemm/gemm.hpp"
#include "core/layout/dual_mma_layout.hpp"
#include "core/layout/smem_model.hpp"
#include "core/quant/first_level.hpp"
#include "core/quant/liquid_quant.hpp"
#include "core/quant/qserve_quant.hpp"
#include "core/types.hpp"

namespace liquid {

/// Everything the serving engine needs for one weight matrix.
struct PreparedWeights {
  LqqWeights weights;                ///< linear register order (RF view)
  DualMmaPackedWeights packed;       ///< dual-MMA supertile order (SMEM/GMEM)
  std::vector<float> smooth_scale;   ///< divide activations by this per-column
  double smooth_alpha = 0.0;
};

struct PrepareOptions {
  LqqOptions lqq;
  bool smooth = true;
  /// Candidate smoothing exponents for the OutlierSuppression+-style grid
  /// search; ignored when smooth == false.
  std::vector<double> alpha_grid = {0.3, 0.4, 0.5, 0.6, 0.7};
  /// Build the dual-MMA packed copy (requires N, K multiples of 64).
  bool build_dual_mma = true;
};

/// Full offline pipeline: smoothing (with grid-searched alpha), two-level
/// LiquidQuant, and the dual-MMA supertile reorder.
PreparedWeights PrepareWeights(const MatrixF& weights,
                               const MatrixF& act_sample,
                               const PrepareOptions& options);

}  // namespace liquid
