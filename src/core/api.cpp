#include "core/api.hpp"

namespace liquid {

PreparedWeights PrepareWeights(const MatrixF& weights,
                               const MatrixF& act_sample,
                               const PrepareOptions& options) {
  PreparedWeights out;
  MatrixF smoothed = weights;
  out.smooth_scale.assign(weights.cols(), 1.0f);
  if (options.smooth && act_sample.rows() > 0) {
    out.smooth_alpha =
        SearchSmoothAlpha(act_sample, weights,
                          static_cast<int>(options.lqq.group_size),
                          options.alpha_grid);
    out.smooth_scale = ComputeSmoothScale(act_sample, weights, out.smooth_alpha);
    SmoothWeights(smoothed, out.smooth_scale);
  }
  out.weights = QuantizeWeightsLqq(smoothed, options.lqq);
  if (options.build_dual_mma && weights.rows() % kSupertileRows == 0 &&
      weights.cols() % kSupertileCols == 0) {
    out.packed = PackDualMma(out.weights);
  }
  return out;
}

}  // namespace liquid
