#pragma once
// Register-level W4->W8 dequantization kernels (paper Sections 3.2, 4, 5.3).
//
// Both kernels consume one 32-bit register holding eight UINT4 weights in the
// interleaved nibble order of Figure 8 and produce two registers of four INT8
// bit patterns each, ready for INT8 MMA.  Both are written against the
// emulated GPU ISA in util/swar.hpp so their instruction mix — the paper's
// per-element dequantization cost alpha — is measured, not estimated.
//
// Measured costs (see bench_dequant_micro and the unit tests):
//   unpack (shared):              3 instructions / 8 elements
//   LiquidQuant dequant:          2 instructions / 4 elements (IMAD + XOR)
//     => alpha_LQQ = 7/8 = 0.875 instructions per element   (paper: "seven
//        instructions per eight elements", Section 5.3)
//   QServe dequant:               1 IMAD + vsub4 lowering / 4 elements
//     => alpha_QServe ~= 3.9 instructions per element, plus the extra
//        load/address instructions its 2D layout needs (modelled in
//        core/layout and simgpu), which pushes its effective alpha past the
//        ~5.07 overlap threshold of Section 3.3.

#include <cstdint>
#include <span>

#include "core/quant/liquid_quant.hpp"
#include "core/quant/qserve_quant.hpp"
#include "util/swar.hpp"

namespace liquid {

/// Two registers of four INT8 bit patterns: lo = lanes w0..w3, hi = w4..w7.
struct Dequanted8 {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
};

/// Shared 3-instruction unpack (Figure 8, left column): splits eight
/// interleaved UINT4 lanes into two registers of zero-extended bytes.
inline Dequanted8 UnpackU4x8(std::uint32_t reg, IsaCounter* c = nullptr) {
  Dequanted8 out;
  out.lo = isa::And(reg, 0x0F0F0F0Fu, c);
  const std::uint32_t shifted = isa::Shr(reg, 4, c);
  out.hi = isa::And(shifted, 0x0F0F0F0Fu, c);
  return out;
}

/// LiquidQuant dequantization of four unpacked UINT4 lanes (Eq. 12):
/// one IMAD (packed multiply by s_u8, add broadcast offset) + one XOR.
/// No cross-lane carries can occur: each lane's product is <= 240 and each
/// lane's sum is <= 255 (Section 4 proof).
inline std::uint32_t LqqDequant4(std::uint32_t unpacked, std::uint8_t s_u8,
                                 std::uint32_t offset_packed,
                                 IsaCounter* c = nullptr) {
  const std::uint32_t scaled =
      isa::Imad(unpacked, s_u8, offset_packed, c);
  return isa::Xor(scaled, 0x80808080u, c);
}

/// Full LQQ path for one packed register (7 instructions / 8 elements).
inline Dequanted8 LqqDequant8(std::uint32_t reg, std::uint8_t s_u8,
                              std::uint8_t offset, IsaCounter* c = nullptr) {
  // The broadcast of the offset byte is free: it is a kernel-constant
  // prepared once per group, outside the per-register loop.
  const std::uint32_t offset_packed = BroadcastByte(offset);
  Dequanted8 u = UnpackU4x8(reg, c);
  u.lo = LqqDequant4(u.lo, s_u8, offset_packed, c);
  u.hi = LqqDequant4(u.hi, s_u8, offset_packed, c);
  return u;
}

/// QServe dequantization of four unpacked UINT4 lanes: multiply by s_i8
/// (safe, stays unsigned), then *packed byte subtraction* of s*z.  The
/// subtraction can borrow across lanes, so it needs the vsub4 lowering.
inline std::uint32_t QserveDequant4(std::uint32_t unpacked, std::uint8_t s_i8,
                                    std::uint32_t zero_scaled_packed,
                                    IsaCounter* c = nullptr) {
  const std::uint32_t scaled = isa::Imad(unpacked, s_i8, 0, c);
  return isa::Vsub4(scaled, zero_scaled_packed, c);
}

/// Full QServe path for one packed register.
inline Dequanted8 QserveDequant8(std::uint32_t reg, std::uint8_t s_i8,
                                 std::uint8_t zero_scaled,
                                 IsaCounter* c = nullptr) {
  const std::uint32_t zpacked = BroadcastByte(zero_scaled);
  Dequanted8 u = UnpackU4x8(reg, c);
  u.lo = QserveDequant4(u.lo, s_i8, zpacked, c);
  u.hi = QserveDequant4(u.hi, s_i8, zpacked, c);
  return u;
}

// ---------------------------------------------------------------------------
// Bulk row dequantization: used by the functional CPU GEMM kernels and the
// dequantization micro-benchmarks.  Output is one INT8 per element in natural
// k-order.
// ---------------------------------------------------------------------------

/// Dequantizes one full row of an LQQ tensor into `out` (size k).
void LqqDequantRow(const LqqWeights& w, std::size_t row,
                   std::span<std::int8_t> out, IsaCounter* c = nullptr);

/// Dequantizes one full row of a QServe tensor into `out` (size k).
void QserveDequantRow(const QserveWeights& w, std::size_t row,
                      std::span<std::int8_t> out, IsaCounter* c = nullptr);

/// Instruction cost per dequantized element (alpha) measured by running one
/// register through the kernel with a fresh counter.
double MeasureAlphaLqq();
double MeasureAlphaQserve();

/// Scatters the two dequantized registers into 8 consecutive INT8 values in
/// natural order (w0..w7) — host-side helper, not part of the kernel cost.
void StoreDequanted8(const Dequanted8& d, std::int8_t* out);

}  // namespace liquid
