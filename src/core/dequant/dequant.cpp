#include "core/dequant/dequant.hpp"

#include <cassert>

namespace liquid {

void StoreDequanted8(const Dequanted8& d, std::int8_t* out) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<std::int8_t>(ByteLane(d.lo, i));
    out[i + 4] = static_cast<std::int8_t>(ByteLane(d.hi, i));
  }
}

void LqqDequantRow(const LqqWeights& w, std::size_t row,
                   std::span<std::int8_t> out, IsaCounter* c) {
  assert(out.size() >= w.k);
  const std::size_t regs_per_group = w.group_size / 8;
  const std::size_t regs_per_row = w.RegistersPerRow();
  for (std::size_t r = 0; r < regs_per_row; ++r) {
    const LqqGroupParams& p = w.Params(row, r / regs_per_group);
    const Dequanted8 d = LqqDequant8(w.Register(row, r), p.scale, p.offset, c);
    StoreDequanted8(d, out.data() + r * 8);
  }
}

void QserveDequantRow(const QserveWeights& w, std::size_t row,
                      std::span<std::int8_t> out, IsaCounter* c) {
  assert(out.size() >= w.k);
  const std::size_t regs_per_group = w.group_size / 8;
  const std::size_t regs_per_row = w.RegistersPerRow();
  for (std::size_t r = 0; r < regs_per_row; ++r) {
    const QserveGroupParams& p = w.Params(row, r / regs_per_group);
    const Dequanted8 d =
        QserveDequant8(w.Register(row, r), p.scale, p.zero_scaled, c);
    StoreDequanted8(d, out.data() + r * 8);
  }
}

double MeasureAlphaLqq() {
  IsaCounter c;
  (void)LqqDequant8(0x12345678u, 16, 100, &c);
  return static_cast<double>(c.Total()) / 8.0;
}

double MeasureAlphaQserve() {
  IsaCounter c;
  (void)QserveDequant8(0x12345678u, 16, 100, &c);
  return static_cast<double>(c.Total()) / 8.0;
}

}  // namespace liquid
