#pragma once
// Shared tensor types for the LiquidGEMM core library.
//
// Convention (matches the paper, Figure 2): the GEMM computes Y = X·Wᵀ with
//   X: [M x K]  activations, row-major (one row per token),
//   W: [N x K]  weights, row-major (one row per output channel),
//   Y: [M x N]  output, row-major.
// K is the reduction dimension; group-wise quantization groups run along K.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace liquid {

/// Dense row-major matrix with owned storage.
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols) {}
  Matrix(std::size_t rows, std::size_t cols, std::vector<T> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    assert(data_.size() == rows_ * cols_);
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  T& At(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& At(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  T& operator()(std::size_t r, std::size_t c) { return At(r, c); }
  const T& operator()(std::size_t r, std::size_t c) const { return At(r, c); }

  std::span<T> Row(std::size_t r) {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const T> Row(std::size_t r) const {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::span<T> Flat() { return {data_.data(), data_.size()}; }
  std::span<const T> Flat() const { return {data_.data(), data_.size()}; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using MatrixF = Matrix<float>;
using MatrixI8 = Matrix<std::int8_t>;

/// GEMM problem shape (paper notation).
struct GemmShape {
  std::size_t m = 0;  ///< batch/token dimension
  std::size_t n = 0;  ///< output channels
  std::size_t k = 0;  ///< reduction dimension

  [[nodiscard]] double Macs() const {
    return static_cast<double>(m) * static_cast<double>(n) *
           static_cast<double>(k);
  }
  /// Two ops (mul + add) per MAC, the convention used in the paper's Eq. 4.
  [[nodiscard]] double Ops() const { return 2.0 * Macs(); }
};

/// INT8 activations with per-token (per-row) symmetric scales, produced by
/// the SmoothQuant-style on-the-fly activation quantization (Section 6).
struct QuantizedActivations {
  MatrixI8 q;                      ///< [M x K]
  std::vector<float> token_scale;  ///< [M]; x ≈ q * token_scale[row]
};

constexpr int kProtectiveMax = 119;  ///< QServe/LQQ protective INT8 range bound.

}  // namespace liquid
