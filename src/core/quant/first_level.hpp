#pragma once
// First-level quantization (paper Section 4 / Section 6, "Offline
// Quantization"): SmoothQuant-style smoothing followed by symmetric
// per-channel FP -> INT8 quantization with the protective range [-119, 119].
//
// The protective range (from QServe, adopted by LiquidQuant) guarantees that
// the second-level scale s_u8 = (max - min)/15 never exceeds 16, which is what
// makes the register-parallel dequantization overflow-free (Section 4 proof).

#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace liquid {

/// Result of the first quantization level.
struct FirstLevelResult {
  MatrixI8 q;                        ///< [N x K], each value in [-119, 119]
  std::vector<float> channel_scale;  ///< [N]; W[n,k] ≈ q[n,k] * channel_scale[n]
};

struct FirstLevelOptions {
  /// Clamp to [-protective_max, +protective_max] instead of the full INT8
  /// range.  true reproduces QServe/LQQ; false gives a plain symmetric INT8
  /// quantizer (used by the W8A8 baseline).
  bool protective_range = true;
};

/// Symmetric per-channel quantization of W [N x K] to INT8.
FirstLevelResult QuantizeFirstLevel(const MatrixF& weights,
                                    FirstLevelOptions options = {});

/// Dequantizes a first-level tensor back to float (Equation 2 with z = 0).
MatrixF DequantizeFirstLevel(const FirstLevelResult& q);

/// SmoothQuant smoothing factors (Section 6): per-K-column scale
///   smooth[k] = max|X[:,k]|^alpha / max|W[:,k]|^(1-alpha)
/// Weights are multiplied by smooth, activations divided, preserving X·Wᵀ
/// exactly while moving activation outliers into the (4-bit-grouped) weights.
std::vector<float> ComputeSmoothScale(const MatrixF& act_sample,
                                      const MatrixF& weights, double alpha);

/// Applies smoothing in place: W[n,k] *= smooth[k].
void SmoothWeights(MatrixF& weights, std::span<const float> smooth);
/// Applies the inverse smoothing to activations in place: X[m,k] /= smooth[k].
void SmoothActivations(MatrixF& activations, std::span<const float> smooth);

/// Grid search for the smoothing exponent alpha minimizing the quantization
/// MSE of the smoothed weights (OutlierSuppression+-style search, Section 6).
double SearchSmoothAlpha(const MatrixF& act_sample, const MatrixF& weights,
                         int group_size, std::span<const double> candidates);

/// Per-token symmetric INT8 activation quantization (Section 6, fused
/// on-the-fly in serving; here a standalone reference).
QuantizedActivations QuantizeActivationsPerToken(const MatrixF& activations);

/// Dequantizes per-token activations back to float.
MatrixF DequantizeActivations(const QuantizedActivations& acts);

}  // namespace liquid
