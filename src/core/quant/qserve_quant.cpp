#include "core/quant/qserve_quant.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/swar.hpp"

namespace liquid {

std::uint8_t QserveWeights::U4At(std::size_t row, std::size_t col) const {
  const std::uint32_t reg = Register(row, col / 8);
  const auto lanes = UnpackNibblesInterleaved(reg);
  return lanes[col % 8];
}

QserveWeights QuantizeSecondLevelQserve(const FirstLevelResult& first,
                                        QserveOptions options) {
  const std::size_t n = first.q.rows();
  const std::size_t k = first.q.cols();
  const std::size_t g = options.group_size;
  if (g == 0 || g % 8 != 0 || k % g != 0) {
    throw std::invalid_argument(
        "QuantizeSecondLevelQserve: need group_size a positive multiple of 8 "
        "and K a multiple of group_size; got K=" +
        std::to_string(k) + ", group_size=" + std::to_string(g));
  }

  QserveWeights out;
  out.n = n;
  out.k = k;
  out.group_size = g;
  out.packed.Resize(n * k / 8);
  out.group_params.resize(n * (k / g));
  out.channel_scale = first.channel_scale;

  const std::size_t groups_per_row = k / g;
  for (std::size_t row = 0; row < n; ++row) {
    const auto src = first.q.Row(row);
    for (std::size_t gi = 0; gi < groups_per_row; ++gi) {
      int gmin = 127;
      int gmax = -128;
      for (std::size_t j = 0; j < g; ++j) {
        const int v = src[gi * g + j];
        gmin = std::min(gmin, v);
        gmax = std::max(gmax, v);
      }
      const std::uint32_t range = static_cast<std::uint32_t>(gmax - gmin);
      const std::uint8_t scale =
          range == 0 ? std::uint8_t{1}
                     : static_cast<std::uint8_t>((range + 14) / 15);
      // Zero point: the UINT4 code that maps to INT8 value ~gmin.
      // z = round(-gmin / s), clamped to [0, 15].
      const int z_raw = static_cast<int>(
          std::nearbyint(-static_cast<double>(gmin) / scale));
      const std::uint8_t zero =
          static_cast<std::uint8_t>(std::clamp(z_raw, 0, 15));

      QserveGroupParams& params = out.group_params[row * groups_per_row + gi];
      params.scale = scale;
      params.zero = zero;
      params.zero_scaled = static_cast<std::uint8_t>(zero * scale);

      for (std::size_t r = 0; r < g / 8; ++r) {
        std::array<std::uint8_t, 8> lanes{};
        for (std::size_t j = 0; j < 8; ++j) {
          const int q_i8 = src[gi * g + r * 8 + j];
          // Asymmetric quantization: q_u4 = round(q / s) + z.
          const int q = static_cast<int>(std::nearbyint(
                            static_cast<double>(q_i8) / scale)) +
                        zero;
          lanes[j] = static_cast<std::uint8_t>(std::clamp(q, 0, 15));
        }
        const std::size_t reg_index = row * (k / 8) + (gi * g) / 8 + r;
        out.packed[reg_index] = PackNibblesInterleaved(lanes);
      }
    }
  }
  return out;
}

QserveWeights QuantizeWeightsQserve(const MatrixF& weights,
                                    QserveOptions options) {
  return QuantizeSecondLevelQserve(QuantizeFirstLevel(weights), options);
}

MatrixI8 DequantizeSecondLevelReferenceQserve(const QserveWeights& w) {
  MatrixI8 out(w.n, w.k);
  for (std::size_t row = 0; row < w.n; ++row) {
    for (std::size_t col = 0; col < w.k; ++col) {
      const QserveGroupParams& p = w.Params(row, col / w.group_size);
      out.At(row, col) =
          QserveDequantElement(w.U4At(row, col), p.scale, p.zero_scaled);
    }
  }
  return out;
}

MatrixF DequantizeWeightsQserve(const QserveWeights& w) {
  const MatrixI8 i8 = DequantizeSecondLevelReferenceQserve(w);
  MatrixF out(w.n, w.k);
  for (std::size_t row = 0; row < w.n; ++row) {
    for (std::size_t col = 0; col < w.k; ++col) {
      out.At(row, col) =
          static_cast<float>(i8.At(row, col)) * w.channel_scale[row];
    }
  }
  return out;
}

}  // namespace liquid
