#include "core/quant/kv_quant.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace liquid {
namespace {

std::int8_t ClampRoundI8(float v) {
  return static_cast<std::int8_t>(
      std::clamp(std::nearbyint(v), -127.0f, 127.0f));
}

}  // namespace

KvInt8Params CalibrateKvInt8(std::span<const float> sample_tokens,
                             std::size_t channels, float margin) {
  assert(channels > 0 && sample_tokens.size() % channels == 0);
  KvInt8Params params;
  params.channel_scale.assign(channels, 0.0f);
  const std::size_t tokens = sample_tokens.size() / channels;
  for (std::size_t t = 0; t < tokens; ++t) {
    for (std::size_t c = 0; c < channels; ++c) {
      params.channel_scale[c] = std::max(
          params.channel_scale[c], std::fabs(sample_tokens[t * channels + c]));
    }
  }
  for (float& s : params.channel_scale) {
    s = s > 0.0f ? s * margin / 127.0f : 1.0f;
  }
  return params;
}

void QuantizeKvInt8(std::span<const float> token, const KvInt8Params& params,
                    std::span<std::int8_t> out) {
  assert(token.size() == params.Channels() && out.size() >= token.size());
  for (std::size_t c = 0; c < token.size(); ++c) {
    out[c] = ClampRoundI8(token[c] / params.channel_scale[c]);
  }
}

void DequantizeKvInt8(std::span<const std::int8_t> token,
                      const KvInt8Params& params, std::span<float> out) {
  assert(token.size() == params.Channels() && out.size() >= token.size());
  for (std::size_t c = 0; c < token.size(); ++c) {
    out[c] = static_cast<float>(token[c]) * params.channel_scale[c];
  }
}

KvInt4Token QuantizeKvInt4(std::span<const float> token, std::size_t heads,
                           std::size_t head_dim) {
  assert(token.size() == heads * head_dim && head_dim % 2 == 0);
  KvInt4Token out;
  out.packed.assign(heads * head_dim / 2, 0);
  out.head_params.resize(heads);
  for (std::size_t h = 0; h < heads; ++h) {
    const std::span<const float> head = token.subspan(h * head_dim, head_dim);
    float lo = head[0];
    float hi = head[0];
    for (const float v : head) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    float scale = (hi - lo) / 15.0f;
    if (scale <= 0.0f) scale = 1.0f;
    out.head_params[h] = {scale, lo};
    for (std::size_t d = 0; d < head_dim; ++d) {
      const int q = static_cast<int>(
          std::clamp(std::nearbyint((head[d] - lo) / scale), 0.0f, 15.0f));
      std::uint8_t& byte = out.packed[(h * head_dim + d) / 2];
      if (d % 2 == 0) {
        byte = static_cast<std::uint8_t>((byte & 0xF0u) | q);
      } else {
        byte = static_cast<std::uint8_t>((byte & 0x0Fu) | (q << 4));
      }
    }
  }
  return out;
}

void DequantizeKvInt4(const KvInt4Token& token, std::size_t heads,
                      std::size_t head_dim, std::span<float> out) {
  assert(out.size() >= heads * head_dim);
  for (std::size_t h = 0; h < heads; ++h) {
    const KvInt4HeadParams& p = token.head_params[h];
    for (std::size_t d = 0; d < head_dim; ++d) {
      const std::uint8_t byte = token.packed[(h * head_dim + d) / 2];
      const std::uint8_t q = d % 2 == 0
                                 ? static_cast<std::uint8_t>(byte & 0x0Fu)
                                 : static_cast<std::uint8_t>(byte >> 4);
      out[h * head_dim + d] = static_cast<float>(q) * p.scale + p.zero;
    }
  }
}

std::size_t KvInt8BytesPerToken(std::size_t heads, std::size_t head_dim) {
  return heads * head_dim;  // channel scales amortize across all tokens
}

std::size_t KvInt4BytesPerToken(std::size_t heads, std::size_t head_dim) {
  return heads * head_dim / 2 + heads * 4;  // packed nibbles + per-head s,z
}

}  // namespace liquid
