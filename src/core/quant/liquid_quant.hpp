#pragma once
// LiquidQuant (LQQ) second-level quantization (paper Section 4).
//
// The second level converts the first-level INT8 tensor (protective range
// [-119, 119]) to UINT4, group-wise along K.  LQQ's key idea is the
// *rotation*: instead of quantizing INT8 -> UINT4 around a zero point (QServe),
// it first shifts each group into the unsigned domain,
//
//     Q_u8 = Q_i8 - min(Q_i8),        (Eq. 7)
//     Q_u4 = round(Q_u8 / s_u8),      s_u8 = max(Q_u8) / 15,
//
// and pairs that with the "sweet dequantization" (Eq. 12)
//
//     Q^_i8 = (Q_u4 * s_u8 + a) XOR 0x80,      a = 2^7 + min(Q_i8),
//
// which recovers the INT8 *bit pattern* entirely inside the UINT8 domain:
// every intermediate is provably <= 255 (Section 4 proof; verified
// exhaustively in tests/core/liquid_quant_test.cpp), so four elements can be
// dequantized with one 32-bit IMAD + one XOR with no cross-byte carries.

#include <cstdint>
#include <vector>

#include "core/quant/first_level.hpp"
#include "core/types.hpp"
#include "util/buffer.hpp"

namespace liquid {

/// Per-group second-level parameters, both in [0, 255].
struct LqqGroupParams {
  std::uint8_t scale = 1;  ///< s_u8 in [1, 16]
  std::uint8_t offset = 0; ///< a = 128 + min(Q_i8), in [9, 247]
};

/// A fully quantized LQQ weight tensor, ready for the W4A8 GEMM main loop.
///
/// `packed` holds K/8 registers per output channel in the paper's interleaved
/// nibble order (Figure 8): register r of row n covers elements
/// k = 8r .. 8r+7, stored as bytes [(w4<<4)|w0, (w5<<4)|w1, (w6<<4)|w2,
/// (w7<<4)|w3].  This is the order the 3-instruction unpack expects; the
/// Dual-MMA SMEM placement (Section 5.2) is a permutation *of registers* on
/// top of this and lives in core/layout.
struct LqqWeights {
  std::size_t n = 0;           ///< output channels
  std::size_t k = 0;           ///< reduction dim (multiple of group_size)
  std::size_t group_size = 64; ///< paper default
  AlignedBuffer<std::uint32_t> packed;        ///< [n * k/8]
  std::vector<LqqGroupParams> group_params;   ///< [n * k/group_size]
  std::vector<float> channel_scale;           ///< [n], first-level scale

  [[nodiscard]] std::size_t RegistersPerRow() const { return k / 8; }
  [[nodiscard]] std::size_t GroupsPerRow() const { return k / group_size; }
  [[nodiscard]] const LqqGroupParams& Params(std::size_t row,
                                             std::size_t group) const {
    return group_params[row * GroupsPerRow() + group];
  }
  [[nodiscard]] std::uint32_t Register(std::size_t row, std::size_t reg) const {
    return packed[row * RegistersPerRow() + reg];
  }
  /// Raw UINT4 value at (row, col) — test/debug accessor.
  [[nodiscard]] std::uint8_t U4At(std::size_t row, std::size_t col) const;

  /// Memory footprint of weights + quantization parameters in bytes.
  [[nodiscard]] std::size_t StorageBytes() const {
    return packed.size() * 4 + group_params.size() * 2 +
           channel_scale.size() * 4;
  }
};

struct LqqOptions {
  std::size_t group_size = 64;  ///< paper default for LiquidServe
};

/// Second level only: INT8 (protective range) -> packed UINT4 + group params.
/// Requires k to be a multiple of group_size and group_size a multiple of 8.
LqqWeights QuantizeSecondLevelLqq(const FirstLevelResult& first,
                                  LqqOptions options = {});

/// Full two-level pipeline: FP32 weights -> LqqWeights.
LqqWeights QuantizeWeightsLqq(const MatrixF& weights, LqqOptions options = {});

/// Scalar reference dequantization of the second level (Eq. 12), element by
/// element.  The SWAR kernel in core/dequant must match this bit-for-bit.
MatrixI8 DequantizeSecondLevelReference(const LqqWeights& w);

/// Full dequantization back to float (second level then first level).
MatrixF DequantizeWeightsLqq(const LqqWeights& w);

/// Scalar Eq. 12 for a single element; exposed for exhaustive proofs in tests.
inline std::int8_t LqqDequantElement(std::uint8_t q_u4, std::uint8_t s_u8,
                                     std::uint8_t a) {
  const std::uint8_t v = static_cast<std::uint8_t>(
      static_cast<std::uint8_t>(q_u4 * s_u8) + a);  // stays in UINT8 by proof
  return static_cast<std::int8_t>(static_cast<std::uint8_t>(v ^ 0x80u));
}

}  // namespace liquid
