#pragma once
// KV-cache quantization (paper Section 6).
//
// LiquidServe and TRT-W8A8 quantize the KV cache to INT8 with *per-channel
// static* scales computed offline from calibration data; QServe uses 4-bit
// KV with per-token asymmetric parameters (W4A8KV4).  Both are implemented
// here as real kernels over [heads x head_dim] token vectors, so the paged
// KV store (serving/paged_kv_store.hpp) holds genuinely quantized bytes and
// attention-score error can be measured rather than assumed.

#include <cstdint>
#include <span>
#include <vector>

namespace liquid {

/// Offline per-channel scales for INT8 KV quantization.  A "channel" is one
/// (head, dim) coordinate; scales are shared by every token and computed
/// from the absmax of a calibration sample (static quantization — no
/// runtime reduction needed, which is why serving systems prefer it).
struct KvInt8Params {
  std::vector<float> channel_scale;  ///< [heads * head_dim]

  [[nodiscard]] std::size_t Channels() const { return channel_scale.size(); }
};

/// Calibrates channel scales from sample token vectors (concatenated rows of
/// heads*head_dim floats).  `margin` (>= 1) widens the observed range to
/// tolerate mild distribution shift at runtime.
KvInt8Params CalibrateKvInt8(std::span<const float> sample_tokens,
                             std::size_t channels, float margin = 1.05f);

/// Quantizes one token vector (heads*head_dim floats) to INT8.
void QuantizeKvInt8(std::span<const float> token, const KvInt8Params& params,
                    std::span<std::int8_t> out);

/// Dequantizes one token vector back to float.
void DequantizeKvInt8(std::span<const std::int8_t> token,
                      const KvInt8Params& params, std::span<float> out);

// ---------------------------------------------------------------------------
// 4-bit KV (QServe-style KV4): per-token, per-head asymmetric UINT4 with an
// FP16-grade scale/zero pair stored next to the packed nibbles.
// ---------------------------------------------------------------------------

struct KvInt4HeadParams {
  float scale = 1.0f;
  float zero = 0.0f;  ///< dequant: q * scale + zero
};

struct KvInt4Token {
  std::vector<std::uint8_t> packed;        ///< [heads * head_dim / 2]
  std::vector<KvInt4HeadParams> head_params;  ///< [heads]

  [[nodiscard]] std::size_t StorageBytes() const {
    return packed.size() + head_params.size() * 4;  // fp16 scale+zero
  }
};

/// Quantizes one token vector to per-head asymmetric UINT4.
KvInt4Token QuantizeKvInt4(std::span<const float> token, std::size_t heads,
                           std::size_t head_dim);

/// Dequantizes a 4-bit token vector back to float.
void DequantizeKvInt4(const KvInt4Token& token, std::size_t heads,
                      std::size_t head_dim, std::span<float> out);

/// Bytes per token for each scheme at given geometry (used by the memory
/// model; matches LlmConfig::KvBytesPerTokenPerLayer up to the param
/// sidecar).
std::size_t KvInt8BytesPerToken(std::size_t heads, std::size_t head_dim);
std::size_t KvInt4BytesPerToken(std::size_t heads, std::size_t head_dim);

}  // namespace liquid
