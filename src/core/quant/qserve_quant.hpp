#pragma once
// QServe-style second-level quantization — the baseline LiquidQuant is
// measured against (paper Sections 3.2 and 4).
//
// QServe [Lin et al. 2024] quantizes the first-level INT8 tensor directly to
// UINT4 around a per-group zero point (standard asymmetric quantization,
// Eq. 1), and dequantizes with "subtraction after multiplication":
//
//     Q^_i8 = Q_u4 * s_i8 - s_i8 * z_i8.
//
// The multiplication stays in UINT8 (progressive/protective range), but the
// subtraction can cross zero, so it cannot be fused into a 32-bit packed
// operation: the borrow of one byte lane would corrupt its neighbour.  QServe
// therefore falls back to `vsub4`-style packed byte arithmetic, which is not a
// native Hopper instruction and lowers to a dozen-odd logic/ALU ops — the
// overhead LiquidQuant's XOR trick removes.

#include <cstdint>
#include <vector>

#include "core/quant/first_level.hpp"
#include "core/types.hpp"
#include "util/buffer.hpp"

namespace liquid {

/// Per-group parameters for the QServe scheme.
struct QserveGroupParams {
  std::uint8_t scale = 1;       ///< s_i8, in [1, 16]
  std::uint8_t zero = 0;        ///< z_i8, in [0, 15]
  std::uint8_t zero_scaled = 0; ///< s_i8 * z_i8, precomputed (<= 240)
};

/// Packed QServe weight tensor; register layout identical to LqqWeights so the
/// two schemes share the unpack path and the SMEM layout machinery.
struct QserveWeights {
  std::size_t n = 0;
  std::size_t k = 0;
  std::size_t group_size = 128;  ///< QServe's default group size
  AlignedBuffer<std::uint32_t> packed;          ///< [n * k/8]
  std::vector<QserveGroupParams> group_params;  ///< [n * k/group_size]
  std::vector<float> channel_scale;             ///< [n]

  [[nodiscard]] std::size_t RegistersPerRow() const { return k / 8; }
  [[nodiscard]] std::size_t GroupsPerRow() const { return k / group_size; }
  [[nodiscard]] const QserveGroupParams& Params(std::size_t row,
                                                std::size_t group) const {
    return group_params[row * GroupsPerRow() + group];
  }
  [[nodiscard]] std::uint32_t Register(std::size_t row, std::size_t reg) const {
    return packed[row * RegistersPerRow() + reg];
  }
  [[nodiscard]] std::uint8_t U4At(std::size_t row, std::size_t col) const;

  [[nodiscard]] std::size_t StorageBytes() const {
    return packed.size() * 4 + group_params.size() * 2 +
           channel_scale.size() * 4;
  }
};

struct QserveOptions {
  std::size_t group_size = 128;
};

/// Second level: INT8 (protective range) -> packed UINT4 with zero points.
QserveWeights QuantizeSecondLevelQserve(const FirstLevelResult& first,
                                        QserveOptions options = {});

/// Full two-level pipeline: FP32 weights -> QserveWeights.
QserveWeights QuantizeWeightsQserve(const MatrixF& weights,
                                    QserveOptions options = {});

/// Scalar reference dequantization: q_u4 * s - s*z, computed exactly.
MatrixI8 DequantizeSecondLevelReferenceQserve(const QserveWeights& w);

/// Full dequantization back to float.
MatrixF DequantizeWeightsQserve(const QserveWeights& w);

/// Scalar dequant of one element (subtraction after multiplication).
inline std::int8_t QserveDequantElement(std::uint8_t q_u4, std::uint8_t s,
                                        std::uint8_t zero_scaled) {
  const int v = static_cast<int>(q_u4) * static_cast<int>(s) -
                static_cast<int>(zero_scaled);
  return static_cast<std::int8_t>(v);  // in [-240, 240] -> wraps like hardware
}

}  // namespace liquid
