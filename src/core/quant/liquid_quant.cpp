#include "core/quant/liquid_quant.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/swar.hpp"

namespace liquid {
namespace {

/// Rounds a non-negative ratio to the nearest integer, ties away from zero
/// (the ⌊·⌉ of the paper applied to positive values).
std::uint8_t RoundDiv(std::uint32_t num, std::uint32_t den) {
  return static_cast<std::uint8_t>((num + den / 2) / den);
}

}  // namespace

std::uint8_t LqqWeights::U4At(std::size_t row, std::size_t col) const {
  const std::uint32_t reg = Register(row, col / 8);
  const auto lanes = UnpackNibblesInterleaved(reg);
  return lanes[col % 8];
}

LqqWeights QuantizeSecondLevelLqq(const FirstLevelResult& first,
                                  LqqOptions options) {
  const std::size_t n = first.q.rows();
  const std::size_t k = first.q.cols();
  const std::size_t g = options.group_size;
  // Validated (not asserted): under -DNDEBUG a violated precondition would
  // silently read out of bounds while packing.
  if (g == 0 || g % 8 != 0) {
    throw std::invalid_argument(
        "QuantizeSecondLevelLqq: group_size " + std::to_string(g) +
        " must be a positive multiple of 8 (whole packed registers)");
  }
  if (k % g != 0) {
    throw std::invalid_argument(
        "QuantizeSecondLevelLqq: K=" + std::to_string(k) +
        " is not a multiple of group_size=" + std::to_string(g));
  }

  LqqWeights out;
  out.n = n;
  out.k = k;
  out.group_size = g;
  out.packed.Resize(n * k / 8);
  out.group_params.resize(n * (k / g));
  out.channel_scale = first.channel_scale;

  const std::size_t groups_per_row = k / g;
  for (std::size_t row = 0; row < n; ++row) {
    const auto src = first.q.Row(row);
    for (std::size_t gi = 0; gi < groups_per_row; ++gi) {
      // Group statistics: the rotation shifts [min, max] to [0, max-min].
      int gmin = 127;
      int gmax = -128;
      for (std::size_t j = 0; j < g; ++j) {
        const int v = src[gi * g + j];
        gmin = std::min(gmin, v);
        gmax = std::max(gmax, v);
      }
      assert(gmin >= -kProtectiveMax && gmax <= kProtectiveMax &&
             "first level must enforce the protective range");
      const std::uint32_t range = static_cast<std::uint32_t>(gmax - gmin);
      // s_u8 = ceil(range / 15), clamped to >= 1.  Ceiling (rather than
      // nearest) guarantees round(q_u8 / s) <= 15; with the protective range,
      // range <= 238 so s_u8 <= 16 — the bound the overflow proof needs.
      const std::uint8_t scale =
          range == 0 ? std::uint8_t{1}
                     : static_cast<std::uint8_t>((range + 14) / 15);
      const std::uint8_t offset =
          static_cast<std::uint8_t>(128 + gmin);  // a = 2^7 + min(Q_i8)

      LqqGroupParams& params = out.group_params[row * groups_per_row + gi];
      params.scale = scale;
      params.offset = offset;

      // Quantize the group and pack registers (8 elements each).
      for (std::size_t r = 0; r < g / 8; ++r) {
        std::array<std::uint8_t, 8> lanes{};
        for (std::size_t j = 0; j < 8; ++j) {
          const int q_i8 = src[gi * g + r * 8 + j];
          const std::uint32_t q_u8 = static_cast<std::uint32_t>(q_i8 - gmin);
          std::uint8_t q_u4 = RoundDiv(q_u8, scale);
          q_u4 = std::min<std::uint8_t>(q_u4, 15);
          lanes[j] = q_u4;
        }
        const std::size_t reg_index =
            row * (k / 8) + (gi * g) / 8 + r;
        out.packed[reg_index] = PackNibblesInterleaved(lanes);
      }
    }
  }
  return out;
}

LqqWeights QuantizeWeightsLqq(const MatrixF& weights, LqqOptions options) {
  return QuantizeSecondLevelLqq(QuantizeFirstLevel(weights), options);
}

MatrixI8 DequantizeSecondLevelReference(const LqqWeights& w) {
  MatrixI8 out(w.n, w.k);
  for (std::size_t row = 0; row < w.n; ++row) {
    for (std::size_t col = 0; col < w.k; ++col) {
      const LqqGroupParams& p = w.Params(row, col / w.group_size);
      out.At(row, col) = LqqDequantElement(w.U4At(row, col), p.scale, p.offset);
    }
  }
  return out;
}

MatrixF DequantizeWeightsLqq(const LqqWeights& w) {
  const MatrixI8 i8 = DequantizeSecondLevelReference(w);
  MatrixF out(w.n, w.k);
  for (std::size_t row = 0; row < w.n; ++row) {
    for (std::size_t col = 0; col < w.k; ++col) {
      out.At(row, col) =
          static_cast<float>(i8.At(row, col)) * w.channel_scale[row];
    }
  }
  return out;
}

}  // namespace liquid
