#include "core/quant/first_level.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace liquid {
namespace {

float MaxAbs(std::span<const float> values) {
  float m = 0.0f;
  for (const float v : values) m = std::max(m, std::fabs(v));
  return m;
}

std::int8_t ClampRound(float value, int bound) {
  const float r = std::nearbyint(value);
  const float clamped =
      std::clamp(r, static_cast<float>(-bound), static_cast<float>(bound));
  return static_cast<std::int8_t>(clamped);
}

}  // namespace

FirstLevelResult QuantizeFirstLevel(const MatrixF& weights,
                                    FirstLevelOptions options) {
  const int bound = options.protective_range ? kProtectiveMax : 127;
  FirstLevelResult out;
  out.q = MatrixI8(weights.rows(), weights.cols());
  out.channel_scale.resize(weights.rows());
  for (std::size_t n = 0; n < weights.rows(); ++n) {
    const float absmax = MaxAbs(weights.Row(n));
    // A zero row quantizes to zeros with unit scale (avoids 0/0).
    const float scale =
        absmax > 0.0f ? absmax / static_cast<float>(bound) : 1.0f;
    out.channel_scale[n] = scale;
    const auto src = weights.Row(n);
    const auto dst = out.q.Row(n);
    for (std::size_t k = 0; k < src.size(); ++k) {
      dst[k] = ClampRound(src[k] / scale, bound);
    }
  }
  return out;
}

MatrixF DequantizeFirstLevel(const FirstLevelResult& q) {
  MatrixF out(q.q.rows(), q.q.cols());
  for (std::size_t n = 0; n < q.q.rows(); ++n) {
    const auto src = q.q.Row(n);
    const auto dst = out.Row(n);
    for (std::size_t k = 0; k < src.size(); ++k) {
      dst[k] = static_cast<float>(src[k]) * q.channel_scale[n];
    }
  }
  return out;
}

std::vector<float> ComputeSmoothScale(const MatrixF& act_sample,
                                      const MatrixF& weights, double alpha) {
  const std::size_t k_dim = weights.cols();
  std::vector<float> smooth(k_dim, 1.0f);
  for (std::size_t k = 0; k < k_dim; ++k) {
    float act_max = 0.0f;
    for (std::size_t m = 0; m < act_sample.rows(); ++m) {
      act_max = std::max(act_max, std::fabs(act_sample.At(m, k)));
    }
    float w_max = 0.0f;
    for (std::size_t n = 0; n < weights.rows(); ++n) {
      w_max = std::max(w_max, std::fabs(weights.At(n, k)));
    }
    if (act_max <= 0.0f || w_max <= 0.0f) continue;
    const double s = std::pow(act_max, alpha) / std::pow(w_max, 1.0 - alpha);
    if (s > 0.0 && std::isfinite(s)) smooth[k] = static_cast<float>(s);
  }
  return smooth;
}

void SmoothWeights(MatrixF& weights, std::span<const float> smooth) {
  for (std::size_t n = 0; n < weights.rows(); ++n) {
    const auto row = weights.Row(n);
    for (std::size_t k = 0; k < row.size(); ++k) row[k] *= smooth[k];
  }
}

void SmoothActivations(MatrixF& activations, std::span<const float> smooth) {
  for (std::size_t m = 0; m < activations.rows(); ++m) {
    const auto row = activations.Row(m);
    for (std::size_t k = 0; k < row.size(); ++k) row[k] /= smooth[k];
  }
}

double SearchSmoothAlpha(const MatrixF& act_sample, const MatrixF& weights,
                         int group_size, std::span<const double> candidates) {
  // Score each alpha by the INT8 reconstruction error of the smoothed
  // weights; group_size is accepted for interface symmetry with the
  // second-level quantizers but the first level is per-channel.
  (void)group_size;
  double best_alpha = 0.5;
  double best_err = std::numeric_limits<double>::infinity();
  for (const double alpha : candidates) {
    const auto smooth = ComputeSmoothScale(act_sample, weights, alpha);
    MatrixF smoothed = weights;
    SmoothWeights(smoothed, smooth);
    const FirstLevelResult q = QuantizeFirstLevel(smoothed);
    const MatrixF rec = DequantizeFirstLevel(q);
    double err = 0.0;
    for (std::size_t i = 0; i < rec.size(); ++i) {
      const double d = static_cast<double>(rec.Flat()[i]) -
                       static_cast<double>(smoothed.Flat()[i]);
      err += d * d;
    }
    if (err < best_err) {
      best_err = err;
      best_alpha = alpha;
    }
  }
  return best_alpha;
}

QuantizedActivations QuantizeActivationsPerToken(const MatrixF& activations) {
  QuantizedActivations out;
  out.q = MatrixI8(activations.rows(), activations.cols());
  out.token_scale.resize(activations.rows());
  for (std::size_t m = 0; m < activations.rows(); ++m) {
    const float absmax = MaxAbs(activations.Row(m));
    const float scale = absmax > 0.0f ? absmax / 127.0f : 1.0f;
    out.token_scale[m] = scale;
    const auto src = activations.Row(m);
    const auto dst = out.q.Row(m);
    for (std::size_t k = 0; k < src.size(); ++k) {
      dst[k] = ClampRound(src[k] / scale, 127);
    }
  }
  return out;
}

MatrixF DequantizeActivations(const QuantizedActivations& acts) {
  MatrixF out(acts.q.rows(), acts.q.cols());
  for (std::size_t m = 0; m < acts.q.rows(); ++m) {
    const auto src = acts.q.Row(m);
    const auto dst = out.Row(m);
    for (std::size_t k = 0; k < src.size(); ++k) {
      dst[k] = static_cast<float>(src[k]) * acts.token_scale[m];
    }
  }
  return out;
}

}  // namespace liquid
