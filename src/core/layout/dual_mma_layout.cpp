#include "core/layout/dual_mma_layout.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

#include "util/swar.hpp"

namespace liquid {

FragCoord DualMmaLaneCoord(int t, int reg, int lane_idx) {
  // reg 0/1 -> MMA1 (cols 0..31), reg 2/3 -> MMA2 (cols 32..63).
  const int mma = reg / 2;
  const int half = reg % 2;  // element block e0..e7 vs e8..e15
  // Within a packed register, the interleaved nibble order means lane i (i<4)
  // is element 4*half*2 + i ... concretely lanes w0..w3 are the first
  // contiguous 4-vector and w4..w7 the second (see dequant.hpp unpack).
  const int e = half * 8 + lane_idx;
  FragCoord c = WgmmaFragmentCoord(t, e);
  c.col += mma * kFragCols;
  return c;
}

std::vector<RegisterProvenance> BuildDualMmaProvenance() {
  std::vector<RegisterProvenance> table(kSupertileRegs);
  for (int t = 0; t < kWgThreads; ++t) {
    for (int r = 0; r < kRegsPerThread; ++r) {
      RegisterProvenance& prov =
          table[static_cast<std::size_t>(t * kRegsPerThread + r)];
      for (int lane = 0; lane < 8; ++lane) {
        prov.lane[static_cast<std::size_t>(lane)] = DualMmaLaneCoord(t, r, lane);
      }
    }
  }
  return table;
}

DualMmaPackedWeights PackDualMma(const LqqWeights& w) {
  if (w.n % kSupertileRows != 0 || w.k % kSupertileCols != 0) {
    throw std::invalid_argument(
        "PackDualMma: N and K must be multiples of 64; got N=" +
        std::to_string(w.n) + ", K=" + std::to_string(w.k));
  }
  // Each packed register's 8 lanes span a 32-wide k range; they must fall in
  // a single quantization group so one (scale, offset) pair dequantizes the
  // whole register (see GemmW4A8LiquidDualMma).
  if (w.group_size % 32 != 0) {
    throw std::invalid_argument(
        "PackDualMma: group_size must be a multiple of 32; got " +
        std::to_string(w.group_size));
  }
  DualMmaPackedWeights out;
  out.n = w.n;
  out.k = w.k;
  out.group_size = w.group_size;
  out.group_params = w.group_params;
  out.channel_scale = w.channel_scale;
  out.regs.Resize(out.TilesN() * out.TilesK() * kSupertileRegs);

  const auto provenance = BuildDualMmaProvenance();
  std::size_t flat = 0;
  for (std::size_t tn = 0; tn < out.TilesN(); ++tn) {
    for (std::size_t tk = 0; tk < out.TilesK(); ++tk) {
      const std::size_t row0 = tn * kSupertileRows;
      const std::size_t col0 = tk * kSupertileCols;
      for (const RegisterProvenance& prov : provenance) {
        std::array<std::uint8_t, 8> lanes{};
        for (int i = 0; i < 8; ++i) {
          const FragCoord& c = prov.lane[static_cast<std::size_t>(i)];
          lanes[static_cast<std::size_t>(i)] =
              w.U4At(row0 + static_cast<std::size_t>(c.row),
                     col0 + static_cast<std::size_t>(c.col));
        }
        out.regs[flat++] = PackNibblesInterleaved(lanes);
      }
    }
  }
  return out;
}

std::vector<std::uint8_t> UnpackDualMmaToU4(const DualMmaPackedWeights& w) {
  std::vector<std::uint8_t> out(w.n * w.k, 0xFF);
  const auto provenance = BuildDualMmaProvenance();
  for (std::size_t tn = 0; tn < w.TilesN(); ++tn) {
    for (std::size_t tk = 0; tk < w.TilesK(); ++tk) {
      const auto tile = w.Tile(tn, tk);
      const std::size_t row0 = tn * kSupertileRows;
      const std::size_t col0 = tk * kSupertileCols;
      for (std::size_t r = 0; r < tile.size(); ++r) {
        const auto lanes = UnpackNibblesInterleaved(tile[r]);
        for (int i = 0; i < 8; ++i) {
          const FragCoord& c = provenance[r].lane[static_cast<std::size_t>(i)];
          out[(row0 + static_cast<std::size_t>(c.row)) * w.k + col0 +
              static_cast<std::size_t>(c.col)] =
              lanes[static_cast<std::size_t>(i)];
        }
      }
    }
  }
  return out;
}

}  // namespace liquid
