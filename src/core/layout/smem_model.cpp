#include "core/layout/smem_model.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <set>

#include "core/layout/wgmma_fragment.hpp"

namespace liquid {
namespace {

int PhasesFor(LdsWidth width) {
  switch (width) {
    case LdsWidth::kLds32: return 1;
    case LdsWidth::kLds64: return 2;
    case LdsWidth::kLds128: return 4;
  }
  return 1;
}

}  // namespace

SmemAccessReport AnalyzeWarpLoad(std::span<const std::uint64_t> addrs,
                                 LdsWidth width, int bytes_used_per_thread) {
  assert(addrs.size() == 32);
  const int bytes = static_cast<int>(width);
  const int phases = PhasesFor(width);
  const int threads_per_phase = 32 / phases;

  SmemAccessReport report;
  report.instructions = 1;
  report.min_cycles = phases;
  report.bytes_loaded = static_cast<std::uint64_t>(32 * bytes);
  report.bytes_used = static_cast<std::uint64_t>(32 * bytes_used_per_thread);

  for (int phase = 0; phase < phases; ++phase) {
    // Distinct words requested per bank; same-word requests broadcast free.
    std::array<std::set<std::uint64_t>, kSmemBanks> bank_words;
    for (int i = 0; i < threads_per_phase; ++i) {
      const std::uint64_t base = addrs[static_cast<std::size_t>(
          phase * threads_per_phase + i)];
      for (int b = 0; b < bytes; b += kSmemWordBytes) {
        const std::uint64_t word = (base + static_cast<std::uint64_t>(b)) /
                                   kSmemWordBytes;
        bank_words[word % kSmemBanks].insert(word);
      }
    }
    std::size_t worst = 1;
    for (const auto& words : bank_words) {
      worst = std::max(worst, words.size());
    }
    report.memory_cycles += static_cast<int>(worst);
  }
  return report;
}

SmemAccessReport DualMmaTileLoadCost() {
  // One LDS.128 per thread; thread t's 16-byte chunk sits at byte t*16
  // (Section 5.2's 1D layout: no swizzle, no address arithmetic).
  SmemAccessReport total;
  for (int warp = 0; warp < 4; ++warp) {
    std::array<std::uint64_t, 32> addrs{};
    for (int lane = 0; lane < 32; ++lane) {
      addrs[static_cast<std::size_t>(lane)] =
          static_cast<std::uint64_t>((warp * 32 + lane) * 16);
    }
    total += AnalyzeWarpLoad(addrs, LdsWidth::kLds128,
                             /*bytes_used_per_thread=*/16);
  }
  return total;
}

SmemAccessReport ConventionalTileLoadCost() {
  // Row-major 2D UINT4 supertile: 64 rows x 64 cols, row stride 32 bytes.
  // Per MMA fragment, each thread needs 4 vectors of 4 UINT4 (2 bytes each);
  // the narrowest usable load is LDS.32, wasting half of every transaction.
  constexpr std::uint64_t kRowStrideBytes = 64 / 2;
  SmemAccessReport total;
  for (int warp = 0; warp < 4; ++warp) {
    for (int mma = 0; mma < 2; ++mma) {
      for (int vec = 0; vec < kVectorsPerThread; ++vec) {
        std::array<std::uint64_t, 32> addrs{};
        for (int lane = 0; lane < 32; ++lane) {
          const FragCoord c = WgmmaFragmentCoord(warp * 32 + lane, vec * 4);
          const std::uint64_t byte =
              static_cast<std::uint64_t>(c.row) * kRowStrideBytes +
              static_cast<std::uint64_t>(c.col + mma * kFragCols) / 2;
          addrs[static_cast<std::size_t>(lane)] = byte & ~std::uint64_t{3};
        }
        total += AnalyzeWarpLoad(addrs, LdsWidth::kLds32,
                                 /*bytes_used_per_thread=*/2);
      }
    }
  }
  return total;
}

double LdmatrixMisdeliveryFraction() {
  // ldmatrix distributes each 16-byte row so that thread group p = lane%4
  // receives bytes [4p, 4p+4).  With 1-byte elements that is exactly the
  // thread's 4-element vector; with packed UINT4, those 4 bytes hold elements
  // [8p, 8p+8) while the thread needs elements [4p, 4p+4).
  int needed = 0;
  int delivered_correctly = 0;
  for (int p = 0; p < 4; ++p) {
    for (int e = 4 * p; e < 4 * p + 4; ++e) {
      ++needed;
      if (e >= 8 * p && e < 8 * p + 8) ++delivered_correctly;
    }
  }
  return 1.0 - static_cast<double>(delivered_correctly) /
                   static_cast<double>(needed);
}

}  // namespace liquid
