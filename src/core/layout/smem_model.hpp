#pragma once
// Shared-memory transaction model (paper Section 5.2).
//
// Hopper SMEM has 32 banks of 4-byte words.  A warp-wide load is split into
// phases; within a phase, requests to different words in the same bank
// serialize (bank conflict), while requests to the same word broadcast.
//   LDS.32  : 1 phase of 32 threads, 4 bytes each.
//   LDS.64  : 2 phases of 16 threads.
//   LDS.128 : 4 phases of 8 threads (each phase moves 128 B = all 32 banks).
//
// The model takes per-thread byte addresses, computes the number of serialized
// memory cycles, and reports wasted bandwidth — quantifying why the dual-MMA
// packed layout (1 conflict-free LDS.128 per thread) beats the conventional 2D
// layout (more instructions, half the loaded bytes unused, 2-way conflicts).

#include <cstdint>
#include <span>
#include <vector>

namespace liquid {

constexpr int kSmemBanks = 32;
constexpr int kSmemWordBytes = 4;

enum class LdsWidth : int {
  kLds32 = 4,
  kLds64 = 8,
  kLds128 = 16,
};

struct SmemAccessReport {
  int instructions = 0;      ///< warp-wide load instructions issued
  int memory_cycles = 0;     ///< serialized SMEM cycles (>= phases if conflicts)
  int min_cycles = 0;        ///< conflict-free lower bound for the same loads
  std::uint64_t bytes_loaded = 0;  ///< bytes moved from SMEM
  std::uint64_t bytes_used = 0;    ///< bytes the kernel actually consumes

  [[nodiscard]] double ConflictFactor() const {
    return min_cycles == 0 ? 1.0
                           : static_cast<double>(memory_cycles) / min_cycles;
  }
  [[nodiscard]] double BandwidthEfficiency() const {
    return bytes_loaded == 0 ? 1.0
                             : static_cast<double>(bytes_used) /
                                   static_cast<double>(bytes_loaded);
  }
  SmemAccessReport& operator+=(const SmemAccessReport& o) {
    instructions += o.instructions;
    memory_cycles += o.memory_cycles;
    min_cycles += o.min_cycles;
    bytes_loaded += o.bytes_loaded;
    bytes_used += o.bytes_used;
    return *this;
  }
};

/// Analyzes one warp-wide load: 32 per-thread byte addresses (thread i ->
/// addrs[i]) of `width` bytes each.  `bytes_used_per_thread` is how many of
/// those bytes the kernel consumes (e.g. 2 of 4 for UINT4 under LDS.32).
SmemAccessReport AnalyzeWarpLoad(std::span<const std::uint64_t> addrs,
                                 LdsWidth width, int bytes_used_per_thread);

/// Total SMEM cost for one warp group (4 warps) to load one 64x64 UINT4
/// supertile in the dual-MMA packed layout: one LDS.128 per thread.
SmemAccessReport DualMmaTileLoadCost();

/// Same supertile through the conventional row-major 2D UINT4 layout:
/// per MMA fragment each thread issues LDS.32 loads for its four 4-element
/// vectors, half of every transaction wasted (Section 5.2's "one alternative").
SmemAccessReport ConventionalTileLoadCost();

/// ldmatrix on a UINT4 tile assumes 1-byte elements and scatters nibbles to
/// the wrong threads (Figure 7a).  Returns the fraction of elements delivered
/// to the wrong owner — demonstrating why the instruction is unusable here,
/// not just slow.
double LdmatrixMisdeliveryFraction();

}  // namespace liquid
