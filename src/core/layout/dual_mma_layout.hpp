#pragma once
// Dual-MMA packed layout (paper Section 5.2, Figure 7b).
//
// Problem: with UINT4 elements, `ldmatrix` scatters bytes to the wrong
// threads, and per-thread `LDS.32` loads waste half their bandwidth (each
// thread only needs 16 bits per transaction).  LiquidGEMM instead packs, for
// every warp-group thread, the 32 UINT4 elements that thread needs for TWO
// consecutive k32 MMAs into one contiguous 16-byte chunk, so a single
// `LDS.128` per thread loads everything, conflict-free, with zero address
// arithmetic beyond `base + tid*16`.
//
// A layout "supertile" therefore covers 64 rows x 64 k-columns
// (two WGMMA.m64nNk32 fragments) = 128 threads x 16 bytes = 2 KiB of SMEM.
// Within a thread's chunk, registers are:
//   R0 = MMA1 elements e0..e7,  R1 = MMA1 elements e8..e15,
//   R2 = MMA2 elements e0..e7,  R3 = MMA2 elements e8..e15,
// each in the interleaved nibble order the 3-instruction unpack expects.
// GMEM uses the identical layout (Section 5.2: "the weight matrix in GMEM
// follows the same layout as in SMEM"), so TMA/LDG.128 transfers are plain
// contiguous copies — the reordering is entirely offline.

#include <cstdint>
#include <span>
#include <vector>

#include "core/layout/wgmma_fragment.hpp"
#include "core/quant/liquid_quant.hpp"
#include "util/buffer.hpp"

namespace liquid {

constexpr int kSupertileRows = 64;
constexpr int kSupertileCols = 64;  ///< two k32 MMA fragments
constexpr int kRegsPerThread = 4;   ///< 4 x 8 UINT4 = 32 elements = 16 bytes
constexpr int kSupertileRegs = kWgThreads * kRegsPerThread;  // 512 regs = 2 KiB

/// Provenance of a packed register: which (row, col) within the supertile each
/// of its 8 nibble lanes came from (lane order = unpack order w0..w7).
struct RegisterProvenance {
  std::array<FragCoord, 8> lane;
};

/// Coordinates of lane `lane_idx` (0..7) of register `reg` (0..3) of thread
/// `t` (0..127) within the 64x64 supertile.
FragCoord DualMmaLaneCoord(int t, int reg, int lane_idx);

/// Full provenance table for one supertile, indexed by flat register index
/// (t * kRegsPerThread + reg).  Deterministic; computed once and cached by
/// callers that stream many tiles.
std::vector<RegisterProvenance> BuildDualMmaProvenance();

/// Weights reordered into dual-MMA supertile order.
///
/// Supertiles are laid out row-major over the (N/64, K/64) grid; within a
/// supertile, registers are in flat thread order.  Group parameters are
/// untouched (they are indexed by (row, col/group) which the provenance map
/// recovers).
struct DualMmaPackedWeights {
  std::size_t n = 0;
  std::size_t k = 0;
  std::size_t group_size = 64;
  AlignedBuffer<std::uint32_t> regs;  ///< [ (n/64)*(k/64)*kSupertileRegs ]
  std::vector<LqqGroupParams> group_params;  ///< same as source LqqWeights
  std::vector<float> channel_scale;

  [[nodiscard]] std::size_t TilesN() const { return n / kSupertileRows; }
  [[nodiscard]] std::size_t TilesK() const { return k / kSupertileCols; }
  [[nodiscard]] std::size_t GroupsPerRow() const { return k / group_size; }
  [[nodiscard]] const LqqGroupParams& Params(std::size_t row,
                                             std::size_t group) const {
    return group_params[row * GroupsPerRow() + group];
  }
  /// Registers of one supertile, in flat thread order.
  [[nodiscard]] std::span<const std::uint32_t> Tile(std::size_t tile_n,
                                                    std::size_t tile_k) const {
    const std::size_t idx = (tile_n * TilesK() + tile_k) * kSupertileRegs;
    return {regs.data() + idx, kSupertileRegs};
  }
};

/// Offline reorder: LqqWeights (linear register order) -> dual-MMA supertile
/// order.  Requires n % 64 == 0 and k % 64 == 0 (padding is the caller's
/// responsibility, matching the paper's tile-aligned weight shapes).
DualMmaPackedWeights PackDualMma(const LqqWeights& w);

/// Inverse transform, for round-trip verification: recovers the raw UINT4
/// matrix [n x k] from the packed supertiles.
std::vector<std::uint8_t> UnpackDualMmaToU4(const DualMmaPackedWeights& w);

}  // namespace liquid
