#pragma once
// WGMMA fragment geometry (paper Section 5.2, Figure 7).
//
// Hopper's WGMMA.m64nNk32 INT8 instruction consumes a 64x32 fragment of the
// weight matrix W distributed across the 128 threads of a warp group:
//   * warp w (0..3) covers rows 16w .. 16w+15;
//   * within a warp, lane l covers rows {l/4, l/4 + 8} (relative to the warp's
//     slab) and k-columns {4*(l%4) .. +3} and {4*(l%4)+16 .. +3};
//   * each thread therefore holds 16 elements = 4 vectors of 4 contiguous
//     k-elements.
// This is the standard mma.m16n8k32 A-operand layout replicated over the four
// warps, which is how ldmatrix/WGMMA tile INT8 operands.

#include <array>
#include <cstdint>

namespace liquid {

struct FragCoord {
  int row = 0;  ///< 0..63 within the 64-row fragment
  int col = 0;  ///< 0..31 within the k32 fragment
};

constexpr int kWgThreads = 128;
constexpr int kFragRows = 64;
constexpr int kFragCols = 32;           ///< k extent of one INT8 WGMMA
constexpr int kElemsPerThread = 16;     ///< per MMA operand
constexpr int kVectorsPerThread = 4;    ///< 4 vectors of 4 contiguous elements

/// Coordinates of element `e` (0..15) owned by warp-group thread `t` (0..127).
constexpr FragCoord WgmmaFragmentCoord(int t, int e) {
  const int warp = t / 32;
  const int lane = t % 32;
  const int vec = e / 4;   // 0..3
  const int j = e % 4;     // position within the contiguous 4-vector
  FragCoord c;
  c.row = 16 * warp + lane / 4 + (vec >= 2 ? 8 : 0);
  c.col = 4 * (lane % 4) + (vec % 2 == 1 ? 16 : 0) + j;
  return c;
}

/// The 16 coordinates owned by thread `t`, in register order: the first 8
/// elements land in one packed UINT4 register (low nibbles = vector 0, high
/// nibbles = vector 1 after the interleaved pack), the second 8 in the next.
constexpr std::array<FragCoord, kElemsPerThread> WgmmaThreadFragment(int t) {
  std::array<FragCoord, kElemsPerThread> out{};
  for (int e = 0; e < kElemsPerThread; ++e) out[static_cast<std::size_t>(e)] = WgmmaFragmentCoord(t, e);
  return out;
}

}  // namespace liquid
