// Public GEMM entry points: shape validation + provider dispatch, plus the
// provider-independent offline quantizers (W8A8, W4A16).
//
// The kernels themselves live in gemm_reference.cpp / gemm_portable.cpp /
// gemm_avx2.cpp behind the GemmKernelTable in kernels.hpp.

#include "core/gemm/gemm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/gemm/gemm_counters.hpp"
#include "core/gemm/kernels.hpp"

namespace liquid {
namespace {

// Shape preconditions throw (not assert): in a Release build an assert
// compiles out and a mismatched K silently reads out of bounds.
[[noreturn]] void ThrowShape(const char* kernel, const std::string& detail) {
  throw std::invalid_argument(std::string(kernel) + ": " + detail);
}

void CheckFloatGemm(const char* kernel, const MatrixF& x, const MatrixF& w) {
  if (x.cols() != w.cols()) {
    ThrowShape(kernel, "K mismatch: x is [" + std::to_string(x.rows()) + " x " +
                           std::to_string(x.cols()) + "], w is [" +
                           std::to_string(w.rows()) + " x " +
                           std::to_string(w.cols()) + "]");
  }
}

void CheckActivations(const char* kernel, const QuantizedActivations& x,
                      std::size_t k) {
  if (x.q.cols() != k) {
    ThrowShape(kernel, "K mismatch: activations have K=" +
                           std::to_string(x.q.cols()) + ", weights have K=" +
                           std::to_string(k));
  }
  if (x.token_scale.size() != x.q.rows()) {
    ThrowShape(kernel, "token_scale has " +
                           std::to_string(x.token_scale.size()) +
                           " entries for " + std::to_string(x.q.rows()) +
                           " token rows");
  }
}

void CheckChannelScale(const char* kernel, std::size_t scales, std::size_t n) {
  if (scales != n) {
    ThrowShape(kernel, "channel_scale has " + std::to_string(scales) +
                           " entries for " + std::to_string(n) +
                           " output channels");
  }
}

void CheckPackedW4A8(const char* kernel, std::size_t n, std::size_t k,
                     std::size_t group_size, std::size_t packed_regs,
                     std::size_t groups) {
  if (group_size == 0 || group_size % 8 != 0) {
    ThrowShape(kernel, "group_size " + std::to_string(group_size) +
                           " must be a positive multiple of 8");
  }
  if (k % group_size != 0) {
    ThrowShape(kernel, "K=" + std::to_string(k) +
                           " is not a multiple of group_size=" +
                           std::to_string(group_size));
  }
  if (packed_regs != n * (k / 8)) {
    ThrowShape(kernel, "packed register count " + std::to_string(packed_regs) +
                           " != n*k/8 = " + std::to_string(n * (k / 8)));
  }
  if (groups != n * (k / group_size)) {
    ThrowShape(kernel, "group_params count " + std::to_string(groups) +
                           " != n*k/group_size = " +
                           std::to_string(n * (k / group_size)));
  }
}

// Host-resident bytes the kernel actually touches (arithmetic-intensity
// accounting): quantized activations are INT8 + one fp32 scale per token;
// float activations/weights are fp32 storage (the fp16 kernel simulates
// half precision over fp32-resident matrices).
std::size_t ActivationBytes(const QuantizedActivations& x) {
  return x.q.rows() * x.q.cols() + x.token_scale.size() * 4;
}

std::size_t ActivationBytes(const MatrixF& x) { return x.rows() * x.cols() * 4; }

}  // namespace

MatrixF GemmReference(const MatrixF& x, const MatrixF& w,
                      GemmProvider provider) {
  CheckFloatGemm("GemmReference", x, w);
  gemmstats::Count(gemmstats::Kernel::kFp32, x.rows(), w.rows(), x.cols(),
                   w.rows() * w.cols() * 4, ActivationBytes(x));
  return detail::Kernels(provider).fp32(x, w);
}

MatrixF GemmFp16(const MatrixF& x, const MatrixF& w, GemmProvider provider) {
  CheckFloatGemm("GemmFp16", x, w);
  gemmstats::Count(gemmstats::Kernel::kFp16, x.rows(), w.rows(), x.cols(),
                   w.rows() * w.cols() * 4, ActivationBytes(x));
  return detail::Kernels(provider).fp16(x, w);
}

W8A8Weights QuantizeWeightsW8A8(const MatrixF& weights) {
  FirstLevelOptions options;
  options.protective_range = false;  // plain symmetric INT8
  FirstLevelResult first = QuantizeFirstLevel(weights, options);
  W8A8Weights out;
  out.q = std::move(first.q);
  out.channel_scale = std::move(first.channel_scale);
  return out;
}

MatrixF GemmW8A8(const QuantizedActivations& x, const W8A8Weights& w,
                 GemmProvider provider) {
  CheckActivations("GemmW8A8", x, w.q.cols());
  CheckChannelScale("GemmW8A8", w.channel_scale.size(), w.q.rows());
  gemmstats::Count(gemmstats::Kernel::kW8A8, x.q.rows(), w.q.rows(),
                   w.q.cols(), w.StorageBytes(), ActivationBytes(x));
  return detail::Kernels(provider).w8a8(x, w);
}

float W4A16Weights::Dequant(std::size_t row, std::size_t col) const {
  const std::uint8_t byte = packed[row * (k / 2) + col / 2];
  const std::uint8_t q =
      (col % 2 == 0) ? (byte & 0x0Fu) : static_cast<std::uint8_t>(byte >> 4);
  const std::size_t g = row * (k / group_size) + col / group_size;
  return static_cast<float>(q) * group_scale[g].ToFloat() -
         group_zero[g].ToFloat();
}

W4A16Weights QuantizeWeightsW4A16(const MatrixF& weights,
                                  std::size_t group_size) {
  const std::size_t n = weights.rows();
  const std::size_t k = weights.cols();
  if (group_size == 0) {
    ThrowShape("QuantizeWeightsW4A16", "group_size must be >= 1");
  }
  if (k % group_size != 0 || k % 2 != 0) {
    ThrowShape("QuantizeWeightsW4A16",
               "K=" + std::to_string(k) + " must be a multiple of 2 and of "
               "group_size=" + std::to_string(group_size));
  }
  W4A16Weights out;
  out.n = n;
  out.k = k;
  out.group_size = group_size;
  out.packed.assign(n * k / 2, 0);
  out.group_scale.resize(n * (k / group_size));
  out.group_zero.resize(n * (k / group_size));
  for (std::size_t row = 0; row < n; ++row) {
    for (std::size_t gi = 0; gi < k / group_size; ++gi) {
      float lo = weights.At(row, gi * group_size);
      float hi = lo;
      for (std::size_t j = 1; j < group_size; ++j) {
        const float v = weights.At(row, gi * group_size + j);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      float scale = (hi - lo) / 15.0f;
      if (scale <= 0.0f) scale = 1.0f;
      out.group_scale[row * (k / group_size) + gi] = Half(scale);
      const float s_eff =
          out.group_scale[row * (k / group_size) + gi].ToFloat();
      // AWQ-style: w ≈ (q - z_q)*s with the zero point z_q snapped to the
      // quantization grid, so dequantization never leaves the INT4 lattice.
      const int zero_q = static_cast<int>(
          std::clamp(std::nearbyint(-lo / s_eff), 0.0f, 15.0f));
      out.group_zero[row * (k / group_size) + gi] =
          Half(static_cast<float>(zero_q) * s_eff);
      const float z_eff = out.group_zero[row * (k / group_size) + gi].ToFloat();
      for (std::size_t j = 0; j < group_size; ++j) {
        const std::size_t col = gi * group_size + j;
        const float v = weights.At(row, col);
        const int q = static_cast<int>(
            std::clamp(std::nearbyint((v + z_eff) / s_eff), 0.0f, 15.0f));
        std::uint8_t& byte = out.packed[row * (k / 2) + col / 2];
        if (col % 2 == 0) {
          byte = static_cast<std::uint8_t>((byte & 0xF0u) | q);
        } else {
          byte = static_cast<std::uint8_t>((byte & 0x0Fu) | (q << 4));
        }
      }
    }
  }
  return out;
}

MatrixF GemmW4A16(const MatrixF& x, const W4A16Weights& w,
                  GemmProvider provider) {
  if (x.cols() != w.k) {
    ThrowShape("GemmW4A16", "K mismatch: x has K=" + std::to_string(x.cols()) +
                                ", weights have K=" + std::to_string(w.k));
  }
  if (w.group_size == 0 || w.k % w.group_size != 0 || w.k % 2 != 0 ||
      w.packed.size() != w.n * w.k / 2) {
    ThrowShape("GemmW4A16", "malformed W4A16Weights (n=" + std::to_string(w.n) +
                                ", k=" + std::to_string(w.k) + ", group_size=" +
                                std::to_string(w.group_size) + ")");
  }
  gemmstats::Count(gemmstats::Kernel::kW4A16, x.rows(), w.n, w.k,
                   w.StorageBytes(), ActivationBytes(x));
  return detail::Kernels(provider).w4a16(x, w);
}

MatrixF GemmW4A8Liquid(const QuantizedActivations& x, const LqqWeights& w,
                       GemmProvider provider) {
  CheckActivations("GemmW4A8Liquid", x, w.k);
  CheckChannelScale("GemmW4A8Liquid", w.channel_scale.size(), w.n);
  CheckPackedW4A8("GemmW4A8Liquid", w.n, w.k, w.group_size, w.packed.size(),
                  w.group_params.size());
  gemmstats::Count(gemmstats::Kernel::kW4A8Lqq, x.q.rows(), w.n, w.k,
                   w.StorageBytes(), ActivationBytes(x));
  return detail::Kernels(provider).w4a8_lqq(x, w);
}

MatrixF GemmW4A8LiquidDualMma(const QuantizedActivations& x,
                              const DualMmaPackedWeights& w,
                              GemmProvider provider) {
  CheckActivations("GemmW4A8LiquidDualMma", x, w.k);
  CheckChannelScale("GemmW4A8LiquidDualMma", w.channel_scale.size(), w.n);
  if (w.n % kSupertileRows != 0 || w.k % kSupertileCols != 0) {
    ThrowShape("GemmW4A8LiquidDualMma",
               "supertile layout needs N, K multiples of 64; got N=" +
                   std::to_string(w.n) + ", K=" + std::to_string(w.k));
  }
  gemmstats::Count(gemmstats::Kernel::kW4A8DualMma, x.q.rows(), w.n, w.k,
                   w.regs.size() * sizeof(std::uint32_t) +
                       w.group_params.size() * sizeof(LqqGroupParams) +
                       w.channel_scale.size() * 4,
                   ActivationBytes(x));
  return detail::Kernels(provider).w4a8_dual(x, w);
}

MatrixF GemmW4A8Qserve(const QuantizedActivations& x, const QserveWeights& w,
                       GemmProvider provider) {
  CheckActivations("GemmW4A8Qserve", x, w.k);
  CheckChannelScale("GemmW4A8Qserve", w.channel_scale.size(), w.n);
  CheckPackedW4A8("GemmW4A8Qserve", w.n, w.k, w.group_size, w.packed.size(),
                  w.group_params.size());
  gemmstats::Count(gemmstats::Kernel::kW4A8Qserve, x.q.rows(), w.n, w.k,
                   w.StorageBytes(), ActivationBytes(x));
  return detail::Kernels(provider).w4a8_qserve(x, w);
}

MatrixF LiquidGemm(const MatrixF& x, const LqqWeights& w,
                   GemmProvider provider) {
  return GemmW4A8Liquid(QuantizeActivationsPerToken(x), w, provider);
}

}  // namespace liquid
