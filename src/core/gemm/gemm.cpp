#include "core/gemm/gemm.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/dequant/dequant.hpp"

namespace liquid {
namespace {

/// INT8 dot product with INT32 accumulation (tensor-core IMMA semantics).
std::int32_t DotI8(const std::int8_t* a, const std::int8_t* b, std::size_t k) {
  std::int32_t acc = 0;
  for (std::size_t i = 0; i < k; ++i) {
    acc += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return acc;
}

}  // namespace

MatrixF GemmReference(const MatrixF& x, const MatrixF& w) {
  assert(x.cols() == w.cols());
  MatrixF y(x.rows(), w.rows());
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t m = 0; m < static_cast<std::ptrdiff_t>(x.rows()); ++m) {
    const auto xr = x.Row(static_cast<std::size_t>(m));
    for (std::size_t n = 0; n < w.rows(); ++n) {
      const auto wr = w.Row(n);
      float acc = 0.0f;
      for (std::size_t k = 0; k < xr.size(); ++k) acc += xr[k] * wr[k];
      y.At(static_cast<std::size_t>(m), n) = acc;
    }
  }
  return y;
}

MatrixF GemmFp16(const MatrixF& x, const MatrixF& w) {
  assert(x.cols() == w.cols());
  MatrixF y(x.rows(), w.rows());
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t m = 0; m < static_cast<std::ptrdiff_t>(x.rows()); ++m) {
    const auto xr = x.Row(static_cast<std::size_t>(m));
    for (std::size_t n = 0; n < w.rows(); ++n) {
      const auto wr = w.Row(n);
      float acc = 0.0f;  // tensor cores accumulate FP16 products in FP32
      for (std::size_t k = 0; k < xr.size(); ++k) {
        acc += QuantizeToHalf(xr[k]) * QuantizeToHalf(wr[k]);
      }
      y.At(static_cast<std::size_t>(m), n) = acc;
    }
  }
  return y;
}

W8A8Weights QuantizeWeightsW8A8(const MatrixF& weights) {
  FirstLevelOptions options;
  options.protective_range = false;  // plain symmetric INT8
  FirstLevelResult first = QuantizeFirstLevel(weights, options);
  W8A8Weights out;
  out.q = std::move(first.q);
  out.channel_scale = std::move(first.channel_scale);
  return out;
}

MatrixF GemmW8A8(const QuantizedActivations& x, const W8A8Weights& w) {
  assert(x.q.cols() == w.q.cols());
  MatrixF y(x.q.rows(), w.q.rows());
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t m = 0; m < static_cast<std::ptrdiff_t>(x.q.rows()); ++m) {
    const std::size_t mu = static_cast<std::size_t>(m);
    for (std::size_t n = 0; n < w.q.rows(); ++n) {
      const std::int32_t acc =
          DotI8(x.q.Row(mu).data(), w.q.Row(n).data(), x.q.cols());
      y.At(mu, n) = static_cast<float>(acc) * x.token_scale[mu] *
                    w.channel_scale[n];
    }
  }
  return y;
}

float W4A16Weights::Dequant(std::size_t row, std::size_t col) const {
  const std::uint8_t byte = packed[row * (k / 2) + col / 2];
  const std::uint8_t q =
      (col % 2 == 0) ? (byte & 0x0Fu) : static_cast<std::uint8_t>(byte >> 4);
  const std::size_t g = row * (k / group_size) + col / group_size;
  return static_cast<float>(q) * group_scale[g].ToFloat() -
         group_zero[g].ToFloat();
}

W4A16Weights QuantizeWeightsW4A16(const MatrixF& weights,
                                  std::size_t group_size) {
  const std::size_t n = weights.rows();
  const std::size_t k = weights.cols();
  assert(k % group_size == 0 && k % 2 == 0);
  W4A16Weights out;
  out.n = n;
  out.k = k;
  out.group_size = group_size;
  out.packed.assign(n * k / 2, 0);
  out.group_scale.resize(n * (k / group_size));
  out.group_zero.resize(n * (k / group_size));
  for (std::size_t row = 0; row < n; ++row) {
    for (std::size_t gi = 0; gi < k / group_size; ++gi) {
      float lo = weights.At(row, gi * group_size);
      float hi = lo;
      for (std::size_t j = 1; j < group_size; ++j) {
        const float v = weights.At(row, gi * group_size + j);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      float scale = (hi - lo) / 15.0f;
      if (scale <= 0.0f) scale = 1.0f;
      // AWQ-style: w ≈ q*s - z where z = -lo rounded into the grid.
      const float zero = -lo;
      out.group_scale[row * (k / group_size) + gi] = Half(scale);
      out.group_zero[row * (k / group_size) + gi] = Half(zero);
      const float s_eff =
          out.group_scale[row * (k / group_size) + gi].ToFloat();
      const float z_eff = out.group_zero[row * (k / group_size) + gi].ToFloat();
      for (std::size_t j = 0; j < group_size; ++j) {
        const std::size_t col = gi * group_size + j;
        const float v = weights.At(row, col);
        const int q = static_cast<int>(
            std::clamp(std::nearbyint((v + z_eff) / s_eff), 0.0f, 15.0f));
        std::uint8_t& byte = out.packed[row * (k / 2) + col / 2];
        if (col % 2 == 0) {
          byte = static_cast<std::uint8_t>((byte & 0xF0u) | q);
        } else {
          byte = static_cast<std::uint8_t>((byte & 0x0Fu) | (q << 4));
        }
      }
    }
  }
  return out;
}

MatrixF GemmW4A16(const MatrixF& x, const W4A16Weights& w) {
  assert(x.cols() == w.k);
  MatrixF y(x.rows(), w.n);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t m = 0; m < static_cast<std::ptrdiff_t>(x.rows()); ++m) {
    const std::size_t mu = static_cast<std::size_t>(m);
    const auto xr = x.Row(mu);
    for (std::size_t n = 0; n < w.n; ++n) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < w.k; ++k) {
        acc += QuantizeToHalf(xr[k]) * QuantizeToHalf(w.Dequant(n, k));
      }
      y.At(mu, n) = acc;
    }
  }
  return y;
}

MatrixF GemmW4A8Liquid(const QuantizedActivations& x, const LqqWeights& w) {
  assert(x.q.cols() == w.k);
  MatrixF y(x.q.rows(), w.n);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t n = 0; n < static_cast<std::ptrdiff_t>(w.n); ++n) {
    const std::size_t nu = static_cast<std::size_t>(n);
    // Main loop, weight-stationary per output channel: SWAR dequant of the
    // packed row, then INT8 MMA against every token.
    std::vector<std::int8_t> wrow(w.k);
    LqqDequantRow(w, nu, wrow);
    for (std::size_t m = 0; m < x.q.rows(); ++m) {
      const std::int32_t acc = DotI8(x.q.Row(m).data(), wrow.data(), w.k);
      // Epilogue: first-level dequantization (token scale x channel scale).
      y.At(m, nu) = static_cast<float>(acc) * x.token_scale[m] *
                    w.channel_scale[nu];
    }
  }
  return y;
}

MatrixF GemmW4A8LiquidDualMma(const QuantizedActivations& x,
                              const DualMmaPackedWeights& w) {
  assert(x.q.cols() == w.k);
  const std::size_t m_dim = x.q.rows();
  MatrixF y(m_dim, w.n);
  const auto provenance = BuildDualMmaProvenance();

  // Per-tile INT32 accumulators, exactly like a thread block's RF fragment.
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t tn = 0; tn < static_cast<std::ptrdiff_t>(w.TilesN());
       ++tn) {
    const std::size_t tnu = static_cast<std::size_t>(tn);
    std::vector<std::int32_t> acc(m_dim * kSupertileRows, 0);
    for (std::size_t tk = 0; tk < w.TilesK(); ++tk) {
      const auto tile = w.Tile(tnu, tk);
      const std::size_t col0 = tk * kSupertileCols;
      for (std::size_t r = 0; r < tile.size(); ++r) {
        // Dequantize this register with its group's parameters.  All 8 lanes
        // of a register share one row and sit inside one K-group because the
        // group size (64) covers the whole supertile width.
        const FragCoord& first = provenance[r].lane[0];
        const std::size_t row =
            tnu * kSupertileRows + static_cast<std::size_t>(first.row);
        const std::size_t group =
            (col0 + static_cast<std::size_t>(first.col)) / w.group_size;
        const LqqGroupParams& p = w.Params(row, group);
        const Dequanted8 d = LqqDequant8(tile[r], p.scale, p.offset);
        std::int8_t vals[8];
        StoreDequanted8(d, vals);
        for (int lane = 0; lane < 8; ++lane) {
          const FragCoord& c = provenance[r].lane[static_cast<std::size_t>(lane)];
          const std::size_t col = col0 + static_cast<std::size_t>(c.col);
          for (std::size_t m = 0; m < m_dim; ++m) {
            acc[m * kSupertileRows + static_cast<std::size_t>(c.row)] +=
                static_cast<std::int32_t>(x.q.At(m, col)) *
                static_cast<std::int32_t>(vals[lane]);
          }
        }
      }
    }
    for (std::size_t m = 0; m < m_dim; ++m) {
      for (std::size_t rr = 0; rr < kSupertileRows; ++rr) {
        const std::size_t nu = tnu * kSupertileRows + rr;
        y.At(m, nu) = static_cast<float>(acc[m * kSupertileRows + rr]) *
                      x.token_scale[m] * w.channel_scale[nu];
      }
    }
  }
  return y;
}

MatrixF GemmW4A8Qserve(const QuantizedActivations& x, const QserveWeights& w) {
  assert(x.q.cols() == w.k);
  MatrixF y(x.q.rows(), w.n);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t n = 0; n < static_cast<std::ptrdiff_t>(w.n); ++n) {
    const std::size_t nu = static_cast<std::size_t>(n);
    std::vector<std::int8_t> wrow(w.k);
    QserveDequantRow(w, nu, wrow);
    for (std::size_t m = 0; m < x.q.rows(); ++m) {
      const std::int32_t acc = DotI8(x.q.Row(m).data(), wrow.data(), w.k);
      y.At(m, nu) = static_cast<float>(acc) * x.token_scale[m] *
                    w.channel_scale[nu];
    }
  }
  return y;
}

MatrixF LiquidGemm(const MatrixF& x, const LqqWeights& w) {
  return GemmW4A8Liquid(QuantizeActivationsPerToken(x), w);
}

}  // namespace liquid
