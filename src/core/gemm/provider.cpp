#include "core/gemm/provider.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "core/gemm/kernels.hpp"

namespace liquid {
namespace {

bool CpuHasAvx2() {
#if defined(LIQUID_HAS_AVX2) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

GemmProvider AutoDetect() {
  if (GemmProviderAvailable(GemmProvider::kAvx2)) return GemmProvider::kAvx2;
  return GemmProvider::kPortable;
}

GemmProvider ResolveFromEnv() {
  const char* env = std::getenv("LIQUID_GEMM_PROVIDER");
  if (env == nullptr || *env == '\0') return AutoDetect();
  GemmProvider wanted = GemmProvider::kAuto;
  if (!ParseGemmProvider(env, &wanted)) {
    std::fprintf(stderr,
                 "liquid: LIQUID_GEMM_PROVIDER=\"%s\" is not a known provider "
                 "(auto|reference|portable|avx2); using auto-detection\n",
                 env);
    return AutoDetect();
  }
  if (wanted == GemmProvider::kAuto) return AutoDetect();
  if (!GemmProviderAvailable(wanted)) {
    std::fprintf(stderr,
                 "liquid: LIQUID_GEMM_PROVIDER=%s is not available on this "
                 "machine; using auto-detection\n",
                 GemmProviderName(wanted));
    return AutoDetect();
  }
  return wanted;
}

// kAuto encodes "not yet overridden": resolution happens lazily so the env
// variable can be set before the first GEMM call rather than before load.
std::atomic<GemmProvider> g_override{GemmProvider::kAuto};

}  // namespace

const char* GemmProviderName(GemmProvider p) {
  switch (p) {
    case GemmProvider::kAuto: return "auto";
    case GemmProvider::kReference: return "reference";
    case GemmProvider::kPortable: return "portable";
    case GemmProvider::kAvx2: return "avx2";
  }
  return "unknown";
}

bool ParseGemmProvider(std::string_view name, GemmProvider* out) {
  std::string lower(name);
  for (char& c : lower) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  for (GemmProvider p : {GemmProvider::kAuto, GemmProvider::kReference,
                         GemmProvider::kPortable, GemmProvider::kAvx2}) {
    if (lower == GemmProviderName(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

bool GemmProviderCompiled(GemmProvider p) {
  switch (p) {
    case GemmProvider::kAuto:
    case GemmProvider::kReference:
    case GemmProvider::kPortable:
      return true;
    case GemmProvider::kAvx2:
#if defined(LIQUID_HAS_AVX2)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool GemmProviderAvailable(GemmProvider p) {
  if (!GemmProviderCompiled(p)) return false;
  if (p == GemmProvider::kAvx2) return CpuHasAvx2();
  return true;
}

std::vector<GemmProvider> AvailableGemmProviders() {
  std::vector<GemmProvider> out;
  for (GemmProvider p : {GemmProvider::kAvx2, GemmProvider::kPortable,
                         GemmProvider::kReference}) {
    if (GemmProviderAvailable(p)) out.push_back(p);
  }
  return out;
}

GemmProvider ActiveGemmProvider() {
  const GemmProvider forced = g_override.load(std::memory_order_relaxed);
  if (forced != GemmProvider::kAuto) return forced;
  // Resolved once; env changes after the first call are intentionally ignored.
  static const GemmProvider resolved = ResolveFromEnv();
  return resolved;
}

void SetGemmProvider(GemmProvider p) {
  if (p != GemmProvider::kAuto && !GemmProviderAvailable(p)) {
    throw std::invalid_argument(
        std::string("SetGemmProvider: provider '") + GemmProviderName(p) +
        "' is not available on this machine");
  }
  g_override.store(p, std::memory_order_relaxed);
}

namespace detail {

const GemmKernelTable& Kernels(GemmProvider p) {
  if (p == GemmProvider::kAuto) p = ActiveGemmProvider();
  switch (p) {
    case GemmProvider::kReference: return ReferenceKernels();
    case GemmProvider::kPortable: return PortableKernels();
    case GemmProvider::kAvx2:
      if (GemmProviderAvailable(GemmProvider::kAvx2)) return Avx2Kernels();
      break;
    case GemmProvider::kAuto: break;
  }
  throw std::invalid_argument(
      std::string("GEMM provider '") + GemmProviderName(p) +
      "' is not available in this build / on this machine");
}

}  // namespace detail
}  // namespace liquid
