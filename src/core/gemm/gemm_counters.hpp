// Always-on arithmetic counters for the GEMM provider table.
//
// Every public GEMM entry point records (calls, MACs, bytes moved) per
// kernel into relaxed atomics — a handful of adds against kernels that do
// m*n*k work, so there is no compile-time gate.  `AiCsv()` renders the
// arithmetic-intensity table (FLOPs / byte, the roofline x-axis) that the
// profiler sink writes next to the wall-clock profile.
//
// Lives in core (not obs): the hot path must not pull the obs layer into
// core, and the counters are plain process-wide state either side can read.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace liquid::gemmstats {

enum class Kernel : std::size_t {
  kFp32 = 0,
  kFp16,
  kW8A8,
  kW4A16,
  kW4A8Lqq,
  kW4A8DualMma,
  kW4A8Qserve,
};
inline constexpr std::size_t kKernelCount = 7;

/// Stable lower-case name, used as the CSV row key.
[[nodiscard]] const char* KernelName(Kernel kernel);

/// Records one call of `kernel` on an [m x k] · [n x k]^T problem.
/// `weight_bytes` is the resident quantized-weight footprint
/// (`StorageBytes()` where the format defines it), `activation_bytes` the
/// input-activation footprint; the [m x n] fp32 output is added internally.
void Count(Kernel kernel, std::size_t m, std::size_t n, std::size_t k,
           std::size_t weight_bytes, std::size_t activation_bytes);

struct KernelTotals {
  std::uint64_t calls = 0;
  std::uint64_t macs = 0;
  std::uint64_t bytes = 0;
};

[[nodiscard]] KernelTotals Totals(Kernel kernel);

/// Zeroes every counter (tests; bench warm-up exclusion).
void ResetGemmCounters();

/// `kernel,calls,macs,bytes,flops,arithmetic_intensity` — one row per
/// kernel in enum order (fixed schema; untouched kernels show zeros).
[[nodiscard]] std::string AiCsv();

}  // namespace liquid::gemmstats
