// Reference GEMM provider: the original scalar kernels, kept as the
// numerical oracle every other provider is tested against.
//
// Two hot-loop fixes relative to the seed code, both behavior-preserving:
//   * the per-output-channel `std::vector<int8_t> wrow(k)` scratch in the
//     W4A8 kernels is hoisted to one allocation per OpenMP thread (the seed
//     allocated and freed it N times per GEMM, inside the parallel loop);
//   * shape checks moved to the dispatch layer (gemm.cpp), where they throw
//     in every build type instead of assert-ing only in Debug.

#include <cstdint>
#include <vector>

#include "core/dequant/dequant.hpp"
#include "core/gemm/kernels.hpp"

namespace liquid::detail {
namespace {

/// INT8 dot product with INT32 accumulation (tensor-core IMMA semantics).
std::int32_t DotI8(const std::int8_t* a, const std::int8_t* b, std::size_t k) {
  std::int32_t acc = 0;
  for (std::size_t i = 0; i < k; ++i) {
    acc += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return acc;
}

MatrixF RefFp32(const MatrixF& x, const MatrixF& w) {
  MatrixF y(x.rows(), w.rows());
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t m = 0; m < static_cast<std::ptrdiff_t>(x.rows()); ++m) {
    const auto xr = x.Row(static_cast<std::size_t>(m));
    for (std::size_t n = 0; n < w.rows(); ++n) {
      const auto wr = w.Row(n);
      float acc = 0.0f;
      for (std::size_t k = 0; k < xr.size(); ++k) acc += xr[k] * wr[k];
      y.At(static_cast<std::size_t>(m), n) = acc;
    }
  }
  return y;
}

MatrixF RefFp16(const MatrixF& x, const MatrixF& w) {
  MatrixF y(x.rows(), w.rows());
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t m = 0; m < static_cast<std::ptrdiff_t>(x.rows()); ++m) {
    const auto xr = x.Row(static_cast<std::size_t>(m));
    for (std::size_t n = 0; n < w.rows(); ++n) {
      const auto wr = w.Row(n);
      float acc = 0.0f;  // tensor cores accumulate FP16 products in FP32
      for (std::size_t k = 0; k < xr.size(); ++k) {
        acc += QuantizeToHalf(xr[k]) * QuantizeToHalf(wr[k]);
      }
      y.At(static_cast<std::size_t>(m), n) = acc;
    }
  }
  return y;
}

MatrixF RefW8A8(const QuantizedActivations& x, const W8A8Weights& w) {
  MatrixF y(x.q.rows(), w.q.rows());
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t m = 0; m < static_cast<std::ptrdiff_t>(x.q.rows()); ++m) {
    const std::size_t mu = static_cast<std::size_t>(m);
    for (std::size_t n = 0; n < w.q.rows(); ++n) {
      const std::int32_t acc =
          DotI8(x.q.Row(mu).data(), w.q.Row(n).data(), x.q.cols());
      y.At(mu, n) = static_cast<float>(acc) * x.token_scale[mu] *
                    w.channel_scale[n];
    }
  }
  return y;
}

MatrixF RefW4A16(const MatrixF& x, const W4A16Weights& w) {
  MatrixF y(x.rows(), w.n);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t m = 0; m < static_cast<std::ptrdiff_t>(x.rows()); ++m) {
    const std::size_t mu = static_cast<std::size_t>(m);
    const auto xr = x.Row(mu);
    for (std::size_t n = 0; n < w.n; ++n) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < w.k; ++k) {
        acc += QuantizeToHalf(xr[k]) * QuantizeToHalf(w.Dequant(n, k));
      }
      y.At(mu, n) = acc;
    }
  }
  return y;
}

MatrixF RefW4A8Lqq(const QuantizedActivations& x, const LqqWeights& w) {
  MatrixF y(x.q.rows(), w.n);
#pragma omp parallel
  {
    // Per-thread scratch, hoisted out of the channel loop.
    std::vector<std::int8_t> wrow(w.k);
#pragma omp for schedule(static)
    for (std::ptrdiff_t n = 0; n < static_cast<std::ptrdiff_t>(w.n); ++n) {
      const std::size_t nu = static_cast<std::size_t>(n);
      // Main loop, weight-stationary per output channel: SWAR dequant of the
      // packed row, then INT8 MMA against every token.
      LqqDequantRow(w, nu, wrow);
      for (std::size_t m = 0; m < x.q.rows(); ++m) {
        const std::int32_t acc = DotI8(x.q.Row(m).data(), wrow.data(), w.k);
        // Epilogue: first-level dequantization (token scale x channel scale).
        y.At(m, nu) = static_cast<float>(acc) * x.token_scale[m] *
                      w.channel_scale[nu];
      }
    }
  }
  return y;
}

MatrixF RefW4A8Qserve(const QuantizedActivations& x, const QserveWeights& w) {
  MatrixF y(x.q.rows(), w.n);
#pragma omp parallel
  {
    std::vector<std::int8_t> wrow(w.k);
#pragma omp for schedule(static)
    for (std::ptrdiff_t n = 0; n < static_cast<std::ptrdiff_t>(w.n); ++n) {
      const std::size_t nu = static_cast<std::size_t>(n);
      QserveDequantRow(w, nu, wrow);
      for (std::size_t m = 0; m < x.q.rows(); ++m) {
        const std::int32_t acc = DotI8(x.q.Row(m).data(), wrow.data(), w.k);
        y.At(m, nu) = static_cast<float>(acc) * x.token_scale[m] *
                      w.channel_scale[nu];
      }
    }
  }
  return y;
}

MatrixF RefW4A8DualMma(const QuantizedActivations& x,
                       const DualMmaPackedWeights& w) {
  const std::size_t m_dim = x.q.rows();
  MatrixF y(m_dim, w.n);
  const auto provenance = BuildDualMmaProvenance();

  // Per-tile INT32 accumulators, exactly like a thread block's RF fragment.
#pragma omp parallel
  {
    std::vector<std::int32_t> acc(m_dim * kSupertileRows);
#pragma omp for schedule(static)
    for (std::ptrdiff_t tn = 0; tn < static_cast<std::ptrdiff_t>(w.TilesN());
         ++tn) {
      const std::size_t tnu = static_cast<std::size_t>(tn);
      acc.assign(m_dim * kSupertileRows, 0);
      for (std::size_t tk = 0; tk < w.TilesK(); ++tk) {
        const auto tile = w.Tile(tnu, tk);
        const std::size_t col0 = tk * kSupertileCols;
        for (std::size_t r = 0; r < tile.size(); ++r) {
          // Dequantize this register with its group's parameters.  All 8
          // lanes of a register share one row and sit inside one K-group
          // because the group size (64) covers the whole supertile width.
          const FragCoord& first = provenance[r].lane[0];
          const std::size_t row =
              tnu * kSupertileRows + static_cast<std::size_t>(first.row);
          const std::size_t group =
              (col0 + static_cast<std::size_t>(first.col)) / w.group_size;
          const LqqGroupParams& p = w.Params(row, group);
          const Dequanted8 d = LqqDequant8(tile[r], p.scale, p.offset);
          std::int8_t vals[8];
          StoreDequanted8(d, vals);
          for (int lane = 0; lane < 8; ++lane) {
            const FragCoord& c =
                provenance[r].lane[static_cast<std::size_t>(lane)];
            const std::size_t col = col0 + static_cast<std::size_t>(c.col);
            for (std::size_t m = 0; m < m_dim; ++m) {
              acc[m * kSupertileRows + static_cast<std::size_t>(c.row)] +=
                  static_cast<std::int32_t>(x.q.At(m, col)) *
                  static_cast<std::int32_t>(vals[lane]);
            }
          }
        }
      }
      for (std::size_t m = 0; m < m_dim; ++m) {
        for (std::size_t rr = 0; rr < kSupertileRows; ++rr) {
          const std::size_t nu = tnu * kSupertileRows + rr;
          y.At(m, nu) = static_cast<float>(acc[m * kSupertileRows + rr]) *
                        x.token_scale[m] * w.channel_scale[nu];
        }
      }
    }
  }
  return y;
}

}  // namespace

const GemmKernelTable& ReferenceKernels() {
  static const GemmKernelTable table{RefFp32,     RefFp16,      RefW8A8,
                                     RefW4A16,    RefW4A8Lqq,   RefW4A8Qserve,
                                     RefW4A8DualMma};
  return table;
}

}  // namespace liquid::detail
