#pragma once
// Pluggable CPU GEMM provider layer (slimt QMM-style provider dispatch).
//
// Every kernel in core/gemm exists in up to three implementations behind one
// API:
//   * kReference — the original scalar code, kept as the numerical oracle all
//     other providers are tested against;
//   * kPortable  — an OpenMP-tiled, cache-blocked pure-C++ fallback that
//     builds and runs on every target;
//   * kAvx2      — AVX2/FMA kernels (int16-widening int8 dot that dodges
//     `_mm256_maddubs_epi16` saturation, pshufb-LUT fused row dequant for the
//     W4A8 paths, FMA fp32 for the float paths), compiled only on x86 and
//     selected only when the CPU reports AVX2+FMA.
//
// Selection is runtime: `ActiveGemmProvider()` resolves once per process from
// (1) the `LIQUID_GEMM_PROVIDER` environment variable (auto | reference |
// portable | avx2), then (2) CPUID auto-detection (avx2 > portable).
// `SetGemmProvider()` overrides programmatically (tests, --gemm-provider
// flags).  Integer-path providers are bit-exact against the reference;
// float-path providers are tolerance-tested (accumulation order differs).

#include <string_view>
#include <vector>

namespace liquid {

enum class GemmProvider {
  kAuto,       ///< resolve via env override + CPUID at first use
  kReference,  ///< scalar oracle (seed code, hot-loop bugs fixed)
  kPortable,   ///< OpenMP-tiled portable fallback
  kAvx2,       ///< AVX2/FMA SIMD path (x86 only)
};

/// Lower-case stable name ("auto", "reference", "portable", "avx2").
const char* GemmProviderName(GemmProvider p);

/// Parses a provider name (case-insensitive). Returns false on unknown names
/// and leaves *out untouched.
bool ParseGemmProvider(std::string_view name, GemmProvider* out);

/// True when the provider's kernels are compiled into this binary
/// (kAvx2 is false on non-x86 builds or with -DLIQUID_ENABLE_AVX2=OFF).
bool GemmProviderCompiled(GemmProvider p);

/// Compiled AND usable on this machine (CPUID reports AVX2+FMA for kAvx2).
bool GemmProviderAvailable(GemmProvider p);

/// All available concrete providers, preference order first (never kAuto).
std::vector<GemmProvider> AvailableGemmProviders();

/// The provider `GemmProvider::kAuto` resolves to.  First call reads
/// LIQUID_GEMM_PROVIDER; an unknown or unavailable value falls back to
/// auto-detection with a one-line stderr warning.
GemmProvider ActiveGemmProvider();

/// Overrides the active provider. Throws std::invalid_argument if `p` is not
/// available on this machine. `kAuto` restores env/CPUID resolution.
void SetGemmProvider(GemmProvider p);

}  // namespace liquid
