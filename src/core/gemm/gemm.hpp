#pragma once
// Functional CPU GEMM kernels for every precision configuration the paper
// evaluates (Sections 2, 3, 7.3): FP16, W8A8, W4A16, W4A8-QServe and
// W4A8-LiquidGEMM.  These verify the *numerics* of the full dataflow —
// quantize → pack → (layout) → dequantize-in-main-loop → INT8 MMA → epilogue —
// end to end; the *performance* of the same dataflow on Hopper is modelled in
// src/simgpu.
//
// All kernels compute Y = X·Wᵀ (X: [M x K], W: [N x K], Y: [M x N]) and
// accumulate in INT32 (integer paths) or FP32 (floating paths), matching
// tensor-core semantics.
//
// Every kernel is provider-dispatched (see core/gemm/provider.hpp): the
// default `GemmProvider::kAuto` resolves to the fastest provider available on
// this machine (AVX2 → portable), overridable via the LIQUID_GEMM_PROVIDER
// environment variable or an explicit provider argument.  Integer-path
// providers produce bit-identical results; float-path providers differ only
// by accumulation order.
//
// Shape preconditions are *validated*, not asserted: mismatched shapes throw
// std::invalid_argument in every build type, including -DNDEBUG Release
// builds where a plain assert would vanish and turn a shape bug into a silent
// out-of-bounds read.

#include <cstdint>
#include <vector>

#include "core/gemm/provider.hpp"
#include "core/layout/dual_mma_layout.hpp"
#include "core/quant/first_level.hpp"
#include "core/quant/liquid_quant.hpp"
#include "core/quant/qserve_quant.hpp"
#include "core/types.hpp"
#include "util/half.hpp"

namespace liquid {

/// FP32 reference: exact (up to FP32 rounding and accumulation order)
/// Y = X·Wᵀ.
MatrixF GemmReference(const MatrixF& x, const MatrixF& w,
                      GemmProvider provider = GemmProvider::kAuto);

/// FP16 baseline: inputs rounded through binary16, FP32 accumulation —
/// TRT-FP16 tensor-core semantics.
MatrixF GemmFp16(const MatrixF& x, const MatrixF& w,
                 GemmProvider provider = GemmProvider::kAuto);

// --- W8A8 (symmetric GEMM, Figure 3a) --------------------------------------

struct W8A8Weights {
  MatrixI8 q;                        ///< [N x K], full [-127,127] range
  std::vector<float> channel_scale;  ///< [N]
  [[nodiscard]] std::size_t StorageBytes() const {
    return q.size() + channel_scale.size() * 4;
  }
};

W8A8Weights QuantizeWeightsW8A8(const MatrixF& weights);

/// INT8 x INT8 -> INT32 main loop; dequantization deferred to the epilogue.
MatrixF GemmW8A8(const QuantizedActivations& x, const W8A8Weights& w,
                 GemmProvider provider = GemmProvider::kAuto);

// --- W4A16 (TRT-style AWQ weight-only quantization) ------------------------

struct W4A16Weights {
  std::size_t n = 0;
  std::size_t k = 0;
  std::size_t group_size = 128;
  std::vector<std::uint8_t> packed;  ///< [n * k/2], two UINT4 per byte
  std::vector<Half> group_scale;     ///< [n * k/group_size]
  std::vector<Half> group_zero;      ///< [n * k/group_size], zero_q * scale
  [[nodiscard]] std::size_t StorageBytes() const {
    return packed.size() + group_scale.size() * 2 + group_zero.size() * 2;
  }
  [[nodiscard]] float Dequant(std::size_t row, std::size_t col) const;
};

/// AWQ-style group quantization.  The zero point is snapped to the
/// quantization grid (zero = round(-lo/scale) * scale), so dequantization is
/// exactly (q - zero_q) * scale.  Throws std::invalid_argument unless
/// group_size >= 1, k % group_size == 0 and k % 2 == 0.
W4A16Weights QuantizeWeightsW4A16(const MatrixF& weights,
                                  std::size_t group_size = 128);

/// FP16 activations x dequantized-FP16 weights, FP32 accumulation: the
/// asymmetric GEMM whose dequant runs on CUDA cores before every MMA.
MatrixF GemmW4A16(const MatrixF& x, const W4A16Weights& w,
                  GemmProvider provider = GemmProvider::kAuto);

// --- W4A8 -------------------------------------------------------------------

/// LiquidGEMM main loop over linearly packed registers: SWAR dequant (Eq. 12)
/// then INT8 MMA, channel/token scales in the epilogue.
MatrixF GemmW4A8Liquid(const QuantizedActivations& x, const LqqWeights& w,
                       GemmProvider provider = GemmProvider::kAuto);

/// Same numerics through the dual-MMA packed supertile layout (Section 5.2):
/// consumes registers in SMEM order and routes each dequantized lane through
/// the provenance map, proving the reordered layout computes the same GEMM.
MatrixF GemmW4A8LiquidDualMma(const QuantizedActivations& x,
                              const DualMmaPackedWeights& w,
                              GemmProvider provider = GemmProvider::kAuto);

/// QServe baseline main loop: vsub4-lowered dequant then INT8 MMA.
MatrixF GemmW4A8Qserve(const QuantizedActivations& x, const QserveWeights& w,
                       GemmProvider provider = GemmProvider::kAuto);

/// Convenience: full float-in/float-out W4A8 pipeline (activation quant +
/// LiquidGEMM).  This is the call sites' one-line entry point.
MatrixF LiquidGemm(const MatrixF& x, const LqqWeights& w,
                   GemmProvider provider = GemmProvider::kAuto);

}  // namespace liquid
