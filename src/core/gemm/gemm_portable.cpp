// Portable GEMM provider: OpenMP-tiled, cache-blocked pure C++ — the
// fallback used when the SIMD provider is compiled out (non-x86) or disabled
// (LIQUID_GEMM_PROVIDER=portable, -DLIQUID_ENABLE_AVX2=OFF).
//
// Structure: the weight matrix is processed in panels of kPanelRows output
// channels.  The W4A8 paths dequantize a whole panel into per-thread scratch
// once, then stream every activation row across the panel, so each X row is
// read once per panel instead of once per output channel.  Integer dots are
// unrolled with independent partial accumulators — INT32 addition is
// associative, so results stay bit-identical to the reference provider.  The
// float paths hoist the soft-float binary16 rounding out of the O(M·N·K)
// loop (the reference re-rounds both operands on every MAC).

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/dequant/dequant.hpp"
#include "core/gemm/kernels.hpp"

namespace liquid::detail {
namespace {

constexpr std::size_t kPanelRows = 16;  ///< weight rows per dequantized panel

std::int32_t DotI8Unrolled(const std::int8_t* a, const std::int8_t* b,
                           std::size_t k) {
  std::int32_t acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= k; i += 4) {
    acc0 += static_cast<std::int32_t>(a[i]) * b[i];
    acc1 += static_cast<std::int32_t>(a[i + 1]) * b[i + 1];
    acc2 += static_cast<std::int32_t>(a[i + 2]) * b[i + 2];
    acc3 += static_cast<std::int32_t>(a[i + 3]) * b[i + 3];
  }
  for (; i < k; ++i) acc0 += static_cast<std::int32_t>(a[i]) * b[i];
  return acc0 + acc1 + acc2 + acc3;
}

float DotF32Unrolled(const float* a, const float* b, std::size_t k) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  std::size_t i = 0;
  for (; i + 4 <= k; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < k; ++i) acc0 += a[i] * b[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

/// Shared skeleton for the W4A8 panel paths: `dequant_row(nu, out)` fills the
/// INT8 row for output channel nu.
template <typename DequantRowFn>
MatrixF PanelGemmI8(const QuantizedActivations& x, std::size_t n_dim,
                    std::size_t k, const std::vector<float>& channel_scale,
                    DequantRowFn&& dequant_row) {
  const std::size_t m_dim = x.q.rows();
  MatrixF y(m_dim, n_dim);
  const std::ptrdiff_t panels =
      static_cast<std::ptrdiff_t>((n_dim + kPanelRows - 1) / kPanelRows);
#pragma omp parallel
  {
    std::vector<std::int8_t> panel(kPanelRows * k);
#pragma omp for schedule(static)
    for (std::ptrdiff_t p = 0; p < panels; ++p) {
      const std::size_t n0 = static_cast<std::size_t>(p) * kPanelRows;
      const std::size_t nt = std::min(kPanelRows, n_dim - n0);
      for (std::size_t j = 0; j < nt; ++j) {
        dequant_row(n0 + j, std::span<std::int8_t>(&panel[j * k], k));
      }
      for (std::size_t m = 0; m < m_dim; ++m) {
        const std::int8_t* xr = x.q.Row(m).data();
        for (std::size_t j = 0; j < nt; ++j) {
          const std::int32_t acc = DotI8Unrolled(xr, &panel[j * k], k);
          y.At(m, n0 + j) = static_cast<float>(acc) * x.token_scale[m] *
                            channel_scale[n0 + j];
        }
      }
    }
  }
  return y;
}

MatrixF PortableFp32(const MatrixF& x, const MatrixF& w) {
  MatrixF y(x.rows(), w.rows());
  const std::size_t n_dim = w.rows();
  const std::ptrdiff_t panels =
      static_cast<std::ptrdiff_t>((n_dim + kPanelRows - 1) / kPanelRows);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t p = 0; p < panels; ++p) {
    const std::size_t n0 = static_cast<std::size_t>(p) * kPanelRows;
    const std::size_t nt = std::min(kPanelRows, n_dim - n0);
    for (std::size_t m = 0; m < x.rows(); ++m) {
      const float* xr = x.Row(m).data();
      for (std::size_t j = 0; j < nt; ++j) {
        y.At(m, n0 + j) = DotF32Unrolled(xr, w.Row(n0 + j).data(), x.cols());
      }
    }
  }
  return y;
}

MatrixF PortableFp16(const MatrixF& x, const MatrixF& w) {
  const MatrixF xh = RoundMatrixToHalf(x);
  const MatrixF wh = RoundMatrixToHalf(w);
  return PortableFp32(xh, wh);
}

MatrixF PortableW8A8(const QuantizedActivations& x, const W8A8Weights& w) {
  const std::size_t m_dim = x.q.rows();
  const std::size_t n_dim = w.q.rows();
  const std::size_t k = x.q.cols();
  MatrixF y(m_dim, n_dim);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t m = 0; m < static_cast<std::ptrdiff_t>(m_dim); ++m) {
    const std::size_t mu = static_cast<std::size_t>(m);
    const std::int8_t* xr = x.q.Row(mu).data();
    for (std::size_t n = 0; n < n_dim; ++n) {
      const std::int32_t acc = DotI8Unrolled(xr, w.q.Row(n).data(), k);
      y.At(mu, n) = static_cast<float>(acc) * x.token_scale[mu] *
                    w.channel_scale[n];
    }
  }
  return y;
}

MatrixF PortableW4A16(const MatrixF& x, const W4A16Weights& w) {
  const MatrixF xh = RoundMatrixToHalf(x);
  const std::size_t m_dim = x.rows();
  MatrixF y(m_dim, w.n);
#pragma omp parallel
  {
    std::vector<float> wrow(w.k);
#pragma omp for schedule(static)
    for (std::ptrdiff_t n = 0; n < static_cast<std::ptrdiff_t>(w.n); ++n) {
      const std::size_t nu = static_cast<std::size_t>(n);
      for (std::size_t k = 0; k < w.k; ++k) {
        wrow[k] = QuantizeToHalf(w.Dequant(nu, k));
      }
      for (std::size_t m = 0; m < m_dim; ++m) {
        y.At(m, nu) = DotF32Unrolled(xh.Row(m).data(), wrow.data(), w.k);
      }
    }
  }
  return y;
}

MatrixF PortableW4A8Lqq(const QuantizedActivations& x, const LqqWeights& w) {
  return PanelGemmI8(x, w.n, w.k, w.channel_scale,
                     [&w](std::size_t nu, std::span<std::int8_t> out) {
                       LqqDequantRow(w, nu, out);
                     });
}

MatrixF PortableW4A8Qserve(const QuantizedActivations& x,
                           const QserveWeights& w) {
  return PanelGemmI8(x, w.n, w.k, w.channel_scale,
                     [&w](std::size_t nu, std::span<std::int8_t> out) {
                       QserveDequantRow(w, nu, out);
                     });
}

MatrixF PortableW4A8DualMma(const QuantizedActivations& x,
                            const DualMmaPackedWeights& w) {
  // Consume the supertile layout by inverting it to the natural-order UINT4
  // matrix, then dequantize rows with the per-group scalar LUT — a second,
  // structurally different witness that the reordered layout holds the same
  // weights (the reference provider walks the provenance map instead).
  const std::vector<std::uint8_t> u4 = UnpackDualMmaToU4(w);
  return PanelGemmI8(
      x, w.n, w.k, w.channel_scale,
      [&w, &u4](std::size_t nu, std::span<std::int8_t> out) {
        const std::uint8_t* row = &u4[nu * w.k];
        for (std::size_t g = 0; g < w.k / w.group_size; ++g) {
          const LqqGroupParams& p = w.Params(nu, g);
          std::int8_t lut[16];
          for (int q = 0; q < 16; ++q) {
            lut[q] = LqqDequantElement(static_cast<std::uint8_t>(q), p.scale,
                                       p.offset);
          }
          for (std::size_t j = 0; j < w.group_size; ++j) {
            const std::size_t col = g * w.group_size + j;
            out[col] = lut[row[col]];
          }
        }
      });
}

}  // namespace

MatrixF RoundMatrixToHalf(const MatrixF& m) {
  MatrixF out(m.rows(), m.cols());
  const auto src = m.Flat();
  const auto dst = out.Flat();
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = QuantizeToHalf(src[i]);
  return out;
}

const GemmKernelTable& PortableKernels() {
  static const GemmKernelTable table{
      PortableFp32,   PortableFp16,       PortableW8A8,      PortableW4A16,
      PortableW4A8Lqq, PortableW4A8Qserve, PortableW4A8DualMma};
  return table;
}

}  // namespace liquid::detail
