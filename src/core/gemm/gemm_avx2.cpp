// AVX2/FMA GEMM provider.
//
// Compiled with -mavx2 -mfma (x86 only; see LIQUID_ENABLE_AVX2 in
// CMakeLists.txt) and selected at runtime only when CPUID reports AVX2+FMA,
// so the library itself stays runnable on any x86-64.
//
// Techniques:
//   * INT8 dot: sign-extend both operands to int16 and _mm256_madd_epi16 —
//     the TitanInfer idiom that dodges _mm256_maddubs_epi16, whose u8*s8
//     pair-sums saturate at int16 and silently corrupt large products.
//     INT32 accumulation is associative, so results are bit-identical to the
//     scalar reference.
//   * W4A8 row dequant: the LQQ/QServe second-level dequant is a pure
//     function of the 4-bit code given the group parameters, so each group
//     becomes a 16-byte lookup table applied to 8 packed registers (64
//     elements) at a time with _mm256_shuffle_epi8 — a fused SWAR-row dequant
//     that produces the exact bytes of the scalar Eq. 12 / vsub4 kernels.
//   * Float paths: FMA with hoisted binary16 rounding (tolerance-tested;
//     accumulation order differs from the reference).

#if defined(LIQUID_HAS_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/dequant/dequant.hpp"
#include "core/gemm/kernels.hpp"

namespace liquid::detail {
namespace {

constexpr std::size_t kPanelRows = 16;

std::int32_t DotI8Avx2(const std::int8_t* a, const std::int8_t* b,
                       std::size_t k) {
  // Two independent accumulator chains so the add latency doesn't serialize
  // the madd throughput.
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 32 <= k; i += 32) {
    const __m256i a_lo = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m256i b_lo = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    const __m256i a_hi = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i + 16)));
    const __m256i b_hi = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i + 16)));
    acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(a_lo, b_lo));
    acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(a_hi, b_hi));
  }
  const __m256i acc = _mm256_add_epi32(acc0, acc1);
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc),
                            _mm256_extracti128_si256(acc, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  std::int32_t sum = _mm_cvtsi128_si32(s);
  for (; i < k; ++i) {
    sum += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return sum;
}

/// 4-row register-blocked variant: widens each activation chunk once and
/// streams it against four weight rows, quartering the cvtepi8 traffic on the
/// activation side and giving the madd chains independent accumulators.
void DotI8Avx2x4(const std::int8_t* a, const std::int8_t* const b[4],
                 std::size_t k, std::int32_t out[4]) {
  __m256i acc[4] = {_mm256_setzero_si256(), _mm256_setzero_si256(),
                    _mm256_setzero_si256(), _mm256_setzero_si256()};
  std::size_t i = 0;
  for (; i + 16 <= k; i += 16) {
    const __m256i a16 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    for (int j = 0; j < 4; ++j) {
      const __m256i b16 = _mm256_cvtepi8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(b[j] + i)));
      acc[j] = _mm256_add_epi32(acc[j], _mm256_madd_epi16(a16, b16));
    }
  }
  for (int j = 0; j < 4; ++j) {
    __m128i s = _mm_add_epi32(_mm256_castsi256_si128(acc[j]),
                              _mm256_extracti128_si256(acc[j], 1));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
    out[j] = _mm_cvtsi128_si32(s);
  }
  for (; i < k; ++i) {
    for (int j = 0; j < 4; ++j) {
      out[j] += static_cast<std::int32_t>(a[i]) *
                static_cast<std::int32_t>(b[j][i]);
    }
  }
}

float DotF32Fma(const float* a, const float* b, std::size_t k) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= k; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= k; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
  }
  const __m256 acc = _mm256_add_ps(acc0, acc1);
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(acc),
                        _mm256_extractf128_ps(acc, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x55));
  float sum = _mm_cvtss_f32(s);
  for (; i < k; ++i) sum += a[i] * b[i];
  return sum;
}

/// Builds the 16-entry code→INT8 dequant table for one group in four SIMD
/// ops: lut[q] = ((q * scale + add) mod 256) xor xor_mask.  Covers both
/// schemes — LQQ is (q*s + a) ^ 0x80 (Eq. 12) and QServe is q*s - s*z, whose
/// int8 wraparound equals the mod-256 of (q*s + (256 - s*z)).
inline __m128i BuildDequantLut(int scale, int add, int xor_mask) {
  const __m128i q_lo = _mm_setr_epi16(0, 1, 2, 3, 4, 5, 6, 7);
  const __m128i q_hi = _mm_setr_epi16(8, 9, 10, 11, 12, 13, 14, 15);
  const __m128i s = _mm_set1_epi16(static_cast<short>(scale));
  const __m128i a = _mm_set1_epi16(static_cast<short>(add));
  const __m128i byte_mask = _mm_set1_epi16(0x00FF);
  const __m128i lo =
      _mm_and_si128(_mm_add_epi16(_mm_mullo_epi16(q_lo, s), a), byte_mask);
  const __m128i hi =
      _mm_and_si128(_mm_add_epi16(_mm_mullo_epi16(q_hi, s), a), byte_mask);
  return _mm_xor_si128(_mm_packus_epi16(lo, hi),
                       _mm_set1_epi8(static_cast<char>(xor_mask)));
}

/// Fused LUT dequant of one packed row: `group_lut(g)` returns the 16-byte
/// code→INT8 table for group g; registers are consumed 8 at a time (64
/// elements per shuffle round-trip), with a scalar tail for ragged groups.
template <typename GroupLutFn>
void LutDequantPackedRow(const std::uint32_t* regs, std::size_t num_regs,
                         std::size_t regs_per_group, GroupLutFn&& group_lut,
                         std::int8_t* out) {
  const __m256i nib_mask = _mm256_set1_epi8(0x0F);
  std::size_t r = 0;
  for (std::size_t g = 0; r < num_regs; ++g) {
    alignas(16) std::int8_t lut[16];
    _mm_store_si128(reinterpret_cast<__m128i*>(lut), group_lut(g));
    const __m256i lutv = _mm256_broadcastsi128_si256(
        _mm_load_si128(reinterpret_cast<const __m128i*>(lut)));
    std::size_t rem = std::min(regs_per_group, num_regs - r);
    while (rem >= 8) {
      const __m256i v = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(regs + r));
      // Nibble split matches UnpackU4x8: low nibbles are lanes w0..w3 of each
      // register, high nibbles are w4..w7.
      const __m256i lo = _mm256_and_si256(v, nib_mask);
      const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), nib_mask);
      const __m256i dlo = _mm256_shuffle_epi8(lutv, lo);
      const __m256i dhi = _mm256_shuffle_epi8(lutv, hi);
      // Interleave per-register dwords back to natural k-order:
      // out[8r..8r+3] = low lanes, out[8r+4..8r+7] = high lanes.
      const __m256i u0 = _mm256_unpacklo_epi32(dlo, dhi);
      const __m256i u1 = _mm256_unpackhi_epi32(dlo, dhi);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + r * 8),
                          _mm256_permute2x128_si256(u0, u1, 0x20));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + r * 8 + 32),
                          _mm256_permute2x128_si256(u0, u1, 0x31));
      r += 8;
      rem -= 8;
    }
    for (; rem > 0; --rem, ++r) {
      const std::uint32_t reg = regs[r];
      for (int b = 0; b < 4; ++b) {
        const std::uint8_t byte =
            static_cast<std::uint8_t>((reg >> (8 * b)) & 0xFFu);
        out[r * 8 + b] = lut[byte & 0x0Fu];
        out[r * 8 + 4 + b] = lut[byte >> 4];
      }
    }
  }
}

/// Panel skeleton shared by the INT8 paths (see gemm_portable.cpp): dequant a
/// panel of weight rows once, then stream activation rows across it.
template <typename DequantRowFn>
MatrixF PanelGemmI8Avx2(const QuantizedActivations& x, std::size_t n_dim,
                        std::size_t k, const std::vector<float>& channel_scale,
                        DequantRowFn&& dequant_row) {
  const std::size_t m_dim = x.q.rows();
  MatrixF y(m_dim, n_dim);
  const std::ptrdiff_t panels =
      static_cast<std::ptrdiff_t>((n_dim + kPanelRows - 1) / kPanelRows);
#pragma omp parallel
  {
    std::vector<std::int8_t> panel(kPanelRows * k);
#pragma omp for schedule(static)
    for (std::ptrdiff_t p = 0; p < panels; ++p) {
      const std::size_t n0 = static_cast<std::size_t>(p) * kPanelRows;
      const std::size_t nt = std::min(kPanelRows, n_dim - n0);
      for (std::size_t j = 0; j < nt; ++j) {
        dequant_row(n0 + j, &panel[j * k]);
      }
      for (std::size_t m = 0; m < m_dim; ++m) {
        const std::int8_t* xr = x.q.Row(m).data();
        std::size_t j = 0;
        for (; j + 4 <= nt; j += 4) {
          const std::int8_t* rows[4] = {&panel[j * k], &panel[(j + 1) * k],
                                        &panel[(j + 2) * k],
                                        &panel[(j + 3) * k]};
          std::int32_t acc[4];
          DotI8Avx2x4(xr, rows, k, acc);
          for (int jj = 0; jj < 4; ++jj) {
            y.At(m, n0 + j + static_cast<std::size_t>(jj)) =
                static_cast<float>(acc[jj]) * x.token_scale[m] *
                channel_scale[n0 + j + static_cast<std::size_t>(jj)];
          }
        }
        for (; j < nt; ++j) {
          const std::int32_t acc = DotI8Avx2(xr, &panel[j * k], k);
          y.At(m, n0 + j) = static_cast<float>(acc) * x.token_scale[m] *
                            channel_scale[n0 + j];
        }
      }
    }
  }
  return y;
}

MatrixF Avx2Fp32(const MatrixF& x, const MatrixF& w) {
  MatrixF y(x.rows(), w.rows());
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t n = 0; n < static_cast<std::ptrdiff_t>(w.rows()); ++n) {
    const std::size_t nu = static_cast<std::size_t>(n);
    const float* wr = w.Row(nu).data();
    for (std::size_t m = 0; m < x.rows(); ++m) {
      y.At(m, nu) = DotF32Fma(x.Row(m).data(), wr, x.cols());
    }
  }
  return y;
}

MatrixF Avx2Fp16(const MatrixF& x, const MatrixF& w) {
  const MatrixF xh = RoundMatrixToHalf(x);
  const MatrixF wh = RoundMatrixToHalf(w);
  return Avx2Fp32(xh, wh);
}

MatrixF Avx2W8A8(const QuantizedActivations& x, const W8A8Weights& w) {
  const std::size_t m_dim = x.q.rows();
  const std::size_t n_dim = w.q.rows();
  const std::size_t k = x.q.cols();
  MatrixF y(m_dim, n_dim);
  const std::ptrdiff_t blocks = static_cast<std::ptrdiff_t>(n_dim / 4);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t blk = 0; blk < blocks; ++blk) {
    const std::size_t n0 = static_cast<std::size_t>(blk) * 4;
    const std::int8_t* rows[4] = {w.q.Row(n0).data(), w.q.Row(n0 + 1).data(),
                                  w.q.Row(n0 + 2).data(),
                                  w.q.Row(n0 + 3).data()};
    for (std::size_t m = 0; m < m_dim; ++m) {
      std::int32_t acc[4];
      DotI8Avx2x4(x.q.Row(m).data(), rows, k, acc);
      for (int j = 0; j < 4; ++j) {
        y.At(m, n0 + static_cast<std::size_t>(j)) =
            static_cast<float>(acc[j]) * x.token_scale[m] *
            w.channel_scale[n0 + static_cast<std::size_t>(j)];
      }
    }
  }
  for (std::size_t nu = static_cast<std::size_t>(blocks) * 4; nu < n_dim;
       ++nu) {
    const std::int8_t* wr = w.q.Row(nu).data();
    for (std::size_t m = 0; m < m_dim; ++m) {
      const std::int32_t acc = DotI8Avx2(x.q.Row(m).data(), wr, k);
      y.At(m, nu) = static_cast<float>(acc) * x.token_scale[m] *
                    w.channel_scale[nu];
    }
  }
  return y;
}

MatrixF Avx2W4A16(const MatrixF& x, const W4A16Weights& w) {
  const MatrixF xh = RoundMatrixToHalf(x);
  const std::size_t m_dim = x.rows();
  MatrixF y(m_dim, w.n);
#pragma omp parallel
  {
    std::vector<float> wrow(w.k);
#pragma omp for schedule(static)
    for (std::ptrdiff_t n = 0; n < static_cast<std::ptrdiff_t>(w.n); ++n) {
      const std::size_t nu = static_cast<std::size_t>(n);
      for (std::size_t kk = 0; kk < w.k; ++kk) {
        wrow[kk] = QuantizeToHalf(w.Dequant(nu, kk));
      }
      for (std::size_t m = 0; m < m_dim; ++m) {
        y.At(m, nu) = DotF32Fma(xh.Row(m).data(), wrow.data(), w.k);
      }
    }
  }
  return y;
}

MatrixF Avx2W4A8Lqq(const QuantizedActivations& x, const LqqWeights& w) {
  const std::size_t regs_per_row = w.RegistersPerRow();
  const std::size_t regs_per_group = w.group_size / 8;
  return PanelGemmI8Avx2(
      x, w.n, w.k, w.channel_scale,
      [&](std::size_t nu, std::int8_t* out) {
        LutDequantPackedRow(
            w.packed.data() + nu * regs_per_row, regs_per_row, regs_per_group,
            [&](std::size_t g) {
              const LqqGroupParams& p = w.Params(nu, g);
              return BuildDequantLut(p.scale, p.offset, 0x80);
            },
            out);
      });
}

MatrixF Avx2W4A8Qserve(const QuantizedActivations& x, const QserveWeights& w) {
  const std::size_t regs_per_row = w.RegistersPerRow();
  const std::size_t regs_per_group = w.group_size / 8;
  return PanelGemmI8Avx2(
      x, w.n, w.k, w.channel_scale,
      [&](std::size_t nu, std::int8_t* out) {
        LutDequantPackedRow(
            w.packed.data() + nu * regs_per_row, regs_per_row, regs_per_group,
            [&](std::size_t g) {
              const QserveGroupParams& p = w.Params(nu, g);
              return BuildDequantLut(p.scale, 256 - p.zero_scaled, 0x00);
            },
            out);
      });
}

MatrixF Avx2W4A8DualMma(const QuantizedActivations& x,
                        const DualMmaPackedWeights& w) {
  // Invert the supertile layout to natural-order UINT4 codes, then the
  // per-group LUT applies directly (codes are already unpacked bytes < 16).
  const std::vector<std::uint8_t> u4 = UnpackDualMmaToU4(w);
  return PanelGemmI8Avx2(
      x, w.n, w.k, w.channel_scale,
      [&](std::size_t nu, std::int8_t* out) {
        const std::uint8_t* row = &u4[nu * w.k];
        for (std::size_t g = 0; g < w.k / w.group_size; ++g) {
          const LqqGroupParams& p = w.Params(nu, g);
          alignas(16) std::int8_t lut[16];
          for (int q = 0; q < 16; ++q) {
            lut[q] = LqqDequantElement(static_cast<std::uint8_t>(q), p.scale,
                                       p.offset);
          }
          const __m256i lutv = _mm256_broadcastsi128_si256(
              _mm_load_si128(reinterpret_cast<const __m128i*>(lut)));
          std::size_t col = g * w.group_size;
          const std::size_t end = col + w.group_size;
          for (; col + 32 <= end; col += 32) {
            const __m256i codes = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(row + col));
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + col),
                                _mm256_shuffle_epi8(lutv, codes));
          }
          for (; col < end; ++col) out[col] = lut[row[col]];
        }
      });
}

}  // namespace

const GemmKernelTable& Avx2Kernels() {
  static const GemmKernelTable table{Avx2Fp32,    Avx2Fp16,      Avx2W8A8,
                                     Avx2W4A16,   Avx2W4A8Lqq,   Avx2W4A8Qserve,
                                     Avx2W4A8DualMma};
  return table;
}

}  // namespace liquid::detail

#else  // !LIQUID_HAS_AVX2

#include <stdexcept>

#include "core/gemm/kernels.hpp"

namespace liquid::detail {

// Link-time stub for non-x86 / AVX2-disabled builds; dispatch guards on
// GemmProviderAvailable() so this is unreachable.
const GemmKernelTable& Avx2Kernels() {
  throw std::logic_error("AVX2 GEMM provider is not compiled into this build");
}

}  // namespace liquid::detail

#endif  // LIQUID_HAS_AVX2
