#pragma once
// Internal provider kernel tables for core/gemm — not part of the public API.
//
// Each provider implements the full kernel set behind one function-pointer
// table; the public entry points in gemm.cpp validate shapes once and then
// dispatch.  Kernels may assume shapes have been validated.

#include "core/gemm/gemm.hpp"
#include "core/gemm/provider.hpp"

namespace liquid::detail {

struct GemmKernelTable {
  MatrixF (*fp32)(const MatrixF& x, const MatrixF& w);
  MatrixF (*fp16)(const MatrixF& x, const MatrixF& w);
  MatrixF (*w8a8)(const QuantizedActivations& x, const W8A8Weights& w);
  MatrixF (*w4a16)(const MatrixF& x, const W4A16Weights& w);
  MatrixF (*w4a8_lqq)(const QuantizedActivations& x, const LqqWeights& w);
  MatrixF (*w4a8_qserve)(const QuantizedActivations& x, const QserveWeights& w);
  MatrixF (*w4a8_dual)(const QuantizedActivations& x,
                       const DualMmaPackedWeights& w);
};

const GemmKernelTable& ReferenceKernels();
const GemmKernelTable& PortableKernels();
// Defined only when the AVX2 provider is compiled in; guarded by
// GemmProviderCompiled(GemmProvider::kAvx2) at dispatch time.
const GemmKernelTable& Avx2Kernels();

/// Resolves a (possibly kAuto) provider to a concrete kernel table. Throws
/// std::invalid_argument for providers that are not available on this machine.
const GemmKernelTable& Kernels(GemmProvider p);

/// Rounds every element of `m` through binary16 into a fresh matrix — shared
/// by the portable/AVX2 fp16 and W4A16 kernels, which hoist the soft-float
/// conversion out of the O(M·N·K) loop.
MatrixF RoundMatrixToHalf(const MatrixF& m);

}  // namespace liquid::detail
