#include "core/gemm/gemm_counters.hpp"

#include <array>
#include <atomic>
#include <cstdio>

namespace liquid::gemmstats {
namespace {

struct Slot {
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> macs{0};
  std::atomic<std::uint64_t> bytes{0};
};

std::array<Slot, kKernelCount>& Slots() {
  static std::array<Slot, kKernelCount> slots;
  return slots;
}

}  // namespace

const char* KernelName(Kernel kernel) {
  switch (kernel) {
    case Kernel::kFp32:
      return "fp32";
    case Kernel::kFp16:
      return "fp16";
    case Kernel::kW8A8:
      return "w8a8";
    case Kernel::kW4A16:
      return "w4a16";
    case Kernel::kW4A8Lqq:
      return "w4a8_lqq";
    case Kernel::kW4A8DualMma:
      return "w4a8_dual_mma";
    case Kernel::kW4A8Qserve:
      return "w4a8_qserve";
  }
  return "unknown";
}

void Count(Kernel kernel, std::size_t m, std::size_t n, std::size_t k,
           std::size_t weight_bytes, std::size_t activation_bytes) {
  Slot& slot = Slots()[static_cast<std::size_t>(kernel)];
  slot.calls.fetch_add(1, std::memory_order_relaxed);
  slot.macs.fetch_add(
      static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n) *
          static_cast<std::uint64_t>(k),
      std::memory_order_relaxed);
  slot.bytes.fetch_add(static_cast<std::uint64_t>(weight_bytes) +
                           static_cast<std::uint64_t>(activation_bytes) +
                           static_cast<std::uint64_t>(m) * n * 4,
                       std::memory_order_relaxed);
}

KernelTotals Totals(Kernel kernel) {
  const Slot& slot = Slots()[static_cast<std::size_t>(kernel)];
  return {slot.calls.load(std::memory_order_relaxed),
          slot.macs.load(std::memory_order_relaxed),
          slot.bytes.load(std::memory_order_relaxed)};
}

void ResetGemmCounters() {
  for (Slot& slot : Slots()) {
    slot.calls.store(0, std::memory_order_relaxed);
    slot.macs.store(0, std::memory_order_relaxed);
    slot.bytes.store(0, std::memory_order_relaxed);
  }
}

std::string AiCsv() {
  std::string out = "kernel,calls,macs,bytes,flops,arithmetic_intensity\n";
  for (std::size_t i = 0; i < kKernelCount; ++i) {
    const Kernel kernel = static_cast<Kernel>(i);
    const KernelTotals t = Totals(kernel);
    const std::uint64_t flops = 2 * t.macs;  // one multiply + one add per MAC
    const double ai =
        t.bytes == 0 ? 0.0
                     : static_cast<double>(flops) / static_cast<double>(t.bytes);
    char row[160];
    std::snprintf(row, sizeof(row), "%s,%llu,%llu,%llu,%llu,%.6g\n",
                  KernelName(kernel),
                  static_cast<unsigned long long>(t.calls),
                  static_cast<unsigned long long>(t.macs),
                  static_cast<unsigned long long>(t.bytes),
                  static_cast<unsigned long long>(flops), ai);
    out += row;
  }
  return out;
}

}  // namespace liquid::gemmstats
