#pragma once
// End-to-end LLM serving simulator (paper Sections 6 and 7.2).
//
// Reproduces the Table 1 / Figure 4 / Figure 10 / Figure 11 methodology:
// fixed input/output lengths, batch sweep under an 80 GB memory ceiling,
// peak-throughput selection, and per-layer GEMM/Attention/Others breakdowns.
//
// One decode step = per-layer GEMM chain (simgpu) + decode attention
// (attention_model) + non-GEMM overhead.  Prefill = GEMM chain at
// batch*prompt tokens + quadratic prefill attention.  Memory = quantized
// weights + FP16 embeddings + paged KV cache + framework overhead; the KV
// pool is validated against a real KvBlockManager allocation.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "serving/attention_model.hpp"
#include "serving/kv_cache.hpp"
#include "serving/model_config.hpp"
#include "serving/system_preset.hpp"
#include "simgpu/gemm_sim.hpp"
#include "simgpu/hardware.hpp"

namespace liquid::serving {

struct ServingWorkload {
  std::size_t input_len = 1024;
  std::size_t output_len = 512;
  std::size_t batch = 1;
};

struct LayerBreakdown {
  double gemm = 0;
  double attention = 0;
  double others = 0;
  [[nodiscard]] double total() const { return gemm + attention + others; }
};

struct ServingResult {
  bool oom = false;
  bool supported = true;
  double tokens_per_second = 0;     ///< generated tokens / total time
  double prefill_seconds = 0;
  double decode_step_seconds = 0;   ///< at mid-generation KV length
  double total_seconds = 0;
  double memory_bytes = 0;
  LayerBreakdown decode_layer;      ///< one layer, one decode step
};

struct EngineOptions {
  double memory_budget_bytes = 80e9;  ///< H800 80 GB
  std::size_t kv_block_tokens = 16;   ///< PagedAttention block size
  /// Chunked prefill: process prompts in chunks of at most this many tokens
  /// per engine iteration (0 = unchunked).  Chunking bounds the GEMM batch a
  /// prefill can monopolize, at the cost of re-reading prior KV for the
  /// attention of each later chunk.
  std::size_t prefill_chunk_tokens = 0;
};

class ServingEngine {
 public:
  ServingEngine(simgpu::HardwareSpec hw, SystemPreset preset, LlmConfig model,
                EngineOptions options = {});

  /// Full run at a fixed batch size.
  [[nodiscard]] ServingResult Run(const ServingWorkload& workload) const;

  /// Memory footprint at a batch size (bytes), including the paged-KV pool
  /// actually needed for batch sequences of (input+output) tokens.
  [[nodiscard]] double MemoryBytes(const ServingWorkload& workload) const;

  /// Weight memory alone (quantized GEMM weights + params + FP16 embeddings).
  [[nodiscard]] double WeightMemoryBytes() const;

  /// Largest batch that fits the memory budget (0 if even batch 1 OOMs).
  [[nodiscard]] std::size_t MaxBatch(std::size_t input_len,
                                     std::size_t output_len,
                                     std::size_t cap = 256) const;

  struct PeakResult {
    double tokens_per_second = 0;
    std::size_t batch = 0;
    bool supported = true;
    bool oom = false;  ///< even batch 1 does not fit
  };
  /// Sweeps batch sizes 1..cap (Table 1 methodology) and returns the peak.
  [[nodiscard]] PeakResult PeakThroughput(std::size_t input_len,
                                          std::size_t output_len,
                                          std::size_t cap = 256) const;

  [[nodiscard]] const SystemPreset& preset() const { return preset_; }
  [[nodiscard]] const LlmConfig& model() const { return model_; }
  [[nodiscard]] const EngineOptions& options() const { return options_; }

  /// One decode step's per-layer breakdown at the given batch / KV length.
  [[nodiscard]] LayerBreakdown DecodeLayerBreakdown(std::size_t batch,
                                                    std::size_t kv_len) const;

  /// Whole-model decode-step latency (all layers + LM head).
  [[nodiscard]] double DecodeStepSeconds(std::size_t batch,
                                         std::size_t kv_len) const;
  /// Prefill latency for `batch` sequences of `input_len` tokens.
  [[nodiscard]] double PrefillSeconds(std::size_t batch,
                                      std::size_t input_len) const;

  /// Cost of one prefill chunk of a single sequence: `chunk_tokens` fresh
  /// tokens whose attention also reads the `prior_tokens` already cached by
  /// earlier chunks.  The scheduler uses this to interleave long prefills
  /// with decode steps (Sarathi-style) instead of charging the whole prompt
  /// in one iteration.  Summing chunks reproduces PrefillSeconds(1, len)
  /// under the same chunking.
  [[nodiscard]] double PrefillChunkSeconds(std::size_t chunk_tokens,
                                           std::size_t prior_tokens) const;

 private:
  [[nodiscard]] double OthersPerLayer(std::size_t batch) const;
  [[nodiscard]] double ChunkCost(std::size_t batch, std::size_t chunk_tokens,
                                 std::size_t prior_tokens) const;

  simgpu::HardwareSpec hw_;
  SystemPreset preset_;
  LlmConfig model_;
  EngineOptions options_;
  simgpu::KernelConfig kernel_;

  /// DecodeStepSeconds and PrefillChunkSeconds are pure in their integer
  /// arguments for a fixed engine config, and the continuous-batching
  /// scheduler re-asks the same (batch, kv_len) pairs millions of times per
  /// simulated hour — rebuilding the per-layer roofline walk each time was
  /// the simulator's dominant host cost.  A hit returns the identical double,
  /// so memoization cannot perturb simulated results.  Engines are used
  /// single-threaded; the caches are not locked.
  /// Determinism audit: pure memoization, keyed lookup/insert only — never
  /// iterated, and a hit returns the identical double a miss would compute.
  mutable std::unordered_map<std::uint64_t, double> decode_step_cache_;
  mutable std::unordered_map<std::uint64_t, double> prefill_chunk_cache_;
};

}  // namespace liquid::serving
