#pragma once
// PagedAttention-style KV-cache block manager (paper Section 6; Kwon et al.,
// SOSP'23).  A real allocator, not a byte counter: fixed-size token blocks,
// per-sequence block tables, reference-counted sharing (prefix forking) with
// copy-on-write on append, and exact accounting the serving engine uses to
// decide the out-of-memory points of Table 1.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

namespace liquid::serving {

using SeqId = std::uint64_t;

/// Multiset of prefix-block hashes resident in one replica's KV pool — the
/// per-replica half of the fleet-wide prefix-cache index.  The router scores
/// placement by the longest leading run of a request's signature found here;
/// the scheduler skips that run's prefill compute.  Counts are references
/// (several sequences can hold the same preamble), so a block's hash leaves
/// the index only when its last holder frees.
class PrefixIndex {
 public:
  void Add(std::uint64_t hash) { ++counts_[hash]; }
  void Remove(std::uint64_t hash) {
    const auto it = counts_.find(hash);
    if (it == counts_.end()) return;
    if (--it->second == 0) counts_.erase(it);
  }
  [[nodiscard]] bool Contains(std::uint64_t hash) const {
    return counts_.contains(hash);
  }
  /// Longest leading run of `hashes` resident here — the contiguous prefix a
  /// prefill on this replica could reuse.  Stops at the first miss: rolling
  /// hashes are chained, so a later isolated match cannot be the same
  /// content anyway.
  [[nodiscard]] std::size_t SharedPrefixBlocks(
      std::span<const std::uint64_t> hashes) const {
    std::size_t run = 0;
    for (const std::uint64_t h : hashes) {
      if (!counts_.contains(h)) break;
      ++run;
    }
    return run;
  }
  [[nodiscard]] std::size_t size() const { return counts_.size(); }
  [[nodiscard]] bool empty() const { return counts_.empty(); }

 private:
  /// Determinism audit: lookup/refcount only (Add/Remove/Contains/
  /// SharedPrefixBlocks) — never iterated, so the unordered layout cannot
  /// leak into stats or routing.
  std::unordered_map<std::uint64_t, std::uint32_t> counts_;
};

/// Descriptor of a sequence's KV state detached from any one block manager —
/// the unit of (simulated) KV migration between replicas.  Blocks are the
/// logical count a fresh Import() allocates; physical sharing (forked
/// prefixes) does not survive the wire, so an imported sequence is dense.
/// The prefix hashes DO survive it: migrated KV carries its identity, so the
/// destination's index immediately advertises the moved blocks.
struct KvExport {
  SeqId id = 0;
  std::size_t tokens = 0;
  std::size_t blocks = 0;
  std::vector<std::uint64_t> prefix_hashes;  ///< hashes registered at export
};

class KvBlockManager {
 public:
  /// `total_blocks` physical blocks, each holding `block_tokens` tokens.
  KvBlockManager(std::size_t total_blocks, std::size_t block_tokens);

  /// Registers a new sequence with `prompt_tokens` tokens; allocates
  /// ceil(prompt/block) blocks.  Returns false (and allocates nothing) if the
  /// pool cannot satisfy it.
  bool AddSequence(SeqId id, std::size_t prompt_tokens);

  /// Appends one generated token; allocates a fresh block on a block
  /// boundary, or copy-on-writes a shared tail block.  Returns false on OOM
  /// (sequence state is unchanged).
  bool AppendToken(SeqId id);

  /// Forks `child` from `parent` (beam search / prefix sharing): the child
  /// shares all parent blocks, bumping reference counts.  O(blocks).
  bool Fork(SeqId parent, SeqId child);

  /// Releases a sequence; blocks with refcount hitting zero return to the
  /// free list.
  void Free(SeqId id);

  /// Detaches a sequence for migration: captures its descriptor, then frees
  /// it locally (refcount-aware — blocks shared with a forked sibling only
  /// drop a reference).  An unknown id exports as {id, 0, 0}.
  [[nodiscard]] KvExport Export(SeqId id);

  /// Materializes an exported sequence in this pool, allocating fresh blocks
  /// for every token and re-registering the carried prefix hashes.  Returns
  /// false (allocating nothing) when the id is already present or the pool
  /// cannot satisfy it.
  bool Import(const KvExport& exported);

  /// Publishes a sequence's prefix-block hashes in this pool's index (call
  /// once its KV actually holds them — at prefill completion or import).
  /// Free/Export/Fork maintain the registration automatically from then on;
  /// re-registering an id replaces its previous registration.
  void RegisterPrefix(SeqId id, std::span<const std::uint64_t> hashes);
  /// Hashes currently registered for a sequence (empty if none).
  [[nodiscard]] std::span<const std::uint64_t> RegisteredPrefix(
      SeqId id) const;
  /// The replica-wide resident-prefix index (routing reads this).
  [[nodiscard]] const PrefixIndex& prefix_index() const {
    return prefix_index_;
  }

  [[nodiscard]] std::size_t total_blocks() const { return ref_counts_.size(); }
  [[nodiscard]] std::size_t free_blocks() const { return free_list_.size(); }
  [[nodiscard]] std::size_t used_blocks() const {
    return total_blocks() - free_blocks();
  }
  [[nodiscard]] std::size_t block_tokens() const { return block_tokens_; }
  [[nodiscard]] bool HasSequence(SeqId id) const {
    return sequences_.contains(id);
  }
  [[nodiscard]] std::size_t SequenceTokens(SeqId id) const;
  [[nodiscard]] const std::vector<std::size_t>& BlockTable(SeqId id) const;
  /// Blocks a new sequence of `tokens` tokens would need.
  [[nodiscard]] std::size_t BlocksNeeded(std::size_t tokens) const {
    return (tokens + block_tokens_ - 1) / block_tokens_;
  }
  [[nodiscard]] bool CanAllocate(std::size_t blocks) const {
    return free_blocks() >= blocks;
  }
  /// Copy-on-write events triggered so far (observability for tests).
  [[nodiscard]] std::size_t cow_count() const { return cow_count_; }

 private:
  struct Sequence {
    std::vector<std::size_t> blocks;
    std::size_t tokens = 0;
    /// Prefix hashes this sequence has published in the index (subset of the
    /// prompt's signature; empty until RegisterPrefix).
    std::vector<std::uint64_t> prefix_hashes;
  };

  std::optional<std::size_t> AllocBlock();
  void ReleaseBlock(std::size_t block);
  void UnregisterPrefix(Sequence& seq);

  std::size_t block_tokens_;
  std::vector<std::uint32_t> ref_counts_;
  std::vector<std::size_t> free_list_;
  /// Determinism audit: keyed lookup/erase only — never iterated; block
  /// accounting walks the vectors above instead.
  std::unordered_map<SeqId, Sequence> sequences_;
  std::size_t cow_count_ = 0;
  PrefixIndex prefix_index_;
};

}  // namespace liquid::serving
