#pragma once
// PagedAttention-style KV-cache block manager (paper Section 6; Kwon et al.,
// SOSP'23).  A real allocator, not a byte counter: fixed-size token blocks,
// per-sequence block tables, reference-counted sharing (prefix forking) with
// copy-on-write on append, and exact accounting the serving engine uses to
// decide the out-of-memory points of Table 1.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace liquid::serving {

using SeqId = std::uint64_t;

/// Descriptor of a sequence's KV state detached from any one block manager —
/// the unit of (simulated) KV migration between replicas.  Blocks are the
/// logical count a fresh Import() allocates; physical sharing (forked
/// prefixes) does not survive the wire, so an imported sequence is dense.
struct KvExport {
  SeqId id = 0;
  std::size_t tokens = 0;
  std::size_t blocks = 0;
};

class KvBlockManager {
 public:
  /// `total_blocks` physical blocks, each holding `block_tokens` tokens.
  KvBlockManager(std::size_t total_blocks, std::size_t block_tokens);

  /// Registers a new sequence with `prompt_tokens` tokens; allocates
  /// ceil(prompt/block) blocks.  Returns false (and allocates nothing) if the
  /// pool cannot satisfy it.
  bool AddSequence(SeqId id, std::size_t prompt_tokens);

  /// Appends one generated token; allocates a fresh block on a block
  /// boundary, or copy-on-writes a shared tail block.  Returns false on OOM
  /// (sequence state is unchanged).
  bool AppendToken(SeqId id);

  /// Forks `child` from `parent` (beam search / prefix sharing): the child
  /// shares all parent blocks, bumping reference counts.  O(blocks).
  bool Fork(SeqId parent, SeqId child);

  /// Releases a sequence; blocks with refcount hitting zero return to the
  /// free list.
  void Free(SeqId id);

  /// Detaches a sequence for migration: captures its descriptor, then frees
  /// it locally (refcount-aware — blocks shared with a forked sibling only
  /// drop a reference).  An unknown id exports as {id, 0, 0}.
  [[nodiscard]] KvExport Export(SeqId id);

  /// Materializes an exported sequence in this pool, allocating fresh blocks
  /// for every token.  Returns false (allocating nothing) when the id is
  /// already present or the pool cannot satisfy it.
  bool Import(const KvExport& exported);

  [[nodiscard]] std::size_t total_blocks() const { return ref_counts_.size(); }
  [[nodiscard]] std::size_t free_blocks() const { return free_list_.size(); }
  [[nodiscard]] std::size_t used_blocks() const {
    return total_blocks() - free_blocks();
  }
  [[nodiscard]] std::size_t block_tokens() const { return block_tokens_; }
  [[nodiscard]] bool HasSequence(SeqId id) const {
    return sequences_.contains(id);
  }
  [[nodiscard]] std::size_t SequenceTokens(SeqId id) const;
  [[nodiscard]] const std::vector<std::size_t>& BlockTable(SeqId id) const;
  /// Blocks a new sequence of `tokens` tokens would need.
  [[nodiscard]] std::size_t BlocksNeeded(std::size_t tokens) const {
    return (tokens + block_tokens_ - 1) / block_tokens_;
  }
  [[nodiscard]] bool CanAllocate(std::size_t blocks) const {
    return free_blocks() >= blocks;
  }
  /// Copy-on-write events triggered so far (observability for tests).
  [[nodiscard]] std::size_t cow_count() const { return cow_count_; }

 private:
  struct Sequence {
    std::vector<std::size_t> blocks;
    std::size_t tokens = 0;
  };

  std::optional<std::size_t> AllocBlock();
  void ReleaseBlock(std::size_t block);

  std::size_t block_tokens_;
  std::vector<std::uint32_t> ref_counts_;
  std::vector<std::size_t> free_list_;
  std::unordered_map<SeqId, Sequence> sequences_;
  std::size_t cow_count_ = 0;
};

}  // namespace liquid::serving
