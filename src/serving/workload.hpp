#pragma once
// Workload generation and latency metrics for serving experiments.
//
// The paper evaluates fixed-length workloads (1024/512); production traces
// are bursty.  This module generates Poisson-arrival request traces with
// configurable length distributions and summarizes per-request latency into
// the metrics operators actually watch: TTFT (time to first token), TPOT
// (time per output token), and end-to-end latency percentiles.

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace liquid::serving {

struct TimedRequest {
  std::uint64_t id = 0;
  double arrival_seconds = 0;
  std::size_t prompt_tokens = 0;
  std::size_t max_new_tokens = 0;
  std::uint32_t tenant = 0;    ///< which arrival mix produced this request
  std::uint64_t session = 0;   ///< conversation key for affinity routing
  /// Retry metadata: 0 for the original submission; a request re-submitted
  /// after its replica was killed carries attempt+1 (it restarts from the
  /// original prompt — generated-but-undelivered tokens are wasted work).
  std::uint32_t attempt = 0;
};

struct TraceConfig {
  double arrival_rate_per_s = 4.0;  ///< Poisson rate
  std::size_t count = 64;
  std::size_t prompt_min = 64;
  std::size_t prompt_max = 1024;
  std::size_t output_min = 32;
  std::size_t output_max = 512;
  /// Requests are spread round-robin over this many session keys so
  /// affinity routing has spread to work with (0 = one session per request).
  std::size_t sessions = 16;
};

/// Generates a deterministic Poisson-arrival trace (exponential gaps, log-
/// uniform lengths) from the given seed.
std::vector<TimedRequest> GenerateTrace(const TraceConfig& config,
                                        std::uint64_t seed);

/// One tenant's slice of a multi-tenant arrival mix: its own Poisson rate and
/// length distribution, with requests spread over `sessions` conversation
/// keys (session affinity routes all requests of one session together).
struct TenantConfig {
  std::uint32_t tenant = 0;
  TraceConfig trace;
  std::size_t sessions = 8;
};

/// Superposes the per-tenant Poisson processes into one trace, sorted by
/// arrival, with globally unique ids and deterministic session assignment.
std::vector<TimedRequest> GenerateMultiTenantTrace(
    const std::vector<TenantConfig>& tenants, std::uint64_t seed);

/// One finished request's timing.
struct RequestTiming {
  std::uint64_t id = 0;
  double arrival = 0;
  double first_token = 0;  ///< completion time of the first generated token
  double finish = 0;
  std::size_t generated = 0;

  [[nodiscard]] double Ttft() const { return first_token - arrival; }
  [[nodiscard]] double Tpot() const {
    return generated > 1 ? (finish - first_token) /
                               static_cast<double>(generated - 1)
                         : 0.0;
  }
  [[nodiscard]] double EndToEnd() const { return finish - arrival; }
};

/// Per-metric samples pooled from finished requests — the one place the
/// TPOT-eligibility rule (needs >1 generated token) lives, shared by the
/// single-replica LatencyReport and the fleet-level FleetStats.
struct LatencySamples {
  std::vector<double> ttft, tpot, e2e;
  double generated_tokens = 0;
};
LatencySamples CollectLatencySamples(const std::vector<RequestTiming>& timings);

struct LatencyReport {
  std::size_t count = 0;
  double ttft_p50 = 0, ttft_p99 = 0;
  double tpot_p50 = 0, tpot_p99 = 0;
  double e2e_p50 = 0, e2e_p99 = 0;
  double throughput_tokens_per_s = 0;
};

LatencyReport SummarizeTimings(const std::vector<RequestTiming>& timings,
                               double span_seconds);

}  // namespace liquid::serving
