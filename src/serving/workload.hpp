#pragma once
// Workload generation and latency metrics for serving experiments.
//
// The paper evaluates fixed-length workloads (1024/512); production traces
// are bursty.  This module generates Poisson-arrival request traces with
// configurable length distributions and summarizes per-request latency into
// the metrics operators actually watch: TTFT (time to first token), TPOT
// (time per output token), and end-to-end latency percentiles.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace liquid::serving {

/// Token-block signature of a prompt: one rolling hash per fixed-size block
/// of `block_tokens` simulated tokens, chained across blocks so hash i
/// commits to every token through block i.  Two prompts share leading hashes
/// exactly as far as their token content agrees — the fleet-wide currency of
/// prefix-cache locality (routing scores shared blocks, schedulers skip
/// their prefill compute).
struct PrefixSignature {
  std::uint32_t block_tokens = 0;     ///< tokens hashed per block (0 = none)
  /// Prompt tokens the hashes attest (the final block can be partial).
  /// Stays fixed when bookkeeping later inflates a request's prompt
  /// (preemption folds generated tokens in); 0 = unknown, treat every
  /// block as full.
  std::size_t covered_tokens = 0;
  std::vector<std::uint64_t> hashes;  ///< rolling hash per prompt block

  [[nodiscard]] bool empty() const { return hashes.empty(); }
  [[nodiscard]] std::size_t blocks() const { return hashes.size(); }
};

/// Builds the signature of a prompt whose first `shared_tokens` tokens come
/// from a shared content stream (keyed by `content_key` — a system preamble
/// or few-shot prefix) and whose remainder is unique (keyed by `unique_key`).
/// Deterministic: the same keys and lengths produce the same hashes on every
/// replica, which is what makes the fleet-wide index meaningful.
[[nodiscard]] PrefixSignature MakePrefixSignature(std::uint64_t content_key,
                                                  std::uint64_t unique_key,
                                                  std::size_t shared_tokens,
                                                  std::size_t prompt_tokens,
                                                  std::size_t block_tokens);

struct TimedRequest {
  std::uint64_t id = 0;
  double arrival_seconds = 0;
  std::size_t prompt_tokens = 0;
  std::size_t max_new_tokens = 0;
  std::uint32_t tenant = 0;    ///< which arrival mix produced this request
  std::uint64_t session = 0;   ///< conversation key for affinity routing
  /// Retry metadata: 0 for the original submission; a request re-submitted
  /// after its replica was killed carries attempt+1 (it restarts from the
  /// original prompt — generated-but-undelivered tokens are wasted work).
  std::uint32_t attempt = 0;
  /// Block-hash signature of the prompt (prefix-cache-aware placement).
  PrefixSignature prefix = {};
};

struct TraceConfig {
  double arrival_rate_per_s = 4.0;  ///< Poisson rate
  std::size_t count = 64;
  std::size_t prompt_min = 64;
  std::size_t prompt_max = 1024;
  std::size_t output_min = 32;
  std::size_t output_max = 512;
  /// Requests are spread round-robin over this many session keys so
  /// affinity routing has spread to work with (0 = one session per request).
  std::size_t sessions = 16;
  /// Fraction of each prompt covered by a shared prefix (system preamble /
  /// few-shot block).  0 disables sharing: every prompt is unique content
  /// and prefix overlap between distinct requests is exactly zero.
  double shared_prefix_fraction = 0;
  /// Distinct shared preambles in the trace; a request's preamble is keyed
  /// by session % prefix_groups, so sharing crosses session boundaries
  /// (the case pure session stickiness cannot exploit).
  std::size_t prefix_groups = 1;
  /// Tokens per signature block.  Keep equal to the replicas' KV
  /// block_tokens so one shared signature block equals one skippable
  /// KV block of prefill.
  std::size_t prefix_block_tokens = 16;
};

/// Generates a deterministic Poisson-arrival trace (exponential gaps, log-
/// uniform lengths) from the given seed.
std::vector<TimedRequest> GenerateTrace(const TraceConfig& config,
                                        std::uint64_t seed);

/// One tenant's slice of a multi-tenant arrival mix: its own Poisson rate and
/// length distribution, with requests spread over `sessions` conversation
/// keys (session affinity routes all requests of one session together).
struct TenantConfig {
  std::uint32_t tenant = 0;
  TraceConfig trace;
  std::size_t sessions = 8;
};

/// Superposes the per-tenant Poisson processes into one trace, sorted by
/// arrival, with globally unique ids and deterministic session assignment.
std::vector<TimedRequest> GenerateMultiTenantTrace(
    const std::vector<TenantConfig>& tenants, std::uint64_t seed);

/// One finished request's timing.
struct RequestTiming {
  std::uint64_t id = 0;
  double arrival = 0;
  double first_token = 0;  ///< completion time of the first generated token
  double finish = 0;
  std::size_t generated = 0;

  [[nodiscard]] double Ttft() const { return first_token - arrival; }
  [[nodiscard]] double Tpot() const {
    return generated > 1 ? (finish - first_token) /
                               static_cast<double>(generated - 1)
                         : 0.0;
  }
  [[nodiscard]] double EndToEnd() const { return finish - arrival; }
};

/// Per-metric samples pooled from finished requests — the one place the
/// TPOT-eligibility rule (needs >1 generated token) lives, shared by the
/// single-replica LatencyReport and the fleet-level FleetStats.
struct LatencySamples {
  std::vector<double> ttft, tpot, e2e;
  double generated_tokens = 0;
};
LatencySamples CollectLatencySamples(const std::vector<RequestTiming>& timings);

struct LatencyReport {
  std::size_t count = 0;
  double ttft_p50 = 0, ttft_p99 = 0;
  double tpot_p50 = 0, tpot_p99 = 0;
  double e2e_p50 = 0, e2e_p99 = 0;
  double throughput_tokens_per_s = 0;
};

LatencyReport SummarizeTimings(const std::vector<RequestTiming>& timings,
                               double span_seconds);

}  // namespace liquid::serving
