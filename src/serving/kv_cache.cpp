#include "serving/kv_cache.hpp"

#include <cassert>
#include <numeric>

namespace liquid::serving {

KvBlockManager::KvBlockManager(std::size_t total_blocks,
                               std::size_t block_tokens)
    : block_tokens_(block_tokens), ref_counts_(total_blocks, 0) {
  assert(block_tokens > 0);
  free_list_.resize(total_blocks);
  // LIFO free list: allocate low block ids first for determinism.
  std::iota(free_list_.rbegin(), free_list_.rend(), std::size_t{0});
}

std::optional<std::size_t> KvBlockManager::AllocBlock() {
  if (free_list_.empty()) return std::nullopt;
  const std::size_t block = free_list_.back();
  free_list_.pop_back();
  ref_counts_[block] = 1;
  return block;
}

void KvBlockManager::ReleaseBlock(std::size_t block) {
  assert(ref_counts_[block] > 0);
  if (--ref_counts_[block] == 0) free_list_.push_back(block);
}

bool KvBlockManager::AddSequence(SeqId id, std::size_t prompt_tokens) {
  if (sequences_.contains(id)) return false;
  const std::size_t need = BlocksNeeded(prompt_tokens);
  if (!CanAllocate(need)) return false;
  Sequence seq;
  seq.tokens = prompt_tokens;
  seq.blocks.reserve(need);
  for (std::size_t i = 0; i < need; ++i) {
    seq.blocks.push_back(*AllocBlock());  // guaranteed by CanAllocate
  }
  sequences_.emplace(id, std::move(seq));
  return true;
}

bool KvBlockManager::AppendToken(SeqId id) {
  auto it = sequences_.find(id);
  if (it == sequences_.end()) return false;
  Sequence& seq = it->second;

  const bool needs_block = seq.tokens % block_tokens_ == 0 || seq.blocks.empty();
  if (needs_block) {
    const auto block = AllocBlock();
    if (!block) return false;
    seq.blocks.push_back(*block);
  } else {
    // Writing into the tail block: if it is shared (forked), copy-on-write.
    const std::size_t tail = seq.blocks.back();
    if (ref_counts_[tail] > 1) {
      const auto copy = AllocBlock();
      if (!copy) return false;
      ReleaseBlock(tail);
      seq.blocks.back() = *copy;
      ++cow_count_;
    }
  }
  ++seq.tokens;
  return true;
}

bool KvBlockManager::Fork(SeqId parent, SeqId child) {
  auto it = sequences_.find(parent);
  if (it == sequences_.end() || sequences_.contains(child)) return false;
  Sequence copy = it->second;
  for (const std::size_t block : copy.blocks) ++ref_counts_[block];
  // The child holds its own references to the shared prefix blocks, so the
  // index counts them once per holder (the parent freeing alone must not
  // evict the hashes).
  for (const std::uint64_t h : copy.prefix_hashes) prefix_index_.Add(h);
  sequences_.emplace(child, std::move(copy));
  return true;
}

void KvBlockManager::Free(SeqId id) {
  auto it = sequences_.find(id);
  if (it == sequences_.end()) return;
  for (const std::size_t block : it->second.blocks) ReleaseBlock(block);
  UnregisterPrefix(it->second);
  sequences_.erase(it);
}

KvExport KvBlockManager::Export(SeqId id) {
  KvExport out;
  out.id = id;
  const auto it = sequences_.find(id);
  if (it == sequences_.end()) return out;
  out.tokens = it->second.tokens;
  out.blocks = it->second.blocks.size();
  out.prefix_hashes = it->second.prefix_hashes;
  Free(id);
  return out;
}

bool KvBlockManager::Import(const KvExport& exported) {
  if (sequences_.contains(exported.id)) return false;
  if (!AddSequence(exported.id, exported.tokens)) return false;
  RegisterPrefix(exported.id, exported.prefix_hashes);
  return true;
}

void KvBlockManager::RegisterPrefix(SeqId id,
                                    std::span<const std::uint64_t> hashes) {
  const auto it = sequences_.find(id);
  if (it == sequences_.end()) return;
  UnregisterPrefix(it->second);
  it->second.prefix_hashes.assign(hashes.begin(), hashes.end());
  for (const std::uint64_t h : it->second.prefix_hashes) prefix_index_.Add(h);
}

std::span<const std::uint64_t> KvBlockManager::RegisteredPrefix(
    SeqId id) const {
  const auto it = sequences_.find(id);
  if (it == sequences_.end()) return {};
  return it->second.prefix_hashes;
}

void KvBlockManager::UnregisterPrefix(Sequence& seq) {
  for (const std::uint64_t h : seq.prefix_hashes) prefix_index_.Remove(h);
  seq.prefix_hashes.clear();
}

std::size_t KvBlockManager::SequenceTokens(SeqId id) const {
  const auto it = sequences_.find(id);
  return it == sequences_.end() ? 0 : it->second.tokens;
}

const std::vector<std::size_t>& KvBlockManager::BlockTable(SeqId id) const {
  static const std::vector<std::size_t> kEmpty;
  const auto it = sequences_.find(id);
  return it == sequences_.end() ? kEmpty : it->second.blocks;
}

}  // namespace liquid::serving
