#pragma once
// Paged KV store with real quantized storage (paper Section 6).
//
// Combines the KvBlockManager (block tables, refcounts) with actual byte
// storage: appended K/V token vectors are quantized to INT8 with per-channel
// static scales (the LiquidServe / TRT-W8A8 configuration) and written into
// their sequence's current block; reads gather a sequence's tokens through
// the block table and dequantize.  This closes the loop on the KV pipeline —
// the serving simulator costs it, this component proves its numerics.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/quant/kv_quant.hpp"
#include "serving/kv_cache.hpp"

namespace liquid::serving {

class PagedKvStore {
 public:
  /// `heads`/`head_dim`: geometry of one layer's K (and V) vectors.
  /// `total_blocks` x `block_tokens` defines pool capacity.
  PagedKvStore(std::size_t total_blocks, std::size_t block_tokens,
               std::size_t heads, std::size_t head_dim,
               KvInt8Params k_params, KvInt8Params v_params);

  /// Starts a sequence; no tokens stored yet.
  bool AddSequence(SeqId id);

  /// Quantizes and appends one token's K and V vectors (heads*head_dim
  /// floats each).  Returns false on pool exhaustion (nothing written).
  bool AppendToken(SeqId id, std::span<const float> k,
                   std::span<const float> v);

  /// Dequantizes the full cached sequence: out_k/out_v get
  /// tokens*heads*head_dim floats in token order.
  void GatherSequence(SeqId id, std::vector<float>& out_k,
                      std::vector<float>& out_v) const;

  /// Dequantizes a single cached token (for incremental attention).
  void ReadToken(SeqId id, std::size_t token_index, std::span<float> out_k,
                 std::span<float> out_v) const;

  void Free(SeqId id);

  [[nodiscard]] std::size_t SequenceTokens(SeqId id) const {
    return manager_.SequenceTokens(id);
  }
  [[nodiscard]] std::size_t used_blocks() const {
    return manager_.used_blocks();
  }
  [[nodiscard]] std::size_t BytesPerToken() const {
    return 2 * channels_;  // K and V, INT8
  }

 private:
  [[nodiscard]] const std::int8_t* TokenSlot(SeqId id, std::size_t token,
                                             bool value_half) const;
  std::int8_t* TokenSlot(SeqId id, std::size_t token, bool value_half);

  KvBlockManager manager_;
  std::size_t block_tokens_;
  std::size_t channels_;  ///< heads * head_dim
  KvInt8Params k_params_;
  KvInt8Params v_params_;
  /// Physical storage: [total_blocks][block_tokens][2 * channels] int8,
  /// K first then V per token slot.
  std::vector<std::int8_t> storage_;
};

}  // namespace liquid::serving
