#pragma once
// System presets for the seven serving stacks of Table 1.
//
// A preset bundles: which GEMM kernel serves the QKV/O/FFN projections, the
// KV-cache precision, the attention-kernel efficiency, the non-GEMM per-layer
// overhead ("Others" in Figures 4/10: activation quantization, layer norms,
// RoPE, routing), model-support limits (e.g. TRT-W8A8 lacks Mixtral support),
// and the framework's base memory overhead.
//
// Efficiency/overhead constants are substitutions for the real software
// stacks (documented in DESIGN.md §1): they are set from the paper's own
// measurements — e.g. QServe's attention and runtime overheads are sized so
// that LiquidServe/wo (same kernel, our stack) vs QServe (their stack)
// reproduces the Table 1 relationship.

#include <optional>
#include <string>
#include <vector>

#include "serving/attention_model.hpp"
#include "serving/model_config.hpp"
#include "simgpu/kernel_config.hpp"

namespace liquid::serving {

struct SystemPreset {
  std::string name;
  simgpu::KernelKind kernel = simgpu::KernelKind::kLiquidW4A8;
  double kv_bits = 8;
  double attention_efficiency = 0.80;
  /// FP8 attention math (see AttentionCostConfig::fp8_math).
  bool fp8_attention = false;
  /// Multiplier on the baseline non-GEMM per-layer cost (act quant, norms,
  /// RoPE, MoE routing, scheduler).
  double other_overhead = 1.0;
  /// Non-layer framework memory (weights workspace, CUDA graphs, etc.).
  double base_memory_bytes = 1.5e9;
  bool supports_moe = true;
  /// Weight-only / weight-activation storage bits for GEMM weights.
  [[nodiscard]] double WeightBits() const;
  /// Quantization-parameter overhead per weight element, in bits (group
  /// scales/zeros for 4-bit schemes).
  [[nodiscard]] double QuantParamBits() const;

  [[nodiscard]] bool Supports(const LlmConfig& model) const {
    return model.experts <= 1 || supports_moe;
  }

  static SystemPreset TrtFp16();
  static SystemPreset TrtW4A16();
  static SystemPreset TrtW8A8();
  static SystemPreset TrtFp8();
  static SystemPreset QServe();
  static SystemPreset LiquidServe();
  /// LiquidServe stack with QServe's W4A8 kernel (Table 1's ablation row).
  static SystemPreset LiquidServeWo();

  /// Table 1 row order.
  static std::vector<SystemPreset> PaperSystems();
};

}  // namespace liquid::serving
