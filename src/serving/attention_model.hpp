#pragma once
// Attention cost model (paper Section 6: FlashAttention-2 for runtime
// attention, PagedAttention layout, quantized KV cache).
//
// Decode attention is memory-bound: each step streams every cached K/V byte
// of every sequence once (FlashAttention-2 tiling achieves this bound), so
//   t = batch * kv_len * kv_heads * head_dim * 2 * kv_bytes / (BW * eff).
// Prefill attention is compute-bound on FP16 tensor cores with causal
// masking: 2 * 2 * heads * head_dim * L^2 / 2 MAC-ops per sequence per layer.
// `efficiency` folds in how well a given system's attention kernels approach
// those bounds (e.g. TRT-FP8's Hopper FP8 attention vs QServe's kernels).

#include <cstddef>

#include "serving/model_config.hpp"
#include "simgpu/hardware.hpp"

namespace liquid::serving {

struct AttentionCostConfig {
  double kv_bits = 8;
  double efficiency = 0.8;   ///< fraction of the bandwidth/compute bound
  double softmax_overhead = 1.15;  ///< non-GEMM work in the kernel
  /// FP8 attention math (FlashAttention-3 class): prefill QK^T/PV run on the
  /// FP8 tensor-core rate instead of FP16 — TRT-FP8's Hopper advantage.
  bool fp8_math = false;
};

/// Seconds for one decode step over all layers.
double DecodeAttentionSeconds(const simgpu::HardwareSpec& hw,
                              const LlmConfig& model,
                              const AttentionCostConfig& cfg,
                              std::size_t batch, std::size_t kv_len);

/// Seconds to run prefill attention for `batch` sequences of `prompt_len`
/// tokens over all layers.
double PrefillAttentionSeconds(const simgpu::HardwareSpec& hw,
                               const LlmConfig& model,
                               const AttentionCostConfig& cfg,
                               std::size_t batch, std::size_t prompt_len);

/// Cross-attention rectangle (chunked prefill): `q_tokens` fresh tokens per
/// sequence attend to `kv_len` cached tokens.  Compute-bound on tensor cores
/// like prefill, but floored by the bandwidth of re-reading the cached KV.
double CrossAttentionSeconds(const simgpu::HardwareSpec& hw,
                             const LlmConfig& model,
                             const AttentionCostConfig& cfg, std::size_t batch,
                             std::size_t q_tokens, std::size_t kv_len);

}  // namespace liquid::serving
