#include "serving/paged_kv_store.hpp"

#include <cassert>

namespace liquid::serving {

PagedKvStore::PagedKvStore(std::size_t total_blocks, std::size_t block_tokens,
                           std::size_t heads, std::size_t head_dim,
                           KvInt8Params k_params, KvInt8Params v_params)
    : manager_(total_blocks, block_tokens),
      block_tokens_(block_tokens),
      channels_(heads * head_dim),
      k_params_(std::move(k_params)),
      v_params_(std::move(v_params)),
      storage_(total_blocks * block_tokens * 2 * heads * head_dim, 0) {
  assert(k_params_.Channels() == channels_);
  assert(v_params_.Channels() == channels_);
}

bool PagedKvStore::AddSequence(SeqId id) {
  return manager_.AddSequence(id, 0);
}

std::int8_t* PagedKvStore::TokenSlot(SeqId id, std::size_t token,
                                     bool value_half) {
  const auto& table = manager_.BlockTable(id);
  const std::size_t block = table[token / block_tokens_];
  const std::size_t slot = token % block_tokens_;
  const std::size_t base =
      (block * block_tokens_ + slot) * 2 * channels_ +
      (value_half ? channels_ : 0);
  return storage_.data() + base;
}

const std::int8_t* PagedKvStore::TokenSlot(SeqId id, std::size_t token,
                                           bool value_half) const {
  return const_cast<PagedKvStore*>(this)->TokenSlot(id, token, value_half);
}

bool PagedKvStore::AppendToken(SeqId id, std::span<const float> k,
                               std::span<const float> v) {
  assert(k.size() == channels_ && v.size() == channels_);
  if (!manager_.HasSequence(id)) return false;
  const std::size_t index = manager_.SequenceTokens(id);
  if (!manager_.AppendToken(id)) return false;
  QuantizeKvInt8(k, k_params_, {TokenSlot(id, index, false), channels_});
  QuantizeKvInt8(v, v_params_, {TokenSlot(id, index, true), channels_});
  return true;
}

void PagedKvStore::ReadToken(SeqId id, std::size_t token_index,
                             std::span<float> out_k,
                             std::span<float> out_v) const {
  assert(token_index < manager_.SequenceTokens(id));
  DequantizeKvInt8({TokenSlot(id, token_index, false), channels_}, k_params_,
                   out_k);
  DequantizeKvInt8({TokenSlot(id, token_index, true), channels_}, v_params_,
                   out_v);
}

void PagedKvStore::GatherSequence(SeqId id, std::vector<float>& out_k,
                                  std::vector<float>& out_v) const {
  const std::size_t tokens = manager_.SequenceTokens(id);
  out_k.resize(tokens * channels_);
  out_v.resize(tokens * channels_);
  for (std::size_t t = 0; t < tokens; ++t) {
    ReadToken(id, t, {out_k.data() + t * channels_, channels_},
              {out_v.data() + t * channels_, channels_});
  }
}

void PagedKvStore::Free(SeqId id) { manager_.Free(id); }

}  // namespace liquid::serving
