#pragma once
// LLM architecture descriptions for every model the paper evaluates
// (Table 1): LLaMA1-30B, LLaMA2-7/13/70B, LLaMA3-8B, Mistral-7B, Yi-34B and
// Mixtral-8x7B.  Provides the per-layer GEMM shapes (fused QKV, output
// projection, gate+up and down FFN projections — Figure 9), MoE expert
// grouping, parameter counts, and KV-cache geometry.

#include <cstddef>
#include <string>
#include <vector>

#include "simgpu/gemm_sim.hpp"

namespace liquid::serving {

struct LlmConfig {
  std::string name;
  int num_layers = 0;
  int hidden = 0;
  int heads = 0;
  int kv_heads = 0;       ///< < heads for GQA models
  int head_dim = 0;
  int ffn_intermediate = 0;
  int vocab = 0;
  int experts = 1;            ///< 1 for dense models
  int experts_per_token = 1;  ///< top-k routing (2 for Mixtral)

  /// GEMM calls for one decoder layer at `batch` tokens in flight (decode
  /// step).  MoE FFNs are emitted as grouped GEMMs: `experts` GEMMs of
  /// batch * experts_per_token / experts tokens each (balanced routing).
  [[nodiscard]] std::vector<simgpu::GemmCall> LayerGemms(std::size_t batch) const;

  /// Total GEMM weight elements per layer (QKV + O + FFN across experts).
  [[nodiscard]] double GemmWeightsPerLayer() const;
  /// Total GEMM weight elements in the model (all layers).
  [[nodiscard]] double TotalGemmWeights() const {
    return GemmWeightsPerLayer() * num_layers;
  }
  /// Embedding + LM-head elements (kept FP16 by every system under study).
  [[nodiscard]] double EmbeddingWeights() const {
    return 2.0 * static_cast<double>(vocab) * hidden;
  }
  /// KV-cache bytes per token per layer at `kv_bits` precision.
  [[nodiscard]] double KvBytesPerTokenPerLayer(double kv_bits) const {
    return 2.0 * kv_heads * head_dim * kv_bits / 8.0;  // K and V
  }
  [[nodiscard]] double KvBytesPerToken(double kv_bits) const {
    return KvBytesPerTokenPerLayer(kv_bits) * num_layers;
  }

  static LlmConfig Llama1_30B();
  static LlmConfig Llama2_7B();
  static LlmConfig Llama2_13B();
  static LlmConfig Llama2_70B();
  static LlmConfig Llama3_8B();
  static LlmConfig Mistral_7B();
  static LlmConfig Yi_34B();
  static LlmConfig Mixtral_8x7B();

  /// The Table 1 model list, in paper column order.
  static std::vector<LlmConfig> PaperModels();
};

}  // namespace liquid::serving
