#pragma once
// Megatron-style tensor parallelism over the serving engine.
//
// The paper serves every model on one H800; 70B-class models in production
// shard across GPUs.  This module implements the standard decoder-layer TP
// plan — QKV and FFN-up column-parallel, O and FFN-down row-parallel, one
// all-reduce after each row-parallel GEMM (two per layer) — on top of the
// same GEMM simulator and attention model, with a ring all-reduce costed on
// the interconnect.  It demonstrates a point the H800 makes sharply: its
// NVLink is cut to 400 GB/s, so TP efficiency degrades faster than on H100,
// which is part of why single-GPU W4A8 serving (fitting 70B in 80 GB) is so
// valuable on this part.

#include <cstddef>

#include "serving/engine.hpp"
#include "serving/model_config.hpp"
#include "serving/system_preset.hpp"
#include "simgpu/hardware.hpp"

namespace liquid::serving {

struct TpResult {
  bool feasible = true;       ///< heads divisible, memory fits
  double tokens_per_second = 0;
  double decode_step_seconds = 0;
  double allreduce_seconds_per_layer = 0;  ///< per decode step
  double memory_per_gpu = 0;
  double scaling_efficiency = 0;  ///< speedup vs 1 GPU / tp_degree
};

class TensorParallelEngine {
 public:
  TensorParallelEngine(simgpu::HardwareSpec hw, SystemPreset preset,
                       LlmConfig model, int tp_degree,
                       EngineOptions options = {});

  /// Per-GPU shard of the model (KV heads and FFN split tp ways).
  [[nodiscard]] const LlmConfig& ShardedModel() const { return shard_; }
  [[nodiscard]] int tp_degree() const { return tp_; }

  /// Ring all-reduce time for `bytes` per GPU: 2*(tp-1)/tp * bytes / link.
  [[nodiscard]] double AllReduceSeconds(double bytes) const;

  /// Full run at a fixed batch (mirrors ServingEngine::Run).
  [[nodiscard]] TpResult Run(const ServingWorkload& workload) const;

 private:
  simgpu::HardwareSpec hw_;
  SystemPreset preset_;
  LlmConfig full_model_;
  LlmConfig shard_;
  int tp_ = 1;
  EngineOptions options_;
  ServingEngine shard_engine_;
};

/// Builds the per-GPU shard config: attention heads, KV heads, and FFN
/// intermediate divided by tp (vocab kept whole; LM head is column-parallel
/// with a gather we fold into "others").  Returns nullopt-like feasible=false
/// via TpResult when the division does not work out.
LlmConfig ShardModel(const LlmConfig& model, int tp_degree);

/// True when the model divides cleanly across tp GPUs.
bool CanShard(const LlmConfig& model, int tp_degree);

}  // namespace liquid::serving
