#include "serving/attention_model.hpp"

#include <algorithm>

namespace liquid::serving {

double DecodeAttentionSeconds(const simgpu::HardwareSpec& hw,
                              const LlmConfig& model,
                              const AttentionCostConfig& cfg,
                              std::size_t batch, std::size_t kv_len) {
  const double kv_bytes =
      static_cast<double>(batch) * static_cast<double>(kv_len) *
      model.KvBytesPerToken(cfg.kv_bits);
  const double t_mem = kv_bytes / (hw.mem_bw_bytes * cfg.efficiency);
  // The QK^T and PV inner products: 2 GEMV-like passes over the same bytes;
  // on-chip FLOPs are hidden behind the stream, softmax etc. is the overhead
  // factor.
  return t_mem * cfg.softmax_overhead;
}

double PrefillAttentionSeconds(const simgpu::HardwareSpec& hw,
                               const LlmConfig& model,
                               const AttentionCostConfig& cfg,
                               std::size_t batch, std::size_t prompt_len) {
  const double l = static_cast<double>(prompt_len);
  // Causal attention: QK^T and PV each cost heads*head_dim*L^2/2 MACs per
  // sequence per layer; 2 ops per MAC.
  const double ops_per_layer = 2.0 * 2.0 *
                               static_cast<double>(model.heads) *
                               static_cast<double>(model.head_dim) * l * l /
                               2.0 * static_cast<double>(batch);
  const double ops = ops_per_layer * model.num_layers;
  const double rate = cfg.fp8_math && hw.tc_fp8_ops > 0 ? hw.tc_fp8_ops
                                                        : hw.tc_fp16_ops;
  return ops / (rate * cfg.efficiency) * cfg.softmax_overhead;
}

double CrossAttentionSeconds(const simgpu::HardwareSpec& hw,
                             const LlmConfig& model,
                             const AttentionCostConfig& cfg, std::size_t batch,
                             std::size_t q_tokens, std::size_t kv_len) {
  // QK^T and PV over the q_tokens x kv_len rectangle: 2 passes x 2 ops/MAC.
  const double ops = 2.0 * 2.0 * static_cast<double>(model.heads) *
                     static_cast<double>(model.head_dim) *
                     static_cast<double>(q_tokens) *
                     static_cast<double>(kv_len) *
                     static_cast<double>(batch) * model.num_layers;
  const double rate = cfg.fp8_math && hw.tc_fp8_ops > 0 ? hw.tc_fp8_ops
                                                        : hw.tc_fp16_ops;
  const double t_compute = ops / (rate * cfg.efficiency);
  // Bandwidth floor: the cached K and V bytes are streamed once per chunk.
  const double kv_bytes = static_cast<double>(batch) *
                          static_cast<double>(kv_len) *
                          model.KvBytesPerToken(cfg.kv_bits);
  const double t_mem = kv_bytes / (hw.mem_bw_bytes * cfg.efficiency);
  return std::max(t_compute, t_mem) * cfg.softmax_overhead;
}

}  // namespace liquid::serving
