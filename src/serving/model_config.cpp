#include "serving/model_config.hpp"

#include <algorithm>

namespace liquid::serving {

std::vector<simgpu::GemmCall> LlmConfig::LayerGemms(std::size_t batch) const {
  std::vector<simgpu::GemmCall> calls;
  const std::size_t h = static_cast<std::size_t>(hidden);
  // Attention projection width: heads * head_dim.  Equal to `hidden` for the
  // full models, smaller for tensor-parallel shards.
  const std::size_t q_dim =
      static_cast<std::size_t>(heads) * static_cast<std::size_t>(head_dim);
  const std::size_t kv_dim =
      static_cast<std::size_t>(kv_heads) * static_cast<std::size_t>(head_dim);
  const std::size_t ffn = static_cast<std::size_t>(ffn_intermediate);

  // Fused QKV projection: [q_dim + 2*kv_dim] x h.
  calls.push_back({GemmShape{batch, q_dim + 2 * kv_dim, h}, 1});
  // Output projection: [h] x q_dim.
  calls.push_back({GemmShape{batch, h, q_dim}, 1});

  if (experts <= 1) {
    // Dense gated FFN: fused gate+up, then down.
    calls.push_back({GemmShape{batch, 2 * ffn, h}, 1});
    calls.push_back({GemmShape{batch, h, ffn}, 1});
  } else {
    // MoE: each token visits experts_per_token experts; with balanced
    // routing every expert sees batch * top_k / experts tokens.
    const std::size_t tokens_per_expert = std::max<std::size_t>(
        1, batch * static_cast<std::size_t>(experts_per_token) /
               static_cast<std::size_t>(experts));
    calls.push_back({GemmShape{tokens_per_expert, 2 * ffn, h}, experts});
    calls.push_back({GemmShape{tokens_per_expert, h, ffn}, experts});
  }
  return calls;
}

double LlmConfig::GemmWeightsPerLayer() const {
  const double h = hidden;
  const double q_dim = static_cast<double>(heads) * head_dim;
  const double kv_dim = static_cast<double>(kv_heads) * head_dim;
  const double ffn = ffn_intermediate;
  const double attn = (q_dim + 2.0 * kv_dim) * h + h * q_dim;
  const double ffn_weights = 3.0 * ffn * h * std::max(1, experts);
  return attn + ffn_weights;
}

LlmConfig LlmConfig::Llama1_30B() {
  return {"LLaMA1-30B", 60, 6656, 52, 52, 128, 17920, 32000, 1, 1};
}
LlmConfig LlmConfig::Llama2_7B() {
  return {"LLaMA2-7B", 32, 4096, 32, 32, 128, 11008, 32000, 1, 1};
}
LlmConfig LlmConfig::Llama2_13B() {
  return {"LLaMA2-13B", 40, 5120, 40, 40, 128, 13824, 32000, 1, 1};
}
LlmConfig LlmConfig::Llama2_70B() {
  return {"LLaMA2-70B", 80, 8192, 64, 8, 128, 28672, 32000, 1, 1};
}
LlmConfig LlmConfig::Llama3_8B() {
  return {"LLaMA3-8B", 32, 4096, 32, 8, 128, 14336, 128256, 1, 1};
}
LlmConfig LlmConfig::Mistral_7B() {
  return {"Mistral-7B", 32, 4096, 32, 8, 128, 14336, 32000, 1, 1};
}
LlmConfig LlmConfig::Yi_34B() {
  return {"Yi-34B", 60, 7168, 56, 8, 128, 20480, 64000, 1, 1};
}
LlmConfig LlmConfig::Mixtral_8x7B() {
  return {"Mixtral-8x7B", 32, 4096, 32, 8, 128, 14336, 32000, 8, 2};
}

std::vector<LlmConfig> LlmConfig::PaperModels() {
  return {Llama1_30B(), Llama2_7B(),  Llama2_13B(), Llama2_70B(),
          Llama3_8B(),  Mistral_7B(), Yi_34B(),     Mixtral_8x7B()};
}

}  // namespace liquid::serving
