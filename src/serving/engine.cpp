#include "serving/engine.hpp"

#include <algorithm>
#include <cmath>

namespace liquid::serving {
namespace {

/// Baseline non-GEMM per-layer cost: layer norms, RoPE, residual adds,
/// activation quantization, KV write, routing.  Mostly bandwidth-bound over
/// activation tensors plus a fixed kernel-launch floor.
/// Packs two step-cost arguments into one memo key.  Lengths and batches are
/// at most tens of thousands in practice; anything that would not round-trip
/// through 32 bits bypasses the cache rather than risk a key collision.
constexpr std::uint64_t kMemoMax = (std::uint64_t{1} << 32) - 1;

std::uint64_t MemoKey(std::size_t a, std::size_t b) {
  return (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(b);
}

double BaseOthersPerLayer(const simgpu::HardwareSpec& hw,
                          const LlmConfig& model, std::size_t batch) {
  const double act_bytes = static_cast<double>(batch) *
                           static_cast<double>(model.hidden) * 2.0 /*fp16*/ *
                           6.0 /*norm in+out, rope, quant, residual*/;
  const double t_mem = act_bytes / hw.mem_bw_bytes;
  const double t_launch = 4.0 * hw.kernel_launch_seconds / 4.0;  // fused ops
  return t_mem + t_launch;
}

}  // namespace

ServingEngine::ServingEngine(simgpu::HardwareSpec hw, SystemPreset preset,
                             LlmConfig model, EngineOptions options)
    : hw_(std::move(hw)),
      preset_(std::move(preset)),
      model_(std::move(model)),
      options_(options),
      kernel_(simgpu::KernelConfig::For(preset_.kernel)) {}

double ServingEngine::OthersPerLayer(std::size_t batch) const {
  return BaseOthersPerLayer(hw_, model_, batch) * preset_.other_overhead;
}

LayerBreakdown ServingEngine::DecodeLayerBreakdown(std::size_t batch,
                                                   std::size_t kv_len) const {
  LayerBreakdown out;
  out.gemm = simgpu::SimulateGemmSequence(hw_, kernel_,
                                          model_.LayerGemms(batch));
  AttentionCostConfig attn;
  attn.kv_bits = preset_.kv_bits;
  attn.efficiency = preset_.attention_efficiency;
  attn.fp8_math = preset_.fp8_attention;
  out.attention =
      DecodeAttentionSeconds(hw_, model_, attn, batch, kv_len) /
      static_cast<double>(model_.num_layers);
  out.others = OthersPerLayer(batch);
  return out;
}

double ServingEngine::DecodeStepSeconds(std::size_t batch,
                                        std::size_t kv_len) const {
  const bool cacheable = batch <= kMemoMax && kv_len <= kMemoMax;
  if (cacheable) {
    const auto it = decode_step_cache_.find(MemoKey(batch, kv_len));
    if (it != decode_step_cache_.end()) return it->second;
  }
  const LayerBreakdown layer = DecodeLayerBreakdown(batch, kv_len);
  // The LM head GEMM runs once per step (not per layer).
  simgpu::GemmCall lm_head{
      GemmShape{batch, static_cast<std::size_t>(model_.vocab),
                static_cast<std::size_t>(model_.hidden)},
      1};
  const double t_lm =
      simgpu::SimulateGemmSequence(hw_, kernel_, {lm_head});
  const double seconds = layer.total() * model_.num_layers + t_lm;
  if (cacheable) decode_step_cache_.emplace(MemoKey(batch, kv_len), seconds);
  return seconds;
}

double ServingEngine::PrefillSeconds(std::size_t batch,
                                     std::size_t input_len) const {
  AttentionCostConfig attn;
  attn.kv_bits = preset_.kv_bits;
  attn.efficiency = preset_.attention_efficiency;
  attn.fp8_math = preset_.fp8_attention;

  const std::size_t chunk = options_.prefill_chunk_tokens;
  if (chunk == 0 || input_len <= chunk) {
    const std::size_t tokens = batch * input_len;
    const double gemm =
        simgpu::SimulateGemmSequence(hw_, kernel_, model_.LayerGemms(tokens)) *
        model_.num_layers;
    const double attention =
        PrefillAttentionSeconds(hw_, model_, attn, batch, input_len);
    const double others =
        OthersPerLayer(tokens) * static_cast<double>(model_.num_layers);
    return gemm + attention + others;
  }

  // Chunked prefill: GEMM work is unchanged in total, but each chunk's
  // attention must also read the KV of all earlier chunks (cross-chunk
  // decode-style pass) on top of its own causal attention.
  double total = 0.0;
  std::size_t done = 0;
  while (done < input_len) {
    const std::size_t this_chunk = std::min(chunk, input_len - done);
    total += ChunkCost(batch, this_chunk, done);
    done += this_chunk;
  }
  return total;
}

double ServingEngine::ChunkCost(std::size_t batch, std::size_t chunk_tokens,
                                std::size_t prior_tokens) const {
  AttentionCostConfig attn;
  attn.kv_bits = preset_.kv_bits;
  attn.efficiency = preset_.attention_efficiency;
  attn.fp8_math = preset_.fp8_attention;
  const std::size_t tokens = batch * chunk_tokens;
  double total = simgpu::SimulateGemmSequence(hw_, kernel_,
                                              model_.LayerGemms(tokens)) *
                 model_.num_layers;
  total += PrefillAttentionSeconds(hw_, model_, attn, batch, chunk_tokens);
  if (prior_tokens > 0) {
    // The chunk's tokens attend to all previously cached tokens: a
    // compute-bound rectangle pass with a KV re-read bandwidth floor.
    total += CrossAttentionSeconds(hw_, model_, attn, batch, chunk_tokens,
                                   prior_tokens);
  }
  total += OthersPerLayer(tokens) * static_cast<double>(model_.num_layers);
  return total;
}

double ServingEngine::PrefillChunkSeconds(std::size_t chunk_tokens,
                                          std::size_t prior_tokens) const {
  const bool cacheable = chunk_tokens <= kMemoMax && prior_tokens <= kMemoMax;
  if (cacheable) {
    const auto it =
        prefill_chunk_cache_.find(MemoKey(chunk_tokens, prior_tokens));
    if (it != prefill_chunk_cache_.end()) return it->second;
  }
  const double seconds = ChunkCost(1, chunk_tokens, prior_tokens);
  if (cacheable) {
    prefill_chunk_cache_.emplace(MemoKey(chunk_tokens, prior_tokens), seconds);
  }
  return seconds;
}

double ServingEngine::WeightMemoryBytes() const {
  const double gemm_bits = preset_.WeightBits() + preset_.QuantParamBits();
  return model_.TotalGemmWeights() * gemm_bits / 8.0 +
         model_.EmbeddingWeights() * 2.0;  // FP16 embeddings + LM head
}

double ServingEngine::MemoryBytes(const ServingWorkload& workload) const {
  const std::size_t tokens_per_seq = workload.input_len + workload.output_len;
  // Size the paged pool with a real allocation: blocks for every sequence at
  // full length (the Table 1 setting pre-allocates for the fixed lengths).
  const std::size_t blocks_per_seq =
      (tokens_per_seq + options_.kv_block_tokens - 1) /
      options_.kv_block_tokens;
  const double kv_bytes = static_cast<double>(blocks_per_seq) *
                          static_cast<double>(workload.batch) *
                          static_cast<double>(options_.kv_block_tokens) *
                          model_.KvBytesPerToken(preset_.kv_bits);
  const double act_workspace = static_cast<double>(workload.batch) *
                               std::max(workload.input_len, std::size_t{1}) *
                               static_cast<double>(model_.hidden) * 2.0 * 4.0;
  return WeightMemoryBytes() + kv_bytes + act_workspace +
         preset_.base_memory_bytes;
}

ServingResult ServingEngine::Run(const ServingWorkload& workload) const {
  ServingResult out;
  if (!preset_.Supports(model_)) {
    out.supported = false;
    return out;
  }
  out.memory_bytes = MemoryBytes(workload);
  if (out.memory_bytes > options_.memory_budget_bytes) {
    out.oom = true;
    return out;
  }

  // Verify the KV pool really accommodates the batch with a paged allocation.
  const double kv_pool_bytes = options_.memory_budget_bytes -
                               WeightMemoryBytes() -
                               preset_.base_memory_bytes;
  const double block_bytes =
      static_cast<double>(options_.kv_block_tokens) *
      model_.KvBytesPerToken(preset_.kv_bits);
  KvBlockManager pool(
      static_cast<std::size_t>(std::max(0.0, kv_pool_bytes / block_bytes)),
      options_.kv_block_tokens);
  for (std::size_t s = 0; s < workload.batch; ++s) {
    if (!pool.AddSequence(s, workload.input_len + workload.output_len)) {
      out.oom = true;
      return out;
    }
  }

  out.prefill_seconds = PrefillSeconds(workload.batch, workload.input_len);
  // Decode cost grows linearly in KV length; evaluating at the midpoint
  // length integrates the ramp exactly for a linear model.
  const std::size_t mid_kv = workload.input_len + workload.output_len / 2;
  out.decode_step_seconds = DecodeStepSeconds(workload.batch, mid_kv);
  out.decode_layer = DecodeLayerBreakdown(workload.batch, mid_kv);
  out.total_seconds =
      out.prefill_seconds +
      out.decode_step_seconds * static_cast<double>(workload.output_len);
  const double generated =
      static_cast<double>(workload.batch) *
      static_cast<double>(workload.output_len);
  out.tokens_per_second = generated / out.total_seconds;
  return out;
}

std::size_t ServingEngine::MaxBatch(std::size_t input_len,
                                    std::size_t output_len,
                                    std::size_t cap) const {
  std::size_t best = 0;
  std::size_t lo = 1;
  std::size_t hi = cap;
  while (lo <= hi) {
    const std::size_t mid = (lo + hi) / 2;
    ServingWorkload w{input_len, output_len, mid};
    if (MemoryBytes(w) <= options_.memory_budget_bytes) {
      best = mid;
      lo = mid + 1;
    } else {
      if (mid == 0) break;
      hi = mid - 1;
    }
  }
  return best;
}

ServingEngine::PeakResult ServingEngine::PeakThroughput(
    std::size_t input_len, std::size_t output_len, std::size_t cap) const {
  PeakResult peak;
  if (!preset_.Supports(model_)) {
    peak.supported = false;
    return peak;
  }
  const std::size_t max_batch = MaxBatch(input_len, output_len, cap);
  if (max_batch == 0) {
    peak.oom = true;
    return peak;
  }
  for (std::size_t b = 1; b <= max_batch; ++b) {
    ServingWorkload w{input_len, output_len, b};
    const ServingResult r = Run(w);
    if (r.oom) break;
    if (r.tokens_per_second > peak.tokens_per_second) {
      peak.tokens_per_second = r.tokens_per_second;
      peak.batch = b;
    }
  }
  return peak;
}

}  // namespace liquid::serving
