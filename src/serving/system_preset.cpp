#include "serving/system_preset.hpp"

namespace liquid::serving {

double SystemPreset::WeightBits() const {
  using simgpu::KernelKind;
  switch (kernel) {
    case KernelKind::kTrtFp16: return 16;
    case KernelKind::kTrtW8A8:
    case KernelKind::kTrtFp8: return 8;
    default: return 4;  // all W4 variants
  }
}

double SystemPreset::QuantParamBits() const {
  using simgpu::KernelKind;
  switch (kernel) {
    case KernelKind::kTrtFp16: return 0;
    case KernelKind::kTrtW8A8:
    case KernelKind::kTrtFp8:
      return 32.0 / 4096;  // per-channel scales only
    case KernelKind::kTrtW4A16:
      return 32.0 / 128;  // fp16 scale + zero per group of 128
    case KernelKind::kQServeW4A8:
      return 16.0 / 128 + 32.0 / 4096;  // s,z per group of 128 + channel scale
    default:
      return 16.0 / 64 + 32.0 / 4096;  // LQQ: s,a per group of 64
  }
}

SystemPreset SystemPreset::TrtFp16() {
  SystemPreset p;
  p.name = "TRT-FP16";
  p.kernel = simgpu::KernelKind::kTrtFp16;
  p.kv_bits = 8;  // FP8 KV cache (Section 7.1)
  p.attention_efficiency = 0.80;
  return p;
}

SystemPreset SystemPreset::TrtW4A16() {
  SystemPreset p;
  p.name = "TRT-W4A16";
  p.kernel = simgpu::KernelKind::kTrtW4A16;
  p.kv_bits = 8;  // FP8 KV
  p.attention_efficiency = 0.80;
  return p;
}

SystemPreset SystemPreset::TrtW8A8() {
  SystemPreset p;
  p.name = "TRT-W8A8";
  p.kernel = simgpu::KernelKind::kTrtW8A8;
  p.kv_bits = 8;  // INT8 KV
  p.attention_efficiency = 0.80;
  p.other_overhead = 1.05;  // activation quantization on the fly
  p.supports_moe = false;   // no Mixtral support (Section 3.1 / Table 1 "NA")
  return p;
}

SystemPreset SystemPreset::TrtFp8() {
  SystemPreset p;
  p.name = "TRT-FP8";
  p.kernel = simgpu::KernelKind::kTrtFp8;
  p.kv_bits = 8;  // FP8 KV
  // Hopper-native FP8 attention kernels (the paper credits TRT-FP8's wins on
  // LLaMA3-8B / Mistral-7B to these): FP8 math doubles the prefill-attention
  // rate; decode attention stays bandwidth-bound like everyone else's.
  p.attention_efficiency = 0.85;
  p.fp8_attention = true;
  p.other_overhead = 0.95;
  return p;
}

SystemPreset SystemPreset::QServe() {
  SystemPreset p;
  p.name = "QServe";
  p.kernel = simgpu::KernelKind::kQServeW4A8;
  p.kv_bits = 4;  // W4A8KV4
  // QServe's own runtime: attention kernels and scheduler are markedly less
  // tuned for Hopper than TRT/our stack (Table 1: LiquidServe/wo with the
  // same GEMM kernel is ~2x faster end to end on GQA models).
  p.attention_efficiency = 0.40;
  p.other_overhead = 6.0;
  p.supports_moe = false;  // no Mixtral support (Table 1 "NA")
  return p;
}

SystemPreset SystemPreset::LiquidServe() {
  SystemPreset p;
  p.name = "LiquidServe";
  p.kernel = simgpu::KernelKind::kLiquidW4A8;
  p.kv_bits = 8;  // INT8 per-channel static KV quantization (Section 6)
  // FlashAttention-2 + PagedAttention; FP16 attention math (the paper
  // explicitly skips the FP8-tailored FlashAttention-3, Section 6).
  p.attention_efficiency = 0.85;
  return p;
}

SystemPreset SystemPreset::LiquidServeWo() {
  SystemPreset p = LiquidServe();
  p.name = "LiquidServe/wo";
  p.kernel = simgpu::KernelKind::kQServeW4A8;
  return p;
}

std::vector<SystemPreset> SystemPreset::PaperSystems() {
  return {TrtFp16(), TrtW4A16(),       TrtW8A8(),     TrtFp8(),
          QServe(),  LiquidServeWo(),  LiquidServe()};
}

}  // namespace liquid::serving
