#include "serving/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "obs/prof/wall_profiler.hpp"

namespace liquid::serving {

ContinuousBatchScheduler::ContinuousBatchScheduler(const ServingEngine& engine,
                                                   std::size_t kv_pool_blocks,
                                                   std::size_t block_tokens,
                                                   std::size_t max_batch)
    : engine_(engine), pool_(kv_pool_blocks, block_tokens),
      max_batch_(max_batch),
      chunk_(engine.options().prefill_chunk_tokens) {}

void ContinuousBatchScheduler::Submit(Request request) {
  if (trace_ != nullptr) {
    trace_->AsyncBegin(obs::TraceEventType::kStageQueued,
                       std::max(stats_.simulated_seconds,
                                request.EffectiveArrival()),
                       request.id, static_cast<double>(trace_pid_ - 1));
  }
  waiting_.push_back(request);
}

bool ContinuousBatchScheduler::AcceptMigrated(Request request,
                                              const KvExport& kv) {
  if (!pool_.Import(kv)) return false;
  request.kv_migrated = true;
  if (trace_ != nullptr) {
    trace_->AsyncBegin(obs::TraceEventType::kStageQueued,
                       std::max(stats_.simulated_seconds,
                                request.EffectiveArrival()),
                       request.id, static_cast<double>(trace_pid_ - 1));
  }
  waiting_.push_back(request);
  return true;
}

std::size_t ContinuousBatchScheduler::CachedPrefixTokens(
    const Request& request) const {
  if (request.prefix.empty() || request.prefix.block_tokens == 0) return 0;
  // The Submit credit is the placement layer's promise, computed at routing
  // time; residency can move BOTH ways before admission (a same-prefix
  // request queued ahead registers its blocks when its prefill runs — or
  // the holder retires and frees them).  The live index is ground truth:
  // the credit is only honored as far as the blocks are still resident, and
  // overlap that materialized after routing counts for free.
  const std::size_t blocks = std::min(
      pool_.prefix_index().SharedPrefixBlocks(request.prefix.hashes),
      request.prefix.hashes.size());
  if (blocks == 0) return 0;
  std::size_t cached =
      blocks * static_cast<std::size_t>(request.prefix.block_tokens);
  // The signature's final block can be partial; never credit tokens it does
  // not attest (a preempted retry's prompt grows past the signed prompt).
  if (request.prefix.covered_tokens > 0) {
    cached = std::min(cached, request.prefix.covered_tokens);
  }
  // A fully cached prompt still recomputes its last token for logits.
  return std::min(cached,
                  request.prompt_tokens > 0 ? request.prompt_tokens - 1 : 0);
}

double ContinuousBatchScheduler::PrefillCharge(const Request& request) const {
  const std::size_t cached = CachedPrefixTokens(request);
  // With a cached prefix, only the suffix is computed; its attention still
  // reads the cached tokens (same shape as a later chunk of a chunked
  // prefill, so it is priced the same way).
  const double t =
      cached > 0
          ? engine_.PrefillChunkSeconds(request.prompt_tokens - cached, cached)
          : engine_.PrefillSeconds(1, request.prompt_tokens);
  return t * slowdown_;
}

void ContinuousBatchScheduler::Admit() {
  while (!waiting_.empty() && running_.size() < max_batch_) {
    const Request& next = waiting_.front();
    if (next.EffectiveArrival() > stats_.simulated_seconds) break;
    if (next.kv_migrated && pool_.HasSequence(next.id)) {
      // The KV landed via AcceptMigrated: nothing to allocate, no prefill to
      // charge.  One free block of generation headroom keeps parity with the
      // conservative admission below.
      if (!pool_.CanAllocate(1)) break;
      if (trace_ != nullptr) {
        const double at = stats_.simulated_seconds;
        trace_->Instant(obs::TraceEventType::kAdmit, at, trace_pid_,
                        obs::kTidLifecycle, next.id);
        trace_->AsyncEnd(obs::TraceEventType::kStageQueued, at, next.id);
        trace_->AsyncBegin(obs::TraceEventType::kStageRun, at, next.id,
                           static_cast<double>(trace_pid_ - 1));
      }
      running_.push_back({next, 0, 0});
      waiting_.pop_front();
      continue;
    }
    // Conservative admission: require room for the prompt plus one block of
    // generation headroom so a fresh sequence cannot immediately preempt.
    const std::size_t need = pool_.BlocksNeeded(next.prompt_tokens) + 1;
    if (!pool_.CanAllocate(need)) break;
    const bool ok = pool_.AddSequence(next.id, next.prompt_tokens);
    assert(ok);
    (void)ok;
    const std::size_t cached = CachedPrefixTokens(next);
    if (cached > 0) {
      ++stats_.prefix_hits;
      stats_.prefill_tokens_saved += static_cast<double>(cached);
    }
    const double admitted_at = stats_.simulated_seconds;
    if (trace_ != nullptr) {
      trace_->Instant(obs::TraceEventType::kAdmit, admitted_at, trace_pid_,
                      obs::kTidLifecycle, next.id,
                      static_cast<double>(cached));
      if (cached > 0) {
        trace_->Instant(obs::TraceEventType::kPrefixHit, admitted_at,
                        trace_pid_, obs::kTidLifecycle, next.id,
                        static_cast<double>(cached));
      }
      trace_->AsyncEnd(obs::TraceEventType::kStageQueued, admitted_at,
                       next.id);
      trace_->AsyncBegin(obs::TraceEventType::kStageRun, admitted_at, next.id,
                         static_cast<double>(trace_pid_ - 1));
    }
    if (chunk_ > 0) {
      // Chunked prefill: the sequence enters the batch immediately and its
      // prefill advances one chunk per Step, interleaved with decode.  The
      // cached prefix never enters the chunk queue (prefill_remaining starts
      // at the uncached suffix, so `prior` accounting sees it as done).
      running_.push_back({next, 0, next.prompt_tokens - cached});
    } else {
      // Prefill for the admitted sequence happens in this iteration; charge
      // it (minus the cached-prefix discount).
      const double prefill = PrefillCharge(next);
      stats_.simulated_seconds += prefill;
      stats_.busy_seconds += prefill;
      if (trace_ != nullptr) {
        trace_->Span(obs::TraceEventType::kPrefill, admitted_at, prefill,
                     trace_pid_, obs::kTidEngine, next.id,
                     static_cast<double>(next.prompt_tokens),
                     static_cast<double>(cached));
      }
      if (!next.prefix.empty()) {
        pool_.RegisterPrefix(next.id, next.prefix.hashes);
      }
      running_.push_back({next, 0, 0});
    }
    waiting_.pop_front();
  }
  stats_.peak_running = std::max(stats_.peak_running, running_.size());
}

void ContinuousBatchScheduler::Preempt() {
  // Recompute-style preemption: evict the most recently admitted sequence
  // back to the waiting queue, releasing its blocks.
  assert(!running_.empty());
  Running victim = running_.back();
  running_.pop_back();
  pool_.Free(victim.request.id);
  if (trace_ != nullptr) {
    const double at = stats_.simulated_seconds;
    trace_->Instant(obs::TraceEventType::kPreempt, at, trace_pid_,
                    obs::kTidLifecycle, victim.request.id,
                    static_cast<double>(victim.generated));
    trace_->AsyncEnd(obs::TraceEventType::kStageRun, at, victim.request.id);
    trace_->AsyncBegin(obs::TraceEventType::kStageQueued, at,
                       victim.request.id,
                       static_cast<double>(trace_pid_ - 1));
  }
  // It restarts with its tokens-so-far as the new prompt; timing state
  // (first token, cumulative progress) carries over.  Migrated KV does not
  // survive eviction: the retry recomputes its prefill like any other.
  Request retry = victim.request;
  retry.prompt_tokens += victim.generated;
  retry.max_new_tokens -= victim.generated;
  retry.progress += victim.generated;
  retry.kv_migrated = false;
  // The credit's backing blocks may have left the pool by re-admission time;
  // the retry recomputes its full prefill (and re-registers its hashes then).
  retry.cached_prefix_blocks = 0;
  waiting_.push_front(retry);
  ++stats_.preemptions;
}

void ContinuousBatchScheduler::Retire(const Running& done) {
  pool_.Free(done.request.id);
  RequestTiming timing;
  timing.id = done.request.id;
  timing.arrival = done.request.arrival;
  timing.first_token = done.request.first_token_time >= 0
                           ? done.request.first_token_time
                           : stats_.simulated_seconds;
  timing.finish = stats_.simulated_seconds;
  timing.generated = done.request.progress + done.generated;
  if (trace_ != nullptr) {
    trace_->Instant(obs::TraceEventType::kComplete, timing.finish, trace_pid_,
                    obs::kTidLifecycle, timing.id,
                    static_cast<double>(timing.generated), timing.Ttft());
    trace_->AsyncEnd(obs::TraceEventType::kStageRun, timing.finish,
                     timing.id);
    if (done.request.kv_migrated) {
      // Close the KV-migration flow arrow at the migrated request's final
      // decode step on this (decode) replica.
      trace_->Flow(obs::TracePhase::kFlowEnd, timing.finish, trace_pid_,
                   obs::kTidEngine, timing.id);
    }
  }
  completions_.push_back(timing);
  ++stats_.completed;
}

void ContinuousBatchScheduler::Handoff(const Running& done) {
  PrefillHandoff h;
  h.kv = pool_.Export(done.request.id);
  Request cont = done.request;
  cont.prompt_tokens += done.generated;
  cont.max_new_tokens -= done.generated;
  cont.progress += done.generated;
  cont.prefill_only = false;
  cont.kv_migrated = true;
  h.request = cont;
  h.ready = stats_.simulated_seconds;
  if (trace_ != nullptr) {
    trace_->Instant(obs::TraceEventType::kHandoffExport, h.ready, trace_pid_,
                    obs::kTidLifecycle, cont.id,
                    static_cast<double>(h.kv.tokens));
    trace_->AsyncEnd(obs::TraceEventType::kStageRun, h.ready, cont.id);
    // Open the KV-migration flow arrow at the prefill replica's engine lane.
    trace_->Flow(obs::TracePhase::kFlowStart, h.ready, trace_pid_,
                 obs::kTidEngine, cont.id);
  }
  handoffs_.push_back(h);
  ++stats_.prefill_handoffs;
}

bool ContinuousBatchScheduler::Step() {
  LIQUID_PROF_SCOPE("engine/step");
  // If idle and the head request is in the future, fast-forward the clock.
  if (running_.empty() && !waiting_.empty() &&
      waiting_.front().EffectiveArrival() > stats_.simulated_seconds) {
    stats_.simulated_seconds = waiting_.front().EffectiveArrival();
  }
  {
    LIQUID_PROF_SCOPE("engine/step/admit");
    Admit();
  }
  if (running_.empty()) {
    if (waiting_.empty()) return false;
    // Nothing is running, so no blocks will ever be freed: the head request
    // cannot fit even a drained pool.  Drop it rather than livelock.
    if (trace_ != nullptr) {
      trace_->Instant(obs::TraceEventType::kPoolDrop, stats_.simulated_seconds,
                      trace_pid_, obs::kTidLifecycle, waiting_.front().id);
      trace_->AsyncEnd(obs::TraceEventType::kStageQueued,
                       stats_.simulated_seconds, waiting_.front().id);
    }
    dropped_ids_.push_back(waiting_.front().id);
    waiting_.pop_front();
    ++stats_.dropped;
    return true;
  }

  // Chunked prefill: advance the oldest in-progress prefill by one chunk.
  // "Oldest" is by (arrival, id), not batch slot — retirements swap slots
  // around, and letting the chunk rotate among prefills makes concurrent
  // prompts all finish in a cluster (a burst of simultaneous handoffs the
  // decode pool pays for in its TPOT tail).  True FIFO keeps completions
  // serialized, like unchunked admission, while still bounding how long any
  // one prompt monopolizes an iteration.
  if (chunk_ > 0) {
    LIQUID_PROF_SCOPE("engine/step/prefill_chunk");
    Running* oldest = nullptr;
    for (Running& r : running_) {
      if (r.prefill_remaining == 0) continue;
      if (oldest == nullptr || r.request.arrival < oldest->request.arrival ||
          (r.request.arrival == oldest->request.arrival &&
           r.request.id < oldest->request.id)) {
        oldest = &r;
      }
    }
    if (oldest != nullptr) {
      Running& r = *oldest;
      const std::size_t prior = r.request.prompt_tokens - r.prefill_remaining;
      const std::size_t len = std::min(chunk_, r.prefill_remaining);
      const double t = engine_.PrefillChunkSeconds(len, prior) * slowdown_;
      if (trace_ != nullptr) {
        trace_->Span(obs::TraceEventType::kPrefillChunk,
                     stats_.simulated_seconds, t, trace_pid_, obs::kTidEngine,
                     r.request.id, static_cast<double>(len),
                     static_cast<double>(prior));
      }
      stats_.simulated_seconds += t;
      stats_.busy_seconds += t;
      r.prefill_remaining -= len;
      if (r.prefill_remaining == 0 && !r.request.prefix.empty()) {
        // The whole prompt is now resident: publish its blocks.
        pool_.RegisterPrefix(r.request.id, r.request.prefix.hashes);
      }
    }
  }

  // KV length for costing: mean sequence length across the decode-ready
  // batch (sequences still prefilling sit out the decode step).
  LIQUID_PROF_SCOPE("engine/step/decode");
  double mean_len = 0;
  std::size_t ready = 0;
  for (const Running& r : running_) {
    if (r.prefill_remaining > 0) continue;
    mean_len += static_cast<double>(r.request.prompt_tokens + r.generated);
    ++ready;
  }
  if (ready == 0) {
    // Chunk-only iteration: the clock advanced, nothing decodes yet.
    ++stats_.iterations;
    return true;
  }
  mean_len /= static_cast<double>(ready);

  // Append one token to every decode-ready sequence, preempting on OOM.
  for (std::size_t i = 0; i < running_.size();) {
    if (running_[i].prefill_remaining > 0) {
      ++i;
      continue;
    }
    if (pool_.AppendToken(running_[i].request.id)) {
      ++running_[i].generated;
      ++i;
    } else {
      Preempt();
      if (running_.empty()) break;
      i = std::min(i, running_.size());
    }
  }
  if (running_.empty()) return !waiting_.empty();

  std::size_t batch = 0;
  for (const Running& r : running_) batch += r.prefill_remaining == 0 ? 1 : 0;
  if (batch == 0) {
    ++stats_.iterations;
    return true;
  }
  const double decode =
      engine_.DecodeStepSeconds(batch, static_cast<std::size_t>(mean_len)) *
      slowdown_;
  if (trace_ != nullptr) {
    trace_->Span(obs::TraceEventType::kDecodeStep, stats_.simulated_seconds,
                 decode, trace_pid_, obs::kTidEngine, /*id=*/0,
                 static_cast<double>(batch), mean_len);
  }
  stats_.simulated_seconds += decode;
  stats_.busy_seconds += decode;
  stats_.generated_tokens += static_cast<double>(batch);
  ++stats_.iterations;

  // Record first-token times and retire finished sequences.  A prefill-only
  // request leaves at its first token: its KV is exported for migration.
  LIQUID_PROF_SCOPE("engine/step/retire");
  for (std::size_t i = 0; i < running_.size();) {
    Running& r = running_[i];
    if (r.prefill_remaining > 0) {
      ++i;
      continue;
    }
    if (r.request.first_token_time < 0 && r.generated + r.request.progress > 0) {
      r.request.first_token_time = stats_.simulated_seconds;
    }
    if (r.generated >= r.request.max_new_tokens) {
      Retire(r);
      running_[i] = running_.back();
      running_.pop_back();
    } else if (r.request.prefill_only &&
               r.generated + r.request.progress > 0) {
      Handoff(r);
      running_[i] = running_.back();
      running_.pop_back();
    } else {
      ++i;
    }
  }
  return true;
}

void ContinuousBatchScheduler::StepUntil(double deadline) {
  while (stats_.simulated_seconds < deadline) {
    // Idle (or waiting only on arrivals past the deadline): snap the clock to
    // the deadline instead of fast-forwarding past it, so a request routed
    // here at `deadline` is admitted at its true arrival time.
    if (running_.empty() &&
        (waiting_.empty() ||
         waiting_.front().EffectiveArrival() > deadline)) {
      stats_.simulated_seconds = deadline;
      return;
    }
    if (!Step()) return;
  }
}

std::vector<Request> ContinuousBatchScheduler::Drain() {
  std::vector<Request> out;
  out.reserve(running_.size() + waiting_.size());
  if (trace_ != nullptr) {
    // Close every open journey-stage slice at the drain instant; the
    // re-submission elsewhere opens fresh ones.
    for (const Running& r : running_) {
      trace_->AsyncEnd(obs::TraceEventType::kStageRun,
                       stats_.simulated_seconds, r.request.id);
    }
    for (const Request& w : waiting_) {
      trace_->AsyncEnd(obs::TraceEventType::kStageQueued,
                       stats_.simulated_seconds, w.id);
    }
  }
  for (const Running& r : running_) {
    pool_.Free(r.request.id);
    Request req = r.request;
    req.prompt_tokens += r.generated;
    req.max_new_tokens -= r.generated;
    req.progress += r.generated;
    req.kv_migrated = false;  // the KV stays behind; the next host recomputes
    req.cached_prefix_blocks = 0;  // the credit was against THIS pool's index
    out.push_back(req);
  }
  running_.clear();
  for (const Request& w : waiting_) {
    pool_.Free(w.id);  // no-op unless KV was imported before admission
    Request req = w;
    req.kv_migrated = false;
    req.cached_prefix_blocks = 0;
    out.push_back(req);
  }
  waiting_.clear();
  return out;
}

ContinuousBatchScheduler::ForfeitedWork ContinuousBatchScheduler::Forfeit() {
  ForfeitedWork out;
  out.requests.reserve(running_.size() + waiting_.size());
  if (trace_ != nullptr) {
    for (const Running& r : running_) {
      trace_->AsyncEnd(obs::TraceEventType::kStageRun,
                       stats_.simulated_seconds, r.request.id);
    }
    for (const Request& w : waiting_) {
      trace_->AsyncEnd(obs::TraceEventType::kStageQueued,
                       stats_.simulated_seconds, w.id);
    }
  }
  // A request's original shape is recoverable from the preemption bookkeeping:
  // `progress` tokens were folded into prompt_tokens (and out of
  // max_new_tokens) at each preemption, and a running residency has
  // `generated` more tokens not yet folded.
  const auto reset = [&](const Request& req, std::size_t generated) {
    Request fresh;
    fresh.id = req.id;
    fresh.prompt_tokens = req.prompt_tokens - req.progress;
    fresh.max_new_tokens = req.max_new_tokens + req.progress;
    fresh.arrival = req.arrival;
    fresh.prefix = req.prefix;  // content identity survives the failure
    out.wasted_tokens += static_cast<double>(req.progress + generated);
    out.requests.push_back(fresh);
  };
  for (const Running& r : running_) {
    pool_.Free(r.request.id);
    reset(r.request, r.generated);
  }
  running_.clear();
  for (const Request& w : waiting_) {
    pool_.Free(w.id);  // no-op unless KV was imported before admission
    reset(w, 0);
  }
  waiting_.clear();
  return out;
}

double ContinuousBatchScheduler::RemainingPrefillSeconds(
    const Running& r) const {
  double eta = 0;
  std::size_t prior = r.request.prompt_tokens - r.prefill_remaining;
  std::size_t remaining = r.prefill_remaining;
  while (remaining > 0) {
    const std::size_t len = std::min(chunk_, remaining);
    eta += engine_.PrefillChunkSeconds(len, prior);
    prior += len;
    remaining -= len;
  }
  return eta * slowdown_;
}

double ContinuousBatchScheduler::PredictTtft(
    std::size_t prompt_tokens, std::size_t cached_prefix_tokens) const {
  if (pool_.BlocksNeeded(prompt_tokens) + 1 > pool_.total_blocks()) {
    return std::numeric_limits<double>::infinity();
  }
  // Own prefill — discounted by the resident cached prefix so placement and
  // admission control both price locality — plus the prefills queued ahead
  // of us (each admission charges its prefill on the shared clock, FIFO
  // order; a queued request's own live-index overlap shrinks its charge the
  // same way).  The discount arrives in TOKENS (the caller converts from
  // signature blocks with the signature's own block size, which need not
  // match this pool's).  Queued migrated-in continuations carry their KV —
  // nothing to prefill.
  const std::size_t cached_tokens =
      prompt_tokens > 0 ? std::min(cached_prefix_tokens, prompt_tokens - 1)
                        : 0;
  double eta =
      cached_tokens > 0
          ? engine_.PrefillChunkSeconds(prompt_tokens - cached_tokens,
                                        cached_tokens) *
                slowdown_
          : engine_.PrefillSeconds(1, prompt_tokens) * slowdown_;
  for (const Request& w : waiting_) {
    if (w.kv_migrated && pool_.HasSequence(w.id)) continue;
    const std::size_t w_cached = CachedPrefixTokens(w);
    eta += (w_cached > 0 ? engine_.PrefillChunkSeconds(
                               w.prompt_tokens - w_cached, w_cached)
                         : engine_.PrefillSeconds(1, w.prompt_tokens)) *
           slowdown_;
  }
  if (chunk_ > 0) {
    // Mid-flight chunked prefills: only their REMAINING chunks are ahead of
    // us.  Crediting the already-processed chunks keeps the estimate from
    // over-rejecting a request that arrives halfway through a long prefill.
    for (const Running& r : running_) {
      if (r.prefill_remaining > 0) eta += RemainingPrefillSeconds(r);
    }
  }
  if (running_.empty()) return eta;
  // Service-rate model for the admission wait: a saturated batch frees one
  // slot per retirement, and retirements happen every (remaining tokens /
  // batch) decode steps on average — so each FIFO position ahead of us costs
  // mean_remaining * step / batch seconds.  First token then lands one step
  // after admission (folded into the same term).
  const bool batch_full = running_.size() >= max_batch_;
  const bool kv_full =
      !pool_.CanAllocate(pool_.BlocksNeeded(prompt_tokens) + 1);
  if (batch_full || kv_full || !waiting_.empty()) {
    double mean_len = 0, mean_remaining = 0;
    for (const Running& r : running_) {
      mean_len += static_cast<double>(r.request.prompt_tokens + r.generated);
      mean_remaining +=
          static_cast<double>(r.request.max_new_tokens - r.generated);
    }
    mean_len /= static_cast<double>(running_.size());
    mean_remaining /= static_cast<double>(running_.size());
    const double step =
        engine_.DecodeStepSeconds(running_.size(),
                                  static_cast<std::size_t>(mean_len)) *
        slowdown_;
    const double per_slot =
        mean_remaining * step / static_cast<double>(running_.size());
    eta += per_slot * static_cast<double>(waiting_.size() + 1);
  }
  return eta;
}

SchedulerStats ContinuousBatchScheduler::RunToCompletion() {
  while (Step()) {
  }
  return stats_;
}

}  // namespace liquid::serving
