#include "serving/workload.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace liquid::serving {
namespace {

std::size_t LogUniform(Rng& rng, std::size_t lo, std::size_t hi) {
  if (lo >= hi) return lo;
  const double x = rng.Uniform(std::log(static_cast<double>(lo)),
                               std::log(static_cast<double>(hi)));
  return std::clamp(static_cast<std::size_t>(std::exp(x)), lo, hi);
}

/// SplitMix64 finalizer: the avalanche behind every signature hash.  Pure
/// function of its input — signature derivation must never touch the trace
/// RNG, or adding prefixes would perturb arrival times and lengths.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Simulated token at position `t` of a content stream keyed by `key`.
std::uint64_t ContentWord(std::uint64_t key, std::size_t t) {
  return Mix64(key ^ Mix64(static_cast<std::uint64_t>(t)));
}

/// Preamble content key for a trace request (tenant-scoped prefix group).
std::uint64_t SharedContentKey(std::uint32_t tenant, std::uint64_t group) {
  return Mix64(0x5eedf00dull ^ Mix64(tenant) ^ Mix64(group * 0x10001ull));
}

/// Fills in the request's signature from the trace's sharing knobs.
void AttachSignature(TimedRequest& r, const TraceConfig& config) {
  if (config.prefix_block_tokens == 0) return;
  const std::size_t groups = std::max<std::size_t>(1, config.prefix_groups);
  const double fraction =
      std::clamp(config.shared_prefix_fraction, 0.0, 1.0);
  const std::size_t shared = static_cast<std::size_t>(
      fraction * static_cast<double>(r.prompt_tokens));
  r.prefix = MakePrefixSignature(
      SharedContentKey(r.tenant, r.session % groups),
      Mix64(0x00b1a5ull ^ Mix64(r.id)), shared, r.prompt_tokens,
      config.prefix_block_tokens);
}

}  // namespace

PrefixSignature MakePrefixSignature(std::uint64_t content_key,
                                    std::uint64_t unique_key,
                                    std::size_t shared_tokens,
                                    std::size_t prompt_tokens,
                                    std::size_t block_tokens) {
  PrefixSignature sig;
  if (block_tokens == 0 || prompt_tokens == 0) return sig;
  sig.block_tokens = static_cast<std::uint32_t>(block_tokens);
  sig.covered_tokens = prompt_tokens;
  sig.hashes.reserve((prompt_tokens + block_tokens - 1) / block_tokens);
  shared_tokens = std::min(shared_tokens, prompt_tokens);
  // Rolling hash chained across blocks: h_i commits to tokens [0, end_i), so
  // two prompts agree on hash i iff they agree on every token through block
  // i — divergence anywhere poisons all later hashes, exactly the semantics
  // a contiguous-prefix cache needs.
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  for (std::size_t t = 0; t < prompt_tokens; ++t) {
    const std::uint64_t word = t < shared_tokens
                                   ? ContentWord(content_key, t)
                                   : ContentWord(unique_key, t);
    h = Mix64(h ^ word);
    if ((t + 1) % block_tokens == 0 || t + 1 == prompt_tokens) {
      sig.hashes.push_back(h);
    }
  }
  return sig;
}

std::vector<TimedRequest> GenerateTrace(const TraceConfig& config,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TimedRequest> trace;
  trace.reserve(config.count);
  double clock = 0;
  for (std::size_t i = 0; i < config.count; ++i) {
    // Exponential inter-arrival gap.
    double u = 0;
    while (u == 0) u = rng.NextDouble();
    clock += -std::log(u) / config.arrival_rate_per_s;
    TimedRequest r;
    r.id = i;
    r.arrival_seconds = clock;
    r.prompt_tokens = LogUniform(rng, config.prompt_min, config.prompt_max);
    r.max_new_tokens = LogUniform(rng, config.output_min, config.output_max);
    r.session = config.sessions > 0 ? i % config.sessions : i;
    AttachSignature(r, config);
    trace.push_back(r);
  }
  return trace;
}

std::vector<TimedRequest> GenerateMultiTenantTrace(
    const std::vector<TenantConfig>& tenants, std::uint64_t seed) {
  std::vector<TimedRequest> merged;
  std::uint64_t next_id = 0;
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const TenantConfig& tenant = tenants[t];
    std::vector<TimedRequest> trace =
        GenerateTrace(tenant.trace, seed + 0x9e3779b97f4a7c15ull * (t + 1));
    Rng session_rng(seed ^ (0xc2b2ae3d27d4eb4full * (t + 1)));
    const std::size_t sessions = std::max<std::size_t>(1, tenant.sessions);
    for (TimedRequest& r : trace) {
      r.id = next_id++;
      r.tenant = tenant.tenant;
      // Stable session key unique across tenants.
      r.session = (static_cast<std::uint64_t>(tenant.tenant) << 32) |
                  static_cast<std::uint64_t>(
                      session_rng.Int(0, static_cast<std::int64_t>(sessions) - 1));
      // Re-derive the signature: id/tenant/session changed, and preamble
      // sharing is tenant-scoped (one tenant's few-shot block never matches
      // another's).
      AttachSignature(r, tenant.trace);
      merged.push_back(r);
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const TimedRequest& a, const TimedRequest& b) {
              return a.arrival_seconds != b.arrival_seconds
                         ? a.arrival_seconds < b.arrival_seconds
                         : a.id < b.id;
            });
  return merged;
}

LatencySamples CollectLatencySamples(
    const std::vector<RequestTiming>& timings) {
  LatencySamples samples;
  samples.ttft.reserve(timings.size());
  samples.e2e.reserve(timings.size());
  for (const RequestTiming& t : timings) {
    samples.ttft.push_back(t.Ttft());
    if (t.generated > 1) samples.tpot.push_back(t.Tpot());
    samples.e2e.push_back(t.EndToEnd());
    samples.generated_tokens += static_cast<double>(t.generated);
  }
  return samples;
}

LatencyReport SummarizeTimings(const std::vector<RequestTiming>& timings,
                               double span_seconds) {
  LatencyReport report;
  report.count = timings.size();
  if (timings.empty()) return report;
  const LatencySamples samples = CollectLatencySamples(timings);
  report.ttft_p50 = Percentile(samples.ttft, 50);
  report.ttft_p99 = Percentile(samples.ttft, 99);
  report.tpot_p50 = Percentile(samples.tpot, 50);
  report.tpot_p99 = Percentile(samples.tpot, 99);
  report.e2e_p50 = Percentile(samples.e2e, 50);
  report.e2e_p99 = Percentile(samples.e2e, 99);
  report.throughput_tokens_per_s =
      span_seconds > 0 ? samples.generated_tokens / span_seconds : 0;
  return report;
}

}  // namespace liquid::serving
