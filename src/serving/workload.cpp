#include "serving/workload.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace liquid::serving {
namespace {

std::size_t LogUniform(Rng& rng, std::size_t lo, std::size_t hi) {
  if (lo >= hi) return lo;
  const double x = rng.Uniform(std::log(static_cast<double>(lo)),
                               std::log(static_cast<double>(hi)));
  return std::clamp(static_cast<std::size_t>(std::exp(x)), lo, hi);
}

}  // namespace

std::vector<TimedRequest> GenerateTrace(const TraceConfig& config,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TimedRequest> trace;
  trace.reserve(config.count);
  double clock = 0;
  for (std::size_t i = 0; i < config.count; ++i) {
    // Exponential inter-arrival gap.
    double u = 0;
    while (u == 0) u = rng.NextDouble();
    clock += -std::log(u) / config.arrival_rate_per_s;
    TimedRequest r;
    r.id = i;
    r.arrival_seconds = clock;
    r.prompt_tokens = LogUniform(rng, config.prompt_min, config.prompt_max);
    r.max_new_tokens = LogUniform(rng, config.output_min, config.output_max);
    r.session = config.sessions > 0 ? i % config.sessions : i;
    trace.push_back(r);
  }
  return trace;
}

std::vector<TimedRequest> GenerateMultiTenantTrace(
    const std::vector<TenantConfig>& tenants, std::uint64_t seed) {
  std::vector<TimedRequest> merged;
  std::uint64_t next_id = 0;
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const TenantConfig& tenant = tenants[t];
    std::vector<TimedRequest> trace =
        GenerateTrace(tenant.trace, seed + 0x9e3779b97f4a7c15ull * (t + 1));
    Rng session_rng(seed ^ (0xc2b2ae3d27d4eb4full * (t + 1)));
    const std::size_t sessions = std::max<std::size_t>(1, tenant.sessions);
    for (TimedRequest& r : trace) {
      r.id = next_id++;
      r.tenant = tenant.tenant;
      // Stable session key unique across tenants.
      r.session = (static_cast<std::uint64_t>(tenant.tenant) << 32) |
                  static_cast<std::uint64_t>(
                      session_rng.Int(0, static_cast<std::int64_t>(sessions) - 1));
      merged.push_back(r);
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const TimedRequest& a, const TimedRequest& b) {
              return a.arrival_seconds != b.arrival_seconds
                         ? a.arrival_seconds < b.arrival_seconds
                         : a.id < b.id;
            });
  return merged;
}

LatencySamples CollectLatencySamples(
    const std::vector<RequestTiming>& timings) {
  LatencySamples samples;
  samples.ttft.reserve(timings.size());
  samples.e2e.reserve(timings.size());
  for (const RequestTiming& t : timings) {
    samples.ttft.push_back(t.Ttft());
    if (t.generated > 1) samples.tpot.push_back(t.Tpot());
    samples.e2e.push_back(t.EndToEnd());
    samples.generated_tokens += static_cast<double>(t.generated);
  }
  return samples;
}

LatencyReport SummarizeTimings(const std::vector<RequestTiming>& timings,
                               double span_seconds) {
  LatencyReport report;
  report.count = timings.size();
  if (timings.empty()) return report;
  const LatencySamples samples = CollectLatencySamples(timings);
  report.ttft_p50 = Percentile(samples.ttft, 50);
  report.ttft_p99 = Percentile(samples.ttft, 99);
  report.tpot_p50 = Percentile(samples.tpot, 50);
  report.tpot_p99 = Percentile(samples.tpot, 99);
  report.e2e_p50 = Percentile(samples.e2e, 50);
  report.e2e_p99 = Percentile(samples.e2e, 99);
  report.throughput_tokens_per_s =
      span_seconds > 0 ? samples.generated_tokens / span_seconds : 0;
  return report;
}

}  // namespace liquid::serving
