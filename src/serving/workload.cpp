#include "serving/workload.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace liquid::serving {
namespace {

std::size_t LogUniform(Rng& rng, std::size_t lo, std::size_t hi) {
  if (lo >= hi) return lo;
  const double x = rng.Uniform(std::log(static_cast<double>(lo)),
                               std::log(static_cast<double>(hi)));
  return std::clamp(static_cast<std::size_t>(std::exp(x)), lo, hi);
}

}  // namespace

std::vector<TimedRequest> GenerateTrace(const TraceConfig& config,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TimedRequest> trace;
  trace.reserve(config.count);
  double clock = 0;
  for (std::size_t i = 0; i < config.count; ++i) {
    // Exponential inter-arrival gap.
    double u = 0;
    while (u == 0) u = rng.NextDouble();
    clock += -std::log(u) / config.arrival_rate_per_s;
    TimedRequest r;
    r.id = i;
    r.arrival_seconds = clock;
    r.prompt_tokens = LogUniform(rng, config.prompt_min, config.prompt_max);
    r.max_new_tokens = LogUniform(rng, config.output_min, config.output_max);
    trace.push_back(r);
  }
  return trace;
}

LatencyReport SummarizeTimings(const std::vector<RequestTiming>& timings,
                               double span_seconds) {
  LatencyReport report;
  report.count = timings.size();
  if (timings.empty()) return report;
  std::vector<double> ttft, tpot, e2e;
  double tokens = 0;
  for (const RequestTiming& t : timings) {
    ttft.push_back(t.Ttft());
    if (t.generated > 1) tpot.push_back(t.Tpot());
    e2e.push_back(t.EndToEnd());
    tokens += static_cast<double>(t.generated);
  }
  report.ttft_p50 = Percentile(ttft, 50);
  report.ttft_p99 = Percentile(ttft, 99);
  report.tpot_p50 = Percentile(tpot, 50);
  report.tpot_p99 = Percentile(tpot, 99);
  report.e2e_p50 = Percentile(e2e, 50);
  report.e2e_p99 = Percentile(e2e, 99);
  report.throughput_tokens_per_s =
      span_seconds > 0 ? tokens / span_seconds : 0;
  return report;
}

}  // namespace liquid::serving
