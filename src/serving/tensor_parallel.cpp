#include "serving/tensor_parallel.hpp"

#include <algorithm>

namespace liquid::serving {

bool CanShard(const LlmConfig& model, int tp_degree) {
  if (tp_degree < 1) return false;
  // Column-parallel QKV needs heads % tp == 0; GQA replicates KV heads when
  // kv_heads < tp, which we do not model — require divisibility or
  // kv_heads >= tp.
  return model.heads % tp_degree == 0 &&
         (model.kv_heads % tp_degree == 0) &&
         model.ffn_intermediate % tp_degree == 0;
}

LlmConfig ShardModel(const LlmConfig& model, int tp_degree) {
  LlmConfig shard = model;
  shard.heads = model.heads / tp_degree;
  shard.kv_heads = std::max(1, model.kv_heads / tp_degree);
  shard.ffn_intermediate = model.ffn_intermediate / tp_degree;
  // hidden stays: row-parallel GEMMs keep the full K on each GPU but 1/tp of
  // the rows; our LlmConfig-based GEMM shapes capture that through the
  // reduced heads/ffn (QKV N and FFN N shrink by tp; O and down keep N but
  // their K shrinks — the total per-GPU weight count is exactly 1/tp).
  return shard;
}

TensorParallelEngine::TensorParallelEngine(simgpu::HardwareSpec hw,
                                           SystemPreset preset,
                                           LlmConfig model, int tp_degree,
                                           EngineOptions options)
    : hw_(std::move(hw)),
      preset_(std::move(preset)),
      full_model_(std::move(model)),
      shard_(ShardModel(full_model_, tp_degree)),
      tp_(tp_degree),
      options_(options),
      shard_engine_(hw_, preset_, shard_, options_) {}

double TensorParallelEngine::AllReduceSeconds(double bytes) const {
  if (tp_ <= 1) return 0.0;
  const double factor = 2.0 * (tp_ - 1) / tp_;
  // Ring all-reduce: each GPU sends/receives factor * bytes over its link,
  // plus a per-step latency floor.
  return factor * bytes / hw_.nvlink_bw_bytes + 8e-6;
}

TpResult TensorParallelEngine::Run(const ServingWorkload& workload) const {
  TpResult out;
  if (!CanShard(full_model_, tp_)) {
    out.feasible = false;
    return out;
  }
  const ServingResult shard_result = shard_engine_.Run(workload);
  if (shard_result.oom || !shard_result.supported) {
    out.feasible = false;
    out.memory_per_gpu = shard_result.memory_bytes;
    return out;
  }

  // Two all-reduces per layer per forward pass (after O and after down),
  // each over the activation tensor [batch x hidden] in FP16.
  const double act_bytes =
      static_cast<double>(workload.batch) * full_model_.hidden * 2.0;
  const double ar_decode = 2.0 * AllReduceSeconds(act_bytes);
  const double ar_prefill =
      2.0 * AllReduceSeconds(act_bytes * static_cast<double>(workload.input_len));

  const double decode_step =
      shard_result.decode_step_seconds +
      ar_decode * static_cast<double>(full_model_.num_layers);
  const double prefill =
      shard_result.prefill_seconds +
      ar_prefill * static_cast<double>(full_model_.num_layers);
  const double total =
      prefill + decode_step * static_cast<double>(workload.output_len);

  out.decode_step_seconds = decode_step;
  out.allreduce_seconds_per_layer = ar_decode;
  out.memory_per_gpu = shard_result.memory_bytes;
  out.tokens_per_second = static_cast<double>(workload.batch) *
                          static_cast<double>(workload.output_len) / total;

  // Scaling efficiency vs the single-GPU run of the full model (if it fits).
  const ServingEngine full_engine(hw_, preset_, full_model_, options_);
  const ServingResult single = full_engine.Run(workload);
  if (!single.oom && single.supported && tp_ > 1) {
    out.scaling_efficiency = out.tokens_per_second /
                             (single.tokens_per_second * tp_);
  }
  return out;
}

}  // namespace liquid::serving
