#pragma once
// Iteration-level (continuous) batching scheduler over the paged KV cache —
// the Orca/vLLM-style runtime loop the paper's serving system builds on.
//
// Requests arrive (optionally with timestamps) carrying a prompt length and
// a generation budget; each engine iteration admits arrived requests while
// KV blocks remain, runs one decode step for all running sequences (costed
// by the ServingEngine), retires finished sequences, and preempts
// (recompute-style) when an append OOMs.  Per-request timings (TTFT, TPOT,
// end-to-end) are recorded for the latency experiments.
//
// Two extensions serve the disaggregated prefill/decode cluster layer:
//
//  * Prefill-only completion: a request flagged `prefill_only` leaves the
//    scheduler as soon as its first token exists — its KV is exported from
//    the pool and parked in `handoffs()` for the cluster layer to migrate to
//    a decode replica.  A request flagged `kv_migrated` is the other end of
//    that journey: its KV is imported before admission (AcceptMigrated), so
//    admission skips the prefill charge entirely.
//
//  * Scheduler-level chunked prefill: when the engine runs with
//    prefill_chunk_tokens > 0, admission no longer charges the whole prompt
//    in one iteration.  The sequence is admitted instantly and its prefill
//    advances one chunk per Step interleaved with decode steps
//    (Sarathi-style), so a long prompt cannot stall the decode batch for its
//    whole prefill.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "obs/trace_recorder.hpp"
#include "serving/engine.hpp"
#include "serving/kv_cache.hpp"
#include "serving/workload.hpp"

namespace liquid::serving {

struct Request {
  SeqId id = 0;
  std::size_t prompt_tokens = 0;
  std::size_t max_new_tokens = 0;
  double arrival = 0;  ///< simulated arrival time (0 = already queued)

  // Internal bookkeeping carried across preemptions.
  double first_token_time = -1;
  std::size_t progress = 0;  ///< tokens generated in earlier residencies

  /// Earliest admit time, when later than `arrival` (a migrated continuation
  /// cannot start decoding before its KV transfer lands).  TTFT still
  /// charges from `arrival`.
  double ready = 0;
  /// Complete at the first token and export KV for migration (prefill pool).
  bool prefill_only = false;
  /// KV already imported into this scheduler's pool: admission skips both
  /// the allocation and the prefill charge (decode pool).
  bool kv_migrated = false;

  /// Block-hash signature of the prompt; published in the pool's
  /// PrefixIndex once the prefill (or import) makes the blocks resident.
  PrefixSignature prefix = {};
  /// Prefix-cache credit from the placement layer: at routing time, this
  /// many leading signature blocks were resident on this replica.  The
  /// credit is a PROMISE, not a charge ticket — admission re-validates
  /// against the live index and skips prefill compute only for blocks still
  /// resident then (overlap that materialized after routing counts too).
  /// The blocks are still allocated — the discount is compute, not memory —
  /// and a full-prompt hit still recomputes the last token for logits.
  std::size_t cached_prefix_blocks = 0;

  [[nodiscard]] double EffectiveArrival() const {
    return ready > arrival ? ready : arrival;
  }
};

/// What a prefill-only request leaves behind: the continuation (prompt
/// folded forward, first-token timing carried) plus its exported KV.  The
/// cluster layer turns this into a migration to a decode replica.
struct PrefillHandoff {
  Request request;
  KvExport kv;
  double ready = 0;  ///< scheduler clock when the prefill (+1 token) finished
};

struct SchedulerStats {
  std::size_t iterations = 0;
  std::size_t completed = 0;
  std::size_t preemptions = 0;
  std::size_t dropped = 0;  ///< requests that can never fit the KV pool
  std::size_t prefill_handoffs = 0;  ///< prefill-only requests handed off
  std::size_t prefix_hits = 0;  ///< admissions with a cached-prefix credit
  double prefill_tokens_saved = 0;  ///< prompt tokens whose prefill was skipped
  double simulated_seconds = 0;
  double busy_seconds = 0;  ///< clock time spent in prefill/decode compute
  double generated_tokens = 0;
  std::size_t peak_running = 0;
  [[nodiscard]] double TokensPerSecond() const {
    return simulated_seconds > 0 ? generated_tokens / simulated_seconds : 0;
  }
};

class ContinuousBatchScheduler {
 public:
  ContinuousBatchScheduler(const ServingEngine& engine,
                           std::size_t kv_pool_blocks,
                           std::size_t block_tokens,
                           std::size_t max_batch = 256);

  void Submit(Request request);
  void SubmitTimed(const TimedRequest& request) {
    Request r;
    r.id = request.id;
    r.prompt_tokens = request.prompt_tokens;
    r.max_new_tokens = request.max_new_tokens;
    r.arrival = request.arrival_seconds;
    r.prefix = request.prefix;
    Submit(r);
  }

  /// Lands a migrated-in continuation: imports its KV into this pool and
  /// queues the request with the import already paid for.  Returns false
  /// (importing nothing) when the pool cannot hold the KV — the caller must
  /// fall back to recomputing the prefill from scratch.
  bool AcceptMigrated(Request request, const KvExport& kv);

  /// Runs until every submitted request completes; returns aggregate stats.
  SchedulerStats RunToCompletion();

  /// Executes a single engine iteration (admission + one decode step).
  /// Returns false when there is no work left.
  bool Step();

  /// Advances the replica until its simulated clock reaches `deadline` or it
  /// runs out of work; an idle replica's clock is snapped to `deadline` so a
  /// fleet of replicas stays on a shared simulated clock.  A single iteration
  /// may overshoot the deadline (discrete-event semantics).
  void StepUntil(double deadline);

  /// Extracts every unfinished request (running first, preserving carried
  /// timing state, then waiting) and frees their KV blocks.  Used by the
  /// cluster layer to re-route work off a replica being scaled down.
  std::vector<Request> Drain();

  /// What an abrupt replica kill leaves behind: every unfinished request,
  /// reset to its ORIGINAL form (unlike Drain, no timing or generation state
  /// survives — the tokens already generated are wasted work, tallied in
  /// `wasted_tokens`).  Original arrival times are kept so a retry's TTFT
  /// charges the failed attempt.
  struct ForfeitedWork {
    std::vector<Request> requests;
    double wasted_tokens = 0;  ///< tokens generated then lost with the replica
  };

  /// Aborts all in-flight work (kill semantics) and frees the KV pool.
  ForfeitedWork Forfeit();

  /// TTFT estimate for a request of `prompt_tokens` arriving now: its own
  /// prefill, the prefills queued ahead of it, the REMAINING chunks of any
  /// prefill currently in progress (already-processed chunks are credited,
  /// so mid-prefill admission predictions do not over-reject), and — when
  /// the batch or pool is saturated — a service-rate admission wait (one
  /// slot frees every mean-remaining-tokens / batch decode steps, so each
  /// FIFO position ahead costs that much).  Infinity when the prompt can
  /// never fit the pool.  The admission-control signal behind SloConfig.
  /// `cached_prefix_tokens` prices the prefix-cache discount (the request's
  /// own prefill shrinks to the uncached suffix), so admission control and
  /// TTFT-scoring placement both see locality; it is in TOKENS because the
  /// signature's block size need not match this pool's.
  [[nodiscard]] double PredictTtft(
      std::size_t prompt_tokens, std::size_t cached_prefix_tokens = 0) const;

  /// Partial degradation (chaos): every subsequent compute charge — prefill,
  /// chunk, decode — runs `factor`× slower (clamped to >= 1).  Unlike a
  /// kill, nothing is lost; the replica just stops pulling its weight, and
  /// PredictTtft quotes the degraded speed so admission control sees it.
  void SetSlowdown(double factor) {
    slowdown_ = factor < 1.0 ? 1.0 : factor;
  }
  [[nodiscard]] double slowdown() const { return slowdown_; }

  /// Attaches lifecycle tracing (cluster telemetry).  `replica` is this
  /// scheduler's fleet id — events land in that replica's Perfetto lane.
  /// The recorder must outlive the scheduler; nullptr detaches.  Every hook
  /// is a single null-check branch when detached.
  void SetTrace(obs::TraceRecorder* trace, std::size_t replica) {
    trace_ = trace;
    trace_pid_ = obs::ReplicaPid(replica);
  }

  [[nodiscard]] const SchedulerStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<RequestTiming>& completions() const {
    return completions_;
  }
  /// Prefill-only requests that finished their prefill here, with exported
  /// KV, in handoff order.  The cluster layer harvests these with a cursor
  /// (like completions) and schedules the migrations.
  [[nodiscard]] const std::vector<PrefillHandoff>& handoffs() const {
    return handoffs_;
  }
  /// Ids of requests dropped because they can never fit the KV pool, in drop
  /// order (the cluster layer uses this to retire in-flight bookkeeping).
  [[nodiscard]] const std::vector<SeqId>& dropped_ids() const {
    return dropped_ids_;
  }
  [[nodiscard]] std::size_t running() const { return running_.size(); }
  [[nodiscard]] std::size_t waiting() const { return waiting_.size(); }
  /// Queue depth the router balances on: everything admitted or queued.
  [[nodiscard]] std::size_t outstanding() const {
    return running_.size() + waiting_.size();
  }
  [[nodiscard]] bool HasWork() const {
    return !running_.empty() || !waiting_.empty();
  }
  [[nodiscard]] double Now() const { return stats_.simulated_seconds; }
  /// Read-only view of the paged-KV pool (free/used block introspection).
  [[nodiscard]] const KvBlockManager& pool() const { return pool_; }

 private:
  struct Running {
    Request request;
    std::size_t generated = 0;
    /// Prompt tokens still to prefill (scheduler-level chunked prefill).
    /// Zero once the sequence is decode-ready; always zero when the engine
    /// runs unchunked (the whole prefill is charged at admission).
    std::size_t prefill_remaining = 0;
  };

  void Admit();
  void Preempt();
  void Retire(const Running& done);
  void Handoff(const Running& done);
  /// Cost of the chunks still ahead of a mid-prefill sequence.
  [[nodiscard]] double RemainingPrefillSeconds(const Running& r) const;
  /// Prompt tokens the request's prefill can skip: the better of the Submit
  /// credit and the live index overlap at admission time (capped so a full
  /// hit still recomputes the last token for logits).
  [[nodiscard]] std::size_t CachedPrefixTokens(const Request& request) const;
  /// Prefill charge for a request, honoring its cached-prefix credit.
  [[nodiscard]] double PrefillCharge(const Request& request) const;

  const ServingEngine& engine_;
  KvBlockManager pool_;
  std::size_t max_batch_;
  std::size_t chunk_;  ///< engine prefill_chunk_tokens (0 = unchunked)
  double slowdown_ = 1.0;  ///< degradation factor on every compute charge
  obs::TraceRecorder* trace_ = nullptr;  ///< null = tracing disabled
  std::int32_t trace_pid_ = 0;  ///< this replica's trace process lane
  std::deque<Request> waiting_;
  std::vector<Running> running_;
  SchedulerStats stats_;
  std::vector<RequestTiming> completions_;
  std::vector<PrefillHandoff> handoffs_;
  std::vector<SeqId> dropped_ids_;
};

}  // namespace liquid::serving
