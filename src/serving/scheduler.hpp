#pragma once
// Iteration-level (continuous) batching scheduler over the paged KV cache —
// the Orca/vLLM-style runtime loop the paper's serving system builds on.
//
// Requests arrive (optionally with timestamps) carrying a prompt length and
// a generation budget; each engine iteration admits arrived requests while
// KV blocks remain, runs one decode step for all running sequences (costed
// by the ServingEngine), retires finished sequences, and preempts
// (recompute-style) when an append OOMs.  Per-request timings (TTFT, TPOT,
// end-to-end) are recorded for the latency experiments.

#include <cstddef>
#include <deque>
#include <vector>

#include "serving/engine.hpp"
#include "serving/kv_cache.hpp"
#include "serving/workload.hpp"

namespace liquid::serving {

struct Request {
  SeqId id = 0;
  std::size_t prompt_tokens = 0;
  std::size_t max_new_tokens = 0;
  double arrival = 0;  ///< simulated arrival time (0 = already queued)

  // Internal bookkeeping carried across preemptions.
  double first_token_time = -1;
  std::size_t progress = 0;  ///< tokens generated in earlier residencies
};

struct SchedulerStats {
  std::size_t iterations = 0;
  std::size_t completed = 0;
  std::size_t preemptions = 0;
  std::size_t dropped = 0;  ///< requests that can never fit the KV pool
  double simulated_seconds = 0;
  double busy_seconds = 0;  ///< clock time spent in prefill/decode compute
  double generated_tokens = 0;
  std::size_t peak_running = 0;
  [[nodiscard]] double TokensPerSecond() const {
    return simulated_seconds > 0 ? generated_tokens / simulated_seconds : 0;
  }
};

class ContinuousBatchScheduler {
 public:
  ContinuousBatchScheduler(const ServingEngine& engine,
                           std::size_t kv_pool_blocks,
                           std::size_t block_tokens,
                           std::size_t max_batch = 256);

  void Submit(Request request);
  void SubmitTimed(const TimedRequest& request) {
    Submit(Request{request.id, request.prompt_tokens, request.max_new_tokens,
                   request.arrival_seconds});
  }

  /// Runs until every submitted request completes; returns aggregate stats.
  SchedulerStats RunToCompletion();

  /// Executes a single engine iteration (admission + one decode step).
  /// Returns false when there is no work left.
  bool Step();

  /// Advances the replica until its simulated clock reaches `deadline` or it
  /// runs out of work; an idle replica's clock is snapped to `deadline` so a
  /// fleet of replicas stays on a shared simulated clock.  A single iteration
  /// may overshoot the deadline (discrete-event semantics).
  void StepUntil(double deadline);

  /// Extracts every unfinished request (running first, preserving carried
  /// timing state, then waiting) and frees their KV blocks.  Used by the
  /// cluster layer to re-route work off a replica being scaled down.
  std::vector<Request> Drain();

  /// What an abrupt replica kill leaves behind: every unfinished request,
  /// reset to its ORIGINAL form (unlike Drain, no timing or generation state
  /// survives — the tokens already generated are wasted work, tallied in
  /// `wasted_tokens`).  Original arrival times are kept so a retry's TTFT
  /// charges the failed attempt.
  struct ForfeitedWork {
    std::vector<Request> requests;
    double wasted_tokens = 0;  ///< tokens generated then lost with the replica
  };

  /// Aborts all in-flight work (kill semantics) and frees the KV pool.
  ForfeitedWork Forfeit();

  /// TTFT estimate for a request of `prompt_tokens` arriving now: its own
  /// prefill, the prefills queued ahead of it, and — when the batch or pool
  /// is saturated — a service-rate admission wait (one slot frees every
  /// mean-remaining-tokens / batch decode steps, so each FIFO position ahead
  /// costs that much).  Infinity when the prompt can never fit the pool.
  /// The admission-control signal behind SloConfig.
  [[nodiscard]] double PredictTtft(std::size_t prompt_tokens) const;

  [[nodiscard]] const SchedulerStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<RequestTiming>& completions() const {
    return completions_;
  }
  /// Ids of requests dropped because they can never fit the KV pool, in drop
  /// order (the cluster layer uses this to retire in-flight bookkeeping).
  [[nodiscard]] const std::vector<SeqId>& dropped_ids() const {
    return dropped_ids_;
  }
  [[nodiscard]] std::size_t running() const { return running_.size(); }
  [[nodiscard]] std::size_t waiting() const { return waiting_.size(); }
  /// Queue depth the router balances on: everything admitted or queued.
  [[nodiscard]] std::size_t outstanding() const {
    return running_.size() + waiting_.size();
  }
  [[nodiscard]] bool HasWork() const {
    return !running_.empty() || !waiting_.empty();
  }
  [[nodiscard]] double Now() const { return stats_.simulated_seconds; }
  /// Read-only view of the paged-KV pool (free/used block introspection).
  [[nodiscard]] const KvBlockManager& pool() const { return pool_; }

 private:
  struct Running {
    Request request;
    std::size_t generated = 0;
  };

  void Admit();
  void Preempt();
  void Retire(const Running& done);

  const ServingEngine& engine_;
  KvBlockManager pool_;
  std::size_t max_batch_;
  std::deque<Request> waiting_;
  std::vector<Running> running_;
  SchedulerStats stats_;
  std::vector<RequestTiming> completions_;
  std::vector<SeqId> dropped_ids_;
};

}  // namespace liquid::serving
