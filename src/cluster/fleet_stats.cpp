#include "cluster/fleet_stats.hpp"

#include <algorithm>

#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace liquid::cluster {
namespace {

PercentileTriple Triple(std::span<const double> values) {
  PercentileTriple t;
  t.p50 = Percentile(values, 50);
  t.p95 = Percentile(values, 95);
  t.p99 = Percentile(values, 99);
  return t;
}

}  // namespace

void FinalizeFleetStats(const std::vector<serving::RequestTiming>& timings,
                        FleetStats& stats) {
  double first_arrival = 0, last_finish = 0;
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const serving::RequestTiming& t = timings[i];
    first_arrival = i == 0 ? t.arrival : std::min(first_arrival, t.arrival);
    last_finish = std::max(last_finish, t.finish);
  }
  const serving::LatencySamples samples =
      serving::CollectLatencySamples(timings);
  stats.generated_tokens = samples.generated_tokens;
  stats.ttft = Triple(samples.ttft);
  stats.tpot = Triple(samples.tpot);
  stats.e2e = Triple(samples.e2e);
  stats.span_seconds = timings.empty() ? 0 : last_finish - first_arrival;
  stats.throughput_tokens_per_s =
      stats.span_seconds > 0 ? stats.generated_tokens / stats.span_seconds : 0;

  stats.completed = 0;
  stats.dropped = 0;
  stats.preemptions = 0;
  for (ReplicaReport& r : stats.replicas) {
    stats.completed += r.stats.completed;
    stats.dropped += r.stats.dropped;
    stats.preemptions += r.stats.preemptions;
    r.utilization = stats.span_seconds > 0
                        ? r.stats.busy_seconds / stats.span_seconds
                        : 0;
  }
}

void PrintFleetStats(const FleetStats& stats) {
  Table fleet("Fleet summary");
  fleet.SetHeader({"metric", "p50", "p95", "p99"});
  fleet.AddRow({"TTFT", HumanTime(stats.ttft.p50), HumanTime(stats.ttft.p95),
                HumanTime(stats.ttft.p99)});
  fleet.AddRow({"TPOT", HumanTime(stats.tpot.p50), HumanTime(stats.tpot.p95),
                HumanTime(stats.tpot.p99)});
  fleet.AddRow({"end-to-end", HumanTime(stats.e2e.p50),
                HumanTime(stats.e2e.p95), HumanTime(stats.e2e.p99)});
  fleet.Print();

  Table totals;
  totals.SetHeader({"metric", "value"});
  totals.AddRow({"submitted", std::to_string(stats.submitted)});
  totals.AddRow({"completed", std::to_string(stats.completed)});
  totals.AddRow({"dropped", std::to_string(stats.dropped)});
  totals.AddRow({"preemptions", std::to_string(stats.preemptions)});
  totals.AddRow({"rejected (SLO 429)", std::to_string(stats.rejected_requests)});
  totals.AddRow({"rerouted (scale-down)", std::to_string(stats.rerouted)});
  totals.AddRow({"killed replicas", std::to_string(stats.killed_replicas)});
  totals.AddRow({"lost in-flight / retried",
                 Format("%zu / %zu", stats.lost_requests,
                        stats.retried_requests)});
  totals.AddRow({"max retry attempts",
                 std::to_string(stats.max_retry_attempts)});
  totals.AddRow({"wasted tokens (kills)",
                 WithCommas(static_cast<long long>(stats.wasted_tokens))});
  totals.AddRow({"scale-ups / scale-downs",
                 Format("%zu / %zu", stats.scale_ups, stats.scale_downs)});
  totals.AddRow({"final active replicas", std::to_string(stats.replicas_final)});
  totals.AddRow({"span", HumanTime(stats.span_seconds)});
  totals.AddRow({"fleet throughput (tok/s)",
                 WithCommas(static_cast<long long>(
                     stats.throughput_tokens_per_s))});
  totals.Print();

  Table per_replica("Per-replica");
  per_replica.SetHeader({"id", "config", "state", "routed", "completed",
                         "preempt", "util"});
  for (const ReplicaReport& r : stats.replicas) {
    per_replica.AddRow({std::to_string(r.id), r.label,
                        r.killed ? "killed" : (r.active ? "active" : "removed"),
                        std::to_string(r.submitted),
                        std::to_string(r.stats.completed),
                        std::to_string(r.stats.preemptions),
                        Format("%.1f%%", 100.0 * r.utilization)});
  }
  per_replica.Print();
}

}  // namespace liquid::cluster
