#include "cluster/fleet_stats.hpp"

#include <algorithm>

#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace liquid::cluster {

PercentileTriple SummarizePercentiles(std::span<const double> values) {
  PercentileTriple t;
  t.p50 = Percentile(values, 50);
  t.p95 = Percentile(values, 95);
  t.p99 = Percentile(values, 99);
  return t;
}

void FinalizeFleetStats(const std::vector<serving::RequestTiming>& timings,
                        FleetStats& stats) {
  double first_arrival = 0, last_finish = 0;
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const serving::RequestTiming& t = timings[i];
    first_arrival = i == 0 ? t.arrival : std::min(first_arrival, t.arrival);
    last_finish = std::max(last_finish, t.finish);
  }
  const serving::LatencySamples samples =
      serving::CollectLatencySamples(timings);
  stats.generated_tokens = samples.generated_tokens;
  stats.ttft = SummarizePercentiles(samples.ttft);
  stats.tpot = SummarizePercentiles(samples.tpot);
  stats.e2e = SummarizePercentiles(samples.e2e);
  stats.span_seconds = timings.empty() ? 0 : last_finish - first_arrival;
  stats.throughput_tokens_per_s =
      stats.span_seconds > 0 ? stats.generated_tokens / stats.span_seconds : 0;

  stats.completed = 0;
  stats.dropped = 0;
  stats.preemptions = 0;
  stats.cost_dollars = 0;
  stats.prefill_pool_dollars = 0;
  stats.decode_pool_dollars = 0;
  stats.prefix_hits = 0;
  stats.prefill_tokens_saved = 0;
  for (ReplicaReport& r : stats.replicas) {
    stats.completed += r.stats.completed;
    stats.dropped += r.stats.dropped;
    stats.preemptions += r.stats.preemptions;
    stats.prefix_hits += r.stats.prefix_hits;
    stats.prefill_tokens_saved += r.stats.prefill_tokens_saved;
    // Billing window: joined → gracefully retired, where never-retired (and
    // killed) replicas bill to the end of the span.  Replicas present from
    // t = 0 with no retirement reproduce the legacy full-span bill exactly.
    const double billed_from = std::max(r.added_at, first_arrival);
    const double billed_to = r.retired_at >= 0 ? r.retired_at : last_finish;
    r.billed_seconds = std::max(0.0, billed_to - billed_from);
    r.cost_dollars = r.dollars_per_hour * r.billed_seconds / 3600.0;
    stats.cost_dollars += r.cost_dollars;
    // Utilization over the replica's own billed window (== the fleet span
    // for replicas that served start to finish), so a late scale-up that
    // was busy its whole short life reads near 100%, not span-diluted.
    r.utilization =
        r.billed_seconds > 0 ? r.stats.busy_seconds / r.billed_seconds : 0;
    if (r.role == ReplicaRole::kPrefill) {
      stats.prefill_pool_dollars += r.cost_dollars;
    } else {
      stats.decode_pool_dollars += r.cost_dollars;
    }
  }
  stats.dollars_per_m_tokens =
      stats.generated_tokens > 0
          ? stats.cost_dollars / (stats.generated_tokens / 1e6)
          : 0;
  stats.prefix_hit_ratio =
      stats.submitted > 0 ? static_cast<double>(stats.prefix_hits) /
                                static_cast<double>(stats.submitted)
                          : 0;
}

void PrintFleetStats(const FleetStats& stats) {
  Table fleet("Fleet summary");
  fleet.SetHeader({"metric", "p50", "p95", "p99"});
  fleet.AddRow({"TTFT", HumanTime(stats.ttft.p50), HumanTime(stats.ttft.p95),
                HumanTime(stats.ttft.p99)});
  fleet.AddRow({"TPOT", HumanTime(stats.tpot.p50), HumanTime(stats.tpot.p95),
                HumanTime(stats.tpot.p99)});
  fleet.AddRow({"end-to-end", HumanTime(stats.e2e.p50),
                HumanTime(stats.e2e.p95), HumanTime(stats.e2e.p99)});
  fleet.Print();

  Table totals;
  totals.SetHeader({"metric", "value"});
  totals.AddRow({"submitted", std::to_string(stats.submitted)});
  totals.AddRow({"completed", std::to_string(stats.completed)});
  totals.AddRow({"dropped", std::to_string(stats.dropped)});
  totals.AddRow({"preemptions", std::to_string(stats.preemptions)});
  totals.AddRow({"rejected (SLO 429)", std::to_string(stats.rejected_requests)});
  totals.AddRow({"rerouted (scale-down)", std::to_string(stats.rerouted)});
  totals.AddRow({"killed replicas", std::to_string(stats.killed_replicas)});
  totals.AddRow({"lost in-flight / retried",
                 Format("%zu / %zu", stats.lost_requests,
                        stats.retried_requests)});
  totals.AddRow({"max retry attempts",
                 std::to_string(stats.max_retry_attempts)});
  if (stats.retries_exhausted > 0) {
    totals.AddRow({"retries exhausted",
                   std::to_string(stats.retries_exhausted)});
  }
  totals.AddRow({"wasted tokens (kills)",
                 WithCommas(static_cast<long long>(stats.wasted_tokens))});
  if (stats.degraded_replicas > 0) {
    totals.AddRow({"degraded replicas",
                   std::to_string(stats.degraded_replicas)});
  }
  if (stats.prefix_hits > 0) {
    totals.AddRow({"prefix-cache hits",
                   Format("%zu (%.1f%% of submitted)", stats.prefix_hits,
                          100.0 * stats.prefix_hit_ratio)});
    totals.AddRow({"prefill tokens saved",
                   WithCommas(static_cast<long long>(
                       stats.prefill_tokens_saved))});
  }
  totals.AddRow({"scale-ups / scale-downs",
                 Format("%zu / %zu", stats.scale_ups, stats.scale_downs)});
  totals.AddRow({"final active replicas", std::to_string(stats.replicas_final)});
  totals.AddRow({"span", HumanTime(stats.span_seconds)});
  totals.AddRow({"fleet throughput (tok/s)",
                 WithCommas(static_cast<long long>(
                     stats.throughput_tokens_per_s))});
  if (stats.cost_dollars > 0) {
    totals.AddRow({"fleet cost (prefill + decode)",
                   Format("$%.4f ($%.4f + $%.4f)", stats.cost_dollars,
                          stats.prefill_pool_dollars,
                          stats.decode_pool_dollars)});
    totals.AddRow(
        {"$ / 1M tokens", Format("$%.3f", stats.dollars_per_m_tokens)});
  }
  totals.Print();

  const DisaggStats& d = stats.disagg;
  if (d.prefill_handoffs > 0 || d.migrated_requests > 0) {
    Table disagg("Disaggregated serving");
    disagg.SetHeader({"metric", "value"});
    disagg.AddRow({"prefill / decode replicas",
                   Format("%zu / %zu", d.prefill_replicas,
                          d.decode_replicas)});
    disagg.AddRow({"prefill handoffs", std::to_string(d.prefill_handoffs)});
    disagg.AddRow({"migrated requests", std::to_string(d.migrated_requests)});
    disagg.AddRow({"migrated KV",
                   Format("%.1f MB", d.migrated_kv_bytes / 1e6)});
    disagg.AddRow({"local-decode fallbacks",
                   std::to_string(d.local_decode_fallbacks)});
    disagg.AddRow({"import OOMs / target deaths",
                   Format("%zu / %zu", d.import_ooms, d.target_deaths)});
    disagg.AddRow({"migration stall p50/p99",
                   Format("%s / %s", HumanTime(d.migration_seconds.p50).c_str(),
                          HumanTime(d.migration_seconds.p99).c_str())});
    disagg.AddRow({"migrated TPOT p50/p99",
                   Format("%s / %s", HumanTime(d.migrated_tpot.p50).c_str(),
                          HumanTime(d.migrated_tpot.p99).c_str())});
    disagg.Print();
  }

  if (!stats.scale_events.empty()) {
    Table scaling("Autoscale events");
    scaling.SetHeader({"t", "event", "role", "replica", "signal"});
    for (const ScaleEvent& e : stats.scale_events) {
      scaling.AddRow({HumanTime(e.time), e.up ? "scale-up" : "scale-down",
                      ToString(e.role), std::to_string(e.replica),
                      Format("%.3g", e.signal_value)});
    }
    scaling.Print();
  }

  bool priced = false;
  for (const ReplicaReport& r : stats.replicas) {
    priced |= r.dollars_per_hour > 0;
  }
  Table per_replica("Per-replica");
  std::vector<std::string> header = {"id",        "config",  "role",
                                     "state",     "routed",  "completed",
                                     "preempt",   "util"};
  if (priced) header.push_back("billed");
  per_replica.SetHeader(header);
  for (const ReplicaReport& r : stats.replicas) {
    std::vector<std::string> row = {
        std::to_string(r.id), r.label, ToString(r.role),
        r.killed ? "killed" : (r.active ? "active" : "removed"),
        std::to_string(r.submitted), std::to_string(r.stats.completed),
        std::to_string(r.stats.preemptions),
        Format("%.1f%%", 100.0 * r.utilization)};
    if (priced) {
      row.push_back(Format("%s ($%.3f)", HumanTime(r.billed_seconds).c_str(),
                           r.cost_dollars));
    }
    per_replica.AddRow(row);
  }
  per_replica.Print();
}

}  // namespace liquid::cluster
