#include "cluster/fleet_stats.hpp"

#include <algorithm>
#include <fstream>

#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace liquid::cluster {

PercentileTriple SummarizePercentiles(std::span<const double> values) {
  PercentileTriple t;
  t.p50 = Percentile(values, 50);
  t.p95 = Percentile(values, 95);
  t.p99 = Percentile(values, 99);
  return t;
}

void FinalizeFleetStats(const std::vector<serving::RequestTiming>& timings,
                        FleetStats& stats) {
  double first_arrival = 0, last_finish = 0;
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const serving::RequestTiming& t = timings[i];
    first_arrival = i == 0 ? t.arrival : std::min(first_arrival, t.arrival);
    last_finish = std::max(last_finish, t.finish);
  }
  const serving::LatencySamples samples =
      serving::CollectLatencySamples(timings);
  stats.generated_tokens = samples.generated_tokens;
  stats.ttft = SummarizePercentiles(samples.ttft);
  stats.tpot = SummarizePercentiles(samples.tpot);
  stats.e2e = SummarizePercentiles(samples.e2e);
  stats.span_seconds = timings.empty() ? 0 : last_finish - first_arrival;
  stats.throughput_tokens_per_s =
      stats.span_seconds > 0 ? stats.generated_tokens / stats.span_seconds : 0;

  stats.completed = 0;
  stats.dropped = 0;
  stats.preemptions = 0;
  stats.cost_dollars = 0;
  stats.prefill_pool_dollars = 0;
  stats.decode_pool_dollars = 0;
  stats.prefix_hits = 0;
  stats.prefill_tokens_saved = 0;
  for (ReplicaReport& r : stats.replicas) {
    stats.completed += r.stats.completed;
    stats.dropped += r.stats.dropped;
    stats.preemptions += r.stats.preemptions;
    stats.prefix_hits += r.stats.prefix_hits;
    stats.prefill_tokens_saved += r.stats.prefill_tokens_saved;
    // Billing window: joined → gracefully retired, where never-retired (and
    // killed) replicas bill to the end of the span.  Replicas present from
    // t = 0 with no retirement reproduce the legacy full-span bill exactly.
    const double billed_from = std::max(r.added_at, first_arrival);
    const double billed_to = r.retired_at >= 0 ? r.retired_at : last_finish;
    r.billed_seconds = std::max(0.0, billed_to - billed_from);
    r.cost_dollars = r.dollars_per_hour * r.billed_seconds / 3600.0;
    stats.cost_dollars += r.cost_dollars;
    // Utilization over the replica's own billed window (== the fleet span
    // for replicas that served start to finish), so a late scale-up that
    // was busy its whole short life reads near 100%, not span-diluted.
    r.utilization =
        r.billed_seconds > 0 ? r.stats.busy_seconds / r.billed_seconds : 0;
    if (r.role == ReplicaRole::kPrefill) {
      stats.prefill_pool_dollars += r.cost_dollars;
    } else {
      stats.decode_pool_dollars += r.cost_dollars;
    }
  }
  stats.dollars_per_m_tokens =
      stats.generated_tokens > 0
          ? stats.cost_dollars / (stats.generated_tokens / 1e6)
          : 0;
  stats.prefix_hit_ratio =
      stats.submitted > 0 ? static_cast<double>(stats.prefix_hits) /
                                static_cast<double>(stats.submitted)
                          : 0;
}

void PrintFleetStats(const FleetStats& stats) {
  Table fleet("Fleet summary");
  fleet.SetHeader({"metric", "p50", "p95", "p99"});
  fleet.AddRow({"TTFT", HumanTime(stats.ttft.p50), HumanTime(stats.ttft.p95),
                HumanTime(stats.ttft.p99)});
  fleet.AddRow({"TPOT", HumanTime(stats.tpot.p50), HumanTime(stats.tpot.p95),
                HumanTime(stats.tpot.p99)});
  fleet.AddRow({"end-to-end", HumanTime(stats.e2e.p50),
                HumanTime(stats.e2e.p95), HumanTime(stats.e2e.p99)});
  fleet.Print();

  Table totals;
  totals.SetHeader({"metric", "value"});
  totals.AddRow({"submitted", std::to_string(stats.submitted)});
  totals.AddRow({"completed", std::to_string(stats.completed)});
  totals.AddRow({"dropped", std::to_string(stats.dropped)});
  totals.AddRow({"preemptions", std::to_string(stats.preemptions)});
  totals.AddRow({"rejected (SLO 429)", std::to_string(stats.rejected_requests)});
  totals.AddRow({"rerouted (scale-down)", std::to_string(stats.rerouted)});
  totals.AddRow({"killed replicas", std::to_string(stats.killed_replicas)});
  totals.AddRow({"lost in-flight / retried",
                 Format("%zu / %zu", stats.lost_requests,
                        stats.retried_requests)});
  totals.AddRow({"max retry attempts",
                 std::to_string(stats.max_retry_attempts)});
  if (stats.retries_exhausted > 0) {
    totals.AddRow({"retries exhausted",
                   std::to_string(stats.retries_exhausted)});
  }
  totals.AddRow({"wasted tokens (kills)",
                 WithCommas(static_cast<long long>(stats.wasted_tokens))});
  if (stats.degraded_replicas > 0) {
    totals.AddRow({"degraded replicas",
                   std::to_string(stats.degraded_replicas)});
  }
  if (stats.prefix_hits > 0) {
    totals.AddRow({"prefix-cache hits",
                   Format("%zu (%.1f%% of submitted)", stats.prefix_hits,
                          100.0 * stats.prefix_hit_ratio)});
    totals.AddRow({"prefill tokens saved",
                   WithCommas(static_cast<long long>(
                       stats.prefill_tokens_saved))});
  }
  totals.AddRow({"scale-ups / scale-downs",
                 Format("%zu / %zu", stats.scale_ups, stats.scale_downs)});
  totals.AddRow({"final active replicas", std::to_string(stats.replicas_final)});
  totals.AddRow({"span", HumanTime(stats.span_seconds)});
  totals.AddRow({"fleet throughput (tok/s)",
                 WithCommas(static_cast<long long>(
                     stats.throughput_tokens_per_s))});
  if (stats.cost_dollars > 0) {
    totals.AddRow({"fleet cost (prefill + decode)",
                   Format("$%.4f ($%.4f + $%.4f)", stats.cost_dollars,
                          stats.prefill_pool_dollars,
                          stats.decode_pool_dollars)});
    totals.AddRow(
        {"$ / 1M tokens", Format("$%.3f", stats.dollars_per_m_tokens)});
  }
  totals.Print();

  const SimThroughput& st = stats.sim_throughput;
  if (st.events_processed > 0) {
    Table sim("Simulator throughput");
    sim.SetHeader({"metric", "value"});
    sim.AddRow({"events processed (engine + fleet)",
                Format("%s (%s + %s)",
                       WithCommas(static_cast<long long>(st.events_processed))
                           .c_str(),
                       WithCommas(static_cast<long long>(st.engine_iterations))
                           .c_str(),
                       WithCommas(static_cast<long long>(st.fleet_events))
                           .c_str())});
    sim.AddRow({"threads", std::to_string(st.threads)});
    sim.AddRow({"wall time", Format("%.3f s", st.wall_seconds)});
    sim.AddRow({"events / sec",
                WithCommas(static_cast<long long>(st.events_per_sec))});
    sim.AddRow({"sim seconds / wall second",
                Format("%.1f", st.sim_seconds_per_wall_second)});
    sim.AddRow({"wall seconds / sim hour",
                Format("%.3f", st.wall_seconds_per_sim_hour)});
    sim.Print();
  }

  const DisaggStats& d = stats.disagg;
  if (d.prefill_handoffs > 0 || d.migrated_requests > 0) {
    Table disagg("Disaggregated serving");
    disagg.SetHeader({"metric", "value"});
    disagg.AddRow({"prefill / decode replicas",
                   Format("%zu / %zu", d.prefill_replicas,
                          d.decode_replicas)});
    disagg.AddRow({"prefill handoffs", std::to_string(d.prefill_handoffs)});
    disagg.AddRow({"migrated requests", std::to_string(d.migrated_requests)});
    disagg.AddRow({"migrated KV",
                   Format("%.1f MB", d.migrated_kv_bytes / 1e6)});
    disagg.AddRow({"local-decode fallbacks",
                   std::to_string(d.local_decode_fallbacks)});
    disagg.AddRow({"import OOMs / target deaths",
                   Format("%zu / %zu", d.import_ooms, d.target_deaths)});
    disagg.AddRow({"migration stall p50/p99",
                   Format("%s / %s", HumanTime(d.migration_seconds.p50).c_str(),
                          HumanTime(d.migration_seconds.p99).c_str())});
    disagg.AddRow({"migrated TPOT p50/p99",
                   Format("%s / %s", HumanTime(d.migrated_tpot.p50).c_str(),
                          HumanTime(d.migrated_tpot.p99).c_str())});
    disagg.Print();
  }

  if (!stats.scale_events.empty()) {
    Table scaling("Autoscale events");
    scaling.SetHeader({"t", "event", "role", "replica", "signal"});
    for (const ScaleEvent& e : stats.scale_events) {
      scaling.AddRow({HumanTime(e.time), e.up ? "scale-up" : "scale-down",
                      ToString(e.role), std::to_string(e.replica),
                      Format("%.3g", e.signal_value)});
    }
    scaling.Print();
  }

  bool priced = false;
  for (const ReplicaReport& r : stats.replicas) {
    priced |= r.dollars_per_hour > 0;
  }
  Table per_replica("Per-replica");
  std::vector<std::string> header = {"id",        "config",  "role",
                                     "state",     "routed",  "completed",
                                     "preempt",   "util"};
  if (priced) header.push_back("billed");
  per_replica.SetHeader(header);
  for (const ReplicaReport& r : stats.replicas) {
    std::vector<std::string> row = {
        std::to_string(r.id), r.label, ToString(r.role),
        r.killed ? "killed" : (r.active ? "active" : "removed"),
        std::to_string(r.submitted), std::to_string(r.stats.completed),
        std::to_string(r.stats.preemptions),
        Format("%.1f%%", 100.0 * r.utilization)};
    if (priced) {
      row.push_back(Format("%s ($%.3f)", HumanTime(r.billed_seconds).c_str(),
                           r.cost_dollars));
    }
    per_replica.AddRow(row);
  }
  per_replica.Print();
}

namespace {

void WriteTriple(JsonWriter& w, const char* key, const PercentileTriple& t) {
  w.Key(key).BeginObject();
  w.Key("p50").Number(t.p50);
  w.Key("p95").Number(t.p95);
  w.Key("p99").Number(t.p99);
  w.EndObject();
}

}  // namespace

std::string FleetStatsToJson(const FleetStats& stats) {
  JsonWriter w;
  w.BeginObject();
  w.Key("submitted").Number(static_cast<std::uint64_t>(stats.submitted));
  w.Key("completed").Number(static_cast<std::uint64_t>(stats.completed));
  w.Key("dropped").Number(static_cast<std::uint64_t>(stats.dropped));
  w.Key("preemptions").Number(static_cast<std::uint64_t>(stats.preemptions));
  w.Key("rerouted").Number(static_cast<std::uint64_t>(stats.rerouted));
  w.Key("scale_ups").Number(static_cast<std::uint64_t>(stats.scale_ups));
  w.Key("scale_downs").Number(static_cast<std::uint64_t>(stats.scale_downs));
  w.Key("replicas_final")
      .Number(static_cast<std::uint64_t>(stats.replicas_final));
  w.Key("killed_replicas")
      .Number(static_cast<std::uint64_t>(stats.killed_replicas));
  w.Key("lost_requests")
      .Number(static_cast<std::uint64_t>(stats.lost_requests));
  w.Key("retried_requests")
      .Number(static_cast<std::uint64_t>(stats.retried_requests));
  w.Key("rejected_requests")
      .Number(static_cast<std::uint64_t>(stats.rejected_requests));
  w.Key("retries_exhausted")
      .Number(static_cast<std::uint64_t>(stats.retries_exhausted));
  w.Key("max_retry_attempts")
      .Number(static_cast<std::uint64_t>(stats.max_retry_attempts));
  w.Key("wasted_tokens").Number(stats.wasted_tokens);
  w.Key("degraded_replicas")
      .Number(static_cast<std::uint64_t>(stats.degraded_replicas));
  w.Key("prefix_hits").Number(static_cast<std::uint64_t>(stats.prefix_hits));
  w.Key("prefill_tokens_saved").Number(stats.prefill_tokens_saved);
  w.Key("prefix_hit_ratio").Number(stats.prefix_hit_ratio);
  w.Key("span_seconds").Number(stats.span_seconds);
  w.Key("generated_tokens").Number(stats.generated_tokens);
  w.Key("throughput_tokens_per_s").Number(stats.throughput_tokens_per_s);
  w.Key("cost_dollars").Number(stats.cost_dollars);
  w.Key("prefill_pool_dollars").Number(stats.prefill_pool_dollars);
  w.Key("decode_pool_dollars").Number(stats.decode_pool_dollars);
  w.Key("dollars_per_m_tokens").Number(stats.dollars_per_m_tokens);
  WriteTriple(w, "ttft", stats.ttft);
  WriteTriple(w, "tpot", stats.tpot);
  WriteTriple(w, "e2e", stats.e2e);

  const SimThroughput& st = stats.sim_throughput;
  w.Key("sim_throughput").BeginObject();
  w.Key("events_processed").Number(st.events_processed);
  w.Key("engine_iterations").Number(st.engine_iterations);
  w.Key("fleet_events").Number(st.fleet_events);
  w.Key("threads").Number(st.threads);
  w.Key("sim_seconds").Number(st.sim_seconds);
  w.Key("wall_seconds").Number(st.wall_seconds);
  w.Key("events_per_sec").Number(st.events_per_sec);
  w.Key("sim_seconds_per_wall_second").Number(st.sim_seconds_per_wall_second);
  w.Key("wall_seconds_per_sim_hour").Number(st.wall_seconds_per_sim_hour);
  w.EndObject();

  const DisaggStats& d = stats.disagg;
  w.Key("disagg").BeginObject();
  w.Key("prefill_replicas")
      .Number(static_cast<std::uint64_t>(d.prefill_replicas));
  w.Key("decode_replicas")
      .Number(static_cast<std::uint64_t>(d.decode_replicas));
  w.Key("prefill_handoffs")
      .Number(static_cast<std::uint64_t>(d.prefill_handoffs));
  w.Key("migrated_requests")
      .Number(static_cast<std::uint64_t>(d.migrated_requests));
  w.Key("migrated_kv_bytes").Number(d.migrated_kv_bytes);
  w.Key("local_decode_fallbacks")
      .Number(static_cast<std::uint64_t>(d.local_decode_fallbacks));
  w.Key("import_ooms").Number(static_cast<std::uint64_t>(d.import_ooms));
  w.Key("target_deaths").Number(static_cast<std::uint64_t>(d.target_deaths));
  w.Key("in_migration").Number(static_cast<std::uint64_t>(d.in_migration));
  WriteTriple(w, "migration_seconds", d.migration_seconds);
  WriteTriple(w, "migrated_tpot", d.migrated_tpot);
  w.EndObject();

  w.Key("scale_events").BeginArray();
  for (const ScaleEvent& e : stats.scale_events) {
    w.BeginObject();
    w.Key("t").Number(e.time);
    w.Key("up").Bool(e.up);
    w.Key("role").String(ToString(e.role));
    w.Key("replica").Number(static_cast<std::uint64_t>(e.replica));
    w.Key("signal").Number(e.signal_value);
    w.EndObject();
  }
  w.EndArray();

  w.Key("replicas").BeginArray();
  for (const ReplicaReport& r : stats.replicas) {
    w.BeginObject();
    w.Key("id").Number(static_cast<std::uint64_t>(r.id));
    w.Key("label").String(r.label);
    w.Key("role").String(ToString(r.role));
    w.Key("state").String(r.killed ? "killed"
                                   : (r.active ? "active" : "removed"));
    w.Key("submitted").Number(static_cast<std::uint64_t>(r.submitted));
    w.Key("completed").Number(static_cast<std::uint64_t>(r.stats.completed));
    w.Key("preemptions")
        .Number(static_cast<std::uint64_t>(r.stats.preemptions));
    w.Key("iterations").Number(static_cast<std::uint64_t>(r.stats.iterations));
    w.Key("generated_tokens").Number(r.stats.generated_tokens);
    w.Key("utilization").Number(r.utilization);
    w.Key("dollars_per_hour").Number(r.dollars_per_hour);
    w.Key("added_at").Number(r.added_at);
    w.Key("retired_at").Number(r.retired_at);
    w.Key("billed_seconds").Number(r.billed_seconds);
    w.Key("cost_dollars").Number(r.cost_dollars);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.TakeString();
}

bool WriteFleetStatsJson(const FleetStats& stats, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  const std::string body = FleetStatsToJson(stats) + "\n";
  file.write(body.data(), static_cast<std::streamsize>(body.size()));
  return static_cast<bool>(file);
}

}  // namespace liquid::cluster
