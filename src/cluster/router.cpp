#include "cluster/router.hpp"

namespace liquid::cluster {

const char* ToString(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::kRoundRobin: return "round_robin";
    case RoutePolicy::kLeastOutstanding: return "least_outstanding";
    case RoutePolicy::kLeastKvLoad: return "least_kv";
    case RoutePolicy::kSessionAffinity: return "affinity";
  }
  return "?";
}

std::optional<RoutePolicy> ParseRoutePolicy(const std::string& name) {
  if (name == "round_robin") return RoutePolicy::kRoundRobin;
  if (name == "least_outstanding") return RoutePolicy::kLeastOutstanding;
  if (name == "least_kv") return RoutePolicy::kLeastKvLoad;
  if (name == "affinity") return RoutePolicy::kSessionAffinity;
  return std::nullopt;
}

const char* ToString(ReplicaRole role) {
  switch (role) {
    case ReplicaRole::kUnified: return "unified";
    case ReplicaRole::kPrefill: return "prefill";
    case ReplicaRole::kDecode: return "decode";
  }
  return "?";
}

std::optional<std::size_t> Router::LeastOutstanding(
    const std::vector<ReplicaView>& replicas) const {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    if (!replicas[i].alive) continue;
    if (!best || replicas[i].outstanding < replicas[*best].outstanding) {
      best = i;
    }
  }
  return best;
}

std::vector<ReplicaView> Router::PromptEligible(
    const std::vector<ReplicaView>& replicas) const {
  std::vector<ReplicaView> masked = replicas;
  if (!role_aware_) return masked;
  bool any_prefill = false, any_unified = false;
  for (const ReplicaView& v : replicas) {
    if (!v.alive) continue;
    any_prefill |= v.role == ReplicaRole::kPrefill;
    any_unified |= v.role == ReplicaRole::kUnified;
  }
  for (ReplicaView& v : masked) {
    if (!v.alive) continue;
    if (any_prefill) {
      // A live prefill pool owns every fresh prompt.
      v.alive = v.role == ReplicaRole::kPrefill;
    } else if (any_unified) {
      // Prefill pool empty: unified replicas take over; decode replicas
      // still never see a prompt while a unified one lives.
      v.alive = v.role != ReplicaRole::kDecode;
    }
    // Only decode replicas left: last resort, they serve prompts unified.
  }
  return masked;
}

std::optional<std::size_t> Router::PolicyRoute(
    const serving::TimedRequest& request,
    const std::vector<ReplicaView>& replicas) {
  // The cursor can be stale relative to this call's view vector (replicas
  // removed since the last decision); re-anchor it before probing.
  if (!replicas.empty()) rr_cursor_ %= replicas.size();
  switch (policy_) {
    case RoutePolicy::kRoundRobin: {
      for (std::size_t probe = 0; probe < replicas.size(); ++probe) {
        const std::size_t i = (rr_cursor_ + probe) % replicas.size();
        if (replicas[i].alive) {
          rr_cursor_ = (i + 1) % replicas.size();
          return i;
        }
      }
      return std::nullopt;
    }
    case RoutePolicy::kLeastOutstanding:
      return LeastOutstanding(replicas);
    case RoutePolicy::kLeastKvLoad: {
      std::optional<std::size_t> best;
      for (std::size_t i = 0; i < replicas.size(); ++i) {
        if (!replicas[i].alive) continue;
        if (!best ||
            replicas[i].free_kv_blocks > replicas[*best].free_kv_blocks) {
          best = i;
        }
      }
      return best;
    }
    case RoutePolicy::kSessionAffinity: {
      const auto pin = affinity_.find(request.session);
      if (pin != affinity_.end() && pin->second < replicas.size() &&
          replicas[pin->second].alive) {
        return pin->second;
      }
      const std::optional<std::size_t> placed = LeastOutstanding(replicas);
      if (placed) affinity_[request.session] = *placed;
      return placed;
    }
  }
  return std::nullopt;
}

std::optional<std::size_t> Router::Route(
    const serving::TimedRequest& request,
    const std::vector<ReplicaView>& replicas) {
  if (role_aware_) {
    const std::vector<ReplicaView> eligible = PromptEligible(replicas);
    bool any_prefill = false;
    for (const ReplicaView& v : eligible) {
      any_prefill |= v.alive && v.role == ReplicaRole::kPrefill;
    }
    // Prompts go to the least-loaded prefill replica regardless of the
    // configured policy: prefill work is prompt-length bound and leaves
    // quickly, so queue depth is the right signal there.
    if (any_prefill) return LeastOutstanding(eligible);
    return PolicyRoute(request, eligible);
  }
  return PolicyRoute(request, replicas);
}

RouteDecision Router::Decide(const serving::TimedRequest& request,
                             const std::vector<ReplicaView>& replicas) {
  RouteDecision decision;
  const std::optional<std::size_t> placed = Route(request, replicas);
  if (!placed) return decision;  // kNoReplica
  decision.outcome = RouteOutcome::kRouted;
  decision.replica = placed;
  decision.predicted_ttft = replicas[*placed].est_ttft_seconds;
  if (slo_.ttft_budget <= 0) return decision;

  const double ceiling = slo_.ttft_budget * slo_.reject_above;
  if (decision.predicted_ttft <= ceiling) return decision;

  // The policy's pick busts the budget — maybe it optimized for something
  // else (affinity, KV headroom).  Fall back to the lowest-predicted-TTFT
  // prompt-eligible replica before giving up on the request.
  const std::vector<ReplicaView> eligible =
      role_aware_ ? PromptEligible(replicas) : replicas;
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    if (!eligible[i].alive) continue;
    if (!best ||
        eligible[i].est_ttft_seconds < eligible[*best].est_ttft_seconds) {
      best = i;
    }
  }
  if (best && eligible[*best].est_ttft_seconds <= ceiling) {
    decision.replica = best;
    decision.predicted_ttft = eligible[*best].est_ttft_seconds;
    return decision;
  }
  decision.outcome = RouteOutcome::kRejected;
  decision.replica = std::nullopt;
  if (best) decision.predicted_ttft = eligible[*best].est_ttft_seconds;
  return decision;
}

std::optional<std::size_t> Router::RouteDecode(
    std::uint64_t session, const std::vector<ReplicaView>& replicas,
    std::size_t min_free_blocks) {
  // Sticky decode placement first: the session's previous decode home keeps
  // its prefix blocks warm.
  const auto pin = decode_affinity_.find(session);
  if (pin != decode_affinity_.end() && pin->second < replicas.size()) {
    const ReplicaView& v = replicas[pin->second];
    if (v.alive && v.role != ReplicaRole::kPrefill &&
        v.free_kv_blocks >= min_free_blocks) {
      return pin->second;
    }
  }
  // Otherwise the decode replica with the most free KV; unified replicas
  // only when no decode replica is alive.
  std::optional<std::size_t> best;
  bool best_is_decode = false;
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    const ReplicaView& v = replicas[i];
    if (!v.alive || v.role == ReplicaRole::kPrefill) continue;
    const bool is_decode = v.role == ReplicaRole::kDecode;
    if (!best || (is_decode && !best_is_decode) ||
        (is_decode == best_is_decode &&
         v.free_kv_blocks > replicas[*best].free_kv_blocks)) {
      best = i;
      best_is_decode = is_decode;
    }
  }
  if (best) decode_affinity_[session] = *best;
  return best;
}

void Router::ForgetReplica(std::size_t replica) {
  for (auto it = affinity_.begin(); it != affinity_.end();) {
    it = it->second == replica ? affinity_.erase(it) : std::next(it);
  }
  for (auto it = decode_affinity_.begin(); it != decode_affinity_.end();) {
    it = it->second == replica ? decode_affinity_.erase(it) : std::next(it);
  }
  // Replica indices are stable (dead replicas stay in the view vector,
  // marked !alive), so the round-robin cursor needs no shifting here; the
  // modulo re-anchor in Route guards callers that do hand in a shorter
  // view vector later.
}

}  // namespace liquid::cluster
