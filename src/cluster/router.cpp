#include "cluster/router.hpp"

namespace liquid::cluster {

const char* ToString(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::kRoundRobin: return "round_robin";
    case RoutePolicy::kLeastOutstanding: return "least_outstanding";
    case RoutePolicy::kLeastKvLoad: return "least_kv";
    case RoutePolicy::kSessionAffinity: return "affinity";
  }
  return "?";
}

std::optional<RoutePolicy> ParseRoutePolicy(const std::string& name) {
  if (name == "round_robin") return RoutePolicy::kRoundRobin;
  if (name == "least_outstanding") return RoutePolicy::kLeastOutstanding;
  if (name == "least_kv") return RoutePolicy::kLeastKvLoad;
  if (name == "affinity") return RoutePolicy::kSessionAffinity;
  return std::nullopt;
}

std::optional<std::size_t> Router::LeastOutstanding(
    const std::vector<ReplicaView>& replicas) const {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    if (!replicas[i].alive) continue;
    if (!best || replicas[i].outstanding < replicas[*best].outstanding) {
      best = i;
    }
  }
  return best;
}

std::optional<std::size_t> Router::Route(
    const serving::TimedRequest& request,
    const std::vector<ReplicaView>& replicas) {
  switch (policy_) {
    case RoutePolicy::kRoundRobin: {
      for (std::size_t probe = 0; probe < replicas.size(); ++probe) {
        const std::size_t i = (rr_cursor_ + probe) % replicas.size();
        if (replicas[i].alive) {
          rr_cursor_ = (i + 1) % replicas.size();
          return i;
        }
      }
      return std::nullopt;
    }
    case RoutePolicy::kLeastOutstanding:
      return LeastOutstanding(replicas);
    case RoutePolicy::kLeastKvLoad: {
      std::optional<std::size_t> best;
      for (std::size_t i = 0; i < replicas.size(); ++i) {
        if (!replicas[i].alive) continue;
        if (!best ||
            replicas[i].free_kv_blocks > replicas[*best].free_kv_blocks) {
          best = i;
        }
      }
      return best;
    }
    case RoutePolicy::kSessionAffinity: {
      const auto pin = affinity_.find(request.session);
      if (pin != affinity_.end() && pin->second < replicas.size() &&
          replicas[pin->second].alive) {
        return pin->second;
      }
      const std::optional<std::size_t> placed = LeastOutstanding(replicas);
      if (placed) affinity_[request.session] = *placed;
      return placed;
    }
  }
  return std::nullopt;
}

void Router::ForgetReplica(std::size_t replica) {
  for (auto it = affinity_.begin(); it != affinity_.end();) {
    it = it->second == replica ? affinity_.erase(it) : std::next(it);
  }
}

}  // namespace liquid::cluster
