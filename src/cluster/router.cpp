#include "cluster/router.hpp"

namespace liquid::cluster {

const char* ToString(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::kRoundRobin: return "round_robin";
    case RoutePolicy::kLeastOutstanding: return "least_outstanding";
    case RoutePolicy::kLeastKvLoad: return "least_kv";
    case RoutePolicy::kSessionAffinity: return "affinity";
  }
  return "?";
}

std::optional<RoutePolicy> ParseRoutePolicy(const std::string& name) {
  if (name == "round_robin") return RoutePolicy::kRoundRobin;
  if (name == "least_outstanding") return RoutePolicy::kLeastOutstanding;
  if (name == "least_kv") return RoutePolicy::kLeastKvLoad;
  if (name == "affinity") return RoutePolicy::kSessionAffinity;
  return std::nullopt;
}

std::optional<std::size_t> Router::LeastOutstanding(
    const std::vector<ReplicaView>& replicas) const {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    if (!replicas[i].alive) continue;
    if (!best || replicas[i].outstanding < replicas[*best].outstanding) {
      best = i;
    }
  }
  return best;
}

std::optional<std::size_t> Router::Route(
    const serving::TimedRequest& request,
    const std::vector<ReplicaView>& replicas) {
  // The cursor can be stale relative to this call's view vector (replicas
  // removed since the last decision); re-anchor it before probing.
  if (!replicas.empty()) rr_cursor_ %= replicas.size();
  switch (policy_) {
    case RoutePolicy::kRoundRobin: {
      for (std::size_t probe = 0; probe < replicas.size(); ++probe) {
        const std::size_t i = (rr_cursor_ + probe) % replicas.size();
        if (replicas[i].alive) {
          rr_cursor_ = (i + 1) % replicas.size();
          return i;
        }
      }
      return std::nullopt;
    }
    case RoutePolicy::kLeastOutstanding:
      return LeastOutstanding(replicas);
    case RoutePolicy::kLeastKvLoad: {
      std::optional<std::size_t> best;
      for (std::size_t i = 0; i < replicas.size(); ++i) {
        if (!replicas[i].alive) continue;
        if (!best ||
            replicas[i].free_kv_blocks > replicas[*best].free_kv_blocks) {
          best = i;
        }
      }
      return best;
    }
    case RoutePolicy::kSessionAffinity: {
      const auto pin = affinity_.find(request.session);
      if (pin != affinity_.end() && pin->second < replicas.size() &&
          replicas[pin->second].alive) {
        return pin->second;
      }
      const std::optional<std::size_t> placed = LeastOutstanding(replicas);
      if (placed) affinity_[request.session] = *placed;
      return placed;
    }
  }
  return std::nullopt;
}

RouteDecision Router::Decide(const serving::TimedRequest& request,
                             const std::vector<ReplicaView>& replicas) {
  RouteDecision decision;
  const std::optional<std::size_t> placed = Route(request, replicas);
  if (!placed) return decision;  // kNoReplica
  decision.outcome = RouteOutcome::kRouted;
  decision.replica = placed;
  decision.predicted_ttft = replicas[*placed].est_ttft_seconds;
  if (slo_.ttft_budget <= 0) return decision;

  const double ceiling = slo_.ttft_budget * slo_.reject_above;
  if (decision.predicted_ttft <= ceiling) return decision;

  // The policy's pick busts the budget — maybe it optimized for something
  // else (affinity, KV headroom).  Fall back to the lowest-predicted-TTFT
  // replica before giving up on the request.
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    if (!replicas[i].alive) continue;
    if (!best ||
        replicas[i].est_ttft_seconds < replicas[*best].est_ttft_seconds) {
      best = i;
    }
  }
  if (best && replicas[*best].est_ttft_seconds <= ceiling) {
    decision.replica = best;
    decision.predicted_ttft = replicas[*best].est_ttft_seconds;
    return decision;
  }
  decision.outcome = RouteOutcome::kRejected;
  decision.replica = std::nullopt;
  if (best) decision.predicted_ttft = replicas[*best].est_ttft_seconds;
  return decision;
}

void Router::ForgetReplica(std::size_t replica) {
  for (auto it = affinity_.begin(); it != affinity_.end();) {
    it = it->second == replica ? affinity_.erase(it) : std::next(it);
  }
  // Replica indices are stable (dead replicas stay in the view vector,
  // marked !alive), so the round-robin cursor needs no shifting here; the
  // modulo re-anchor in Route guards callers that do hand in a shorter
  // view vector later.
}

}  // namespace liquid::cluster
