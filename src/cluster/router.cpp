#include "cluster/router.hpp"

#include "obs/prof/wall_profiler.hpp"

namespace liquid::cluster {
namespace {

// Tier separators for lexicographic-by-weight presets.  A term weighted
// kTierMajor cannot be outbid by a full-strength term at kTierMinor, and so
// on down to kTierSmall and the unit-weight free-KV tiebreak.  kTierPin is
// reserved for terms that are nonzero on AT MOST ONE replica (a session's
// pin): near 1e18 a double's ulp is 128, which would quantize away free-KV
// differences between replicas scoring in the same tier — harmless for a
// unique pin, fatal for a shared term like decode-role preference.  Every
// shared tier therefore stays at or below 1e12, where tier + count sums of
// integers below 2^53 are exact.
constexpr double kTierPin = 1e18;
constexpr double kTierMajor = 1e12;
constexpr double kTierMinor = 1e9;
constexpr double kTierSmall = 1e6;

}  // namespace

const char* ToString(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::kRoundRobin: return "round_robin";
    case RoutePolicy::kLeastOutstanding: return "least_outstanding";
    case RoutePolicy::kLeastKvLoad: return "least_kv";
    case RoutePolicy::kSessionAffinity: return "affinity";
    case RoutePolicy::kPrefixAware: return "prefix_aware";
  }
  return "?";
}

std::optional<RoutePolicy> ParseRoutePolicy(const std::string& name) {
  if (name == "round_robin") return RoutePolicy::kRoundRobin;
  if (name == "least_outstanding") return RoutePolicy::kLeastOutstanding;
  if (name == "least_kv") return RoutePolicy::kLeastKvLoad;
  if (name == "affinity") return RoutePolicy::kSessionAffinity;
  if (name == "prefix_aware") return RoutePolicy::kPrefixAware;
  return std::nullopt;
}

std::string RoutePolicyNames() {
  return "round_robin|least_outstanding|least_kv|affinity|prefix_aware";
}

const char* ToString(ScoreTerm term) {
  switch (term) {
    case ScoreTerm::kRotation: return "rotation";
    case ScoreTerm::kLoad: return "load";
    case ScoreTerm::kFreeKv: return "free_kv";
    case ScoreTerm::kAffinity: return "affinity";
    case ScoreTerm::kPrefixOverlap: return "prefix_overlap";
    case ScoreTerm::kPredictedTtft: return "predicted_ttft";
    case ScoreTerm::kRolePreference: return "role_preference";
  }
  return "?";
}

ScorerPipeline PromptPipeline(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::kRoundRobin:
      return {{ScoreTerm::kRotation, 1.0}};
    case RoutePolicy::kLeastOutstanding:
      return {{ScoreTerm::kLoad, 1.0}};
    case RoutePolicy::kLeastKvLoad:
      return {{ScoreTerm::kFreeKv, 1.0}};
    case RoutePolicy::kSessionAffinity:
      // An overwhelming pin term reproduces strict stickiness; unpinned
      // sessions fall through to pure load.
      return {{ScoreTerm::kAffinity, kTierPin}, {ScoreTerm::kLoad, 1.0}};
    case RoutePolicy::kPrefixAware:
      // Overlap is normalized to [0, 1], so the weights read in "fully
      // shared prompts": a full overlap is worth a 4-deep queue advantage
      // and 4 sessions' stickiness.  The load counterweight is what keeps
      // packing from minting hotspots — beyond a few queued requests, the
      // wait outgrows the prefill any shared prefix could save.  Free KV
      // only splits exact ties.
      return {{ScoreTerm::kPrefixOverlap, 2.0},
              {ScoreTerm::kAffinity, 0.5},
              {ScoreTerm::kLoad, 0.5},
              {ScoreTerm::kFreeKv, 1e-6}};
  }
  return {{ScoreTerm::kLoad, 1.0}};
}

ScorerPipeline DecodePipeline(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::kPrefixAware:
      // Decode-role preference stays absolute, but the target holding the
      // migrating KV's shared blocks outranks session stickiness — real
      // resident prefixes beat the memory of where a session used to live.
      // Role preference is a SHARED term (every decode replica scores it),
      // so it sits at kTierMajor, not kTierPin: the whole sum stays exact
      // and the free-KV tiebreak survives.
      return {{ScoreTerm::kRolePreference, kTierMajor},
              {ScoreTerm::kPrefixOverlap, kTierMinor},
              {ScoreTerm::kAffinity, kTierSmall},
              {ScoreTerm::kFreeKv, 1.0}};
    default:
      // Legacy decode placement: sticky decode home first (with KV
      // headroom), then decode replicas over unified, then most free KV.
      return {{ScoreTerm::kAffinity, kTierPin},
              {ScoreTerm::kRolePreference, kTierMajor},
              {ScoreTerm::kFreeKv, 1.0}};
  }
}

const char* ToString(ReplicaRole role) {
  switch (role) {
    case ReplicaRole::kUnified: return "unified";
    case ReplicaRole::kPrefill: return "prefill";
    case ReplicaRole::kDecode: return "decode";
  }
  return "?";
}

std::vector<ReplicaView> Router::PromptEligible(
    const std::vector<ReplicaView>& replicas) const {
  std::vector<ReplicaView> masked = replicas;
  if (!role_aware_) return masked;
  bool any_prefill = false, any_unified = false;
  for (const ReplicaView& v : replicas) {
    if (!v.alive) continue;
    any_prefill |= v.role == ReplicaRole::kPrefill;
    any_unified |= v.role == ReplicaRole::kUnified;
  }
  for (ReplicaView& v : masked) {
    if (!v.alive) continue;
    if (any_prefill) {
      // A live prefill pool owns every fresh prompt.
      v.alive = v.role == ReplicaRole::kPrefill;
    } else if (any_unified) {
      // Prefill pool empty: unified replicas take over; decode replicas
      // still never see a prompt while a unified one lives.
      v.alive = v.role != ReplicaRole::kDecode;
    }
    // Only decode replicas left: last resort, they serve prompts unified.
  }
  return masked;
}

double Router::TermValue(ScoreTerm term, const ScoreInput& input,
                         const std::vector<ReplicaView>& replicas,
                         std::size_t i, std::size_t cursor) const {
  const ReplicaView& v = replicas[i];
  switch (term) {
    case ScoreTerm::kRotation:
      // Distance past the cursor: the first alive replica at or after it
      // scores highest, reproducing the classic rotation scan.
      return -static_cast<double>((i + replicas.size() - cursor) %
                                  replicas.size());
    case ScoreTerm::kLoad:
      return -static_cast<double>(v.outstanding);
    case ScoreTerm::kFreeKv:
      return static_cast<double>(v.free_kv_blocks);
    case ScoreTerm::kAffinity: {
      const auto& pins = input.decode_mode ? decode_affinity_ : affinity_;
      const auto pin = pins.find(input.session);
      if (pin == pins.end() || pin->second != i) return 0;
      // A decode pin only counts while its replica has KV headroom for the
      // incoming continuation.
      if (input.decode_mode && v.free_kv_blocks < input.min_free_blocks) {
        return 0;
      }
      return 1;
    }
    case ScoreTerm::kPrefixOverlap: {
      if (input.prefix_hashes.empty() || v.prefix_index == nullptr) return 0;
      const std::size_t shared =
          v.prefix_index->SharedPrefixBlocks(input.prefix_hashes);
      return static_cast<double>(shared) /
             static_cast<double>(input.prefix_hashes.size());
    }
    case ScoreTerm::kPredictedTtft:
      return -v.est_ttft_seconds;
    case ScoreTerm::kRolePreference:
      return v.role == ReplicaRole::kDecode ? 1 : 0;
  }
  return 0;
}

std::optional<std::size_t> Router::ScoreRoute(
    const ScoreInput& input, const std::vector<ReplicaView>& replicas,
    const ScorerPipeline& pipeline, RouteExplain* explain) {
  LIQUID_PROF_SCOPE("router/score");
  if (replicas.empty()) return std::nullopt;
  bool rotates = false, pins = false;
  for (const ScorerSpec& spec : pipeline) {
    rotates |= spec.term == ScoreTerm::kRotation && spec.weight > 0;
    pins |= spec.term == ScoreTerm::kAffinity && spec.weight > 0;
  }
  // The cursor can be stale relative to this call's view vector (replicas
  // removed since the last decision); re-anchor it before scoring.
  if (rotates) rr_cursor_ %= replicas.size();
  const std::size_t cursor = rr_cursor_;

  std::optional<std::size_t> best;
  double best_score = 0;
  // Term readings for the candidate being scored; captured inside the loop
  // because the cursor and affinity pins mutate after the argmax.
  double term_values[16];
  const std::size_t nterms = std::min<std::size_t>(pipeline.size(), 16);
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    const ReplicaView& v = replicas[i];
    if (!v.alive) continue;
    if (input.decode_mode && v.role == ReplicaRole::kPrefill) continue;
    double score = 0;
    for (std::size_t j = 0; j < pipeline.size(); ++j) {
      const ScorerSpec& spec = pipeline[j];
      // Per-term wall cost: ToString returns static literals, which is what
      // the profiler's name-pointer tree requires.
      LIQUID_PROF_SCOPE(ToString(spec.term));
      const double value = TermValue(spec.term, input, replicas, i, cursor);
      if (explain != nullptr && j < nterms) term_values[j] = value;
      score += spec.weight * value;
    }
    if (!best || score > best_score) {
      best = i;
      best_score = score;
      if (explain != nullptr) {
        explain->terms.clear();
        for (std::size_t j = 0; j < nterms; ++j) {
          explain->terms.push_back(
              {pipeline[j].term, pipeline[j].weight, term_values[j]});
        }
        explain->score = score;
      }
    }
  }
  if (!best) return std::nullopt;
  // Post-decision updates belong to the terms that participated: rotation
  // advances its cursor, affinity (re)pins the session.
  if (rotates) rr_cursor_ = (*best + 1) % replicas.size();
  if (pins) {
    (input.decode_mode ? decode_affinity_ : affinity_)[input.session] = *best;
  }
  return best;
}

std::optional<std::size_t> Router::Route(
    const serving::TimedRequest& request,
    const std::vector<ReplicaView>& replicas, RouteExplain* explain) {
  ScoreInput input;
  input.session = request.session;
  input.prefix_hashes = request.prefix.hashes;
  if (role_aware_) {
    const std::vector<ReplicaView> eligible = PromptEligible(replicas);
    bool any_prefill = false;
    for (const ReplicaView& v : eligible) {
      any_prefill |= v.alive && v.role == ReplicaRole::kPrefill;
    }
    // Prompts go to the least-loaded prefill replica regardless of the
    // configured pipeline: prefill work is prompt-length bound and leaves
    // quickly, so queue depth is the right signal there.
    if (any_prefill) {
      static const ScorerPipeline kPrefillPool = {{ScoreTerm::kLoad, 1.0}};
      return ScoreRoute(input, eligible, kPrefillPool, explain);
    }
    return ScoreRoute(input, eligible, pipeline_, explain);
  }
  return ScoreRoute(input, replicas, pipeline_, explain);
}

RouteDecision Router::Decide(const serving::TimedRequest& request,
                             const std::vector<ReplicaView>& replicas,
                             RouteExplain* explain) {
  LIQUID_PROF_SCOPE("router/decide");
  RouteDecision decision;
  const std::optional<std::size_t> placed = Route(request, replicas, explain);
  if (!placed) return decision;  // kNoReplica
  decision.outcome = RouteOutcome::kRouted;
  decision.replica = placed;
  decision.predicted_ttft = replicas[*placed].est_ttft_seconds;
  if (slo_.ttft_budget <= 0) return decision;

  const double ceiling = slo_.ttft_budget * slo_.reject_above;
  if (decision.predicted_ttft <= ceiling) return decision;

  // The pipeline's pick busts the budget — maybe it optimized for something
  // else (affinity, KV headroom, prefix reuse).  Fall back to the lowest-
  // predicted-TTFT prompt-eligible replica before giving up on the request.
  const std::vector<ReplicaView> eligible =
      role_aware_ ? PromptEligible(replicas) : replicas;
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < eligible.size(); ++i) {
    if (!eligible[i].alive) continue;
    if (!best ||
        eligible[i].est_ttft_seconds < eligible[*best].est_ttft_seconds) {
      best = i;
    }
  }
  if (best && eligible[*best].est_ttft_seconds <= ceiling) {
    decision.replica = best;
    decision.predicted_ttft = eligible[*best].est_ttft_seconds;
    if (explain != nullptr && *best != *placed) explain->slo_fallback = true;
    return decision;
  }
  decision.outcome = RouteOutcome::kRejected;
  decision.replica = std::nullopt;
  if (best) decision.predicted_ttft = eligible[*best].est_ttft_seconds;
  return decision;
}

std::optional<std::size_t> Router::RouteDecode(
    std::uint64_t session, const std::vector<ReplicaView>& replicas,
    std::size_t min_free_blocks,
    std::span<const std::uint64_t> prefix_hashes) {
  ScoreInput input;
  input.session = session;
  input.prefix_hashes = prefix_hashes;
  input.decode_mode = true;
  input.min_free_blocks = min_free_blocks;
  return ScoreRoute(input, replicas, decode_pipeline_);
}

bool Router::ScaleDownSafe(const std::vector<ReplicaView>& replicas,
                           std::size_t victim) const {
  if (slo_.ttft_budget <= 0) return true;
  std::vector<ReplicaView> survivors = replicas;
  if (victim < survivors.size()) survivors[victim].alive = false;
  const std::vector<ReplicaView> eligible =
      role_aware_ ? PromptEligible(survivors) : survivors;
  const double ceiling = slo_.ttft_budget * slo_.reject_above;
  for (const ReplicaView& v : eligible) {
    if (v.alive && v.est_ttft_seconds <= ceiling) return true;
  }
  return false;
}

void Router::ForgetReplica(std::size_t replica) {
  // Erase-only sweeps: visit order decides nothing — the surviving map
  // contents are the same set regardless of iteration order, and nothing is
  // emitted per visit.
  // NOLINT-DETERMINISM(erase-only sweep; surviving content is order-independent)
  for (auto it = affinity_.begin(); it != affinity_.end();) {
    it = it->second == replica ? affinity_.erase(it) : std::next(it);
  }
  // NOLINT-DETERMINISM(erase-only sweep; surviving content is order-independent)
  for (auto it = decode_affinity_.begin(); it != decode_affinity_.end();) {
    it = it->second == replica ? decode_affinity_.erase(it) : std::next(it);
  }
  // Replica indices are stable (dead replicas stay in the view vector,
  // marked !alive), so the round-robin cursor needs no shifting here; the
  // modulo re-anchor in ScoreRoute guards callers that do hand in a shorter
  // view vector later.
}

}  // namespace liquid::cluster
