#pragma once
// Request router for the multi-replica serving cluster.  At each arrival the
// ClusterSimulator snapshots every replica's load into ReplicaView and asks
// the router for a destination.  Policies:
//
//   round_robin        — rotate over alive replicas, ignoring load.
//   least_outstanding  — fewest queued+running requests (classic LOR LB).
//   least_kv           — most free paged-KV blocks; long-prompt aware, since
//                        a replica's queue can be short while its KV pool is
//                        pinned by a few huge prompts.
//   affinity           — sticky session routing (prefix-cache locality): a
//                        session keeps hitting its replica; new sessions are
//                        placed by least_outstanding.
//
// The router is deliberately stateless about time: it only sees the views the
// simulator hands it, so policies stay unit-testable without an engine.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "serving/workload.hpp"

namespace liquid::cluster {

enum class RoutePolicy {
  kRoundRobin,
  kLeastOutstanding,
  kLeastKvLoad,
  kSessionAffinity,
};

[[nodiscard]] const char* ToString(RoutePolicy policy);
/// Parses "round_robin" | "least_outstanding" | "least_kv" | "affinity".
[[nodiscard]] std::optional<RoutePolicy> ParseRoutePolicy(
    const std::string& name);

/// What a policy is allowed to see about one replica at decision time.
struct ReplicaView {
  bool alive = true;
  std::size_t outstanding = 0;     ///< waiting + running requests
  std::size_t free_kv_blocks = 0;
  std::size_t total_kv_blocks = 0;
};

class Router {
 public:
  explicit Router(RoutePolicy policy) : policy_(policy) {}

  /// Picks a destination among alive replicas; ties break toward the lowest
  /// index so routing stays deterministic.  Returns nullopt when no replica
  /// is alive.
  [[nodiscard]] std::optional<std::size_t> Route(
      const serving::TimedRequest& request,
      const std::vector<ReplicaView>& replicas);

  /// Drops affinity pins onto `replica` (called on scale-down); its sessions
  /// will be re-placed on their next request.
  void ForgetReplica(std::size_t replica);

  [[nodiscard]] RoutePolicy policy() const { return policy_; }

 private:
  [[nodiscard]] std::optional<std::size_t> LeastOutstanding(
      const std::vector<ReplicaView>& replicas) const;

  RoutePolicy policy_;
  std::size_t rr_cursor_ = 0;
  std::unordered_map<std::uint64_t, std::size_t> affinity_;
};

}  // namespace liquid::cluster
