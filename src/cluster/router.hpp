#pragma once
// Request router for the multi-replica serving cluster.  At each arrival the
// ClusterSimulator snapshots every replica's load into ReplicaView and asks
// the router for a destination.  Policies:
//
//   round_robin        — rotate over alive replicas, ignoring load.
//   least_outstanding  — fewest queued+running requests (classic LOR LB).
//   least_kv           — most free paged-KV blocks; long-prompt aware, since
//                        a replica's queue can be short while its KV pool is
//                        pinned by a few huge prompts.
//   affinity           — sticky session routing (prefix-cache locality): a
//                        session keeps hitting its replica; new sessions are
//                        placed by least_outstanding.
//
// Disaggregated serving adds a role-aware stage AHEAD of the policy: when the
// fleet has alive prefill-specialized replicas (and the interconnect can
// actually move KV), fresh prompts go to the least-loaded prefill replica
// and decode-specialized replicas never see a prompt.  Once a prefill
// finishes, RouteDecode places the continuation on a decode replica by
// session affinity first, free KV blocks second.  When the prefill pool is
// empty (all dead or none configured) the stage falls through to the
// configured policy over unified replicas — graceful fallback to monolithic
// serving.
//
// The router is deliberately stateless about time: it only sees the views the
// simulator hands it, so policies stay unit-testable without an engine.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "serving/workload.hpp"

namespace liquid::cluster {

enum class RoutePolicy {
  kRoundRobin,
  kLeastOutstanding,
  kLeastKvLoad,
  kSessionAffinity,
};

[[nodiscard]] const char* ToString(RoutePolicy policy);
/// Parses "round_robin" | "least_outstanding" | "least_kv" | "affinity".
[[nodiscard]] std::optional<RoutePolicy> ParseRoutePolicy(
    const std::string& name);

/// What a replica is specialized for in a disaggregated fleet.
enum class ReplicaRole {
  kUnified,  ///< prefills and decodes (the monolithic default)
  kPrefill,  ///< runs prompts to first token, then exports KV
  kDecode,   ///< receives migrated KV and runs decode steps only
};

[[nodiscard]] const char* ToString(ReplicaRole role);

/// What a policy is allowed to see about one replica at decision time.
struct ReplicaView {
  bool alive = true;
  ReplicaRole role = ReplicaRole::kUnified;
  std::size_t outstanding = 0;     ///< waiting + running requests
  std::size_t free_kv_blocks = 0;
  std::size_t total_kv_blocks = 0;
  /// Predicted TTFT for the request being routed, were it placed here
  /// (simulator-computed, optimistic lower bound).  Admission control keys
  /// on this; 0 means "no estimate" and never trips the SLO check.
  double est_ttft_seconds = 0;
};

/// SLO-aware admission control: rather than queue unboundedly, the router
/// rejects (429-style) a request whose predicted TTFT busts the budget on
/// every alive replica.  Disabled when ttft_budget <= 0.
struct SloConfig {
  double ttft_budget = 0;     ///< seconds; <= 0 disables admission control
  double reject_above = 1.0;  ///< reject when predicted > budget * this
};

/// Retry budget + exponential backoff for kill/migration-loss re-submissions,
/// so a re-route storm after a failure cannot amplify overload.  Retry k
/// (1-based) is released base_backoff * 2^(k-1) seconds after the loss;
/// beyond max_attempts the request is abandoned (retries_exhausted).
struct RetryPolicy {
  std::uint32_t max_attempts = 0;   ///< retries per request; 0 = unlimited
  double base_backoff_seconds = 0;  ///< 0 = immediate re-route (no backoff)
};

/// Outcome of one routing decision under admission control.
enum class RouteOutcome {
  kRouted,     ///< placed on `replica`
  kNoReplica,  ///< no alive replica (fleet-level drop)
  kRejected,   ///< predicted TTFT busts the SLO everywhere (shed load)
};

struct RouteDecision {
  RouteOutcome outcome = RouteOutcome::kNoReplica;
  std::optional<std::size_t> replica;
  double predicted_ttft = 0;  ///< estimate for the chosen (or best) replica
};

class Router {
 public:
  explicit Router(RoutePolicy policy, SloConfig slo = {})
      : policy_(policy), slo_(slo) {}

  /// Picks a destination among alive prompt-eligible replicas; ties break
  /// toward the lowest index so routing stays deterministic.  Returns
  /// nullopt when no replica is alive.  Placement only — no admission
  /// control (see Decide).  With role_aware() on and a live prefill pool,
  /// this is the least-loaded prefill replica; otherwise the configured
  /// policy over unified replicas (decode replicas are a last resort).
  [[nodiscard]] std::optional<std::size_t> Route(
      const serving::TimedRequest& request,
      const std::vector<ReplicaView>& replicas);

  /// Route + SLO admission control.  If the policy's choice busts the TTFT
  /// budget, falls back to the prompt-eligible replica with the lowest
  /// predicted TTFT; if even that busts it, the request is rejected instead
  /// of queued.
  [[nodiscard]] RouteDecision Decide(const serving::TimedRequest& request,
                                     const std::vector<ReplicaView>& replicas);

  /// Places a post-prefill continuation on a decode replica: the session's
  /// previous decode home if it is alive and has `min_free_blocks` KV blocks
  /// free (prefix-cache locality), else the alive decode replica with the
  /// most free KV.  Unified replicas are used when no decode replica is
  /// alive; returns nullopt when neither exists (the caller decodes locally
  /// on the prefill replica — unified fallback).
  [[nodiscard]] std::optional<std::size_t> RouteDecode(
      std::uint64_t session, const std::vector<ReplicaView>& replicas,
      std::size_t min_free_blocks);

  /// Drops affinity pins onto `replica` (called on scale-down or kill); its
  /// sessions will be re-placed on their next request.  Replica indices stay
  /// stable across removals (dead replicas remain in the view vector with
  /// alive=false), so round-robin rotation continues fairly.
  void ForgetReplica(std::size_t replica);

  [[nodiscard]] RoutePolicy policy() const { return policy_; }
  [[nodiscard]] const SloConfig& slo() const { return slo_; }
  void set_slo(SloConfig slo) { slo_ = slo; }
  /// Enables the role-aware stage (set by the cluster once the fleet has
  /// specialized replicas and a usable interconnect).
  void set_role_aware(bool on) { role_aware_ = on; }
  [[nodiscard]] bool role_aware() const { return role_aware_; }

 private:
  [[nodiscard]] std::optional<std::size_t> LeastOutstanding(
      const std::vector<ReplicaView>& replicas) const;
  /// Masks out replicas a fresh prompt must not land on: with role_aware(),
  /// decode replicas are ineligible while any unified replica is alive, and
  /// every non-prefill replica is ineligible while a prefill replica lives.
  [[nodiscard]] std::vector<ReplicaView> PromptEligible(
      const std::vector<ReplicaView>& replicas) const;
  [[nodiscard]] std::optional<std::size_t> PolicyRoute(
      const serving::TimedRequest& request,
      const std::vector<ReplicaView>& replicas);

  RoutePolicy policy_;
  SloConfig slo_;
  bool role_aware_ = false;
  std::size_t rr_cursor_ = 0;
  std::unordered_map<std::uint64_t, std::size_t> affinity_;
  /// Session → decode replica that last hosted it (RouteDecode locality).
  std::unordered_map<std::uint64_t, std::size_t> decode_affinity_;
};

}  // namespace liquid::cluster
