#pragma once
// Request router for the multi-replica serving cluster.  At each arrival the
// ClusterSimulator snapshots every replica's load into ReplicaView and asks
// the router for a destination.
//
// Placement is a SCORING PIPELINE: a weighted sum of orthogonal terms
// (rotation fairness, queue depth, free KV, session affinity, shared
// prefix-cache blocks, predicted TTFT), evaluated per alive eligible replica;
// the highest score wins, ties break toward the lowest index so routing
// stays deterministic.  The historical policies survive as weight PRESETS
// over that pipeline — each reproduces the pre-pipeline decisions exactly:
//
//   round_robin        — rotation only: rotate over alive replicas.
//   least_outstanding  — load only: fewest queued+running (classic LOR LB).
//   least_kv           — free-KV only; long-prompt aware, since a replica's
//                        queue can be short while its KV pool is pinned by a
//                        few huge prompts.
//   affinity           — sticky session routing: an overwhelming affinity
//                        term pins a session to its replica; new sessions
//                        place by the load term.
//   prefix_aware       — prefix-cache locality: scores the shared leading
//                        blocks between the request's prompt signature and
//                        each replica's resident PrefixIndex, with session
//                        stickiness and load as lower-order terms.  Routes
//                        shared-prefix work (few-shot preambles, forked
//                        conversations) to the replica that can skip the
//                        most prefill compute.
//
// Disaggregated serving adds a role-aware stage AHEAD of the pipeline: when
// the fleet has alive prefill-specialized replicas (and the interconnect can
// actually move KV), fresh prompts go to the least-loaded prefill replica
// and decode-specialized replicas never see a prompt.  Role eligibility is a
// hard mask, not a weighted term: a weight could be outbid, and a prompt on
// a decode replica is a correctness bug, not a bad trade.  Once a prefill
// finishes, RouteDecode places the continuation through a decode-side
// pipeline (decode-pin, decode-role preference, shared prefix under the
// prefix_aware preset, free KV).  When the prefill pool is empty the stage
// falls through to the configured preset over unified replicas — graceful
// fallback to monolithic serving.
//
// The router is deliberately stateless about time: it only sees the views
// the simulator hands it, so pipelines stay unit-testable without an engine.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "serving/kv_cache.hpp"
#include "serving/workload.hpp"

namespace liquid::cluster {

enum class RoutePolicy {
  kRoundRobin,
  kLeastOutstanding,
  kLeastKvLoad,
  kSessionAffinity,
  kPrefixAware,
};

[[nodiscard]] const char* ToString(RoutePolicy policy);
/// Parses "round_robin" | "least_outstanding" | "least_kv" | "affinity" |
/// "prefix_aware"; nullopt on anything else (error paths should echo
/// RoutePolicyNames()).
[[nodiscard]] std::optional<RoutePolicy> ParseRoutePolicy(
    const std::string& name);
/// The accepted preset names, "|"-separated — for usage/error messages.
[[nodiscard]] std::string RoutePolicyNames();

/// One weighted term of the placement score.
enum class ScoreTerm {
  kRotation,       ///< -(distance past the round-robin cursor)
  kLoad,           ///< -outstanding (queued + running requests)
  kFreeKv,         ///< +free KV blocks (raw count)
  kAffinity,       ///< 1 when the session is pinned here, else 0 (decode
                   ///  mode additionally requires min_free_blocks headroom)
  kPrefixOverlap,  ///< shared leading signature blocks resident here,
                   ///  normalized by the request's total blocks (0..1)
  kPredictedTtft,  ///< -est_ttft_seconds (0 when no estimate was computed)
  kRolePreference, ///< decode placement: 1 for decode-role replicas, else 0
};

[[nodiscard]] const char* ToString(ScoreTerm term);

struct ScorerSpec {
  ScoreTerm term;
  double weight;
};

/// A placement policy as data: the weighted terms summed per replica.
using ScorerPipeline = std::vector<ScorerSpec>;

/// The prompt-side weight preset for a policy.
[[nodiscard]] ScorerPipeline PromptPipeline(RoutePolicy policy);
/// The decode-side weight preset (post-prefill continuation placement).
[[nodiscard]] ScorerPipeline DecodePipeline(RoutePolicy policy);

/// What a replica is specialized for in a disaggregated fleet.
enum class ReplicaRole {
  kUnified,  ///< prefills and decodes (the monolithic default)
  kPrefill,  ///< runs prompts to first token, then exports KV
  kDecode,   ///< receives migrated KV and runs decode steps only
};

[[nodiscard]] const char* ToString(ReplicaRole role);

/// What a policy is allowed to see about one replica at decision time.
struct ReplicaView {
  bool alive = true;
  ReplicaRole role = ReplicaRole::kUnified;
  std::size_t outstanding = 0;     ///< waiting + running requests
  std::size_t free_kv_blocks = 0;
  std::size_t total_kv_blocks = 0;
  /// Predicted TTFT for the request being routed, were it placed here
  /// (simulator-computed, optimistic lower bound).  Admission control keys
  /// on this; 0 means "no estimate" and never trips the SLO check.
  double est_ttft_seconds = 0;
  /// The replica's resident prefix-block index (kPrefixOverlap scores the
  /// request's signature against it); nullptr scores as zero overlap.
  const serving::PrefixIndex* prefix_index = nullptr;
};

/// SLO-aware admission control: rather than queue unboundedly, the router
/// rejects (429-style) a request whose predicted TTFT busts the budget on
/// every alive replica.  Disabled when ttft_budget <= 0.
struct SloConfig {
  double ttft_budget = 0;     ///< seconds; <= 0 disables admission control
  double reject_above = 1.0;  ///< reject when predicted > budget * this
};

/// Retry budget + exponential backoff for kill/migration-loss re-submissions,
/// so a re-route storm after a failure cannot amplify overload.  Retry k
/// (1-based) is released base_backoff * 2^(k-1) seconds after the loss;
/// beyond max_attempts the request is abandoned (retries_exhausted).
struct RetryPolicy {
  std::uint32_t max_attempts = 0;   ///< retries per request; 0 = unlimited
  double base_backoff_seconds = 0;  ///< 0 = immediate re-route (no backoff)
};

/// Outcome of one routing decision under admission control.
enum class RouteOutcome {
  kRouted,     ///< placed on `replica`
  kNoReplica,  ///< no alive replica (fleet-level drop)
  kRejected,   ///< predicted TTFT busts the SLO everywhere (shed load)
};

struct RouteDecision {
  RouteOutcome outcome = RouteOutcome::kNoReplica;
  std::optional<std::size_t> replica;
  double predicted_ttft = 0;  ///< estimate for the chosen (or best) replica
};

/// One weighted term's reading for the winning replica — the scorer
/// breakdown telemetry records per routing decision (and the training rows
/// a learned re-weighting would fit on).
struct TermContribution {
  ScoreTerm term = ScoreTerm::kLoad;
  double weight = 0;
  double value = 0;  ///< raw TermValue; the contribution is weight * value
};

/// Optional out-param of Decide/Route: why the pipeline picked its winner.
/// Capturing it costs one extra term-value copy per improved candidate, so
/// callers only pass it when telemetry is attached.
struct RouteExplain {
  std::vector<TermContribution> terms;  ///< the winner's term readings
  double score = 0;                     ///< the winning weighted sum
  /// Decide() overrode the pipeline's pick with the lowest-predicted-TTFT
  /// fallback (the terms still describe the pipeline's original winner).
  bool slo_fallback = false;
};

class Router {
 public:
  explicit Router(RoutePolicy policy, SloConfig slo = {})
      : policy_(policy),
        slo_(slo),
        pipeline_(PromptPipeline(policy)),
        decode_pipeline_(DecodePipeline(policy)) {}

  /// Picks a destination among alive prompt-eligible replicas; ties break
  /// toward the lowest index so routing stays deterministic.  Returns
  /// nullopt when no replica is alive.  Placement only — no admission
  /// control (see Decide).  With role_aware() on and a live prefill pool,
  /// this is the least-loaded prefill replica; otherwise the configured
  /// pipeline over unified replicas (decode replicas are a last resort).
  [[nodiscard]] std::optional<std::size_t> Route(
      const serving::TimedRequest& request,
      const std::vector<ReplicaView>& replicas,
      RouteExplain* explain = nullptr);

  /// Route + SLO admission control.  If the pipeline's choice busts the TTFT
  /// budget, falls back to the prompt-eligible replica with the lowest
  /// predicted TTFT; if even that busts it, the request is rejected instead
  /// of queued.  `explain` (optional) receives the winning replica's scorer
  /// term breakdown for telemetry.
  [[nodiscard]] RouteDecision Decide(const serving::TimedRequest& request,
                                     const std::vector<ReplicaView>& replicas,
                                     RouteExplain* explain = nullptr);

  /// Places a post-prefill continuation through the decode pipeline.  Under
  /// the legacy presets: the session's previous decode home if it is alive
  /// and has `min_free_blocks` KV blocks free, else the alive decode replica
  /// with the most free KV.  Under prefix_aware, shared resident prefix
  /// blocks (the migrating KV's hashes are scored against each target's
  /// index) outrank stickiness.  Unified replicas are used when no decode
  /// replica is alive; returns nullopt when neither exists (the caller
  /// decodes locally on the prefill replica — unified fallback).
  [[nodiscard]] std::optional<std::size_t> RouteDecode(
      std::uint64_t session, const std::vector<ReplicaView>& replicas,
      std::size_t min_free_blocks,
      std::span<const std::uint64_t> prefix_hashes = {});

  /// Drops affinity pins onto `replica` (called on scale-down or kill); its
  /// sessions will be re-placed on their next request.  Replica indices stay
  /// stable across removals (dead replicas remain in the view vector with
  /// alive=false), so round-robin rotation continues fairly.
  void ForgetReplica(std::size_t replica);

  /// PredictTtft-based scale-down feasibility: would a fresh prompt of the
  /// probed size still be admittable with `victim` gone?  Masks the victim
  /// out of the views, re-derives prompt eligibility over the survivors
  /// (the role pool the victim leaves may hand prompts to a different
  /// pool), and checks the best surviving predicted TTFT against the same
  /// budget * reject_above ceiling Decide() rejects on.  Trivially true
  /// without an SLO budget — cost-driven shrink is then ungated.  The
  /// caller must have built the views with the probe's prompt size so
  /// est_ttft_seconds is populated.
  [[nodiscard]] bool ScaleDownSafe(const std::vector<ReplicaView>& replicas,
                                   std::size_t victim) const;

  [[nodiscard]] RoutePolicy policy() const { return policy_; }
  [[nodiscard]] const SloConfig& slo() const { return slo_; }
  void set_slo(SloConfig slo) { slo_ = slo; }
  /// Enables the role-aware stage (set by the cluster once the fleet has
  /// specialized replicas and a usable interconnect).
  void set_role_aware(bool on) { role_aware_ = on; }
  [[nodiscard]] bool role_aware() const { return role_aware_; }

  /// The pipelines actually scoring placements — replace them to run a
  /// custom weighting (the preset enum is just a constructor convenience).
  [[nodiscard]] const ScorerPipeline& pipeline() const { return pipeline_; }
  void set_pipeline(ScorerPipeline pipeline) {
    pipeline_ = std::move(pipeline);
  }
  [[nodiscard]] const ScorerPipeline& decode_pipeline() const {
    return decode_pipeline_;
  }
  void set_decode_pipeline(ScorerPipeline pipeline) {
    decode_pipeline_ = std::move(pipeline);
  }

 private:
  /// Everything a scoring pass needs beyond the views.
  struct ScoreInput {
    std::uint64_t session = 0;
    std::span<const std::uint64_t> prefix_hashes;
    bool decode_mode = false;  ///< decode pin map + role-preference semantics
    std::size_t min_free_blocks = 0;  ///< decode pin headroom gate
  };

  /// Runs one pipeline over the views: argmax of the weighted term sum over
  /// eligible replicas (ties toward the lowest index), then applies the
  /// post-decision state updates owned by the participating terms (rotation
  /// cursor, affinity pins).
  [[nodiscard]] std::optional<std::size_t> ScoreRoute(
      const ScoreInput& input, const std::vector<ReplicaView>& replicas,
      const ScorerPipeline& pipeline, RouteExplain* explain = nullptr);
  [[nodiscard]] double TermValue(ScoreTerm term, const ScoreInput& input,
                                 const std::vector<ReplicaView>& replicas,
                                 std::size_t i, std::size_t cursor) const;
  /// Masks out replicas a fresh prompt must not land on: with role_aware(),
  /// decode replicas are ineligible while any unified replica is alive, and
  /// every non-prefill replica is ineligible while a prefill replica lives.
  [[nodiscard]] std::vector<ReplicaView> PromptEligible(
      const std::vector<ReplicaView>& replicas) const;

  RoutePolicy policy_;
  SloConfig slo_;
  ScorerPipeline pipeline_;
  ScorerPipeline decode_pipeline_;
  bool role_aware_ = false;
  std::size_t rr_cursor_ = 0;
  /// Determinism audit for both affinity maps: keyed lookup/pin writes on
  /// the routing path; the only iteration is ForgetReplica's erase-only
  /// sweep (suppressed there with a reason — visit order decides nothing).
  std::unordered_map<std::uint64_t, std::size_t> affinity_;
  /// Session → decode replica that last hosted it (RouteDecode locality).
  std::unordered_map<std::uint64_t, std::size_t> decode_affinity_;
};

}  // namespace liquid::cluster
