#include "cluster/cluster_sim.hpp"

#include <algorithm>
#include <limits>

namespace liquid::cluster {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

ClusterSimulator::ClusterSimulator(RoutePolicy policy,
                                   AutoscaleConfig autoscale, SloConfig slo,
                                   RetryPolicy retry, DisaggConfig disagg)
    : router_(policy, slo),
      autoscale_(autoscale),
      retry_(retry),
      coordinator_(disagg),
      ttft_window_(autoscale.window_seconds) {}

std::size_t ClusterSimulator::AddReplica(const ReplicaSpec& spec) {
  Replica r;
  r.id = replicas_.size();
  r.spec = spec;
  r.engine = std::make_unique<serving::ServingEngine>(spec.hw, spec.preset,
                                                      spec.model, spec.options);
  r.scheduler = std::make_unique<serving::ContinuousBatchScheduler>(
      *r.engine, spec.kv_pool_blocks, spec.block_tokens, spec.max_batch);
  if (!autoscale_spec_) autoscale_spec_ = spec;
  // A specialized replica arms role-aware routing — but only when the
  // interconnect can actually move KV; with an unusable link the fleet
  // serves unified no matter what the specs say (graceful degradation).
  if (spec.role != ReplicaRole::kUnified && coordinator_.model().Usable()) {
    router_.set_role_aware(true);
  }
  replicas_.push_back(std::move(r));
  return replicas_.back().id;
}

bool ClusterSimulator::RemoveReplica(std::size_t id) {
  if (id >= replicas_.size() || !replicas_[id].active) return false;
  if (ActiveReplicas() <= 1) return false;  // never strand in-flight work
  Replica& victim = replicas_[id];
  victim.active = false;
  router_.ForgetReplica(id);
  const double now = victim.scheduler->Now();
  // Unfinished work (with carried TTFT/progress state) moves to the least
  // loaded ROLE-COMPATIBLE survivor (a decode replica must not inherit
  // prefill work, nor a prefill replica decode work, while a better home is
  // alive); its scheduler clock is already on the shared clock.
  std::vector<serving::Request> orphans = victim.scheduler->Drain();
  for (const serving::Request& req : orphans) {
    const ReplicaRole wanted =
        req.prefill_only ? ReplicaRole::kPrefill : ReplicaRole::kDecode;
    std::size_t best = replicas_.size();
    bool best_compatible = false;
    for (const Replica& r : replicas_) {
      if (!r.active) continue;
      const bool compatible = !router_.role_aware() ||
                              r.spec.role == ReplicaRole::kUnified ||
                              r.spec.role == wanted;
      if (best == replicas_.size() || (compatible && !best_compatible) ||
          (compatible == best_compatible &&
           r.scheduler->outstanding() <
               replicas_[best].scheduler->outstanding())) {
        best = r.id;
        best_compatible = compatible;
      }
    }
    serving::Request moved = req;
    // Drain zeroed the credit (it was against the victim's pool); re-score
    // it against the new home's resident prefixes.
    moved.cached_prefix_blocks =
        replicas_[best]
            .scheduler->pool()
            .prefix_index()
            .SharedPrefixBlocks(moved.prefix.hashes);
    replicas_[best].scheduler->Submit(moved);
    ++replicas_[best].submitted;
    ++tally_.rerouted;
  }
  // Graceful removal loses nothing: in-flight migrations headed here are
  // re-planned onto a live decode home (or decode locally at the source)
  // instead of landing on a corpse and burning the retry budget.
  for (const DisaggCoordinator::Migration& m :
       coordinator_.TakeInboundFor(id)) {
    std::uint64_t session = 0;
    const auto meta = inflight_.find(m.continuation.id);
    if (meta != inflight_.end()) session = meta->second.session;
    const std::optional<std::size_t> dst =
        router_.RouteDecode(session, Views(0), m.kv.blocks + 1,
                            m.kv.prefix_hashes);
    if (dst && replicas_[*dst].active) {
      coordinator_.Reroute(m, *dst, std::max(now, m.start));
      ++tally_.rerouted;
      continue;
    }
    Replica& src = replicas_[m.src];
    if (src.active) {
      DeliverContinuation(src, m.continuation, m.kv, std::max(now, m.start));
      ++tally_.disagg.local_decode_fallbacks;
      ++tally_.rerouted;
      continue;
    }
    // Source gone too: the transfer has nowhere to land — genuine loss.
    ++tally_.lost_requests;
    tally_.wasted_tokens += static_cast<double>(m.continuation.progress);
    serving::TimedRequest retry;
    if (meta != inflight_.end()) {
      retry = meta->second;
    } else {
      retry.id = m.continuation.id;
      retry.arrival_seconds = m.continuation.arrival;
      retry.prompt_tokens = m.continuation.prompt_tokens - m.continuation.progress;
      retry.max_new_tokens = m.continuation.max_new_tokens + m.continuation.progress;
    }
    RetryLost(retry, now);
  }
  return true;
}

bool ClusterSimulator::KillReplica(std::size_t id, double now) {
  if (id >= replicas_.size() || !replicas_[id].active) return false;
  Replica& victim = replicas_[id];
  // Catch the victim up to the fleet clock first so work it would have
  // finished before the failure counts as completed, not lost — and so
  // prefills it already handed off migrate normally (their KV is staged on
  // the wire, not in the dying pool).
  victim.scheduler->StepUntil(now);
  HarvestCompletions();
  HarvestHandoffs();
  victim.active = false;
  victim.killed = true;
  router_.ForgetReplica(id);
  ++tally_.killed_replicas;

  const serving::ContinuousBatchScheduler::ForfeitedWork forfeit =
      victim.scheduler->Forfeit();
  tally_.lost_requests += forfeit.requests.size();
  tally_.wasted_tokens += forfeit.wasted_tokens;

  // Re-route storm: every lost request is re-submitted from scratch.  The
  // original TimedRequest (session/tenant intact) is replayed with its
  // original arrival time, so a retry's TTFT charges the failed attempt;
  // attempt counts the failures it survived.  The RetryPolicy meters the
  // storm: backoff delays the re-route, the budget caps it.
  for (const serving::Request& lost : forfeit.requests) {
    serving::TimedRequest retry;
    const auto meta = inflight_.find(lost.id);
    if (meta != inflight_.end()) {
      retry = meta->second;
    } else {
      retry.id = lost.id;
      retry.arrival_seconds = lost.arrival;
      retry.prompt_tokens = lost.prompt_tokens;
      retry.max_new_tokens = lost.max_new_tokens;
    }
    RetryLost(retry, now);
  }
  return true;
}

bool ClusterSimulator::DegradeReplica(std::size_t id, double slowdown_factor) {
  if (id >= replicas_.size() || !replicas_[id].active) return false;
  Replica& victim = replicas_[id];
  const bool was_degraded = victim.scheduler->slowdown() > 1.0;
  victim.scheduler->SetSlowdown(slowdown_factor);
  // Count replicas that ever degraded, not events (a second brown-out on
  // the same replica is still one degraded replica).
  if (!was_degraded && victim.scheduler->slowdown() > 1.0) {
    ++tally_.degraded_replicas;
  }
  return true;
}

void ClusterSimulator::RetryLost(serving::TimedRequest retry, double now) {
  ++retry.attempt;
  if (retry_.max_attempts > 0 && retry.attempt > retry_.max_attempts) {
    ++tally_.retries_exhausted;
    inflight_.erase(retry.id);
    return;
  }
  tally_.max_retry_attempts =
      std::max(tally_.max_retry_attempts, retry.attempt);
  ++tally_.retried_requests;
  if (retry_.base_backoff_seconds > 0) {
    const std::uint32_t exponent = std::min(retry.attempt - 1, 20u);
    const double delay = retry_.base_backoff_seconds *
                         static_cast<double>(std::uint64_t{1} << exponent);
    pending_retries_.push_back({now + delay, retry});
  } else {
    RouteOne(retry);
  }
}

void ClusterSimulator::AdvanceTo(double deadline) {
  for (Replica& r : replicas_) {
    if (r.active) r.scheduler->StepUntil(deadline);
  }
  HarvestCompletions();
  HarvestHandoffs();
}

void ClusterSimulator::HarvestCompletions() {
  for (Replica& r : replicas_) {
    const std::vector<serving::RequestTiming>& done =
        r.scheduler->completions();
    for (; r.harvested < done.size(); ++r.harvested) {
      const serving::RequestTiming& t = done[r.harvested];
      ttft_window_.Add(t.finish, t.Ttft());
      inflight_.erase(t.id);
    }
    const std::vector<serving::SeqId>& dropped = r.scheduler->dropped_ids();
    for (; r.drops_harvested < dropped.size(); ++r.drops_harvested) {
      inflight_.erase(dropped[r.drops_harvested]);
    }
  }
}

void ClusterSimulator::HarvestHandoffs() {
  for (Replica& r : replicas_) {
    const std::vector<serving::PrefillHandoff>& handoffs =
        r.scheduler->handoffs();
    for (; r.handoffs_harvested < handoffs.size(); ++r.handoffs_harvested) {
      PlanHandoff(r, handoffs[r.handoffs_harvested]);
    }
  }
}

void ClusterSimulator::PlanHandoff(Replica& src,
                                   const serving::PrefillHandoff& handoff) {
  std::uint64_t session = 0;
  const auto meta = inflight_.find(handoff.request.id);
  if (meta != inflight_.end()) session = meta->second.session;

  std::optional<std::size_t> dst;
  if (coordinator_.model().Usable()) {
    // Decode placement sees the migrating KV's real identity: the hashes
    // ride the export, so a prefix-aware preset scores shared resident
    // blocks at each candidate, not just session stickiness.
    dst = router_.RouteDecode(session, Views(0), handoff.kv.blocks + 1,
                              handoff.kv.prefix_hashes);
  }
  if (dst && *dst == src.id) {
    // The best decode home is this very replica (it can happen when a
    // unified replica hosts a handed-off prefill): plain local delivery,
    // nothing crosses the interconnect.
    DeliverContinuation(src, handoff.request, handoff.kv, handoff.ready);
    return;
  }
  if (dst) {
    const double bytes = KvMigrationModel::KvBytes(
        src.spec.model, src.spec.preset.kv_bits, handoff.kv.tokens);
    if (coordinator_.Begin(handoff, src.id, *dst, bytes)) return;
  }
  // No live decode-capable target, unusable interconnect, or a stall over
  // the migration budget: decode locally on the prefill replica — this
  // request is served unified.
  ++tally_.disagg.local_decode_fallbacks;
  DeliverContinuation(src, handoff.request, handoff.kv, handoff.ready);
}

void ClusterSimulator::LandMigrationsThrough(double deadline) {
  for (const DisaggCoordinator::Migration& m :
       coordinator_.TakeArrivalsThrough(deadline)) {
    Replica& dst = replicas_[m.dst];
    if (!dst.active) {
      // The target died mid-transfer: the continuation is lost exactly like
      // in-flight work on a killed replica, and re-enters the same retry
      // path (its generated-so-far token is wasted work).
      ++tally_.disagg.target_deaths;
      ++tally_.lost_requests;
      tally_.wasted_tokens += static_cast<double>(m.continuation.progress);
      serving::TimedRequest retry;
      const auto meta = inflight_.find(m.continuation.id);
      if (meta != inflight_.end()) {
        retry = meta->second;
      } else {
        retry.id = m.continuation.id;
        retry.arrival_seconds = m.continuation.arrival;
        retry.prompt_tokens =
            m.continuation.prompt_tokens - m.continuation.progress;
        retry.max_new_tokens =
            m.continuation.max_new_tokens + m.continuation.progress;
      }
      RetryLost(retry, m.arrive);
      continue;
    }
    ++dst.submitted;
    ++tally_.disagg.migrated_requests;
    tally_.disagg.migrated_kv_bytes += m.bytes;
    migration_seconds_.push_back(m.arrive - m.start);
    migrated_ids_.insert(m.continuation.id);
    DeliverContinuation(dst, m.continuation, m.kv, m.arrive);
  }
}

void ClusterSimulator::DeliverContinuation(Replica& dst,
                                           serving::Request continuation,
                                           const serving::KvExport& kv,
                                           double ready) {
  continuation.ready = ready;
  if (dst.scheduler->AcceptMigrated(continuation, kv)) return;
  // The pool cannot hold the imported KV right now: reset to the original
  // request and recompute the prefill on `dst` — the already-generated first
  // token is wasted work.
  ++tally_.disagg.import_ooms;
  tally_.wasted_tokens += static_cast<double>(continuation.progress);
  serving::Request fresh;
  fresh.id = continuation.id;
  fresh.prompt_tokens = continuation.prompt_tokens - continuation.progress;
  fresh.max_new_tokens = continuation.max_new_tokens + continuation.progress;
  fresh.arrival = continuation.arrival;
  fresh.ready = ready;
  fresh.prefix = continuation.prefix;
  fresh.cached_prefix_blocks =
      dst.scheduler->pool().prefix_index().SharedPrefixBlocks(
          fresh.prefix.hashes);
  dst.scheduler->Submit(fresh);
}

void ClusterSimulator::ReleaseRetriesThrough(double deadline) {
  for (;;) {
    std::size_t next = pending_retries_.size();
    for (std::size_t i = 0; i < pending_retries_.size(); ++i) {
      if (pending_retries_[i].due > deadline) continue;
      if (next == pending_retries_.size() ||
          pending_retries_[i].due < pending_retries_[next].due ||
          (pending_retries_[i].due == pending_retries_[next].due &&
           pending_retries_[i].request.id < pending_retries_[next].request.id)) {
        next = i;
      }
    }
    if (next == pending_retries_.size()) return;
    const PendingRetry retry = pending_retries_[next];
    pending_retries_.erase(pending_retries_.begin() +
                           static_cast<std::ptrdiff_t>(next));
    RouteOne(retry.request);
  }
}

std::vector<ReplicaView> ClusterSimulator::Views(
    std::size_t prompt_tokens,
    const serving::PrefixSignature* signature) const {
  // PredictTtft walks each replica's waiting queue; only pay for it when
  // admission control actually reads the estimate.
  const bool want_estimate = router_.slo().ttft_budget > 0;
  std::vector<ReplicaView> views(replicas_.size());
  for (const Replica& r : replicas_) {
    ReplicaView& v = views[r.id];
    v.alive = r.active;
    v.role = r.spec.role;
    v.outstanding = r.scheduler->outstanding();
    v.free_kv_blocks = r.scheduler->pool().free_blocks();
    v.total_kv_blocks = r.scheduler->pool().total_blocks();
    v.prefix_index = &r.scheduler->pool().prefix_index();
    if (r.active && want_estimate) {
      // Convert overlap to tokens with the SIGNATURE's block size (it need
      // not match this pool's granularity).
      const std::size_t cached_tokens =
          signature == nullptr
              ? 0
              : v.prefix_index->SharedPrefixBlocks(signature->hashes) *
                    static_cast<std::size_t>(signature->block_tokens);
      v.est_ttft_seconds =
          r.scheduler->PredictTtft(prompt_tokens, cached_tokens);
    }
  }
  return views;
}

std::optional<std::size_t> ClusterSimulator::RouteOne(
    const serving::TimedRequest& request) {
  const RouteDecision decision =
      router_.Decide(request, Views(request.prompt_tokens, &request.prefix));
  switch (decision.outcome) {
    case RouteOutcome::kNoReplica:
      ++tally_.dropped;  // no alive replica; folded into FleetStats.dropped
      inflight_.erase(request.id);
      return std::nullopt;
    case RouteOutcome::kRejected:
      ++tally_.rejected_requests;
      inflight_.erase(request.id);
      return std::nullopt;
    case RouteOutcome::kRouted:
      break;
  }
  const std::size_t dest = *decision.replica;
  serving::Request req;
  req.id = request.id;
  req.prompt_tokens = request.prompt_tokens;
  req.max_new_tokens = request.max_new_tokens;
  req.arrival = request.arrival_seconds;
  req.prefix = request.prefix;
  // Prefix-cache credit: however the destination was chosen, whatever
  // leading signature blocks its pool already holds skip their prefill
  // compute there (locality pays even under prefix-blind presets — the
  // prefix_aware preset just steers toward it).
  req.cached_prefix_blocks =
      replicas_[dest].scheduler->pool().prefix_index().SharedPrefixBlocks(
          request.prefix.hashes);
  // A prompt landing on a prefill-specialized replica runs to its first
  // token only; the DisaggCoordinator moves its KV to a decode replica.
  if (router_.role_aware() &&
      replicas_[dest].spec.role == ReplicaRole::kPrefill) {
    req.prefill_only = true;
  }
  replicas_[dest].scheduler->Submit(req);
  ++replicas_[dest].submitted;
  inflight_[request.id] = request;
  return dest;
}

std::optional<std::size_t> ClusterSimulator::SubmitAndRoute(
    const serving::TimedRequest& request) {
  ++tally_.submitted;
  return RouteOne(request);
}

std::size_t ClusterSimulator::ActiveReplicas() const {
  std::size_t n = 0;
  for (const Replica& r : replicas_) n += r.active ? 1 : 0;
  return n;
}

std::size_t ClusterSimulator::TotalOutstanding() const {
  std::size_t n = 0;
  for (const Replica& r : replicas_) {
    if (r.active) n += r.scheduler->outstanding();
  }
  return n;
}

void ClusterSimulator::MaybeAutoscale(double now) {
  if (!autoscale_.enabled || !autoscale_spec_) return;
  if (now - last_scale_event_ < autoscale_.cooldown_seconds) return;
  const std::size_t active = ActiveReplicas();
  if (active == 0) return;

  bool scale_up = false, scale_down = false;
  if (autoscale_.signal == AutoscaleSignal::kQueueDepth) {
    const double mean_queue = static_cast<double>(TotalOutstanding()) /
                              static_cast<double>(active);
    scale_up = mean_queue > autoscale_.queue_high;
    scale_down = mean_queue < autoscale_.queue_low;
  } else {  // kTailTtft: windowed p99 of observed TTFTs
    if (ttft_window_.Count(now) < autoscale_.min_window_samples) return;
    const double p99 = ttft_window_.Percentile(now, 99);
    scale_up = p99 > autoscale_.ttft_p99_high;
    scale_down = p99 < autoscale_.ttft_p99_low;
  }

  if (scale_up && active < autoscale_.max_replicas) {
    const std::size_t id = AddReplica(*autoscale_spec_);
    replicas_[id].scheduler->StepUntil(now);  // join the shared clock
    ++tally_.scale_ups;
    last_scale_event_ = now;
  } else if (scale_down && active > autoscale_.min_replicas) {
    // Retire the least-loaded replica.
    std::size_t victim = replicas_.size();
    for (const Replica& r : replicas_) {
      if (!r.active) continue;
      if (victim == replicas_.size() ||
          r.scheduler->outstanding() <
              replicas_[victim].scheduler->outstanding()) {
        victim = r.id;
      }
    }
    if (victim < replicas_.size() && RemoveReplica(victim)) {
      ++tally_.scale_downs;
      last_scale_event_ = now;
    }
  }
}

void ClusterSimulator::ProcessEventsThrough(double deadline) {
  // Fire kills, degradations, migration landings and backoff retries in
  // time order up to the deadline.  The schedules are small; a scan per
  // event keeps insertion order-insensitive.
  for (;;) {
    double t_kill = kInf;
    std::size_t kill_idx = kill_schedule_.size();
    for (std::size_t i = 0; i < kill_schedule_.size(); ++i) {
      if (kill_schedule_[i].time > deadline) continue;
      if (kill_schedule_[i].time < t_kill) {
        t_kill = kill_schedule_[i].time;
        kill_idx = i;
      }
    }
    double t_degrade = kInf;
    std::size_t degrade_idx = degrade_schedule_.size();
    for (std::size_t i = 0; i < degrade_schedule_.size(); ++i) {
      if (degrade_schedule_[i].time > deadline) continue;
      if (degrade_schedule_[i].time < t_degrade) {
        t_degrade = degrade_schedule_[i].time;
        degrade_idx = i;
      }
    }
    double t_mig = coordinator_.NextArrival().value_or(kInf);
    if (t_mig > deadline) t_mig = kInf;
    double t_retry = kInf;
    for (const PendingRetry& p : pending_retries_) {
      if (p.due <= deadline) t_retry = std::min(t_retry, p.due);
    }
    const double t = std::min({t_kill, t_degrade, t_mig, t_retry});
    if (t == kInf) return;
    AdvanceTo(t);
    // Harvesting during AdvanceTo can commit fresh transfers whose arrival
    // is at or before t; land everything due — and release due retries —
    // BEFORE a same-instant kill, so a delivery that physically preceded
    // the failure is never misclassified as a target death.
    LandMigrationsThrough(t);
    ReleaseRetriesThrough(t);
    // A same-instant degrade fires before a kill: slowing a replica that is
    // about to die is a no-op either way, but the order is pinned for
    // determinism.
    if (t == t_degrade) {
      const DegradeEvent degrade = degrade_schedule_[degrade_idx];
      degrade_schedule_.erase(degrade_schedule_.begin() +
                              static_cast<std::ptrdiff_t>(degrade_idx));
      DegradeReplica(degrade.replica, degrade.slowdown_factor);
      continue;
    }
    if (t == t_kill) {
      const KillEvent kill = kill_schedule_[kill_idx];
      kill_schedule_.erase(kill_schedule_.begin() +
                           static_cast<std::ptrdiff_t>(kill_idx));
      KillReplica(kill.replica, kill.time);
    }
  }
}

void ClusterSimulator::DrainToQuiescence() {
  // Arrivals are done, but completion is no longer local to one replica: a
  // prefill finishing here spawns a migration landing there.  Iterate until
  // no replica has work and nothing is on the wire or waiting out a backoff.
  for (;;) {
    bool progressed = false;
    for (Replica& r : replicas_) {
      if (r.active && r.scheduler->HasWork()) {
        r.scheduler->RunToCompletion();
        progressed = true;
      }
    }
    HarvestCompletions();
    HarvestHandoffs();
    for (;;) {
      const double t_mig = coordinator_.NextArrival().value_or(kInf);
      double t_retry = kInf;
      for (const PendingRetry& p : pending_retries_) {
        t_retry = std::min(t_retry, p.due);
      }
      if (t_mig == kInf && t_retry == kInf) break;
      progressed = true;
      if (t_mig <= t_retry) {
        LandMigrationsThrough(t_mig);
      } else {
        ReleaseRetriesThrough(t_retry);
      }
    }
    if (!progressed) {
      bool residual = false;
      for (const Replica& r : replicas_) {
        residual |= r.active && r.scheduler->HasWork();
      }
      if (!residual) return;
    }
  }
}

FleetStats ClusterSimulator::Run(
    const std::vector<serving::TimedRequest>& trace) {
  std::vector<serving::TimedRequest> sorted = trace;
  std::sort(sorted.begin(), sorted.end(),
            [](const serving::TimedRequest& a, const serving::TimedRequest& b) {
              return a.arrival_seconds != b.arrival_seconds
                         ? a.arrival_seconds < b.arrival_seconds
                         : a.id < b.id;
            });

  for (const serving::TimedRequest& request : sorted) {
    ProcessEventsThrough(request.arrival_seconds);
    AdvanceTo(request.arrival_seconds);
    MaybeAutoscale(request.arrival_seconds);
    SubmitAndRoute(request);
  }
  // Kills scheduled past the last arrival still fire (the fleet keeps
  // working off its backlog, so there is work to lose), as do migrations
  // and backoff retries already on the calendar.
  ProcessEventsThrough(kInf);
  DrainToQuiescence();

  FleetStats stats = tally_;
  stats.replicas_final = ActiveReplicas();
  stats.disagg.in_migration = coordinator_.InFlight();
  stats.disagg.migration_seconds = SummarizePercentiles(migration_seconds_);
  std::vector<serving::RequestTiming> timings;
  std::vector<double> migrated_tpot;
  for (const Replica& r : replicas_) {
    ReplicaReport report;
    report.id = r.id;
    report.label = r.spec.Label();
    report.role = r.spec.role;
    report.active = r.active;
    report.killed = r.killed;
    report.stats = r.scheduler->stats();
    report.submitted = r.submitted;
    report.dollars_per_hour = r.spec.dollars_per_hour;
    stats.replicas.push_back(report);
    stats.disagg.prefill_handoffs += report.stats.prefill_handoffs;
    if (r.active) {
      stats.disagg.prefill_replicas +=
          r.spec.role == ReplicaRole::kPrefill ? 1 : 0;
      stats.disagg.decode_replicas +=
          r.spec.role == ReplicaRole::kDecode ? 1 : 0;
    }
    const std::vector<serving::RequestTiming>& done =
        r.scheduler->completions();
    timings.insert(timings.end(), done.begin(), done.end());
    for (const serving::RequestTiming& t : done) {
      if (t.generated > 1 && migrated_ids_.contains(t.id)) {
        migrated_tpot.push_back(t.Tpot());
      }
    }
  }
  stats.disagg.migrated_tpot = SummarizePercentiles(migrated_tpot);
  const std::size_t routing_drops = stats.dropped;  // kept by Finalize rescan
  FinalizeFleetStats(timings, stats);
  stats.dropped += routing_drops;
  return stats;
}

}  // namespace liquid::cluster
