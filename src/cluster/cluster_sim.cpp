#include "cluster/cluster_sim.hpp"

#include <algorithm>
#include <limits>
#include <thread>

#include "obs/prof/wall_profiler.hpp"
#include "util/thread_pool.hpp"
#include "util/wall_timer.hpp"

namespace liquid::cluster {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

ClusterSimulator::ClusterSimulator(RoutePolicy policy,
                                   AutoscaleConfig autoscale, SloConfig slo,
                                   RetryPolicy retry, DisaggConfig disagg)
    : router_(policy, slo),
      autoscale_(autoscale),
      retry_(retry),
      coordinator_(disagg),
      ttft_window_(autoscale.window_seconds),
      tpot_window_(autoscale.window_seconds),
      tokens_window_(autoscale.cost_window_seconds) {
  pool_runtime_.reserve(autoscale_.pools.size());
  for (const AutoscalePool& pool : autoscale_.pools) {
    pool_runtime_.push_back({SlidingWindowStats(pool.window_seconds),
                             SlidingWindowStats(pool.window_seconds)});
  }
  tick_armed_ = autoscale_.enabled && autoscale_.tick_seconds > 0;
  next_autoscale_tick_ = autoscale_.tick_seconds;
}

ClusterSimulator::~ClusterSimulator() = default;

void ClusterSimulator::SetThreads(std::size_t threads) {
  util::RoleGuard role(coordinator_role_);
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  threads_ = threads;
  pool_.reset();
  if (threads_ > 1) pool_ = std::make_unique<util::ThreadPool>(threads_);
  // Re-aim every scheduler's trace hooks: at a private per-replica shard in
  // parallel mode, back at the shared recorder in single-threaded mode.
  for (Replica& r : replicas_) {
    r.scheduler->SetTrace(ReplicaTraceSink(r.id), r.id);
  }
}

obs::TraceRecorder* ClusterSimulator::ReplicaTraceSink(std::size_t id) {
  if (trace_ == nullptr) return nullptr;
  if (pool_ == nullptr) return trace_;
  if (trace_shards_.size() <= id) trace_shards_.resize(id + 1);
  if (!trace_shards_[id]) {
    trace_shards_[id] = std::make_unique<obs::TraceRecorder>();
  }
  return trace_shards_[id].get();
}

void ClusterSimulator::MergeTraceShards() {
  if (trace_ == nullptr || trace_shards_.empty()) return;
  std::vector<obs::TraceRecorder*> shards;
  shards.reserve(trace_shards_.size());
  for (const auto& shard : trace_shards_) {
    if (shard && !shard->empty()) shards.push_back(shard.get());
  }
  if (!shards.empty()) trace_->MergeShards(shards);
}

std::size_t ClusterSimulator::PoolFor(ReplicaRole role) const {
  for (std::size_t i = 0; i < autoscale_.pools.size(); ++i) {
    if (autoscale_.pools[i].role == role) return i;
  }
  return kNoPool;
}

std::size_t ClusterSimulator::AddReplicaImpl(const ReplicaSpec& spec) {
  Replica r;
  r.id = replicas_.size();
  r.spec = spec;
  r.pool = PoolFor(spec.role);
  r.engine = std::make_unique<serving::ServingEngine>(spec.hw, spec.preset,
                                                      spec.model, spec.options);
  r.scheduler = std::make_unique<serving::ContinuousBatchScheduler>(
      *r.engine, spec.kv_pool_blocks, spec.block_tokens, spec.max_batch);
  if (!autoscale_spec_) autoscale_spec_ = spec;
  // A specialized replica arms role-aware routing — but only when the
  // interconnect can actually move KV; with an unusable link the fleet
  // serves unified no matter what the specs say (graceful degradation).
  if (spec.role != ReplicaRole::kUnified && coordinator_.model().Usable()) {
    router_.set_role_aware(true);
  }
  replicas_.push_back(std::move(r));
  WireReplicaTelemetry(replicas_.back());
  return replicas_.back().id;
}

namespace {

/// Role index for the role-striped metric series (order pinned by MetricIds).
std::size_t RoleIndex(ReplicaRole role) {
  switch (role) {
    case ReplicaRole::kUnified: return 0;
    case ReplicaRole::kPrefill: return 1;
    case ReplicaRole::kDecode: return 2;
  }
  return 0;
}

}  // namespace

void ClusterSimulator::WireReplicaTelemetry(Replica& replica) {
  if (trace_ == nullptr) return;
  replica.scheduler->SetTrace(ReplicaTraceSink(replica.id), replica.id);
  const std::int32_t pid = obs::ReplicaPid(replica.id);
  std::string name = "replica " + std::to_string(replica.id) + " " +
                     replica.spec.Label();
  if (replica.spec.role != ReplicaRole::kUnified) {
    name += std::string(" [") + ToString(replica.spec.role) + "]";
  }
  trace_->DeclareProcess(pid, std::move(name), pid);
  trace_->DeclareThread(pid, obs::kTidEngine, "engine");
  trace_->DeclareThread(pid, obs::kTidLifecycle, "lifecycle");
}

void ClusterSimulator::AttachTelemetry(obs::TraceRecorder* trace,
                                       obs::MetricsRegistry* metrics) {
  util::RoleGuard role(coordinator_role_);
  trace_ = trace;
  coordinator_.SetTrace(trace);
  if (trace_ != nullptr) {
    trace_->DeclareProcess(obs::kFleetPid, "fleet", 0);
    trace_->DeclareThread(obs::kFleetPid, obs::kTidRouter, "router");
    trace_->DeclareThread(obs::kFleetPid, obs::kTidAutoscaler, "autoscaler");
    trace_->DeclareThread(obs::kFleetPid, obs::kTidInterconnect,
                          "interconnect");
    trace_->DeclareThread(obs::kFleetPid, obs::kTidChaos, "chaos");
    for (Replica& r : replicas_) WireReplicaTelemetry(r);
  } else {
    for (Replica& r : replicas_) r.scheduler->SetTrace(nullptr, r.id);
  }
  metrics_ = metrics;
  if (metrics_ != nullptr) RegisterMetrics();
}

void ClusterSimulator::RegisterMetrics() {
  using Kind = obs::MetricsRegistry::Kind;
  static constexpr const char* kRoles[3] = {"unified", "prefill", "decode"};
  for (std::size_t i = 0; i < 3; ++i) {
    const std::string role = kRoles[i];
    metric_ids_.replicas[i] =
        metrics_->Register("replicas_" + role, Kind::kGauge);
    metric_ids_.queue_depth[i] =
        metrics_->Register("queue_depth_" + role, Kind::kGauge);
    metric_ids_.kv_used[i] =
        metrics_->Register("kv_used_fraction_" + role, Kind::kGauge);
  }
  metric_ids_.ttft_p99 = metrics_->Register("ttft_p99_window", Kind::kGauge);
  metric_ids_.tpot_p99 = metrics_->Register("tpot_p99_window", Kind::kGauge);
  metric_ids_.tokens_per_s =
      metrics_->Register("tokens_per_s_window", Kind::kGauge);
  metric_ids_.inflight_migrations =
      metrics_->Register("inflight_migrations", Kind::kGauge);
  metric_ids_.pending_retries =
      metrics_->Register("pending_retries", Kind::kGauge);
  metric_ids_.dollars_per_hour =
      metrics_->Register("dollars_per_hour", Kind::kGauge);
  metric_ids_.completed = metrics_->Register("completed", Kind::kCounter);
  metric_ids_.rejected = metrics_->Register("rejected", Kind::kCounter);
  metric_ids_.lost = metrics_->Register("lost", Kind::kCounter);
  metric_ids_.retried = metrics_->Register("retried", Kind::kCounter);
  metric_ids_.migrated = metrics_->Register("migrated", Kind::kCounter);
  metric_ids_.local_fallbacks =
      metrics_->Register("local_decode_fallbacks", Kind::kCounter);
  ttft_hist_ =
      &metrics_->RegisterHistogram("ttft_seconds", obs::LatencyBuckets());
  tpot_hist_ =
      &metrics_->RegisterHistogram("tpot_seconds", obs::LatencyBuckets());
}

void ClusterSimulator::SampleMetrics(double now) {
  if (metrics_ == nullptr) return;
  double replicas[3] = {}, depth[3] = {}, free_kv[3] = {}, total_kv[3] = {};
  double completed = 0, burn = 0;
  for (const Replica& r : replicas_) {
    completed += static_cast<double>(r.scheduler->stats().completed);
    if (!r.active) continue;
    const std::size_t role = RoleIndex(r.spec.role);
    replicas[role] += 1;
    depth[role] += static_cast<double>(r.scheduler->outstanding());
    free_kv[role] += static_cast<double>(r.scheduler->pool().free_blocks());
    total_kv[role] += static_cast<double>(r.scheduler->pool().total_blocks());
    burn += r.spec.dollars_per_hour;
  }
  for (std::size_t i = 0; i < 3; ++i) {
    metrics_->Set(metric_ids_.replicas[i], replicas[i]);
    metrics_->Set(metric_ids_.queue_depth[i], depth[i]);
    metrics_->Set(metric_ids_.kv_used[i],
                  total_kv[i] > 0 ? 1.0 - free_kv[i] / total_kv[i] : 0.0);
  }
  metrics_->Set(metric_ids_.ttft_p99,
                ttft_window_.Count(now) > 0 ? ttft_window_.Percentile(now, 99)
                                            : 0.0);
  metrics_->Set(metric_ids_.tpot_p99,
                tpot_window_.Count(now) > 0 ? tpot_window_.Percentile(now, 99)
                                            : 0.0);
  const double window = tokens_window_.window_seconds();
  const double tokens = tokens_window_.Mean(now) *
                        static_cast<double>(tokens_window_.Count(now));
  metrics_->Set(metric_ids_.tokens_per_s, window > 0 ? tokens / window : 0.0);
  metrics_->Set(metric_ids_.inflight_migrations,
                static_cast<double>(coordinator_.InFlight()));
  metrics_->Set(metric_ids_.pending_retries,
                static_cast<double>(pending_retries_.size()));
  metrics_->Set(metric_ids_.dollars_per_hour, burn);
  metrics_->Set(metric_ids_.completed, completed);
  metrics_->Set(metric_ids_.rejected,
                static_cast<double>(tally_.rejected_requests));
  metrics_->Set(metric_ids_.lost, static_cast<double>(tally_.lost_requests));
  metrics_->Set(metric_ids_.retried,
                static_cast<double>(tally_.retried_requests));
  metrics_->Set(metric_ids_.migrated,
                static_cast<double>(tally_.disagg.migrated_requests));
  metrics_->Set(metric_ids_.local_fallbacks,
                static_cast<double>(tally_.disagg.local_decode_fallbacks));
  metrics_->Sample(now);
}

bool ClusterSimulator::RemoveReplicaImpl(std::size_t id) {
  if (id >= replicas_.size() || !replicas_[id].active) return false;
  if (ActiveReplicasImpl() <= 1) return false;  // never strand in-flight work
  Replica& victim = replicas_[id];
  victim.active = false;
  router_.ForgetReplica(id);
  const double now = victim.scheduler->Now();
  victim.retired_at = now;  // graceful retirement stops the billing meter
  // Unfinished work (with carried TTFT/progress state) moves to the least
  // loaded ROLE-COMPATIBLE survivor (a decode replica must not inherit
  // prefill work, nor a prefill replica decode work, while a better home is
  // alive); its scheduler clock is already on the shared clock.
  std::vector<serving::Request> orphans = victim.scheduler->Drain();
  for (const serving::Request& req : orphans) {
    const ReplicaRole wanted =
        req.prefill_only ? ReplicaRole::kPrefill : ReplicaRole::kDecode;
    std::size_t best = replicas_.size();
    bool best_compatible = false;
    for (const Replica& r : replicas_) {
      if (!r.active) continue;
      const bool compatible = !router_.role_aware() ||
                              r.spec.role == ReplicaRole::kUnified ||
                              r.spec.role == wanted;
      if (best == replicas_.size() || (compatible && !best_compatible) ||
          (compatible == best_compatible &&
           r.scheduler->outstanding() <
               replicas_[best].scheduler->outstanding())) {
        best = r.id;
        best_compatible = compatible;
      }
    }
    serving::Request moved = req;
    // Drain zeroed the credit (it was against the victim's pool); re-score
    // it against the new home's resident prefixes.
    moved.cached_prefix_blocks =
        replicas_[best]
            .scheduler->pool()
            .prefix_index()
            .SharedPrefixBlocks(moved.prefix.hashes);
    replicas_[best].scheduler->Submit(moved);
    ++replicas_[best].submitted;
    ++tally_.rerouted;
  }
  // Graceful removal loses nothing: in-flight migrations headed here are
  // re-planned onto a live decode home (or decode locally at the source)
  // instead of landing on a corpse and burning the retry budget.
  for (const DisaggCoordinator::Migration& m :
       coordinator_.TakeInboundFor(id)) {
    std::uint64_t session = 0;
    const auto meta = inflight_.find(m.continuation.id);
    if (meta != inflight_.end()) session = meta->second.session;
    const std::optional<std::size_t> dst =
        router_.RouteDecode(session, Views(0), m.kv.blocks + 1,
                            m.kv.prefix_hashes);
    if (dst && replicas_[*dst].active) {
      coordinator_.Reroute(m, *dst, std::max(now, m.start));
      ++tally_.rerouted;
      continue;
    }
    // No reroute target: the migrate stage ends here either way (local
    // delivery on the source or genuine loss).
    if (trace_ != nullptr) {
      trace_->AsyncEnd(obs::TraceEventType::kStageMigrate, now,
                       m.continuation.id);
    }
    Replica& src = replicas_[m.src];
    if (src.active) {
      DeliverContinuation(src, m.continuation, m.kv, std::max(now, m.start));
      ++tally_.disagg.local_decode_fallbacks;
      ++tally_.rerouted;
      continue;
    }
    // Source gone too: the transfer has nowhere to land — genuine loss.
    ++tally_.lost_requests;
    tally_.wasted_tokens += static_cast<double>(m.continuation.progress);
    serving::TimedRequest retry;
    if (meta != inflight_.end()) {
      retry = meta->second;
    } else {
      retry.id = m.continuation.id;
      retry.arrival_seconds = m.continuation.arrival;
      retry.prompt_tokens = m.continuation.prompt_tokens - m.continuation.progress;
      retry.max_new_tokens = m.continuation.max_new_tokens + m.continuation.progress;
    }
    RetryLost(retry, now);
  }
  return true;
}

bool ClusterSimulator::KillReplicaImpl(std::size_t id, double now) {
  if (id >= replicas_.size() || !replicas_[id].active) return false;
  LIQUID_PROF_SCOPE("sim/events/kill");
  ++fleet_events_;
  Replica& victim = replicas_[id];
  // Catch the victim up to the fleet clock first so work it would have
  // finished before the failure counts as completed, not lost — and so
  // prefills it already handed off migrate normally (their KV is staged on
  // the wire, not in the dying pool).
  victim.scheduler->StepUntil(now);
  HarvestCompletions();
  HarvestHandoffs();
  victim.active = false;
  victim.killed = true;
  router_.ForgetReplica(id);
  ++tally_.killed_replicas;

  const serving::ContinuousBatchScheduler::ForfeitedWork forfeit =
      victim.scheduler->Forfeit();
  tally_.lost_requests += forfeit.requests.size();
  tally_.wasted_tokens += forfeit.wasted_tokens;
  if (trace_ != nullptr) {
    trace_->Instant(obs::TraceEventType::kKill, now, obs::kFleetPid,
                    obs::kTidChaos, id, static_cast<double>(id),
                    static_cast<double>(forfeit.requests.size()));
  }

  // Re-route storm: every lost request is re-submitted from scratch.  The
  // original TimedRequest (session/tenant intact) is replayed with its
  // original arrival time, so a retry's TTFT charges the failed attempt;
  // attempt counts the failures it survived.  The RetryPolicy meters the
  // storm: backoff delays the re-route, the budget caps it.
  for (const serving::Request& lost : forfeit.requests) {
    serving::TimedRequest retry;
    const auto meta = inflight_.find(lost.id);
    if (meta != inflight_.end()) {
      retry = meta->second;
    } else {
      retry.id = lost.id;
      retry.arrival_seconds = lost.arrival;
      retry.prompt_tokens = lost.prompt_tokens;
      retry.max_new_tokens = lost.max_new_tokens;
    }
    RetryLost(retry, now);
  }
  return true;
}

bool ClusterSimulator::DegradeReplicaImpl(std::size_t id,
                                       double slowdown_factor) {
  if (id >= replicas_.size() || !replicas_[id].active) return false;
  LIQUID_PROF_SCOPE("sim/events/degrade");
  ++fleet_events_;
  Replica& victim = replicas_[id];
  const bool was_degraded = victim.scheduler->slowdown() > 1.0;
  victim.scheduler->SetSlowdown(slowdown_factor);
  if (trace_ != nullptr) {
    trace_->Instant(obs::TraceEventType::kDegrade, FleetNow(), obs::kFleetPid,
                    obs::kTidChaos, id, static_cast<double>(id),
                    victim.scheduler->slowdown());
  }
  // Count replicas that ever degraded, not events (a second brown-out on
  // the same replica is still one degraded replica).
  if (!was_degraded && victim.scheduler->slowdown() > 1.0) {
    ++tally_.degraded_replicas;
  }
  return true;
}

void ClusterSimulator::RetryLost(serving::TimedRequest retry, double now) {
  ++retry.attempt;
  if (retry_.max_attempts > 0 && retry.attempt > retry_.max_attempts) {
    if (trace_ != nullptr) {
      trace_->Instant(obs::TraceEventType::kRetriesExhausted, now,
                      obs::kFleetPid, obs::kTidChaos, retry.id,
                      static_cast<double>(retry.attempt));
    }
    ++tally_.retries_exhausted;
    inflight_.erase(retry.id);
    return;
  }
  tally_.max_retry_attempts =
      std::max(tally_.max_retry_attempts, retry.attempt);
  ++tally_.retried_requests;
  if (retry_.base_backoff_seconds > 0) {
    const std::uint32_t exponent = std::min(retry.attempt - 1, 20u);
    const double delay = retry_.base_backoff_seconds *
                         static_cast<double>(std::uint64_t{1} << exponent);
    if (trace_ != nullptr) {
      trace_->Instant(obs::TraceEventType::kRetryScheduled, now,
                      obs::kFleetPid, obs::kTidChaos, retry.id,
                      static_cast<double>(retry.attempt), now + delay);
    }
    pending_retries_.push_back({now + delay, retry});
    ArmAutoscaleTick();  // the release is future work the tick must outlive
  } else {
    RouteOne(retry);
  }
}

void ClusterSimulator::AdvanceToImpl(double deadline) {
  LIQUID_PROF_SCOPE("sim/advance");
  StepReplicasTo(deadline);
  HarvestCompletions();
  HarvestHandoffs();
}

void ClusterSimulator::StepReplicasTo(double deadline) {
  if (pool_ == nullptr) {
    for (Replica& r : replicas_) {
      if (r.active) r.scheduler->StepUntil(deadline);
    }
    return;
  }
  // Parallel fan-out.  Each task runs one replica's private scheduler+engine
  // to the barrier — no shared mutable state (trace hooks write the
  // replica's own shard; GEMM counters are relaxed atomics) — so the
  // post-barrier fleet state is bit-identical to the serial loop's.  Idle
  // replicas only need their clock snapped to the deadline; do that inline
  // instead of paying a task round-trip, and run one busy replica on this
  // thread so the coordinator helps instead of just waiting.
  busy_scratch_.clear();
  for (Replica& r : replicas_) {
    if (!r.active) continue;
    if (r.scheduler->HasWork()) {
      busy_scratch_.push_back(&r);
    } else {
      r.scheduler->StepUntil(deadline);
    }
  }
  if (busy_scratch_.size() <= 1) {
    for (Replica* r : busy_scratch_) r->scheduler->StepUntil(deadline);
    return;
  }
  for (std::size_t i = 1; i < busy_scratch_.size(); ++i) {
    serving::ContinuousBatchScheduler* scheduler = busy_scratch_[i]->scheduler.get();
    pool_->Submit([scheduler, deadline] { scheduler->StepUntil(deadline); });
  }
  busy_scratch_.front()->scheduler->StepUntil(deadline);
  pool_->WaitIdle();
}

void ClusterSimulator::HarvestCompletions() {
  LIQUID_PROF_SCOPE("sim/harvest");
  for (Replica& r : replicas_) {
    const std::vector<serving::RequestTiming>& done =
        r.scheduler->completions();
    for (; r.harvested < done.size(); ++r.harvested) {
      const serving::RequestTiming& t = done[r.harvested];
      work_observed_ = true;
      ttft_window_.Add(t.finish, t.Ttft());
      tokens_window_.Add(t.finish, static_cast<double>(t.generated));
      if (t.generated > 1) tpot_window_.Add(t.finish, t.Tpot());
      if (metrics_ != nullptr) {
        ttft_hist_->Add(t.Ttft());
        if (t.generated > 1) tpot_hist_->Add(t.Tpot());
      }
      if (r.pool != kNoPool) {
        // Role-typed pools watch their own streams: the TTFT window feeds
        // prefill-style signals, the TPOT window decode-style ones.
        PoolRuntime& runtime = pool_runtime_[r.pool];
        runtime.ttft_window.Add(t.finish, t.Ttft());
        if (t.generated > 1) runtime.tpot_window.Add(t.finish, t.Tpot());
      }
      inflight_.erase(t.id);
    }
    const std::vector<serving::SeqId>& dropped = r.scheduler->dropped_ids();
    for (; r.drops_harvested < dropped.size(); ++r.drops_harvested) {
      inflight_.erase(dropped[r.drops_harvested]);
    }
  }
}

void ClusterSimulator::HarvestHandoffs() {
  for (Replica& r : replicas_) {
    const std::vector<serving::PrefillHandoff>& handoffs =
        r.scheduler->handoffs();
    for (; r.handoffs_harvested < handoffs.size(); ++r.handoffs_harvested) {
      work_observed_ = true;
      PlanHandoff(r, handoffs[r.handoffs_harvested]);
    }
  }
}

void ClusterSimulator::PlanHandoff(Replica& src,
                                   const serving::PrefillHandoff& handoff) {
  LIQUID_PROF_SCOPE("disagg/plan_handoff");
  // A prefill-pool request never completes on its pool; its TTFT is decided
  // right here, when the first token leaves the prefill replica.  Feed the
  // pool's signal window from the handoff so kTailTtft sees prefill pain.
  if (src.pool != kNoPool) {
    pool_runtime_[src.pool].ttft_window.Add(
        handoff.ready, handoff.ready - handoff.request.arrival);
  }
  std::uint64_t session = 0;
  const auto meta = inflight_.find(handoff.request.id);
  if (meta != inflight_.end()) session = meta->second.session;

  std::optional<std::size_t> dst;
  if (coordinator_.model().Usable()) {
    // Decode placement sees the migrating KV's real identity: the hashes
    // ride the export, so a prefix-aware preset scores shared resident
    // blocks at each candidate, not just session stickiness.
    dst = router_.RouteDecode(session, Views(0), handoff.kv.blocks + 1,
                              handoff.kv.prefix_hashes);
  }
  if (dst && *dst == src.id) {
    // The best decode home is this very replica (it can happen when a
    // unified replica hosts a handed-off prefill): plain local delivery,
    // nothing crosses the interconnect.
    DeliverContinuation(src, handoff.request, handoff.kv, handoff.ready);
    return;
  }
  if (dst) {
    const double bytes = KvMigrationModel::KvBytes(
        src.spec.model, src.spec.preset.kv_bits, handoff.kv.tokens);
    if (coordinator_.Begin(handoff, src.id, *dst, bytes)) return;
  }
  // No live decode-capable target, unusable interconnect, or a stall over
  // the migration budget: decode locally on the prefill replica — this
  // request is served unified.
  if (trace_ != nullptr) {
    trace_->Instant(obs::TraceEventType::kLocalFallback, handoff.ready,
                    obs::kFleetPid, obs::kTidInterconnect, handoff.request.id,
                    static_cast<double>(src.id));
  }
  ++tally_.disagg.local_decode_fallbacks;
  DeliverContinuation(src, handoff.request, handoff.kv, handoff.ready);
}

void ClusterSimulator::LandMigrationsThrough(double deadline) {
  LIQUID_PROF_SCOPE("sim/events/migration_land");
  for (const DisaggCoordinator::Migration& m :
       coordinator_.TakeArrivalsThrough(deadline)) {
    ++fleet_events_;
    Replica& dst = replicas_[m.dst];
    if (!dst.active) {
      // The target died mid-transfer: the continuation is lost exactly like
      // in-flight work on a killed replica, and re-enters the same retry
      // path (its generated-so-far token is wasted work).
      if (trace_ != nullptr) {
        trace_->Instant(obs::TraceEventType::kTargetDeath, m.arrive,
                        obs::kFleetPid, obs::kTidInterconnect,
                        m.continuation.id, static_cast<double>(m.dst));
        trace_->AsyncEnd(obs::TraceEventType::kStageMigrate, m.arrive,
                         m.continuation.id);
      }
      ++tally_.disagg.target_deaths;
      ++tally_.lost_requests;
      tally_.wasted_tokens += static_cast<double>(m.continuation.progress);
      serving::TimedRequest retry;
      const auto meta = inflight_.find(m.continuation.id);
      if (meta != inflight_.end()) {
        retry = meta->second;
      } else {
        retry.id = m.continuation.id;
        retry.arrival_seconds = m.continuation.arrival;
        retry.prompt_tokens =
            m.continuation.prompt_tokens - m.continuation.progress;
        retry.max_new_tokens =
            m.continuation.max_new_tokens + m.continuation.progress;
      }
      RetryLost(retry, m.arrive);
      continue;
    }
    ++dst.submitted;
    ++tally_.disagg.migrated_requests;
    tally_.disagg.migrated_kv_bytes += m.bytes;
    migration_seconds_.push_back(m.arrive - m.start);
    migrated_ids_.insert(m.continuation.id);
    if (trace_ != nullptr) {
      trace_->Instant(obs::TraceEventType::kMigrationLand, m.arrive,
                      obs::kFleetPid, obs::kTidInterconnect, m.continuation.id,
                      static_cast<double>(m.src), static_cast<double>(m.dst),
                      m.arrive - m.start);
      trace_->AsyncEnd(obs::TraceEventType::kStageMigrate, m.arrive,
                       m.continuation.id);
      trace_->Flow(obs::TracePhase::kFlowStep, m.arrive,
                   obs::ReplicaPid(m.dst), obs::kTidEngine, m.continuation.id);
    }
    DeliverContinuation(dst, m.continuation, m.kv, m.arrive);
  }
}

void ClusterSimulator::DeliverContinuation(Replica& dst,
                                           serving::Request continuation,
                                           const serving::KvExport& kv,
                                           double ready) {
  continuation.ready = ready;
  if (dst.scheduler->AcceptMigrated(continuation, kv)) return;
  // The pool cannot hold the imported KV right now: reset to the original
  // request and recompute the prefill on `dst` — the already-generated first
  // token is wasted work.
  if (trace_ != nullptr) {
    trace_->Instant(obs::TraceEventType::kImportOom, ready, obs::kFleetPid,
                    obs::kTidInterconnect, continuation.id,
                    static_cast<double>(dst.id));
  }
  ++tally_.disagg.import_ooms;
  tally_.wasted_tokens += static_cast<double>(continuation.progress);
  serving::Request fresh;
  fresh.id = continuation.id;
  fresh.prompt_tokens = continuation.prompt_tokens - continuation.progress;
  fresh.max_new_tokens = continuation.max_new_tokens + continuation.progress;
  fresh.arrival = continuation.arrival;
  fresh.ready = ready;
  fresh.prefix = continuation.prefix;
  fresh.cached_prefix_blocks =
      dst.scheduler->pool().prefix_index().SharedPrefixBlocks(
          fresh.prefix.hashes);
  dst.scheduler->Submit(fresh);
}

void ClusterSimulator::ReleaseRetriesThrough(double deadline) {
  LIQUID_PROF_SCOPE("sim/events/retry_release");
  for (;;) {
    std::size_t next = pending_retries_.size();
    for (std::size_t i = 0; i < pending_retries_.size(); ++i) {
      if (pending_retries_[i].due > deadline) continue;
      if (next == pending_retries_.size() ||
          pending_retries_[i].due < pending_retries_[next].due ||
          (pending_retries_[i].due == pending_retries_[next].due &&
           pending_retries_[i].request.id < pending_retries_[next].request.id)) {
        next = i;
      }
    }
    if (next == pending_retries_.size()) return;
    const PendingRetry retry = pending_retries_[next];
    pending_retries_.erase(pending_retries_.begin() +
                           static_cast<std::ptrdiff_t>(next));
    RouteOne(retry.request);
  }
}

const std::vector<ReplicaView>& ClusterSimulator::Views(
    std::size_t prompt_tokens,
    const serving::PrefixSignature* signature) const {
  LIQUID_PROF_SCOPE("router/views");
  // PredictTtft walks each replica's waiting queue; only pay for it when
  // admission control actually reads the estimate.
  const bool want_estimate = router_.slo().ttft_budget > 0;
  std::vector<ReplicaView>& views = views_scratch_;
  views.assign(replicas_.size(), ReplicaView{});
  for (const Replica& r : replicas_) {
    ReplicaView& v = views[r.id];
    v.alive = r.active;
    v.role = r.spec.role;
    v.outstanding = r.scheduler->outstanding();
    v.free_kv_blocks = r.scheduler->pool().free_blocks();
    v.total_kv_blocks = r.scheduler->pool().total_blocks();
    v.prefix_index = &r.scheduler->pool().prefix_index();
    if (r.active && want_estimate) {
      // Convert overlap to tokens with the SIGNATURE's block size (it need
      // not match this pool's granularity).
      const std::size_t cached_tokens =
          signature == nullptr
              ? 0
              : v.prefix_index->SharedPrefixBlocks(signature->hashes) *
                    static_cast<std::size_t>(signature->block_tokens);
      v.est_ttft_seconds =
          r.scheduler->PredictTtft(prompt_tokens, cached_tokens);
    }
  }
  return views;
}

std::optional<std::size_t> ClusterSimulator::RouteOne(
    const serving::TimedRequest& request) {
  LIQUID_PROF_SCOPE("router/route_one");
  ++fleet_events_;
  // Routing happens "now" on the fleet clock; a backoff retry's original
  // arrival may be far in the past, so the trace timestamps the decision,
  // not the arrival field it replays.
  const double t_route =
      trace_ == nullptr ? 0 : std::max(request.arrival_seconds, FleetNow());
  if (trace_ != nullptr) {
    trace_->Instant(obs::TraceEventType::kArrival, t_route, obs::kFleetPid,
                    obs::kTidRouter, request.id,
                    static_cast<double>(request.prompt_tokens),
                    static_cast<double>(request.max_new_tokens),
                    static_cast<double>(request.attempt));
  }
  RouteExplain explain;
  const RouteDecision decision =
      router_.Decide(request, Views(request.prompt_tokens, &request.prefix),
                     trace_ == nullptr ? nullptr : &explain);
  switch (decision.outcome) {
    case RouteOutcome::kNoReplica:
      if (trace_ != nullptr) {
        trace_->Instant(obs::TraceEventType::kNoReplica, t_route,
                        obs::kFleetPid, obs::kTidRouter, request.id);
      }
      ++tally_.dropped;  // no alive replica; folded into FleetStats.dropped
      inflight_.erase(request.id);
      return std::nullopt;
    case RouteOutcome::kRejected:
      if (trace_ != nullptr) {
        trace_->Instant(obs::TraceEventType::kReject, t_route, obs::kFleetPid,
                        obs::kTidRouter, request.id, decision.predicted_ttft);
      }
      ++tally_.rejected_requests;
      inflight_.erase(request.id);
      return std::nullopt;
    case RouteOutcome::kRouted:
      break;
  }
  const std::size_t dest = *decision.replica;
  if (trace_ != nullptr) {
    // The scorer term breakdown rides the route event's variable tail:
    // weighted contributions keyed by term name (ToString(ScoreTerm) returns
    // static literals, which is what TraceArg requires).
    obs::TraceArg terms[16];
    std::size_t nterms = 0;
    for (const TermContribution& term : explain.terms) {
      if (nterms == std::size(terms)) break;
      terms[nterms++] = {ToString(term.term), term.weight * term.value};
    }
    trace_->InstantWithArgs(obs::TraceEventType::kRoute, t_route,
                            obs::kFleetPid, obs::kTidRouter, request.id,
                            static_cast<double>(dest), decision.predicted_ttft,
                            explain.score,
                            std::span<const obs::TraceArg>(terms, nterms));
  }
  serving::Request req;
  req.id = request.id;
  req.prompt_tokens = request.prompt_tokens;
  req.max_new_tokens = request.max_new_tokens;
  req.arrival = request.arrival_seconds;
  req.prefix = request.prefix;
  // Prefix-cache credit: however the destination was chosen, whatever
  // leading signature blocks its pool already holds skip their prefill
  // compute there (locality pays even under prefix-blind presets — the
  // prefix_aware preset just steers toward it).
  req.cached_prefix_blocks =
      replicas_[dest].scheduler->pool().prefix_index().SharedPrefixBlocks(
          request.prefix.hashes);
  // A prompt landing on a prefill-specialized replica runs to its first
  // token only; the DisaggCoordinator moves its KV to a decode replica.
  if (router_.role_aware() &&
      replicas_[dest].spec.role == ReplicaRole::kPrefill) {
    req.prefill_only = true;
  }
  replicas_[dest].scheduler->Submit(req);
  ++replicas_[dest].submitted;
  inflight_[request.id] = request;
  ArmAutoscaleTick();  // new work: the periodic evaluation matters again
  return dest;
}

std::optional<std::size_t> ClusterSimulator::SubmitAndRouteImpl(
    const serving::TimedRequest& request) {
  ++tally_.submitted;
  return RouteOne(request);
}

std::size_t ClusterSimulator::ActiveReplicasImpl() const {
  std::size_t n = 0;
  for (const Replica& r : replicas_) n += r.active ? 1 : 0;
  return n;
}

std::size_t ClusterSimulator::TotalOutstandingImpl() const {
  std::size_t n = 0;
  for (const Replica& r : replicas_) {
    if (r.active) n += r.scheduler->outstanding();
  }
  return n;
}

// --- public API: thin RoleGuard wrappers over the coordinator-role bodies ---

std::size_t ClusterSimulator::AddReplica(const ReplicaSpec& spec) {
  util::RoleGuard role(coordinator_role_);
  return AddReplicaImpl(spec);
}

bool ClusterSimulator::RemoveReplica(std::size_t id) {
  util::RoleGuard role(coordinator_role_);
  return RemoveReplicaImpl(id);
}

bool ClusterSimulator::KillReplica(std::size_t id, double now) {
  util::RoleGuard role(coordinator_role_);
  return KillReplicaImpl(id, now);
}

bool ClusterSimulator::DegradeReplica(std::size_t id, double slowdown_factor) {
  util::RoleGuard role(coordinator_role_);
  return DegradeReplicaImpl(id, slowdown_factor);
}

void ClusterSimulator::AdvanceTo(double deadline) {
  util::RoleGuard role(coordinator_role_);
  AdvanceToImpl(deadline);
}

std::optional<std::size_t> ClusterSimulator::SubmitAndRoute(
    const serving::TimedRequest& request) {
  util::RoleGuard role(coordinator_role_);
  return SubmitAndRouteImpl(request);
}

std::size_t ClusterSimulator::ActiveReplicas() const {
  util::RoleGuard role(coordinator_role_);
  return ActiveReplicasImpl();
}

std::size_t ClusterSimulator::TotalOutstanding() const {
  util::RoleGuard role(coordinator_role_);
  return TotalOutstandingImpl();
}

void ClusterSimulator::MaybeAutoscale(double now) {
  if (!autoscale_.enabled) return;
  LIQUID_PROF_SCOPE("sim/autoscale");
  // The cooldown gate returns ABOVE the shrink_pending_ reset on purpose: a
  // shrink waiting out its stabilization window stays pending (keeping the
  // tick armed) through the cooldown.  Every evaluation that actually runs
  // starts from false, so an early abstention (under-filled window, empty
  // fleet) cannot leave a stale pending flag wedging the tick loop.
  if (now - last_scale_event_ < autoscale_.cooldown_seconds) return;
  shrink_pending_ = false;
  if (!autoscale_.pools.empty()) {
    AutoscalePools(now);
    return;
  }
  if (!autoscale_spec_) return;
  const std::size_t active = ActiveReplicasImpl();
  if (active == 0) return;

  bool scale_up = false, scale_down = false;
  double value = 0;
  if (autoscale_.signal == AutoscaleSignal::kQueueDepth) {
    // Mean queue per unit of EFFECTIVE capacity: a replica degraded by
    // factor k only counts as 1/k of a replica, so brown-outs raise the
    // signal instead of hiding overload behind a full-strength denominator.
    double capacity = 0;
    for (const Replica& r : replicas_) {
      if (r.active) capacity += 1.0 / r.scheduler->slowdown();
    }
    value = static_cast<double>(TotalOutstandingImpl()) / capacity;
    scale_up = value > autoscale_.queue_high;
    scale_down = value < autoscale_.queue_low;
  } else {  // kTailTtft: windowed p99 of observed TTFTs
    if (ttft_window_.Count(now) < autoscale_.min_window_samples) {
      // Abstention is not a low reading: a drained window must not let a
      // later low sample bridge the gap and count as "continuously low"
      // (the pools path resets the same way via s.down = false).
      legacy_low_since_ = -1;
      return;
    }
    value = ttft_window_.Percentile(now, 99);
    scale_up = value > autoscale_.ttft_p99_high;
    scale_down = value < autoscale_.ttft_p99_low;
  }

  if (!scale_down) {
    legacy_low_since_ = -1;
  } else if (legacy_low_since_ < 0) {
    legacy_low_since_ = now;
  }
  const bool stabilized =
      scale_down && now - legacy_low_since_ >= autoscale_.shrink_stable_seconds;
  shrink_pending_ = scale_down && !stabilized && work_observed_ &&
                    active > autoscale_.min_replicas;
  if (scale_up && active < autoscale_.max_replicas) {
    CommitScaleUp(kNoPool, *autoscale_spec_, now, value);
  } else if (stabilized && work_observed_ &&
             active > autoscale_.min_replicas) {
    if (CommitScaleDown(kNoPool, now, value)) legacy_low_since_ = -1;
  }
}

ClusterSimulator::PoolSignal ClusterSimulator::EvalPool(std::size_t pool,
                                                        double now) {
  const AutoscalePool& config = autoscale_.pools[pool];
  PoolSignal s;
  double capacity = 0;
  std::size_t outstanding = 0, free_kv = 0, total_kv = 0;
  for (const Replica& r : replicas_) {
    if (!r.active || r.pool != pool) continue;
    ++s.active;
    capacity += 1.0 / r.scheduler->slowdown();
    outstanding += r.scheduler->outstanding();
    free_kv += r.scheduler->pool().free_blocks();
    total_kv += r.scheduler->pool().total_blocks();
    // Lifetime evidence, not an instantaneous sample: fast pools (prefill)
    // drain between evaluations, so "outstanding right now" would miss
    // work they demonstrably served.
    s.work_seen |= r.submitted > 0;
  }
  PoolRuntime& runtime = pool_runtime_[pool];
  switch (config.signal) {
    case AutoscaleSignal::kQueueDepth:
      s.value = capacity > 0
                    ? static_cast<double>(outstanding) / capacity
                    : 0;
      break;
    case AutoscaleSignal::kFreeKv:
      s.value = total_kv > 0
                    ? 1.0 - static_cast<double>(free_kv) /
                                static_cast<double>(total_kv)
                    : 0;
      break;
    case AutoscaleSignal::kTailTtft:
      if (runtime.ttft_window.Count(now) < config.min_window_samples) {
        return s;  // abstain: neither up nor down
      }
      s.value = runtime.ttft_window.Percentile(now, 99);
      break;
    case AutoscaleSignal::kTailTpot:
      if (runtime.tpot_window.Count(now) < config.min_window_samples) {
        return s;  // abstain
      }
      s.value = runtime.tpot_window.Percentile(now, 99);
      break;
  }
  s.up = s.value > config.high;
  s.down = s.value < config.low;
  return s;
}

void ClusterSimulator::AutoscalePools(double now) {
  // At most one scale event per evaluation (the shared cooldown paces the
  // loop).  Growth outranks shrink within an evaluation: the most
  // overloaded pool grows first, and with cost_aware the most expensive
  // shrink-eligible pool shrinks first — the biggest cut to predicted
  // $/1M tokens per event.  A hot pool whose growth cannot land (already
  // at max_replicas, or vetoed by the cost cap) does NOT block another
  // pool's stabilized shrink: consolidating idle capacity is the objective
  // precisely when the budget refuses more of it.
  struct ShrinkCandidate {
    std::size_t pool;
    double rate;
    double value;
  };
  std::size_t up_pool = kNoPool;
  double up_severity = 0, up_value = 0;
  bool up_forced = false;
  std::vector<ShrinkCandidate> shrinkable;
  shrink_pending_ = false;
  for (std::size_t i = 0; i < autoscale_.pools.size(); ++i) {
    const AutoscalePool& pool = autoscale_.pools[i];
    const PoolSignal s = EvalPool(i, now);
    const bool must_grow = s.active < pool.min_replicas;
    if ((s.up || must_grow) && s.active < pool.max_replicas) {
      // Min-replica enforcement beats any signal reading; among hot pools
      // the one furthest over its threshold wins (ties toward the first).
      const double severity =
          must_grow ? kInf : (pool.high > 0 ? s.value / pool.high : s.value);
      if (up_pool == kNoPool || (must_grow && !up_forced) ||
          (must_grow == up_forced && severity > up_severity)) {
        up_pool = i;
        up_severity = severity;
        up_value = s.value;
        up_forced = must_grow;
      }
    }
    // Shrink needs evidence of idleness, not absence of data: the fleet
    // has completed work, THIS pool has served some, and the signal has
    // read low continuously for shrink_stable_seconds — a momentarily
    // empty queue between Poisson gaps is not overprovisioning.
    PoolRuntime& runtime = pool_runtime_[i];
    if (!s.down) {
      runtime.low_since = -1;
    } else if (runtime.low_since < 0) {
      runtime.low_since = now;
    }
    if (s.down && work_observed_ && s.work_seen &&
        s.active > pool.min_replicas) {
      if (now - runtime.low_since >= autoscale_.shrink_stable_seconds) {
        shrinkable.push_back({i, pool.spec.dollars_per_hour, s.value});
      } else {
        shrink_pending_ = true;  // keeps the tick armed while idle
      }
    }
  }

  if (up_pool != kNoPool) {
    const AutoscalePool& pool = autoscale_.pools[up_pool];
    const bool affordable =
        up_forced || autoscale_.max_dollars_per_m_tokens <= 0 ||
        PredictedDollarsPerMTok(now, pool.spec.dollars_per_hour) <=
            autoscale_.max_dollars_per_m_tokens;
    if (affordable) {
      CommitScaleUp(up_pool, pool.spec, now, up_value);
      return;
    }
  }
  // With cost_aware the most expensive pool shrinks first (the biggest cut
  // to $/1M tok per event); otherwise config order.  A pool whose only
  // remaining replicas the victim scan protects (last of a role, SLO
  // infeasibility) falls through to the next candidate instead of wedging
  // the whole shrink path.
  if (autoscale_.cost_aware) {
    std::stable_sort(shrinkable.begin(), shrinkable.end(),
                     [](const ShrinkCandidate& a, const ShrinkCandidate& b) {
                       return a.rate > b.rate;
                     });
  }
  for (const ShrinkCandidate& candidate : shrinkable) {
    if (CommitScaleDown(candidate.pool, now, candidate.value)) {
      // The shrunken pool must re-earn its stabilization window.
      pool_runtime_[candidate.pool].low_since = -1;
      return;
    }
  }
}

void ClusterSimulator::CommitScaleUp(std::size_t pool, const ReplicaSpec& spec,
                                     double now, double signal_value) {
  const std::size_t id = AddReplicaImpl(spec);
  replicas_[id].pool = pool;
  replicas_[id].added_at = now;
  replicas_[id].scheduler->StepUntil(now);  // join the shared clock
  ++tally_.scale_ups;
  tally_.scale_events.push_back({now, true, spec.role, id, signal_value});
  last_scale_event_ = now;
  if (trace_ != nullptr) {
    trace_->Instant(obs::TraceEventType::kScaleUp, now, obs::kFleetPid,
                    obs::kTidAutoscaler, id, static_cast<double>(id),
                    pool == kNoPool ? -1.0 : static_cast<double>(pool),
                    signal_value);
  }
}

bool ClusterSimulator::CommitScaleDown(std::size_t pool, double now,
                                       double signal_value) {
  const std::size_t victim = PickScaleDownVictim(pool);
  if (victim >= replicas_.size()) return false;
  // PredictTtft-based feasibility: never shrink into an SLO breach (only
  // enforced when the router actually has a TTFT budget to keep).
  if (router_.slo().ttft_budget > 0 &&
      !router_.ScaleDownSafe(Views(autoscale_.slo_probe_prompt_tokens),
                             victim)) {
    return false;
  }
  const ReplicaRole role = replicas_[victim].spec.role;
  if (!RemoveReplicaImpl(victim)) return false;
  ++tally_.scale_downs;
  tally_.scale_events.push_back({now, false, role, victim, signal_value});
  last_scale_event_ = now;
  if (trace_ != nullptr) {
    trace_->Instant(obs::TraceEventType::kScaleDown, now, obs::kFleetPid,
                    obs::kTidAutoscaler, victim, static_cast<double>(victim),
                    pool == kNoPool ? -1.0 : static_cast<double>(pool),
                    signal_value);
  }
  return true;
}

std::size_t ClusterSimulator::PickScaleDownVictim(std::size_t pool) const {
  std::size_t best = replicas_.size();
  bool best_inbound = false;
  for (const Replica& r : replicas_) {
    if (!r.active) continue;
    if (pool != kNoPool && r.pool != pool) continue;
    // Never retire the last active replica of a specialized role: routing
    // would wedge into unified fallback (prompts with no prefill home, or
    // migrations with no decode target) until something scales back up.
    if (LastActiveOfRole(r)) continue;
    // Prefer victims with no KV imports on the wire; retiring one forces
    // the coordinator to re-plan transfers mid-flight.
    const bool inbound = coordinator_.InboundCount(r.id) > 0;
    if (best == replicas_.size() || (!inbound && best_inbound) ||
        (inbound == best_inbound &&
         r.scheduler->outstanding() <
             replicas_[best].scheduler->outstanding())) {
      best = r.id;
      best_inbound = inbound;
    }
  }
  return best;
}

bool ClusterSimulator::LastActiveOfRole(const Replica& replica) const {
  if (replica.spec.role == ReplicaRole::kUnified) return false;
  for (const Replica& other : replicas_) {
    if (other.id != replica.id && other.active &&
        other.spec.role == replica.spec.role) {
      return false;
    }
  }
  return true;
}

double ClusterSimulator::PredictedDollarsPerMTok(double now,
                                                 double delta_dollars_per_hour) {
  double rate_per_hour = delta_dollars_per_hour;
  for (const Replica& r : replicas_) {
    if (r.active) rate_per_hour += r.spec.dollars_per_hour;
  }
  const double window = tokens_window_.window_seconds();
  const double tokens =
      tokens_window_.Mean(now) * static_cast<double>(tokens_window_.Count(now));
  const double tokens_per_s = window > 0 ? tokens / window : 0;
  if (tokens_per_s <= 0) return 0;  // no recent evidence: nothing to veto on
  return (rate_per_hour / 3600.0) / tokens_per_s * 1e6;
}

bool ClusterSimulator::FleetBusy() const {
  if (coordinator_.InFlight() > 0 || !pending_retries_.empty()) return true;
  for (const Replica& r : replicas_) {
    if (r.active && r.scheduler->HasWork()) return true;
  }
  return false;
}

double ClusterSimulator::FleetNow() const {
  double now = 0;
  for (const Replica& r : replicas_) {
    if (r.active) now = std::max(now, r.scheduler->Now());
  }
  return now;
}

void ClusterSimulator::ArmAutoscaleTick() {
  if (!autoscale_.enabled || autoscale_.tick_seconds <= 0 || tick_armed_) {
    return;
  }
  tick_armed_ = true;
  next_autoscale_tick_ = FleetNow() + autoscale_.tick_seconds;
}

void ClusterSimulator::ProcessEventsThrough(double deadline) {
  LIQUID_PROF_SCOPE("sim/events");
  // Fire kills, degradations, migration landings and backoff retries in
  // time order up to the deadline.  The schedules are small; a scan per
  // event keeps insertion order-insensitive.
  for (;;) {
    double t_kill = kInf;
    std::size_t kill_idx = kill_schedule_.size();
    for (std::size_t i = 0; i < kill_schedule_.size(); ++i) {
      if (kill_schedule_[i].time > deadline) continue;
      if (kill_schedule_[i].time < t_kill) {
        t_kill = kill_schedule_[i].time;
        kill_idx = i;
      }
    }
    double t_degrade = kInf;
    std::size_t degrade_idx = degrade_schedule_.size();
    for (std::size_t i = 0; i < degrade_schedule_.size(); ++i) {
      if (degrade_schedule_[i].time > deadline) continue;
      if (degrade_schedule_[i].time < t_degrade) {
        t_degrade = degrade_schedule_[i].time;
        degrade_idx = i;
      }
    }
    double t_mig = coordinator_.NextArrival().value_or(kInf);
    if (t_mig > deadline) t_mig = kInf;
    double t_retry = kInf;
    for (const PendingRetry& p : pending_retries_) {
      if (p.due <= deadline) t_retry = std::min(t_retry, p.due);
    }
    // The periodic autoscale tick rides the same calendar, so the
    // autoscaler keeps evaluating between arrivals AND through the
    // post-arrival drain (ProcessEventsThrough(kInf) before quiescence) —
    // the drain tail scales down instead of burning $/hour.
    double t_tick = kInf;
    if (tick_armed_ && next_autoscale_tick_ <= deadline) {
      t_tick = next_autoscale_tick_;
    }
    const double t = std::min({t_kill, t_degrade, t_mig, t_retry, t_tick});
    if (t == kInf) return;
    AdvanceToImpl(t);
    // Harvesting during AdvanceTo can commit fresh transfers whose arrival
    // is at or before t; land everything due — and release due retries —
    // BEFORE a same-instant kill, so a delivery that physically preceded
    // the failure is never misclassified as a target death.
    LandMigrationsThrough(t);
    ReleaseRetriesThrough(t);
    if (t == t_tick) {
      LIQUID_PROF_SCOPE("sim/events/tick");
      ++fleet_events_;
      next_autoscale_tick_ += autoscale_.tick_seconds;
      if (trace_ != nullptr) {
        trace_->Instant(obs::TraceEventType::kAutoscaleTick, t, obs::kFleetPid,
                        obs::kTidAutoscaler, 0);
      }
      const std::size_t before = tally_.scale_ups + tally_.scale_downs;
      MaybeAutoscale(t);
      SampleMetrics(t);  // the metrics series rides the existing tick
      // Disarm once the fleet is idle and a cooldown-satisfied evaluation
      // fired nothing with no shrink waiting out its stabilization window:
      // every pool is at its floor or its signal abstains.  New work
      // re-arms the tick (ArmAutoscaleTick).
      if (tally_.scale_ups + tally_.scale_downs == before && !FleetBusy() &&
          !shrink_pending_ &&
          t - last_scale_event_ >= autoscale_.cooldown_seconds) {
        tick_armed_ = false;
      }
      continue;
    }
    // A same-instant degrade fires before a kill: slowing a replica that is
    // about to die is a no-op either way, but the order is pinned for
    // determinism.
    if (t == t_degrade) {
      const DegradeEvent degrade = degrade_schedule_[degrade_idx];
      degrade_schedule_.erase(degrade_schedule_.begin() +
                              static_cast<std::ptrdiff_t>(degrade_idx));
      DegradeReplicaImpl(degrade.replica, degrade.slowdown_factor);
      continue;
    }
    if (t == t_kill) {
      const KillEvent kill = kill_schedule_[kill_idx];
      kill_schedule_.erase(kill_schedule_.begin() +
                           static_cast<std::ptrdiff_t>(kill_idx));
      KillReplicaImpl(kill.replica, kill.time);
    }
  }
}

void ClusterSimulator::DrainToQuiescence() {
  LIQUID_PROF_SCOPE("sim/drain");
  // Arrivals are done, but completion is no longer local to one replica: a
  // prefill finishing here spawns a migration landing there.  Iterate until
  // no replica has work and nothing is on the wire or waiting out a backoff.
  for (;;) {
    bool progressed = false;
    // Replicas run to completion independently (interactions — migration
    // landings, retries — are consumed serially below), so the parallel
    // fan-out reaches the same post-loop state as the serial sweep.
    busy_scratch_.clear();
    for (Replica& r : replicas_) {
      if (r.active && r.scheduler->HasWork()) {
        busy_scratch_.push_back(&r);
        progressed = true;
      }
    }
    if (pool_ == nullptr || busy_scratch_.size() <= 1) {
      for (Replica* r : busy_scratch_) r->scheduler->RunToCompletion();
    } else {
      for (std::size_t i = 1; i < busy_scratch_.size(); ++i) {
        serving::ContinuousBatchScheduler* scheduler =
            busy_scratch_[i]->scheduler.get();
        pool_->Submit([scheduler] { scheduler->RunToCompletion(); });
      }
      busy_scratch_.front()->scheduler->RunToCompletion();
      pool_->WaitIdle();
    }
    HarvestCompletions();
    HarvestHandoffs();
    for (;;) {
      const double t_mig = coordinator_.NextArrival().value_or(kInf);
      double t_retry = kInf;
      for (const PendingRetry& p : pending_retries_) {
        t_retry = std::min(t_retry, p.due);
      }
      if (t_mig == kInf && t_retry == kInf) break;
      progressed = true;
      if (t_mig <= t_retry) {
        LandMigrationsThrough(t_mig);
      } else {
        ReleaseRetriesThrough(t_retry);
      }
    }
    if (!progressed) {
      bool residual = false;
      for (const Replica& r : replicas_) {
        residual |= r.active && r.scheduler->HasWork();
      }
      if (!residual) return;
    }
  }
}

FleetStats ClusterSimulator::Run(
    const std::vector<serving::TimedRequest>& trace) {
  util::RoleGuard role(coordinator_role_);
  LIQUID_PROF_SCOPE("sim/run");
  const WallTimer run_timer;
  const auto arrival_order = [](const serving::TimedRequest& a,
                                const serving::TimedRequest& b) {
    return a.arrival_seconds != b.arrival_seconds
               ? a.arrival_seconds < b.arrival_seconds
               : a.id < b.id;
  };
  // Workload generators already emit arrival order, and copying a
  // million-request trace (each with a prefix-hash vector) just to sort a
  // sorted sequence was a measurable slice of Run() — the comparator is a
  // strict weak order over unique (arrival, id) pairs, so an is_sorted trace
  // would come out of the sort element-for-element unchanged.
  std::vector<serving::TimedRequest> sorted;
  const std::vector<serving::TimedRequest>* requests = &trace;
  if (!std::is_sorted(trace.begin(), trace.end(), arrival_order)) {
    sorted = trace;
    std::sort(sorted.begin(), sorted.end(), arrival_order);
    requests = &sorted;
  }

  for (const serving::TimedRequest& request : *requests) {
    ProcessEventsThrough(request.arrival_seconds);
    AdvanceToImpl(request.arrival_seconds);
    MaybeAutoscale(request.arrival_seconds);
    SubmitAndRouteImpl(request);
    SampleMetrics(request.arrival_seconds);
  }
  // Kills scheduled past the last arrival still fire (the fleet keeps
  // working off its backlog, so there is work to lose), as do migrations
  // and backoff retries already on the calendar.
  ProcessEventsThrough(kInf);
  DrainToQuiescence();
  SampleMetrics(FleetNow());
  MergeTraceShards();

  FleetStats stats = tally_;
  stats.replicas_final = ActiveReplicasImpl();
  stats.disagg.in_migration = coordinator_.InFlight();
  stats.disagg.migration_seconds = SummarizePercentiles(migration_seconds_);
  std::vector<serving::RequestTiming> timings;
  std::vector<double> migrated_tpot;
  for (const Replica& r : replicas_) {
    ReplicaReport report;
    report.id = r.id;
    report.label = r.spec.Label();
    report.role = r.spec.role;
    report.active = r.active;
    report.killed = r.killed;
    report.stats = r.scheduler->stats();
    report.submitted = r.submitted;
    report.dollars_per_hour = r.spec.dollars_per_hour;
    report.added_at = r.added_at;
    report.retired_at = r.retired_at;
    stats.replicas.push_back(report);
    stats.disagg.prefill_handoffs += report.stats.prefill_handoffs;
    if (r.active) {
      stats.disagg.prefill_replicas +=
          r.spec.role == ReplicaRole::kPrefill ? 1 : 0;
      stats.disagg.decode_replicas +=
          r.spec.role == ReplicaRole::kDecode ? 1 : 0;
    }
    const std::vector<serving::RequestTiming>& done =
        r.scheduler->completions();
    timings.insert(timings.end(), done.begin(), done.end());
    for (const serving::RequestTiming& t : done) {
      if (t.generated > 1 && migrated_ids_.contains(t.id)) {
        migrated_tpot.push_back(t.Tpot());
      }
    }
  }
  stats.disagg.migrated_tpot = SummarizePercentiles(migrated_tpot);
  const std::size_t routing_drops = stats.dropped;  // kept by Finalize rescan
  FinalizeFleetStats(timings, stats);
  stats.dropped += routing_drops;

  // Simulator-throughput meter: how much simulated work this Run() did per
  // wall second.  The event/iteration counts and sim span are deterministic;
  // only the wall_* fields vary run to run.
  SimThroughput& st = stats.sim_throughput;
  st.fleet_events = fleet_events_;
  st.engine_iterations = 0;
  for (const ReplicaReport& r : stats.replicas) {
    st.engine_iterations += r.stats.iterations;
  }
  st.events_processed = st.engine_iterations + st.fleet_events;
  st.threads = threads_;
  st.sim_seconds = FleetNow();
  st.wall_seconds = run_timer.Seconds();
  if (st.wall_seconds > 0) {
    st.events_per_sec =
        static_cast<double>(st.events_processed) / st.wall_seconds;
    st.sim_seconds_per_wall_second = st.sim_seconds / st.wall_seconds;
  }
  if (st.sim_seconds > 0) {
    st.wall_seconds_per_sim_hour = st.wall_seconds / (st.sim_seconds / 3600.0);
  }
  return stats;
}

}  // namespace liquid::cluster
