#include "cluster/cluster_sim.hpp"

#include <algorithm>
#include <limits>

namespace liquid::cluster {

ClusterSimulator::ClusterSimulator(RoutePolicy policy,
                                   AutoscaleConfig autoscale, SloConfig slo)
    : router_(policy, slo),
      autoscale_(autoscale),
      ttft_window_(autoscale.window_seconds) {}

std::size_t ClusterSimulator::AddReplica(const ReplicaSpec& spec) {
  Replica r;
  r.id = replicas_.size();
  r.spec = spec;
  r.engine = std::make_unique<serving::ServingEngine>(spec.hw, spec.preset,
                                                      spec.model, spec.options);
  r.scheduler = std::make_unique<serving::ContinuousBatchScheduler>(
      *r.engine, spec.kv_pool_blocks, spec.block_tokens, spec.max_batch);
  if (!autoscale_spec_) autoscale_spec_ = spec;
  replicas_.push_back(std::move(r));
  return replicas_.back().id;
}

bool ClusterSimulator::RemoveReplica(std::size_t id) {
  if (id >= replicas_.size() || !replicas_[id].active) return false;
  if (ActiveReplicas() <= 1) return false;  // never strand in-flight work
  Replica& victim = replicas_[id];
  victim.active = false;
  router_.ForgetReplica(id);
  // Unfinished work (with carried TTFT/progress state) moves to the least
  // loaded survivor; its scheduler clock is already on the shared clock.
  std::vector<serving::Request> orphans = victim.scheduler->Drain();
  for (const serving::Request& req : orphans) {
    std::size_t best = replicas_.size();
    for (const Replica& r : replicas_) {
      if (!r.active) continue;
      if (best == replicas_.size() ||
          r.scheduler->outstanding() <
              replicas_[best].scheduler->outstanding()) {
        best = r.id;
      }
    }
    replicas_[best].scheduler->Submit(req);
    ++replicas_[best].submitted;
    ++tally_.rerouted;
  }
  return true;
}

bool ClusterSimulator::KillReplica(std::size_t id, double now) {
  if (id >= replicas_.size() || !replicas_[id].active) return false;
  Replica& victim = replicas_[id];
  // Catch the victim up to the fleet clock first so work it would have
  // finished before the failure counts as completed, not lost.
  victim.scheduler->StepUntil(now);
  HarvestCompletions();
  victim.active = false;
  victim.killed = true;
  router_.ForgetReplica(id);
  ++tally_.killed_replicas;

  const serving::ContinuousBatchScheduler::ForfeitedWork forfeit =
      victim.scheduler->Forfeit();
  tally_.lost_requests += forfeit.requests.size();
  tally_.wasted_tokens += forfeit.wasted_tokens;

  // Re-route storm: every lost request is re-submitted from scratch.  The
  // original TimedRequest (session/tenant intact) is replayed with its
  // original arrival time, so a retry's TTFT charges the failed attempt;
  // attempt counts the failures it survived.
  for (const serving::Request& lost : forfeit.requests) {
    serving::TimedRequest retry;
    const auto meta = inflight_.find(lost.id);
    if (meta != inflight_.end()) {
      retry = meta->second;
    } else {
      retry.id = lost.id;
      retry.arrival_seconds = lost.arrival;
      retry.prompt_tokens = lost.prompt_tokens;
      retry.max_new_tokens = lost.max_new_tokens;
    }
    ++retry.attempt;
    tally_.max_retry_attempts =
        std::max(tally_.max_retry_attempts, retry.attempt);
    ++tally_.retried_requests;
    RouteOne(retry);
  }
  return true;
}

void ClusterSimulator::AdvanceTo(double deadline) {
  for (Replica& r : replicas_) {
    if (r.active) r.scheduler->StepUntil(deadline);
  }
  HarvestCompletions();
}

void ClusterSimulator::HarvestCompletions() {
  for (Replica& r : replicas_) {
    const std::vector<serving::RequestTiming>& done =
        r.scheduler->completions();
    for (; r.harvested < done.size(); ++r.harvested) {
      const serving::RequestTiming& t = done[r.harvested];
      ttft_window_.Add(t.finish, t.Ttft());
      inflight_.erase(t.id);
    }
    const std::vector<serving::SeqId>& dropped = r.scheduler->dropped_ids();
    for (; r.drops_harvested < dropped.size(); ++r.drops_harvested) {
      inflight_.erase(dropped[r.drops_harvested]);
    }
  }
}

std::vector<ReplicaView> ClusterSimulator::Views(
    std::size_t prompt_tokens) const {
  // PredictTtft walks each replica's waiting queue; only pay for it when
  // admission control actually reads the estimate.
  const bool want_estimate = router_.slo().ttft_budget > 0;
  std::vector<ReplicaView> views(replicas_.size());
  for (const Replica& r : replicas_) {
    ReplicaView& v = views[r.id];
    v.alive = r.active;
    v.outstanding = r.scheduler->outstanding();
    v.free_kv_blocks = r.scheduler->pool().free_blocks();
    v.total_kv_blocks = r.scheduler->pool().total_blocks();
    if (r.active && want_estimate) {
      v.est_ttft_seconds = r.scheduler->PredictTtft(prompt_tokens);
    }
  }
  return views;
}

std::optional<std::size_t> ClusterSimulator::RouteOne(
    const serving::TimedRequest& request) {
  const RouteDecision decision =
      router_.Decide(request, Views(request.prompt_tokens));
  switch (decision.outcome) {
    case RouteOutcome::kNoReplica:
      ++tally_.dropped;  // no alive replica; folded into FleetStats.dropped
      inflight_.erase(request.id);
      return std::nullopt;
    case RouteOutcome::kRejected:
      ++tally_.rejected_requests;
      inflight_.erase(request.id);
      return std::nullopt;
    case RouteOutcome::kRouted:
      break;
  }
  const std::size_t dest = *decision.replica;
  replicas_[dest].scheduler->SubmitTimed(request);
  ++replicas_[dest].submitted;
  inflight_[request.id] = request;
  return dest;
}

std::optional<std::size_t> ClusterSimulator::SubmitAndRoute(
    const serving::TimedRequest& request) {
  ++tally_.submitted;
  return RouteOne(request);
}

std::size_t ClusterSimulator::ActiveReplicas() const {
  std::size_t n = 0;
  for (const Replica& r : replicas_) n += r.active ? 1 : 0;
  return n;
}

std::size_t ClusterSimulator::TotalOutstanding() const {
  std::size_t n = 0;
  for (const Replica& r : replicas_) {
    if (r.active) n += r.scheduler->outstanding();
  }
  return n;
}

void ClusterSimulator::MaybeAutoscale(double now) {
  if (!autoscale_.enabled || !autoscale_spec_) return;
  if (now - last_scale_event_ < autoscale_.cooldown_seconds) return;
  const std::size_t active = ActiveReplicas();
  if (active == 0) return;

  bool scale_up = false, scale_down = false;
  if (autoscale_.signal == AutoscaleSignal::kQueueDepth) {
    const double mean_queue = static_cast<double>(TotalOutstanding()) /
                              static_cast<double>(active);
    scale_up = mean_queue > autoscale_.queue_high;
    scale_down = mean_queue < autoscale_.queue_low;
  } else {  // kTailTtft: windowed p99 of observed TTFTs
    if (ttft_window_.Count(now) < autoscale_.min_window_samples) return;
    const double p99 = ttft_window_.Percentile(now, 99);
    scale_up = p99 > autoscale_.ttft_p99_high;
    scale_down = p99 < autoscale_.ttft_p99_low;
  }

  if (scale_up && active < autoscale_.max_replicas) {
    const std::size_t id = AddReplica(*autoscale_spec_);
    replicas_[id].scheduler->StepUntil(now);  // join the shared clock
    ++tally_.scale_ups;
    last_scale_event_ = now;
  } else if (scale_down && active > autoscale_.min_replicas) {
    // Retire the least-loaded replica.
    std::size_t victim = replicas_.size();
    for (const Replica& r : replicas_) {
      if (!r.active) continue;
      if (victim == replicas_.size() ||
          r.scheduler->outstanding() <
              replicas_[victim].scheduler->outstanding()) {
        victim = r.id;
      }
    }
    if (victim < replicas_.size() && RemoveReplica(victim)) {
      ++tally_.scale_downs;
      last_scale_event_ = now;
    }
  }
}

void ClusterSimulator::FireKillsThrough(double deadline) {
  // Fire pending kills in time order up to the deadline.  The schedule is
  // small; a scan per call keeps ScheduleKill order-insensitive.
  for (;;) {
    std::size_t next = kill_schedule_.size();
    for (std::size_t i = 0; i < kill_schedule_.size(); ++i) {
      if (kill_schedule_[i].time > deadline) continue;
      if (next == kill_schedule_.size() ||
          kill_schedule_[i].time < kill_schedule_[next].time) {
        next = i;
      }
    }
    if (next == kill_schedule_.size()) return;
    const KillEvent kill = kill_schedule_[next];
    kill_schedule_.erase(kill_schedule_.begin() +
                         static_cast<std::ptrdiff_t>(next));
    AdvanceTo(kill.time);
    KillReplica(kill.replica, kill.time);
  }
}

FleetStats ClusterSimulator::Run(
    const std::vector<serving::TimedRequest>& trace) {
  std::vector<serving::TimedRequest> sorted = trace;
  std::sort(sorted.begin(), sorted.end(),
            [](const serving::TimedRequest& a, const serving::TimedRequest& b) {
              return a.arrival_seconds != b.arrival_seconds
                         ? a.arrival_seconds < b.arrival_seconds
                         : a.id < b.id;
            });

  for (const serving::TimedRequest& request : sorted) {
    FireKillsThrough(request.arrival_seconds);
    AdvanceTo(request.arrival_seconds);
    MaybeAutoscale(request.arrival_seconds);
    SubmitAndRoute(request);
  }
  // Kills scheduled past the last arrival still fire (the fleet keeps
  // working off its backlog, so there is work to lose).
  FireKillsThrough(std::numeric_limits<double>::infinity());

  // Arrivals are done: no further routing decisions, so each replica can run
  // its residual work to completion independently.
  for (Replica& r : replicas_) {
    if (r.active) r.scheduler->RunToCompletion();
  }
  HarvestCompletions();

  FleetStats stats = tally_;
  stats.replicas_final = ActiveReplicas();
  std::vector<serving::RequestTiming> timings;
  for (const Replica& r : replicas_) {
    ReplicaReport report;
    report.id = r.id;
    report.label = r.spec.Label();
    report.active = r.active;
    report.killed = r.killed;
    report.stats = r.scheduler->stats();
    report.submitted = r.submitted;
    stats.replicas.push_back(report);
    const std::vector<serving::RequestTiming>& done =
        r.scheduler->completions();
    timings.insert(timings.end(), done.begin(), done.end());
  }
  const std::size_t routing_drops = stats.dropped;  // kept by Finalize rescan
  FinalizeFleetStats(timings, stats);
  stats.dropped += routing_drops;
  return stats;
}

}  // namespace liquid::cluster
