#include "cluster/cluster_sim.hpp"

#include <algorithm>

namespace liquid::cluster {

ClusterSimulator::ClusterSimulator(RoutePolicy policy,
                                   AutoscaleConfig autoscale)
    : router_(policy), autoscale_(autoscale) {}

std::size_t ClusterSimulator::AddReplica(const ReplicaSpec& spec) {
  Replica r;
  r.id = replicas_.size();
  r.spec = spec;
  r.engine = std::make_unique<serving::ServingEngine>(spec.hw, spec.preset,
                                                      spec.model, spec.options);
  r.scheduler = std::make_unique<serving::ContinuousBatchScheduler>(
      *r.engine, spec.kv_pool_blocks, spec.block_tokens, spec.max_batch);
  if (!autoscale_spec_) autoscale_spec_ = spec;
  replicas_.push_back(std::move(r));
  return replicas_.back().id;
}

bool ClusterSimulator::RemoveReplica(std::size_t id) {
  if (id >= replicas_.size() || !replicas_[id].active) return false;
  if (ActiveReplicas() <= 1) return false;  // never strand in-flight work
  Replica& victim = replicas_[id];
  victim.active = false;
  router_.ForgetReplica(id);
  // Unfinished work (with carried TTFT/progress state) moves to the least
  // loaded survivor; its scheduler clock is already on the shared clock.
  std::vector<serving::Request> orphans = victim.scheduler->Drain();
  for (const serving::Request& req : orphans) {
    std::size_t best = replicas_.size();
    for (const Replica& r : replicas_) {
      if (!r.active) continue;
      if (best == replicas_.size() ||
          r.scheduler->outstanding() <
              replicas_[best].scheduler->outstanding()) {
        best = r.id;
      }
    }
    replicas_[best].scheduler->Submit(req);
    ++replicas_[best].submitted;
    ++tally_.rerouted;
  }
  return true;
}

void ClusterSimulator::AdvanceTo(double deadline) {
  for (Replica& r : replicas_) {
    if (r.active) r.scheduler->StepUntil(deadline);
  }
}

std::vector<ReplicaView> ClusterSimulator::Views() const {
  std::vector<ReplicaView> views(replicas_.size());
  for (const Replica& r : replicas_) {
    ReplicaView& v = views[r.id];
    v.alive = r.active;
    v.outstanding = r.scheduler->outstanding();
    v.free_kv_blocks = r.scheduler->pool().free_blocks();
    v.total_kv_blocks = r.scheduler->pool().total_blocks();
  }
  return views;
}

std::optional<std::size_t> ClusterSimulator::SubmitAndRoute(
    const serving::TimedRequest& request) {
  ++tally_.submitted;
  const std::optional<std::size_t> dest = router_.Route(request, Views());
  if (!dest) {
    ++tally_.dropped;  // no alive replica; folded into FleetStats.dropped
    return std::nullopt;
  }
  replicas_[*dest].scheduler->SubmitTimed(request);
  ++replicas_[*dest].submitted;
  return dest;
}

std::size_t ClusterSimulator::ActiveReplicas() const {
  std::size_t n = 0;
  for (const Replica& r : replicas_) n += r.active ? 1 : 0;
  return n;
}

std::size_t ClusterSimulator::TotalOutstanding() const {
  std::size_t n = 0;
  for (const Replica& r : replicas_) {
    if (r.active) n += r.scheduler->outstanding();
  }
  return n;
}

void ClusterSimulator::MaybeAutoscale(double now) {
  if (!autoscale_.enabled || !autoscale_spec_) return;
  if (now - last_scale_event_ < autoscale_.cooldown_seconds) return;
  const std::size_t active = ActiveReplicas();
  if (active == 0) return;
  const double mean_queue = static_cast<double>(TotalOutstanding()) /
                            static_cast<double>(active);
  if (mean_queue > autoscale_.queue_high && active < autoscale_.max_replicas) {
    const std::size_t id = AddReplica(*autoscale_spec_);
    replicas_[id].scheduler->StepUntil(now);  // join the shared clock
    ++tally_.scale_ups;
    last_scale_event_ = now;
  } else if (mean_queue < autoscale_.queue_low &&
             active > autoscale_.min_replicas) {
    // Retire the least-loaded replica.
    std::size_t victim = replicas_.size();
    for (const Replica& r : replicas_) {
      if (!r.active) continue;
      if (victim == replicas_.size() ||
          r.scheduler->outstanding() <
              replicas_[victim].scheduler->outstanding()) {
        victim = r.id;
      }
    }
    if (victim < replicas_.size() && RemoveReplica(victim)) {
      ++tally_.scale_downs;
      last_scale_event_ = now;
    }
  }
}

FleetStats ClusterSimulator::Run(
    const std::vector<serving::TimedRequest>& trace) {
  std::vector<serving::TimedRequest> sorted = trace;
  std::sort(sorted.begin(), sorted.end(),
            [](const serving::TimedRequest& a, const serving::TimedRequest& b) {
              return a.arrival_seconds != b.arrival_seconds
                         ? a.arrival_seconds < b.arrival_seconds
                         : a.id < b.id;
            });

  for (const serving::TimedRequest& request : sorted) {
    AdvanceTo(request.arrival_seconds);
    MaybeAutoscale(request.arrival_seconds);
    SubmitAndRoute(request);
  }

  // Arrivals are done: no further routing decisions, so each replica can run
  // its residual work to completion independently.
  for (Replica& r : replicas_) {
    if (r.active) r.scheduler->RunToCompletion();
  }

  FleetStats stats = tally_;
  stats.replicas_final = ActiveReplicas();
  std::vector<serving::RequestTiming> timings;
  for (const Replica& r : replicas_) {
    ReplicaReport report;
    report.id = r.id;
    report.label = r.spec.Label();
    report.active = r.active;
    report.stats = r.scheduler->stats();
    report.submitted = r.submitted;
    stats.replicas.push_back(report);
    const std::vector<serving::RequestTiming>& done =
        r.scheduler->completions();
    timings.insert(timings.end(), done.begin(), done.end());
  }
  const std::size_t routing_drops = stats.dropped;  // kept by Finalize rescan
  FinalizeFleetStats(timings, stats);
  stats.dropped += routing_drops;
  return stats;
}

}  // namespace liquid::cluster
