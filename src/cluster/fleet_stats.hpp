#pragma once
// Fleet-level serving metrics: the per-request timings every replica records
// are pooled here into the percentiles operators put SLOs on — p50/p95/p99
// TTFT, TPOT, and end-to-end latency — plus per-replica utilization and the
// conservation counters (submitted == completed + dropped) the cluster tests
// assert on.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cluster/router.hpp"
#include "serving/scheduler.hpp"
#include "serving/workload.hpp"

namespace liquid::cluster {

/// A three-point percentile summary of one latency metric, in seconds.
struct PercentileTriple {
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Pools samples into the three-point summary (shared by the fleet latency
/// report and the disagg migration/TPOT splits).
[[nodiscard]] PercentileTriple SummarizePercentiles(
    std::span<const double> values);

/// One replica's contribution, captured when the run finishes (replicas that
/// were scaled down mid-run keep their entry, marked inactive).
struct ReplicaReport {
  std::size_t id = 0;
  std::string label;        ///< e.g. "H800/LiquidServe"
  ReplicaRole role = ReplicaRole::kUnified;
  bool active = true;       ///< false if scaled down before the run ended
  bool killed = false;      ///< true if it died abruptly (no drain)
  serving::SchedulerStats stats;
  std::size_t submitted = 0;  ///< requests routed here (incl. re-routes)
  /// busy_seconds over the replica's own billed window (== the fleet span
  /// for replicas that served start to finish).
  double utilization = 0;
  double dollars_per_hour = 0;
  /// Billing window, on the fleet clock.  A replica is billed from when it
  /// joined until it was gracefully retired (scale-down stops the meter);
  /// `retired_at < 0` bills to the end of the span — replicas present from
  /// the start, still-active scale-ups, and KILLED replicas (capacity
  /// reserved is capacity paid for, even after a failure).
  double added_at = 0;
  double retired_at = -1;
  double billed_seconds = 0;  ///< what cost_dollars actually billed
  double cost_dollars = 0;    ///< dollars_per_hour * billed_seconds
};

/// One autoscaler decision, in fleet-clock order — the scale-event sequence
/// determinism goldens pin.
struct ScaleEvent {
  double time = 0;
  bool up = false;          ///< true = replica added, false = retired
  ReplicaRole role = ReplicaRole::kUnified;  ///< role of the moved spec
  std::size_t replica = 0;  ///< replica id added or retired
  double signal_value = 0;  ///< the signal reading that tripped the decision
};

/// Disaggregated-serving outcome counters (all zero for unified fleets).
struct DisaggStats {
  std::size_t prefill_replicas = 0;  ///< pool sizes at the end of the run
  std::size_t decode_replicas = 0;
  std::size_t prefill_handoffs = 0;  ///< prompts that completed prefill-only
  std::size_t migrated_requests = 0;
  double migrated_kv_bytes = 0;
  /// Handoffs decoded locally on their prefill replica: interconnect
  /// unusable, stall over budget, or no decode-capable replica alive —
  /// per-request fallback to unified serving.
  std::size_t local_decode_fallbacks = 0;
  /// Migration landed but the decode pool could not hold the KV; the
  /// request recomputed its prefill on the target instead.
  std::size_t import_ooms = 0;
  /// Migration target died mid-transfer; the request re-entered the retry
  /// path (counted in lost/retried like any kill loss).
  std::size_t target_deaths = 0;
  /// In-flight migrations when the run ended — 0 after Run() (the
  /// conservation invariant extends to in-migration requests).
  std::size_t in_migration = 0;
  PercentileTriple migration_seconds;  ///< visible post-prefill stall
  /// TPOT of migrated requests: their decode steps ran on a pool no prefill
  /// ever interrupts (the interference-free tail disaggregation buys).
  PercentileTriple migrated_tpot;
};

/// Wall-clock cost of running the simulation itself — the meter the future
/// concurrent runtime must beat.  The first four fields are deterministic
/// under a fixed seed (they count simulated work); the wall_* / *_per_*
/// fields are host wall-clock measurements and vary run to run.
struct SimThroughput {
  /// engine_iterations + fleet_events: the simulator's unit of work.
  std::uint64_t events_processed = 0;
  /// Scheduler iterations summed over every replica (batch steps).
  std::uint64_t engine_iterations = 0;
  /// Fleet-level events: routing decisions (arrivals + retries), migration
  /// landings, kills, degrades, autoscale ticks.
  std::uint64_t fleet_events = 0;
  /// Worker threads the run executed with (1 = the legacy serial loop).
  /// Deterministic by construction, and the simulated results are identical
  /// across thread counts — the parallel mode's oracle-parity contract.
  std::size_t threads = 1;
  double sim_seconds = 0;   ///< simulated span covered by the run
  double wall_seconds = 0;  ///< host wall-clock spent inside Run()
  double events_per_sec = 0;
  double sim_seconds_per_wall_second = 0;
  double wall_seconds_per_sim_hour = 0;
};

struct FleetStats {
  std::size_t submitted = 0;  ///< unique trace requests entering the cluster
  std::size_t completed = 0;
  std::size_t dropped = 0;
  std::size_t preemptions = 0;
  std::size_t rerouted = 0;   ///< requests moved off a scaled-down replica
  std::size_t scale_ups = 0;
  std::size_t scale_downs = 0;
  std::size_t replicas_final = 0;  ///< active replicas at end of run

  // Fault / SLO counters.  Conservation across every chaos scenario:
  //   completed + dropped + rejected + lost == submitted + retried
  // (each lost in-flight request spawns exactly one retry, which then lands
  // in one of the left-hand buckets — or is lost again, re-entering both
  // sides symmetrically).
  std::size_t killed_replicas = 0;
  std::size_t lost_requests = 0;     ///< in flight on a replica when it died
  std::size_t retried_requests = 0;  ///< re-submissions spawned by losses
  std::size_t rejected_requests = 0; ///< shed by SLO admission control (429)
  /// Losses abandoned because the RetryPolicy budget ran out; with a budget,
  /// lost == retried + retries_exhausted (without one, lost == retried).
  std::size_t retries_exhausted = 0;
  /// Highest TimedRequest::attempt any retry reached — 2+ means some request
  /// survived multiple kills before landing in a terminal bucket.
  std::uint32_t max_retry_attempts = 0;
  double wasted_tokens = 0;  ///< tokens generated then lost with a replica
  /// Replicas that suffered partial degradation (DegradeReplica slowdown)
  /// at some point in the run — they kept serving, just slower.
  std::size_t degraded_replicas = 0;

  // Prefix-cache locality (the fleet-wide index).  A hit is an admission
  // whose leading signature blocks were already resident on its replica;
  // the saved tokens are prompt tokens whose prefill compute was skipped.
  std::size_t prefix_hits = 0;
  double prefill_tokens_saved = 0;
  double prefix_hit_ratio = 0;  ///< prefix_hits / submitted

  double span_seconds = 0;  ///< first arrival to last completion
  double generated_tokens = 0;
  double throughput_tokens_per_s = 0;

  // Cost accounting (zero when no ReplicaSpec prices an hour).  Each replica
  // is billed for its ReplicaReport billing window: joined → gracefully
  // retired, where never-retired (and killed) replicas bill to the end of
  // the span — capacity reserved is capacity paid for, even after a kill,
  // but a scale-down stops the meter (the drain tail is no longer billed at
  // peak-fleet rates).
  double cost_dollars = 0;
  double prefill_pool_dollars = 0;  ///< prefill-role replicas only
  double decode_pool_dollars = 0;   ///< decode + unified replicas
  double dollars_per_m_tokens = 0;  ///< cost / (generated tokens / 1e6)

  PercentileTriple ttft;
  PercentileTriple tpot;
  PercentileTriple e2e;

  /// Host-side cost of the run (filled by ClusterSimulator::Run; all zero
  /// for hand-built stats).
  SimThroughput sim_throughput;

  DisaggStats disagg;
  /// Every autoscaler decision, in fleet-clock order.
  std::vector<ScaleEvent> scale_events;
  std::vector<ReplicaReport> replicas;
};

/// Pools per-request timings into fleet percentiles and fills the derived
/// fields (span, throughput, per-replica utilization) of `stats`.
void FinalizeFleetStats(const std::vector<serving::RequestTiming>& timings,
                        FleetStats& stats);

/// Renders the fleet summary (and per-replica table) to stdout.
void PrintFleetStats(const FleetStats& stats);

/// The same report as one JSON object (percentiles, counters, disagg stats,
/// scale events, per-replica reports) — the machine-readable artifact the CI
/// benches archive instead of scraping tables.  Deterministic byte-for-byte
/// for a fixed FleetStats.
[[nodiscard]] std::string FleetStatsToJson(const FleetStats& stats);
/// Writes FleetStatsToJson to `path` (trailing newline); false on I/O error.
bool WriteFleetStatsJson(const FleetStats& stats, const std::string& path);

}  // namespace liquid::cluster
