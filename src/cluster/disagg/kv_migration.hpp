#pragma once
// KV migration cost model for disaggregated prefill/decode serving.
//
// When a prefill replica finishes a prompt, the sequence's KV cache must
// move to a decode replica before decoding can continue.  The model charges
//
//   visible_stall = link_latency + kv_bytes * (1 - prefill_overlap) / BW
//
// per transfer: DistServe/Splitwise-style layer-wise streaming pushes most
// of the KV while later layers are still prefilling, so only the
// (1 - overlap) tail is exposed after the prefill finishes.  KV bytes come
// from the model geometry (2 sides * kv_heads * head_dim * layers * kv_bits
// per token — LlmConfig::KvBytesPerToken), so quantized-KV presets migrate
// proportionally cheaper.
//
// Each directed (src, dst) link carries at most `max_inflight_per_link`
// concurrent transfers; an extra transfer queues until the earliest
// in-flight one completes.  The model is a pure calendar — it never touches
// engines — so it stays unit-testable and deterministic.

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "serving/model_config.hpp"

namespace liquid::cluster {

struct InterconnectConfig {
  double bandwidth_gb_per_s = 400.0;  ///< per directed link; <= 0 ⇒ unusable
  double latency_seconds = 100e-6;    ///< per-transfer setup latency
  std::size_t max_inflight_per_link = 4;
  /// Fraction of the KV streamed layer-wise DURING prefill; only the rest
  /// stalls the request after its prefill finishes.
  double prefill_overlap = 0.8;
};

class KvMigrationModel {
 public:
  explicit KvMigrationModel(InterconnectConfig config) : config_(config) {}

  [[nodiscard]] bool Usable() const { return config_.bandwidth_gb_per_s > 0; }

  /// KV bytes for `tokens` cached tokens of `model` at `kv_bits` precision.
  [[nodiscard]] static double KvBytes(const serving::LlmConfig& model,
                                      double kv_bits, std::size_t tokens) {
    return model.KvBytesPerToken(kv_bits) * static_cast<double>(tokens);
  }

  /// Post-prefill stall of one uncontended transfer of `bytes`.
  [[nodiscard]] double VisibleSeconds(double bytes) const;

  /// Completion time of a transfer of `bytes` over link (src → dst) wanting
  /// to start at `start`, honoring the per-link in-flight cap — WITHOUT
  /// recording it.  The caller can compare against a stall budget and fall
  /// back to local decode before committing.
  [[nodiscard]] double EstimateCompletion(std::size_t src, std::size_t dst,
                                          double bytes, double start) const;

  /// Commits the transfer on the link and returns its completion time.
  double ScheduleTransfer(std::size_t src, std::size_t dst, double bytes,
                          double start);

  [[nodiscard]] const InterconnectConfig& config() const { return config_; }

 private:
  using LinkKey = std::pair<std::size_t, std::size_t>;
  /// First instant at or after `start` when the link is below its cap.
  [[nodiscard]] double StartUnderCap(const std::vector<double>& completions,
                                     double start) const;

  InterconnectConfig config_;
  std::map<LinkKey, std::vector<double>> links_;  ///< completion calendars
};

}  // namespace liquid::cluster
