#pragma once
// DisaggCoordinator: the migration control plane between the prefill and
// decode pools.  The ClusterSimulator drives it:
//
//   1. A prefill replica finishes a prompt → the scheduler parks a
//      PrefillHandoff (continuation + exported KV).
//   2. The simulator picks a decode target (Router::RouteDecode) and calls
//      Begin(): the coordinator prices the transfer on the (src, dst) link —
//      honoring the per-link in-flight cap — and either commits it or, when
//      the visible stall would bust `max_migration_seconds` (or the
//      interconnect is unusable), tells the caller to decode locally on the
//      prefill replica: per-request fallback to unified serving.
//   3. Committed migrations ride the calendar; TakeArrivalsThrough() hands
//      back the ones that have landed by the given deadline, in arrival
//      order, for the simulator to deliver (AcceptMigrated on the target —
//      or the retry path when the target died mid-transfer).
//
// Decode replicas keep decoding while transfers are in flight — migration
// only delays the migrating request, never the pool — which is the overlap
// that makes disaggregation pay.

#include <algorithm>
#include <cstddef>
#include <optional>
#include <vector>

#include "cluster/disagg/kv_migration.hpp"
#include "obs/prof/wall_profiler.hpp"
#include "obs/trace_recorder.hpp"
#include "serving/kv_cache.hpp"
#include "serving/scheduler.hpp"

namespace liquid::cluster {

struct DisaggConfig {
  InterconnectConfig interconnect;
  /// Above this visible post-prefill stall the coordinator decodes locally
  /// on the prefill replica instead of migrating (graceful fallback to
  /// unified serving).  <= 0 disables the cap.
  double max_migration_seconds = 1.0;
};

class DisaggCoordinator {
 public:
  explicit DisaggCoordinator(DisaggConfig config)
      : config_(config), model_(config.interconnect) {}

  /// One committed KV transfer.
  struct Migration {
    serving::Request continuation;  ///< kv_migrated continuation to deliver
    serving::KvExport kv;
    std::size_t src = 0;
    std::size_t dst = 0;
    double start = 0;   ///< prefill-finish instant (transfer request time)
    double arrive = 0;  ///< when the KV lands on dst
    double bytes = 0;
  };

  /// Prices the handoff's transfer to `dst` and commits it when the visible
  /// stall fits the budget; returns the arrival time, or nullopt when the
  /// caller should decode locally (unusable link or stall over budget).
  std::optional<double> Begin(const serving::PrefillHandoff& handoff,
                              std::size_t src, std::size_t dst, double bytes) {
    LIQUID_PROF_SCOPE("disagg/begin");
    if (!model_.Usable()) return std::nullopt;
    const double eta =
        model_.EstimateCompletion(src, dst, bytes, handoff.ready);
    if (config_.max_migration_seconds > 0 &&
        eta - handoff.ready > config_.max_migration_seconds) {
      return std::nullopt;
    }
    Migration m;
    m.continuation = handoff.request;
    m.kv = handoff.kv;
    m.src = src;
    m.dst = dst;
    m.start = handoff.ready;
    m.arrive = model_.ScheduleTransfer(src, dst, bytes, handoff.ready);
    m.bytes = bytes;
    if (trace_ != nullptr) {
      trace_->Instant(obs::TraceEventType::kMigrationBegin, m.start,
                      obs::kFleetPid, obs::kTidInterconnect,
                      m.continuation.id, static_cast<double>(src),
                      static_cast<double>(dst), bytes);
      trace_->AsyncBegin(obs::TraceEventType::kStageMigrate, m.start,
                         m.continuation.id, static_cast<double>(src),
                         static_cast<double>(dst));
    }
    inflight_.push_back(m);
    return m.arrive;
  }

  /// Earliest in-flight arrival, if any.
  [[nodiscard]] std::optional<double> NextArrival() const {
    std::optional<double> next;
    for (const Migration& m : inflight_) {
      if (!next || m.arrive < *next) next = m.arrive;
    }
    return next;
  }

  /// Pops every migration that has landed by `deadline`, ordered by
  /// (arrival, id) for determinism.
  std::vector<Migration> TakeArrivalsThrough(double deadline) {
    return TakeIf([&](const Migration& m) { return m.arrive <= deadline; });
  }

  /// Pops every in-flight migration headed for `dst` (graceful scale-down:
  /// the caller re-plans them instead of letting them land on a corpse).
  std::vector<Migration> TakeInboundFor(std::size_t dst) {
    return TakeIf([&](const Migration& m) { return m.dst == dst; });
  }

  /// Re-commits an extracted migration to a new target, restarting the
  /// transfer from the source at `now` (no stall budget: the KV must land
  /// somewhere).  Returns the new arrival time.
  double Reroute(Migration migration, std::size_t new_dst, double now) {
    if (trace_ != nullptr) {
      trace_->Instant(obs::TraceEventType::kMigrationReroute, now,
                      obs::kFleetPid, obs::kTidInterconnect,
                      migration.continuation.id,
                      static_cast<double>(migration.src),
                      static_cast<double>(new_dst));
      // Restart the journey's migrate stage toward the new target.
      trace_->AsyncEnd(obs::TraceEventType::kStageMigrate, now,
                       migration.continuation.id);
      trace_->AsyncBegin(obs::TraceEventType::kStageMigrate, now,
                         migration.continuation.id,
                         static_cast<double>(migration.src),
                         static_cast<double>(new_dst));
    }
    migration.dst = new_dst;
    migration.start = now;
    migration.arrive =
        model_.ScheduleTransfer(migration.src, new_dst, migration.bytes, now);
    inflight_.push_back(migration);
    return migration.arrive;
  }

  [[nodiscard]] std::size_t InFlight() const { return inflight_.size(); }
  /// In-flight migrations headed for `dst` — the autoscaler's victim scan
  /// prefers replicas with none, so a scale-down doesn't create the
  /// re-planning work TakeInboundFor would otherwise have to absorb.
  [[nodiscard]] std::size_t InboundCount(std::size_t dst) const {
    std::size_t n = 0;
    for (const Migration& m : inflight_) n += m.dst == dst ? 1 : 0;
    return n;
  }
  [[nodiscard]] const DisaggConfig& config() const { return config_; }
  [[nodiscard]] const KvMigrationModel& model() const { return model_; }

  /// Attaches migration tracing (cluster telemetry); the recorder must
  /// outlive the coordinator, nullptr detaches.
  void SetTrace(obs::TraceRecorder* trace) { trace_ = trace; }

 private:
  template <typename Pred>
  std::vector<Migration> TakeIf(Pred pred) {
    std::vector<Migration> taken;
    for (std::size_t i = 0; i < inflight_.size();) {
      if (pred(inflight_[i])) {
        taken.push_back(inflight_[i]);
        inflight_[i] = inflight_.back();
        inflight_.pop_back();
      } else {
        ++i;
      }
    }
    std::sort(taken.begin(), taken.end(),
              [](const Migration& a, const Migration& b) {
                return a.arrive != b.arrive
                           ? a.arrive < b.arrive
                           : a.continuation.id < b.continuation.id;
              });
    return taken;
  }

  DisaggConfig config_;
  KvMigrationModel model_;
  std::vector<Migration> inflight_;
  obs::TraceRecorder* trace_ = nullptr;
};

}  // namespace liquid::cluster
