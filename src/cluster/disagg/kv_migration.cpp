#include "cluster/disagg/kv_migration.hpp"

#include <algorithm>
#include <limits>

namespace liquid::cluster {

double KvMigrationModel::VisibleSeconds(double bytes) const {
  if (!Usable()) return std::numeric_limits<double>::infinity();
  const double exposed =
      std::clamp(1.0 - config_.prefill_overlap, 0.0, 1.0) * bytes;
  return config_.latency_seconds + exposed / (config_.bandwidth_gb_per_s * 1e9);
}

double KvMigrationModel::StartUnderCap(const std::vector<double>& completions,
                                       double start) const {
  if (config_.max_inflight_per_link == 0) return start;  // 0 = uncapped
  double t = start;
  for (;;) {
    std::size_t inflight = 0;
    double earliest_end = std::numeric_limits<double>::infinity();
    for (const double end : completions) {
      if (end > t) {
        ++inflight;
        earliest_end = std::min(earliest_end, end);
      }
    }
    if (inflight < config_.max_inflight_per_link) return t;
    t = earliest_end;  // a slot frees exactly when the earliest one lands
  }
}

double KvMigrationModel::EstimateCompletion(std::size_t src, std::size_t dst,
                                            double bytes, double start) const {
  if (!Usable()) return std::numeric_limits<double>::infinity();
  const auto it = links_.find({src, dst});
  const double begin =
      it == links_.end() ? start : StartUnderCap(it->second, start);
  return begin + VisibleSeconds(bytes);
}

double KvMigrationModel::ScheduleTransfer(std::size_t src, std::size_t dst,
                                          double bytes, double start) {
  std::vector<double>& calendar = links_[{src, dst}];
  // Transfers are requested in near-monotone time order (handoffs harvest in
  // fleet-clock order, skewed at most by one event window), so completions
  // at or before this request's start can no longer constrain the in-flight
  // cap — drop them to keep the calendar O(cap) instead of append-only.
  std::erase_if(calendar, [&](double end) { return end <= start; });
  const double begin = StartUnderCap(calendar, start);
  const double done = begin + VisibleSeconds(bytes);
  calendar.push_back(done);
  return done;
}

}  // namespace liquid::cluster
