#pragma once
// Multi-replica cluster simulator: the fleet layer above the single-engine
// serving loop.  N replicas — each a full Scheduler+ServingEngine over its
// own paged-KV pool, optionally heterogeneous (A100 next to the paper's
// target GPU, different presets/models) — advance on a shared simulated
// clock while a Router places Poisson-trace arrivals.  Replicas can be added
// or removed mid-run (an autoscaling hook does both automatically — either a
// legacy fleet-wide signal, or role-typed pools with per-role signals, a
// cost-aware $/1M-token shrink objective, and a periodic event-pump tick
// that keeps evaluating through the post-arrival drain); removing a replica
// drains its unfinished requests and re-routes them.  Replicas can also be KILLED —
// abrupt failure, no drain: in-flight work is lost and re-submitted from
// scratch (under a RetryPolicy budget with exponential backoff), and SLO
// admission control at the router sheds requests whose predicted TTFT busts
// the budget.
//
// Replicas can be role-specialized (ReplicaSpec::role): prompts route to the
// prefill pool, run to their first token, then the DisaggCoordinator
// migrates the exported KV to a decode replica over a priced interconnect
// link — decode replicas keep decoding while transfers fly, and any handoff
// whose stall busts the migration budget (or finds no live decode target)
// decodes locally on its prefill replica, degrading gracefully to unified
// serving.  Conservation generalizes to
//   completed + dropped + rejected + lost == submitted + retried  (+ the
//   retry budget identity lost == retried + retries_exhausted)
// across every scale/kill/shed/migration event, with zero requests left in
// migration at the end of a run.  Per-request timings from every replica
// pool into FleetStats.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/disagg/coordinator.hpp"
#include "cluster/fleet_stats.hpp"
#include "cluster/router.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"
#include "serving/engine.hpp"
#include "serving/scheduler.hpp"
#include "serving/workload.hpp"
#include "util/sliding_window.hpp"
#include "util/thread_annotations.hpp"

namespace liquid::util {
class ThreadPool;
}  // namespace liquid::util

namespace liquid::cluster {

/// Everything needed to stand up one replica.
struct ReplicaSpec {
  simgpu::HardwareSpec hw;
  serving::SystemPreset preset;
  serving::LlmConfig model;
  serving::EngineOptions options = {};
  std::size_t kv_pool_blocks = 4096;
  std::size_t block_tokens = 16;
  std::size_t max_batch = 64;
  /// Disaggregated-serving specialization (kUnified = monolithic).
  ReplicaRole role = ReplicaRole::kUnified;
  /// What an hour of this replica costs; 0 disables cost accounting for it.
  double dollars_per_hour = 0;

  [[nodiscard]] std::string Label() const { return hw.name + "/" + preset.name; }
};

/// What the autoscaler keys on.  Thresholds are signal-relative: a queue
/// depth, a latency in seconds, or a used-KV fraction in [0, 1].
enum class AutoscaleSignal {
  kQueueDepth,  ///< mean outstanding requests per unit of effective capacity
                ///  (a replica degraded by factor k counts as 1/k capacity,
                ///  so brown-outs raise the signal instead of masking it)
  kTailTtft,    ///< p99 TTFT over a sliding window of completions
  kFreeKv,      ///< KV pressure: used fraction of the pool's paged-KV blocks
  kTailTpot,    ///< p99 TPOT over a sliding window (decode-pool pain signal)
};

/// One role-typed autoscaling pool: the replicas it governs (by role), the
/// spec a scale-up clones, the signal it watches, and its size bounds.  A
/// disaggregated fleet runs one pool per role so a decode-bound burst grows
/// the decode pool instead of cloning whatever spec was added first.
struct AutoscalePool {
  ReplicaRole role = ReplicaRole::kUnified;
  ReplicaSpec spec;  ///< what a scale-up of this pool adds
  AutoscaleSignal signal = AutoscaleSignal::kQueueDepth;
  /// Signal thresholds.  Suggested defaults per signal: kQueueDepth 8 / 0.5;
  /// kTailTtft and kTailTpot in seconds; kFreeKv used fraction, e.g.
  /// 0.85 / 0.25.
  double high = 8.0;
  double low = 0.5;
  /// A pool below min grows regardless of its signal; the scale-down victim
  /// scan additionally never retires the last active replica of a
  /// specialized role (min 0 lets a pool idle away entirely once another
  /// pool covers its role).
  std::size_t min_replicas = 1;
  std::size_t max_replicas = 16;
  // Windowed-signal (kTailTtft / kTailTpot) knobs: the signal abstains until
  // the pool's window holds enough samples.
  double window_seconds = 10.0;
  std::size_t min_window_samples = 8;
};

/// Autoscaler: when the chosen signal crosses its high threshold, a replica
/// (cloned from the first spec) is added; below the low threshold the
/// least-loaded replica is drained and removed.
///
/// Two generations share this config.  The legacy single-pool fields below
/// govern the whole fleet with one signal and clone the first added spec;
/// with tick_seconds = 0 and defaults for the new knobs they reproduce the
/// pre-pool golden scale sequences on the scenarios the goldens pin
/// (undegraded, non-disagg fleets) — note the legacy path DID absorb this
/// PR's bugfixes: the capacity-weighted kQueueDepth denominator, the
/// work-observed + stabilization shrink gates, and the role-guarded
/// migration-aware victim scan all apply to it too.  Populating `pools`
/// switches to role-typed pools: per-pool signals and bounds, scale-up
/// cloning the hot pool's spec, and (with `cost_aware`) a $/1M-token
/// objective choosing which pool shrinks.  One cooldown paces the whole
/// autoscaler either way, and scale-down additionally requires the fleet to
/// have observed at least one completion or handoff (an empty queue on a
/// cold fleet is absence of data, not idleness).
struct AutoscaleConfig {
  bool enabled = false;
  AutoscaleSignal signal = AutoscaleSignal::kQueueDepth;
  double queue_high = 8.0;
  double queue_low = 0.5;
  std::size_t min_replicas = 1;
  std::size_t max_replicas = 16;
  double cooldown_seconds = 2.0;  ///< minimum time between scale events

  // kTailTtft knobs: windowed p99 of observed TTFTs, in seconds.  The signal
  // abstains (no scaling either way) until the window holds enough samples.
  double ttft_p99_high = 2.0;
  double ttft_p99_low = 0.25;
  double window_seconds = 10.0;
  std::size_t min_window_samples = 8;

  /// Role-typed pools (empty = legacy single-pool behavior above).
  std::vector<AutoscalePool> pools;

  /// Event-pump evaluation period.  0 preserves the legacy arrival-driven
  /// autoscaler (evaluated only when a request arrives — and therefore blind
  /// to the post-burst drain tail).  > 0 arms a periodic tick in the event
  /// pump: the autoscaler also runs between arrivals and through the drain
  /// to quiescence, so an idle fleet scales back to its minimum instead of
  /// burning $/hour across the tail.  The tick disarms once the fleet is
  /// idle and a cooldown-satisfied evaluation fires no event (windowed
  /// signals abstain on an empty window; kQueueDepth keeps shrinking to the
  /// minimum first), and re-arms on new work.
  double tick_seconds = 0;

  /// Cost-aware objective (pools mode): when several pools signal
  /// scale-down in the same evaluation, retire capacity from the most
  /// expensive pool first — the biggest cut to predicted $/1M tokens per
  /// event.  Scale-ups stay SLO-driven.
  bool cost_aware = false;
  /// Optional scale-up budget cap: a growth event (other than min-replica
  /// enforcement) is vetoed when the predicted post-scale $/1M tokens —
  /// fleet $/hour over the recent token rate — exceeds this.  0 disables.
  double max_dollars_per_m_tokens = 0;
  /// Window for the recent-token-rate estimate behind the cost predictions.
  double cost_window_seconds = 10.0;
  /// Prompt size used to probe PredictTtft-based admission feasibility
  /// before a scale-down: the removal is vetoed when no surviving
  /// prompt-eligible replica could admit such a prompt within the TTFT SLO
  /// (only enforced when the router has an SLO budget).
  std::size_t slo_probe_prompt_tokens = 512;
  /// Downscale stabilization (k8s-HPA style): a shrink commits only after
  /// the signal has read below `low` CONTINUOUSLY for this long (every
  /// evaluation in the window read low), so a momentarily empty queue
  /// between Poisson gaps doesn't retire capacity the next burst instant
  /// needs back.  Time-based on purpose — an eval count would collapse to
  /// nothing at burst arrival rates.  0 = legacy immediate shrink.
  double shrink_stable_seconds = 0;
};

/// A scheduled abrupt failure for ClusterSimulator::Run: at `time`, replica
/// `replica` dies without draining.
struct KillEvent {
  double time = 0;
  std::size_t replica = 0;
};

/// A scheduled partial degradation: at `time`, the replica's compute slows
/// down by `slowdown_factor` (it keeps serving — nothing is lost — but every
/// prefill/chunk/decode charge runs that much slower, and PredictTtft quotes
/// the degraded speed so admission control and TTFT-scoring see it).
struct DegradeEvent {
  double time = 0;
  std::size_t replica = 0;
  double slowdown_factor = 1.0;
};

class ClusterSimulator {
 public:
  explicit ClusterSimulator(RoutePolicy policy = RoutePolicy::kLeastOutstanding,
                            AutoscaleConfig autoscale = {}, SloConfig slo = {},
                            RetryPolicy retry = {}, DisaggConfig disagg = {});
  ~ClusterSimulator();  // out of line: ThreadPool is forward-declared

  /// Opts into the parallel execution mode: replica Step/prefill-chunk work
  /// between event-pump barriers fans out over a work-stealing pool of
  /// `threads` workers (0 = hardware concurrency).  Everything that couples
  /// replicas — routing, KV-migration landings, autoscale ticks, chaos
  /// events, harvest — stays serialized on the calling thread, so the
  /// simulated results are IDENTICAL to the single-threaded oracle: the
  /// schedulers share no mutable state and the serial phases consume their
  /// outputs in replica-index order either way.  `threads <= 1` (the
  /// default) dispatches the legacy single-threaded loop byte-for-byte.
  ///
  /// With a trace recorder attached, parallel mode records each replica's
  /// engine events into a private per-replica shard (worker threads never
  /// touch the shared recorder) and folds the shards back in deterministic
  /// time order at the end of Run() — the merged stream is identical across
  /// thread counts >= 2 and across repeat runs, but interleaves equal-time
  /// events differently from the threads=1 byte-golden stream.
  void SetThreads(std::size_t threads);
  [[nodiscard]] std::size_t threads() const { return threads_; }

  /// Adds a replica (usable mid-run: its clock joins the fleet clock).
  /// Returns the replica id, which is stable for the simulator's lifetime.
  /// Adding a prefill- or decode-role replica arms the router's role-aware
  /// stage (when the interconnect is usable).
  std::size_t AddReplica(const ReplicaSpec& spec);

  /// Drains the replica's unfinished requests, re-routes them to the
  /// remaining replicas, and deactivates it.  Its completed-request stats
  /// are retained.  Returns false for an unknown/already-removed id or when
  /// it is the last active replica.
  bool RemoveReplica(std::size_t id);

  /// Abrupt failure at time `now`: the replica dies WITHOUT draining.  All
  /// in-flight work is lost (tokens already generated are wasted) and each
  /// lost request is re-submitted from scratch through the router — which may
  /// reject or drop it like any arrival, back off per the RetryPolicy, or be
  /// abandoned once the retry budget is spent.  Unlike RemoveReplica, killing
  /// the last alive replica is allowed (failures don't ask permission); its
  /// lost requests then drop.  Returns false for an unknown/already-dead id.
  bool KillReplica(std::size_t id, double now);

  /// Queues a kill for Run() to fire when the shared clock reaches it.
  void ScheduleKill(const KillEvent& kill) {
    util::RoleGuard role(coordinator_role_);
    kill_schedule_.push_back(kill);
  }

  /// Partial degradation (chaos): the replica slows down by `slowdown_factor`
  /// rather than dying — in-flight work survives, it just finishes late.
  /// Factors compose with any earlier degradation by replacement (the event
  /// carries the absolute factor, 1.0 restores full speed).  Returns false
  /// for an unknown or inactive id.
  bool DegradeReplica(std::size_t id, double slowdown_factor);

  /// Queues a degradation for Run() to fire on the shared clock.
  void ScheduleDegrade(const DegradeEvent& degrade) {
    util::RoleGuard role(coordinator_role_);
    degrade_schedule_.push_back(degrade);
  }

  /// Advances every active replica to `deadline` on the shared clock,
  /// harvests new completions into the TTFT window, and schedules KV
  /// migrations for freshly finished prefills.
  void AdvanceTo(double deadline);

  /// Routes one request at its arrival time.  Returns the chosen replica id;
  /// nullopt when no replica is alive (fleet drop) or the SLO admission
  /// control shed it (rejected).
  std::optional<std::size_t> SubmitAndRoute(
      const serving::TimedRequest& request);

  /// Full episode: sorts the trace by arrival, interleaves advancing the
  /// shared clock, scheduled kills, migration landings, backoff retries and
  /// autoscaling with routing, then runs the fleet to quiescence (no work,
  /// no in-flight migrations, no pending retries) and aggregates FleetStats.
  FleetStats Run(const std::vector<serving::TimedRequest>& trace);

  /// Attaches fleet telemetry (either pointer may be null to skip that
  /// half).  The trace recorder receives every lifecycle event — router
  /// decisions with the scorer term breakdown, admissions, prefill/decode
  /// spans, migrations, kills, scale events — on the shared simulated clock;
  /// the metrics registry is sampled at instants the simulation already
  /// visits (arrivals, the autoscale tick, end of run), so attaching it
  /// never perturbs simulated behavior.  Both must outlive the simulator.
  /// Call before Run(); replicas added later (scale-ups) are wired
  /// automatically.
  void AttachTelemetry(obs::TraceRecorder* trace,
                       obs::MetricsRegistry* metrics);

  [[nodiscard]] std::size_t ActiveReplicas() const;
  [[nodiscard]] std::size_t TotalOutstanding() const;
  /// Requests whose KV is currently on the wire between pools.
  [[nodiscard]] std::size_t InMigration() const {
    util::RoleGuard role(coordinator_role_);
    return coordinator_.InFlight();
  }
  [[nodiscard]] const Router& router() const {
    util::RoleGuard role(coordinator_role_);
    return router_;
  }
  [[nodiscard]] const DisaggCoordinator& coordinator() const {
    util::RoleGuard role(coordinator_role_);
    return coordinator_;
  }

 private:
  /// Sentinel pool index: the replica belongs to no autoscale pool (legacy
  /// single-pool mode, or a spec no configured pool's role matches).
  static constexpr std::size_t kNoPool = static_cast<std::size_t>(-1);

  struct Replica {
    std::size_t id = 0;
    ReplicaSpec spec;
    std::unique_ptr<serving::ServingEngine> engine;
    std::unique_ptr<serving::ContinuousBatchScheduler> scheduler;
    bool active = true;
    bool killed = false;
    std::size_t pool = kNoPool;  ///< owning AutoscalePool index
    double added_at = 0;    ///< fleet clock when the replica joined
    double retired_at = -1; ///< scale-down instant; < 0 = never retired
    std::size_t submitted = 0;
    std::size_t harvested = 0;  ///< completions already pulled into the window
    std::size_t drops_harvested = 0;    ///< scheduler drops already observed
    std::size_t handoffs_harvested = 0; ///< prefill handoffs already planned
  };

  /// Per-pool windowed-signal state (parallel to AutoscaleConfig::pools).
  struct PoolRuntime {
    SlidingWindowStats ttft_window;
    SlidingWindowStats tpot_window;
    /// When the current unbroken run of below-low readings began
    /// (downscale stabilization); < 0 = not currently reading low.
    double low_since = -1;
  };

  /// One pool's signal reading at an evaluation instant.
  struct PoolSignal {
    std::size_t active = 0;  ///< active replicas the pool currently governs
    double value = 0;        ///< the raw signal reading
    bool up = false;         ///< reading above the pool's high threshold
    bool down = false;       ///< reading below the pool's low threshold
    /// The pool has ever been routed work (lifetime submissions > 0) —
    /// shrink evidence: a pool that never served anything shows an empty
    /// queue because the run just started, not because it is
    /// overprovisioned.
    bool work_seen = false;
  };

  /// A kill/migration-loss re-submission waiting out its backoff.
  struct PendingRetry {
    double due = 0;
    serving::TimedRequest request;
  };

  /// Snapshots every replica for a routing decision.  `signature` (when
  /// given) lets the TTFT estimate price the prefix-cache discount at each
  /// replica; the views also expose each pool's PrefixIndex for the
  /// router's overlap term.  Returns a reference to a member scratch buffer
  /// (routing runs once per fleet event — a heap allocation per decision was
  /// the hot path's last per-event allocation); valid until the next call.
  [[nodiscard]] const std::vector<ReplicaView>& Views(
      std::size_t prompt_tokens,
      const serving::PrefixSignature* signature = nullptr) const
      LIQUID_REQUIRES(coordinator_role_);
  /// Coordinator-role bodies of the public API (the public methods are thin
  /// RoleGuard wrappers).  Internal callers already inside a serialized
  /// section call these directly, so the analysis never sees a re-entrant
  /// role acquisition.
  std::size_t AddReplicaImpl(const ReplicaSpec& spec)
      LIQUID_REQUIRES(coordinator_role_);
  bool RemoveReplicaImpl(std::size_t id) LIQUID_REQUIRES(coordinator_role_);
  bool KillReplicaImpl(std::size_t id, double now)
      LIQUID_REQUIRES(coordinator_role_);
  bool DegradeReplicaImpl(std::size_t id, double slowdown_factor)
      LIQUID_REQUIRES(coordinator_role_);
  void AdvanceToImpl(double deadline) LIQUID_REQUIRES(coordinator_role_);
  std::optional<std::size_t> SubmitAndRouteImpl(
      const serving::TimedRequest& request) LIQUID_REQUIRES(coordinator_role_);
  [[nodiscard]] std::size_t ActiveReplicasImpl() const
      LIQUID_REQUIRES(coordinator_role_);
  [[nodiscard]] std::size_t TotalOutstandingImpl() const
      LIQUID_REQUIRES(coordinator_role_);
  /// Shared routing path for arrivals and kill-retries: counts rejects/drops,
  /// tracks in-flight metadata, and submits to the chosen scheduler (flagged
  /// prefill-only when it lands on a prefill-role replica).
  std::optional<std::size_t> RouteOne(const serving::TimedRequest& request)
      LIQUID_REQUIRES(coordinator_role_);
  /// One request lost with its host (kill) or transfer (target death):
  /// spends a retry attempt — scheduling the re-route after backoff — or
  /// abandons the request when the budget is gone.
  void RetryLost(serving::TimedRequest retry, double now)
      LIQUID_REQUIRES(coordinator_role_);
  void HarvestCompletions() LIQUID_REQUIRES(coordinator_role_);
  /// Plans migrations for freshly harvested prefill handoffs.
  void HarvestHandoffs() LIQUID_REQUIRES(coordinator_role_);
  void PlanHandoff(Replica& src, const serving::PrefillHandoff& handoff)
      LIQUID_REQUIRES(coordinator_role_);
  /// Delivers a continuation + KV to `dst`'s scheduler; on import OOM the
  /// request is reset to original form and recomputes there (wasting its
  /// first token).
  void DeliverContinuation(Replica& dst, serving::Request continuation,
                           const serving::KvExport& kv, double ready)
      LIQUID_REQUIRES(coordinator_role_);
  /// Lands every due migration: AcceptMigrated on a live target, the retry
  /// path when the target died mid-transfer.
  void LandMigrationsThrough(double deadline)
      LIQUID_REQUIRES(coordinator_role_);
  void ReleaseRetriesThrough(double deadline)
      LIQUID_REQUIRES(coordinator_role_);
  void MaybeAutoscale(double now) LIQUID_REQUIRES(coordinator_role_);
  /// Role-typed pools evaluation: per-pool signals, at most one scale event
  /// per call (the shared cooldown paces the loop), SLO-driven growth
  /// outranking cost-driven shrink.
  void AutoscalePools(double now) LIQUID_REQUIRES(coordinator_role_);
  [[nodiscard]] PoolSignal EvalPool(std::size_t pool, double now)
      LIQUID_REQUIRES(coordinator_role_);
  /// First configured pool whose role matches, else kNoPool.
  [[nodiscard]] std::size_t PoolFor(ReplicaRole role) const
      LIQUID_REQUIRES(coordinator_role_);
  /// Least-outstanding active replica of `pool` (kNoPool = whole fleet) that
  /// is safe to retire: never the last active replica of a specialized role,
  /// and replicas with KV imports in flight are passed over while a quieter
  /// victim exists (retiring them would force the coordinator to re-plan
  /// transfers RemoveReplica can otherwise leave alone).
  [[nodiscard]] std::size_t PickScaleDownVictim(std::size_t pool) const
      LIQUID_REQUIRES(coordinator_role_);
  [[nodiscard]] bool LastActiveOfRole(const Replica& replica) const
      LIQUID_REQUIRES(coordinator_role_);
  void CommitScaleUp(std::size_t pool, const ReplicaSpec& spec, double now,
                     double signal_value) LIQUID_REQUIRES(coordinator_role_);
  bool CommitScaleDown(std::size_t pool, double now, double signal_value)
      LIQUID_REQUIRES(coordinator_role_);
  /// Fleet $/1M tokens were `delta_dollars_per_hour` added to the burn rate,
  /// over the recent windowed token rate; 0 when there is no recent
  /// completion evidence (no basis to veto).
  [[nodiscard]] double PredictedDollarsPerMTok(double now,
                                               double delta_dollars_per_hour)
      LIQUID_REQUIRES(coordinator_role_);
  /// Any queued/running work, in-flight migration, or pending retry.
  [[nodiscard]] bool FleetBusy() const LIQUID_REQUIRES(coordinator_role_);
  /// The shared clock: furthest-advanced active replica (0 when none).
  [[nodiscard]] double FleetNow() const LIQUID_REQUIRES(coordinator_role_);
  /// Re-arms the periodic autoscale tick when new work enters an idle fleet.
  void ArmAutoscaleTick() LIQUID_REQUIRES(coordinator_role_);
  /// Advances every active replica's scheduler to `deadline`: the serial
  /// loop when no pool is attached, else the parallel fan-out (idle replicas
  /// snap their clock inline; busy ones become pool tasks bounded by a
  /// WaitIdle barrier, with one run inline on the coordinating thread).
  void StepReplicasTo(double deadline) LIQUID_REQUIRES(coordinator_role_);
  /// Scheduler trace sink for a replica: the shared recorder in
  /// single-threaded mode, the replica's private shard in parallel mode
  /// (created on demand), nullptr when telemetry is detached.
  [[nodiscard]] obs::TraceRecorder* ReplicaTraceSink(std::size_t id)
      LIQUID_REQUIRES(coordinator_role_);
  /// Folds the per-replica trace shards back into the main recorder in
  /// deterministic time order (no-op when none exist).
  void MergeTraceShards() LIQUID_REQUIRES(coordinator_role_);
  /// Fires kills, migration landings and backoff retries in time order up
  /// to `deadline`, advancing the fleet clock to each event.
  void ProcessEventsThrough(double deadline)
      LIQUID_REQUIRES(coordinator_role_);
  /// Post-arrival phase of Run(): repeat (run replicas to completion, land
  /// events) until no work, migrations or retries remain anywhere.
  void DrainToQuiescence() LIQUID_REQUIRES(coordinator_role_);

  /// Names the replica's Perfetto process lane and wires its scheduler's
  /// lifecycle hooks (no-op when no recorder is attached).
  void WireReplicaTelemetry(Replica& replica)
      LIQUID_REQUIRES(coordinator_role_);
  /// Registers the fleet metric series (schema fixed before first sample).
  void RegisterMetrics() LIQUID_REQUIRES(coordinator_role_);
  /// Snapshots every registered series into one time-series row at `now`.
  void SampleMetrics(double now) LIQUID_REQUIRES(coordinator_role_);

  /// Handles into the attached MetricsRegistry.  Role-indexed arrays run
  /// kUnified, kPrefill, kDecode.
  struct MetricIds {
    std::size_t replicas[3] = {};
    std::size_t queue_depth[3] = {};
    std::size_t kv_used[3] = {};
    std::size_t ttft_p99 = 0;
    std::size_t tpot_p99 = 0;
    std::size_t tokens_per_s = 0;
    std::size_t inflight_migrations = 0;
    std::size_t pending_retries = 0;
    std::size_t dollars_per_hour = 0;
    std::size_t completed = 0;
    std::size_t rejected = 0;
    std::size_t lost = 0;
    std::size_t retried = 0;
    std::size_t migrated = 0;
    std::size_t local_fallbacks = 0;
  };

  /// The parallel runtime's headline contract, stated to the compiler:
  /// everything that couples replicas — routing, migrations, autoscaling,
  /// chaos, harvest, telemetry — runs serialized on the coordinating thread,
  /// between the event-pump barriers that bound the per-replica fan-out.
  /// Every member below is LIQUID_GUARDED_BY this role, every serialized
  /// section LIQUID_REQUIRES it, and the public API asserts it via
  /// RoleGuard — so a future change that reaches into fleet state from a
  /// worker task fails the clang -Wthread-safety build instead of flaking a
  /// determinism golden.  There is no runtime lock behind the role; the
  /// worker tasks only touch their own replica's scheduler/engine (captured
  /// by raw pointer, state disjoint by construction).  Mutable because
  /// const accessors assert the role too.
  mutable util::ThreadRole coordinator_role_;

  Router router_ LIQUID_GUARDED_BY(coordinator_role_);
  AutoscaleConfig autoscale_ LIQUID_GUARDED_BY(coordinator_role_);
  RetryPolicy retry_ LIQUID_GUARDED_BY(coordinator_role_);
  DisaggCoordinator coordinator_ LIQUID_GUARDED_BY(coordinator_role_);
  std::vector<Replica> replicas_ LIQUID_GUARDED_BY(coordinator_role_);
  /// First added spec.
  std::optional<ReplicaSpec> autoscale_spec_
      LIQUID_GUARDED_BY(coordinator_role_);
  /// Counters accumulated during the run.
  FleetStats tally_ LIQUID_GUARDED_BY(coordinator_role_);
  double last_scale_event_ LIQUID_GUARDED_BY(coordinator_role_) = -1e300;
  /// Pending, consumed by Run.
  std::vector<KillEvent> kill_schedule_ LIQUID_GUARDED_BY(coordinator_role_);
  /// Pending, consumed by Run.
  std::vector<DegradeEvent> degrade_schedule_
      LIQUID_GUARDED_BY(coordinator_role_);
  std::vector<PendingRetry> pending_retries_
      LIQUID_GUARDED_BY(coordinator_role_);
  /// Original routed request by id, so a kill can re-submit the original
  /// (session/tenant intact) rather than the scheduler's mutated view.
  /// Lookup/erase only — never iterated, so its unordered order never
  /// reaches stats or traces.
  std::unordered_map<std::uint64_t, serving::TimedRequest> inflight_
      LIQUID_GUARDED_BY(coordinator_role_);
  /// Requests that completed a KV migration (for the interference-free
  /// decode-TPOT percentile split).  Membership tests only — never iterated.
  std::unordered_set<std::uint64_t> migrated_ids_
      LIQUID_GUARDED_BY(coordinator_role_);
  /// Visible stalls, sample pool.
  std::vector<double> migration_seconds_ LIQUID_GUARDED_BY(coordinator_role_);
  SlidingWindowStats ttft_window_ LIQUID_GUARDED_BY(coordinator_role_);
  /// Passive fleet-wide TPOT window behind the metrics gauge; fed alongside
  /// ttft_window_ but read by nothing that steers the simulation.
  SlidingWindowStats tpot_window_ LIQUID_GUARDED_BY(coordinator_role_);
  /// Per-pool signal windows, parallel to autoscale_.pools.
  std::vector<PoolRuntime> pool_runtime_ LIQUID_GUARDED_BY(coordinator_role_);
  /// Recent generated-token samples (finish, tokens) behind the cost-aware
  /// $/1M-token predictions.
  SlidingWindowStats tokens_window_ LIQUID_GUARDED_BY(coordinator_role_);
  /// Periodic autoscale tick state (armed only when tick_seconds > 0).
  bool tick_armed_ LIQUID_GUARDED_BY(coordinator_role_) = false;
  double next_autoscale_tick_ LIQUID_GUARDED_BY(coordinator_role_) = 0;
  /// The fleet has produced at least one completion or prefill handoff.
  /// Scale-down requires this evidence: a cold fleet with an empty queue is
  /// unprovisioned, not overprovisioned.
  bool work_observed_ LIQUID_GUARDED_BY(coordinator_role_) = false;
  /// Legacy-path downscale-stabilization state (pools keep theirs in
  /// PoolRuntime); < 0 = not currently reading low.
  double legacy_low_since_ LIQUID_GUARDED_BY(coordinator_role_) = -1;
  /// A stabilizing shrink is waiting out its window; keeps the periodic
  /// tick armed through an otherwise idle fleet so the shrink can land.
  bool shrink_pending_ LIQUID_GUARDED_BY(coordinator_role_) = false;
  /// Fleet-level event count for the SimThroughput meter: routing decisions,
  /// migration landings, kills, degrades, autoscale ticks.  Deterministic
  /// under a fixed seed (counts simulated work, not wall time).
  std::uint64_t fleet_events_ LIQUID_GUARDED_BY(coordinator_role_) = 0;
  /// Parallel execution mode (SetThreads).  threads_ <= 1 keeps pool_ null
  /// and every code path byte-identical to the legacy single-threaded loop.
  /// threads_ itself is unguarded set-once config: threads() reads it
  /// without asserting the role.
  std::size_t threads_ = 1;
  std::unique_ptr<util::ThreadPool> pool_ LIQUID_GUARDED_BY(coordinator_role_);
  /// Busy-replica scratch for the parallel fan-out (avoids an allocation
  /// per event-pump barrier).
  std::vector<Replica*> busy_scratch_ LIQUID_GUARDED_BY(coordinator_role_);
  /// Per-replica trace shards (parallel mode only), indexed by replica id.
  /// The unique_ptrs stay alive across runs — schedulers hold raw pointers.
  /// Workers write a shard only through their own replica's scheduler during
  /// the fan-out; the coordinator touches the vector (and merges) strictly
  /// outside it.
  std::vector<std::unique_ptr<obs::TraceRecorder>> trace_shards_
      LIQUID_GUARDED_BY(coordinator_role_);
  /// Views() scratch: one routing snapshot, rebuilt per decision in place.
  mutable std::vector<ReplicaView> views_scratch_
      LIQUID_GUARDED_BY(coordinator_role_);
  // Telemetry (null = detached; every hook is one branch when detached).
  // TraceRecorder/MetricsRegistry are externally synchronized (see their
  // headers): PT_GUARDED_BY states that dereferencing them is itself a
  // coordinator-only operation.
  obs::TraceRecorder* trace_ LIQUID_GUARDED_BY(coordinator_role_)
      LIQUID_PT_GUARDED_BY(coordinator_role_) = nullptr;
  obs::MetricsRegistry* metrics_ LIQUID_GUARDED_BY(coordinator_role_)
      LIQUID_PT_GUARDED_BY(coordinator_role_) = nullptr;
  MetricIds metric_ids_ LIQUID_GUARDED_BY(coordinator_role_);
  /// Owned by *metrics_.
  obs::Histogram* ttft_hist_ LIQUID_GUARDED_BY(coordinator_role_)
      LIQUID_PT_GUARDED_BY(coordinator_role_) = nullptr;
  /// Owned by *metrics_.
  obs::Histogram* tpot_hist_ LIQUID_GUARDED_BY(coordinator_role_)
      LIQUID_PT_GUARDED_BY(coordinator_role_) = nullptr;
};

}  // namespace liquid::cluster
