#pragma once
// Multi-replica cluster simulator: the fleet layer above the single-engine
// serving loop.  N replicas — each a full Scheduler+ServingEngine over its
// own paged-KV pool, optionally heterogeneous (A100 next to the paper's
// target GPU, different presets/models) — advance on a shared simulated
// clock while a Router places Poisson-trace arrivals.  Replicas can be added
// or removed mid-run (an autoscaling hook keyed on mean queue depth does
// both automatically); removing a replica drains its unfinished requests and
// re-routes them, so conservation (completed + dropped == submitted) holds
// across scale events.  Per-request timings from every replica pool into
// FleetStats.

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/fleet_stats.hpp"
#include "cluster/router.hpp"
#include "serving/engine.hpp"
#include "serving/scheduler.hpp"
#include "serving/workload.hpp"

namespace liquid::cluster {

/// Everything needed to stand up one replica.
struct ReplicaSpec {
  simgpu::HardwareSpec hw;
  serving::SystemPreset preset;
  serving::LlmConfig model;
  serving::EngineOptions options = {};
  std::size_t kv_pool_blocks = 4096;
  std::size_t block_tokens = 16;
  std::size_t max_batch = 64;

  [[nodiscard]] std::string Label() const { return hw.name + "/" + preset.name; }
};

/// Queue-depth autoscaler: when the mean outstanding requests per active
/// replica crosses `queue_high`, a replica (cloned from the first spec) is
/// added; below `queue_low` the least-loaded replica is drained and removed.
struct AutoscaleConfig {
  bool enabled = false;
  double queue_high = 8.0;
  double queue_low = 0.5;
  std::size_t min_replicas = 1;
  std::size_t max_replicas = 16;
  double cooldown_seconds = 2.0;  ///< minimum time between scale events
};

class ClusterSimulator {
 public:
  explicit ClusterSimulator(RoutePolicy policy = RoutePolicy::kLeastOutstanding,
                            AutoscaleConfig autoscale = {});

  /// Adds a replica (usable mid-run: its clock joins the fleet clock).
  /// Returns the replica id, which is stable for the simulator's lifetime.
  std::size_t AddReplica(const ReplicaSpec& spec);

  /// Drains the replica's unfinished requests, re-routes them to the
  /// remaining replicas, and deactivates it.  Its completed-request stats
  /// are retained.  Returns false for an unknown/already-removed id or when
  /// it is the last active replica.
  bool RemoveReplica(std::size_t id);

  /// Advances every active replica to `deadline` on the shared clock.
  void AdvanceTo(double deadline);

  /// Routes one request at its arrival time.  Returns the chosen replica id,
  /// or nullopt (counted as a fleet drop) when no replica is alive.
  std::optional<std::size_t> SubmitAndRoute(
      const serving::TimedRequest& request);

  /// Full episode: sorts the trace by arrival, interleaves advancing the
  /// shared clock, autoscaling, and routing, then runs all replicas to
  /// completion and aggregates FleetStats.
  FleetStats Run(const std::vector<serving::TimedRequest>& trace);

  [[nodiscard]] std::size_t ActiveReplicas() const;
  [[nodiscard]] std::size_t TotalOutstanding() const;
  [[nodiscard]] const Router& router() const { return router_; }

 private:
  struct Replica {
    std::size_t id = 0;
    ReplicaSpec spec;
    std::unique_ptr<serving::ServingEngine> engine;
    std::unique_ptr<serving::ContinuousBatchScheduler> scheduler;
    bool active = true;
    std::size_t submitted = 0;
  };

  [[nodiscard]] std::vector<ReplicaView> Views() const;
  void MaybeAutoscale(double now);

  Router router_;
  AutoscaleConfig autoscale_;
  std::vector<Replica> replicas_;
  std::optional<ReplicaSpec> autoscale_spec_;  ///< first added spec
  FleetStats tally_;  ///< counters accumulated during the run
  double last_scale_event_ = -1e300;
};

}  // namespace liquid::cluster
