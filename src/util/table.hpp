#pragma once
// Column-aligned ASCII table printer.  Every bench binary reproduces a paper
// table/figure by printing one of these, so the output reads like the paper's
// rows/series.

#include <iosfwd>
#include <string>
#include <vector>

namespace liquid {

class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  Table& SetHeader(std::vector<std::string> header);
  Table& AddRow(std::vector<std::string> row);
  /// Inserts a horizontal rule before the next added row.
  Table& AddRule();

  /// Renders with column alignment; numeric-looking cells are right-aligned.
  [[nodiscard]] std::string Render() const;
  void Print(std::ostream& os) const;
  void Print() const;  // to stdout

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace liquid
