#pragma once
// 64-byte-aligned heap buffer for tensor storage.  Alignment matches a cache
// line (and the 16-byte LDS.128 granularity the kernels model), so packed
// weight tiles can always be reinterpreted as uint32 registers safely.

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <span>

namespace liquid {

template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t count) { Resize(count); }

  void Resize(std::size_t count) {
    if (count == 0) {
      data_.reset();
      size_ = 0;
      return;
    }
    void* raw = ::operator new[](count * sizeof(T), std::align_val_t{64});
    data_.reset(static_cast<T*>(raw));
    size_ = count;
    for (std::size_t i = 0; i < size_; ++i) new (data_.get() + i) T{};
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  T* data() { return data_.get(); }
  const T* data() const { return data_.get(); }
  T& operator[](std::size_t i) { return data_.get()[i]; }
  const T& operator[](std::size_t i) const { return data_.get()[i]; }

  std::span<T> span() { return {data_.get(), size_}; }
  std::span<const T> span() const { return {data_.get(), size_}; }

 private:
  struct Deleter {
    void operator()(T* p) const {
      ::operator delete[](p, std::align_val_t{64});
    }
  };
  std::unique_ptr<T, Deleter> data_;
  std::size_t size_ = 0;
};

}  // namespace liquid
