#pragma once
// Uniform CLI flags for the bench and example binaries, so every entry point
// spells the observability and reproducibility knobs the same way:
//
//   --quick                smaller workload (CI-sized)
//   --seed N               RNG seed for the generated trace (seed_set tells
//                          the binary whether to override its default)
//   --trace-out PATH       write a Chrome Trace Event JSON (ui.perfetto.dev)
//   --trace-jsonl PATH     write the trace as JSONL (one event per line)
//   --metrics-out PATH     write the metrics time series as JSONL
//   --metrics-csv PATH     write the metrics time series as CSV
//   --json-out PATH        write the FleetStats summary as JSON
//   --profile-out BASE     enable the wall-clock profiler and write
//                          BASE.txt/.csv/.folded/.speedscope.json/.gemm_ai.csv
//   --threads N            worker threads for the cluster simulator's
//                          parallel runtime (0 = hardware concurrency; the
//                          default 1 keeps the byte-deterministic legacy
//                          single-threaded loop)
//
// Both `--flag value` and `--flag=value` are accepted.  Unknown arguments
// are collected into `positional` for the binary's own parsing.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace liquid {

struct CliFlags {
  bool quick = false;
  std::uint64_t seed = 0;
  bool seed_set = false;  ///< --seed was given; `seed` overrides the default
  std::string trace_out;
  std::string trace_jsonl;
  std::string metrics_out;
  std::string metrics_csv;
  std::string json_out;
  std::string profile_out;  ///< base path; empty = profiler stays disabled
  /// ClusterSimulator::SetThreads value (0 = hardware concurrency).  The
  /// default 1 preserves legacy single-threaded output byte-for-byte.
  std::size_t threads = 1;
  bool threads_set = false;  ///< --threads was given explicitly
  std::vector<std::string> positional;

  /// Any telemetry sink requested (the binary should attach a recorder).
  [[nodiscard]] bool WantsTrace() const {
    return !trace_out.empty() || !trace_jsonl.empty();
  }
  [[nodiscard]] bool WantsMetrics() const {
    return !metrics_out.empty() || !metrics_csv.empty();
  }
};

inline CliFlags ParseCliFlags(int argc, char** argv) {
  CliFlags flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto value = [&](const char* name) -> const char* {
      const std::size_t n = std::strlen(name);
      if (std::strncmp(arg, name, n) != 0) return nullptr;
      if (arg[n] == '=') return arg + n + 1;
      if (arg[n] == '\0' && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    // Distinct names per branch: an `else if` nests inside the previous
    // branch's scope, so reusing one name would shadow (-Wshadow).
    if (std::strcmp(arg, "--quick") == 0) {
      flags.quick = true;
    } else if (const char* seed_v = value("--seed")) {
      flags.seed = std::strtoull(seed_v, nullptr, 10);
      flags.seed_set = true;
    } else if (const char* trace_v = value("--trace-out")) {
      flags.trace_out = trace_v;
    } else if (const char* jsonl_v = value("--trace-jsonl")) {
      flags.trace_jsonl = jsonl_v;
    } else if (const char* metrics_v = value("--metrics-out")) {
      flags.metrics_out = metrics_v;
    } else if (const char* csv_v = value("--metrics-csv")) {
      flags.metrics_csv = csv_v;
    } else if (const char* json_v = value("--json-out")) {
      flags.json_out = json_v;
    } else if (const char* prof_v = value("--profile-out")) {
      flags.profile_out = prof_v;
    } else if (const char* threads_v = value("--threads")) {
      flags.threads =
          static_cast<std::size_t>(std::strtoull(threads_v, nullptr, 10));
      flags.threads_set = true;
    } else {
      flags.positional.push_back(arg);
    }
  }
  return flags;
}

}  // namespace liquid
