// Shared wall-clock timing helpers (std::chrono::steady_clock).
//
// One place for the hand-rolled timing loops that used to live in each bench:
// `WallTimer` is a restartable stopwatch, `WallTimer::NowNs()` the raw
// monotonic counter the profiler stamps scopes with, and `MinSecondsOver` the
// min-of-N-reps pattern every perf gate uses (min, not mean: the minimum over
// repetitions is the least-noisy estimator of the true cost on a shared box).

#pragma once

#include <chrono>
#include <cstdint>

namespace liquid {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  [[nodiscard]] double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double Millis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Monotonic nanoseconds since an unspecified epoch; the profiler's clock.
  [[nodiscard]] static std::uint64_t NowNs() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now().time_since_epoch())
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Best-of-`reps` wall seconds of `fn()`.  `fn` runs once before timing as a
/// warm-up (page faults, lazy provider resolution) — that run is not counted.
template <typename Fn>
double MinSecondsOver(int reps, Fn&& fn) {
  fn();  // warm-up, untimed
  double best = 1e30;
  for (int i = 0; i < reps; ++i) {
    WallTimer t;
    fn();
    const double s = t.Seconds();
    if (s < best) best = s;
  }
  return best;
}

}  // namespace liquid
