#pragma once
// SWAR (SIMD-within-a-register) emulation of the GPU register ISA.
//
// The paper's dequantization kernels (LiquidQuant, Section 5.3, Figure 8; and
// the QServe baseline, Section 3.2) operate on 32-bit registers holding four
// packed 8-bit lanes or eight packed 4-bit lanes.  A `std::uint32_t` on the CPU
// has *identical* semantics to a GPU general-purpose register, so every device
// instruction the paper uses maps to a portable C++ expression:
//
//   LOP.AND / LOP.XOR / LOP.OR   -> &, ^, |
//   SHF / SHR / SHL              -> >>, <<
//   IMAD (32-bit d = a*b + c)    -> a * b + c   (wrapping, as on hardware)
//   LOP3 (3-input boolean)       -> one logical op (hardware fuses 2 into 1)
//   PRMT (byte permute)          -> byte gather
//
// Every op routes through an IsaCounter so kernels can report their exact
// instruction mix — this is the paper's per-element dequantization cost "alpha"
// (Section 3.2/3.3), the quantity that decides whether dequantization can hide
// behind TMA loads and tensor-core MMA.
//
// `vadd4` (QServe's packed byte add) is NOT a native instruction on
// Ampere/Hopper; NVCC lowers it to a sequence of bitwise/arithmetic ops.  We
// implement the same carry-isolation lowering and count every constituent
// instruction, reproducing the pressure the paper measured (21% of warp stalls).

#include <array>
#include <cstdint>
#include <string>

namespace liquid {

/// Tally of emulated hardware instructions, by class.
struct IsaCounter {
  std::uint64_t logic = 0;   // AND/OR/XOR/NOT (LOP)
  std::uint64_t lop3 = 0;    // fused 3-input boolean
  std::uint64_t shift = 0;   // SHL/SHR/SHF
  std::uint64_t imad = 0;    // integer multiply-add (also plain IADD/IMUL)
  std::uint64_t prmt = 0;    // byte permute
  std::uint64_t setp = 0;    // predicate set (comparisons)
  std::uint64_t sel = 0;     // select / predicated move

  [[nodiscard]] std::uint64_t Total() const {
    return logic + lop3 + shift + imad + prmt + setp + sel;
  }
  void Reset() { *this = IsaCounter{}; }
  [[nodiscard]] std::string ToString() const;

  IsaCounter& operator+=(const IsaCounter& o) {
    logic += o.logic;
    lop3 += o.lop3;
    shift += o.shift;
    imad += o.imad;
    prmt += o.prmt;
    setp += o.setp;
    sel += o.sel;
    return *this;
  }
};

// ---------------------------------------------------------------------------
// Emulated register ISA.  Each function performs the operation and charges the
// counter (if provided).  The counter parameter is last and defaults to null
// so hot loops can run uninstrumented at full speed.
// ---------------------------------------------------------------------------
namespace isa {

using u32 = std::uint32_t;

inline u32 And(u32 a, u32 b, IsaCounter* c = nullptr) {
  if (c) ++c->logic;
  return a & b;
}
inline u32 Or(u32 a, u32 b, IsaCounter* c = nullptr) {
  if (c) ++c->logic;
  return a | b;
}
inline u32 Xor(u32 a, u32 b, IsaCounter* c = nullptr) {
  if (c) ++c->logic;
  return a ^ b;
}
inline u32 Not(u32 a, IsaCounter* c = nullptr) {
  if (c) ++c->logic;
  return ~a;
}
inline u32 Shr(u32 a, unsigned n, IsaCounter* c = nullptr) {
  if (c) ++c->shift;
  return a >> n;
}
inline u32 Shl(u32 a, unsigned n, IsaCounter* c = nullptr) {
  if (c) ++c->shift;
  return a << n;
}

/// 32-bit integer multiply-add: d = a*b + c, wrapping on overflow exactly as
/// the hardware IMAD does.  Plain IADD / IMUL are IMAD with b==1 / c==0 and
/// issue on the same pipe, so they are charged here too.
inline u32 Imad(u32 a, u32 b, u32 addend, IsaCounter* c = nullptr) {
  if (c) ++c->imad;
  return a * b + addend;
}
inline u32 Iadd(u32 a, u32 b, IsaCounter* c = nullptr) {
  if (c) ++c->imad;
  return a + b;
}

/// LOP3: arbitrary 3-input boolean.  We expose the two fusions the NVCC
/// backend actually emits for these kernels.
inline u32 Lop3AndOr(u32 a, u32 mask, u32 orv, IsaCounter* c = nullptr) {
  if (c) ++c->lop3;
  return (a & mask) | orv;
}
inline u32 Lop3AndXor(u32 a, u32 mask, u32 xorv, IsaCounter* c = nullptr) {
  if (c) ++c->lop3;
  return (a & mask) ^ xorv;
}

/// PRMT: gather four bytes from the 64-bit concatenation {b,a} according to
/// the low 4 nibbles of `selector` (hardware semantics, mode 0).
inline u32 Prmt(u32 a, u32 b, u32 selector, IsaCounter* c = nullptr) {
  if (c) ++c->prmt;
  const std::uint64_t src =
      (static_cast<std::uint64_t>(b) << 32) | static_cast<std::uint64_t>(a);
  u32 out = 0;
  for (int i = 0; i < 4; ++i) {
    const unsigned sel = (selector >> (4 * i)) & 0x7u;
    const unsigned sign = (selector >> (4 * i)) & 0x8u;
    std::uint8_t byte =
        static_cast<std::uint8_t>((src >> (8 * sel)) & 0xFFu);
    if (sign) {  // replicate MSB (sign mode)
      byte = (byte & 0x80u) ? 0xFFu : 0x00u;
    }
    out |= static_cast<u32>(byte) << (8 * i);
  }
  return out;
}

/// vadd4: per-byte wrapping add of two registers holding four int8 lanes.
/// Not native on Hopper — lowered to the standard carry-isolation sequence.
/// Charges every constituent instruction (6 ops), matching the "dozen
/// low-level operations" pressure for the two vadds QServe needs.
inline u32 Vadd4(u32 a, u32 b, IsaCounter* c = nullptr) {
  // Carry-isolation: add the low 7 bits of each byte, then patch the MSBs.
  const u32 low_mask = 0x7F7F7F7Fu;
  const u32 a_low = And(a, low_mask, c);
  const u32 b_low = And(b, low_mask, c);
  const u32 sum_low = Iadd(a_low, b_low, c);
  const u32 msb_xor = Xor(a, b, c);
  const u32 msb = And(msb_xor, ~low_mask, c);
  return Xor(sum_low, msb, c);
}

/// vsub4: per-byte wrapping subtract, lowered like vadd4 (via two's
/// complement of each byte lane: ~b + 0x01010101 per-lane add).
inline u32 Vsub4(u32 a, u32 b, IsaCounter* c = nullptr) {
  const u32 nb = Not(b, c);
  const u32 ones = 0x01010101u;
  // a + ~b + 1 per lane == vadd4(a, vadd4(~b, 0x01010101)).
  const u32 negb = Vadd4(nb, ones, c);
  return Vadd4(a, negb, c);
}

}  // namespace isa

// ---------------------------------------------------------------------------
// Packed-lane helpers (not charged: these are host-side conveniences used to
// build test vectors, not part of any kernel's instruction stream).
// ---------------------------------------------------------------------------

/// Packs four uint8 lanes into a register, lane 0 in the least significant byte.
constexpr std::uint32_t PackBytes(std::uint8_t b0, std::uint8_t b1,
                                  std::uint8_t b2, std::uint8_t b3) {
  return static_cast<std::uint32_t>(b0) | (static_cast<std::uint32_t>(b1) << 8) |
         (static_cast<std::uint32_t>(b2) << 16) |
         (static_cast<std::uint32_t>(b3) << 24);
}

/// Extracts lane `i` (0 = least significant byte).
constexpr std::uint8_t ByteLane(std::uint32_t reg, int i) {
  return static_cast<std::uint8_t>((reg >> (8 * i)) & 0xFFu);
}

/// Packs eight 4-bit lanes in the paper's interleaved nibble order
/// (Figure 8): register layout [w7 w3 | w6 w2 | w5 w1 | w4 w0], i.e. byte i
/// holds (w(i+4) << 4) | w(i).
constexpr std::uint32_t PackNibblesInterleaved(const std::array<std::uint8_t, 8>& w) {
  std::uint32_t reg = 0;
  for (int i = 0; i < 4; ++i) {
    const std::uint32_t byte =
        static_cast<std::uint32_t>((w[static_cast<std::size_t>(i + 4)] << 4) |
                                   (w[static_cast<std::size_t>(i)] & 0xFu));
    reg |= byte << (8 * i);
  }
  return reg;
}

/// Inverse of PackNibblesInterleaved.
constexpr std::array<std::uint8_t, 8> UnpackNibblesInterleaved(std::uint32_t reg) {
  std::array<std::uint8_t, 8> w{};
  for (int i = 0; i < 4; ++i) {
    const std::uint8_t byte = ByteLane(reg, i);
    w[static_cast<std::size_t>(i)] = byte & 0xFu;
    w[static_cast<std::size_t>(i + 4)] = byte >> 4;
  }
  return w;
}

/// Broadcasts one byte to all four lanes (e.g. the packed zero-offset `a`).
constexpr std::uint32_t BroadcastByte(std::uint8_t b) {
  return 0x01010101u * static_cast<std::uint32_t>(b);
}

}  // namespace liquid
