#pragma once
// Work-stealing thread pool for the parallel cluster runtime.
//
// The ClusterSimulator's event pump alternates two phases: a SERIAL phase on
// the coordinating thread (routing decisions, KV-migration landings, chaos
// events, autoscale ticks — everything that touches more than one replica)
// and a PARALLEL phase where each replica advances its own scheduler to the
// next event-pump barrier.  Replica tasks are coarse (whole StepUntil /
// RunToCompletion calls over private state) but the barriers are frequent —
// one per fleet event — so the pool is built for low submit/wake latency on
// small task batches rather than for throughput on thousands of tiny tasks:
//
//   * One deque per worker.  Submission round-robins across the deques
//     (multi-producer submission; each deque has its own lock), the owning
//     worker pops newest-first from its own deque, and an idle worker steals
//     oldest-first from its siblings — classic work-stealing, implemented
//     with per-deque mutexes instead of lock-free CAS loops because the
//     tasks are microseconds long and correctness under TSan is part of the
//     contract (the TSan CI job runs the cluster suite over this pool).
//   * Completion is an atomic pending-task count: WaitIdle() is the
//     event-pump barrier, spinning briefly (submitters usually wait only a
//     few microseconds) before falling back to a condition variable.
//   * Idle workers also spin briefly before sleeping, so a barrier-heavy
//     workload is not paying a futex round-trip per task.
//
// Tasks must not throw (the simulator's replica steps are noexcept in
// practice); a throwing task would terminate via std::terminate, which is
// the behavior we want for a corrupted simulation rather than silently
// swallowing the error on a worker thread.

#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace liquid::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (minimum 1 either way).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task.  Callable from any thread (including workers, so a
  /// task may spawn subtasks); the round-robin cursor spreads submissions
  /// across the per-worker deques.
  void Submit(std::function<void()> task) LIQUID_EXCLUDES(wake_mu_);

  /// Blocks until every task submitted so far has FINISHED (not merely been
  /// dequeued).  This is the event-pump barrier between the parallel replica
  /// phase and the serial fleet phase; the pool's internal synchronization
  /// gives the caller a happens-before edge over everything the tasks wrote.
  void WaitIdle() LIQUID_EXCLUDES(idle_mu_);

  [[nodiscard]] std::size_t size() const { return workers_.size(); }
  /// Tasks submitted but not yet finished (approximate between barriers).
  [[nodiscard]] std::size_t pending() const {
    return pending_.load(std::memory_order_acquire);
  }

 private:
  struct WorkerQueue {
    Mutex mu;
    std::deque<std::function<void()>> tasks LIQUID_GUARDED_BY(mu);
  };

  /// Pops the newest task of `self`'s own deque, else steals the oldest from
  /// a sibling (scan starts after `self` so thieves spread out).  Empty
  /// function when nothing is runnable.
  std::function<void()> TakeTask(std::size_t self);
  void WorkerLoop(std::size_t self) LIQUID_EXCLUDES(wake_mu_, idle_mu_);

  // queues_/workers_ are built in the constructor and never resized; the
  // vectors themselves are immutable after construction (each WorkerQueue's
  // contents are guarded by its own mu above).
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> next_queue_{0};  ///< round-robin submit cursor
  std::atomic<std::size_t> pending_{0};     ///< submitted, not yet finished
  std::atomic<bool> stop_{false};

  // wake_mu_/idle_mu_ guard no plain data — stop_ and pending_ are atomics —
  // they exist to close the predicate-check/sleep race: notifiers take the
  // lock (empty critical section) so a wakeup cannot land in the gap between
  // a sleeper's predicate check and its actual sleep.
  Mutex wake_mu_;
  CondVar wake_cv_;  ///< workers sleep here when starved
  Mutex idle_mu_;
  CondVar idle_cv_;  ///< WaitIdle sleeps here
};

}  // namespace liquid::util
