#include "util/thread_pool.hpp"

namespace liquid::util {

namespace {
// Spin iterations before falling back to a condition variable.  The host may
// be a single-core container (CI runners included), so the spin is short and
// yields on every iteration: on one core, spinning without yielding would
// actively delay the worker that holds the task we are waiting for.
constexpr int kSpinIterations = 64;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    // The lock orders stop_ against the worker's sleep check: without it a
    // worker could observe stop_==false, then sleep after our notify and
    // hang the destructor.
    MutexLock lock(wake_mu_);
    stop_.store(true, std::memory_order_release);
  }
  wake_cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  const std::size_t slot =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  pending_.fetch_add(1, std::memory_order_release);
  {
    WorkerQueue& q = *queues_[slot];
    MutexLock lock(q.mu);
    q.tasks.push_back(std::move(task));
  }
  // Empty critical section before the notify: a worker that already saw
  // pending_==0 in its wait predicate holds wake_mu_ until it actually
  // sleeps, so acquiring the lock here orders our increment before its
  // wakeup — without it the notify could land in the gap between the
  // predicate check and the sleep and be lost.
  { MutexLock lock(wake_mu_); }
  wake_cv_.NotifyOne();
}

std::function<void()> ThreadPool::TakeTask(std::size_t self) {
  {
    WorkerQueue& q = *queues_[self];
    MutexLock lock(q.mu);
    if (!q.tasks.empty()) {
      auto task = std::move(q.tasks.back());
      q.tasks.pop_back();
      return task;
    }
  }
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    const std::size_t victim = (self + k) % queues_.size();
    WorkerQueue& q = *queues_[victim];
    MutexLock lock(q.mu);
    if (!q.tasks.empty()) {
      auto task = std::move(q.tasks.front());
      q.tasks.pop_front();
      return task;
    }
  }
  return {};
}

void ThreadPool::WorkerLoop(std::size_t self) {
  int spins = 0;
  while (true) {
    if (auto task = TakeTask(self)) {
      spins = 0;
      task();
      // release pairs with WaitIdle's acquire load: everything the task
      // wrote happens-before the barrier caller's reads.
      if (pending_.fetch_sub(1, std::memory_order_release) == 1) {
        MutexLock lock(idle_mu_);
        idle_cv_.NotifyAll();
      }
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    if (++spins < kSpinIterations) {
      std::this_thread::yield();
      continue;
    }
    spins = 0;
    MutexLock lock(wake_mu_);
    wake_cv_.Wait(wake_mu_, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
  }
}

void ThreadPool::WaitIdle() {
  for (int spins = 0; spins < kSpinIterations; ++spins) {
    if (pending_.load(std::memory_order_acquire) == 0) return;
    std::this_thread::yield();
  }
  MutexLock lock(idle_mu_);
  idle_cv_.Wait(idle_mu_, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace liquid::util
