#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <iostream>
#include <sstream>

namespace liquid {
namespace {

bool LooksNumeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit_seen = false;
  for (const char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != '-' && c != '+' && c != ',' && c != 'x' &&
               c != '%' && c != 'e' && c != '(' && c != ')' && c != ' ') {
      return false;
    }
  }
  return digit_seen;
}

}  // namespace

Table& Table::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
  return *this;
}

Table& Table::AddRow(std::vector<std::string> row) {
  rows_.push_back({std::move(row), pending_rule_});
  pending_rule_ = false;
  return *this;
}

Table& Table::AddRule() {
  pending_rule_ = true;
  return *this;
}

std::string Table::Render() const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.cells.size());
  std::vector<std::size_t> width(cols, 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = std::max(width[c], header_[c].size());
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      width[c] = std::max(width[c], r.cells[c].size());
    }
  }

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < cols; ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  auto emit_row = [&](const std::vector<std::string>& cells, bool align_right) {
    os << '|';
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      const bool right = align_right && LooksNumeric(cell);
      const std::size_t pad = width[c] - cell.size();
      os << ' ';
      if (right) os << std::string(pad, ' ') << cell;
      else os << cell << std::string(pad, ' ');
      os << " |";
    }
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  rule();
  if (!header_.empty()) {
    emit_row(header_, /*align_right=*/false);
    rule();
  }
  for (const auto& r : rows_) {
    if (r.rule_before) rule();
    emit_row(r.cells, /*align_right=*/true);
  }
  rule();
  return os.str();
}

void Table::Print(std::ostream& os) const { os << Render(); }
void Table::Print() const { Print(std::cout); }

}  // namespace liquid
