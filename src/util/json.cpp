#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace liquid {

void AppendJsonNumber(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buf[40];
  // Integers inside the double-exact range print without fraction/exponent,
  // so counters and ids read naturally and hash identically everywhere.
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  out += buf;
}

void AppendJsonString(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!scopes_.empty()) {
    if (!scopes_.back().first) out_ += ',';
    scopes_.back().first = false;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  scopes_.push_back({'{', true});
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  scopes_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  scopes_.push_back({'[', true});
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  scopes_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!scopes_.empty()) {
    if (!scopes_.back().first) out_ += ',';
    scopes_.back().first = false;
  }
  AppendJsonString(out_, key);
  out_ += ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  AppendJsonString(out_, value);
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  BeforeValue();
  AppendJsonNumber(out_, value);
  return *this;
}

JsonWriter& JsonWriter::Number(std::uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Number(std::int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_.append(json);
  return *this;
}

namespace {

// Recursive-descent syntax checker.  `pos` advances past the parsed value;
// returns false on any malformation.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Check() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  bool String() {
    if (!Eat('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_++]))) {
              return false;
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
    }
    return false;
  }
  bool Digits() {
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return false;
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return true;
  }
  bool Number() {
    Eat('-');
    if (Eat('0')) {
      // no leading zeros
    } else if (!Digits()) {
      return false;
    }
    if (Eat('.') && !Digits()) return false;
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!Digits()) return false;
    }
    return true;
  }
  bool Value() {
    if (++depth_ > 256) return false;
    bool ok = false;
    if (pos_ >= text_.size()) {
      ok = false;
    } else if (text_[pos_] == '{') {
      ++pos_;
      SkipWs();
      if (Eat('}')) {
        ok = true;
      } else {
        for (;;) {
          SkipWs();
          if (!String()) break;
          SkipWs();
          if (!Eat(':')) break;
          SkipWs();
          if (!Value()) break;
          SkipWs();
          if (Eat('}')) {
            ok = true;
            break;
          }
          if (!Eat(',')) break;
        }
      }
    } else if (text_[pos_] == '[') {
      ++pos_;
      SkipWs();
      if (Eat(']')) {
        ok = true;
      } else {
        for (;;) {
          SkipWs();
          if (!Value()) break;
          SkipWs();
          if (Eat(']')) {
            ok = true;
            break;
          }
          if (!Eat(',')) break;
        }
      }
    } else if (text_[pos_] == '"') {
      ok = String();
    } else if (text_[pos_] == 't') {
      ok = Literal("true");
    } else if (text_[pos_] == 'f') {
      ok = Literal("false");
    } else if (text_[pos_] == 'n') {
      ok = Literal("null");
    } else {
      ok = Number();
    }
    --depth_;
    return ok;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool JsonSyntaxValid(std::string_view text) {
  return JsonChecker(text).Check();
}

}  // namespace liquid
