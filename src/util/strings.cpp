#include "util/strings.hpp"

#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace liquid {

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string HumanTime(double seconds) {
  const double abs = std::fabs(seconds);
  if (abs >= 1.0) return Format("%.3f s", seconds);
  if (abs >= 1e-3) return Format("%.3f ms", seconds * 1e3);
  if (abs >= 1e-6) return Format("%.3f us", seconds * 1e6);
  return Format("%.1f ns", seconds * 1e9);
}

std::string HumanBytes(double bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  return Format("%.2f %s", bytes, units[u]);
}

std::string FixedDouble(double value, int precision) {
  return Format("%.*f", precision, value);
}

std::string WithCommas(long long value) {
  std::string digits = Format("%lld", value < 0 ? -value : value);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return value < 0 ? "-" + out : out;
}

}  // namespace liquid
