#pragma once
// Small formatting helpers (libstdc++ 12 lacks <format>).

#include <string>

namespace liquid {

/// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// "1.23 us" / "4.56 ms" style human-readable duration from seconds.
std::string HumanTime(double seconds);

/// "12.3 GB" style human-readable size from bytes.
std::string HumanBytes(double bytes);

/// Fixed-precision double, e.g. FixedDouble(3.14159, 2) == "3.14".
std::string FixedDouble(double value, int precision);

/// Thousands-separated integer, e.g. 16694 -> "16,694" (Table 1 style).
std::string WithCommas(long long value);

}  // namespace liquid
