#pragma once
// Minimal deterministic JSON emission for telemetry exports.  The golden
// tests pin trace/metrics artifacts byte-for-byte, so every number must
// format identically across platforms and runs: integers print without a
// fraction, other finite doubles print with %.17g (round-trip exact), and
// non-finite values — PredictTtft legitimately returns infinity — print as
// null so the output stays valid JSON.
//
// JsonWriter is a push-style emitter (no DOM): Begin/End scopes manage the
// commas, Key/value calls append.  JsonSyntaxValid is a strict syntax
// checker used by tests and benches to self-verify artifacts before CI's
// external `python3 -m json.tool` pass sees them.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace liquid {

/// Appends `value` to `out` as a deterministic JSON number (or `null` when
/// non-finite).  Integral values within the double-exact range print without
/// an exponent or fraction.
void AppendJsonNumber(std::string& out, double value);

/// Appends `text` to `out` as a quoted JSON string with escapes.
void AppendJsonString(std::string& out, std::string_view text);

/// Strict JSON syntax check (full parse, no semantics).  Accepts exactly one
/// top-level value; rejects trailing garbage.
[[nodiscard]] bool JsonSyntaxValid(std::string_view text);

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  /// Object member key; must be followed by exactly one value (or scope).
  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  JsonWriter& Number(double value);
  JsonWriter& Number(std::uint64_t value);
  JsonWriter& Number(std::int64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  /// Splices pre-rendered JSON (e.g. FleetStatsToJson output) as one value.
  JsonWriter& Raw(std::string_view json);

  [[nodiscard]] const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  void BeforeValue();

  struct Scope {
    char kind = '{';      // '{' or '['
    bool first = true;    // no comma needed yet
  };
  std::string out_;
  std::vector<Scope> scopes_;
  bool after_key_ = false;
};

}  // namespace liquid
