#include "util/half.hpp"

#include <bit>
#include <cstring>

namespace liquid {
namespace {

constexpr std::uint32_t kF32SignMask = 0x80000000u;

}  // namespace

std::uint16_t Half::FromFloat(float value) {
  const std::uint32_t f = std::bit_cast<std::uint32_t>(value);
  const std::uint16_t sign = static_cast<std::uint16_t>((f & kF32SignMask) >> 16);
  const std::uint32_t abs = f & 0x7FFFFFFFu;

  if (abs >= 0x7F800000u) {  // Inf or NaN.
    if (abs > 0x7F800000u) {
      // NaN: keep the top mantissa bits, force quiet bit so the payload is
      // never rounded away to infinity.
      return static_cast<std::uint16_t>(sign | 0x7E00u |
                                        ((abs >> 13) & 0x03FFu));
    }
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (abs >= 0x477FF000u) {  // Rounds to >= 2^16: overflow to infinity.
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (abs < 0x33000001u) {  // Below half of the smallest subnormal: to zero.
    return sign;
  }

  std::int32_t exp = static_cast<std::int32_t>(abs >> 23) - 127;
  std::uint32_t mant = abs & 0x007FFFFFu;

  if (exp < -14) {
    // Subnormal half: shift the (implicit-1) mantissa right so the exponent
    // becomes -14, then round to nearest even.
    mant |= 0x00800000u;
    const int shift = -14 - exp;  // in [1, 10] given the zero cutoff above.
    const std::uint32_t kept = mant >> (13 + shift);
    const std::uint32_t round_bit = (mant >> (12 + shift)) & 1u;
    const std::uint32_t sticky =
        (mant & ((1u << (12 + shift)) - 1u)) != 0 ? 1u : 0u;
    std::uint32_t result = kept + (round_bit & (sticky | kept)) ;
    return static_cast<std::uint16_t>(sign | result);
  }

  // Normal range. Round mantissa from 23 to 10 bits, RNE.
  const std::uint32_t kept = mant >> 13;
  const std::uint32_t round_bit = (mant >> 12) & 1u;
  const std::uint32_t sticky = (mant & 0x0FFFu) != 0 ? 1u : 0u;
  std::uint32_t half_mant = kept + (round_bit & (sticky | kept));
  std::uint32_t half_exp = static_cast<std::uint32_t>(exp + 15);
  if (half_mant == 0x400u) {  // Mantissa carry-out: bump exponent.
    half_mant = 0;
    ++half_exp;
    if (half_exp >= 31) return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  return static_cast<std::uint16_t>(sign | (half_exp << 10) | half_mant);
}

float Half::ToFloatImpl(std::uint16_t bits) {
  const std::uint32_t sign = (bits & 0x8000u) ? kF32SignMask : 0u;
  std::uint32_t exp = (bits >> 10) & 0x1Fu;
  std::uint32_t mant = bits & 0x03FFu;

  std::uint32_t f;
  if (exp == 0) {
    if (mant == 0) {
      f = sign;  // Signed zero.
    } else {
      // Subnormal: normalize by shifting the mantissa up.
      int e = -1;
      std::uint32_t m = mant;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x0400u) == 0);
      f = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
          ((m & 0x03FFu) << 13);
    }
  } else if (exp == 31) {
    f = sign | 0x7F800000u | (mant << 13);  // Inf / NaN.
  } else {
    f = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(f);
}

}  // namespace liquid
