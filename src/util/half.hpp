#pragma once
// IEEE 754 binary16 ("half") soft-float.
//
// The paper's FP16 baselines (TRT-FP16, W4A16 with FP16 dequant targets) run on
// tensor cores that read FP16 operands and accumulate in FP32.  We reproduce
// those numerics with a software binary16 type: storage is the 16-bit pattern,
// arithmetic is performed by converting to float (binary32), which is exact for
// every binary16 value, and rounding back with round-to-nearest-even — the same
// rounding the hardware applies.

#include <cstdint>
#include <limits>

namespace liquid {

class Half {
 public:
  constexpr Half() = default;

  /// Converts a float to binary16 with round-to-nearest-even, handling
  /// subnormals, overflow-to-infinity, and NaN payload preservation (quietened).
  explicit Half(float value) : bits_(FromFloat(value)) {}

  /// Reinterprets a raw 16-bit pattern as a Half.
  static constexpr Half FromBits(std::uint16_t bits) {
    Half h;
    h.bits_ = bits;
    return h;
  }

  [[nodiscard]] constexpr std::uint16_t bits() const { return bits_; }

  /// Exact widening conversion (every binary16 value is representable in
  /// binary32).
  [[nodiscard]] float ToFloat() const { return ToFloatImpl(bits_); }
  explicit operator float() const { return ToFloat(); }

  [[nodiscard]] constexpr bool IsNan() const {
    return (bits_ & 0x7C00u) == 0x7C00u && (bits_ & 0x03FFu) != 0;
  }
  [[nodiscard]] constexpr bool IsInf() const {
    return (bits_ & 0x7FFFu) == 0x7C00u;
  }

  friend Half operator+(Half a, Half b) {
    return Half(a.ToFloat() + b.ToFloat());
  }
  friend Half operator-(Half a, Half b) {
    return Half(a.ToFloat() - b.ToFloat());
  }
  friend Half operator*(Half a, Half b) {
    return Half(a.ToFloat() * b.ToFloat());
  }
  friend Half operator/(Half a, Half b) {
    return Half(a.ToFloat() / b.ToFloat());
  }
  friend bool operator==(Half a, Half b) {
    return a.ToFloat() == b.ToFloat();  // IEEE semantics: -0 == +0, NaN != NaN.
  }
  friend bool operator<(Half a, Half b) { return a.ToFloat() < b.ToFloat(); }

  static std::uint16_t FromFloat(float value);
  static float ToFloatImpl(std::uint16_t bits);

 private:
  std::uint16_t bits_ = 0;
};

/// Round-trips a float through binary16: the value an FP16 tensor element would
/// hold after storing `value`.
inline float QuantizeToHalf(float value) { return Half(value).ToFloat(); }

constexpr float kHalfMax = 65504.0f;

}  // namespace liquid
