#include "util/swar.hpp"

#include "util/strings.hpp"

namespace liquid {

std::string IsaCounter::ToString() const {
  return Format(
      "logic=%llu lop3=%llu shift=%llu imad=%llu prmt=%llu setp=%llu sel=%llu "
      "total=%llu",
      static_cast<unsigned long long>(logic),
      static_cast<unsigned long long>(lop3),
      static_cast<unsigned long long>(shift),
      static_cast<unsigned long long>(imad),
      static_cast<unsigned long long>(prmt),
      static_cast<unsigned long long>(setp),
      static_cast<unsigned long long>(sel),
      static_cast<unsigned long long>(Total()));
}

}  // namespace liquid
