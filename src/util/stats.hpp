#pragma once
// Summary statistics used by the quantization-accuracy study and the benchmark
// harness (percentile latencies, MSE/SQNR of dequantized tensors).

#include <cstddef>
#include <span>
#include <vector>

namespace liquid {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Single-pass mean/stddev/min/max (Welford).
Summary Summarize(std::span<const double> values);
Summary Summarize(std::span<const float> values);

/// Linear-interpolated percentile; `p` in [0, 100]. Copies and sorts.
double Percentile(std::span<const double> values, double p);

/// Mean squared error between a reference tensor and its reconstruction.
double MeanSquaredError(std::span<const float> reference,
                        std::span<const float> reconstructed);

/// Signal-to-quantization-noise ratio in dB: 10*log10(E[x^2] / MSE).
/// Higher is better; each extra quantization bit is worth ~6 dB.
double SignalToQuantNoiseDb(std::span<const float> reference,
                            std::span<const float> reconstructed);

/// Max absolute elementwise error.
double MaxAbsError(std::span<const float> reference,
                   std::span<const float> reconstructed);

/// Relative Frobenius-norm error: ||ref - rec||_F / ||ref||_F.
double RelativeFrobeniusError(std::span<const float> reference,
                              std::span<const float> reconstructed);

/// Geometric mean of positive values (speedup aggregation).
double GeometricMean(std::span<const double> values);

}  // namespace liquid
