#pragma once
// Time-windowed sample buffer for latency-aware control loops (autoscaling on
// p99 TTFT, SLO dashboards).  Samples are (timestamp, value) pairs; queries
// evict everything older than `now - window` and summarize what remains.
//
// Samples may arrive slightly out of order (a fleet pulls completions from
// replicas whose discrete-event clocks interleave), so Add keeps the buffer
// sorted by timestamp with an insertion that is O(1) for the common
// already-ordered case.

#include <algorithm>
#include <cstddef>
#include <deque>
#include <vector>

#include "util/stats.hpp"

namespace liquid {

class SlidingWindowStats {
 public:
  explicit SlidingWindowStats(double window_seconds = 10.0)
      : window_(window_seconds) {}

  /// Records `value` observed at time `t` (seconds on the caller's clock).
  /// Also evicts samples the new latest timestamp has aged out, so memory
  /// stays bounded by the window even if the owner never queries.
  void Add(double t, double value) {
    const Sample s{t, value};
    if (samples_.empty() || t >= samples_.back().t) {
      samples_.push_back(s);
    } else {
      const auto at = std::upper_bound(
          samples_.begin(), samples_.end(), s,
          [](const Sample& a, const Sample& b) { return a.t < b.t; });
      samples_.insert(at, s);
    }
    Evict(samples_.back().t);
  }

  /// Samples still inside [now - window, now]; evicts older ones.
  [[nodiscard]] std::size_t Count(double now) {
    Evict(now);
    return samples_.size();
  }

  /// Linear-interpolated percentile (`p` in [0, 100]) over the live window;
  /// 0 when the window is empty.
  [[nodiscard]] double Percentile(double now, double p) {
    Evict(now);
    if (samples_.empty()) return 0.0;
    std::vector<double> values;
    values.reserve(samples_.size());
    for (const Sample& s : samples_) values.push_back(s.value);
    return liquid::Percentile(values, p);
  }

  [[nodiscard]] double Mean(double now) {
    Evict(now);
    if (samples_.empty()) return 0.0;
    double sum = 0;
    for (const Sample& s : samples_) sum += s.value;
    return sum / static_cast<double>(samples_.size());
  }

  [[nodiscard]] double window_seconds() const { return window_; }

 private:
  struct Sample {
    double t = 0;
    double value = 0;
  };

  void Evict(double now) {
    const double horizon = now - window_;
    while (!samples_.empty() && samples_.front().t < horizon) {
      samples_.pop_front();
    }
  }

  double window_;
  std::deque<Sample> samples_;
};

}  // namespace liquid
