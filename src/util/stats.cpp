#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace liquid {
namespace {

template <typename T>
Summary SummarizeImpl(std::span<const T> values) {
  Summary s;
  if (values.empty()) return s;
  s.count = values.size();
  s.min = std::numeric_limits<double>::infinity();
  s.max = -std::numeric_limits<double>::infinity();
  double mean = 0.0;
  double m2 = 0.0;
  std::size_t n = 0;
  for (const T v : values) {
    const double x = static_cast<double>(v);
    ++n;
    const double delta = x - mean;
    mean += delta / static_cast<double>(n);
    m2 += delta * (x - mean);
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = mean;
  s.stddev = n > 1 ? std::sqrt(m2 / static_cast<double>(n - 1)) : 0.0;
  return s;
}

}  // namespace

Summary Summarize(std::span<const double> values) {
  return SummarizeImpl(values);
}
Summary Summarize(std::span<const float> values) { return SummarizeImpl(values); }

double Percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank =
      (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double MeanSquaredError(std::span<const float> reference,
                        std::span<const float> reconstructed) {
  if (reference.empty() || reference.size() != reconstructed.size()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double d =
        static_cast<double>(reference[i]) - static_cast<double>(reconstructed[i]);
    acc += d * d;
  }
  return acc / static_cast<double>(reference.size());
}

double SignalToQuantNoiseDb(std::span<const float> reference,
                            std::span<const float> reconstructed) {
  const double mse = MeanSquaredError(reference, reconstructed);
  if (mse == 0.0) return std::numeric_limits<double>::infinity();
  double power = 0.0;
  for (const float v : reference) {
    power += static_cast<double>(v) * static_cast<double>(v);
  }
  power /= static_cast<double>(reference.size());
  return 10.0 * std::log10(power / mse);
}

double MaxAbsError(std::span<const float> reference,
                   std::span<const float> reconstructed) {
  double worst = 0.0;
  const std::size_t n = std::min(reference.size(), reconstructed.size());
  for (std::size_t i = 0; i < n; ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(reference[i]) -
                                     static_cast<double>(reconstructed[i])));
  }
  return worst;
}

double RelativeFrobeniusError(std::span<const float> reference,
                              std::span<const float> reconstructed) {
  double num = 0.0;
  double den = 0.0;
  const std::size_t n = std::min(reference.size(), reconstructed.size());
  for (std::size_t i = 0; i < n; ++i) {
    const double d =
        static_cast<double>(reference[i]) - static_cast<double>(reconstructed[i]);
    num += d * d;
    den += static_cast<double>(reference[i]) * static_cast<double>(reference[i]);
  }
  if (den == 0.0) return num == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  return std::sqrt(num / den);
}

double GeometricMean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace liquid
