#pragma once
// Compile-time concurrency contracts: clang thread-safety-analysis macros and
// the annotated synchronization primitives the rest of the tree builds on.
//
// Clang's `-Wthread-safety` analysis proves lock discipline at compile time:
// a member declared `LIQUID_GUARDED_BY(mu)` cannot be touched on any path
// that does not hold `mu`, a function declared `LIQUID_REQUIRES(mu)` cannot
// be called without it, and the static-analysis CI job turns violations into
// build failures (`-Wthread-safety -Werror`).  Off clang every macro expands
// to nothing, so gcc builds are byte-identical to before.
//
// Two kinds of capability live here:
//
//   * `Mutex` / `MutexLock` / `CondVar` — annotated wrappers over the
//     standard primitives for state that is genuinely lock-guarded (the
//     work-stealing ThreadPool queues, the WallProfiler tree registry).
//     Use these instead of raw std::mutex anywhere data crosses threads:
//     a raw mutex is invisible to the analysis.
//
//   * `ThreadRole` / `RoleGuard` — a zero-cost capability for state whose
//     synchronization is STRUCTURAL rather than lock-based.  The parallel
//     cluster runtime serializes routing/migration/autoscale/chaos on the
//     coordinating thread and only fans out per-replica work whose state is
//     disjoint; nothing there needs a lock, but the "only the coordinator
//     touches this" contract used to live in comments.  Declaring the state
//     `LIQUID_GUARDED_BY(coordinator_role_)` and the serialized sections
//     `LIQUID_REQUIRES(coordinator_role_)` moves that contract into the
//     compiler: a future PR that reaches into fleet state from a worker
//     task (or from a public entry point that forgot to take the role)
//     fails the clang build instead of flaking a determinism golden.
//     Acquire/Release are empty inline functions — the capability exists
//     only in the analysis; release builds see no code at all.

#include <condition_variable>
#include <mutex>

// Attribute plumbing.  The thread-safety attributes are a clang extension;
// __has_attribute keeps the header honest if a future clang renames one.
#if defined(__clang__) && defined(__has_attribute)
#define LIQUID_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define LIQUID_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Declares a class to be a capability (lockable) type.  The string names the
/// capability kind in diagnostics ("mutex", "role", ...).
#define LIQUID_CAPABILITY(x) LIQUID_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define LIQUID_SCOPED_CAPABILITY LIQUID_THREAD_ANNOTATION(scoped_lockable)

/// Data member: may only be read or written while holding `x`.
#define LIQUID_GUARDED_BY(x) LIQUID_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member: the POINTED-TO data may only be touched while holding `x`
/// (the pointer itself is covered by LIQUID_GUARDED_BY).
#define LIQUID_PT_GUARDED_BY(x) LIQUID_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function: caller must hold the capabilities on entry (and still does on
/// exit).  This is the workhorse contract for serialized sections.
#define LIQUID_REQUIRES(...) \
  LIQUID_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function: acquires the capabilities; caller must NOT already hold them.
#define LIQUID_ACQUIRE(...) \
  LIQUID_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function: releases the capabilities; caller must hold them on entry.
#define LIQUID_RELEASE(...) \
  LIQUID_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function: acquires the capability iff it returns `x` (e.g. TryLock).
#define LIQUID_TRY_ACQUIRE(...) \
  LIQUID_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function: caller must NOT hold the capabilities (deadlock guard for
/// functions that acquire them internally).
#define LIQUID_EXCLUDES(...) LIQUID_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define LIQUID_RETURN_CAPABILITY(x) LIQUID_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function body is not analyzed.  Reserve for primitives
/// whose correctness the analysis cannot express; never blanket-apply it to
/// silence a real finding (the CI contract forbids it on the concurrent
/// subsystems).
#define LIQUID_NO_THREAD_SAFETY_ANALYSIS \
  LIQUID_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace liquid::util {

/// Annotated mutual-exclusion capability over std::mutex.  Prefer MutexLock
/// for scoped holds; Lock/Unlock exist for the rare staircase pattern.
class LIQUID_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() LIQUID_ACQUIRE() { mu_.lock(); }
  void Unlock() LIQUID_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool TryLock() LIQUID_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;  // Wait() needs the underlying handle
  std::mutex mu_;
};

/// RAII scoped hold of a Mutex (std::lock_guard with annotations).
class LIQUID_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LIQUID_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() LIQUID_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to the annotated Mutex.  Wait() adopts the
/// already-held lock for the duration of the underlying wait and re-adopts it
/// before returning, so the analysis (correctly) sees the mutex held across
/// the call.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// One wait round; may wake spuriously (use the predicate overload).
  void Wait(Mutex& mu) LIQUID_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's MutexLock still owns the mutex
  }

  /// Waits until `pred()` is true (checked with `mu` held).
  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) LIQUID_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// A structural capability: "this state belongs to one logical role" (the
/// cluster event-pump coordinator, a shard's owning worker).  There is no
/// runtime lock — Acquire/Release compile to nothing — but the analysis
/// treats it exactly like a mutex, so `LIQUID_GUARDED_BY(role)` state is
/// untouchable outside `LIQUID_REQUIRES(role)` sections and the RoleGuard
/// entry points that assert the role.
class LIQUID_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;

  void Acquire() LIQUID_ACQUIRE() {}
  void Release() LIQUID_RELEASE() {}
};

/// RAII assertion of a ThreadRole for one public entry point.  Zero cost at
/// runtime; in the analysis it brackets the section that is allowed to touch
/// the role's state.
class LIQUID_SCOPED_CAPABILITY RoleGuard {
 public:
  explicit RoleGuard(ThreadRole& role) LIQUID_ACQUIRE(role) : role_(role) {
    role_.Acquire();
  }
  ~RoleGuard() LIQUID_RELEASE() { role_.Release(); }
  RoleGuard(const RoleGuard&) = delete;
  RoleGuard& operator=(const RoleGuard&) = delete;

 private:
  ThreadRole& role_;
};

}  // namespace liquid::util
