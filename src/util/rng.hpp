#pragma once
// Deterministic, seedable RNG used by all tests, benches, and workload
// generators.  xoshiro256++ (Blackman & Vigna): fast, high quality, and —
// unlike std::mt19937 + std::normal_distribution — produces identical streams
// on every standard library, so recorded experiment outputs are reproducible.

#include <cmath>
#include <cstdint>
#include <vector>

namespace liquid {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9E3779B97F4A7C15ull;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
      s = x ^ (x >> 31);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n).
  std::uint64_t Below(std::uint64_t n) { return n == 0 ? 0 : Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t Int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    Below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box–Muller (cached second value).
  double Normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    while (u1 == 0.0) u1 = NextDouble();
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  /// LLM-weight-like tensor: mostly Gaussian with a fraction of per-channel
  /// outliers, matching the activation/weight outlier structure that motivates
  /// SmoothQuant-style smoothing (paper Section 6).
  std::vector<float> OutlierTensor(std::size_t n, double stddev,
                                   double outlier_fraction,
                                   double outlier_scale) {
    std::vector<float> out(n);
    for (auto& v : out) {
      double x = Normal(0.0, stddev);
      if (NextDouble() < outlier_fraction) x *= outlier_scale;
      v = static_cast<float>(x);
    }
    return out;
  }

  std::vector<float> GaussianTensor(std::size_t n, double stddev) {
    std::vector<float> out(n);
    for (auto& v : out) v = static_cast<float>(Normal(0.0, stddev));
    return out;
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace liquid
