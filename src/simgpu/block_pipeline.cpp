#include "simgpu/block_pipeline.hpp"

#include <algorithm>
#include <cassert>

namespace liquid::simgpu {
namespace {

/// Ready time imposed by the bounded SMEM stage buffer: load `i` may not
/// start until the buffer used by iteration `i - depth` has been consumed.
double SlotReady(const std::vector<double>& consumed, int i, int depth) {
  if (i < depth) return 0.0;
  return consumed[static_cast<std::size_t>(i - depth)];
}

}  // namespace

BlockPipelineResult SimulateBlockPipeline(const BlockPipelineInput& in) {
  assert(in.k_iters >= 1);
  BlockPipelineResult out;
  const bool rec = in.record_trace;

  Track tma("tma", rec);
  Track cuda("cuda", rec);
  Track tc("tc", rec);

  const int k = in.k_iters;
  std::vector<double> load_done(static_cast<std::size_t>(k), 0.0);
  std::vector<double> slot_freed(static_cast<std::size_t>(k), 0.0);
  double finish = 0.0;

  switch (in.pipeline) {
    case PipelineKind::kSymmetric: {
      for (int i = 0; i < k; ++i) {
        const Interval ld =
            tma.Claim(SlotReady(slot_freed, i, in.stage_depth), in.t_load);
        load_done[static_cast<std::size_t>(i)] = ld.end;
        const Interval mma = tc.Claim(ld.end, in.t_mma);
        slot_freed[static_cast<std::size_t>(i)] = mma.end;
        finish = std::max(finish, mma.end);
      }
      break;
    }
    case PipelineKind::kSerial: {
      // One compute role: dequant and MMA issue from the same warps, so the
      // two occupy the warps back to back; loads still double-buffer ahead.
      for (int i = 0; i < k; ++i) {
        const Interval ld =
            tma.Claim(SlotReady(slot_freed, i, in.stage_depth), in.t_load);
        load_done[static_cast<std::size_t>(i)] = ld.end;
        const Interval dq = cuda.Claim(std::max(ld.end, tc.free_at()),
                                       in.t_dequant);
        const Interval mma = tc.Claim(dq.end, in.t_mma);
        slot_freed[static_cast<std::size_t>(i)] = dq.end;
        finish = std::max(finish, mma.end);
      }
      break;
    }
    case PipelineKind::kExCP: {
      // Dedicated Dequant WG: pays the RF->SMEM->RF round trip for the INT8
      // tile plus a software barrier before the MMA WG may consume it.
      for (int i = 0; i < k; ++i) {
        const Interval ld =
            tma.Claim(SlotReady(slot_freed, i, in.stage_depth), in.t_load);
        load_done[static_cast<std::size_t>(i)] = ld.end;
        const Interval dq =
            cuda.Claim(ld.end, in.t_dequant + in.t_smem_roundtrip);
        slot_freed[static_cast<std::size_t>(i)] = dq.end;
        const Interval mma = tc.Claim(dq.end + in.t_sync, in.t_mma);
        finish = std::max(finish, mma.end);
      }
      break;
    }
    case PipelineKind::kImFP: {
      // Single producer, multiple consumers over fine-grained tasks.  Each
      // task: (worker + CUDA pipe) dequant burst, then async WGMMA on the
      // tensor-core pipe; the worker is free again as soon as the WGMMA is
      // issued, so dequant in one WG overlaps MMA of the other.
      const int f = std::max(1, in.fine_tasks);
      const double t_dq_task = in.t_dequant / f;
      const double t_mma_task = in.t_mma / f;
      std::vector<Track> workers;
      workers.reserve(static_cast<std::size_t>(std::max(1, in.compute_wgs)));
      for (int wgi = 0; wgi < std::max(1, in.compute_wgs); ++wgi) {
        workers.emplace_back("wg" + std::to_string(wgi));
      }
      for (int i = 0; i < k; ++i) {
        const Interval ld =
            tma.Claim(SlotReady(slot_freed, i, in.stage_depth), in.t_load);
        load_done[static_cast<std::size_t>(i)] = ld.end;
        double last_dq = 0.0;
        for (int t = 0; t < f; ++t) {
          // Hardware-arbitrated task fetch: the first free worker takes it.
          Track* worker = &workers[0];
          for (auto& w : workers) {
            if (w.free_at() < worker->free_at()) worker = &w;
          }
          const Interval dq = ClaimAll(ld.end, t_dq_task, *worker, cuda);
          const Interval mma = tc.Claim(dq.end, t_mma_task);
          last_dq = std::max(last_dq, dq.end);
          finish = std::max(finish, mma.end);
        }
        slot_freed[static_cast<std::size_t>(i)] = last_dq;
      }
      break;
    }
  }

  out.total = finish;
  out.load_busy = tma.busy_time();
  out.dequant_busy = cuda.busy_time();
  out.mma_busy = tc.busy_time();
  if (rec) {
    out.load_log = tma.log();
    out.dequant_log = cuda.log();
    out.mma_log = tc.log();
  }
  return out;
}

}  // namespace liquid::simgpu
