#include "simgpu/trace_export.hpp"

#include <fstream>
#include <sstream>

namespace liquid::simgpu {
namespace {

void EmitTrack(std::ostream& os, const std::vector<Interval>& log,
               const char* name, int tid, bool& first) {
  int index = 0;
  for (const Interval& iv : log) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"name\": \"" << name << " #" << index++
       << "\", \"cat\": \"pipeline\", \"ph\": \"X\""
       << ", \"ts\": " << iv.start * 1e6 << ", \"dur\": " << iv.duration() * 1e6
       << ", \"pid\": 1, \"tid\": " << tid << "}";
  }
}

}  // namespace

std::string ToChromeTrace(const BlockPipelineResult& result,
                          const std::string& process_name) {
  std::ostringstream os;
  os << "{\n\"traceEvents\": [\n";
  bool first = true;
  // Thread name metadata records.
  const struct {
    const char* name;
    int tid;
  } tracks[] = {{"TMA load", 1}, {"CUDA cores (dequant)", 2},
                {"Tensor cores (MMA)", 3}};
  for (const auto& t : tracks) {
    if (!first) os << ",\n";
    first = false;
    os << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": "
       << t.tid << ", \"args\": {\"name\": \"" << t.name << "\"}}";
  }
  os << ",\n  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
        "\"args\": {\"name\": \""
     << process_name << "\"}}";
  EmitTrack(os, result.load_log, "load", 1, first);
  EmitTrack(os, result.dequant_log, "dequant", 2, first);
  EmitTrack(os, result.mma_log, "mma", 3, first);
  os << "\n],\n\"displayTimeUnit\": \"ns\"\n}\n";
  return os.str();
}

bool WriteChromeTrace(const BlockPipelineInput& input, const std::string& path,
                      const std::string& process_name) {
  BlockPipelineInput traced = input;
  traced.record_trace = true;
  const BlockPipelineResult result = SimulateBlockPipeline(traced);
  std::ofstream file(path);
  if (!file) return false;
  file << ToChromeTrace(result, process_name);
  return static_cast<bool>(file);
}

}  // namespace liquid::simgpu
