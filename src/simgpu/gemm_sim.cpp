#include "simgpu/gemm_sim.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace liquid::simgpu {
namespace {

std::size_t CeilDiv(std::size_t a, std::size_t b) { return (a + b - 1) / b; }

/// Rounds the batch up to the WGMMA n-granularity of 8.
std::size_t RoundUp8(std::size_t m) { return std::max<std::size_t>(8, (m + 7) / 8 * 8); }

}  // namespace

GemmSimResult SimulateGemm(const HardwareSpec& hw, const KernelConfig& cfg,
                           const GemmShape& shape,
                           const GemmSimOptions& options) {
  assert(shape.n > 0 && shape.k > 0);
  GemmSimResult out;

  const std::size_t m = std::max<std::size_t>(1, shape.m);

  // GEMV fast path: a weight-streaming kernel that reads every weight byte
  // once at near-peak bandwidth with no tensor-core tiling; dequant (if any)
  // trivially hides behind the stream at these intensities.
  if (cfg.gemv_specialized && m <= static_cast<std::size_t>(cfg.gemv_max_m)) {
    const double bytes = static_cast<double>(shape.n) *
                         static_cast<double>(shape.k) * cfg.weight_bits / 8.0;
    const double per_gemm = bytes / (hw.mem_bw_bytes * cfg.gemv_mem_efficiency);
    const int groups = std::max(1, options.grouped);
    const double launches =
        cfg.grouped_launch ? 1.0 : static_cast<double>(groups);
    out.seconds =
        launches * (hw.kernel_launch_seconds + cfg.setup_overhead_seconds) +
        static_cast<double>(groups) * per_gemm;
    out.t_load = static_cast<double>(groups) * per_gemm;
    out.k_iters = 1;
    out.waves = groups;
    out.active_blocks = hw.num_sms;
    out.mma_utilization = 0.0;  // CUDA-core GEMV, no tensor cores
    out.bubble_fraction = 0.0;
    return out;
  }
  // Effective batch tile: LiquidGEMM's transposed formulation tracks the
  // batch up to tile_m; fixed kernels clip at their design tile.
  const std::size_t tile_m =
      std::min<std::size_t>(static_cast<std::size_t>(cfg.tile_m), RoundUp8(m));
  const std::size_t tile_n = static_cast<std::size_t>(cfg.tile_n);
  const std::size_t tile_k =
      std::min<std::size_t>(static_cast<std::size_t>(cfg.tile_k), shape.k);

  const std::size_t m_tiles = CeilDiv(m, tile_m);
  const std::size_t n_tiles = CeilDiv(shape.n, tile_n);
  const std::size_t tiles_per_gemm = m_tiles * n_tiles;
  const int k_iters = static_cast<int>(CeilDiv(shape.k, tile_k));
  out.k_iters = k_iters;

  const std::size_t grid_slots = static_cast<std::size_t>(hw.num_sms) *
                                 static_cast<std::size_t>(hw.max_blocks_per_sm);
  const std::size_t total_tiles =
      tiles_per_gemm * static_cast<std::size_t>(std::max(1, options.grouped));
  // Concurrency: a persistent kernel streams tiles of *all* groups at once;
  // a relaunch/drain kernel only has one group's tiles in flight.
  const std::size_t active =
      cfg.persistent ? std::min(total_tiles, grid_slots)
                     : std::min(tiles_per_gemm, grid_slots);
  out.active_blocks = static_cast<int>(active);

  // Device throughput shared evenly among concurrently active blocks.
  const double bw_block =
      hw.mem_bw_bytes * cfg.mem_efficiency / static_cast<double>(active);
  const double cuda_block =
      hw.cuda_int32_ops * cfg.cuda_efficiency / static_cast<double>(active);
  const double tc_block =
      cfg.MmaOps(hw) * cfg.tc_efficiency / static_cast<double>(active);

  // Per-iteration stage durations (Eq. 3 and 4).  The weight tile dominates
  // loading; the activation slice is added once per tile below.
  const double tile_weight_bytes =
      static_cast<double>(tile_n) * static_cast<double>(tile_k) *
      cfg.weight_bits / 8.0;
  const double t_load = tile_weight_bytes / bw_block;
  const double dequant_instrs = cfg.EffectiveAlpha() *
                                static_cast<double>(tile_n) *
                                static_cast<double>(tile_k);
  const double t_dequant = dequant_instrs / cuda_block;
  const double mma_rows = std::min(tile_m, RoundUp8(m));
  const double t_mma = 2.0 * mma_rows * static_cast<double>(tile_n) *
                       static_cast<double>(tile_k) / tc_block;

  BlockPipelineInput in;
  in.pipeline = cfg.pipeline;
  in.k_iters = k_iters;
  in.t_load = t_load;
  in.t_dequant = t_dequant;
  in.t_mma = t_mma;
  // ExCP round trip: the dequantized INT8 tile (tile_n x tile_k bytes) is
  // written back to SMEM and re-read by the MMA WG through the per-SM SMEM
  // bandwidth shared by resident blocks.
  const double smem_bw_block =
      hw.smem_bw_bytes_per_sm / std::max(1, hw.max_blocks_per_sm);
  in.t_smem_roundtrip =
      cfg.pipeline == PipelineKind::kExCP
          ? 2.0 * static_cast<double>(tile_n) * static_cast<double>(tile_k) /
                smem_bw_block
          : 0.0;
  in.t_sync = cfg.pipeline == PipelineKind::kExCP ? hw.wg_sync_seconds : 0.0;
  in.compute_wgs = cfg.compute_wgs;
  in.fine_tasks = cfg.fine_tasks_per_iter;
  in.stage_depth = cfg.stage_depth;
  in.record_trace = options.record_trace;

  BlockPipelineResult block = SimulateBlockPipeline(in);

  // Per-tile extras outside the main loop: activation slice load (fill) and
  // the epilogue writeback of the FP16 output tile.
  const double act_bytes = mma_rows * static_cast<double>(tile_k) *
                           static_cast<double>(k_iters) * cfg.act_bits / 8.0;
  const double epilogue_bytes =
      mma_rows * static_cast<double>(tile_n) * cfg.out_bits / 8.0;
  // Activations are streamed alongside weights but reused across the n_tiles
  // sharing the same m rows; charge the first touch only.
  const double t_act = act_bytes / bw_block / static_cast<double>(n_tiles);
  const double t_epilogue = epilogue_bytes / bw_block;
  const double block_time = block.total + t_act + t_epilogue;

  const int groups = std::max(1, options.grouped);
  const std::size_t waves_per_gemm = CeilDiv(tiles_per_gemm, grid_slots);

  double total = 0.0;
  if (cfg.persistent && groups > 1) {
    // Persistent kernel: tiles of all groups stream through one launch; the
    // pipeline fills once and never drains between groups.  Per-wave cost is
    // therefore the *steady-state* block time; the one-time fill is estimated
    // from a two-iteration prefix of the same pipeline.
    BlockPipelineInput fill_in = in;
    fill_in.k_iters = std::min(2, k_iters);
    fill_in.record_trace = false;
    const double fill =
        std::max(0.0, SimulateBlockPipeline(fill_in).total -
                          static_cast<double>(fill_in.k_iters) *
                              (block.total / static_cast<double>(k_iters)));
    const double steady = std::max(0.0, block_time - fill);
    // A persistent tile scheduler hands tiles to blocks as they finish —
    // there is no wave barrier, so the wave count is fractional.
    const double waves_f = static_cast<double>(total_tiles) /
                           static_cast<double>(grid_slots);
    total = hw.kernel_launch_seconds + cfg.setup_overhead_seconds + fill +
            waves_f * steady;
    out.waves = static_cast<int>(CeilDiv(total_tiles, grid_slots));
  } else {
    // Grouped-GEMM kernels (e.g. TRT's MoE path) launch once for the whole
    // group but drain the pipeline between member GEMMs: each group pays its
    // own waves of the full per-tile time (fill included in block_time).
    // Kernels without grouped support relaunch per member GEMM.
    const double launches = cfg.grouped_launch ? 1.0 : static_cast<double>(groups);
    total = launches * (hw.kernel_launch_seconds + cfg.setup_overhead_seconds) +
            static_cast<double>(groups) *
                static_cast<double>(waves_per_gemm) * block_time;
    out.waves = static_cast<int>(waves_per_gemm) * groups;
  }

  out.seconds = total;
  out.t_load = block.load_busy * static_cast<double>(out.waves);
  out.t_dequant = block.dequant_busy * static_cast<double>(out.waves);
  out.t_mma = block.mma_busy * static_cast<double>(out.waves);
  out.mma_utilization =
      block.total > 0 ? block.mma_busy / block.total : 0.0;
  out.bubble_fraction = block.BubbleFraction();
  out.block = std::move(block);
  return out;
}

double SimulateGemmSequence(const HardwareSpec& hw, const KernelConfig& cfg,
                            const std::vector<GemmCall>& calls) {
  double total = 0.0;
  for (const GemmCall& call : calls) {
    GemmSimOptions options;
    options.grouped = call.grouped;
    total += SimulateGemm(hw, cfg, call.shape, options).seconds;
  }
  return total;
}

}  // namespace liquid::simgpu
