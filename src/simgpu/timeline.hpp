#pragma once
// Deterministic discrete-event timeline used by the pipeline simulations.
//
// Each hardware unit a thread block time-shares (TMA channel, CUDA-core pipe,
// tensor-core pipe, SMEM write port, each compute warp group) is a Track: a
// single-server FIFO resource that remembers when it next becomes free and
// logs every busy interval.  Pipeline simulations advance by claiming tracks
// in causal order; co-allocation (an operation that needs several units at
// once, e.g. a dequant burst needs both its warp group and the CUDA pipe)
// starts at the max of all ready times.
//
// Events are the start/end points of claimed intervals; because every claim
// is issued in non-decreasing dependency order, the resulting schedule equals
// the one a callback-driven event queue would produce, with far less
// machinery and perfectly reproducible results.

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

namespace liquid::simgpu {

struct Interval {
  double start = 0;
  double end = 0;
  [[nodiscard]] double duration() const { return end - start; }
};

class Track {
 public:
  explicit Track(std::string name, bool record = false)
      : name_(std::move(name)), record_(record) {}

  /// Claims the track for `duration` seconds, starting no earlier than
  /// `ready`; returns the actual [start, end] interval.
  Interval Claim(double ready, double duration) {
    Interval iv;
    iv.start = std::max(ready, free_at_);
    iv.end = iv.start + duration;
    free_at_ = iv.end;
    busy_ += duration;
    if (record_ && duration > 0) log_.push_back(iv);
    return iv;
  }

  [[nodiscard]] double free_at() const { return free_at_; }
  [[nodiscard]] double busy_time() const { return busy_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Interval>& log() const { return log_; }

  void Reset() {
    free_at_ = 0;
    busy_ = 0;
    log_.clear();
  }

 private:
  std::string name_;
  bool record_;
  double free_at_ = 0;
  double busy_ = 0;
  std::vector<Interval> log_;
};

/// Co-allocates several tracks for one operation: the operation starts when
/// all tracks (and the data dependency `ready`) allow, and occupies each for
/// `duration`.  Returns the shared interval.
template <typename... Tracks>
Interval ClaimAll(double ready, double duration, Tracks&... tracks) {
  double start = ready;
  ((start = std::max(start, tracks.free_at())), ...);
  Interval iv{start, start + duration};
  // Claim at the common start; each Claim sees ready >= its free_at so the
  // interval is identical on every track.
  ((void)tracks.Claim(start, duration), ...);
  return iv;
}

/// Utilization of a track over a window: busy_time / window.
inline double Utilization(const Track& t, double window) {
  return window > 0 ? t.busy_time() / window : 0.0;
}

}  // namespace liquid::simgpu
