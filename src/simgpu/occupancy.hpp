#pragma once
// SM occupancy calculator.
//
// The paper's cost model takes L (thread blocks per SM) as a given; this
// module derives it from the resources a kernel variant actually consumes —
// warp slots, registers, and shared memory — the way the CUDA occupancy
// calculator does.  It grounds the `max_blocks_per_sm` used by the GEMM
// simulator and exposes the SMEM-capacity argument of Section 3.3 ("the
// arithmetic intensity is ultimately bounded by the tile size Mt, which is
// constrained by shared memory").

#include <cstddef>

#include "simgpu/hardware.hpp"
#include "simgpu/kernel_config.hpp"

namespace liquid::simgpu {

struct SmResources {
  int max_warps = 64;            ///< Hopper: 64 warps / SM
  int max_blocks = 32;           ///< hardware block-slot limit
  std::size_t registers = 65536; ///< 32-bit registers per SM
  std::size_t smem_bytes = 228 * 1024;
};

struct BlockFootprint {
  int warps = 0;                  ///< warps per thread block
  int regs_per_thread = 0;
  std::size_t smem_bytes = 0;     ///< static + dynamic shared memory

  [[nodiscard]] std::size_t RegistersPerBlock() const {
    return static_cast<std::size_t>(warps) * 32 *
           static_cast<std::size_t>(regs_per_thread);
  }
};

struct OccupancyResult {
  int blocks_per_sm = 0;
  int limited_by_warps = 0;
  int limited_by_registers = 0;
  int limited_by_smem = 0;
  int limited_by_slots = 0;
  const char* limiter = "";
};

/// CUDA-occupancy-style: blocks/SM = min over each resource's quotient.
OccupancyResult ComputeOccupancy(const SmResources& sm,
                                 const BlockFootprint& block);

/// Footprint of a kernel variant: warp groups (load + compute), register
/// budget (accumulators scale with tile_m x tile_n per thread), and the
/// staged SMEM buffers (stage_depth x tile_n x tile_k x weight-bits plus the
/// activation tile).
BlockFootprint FootprintFor(const KernelConfig& cfg);

/// Largest batch-side tile (multiple of 8) whose accumulators and SMEM
/// stages still fit one SM at `min_blocks` blocks — the Section 3.3 bound on
/// arithmetic intensity.
int MaxTileMForSmem(const SmResources& sm, const KernelConfig& cfg,
                    int min_blocks = 1);

}  // namespace liquid::simgpu
