#pragma once
// GPU hardware models (paper Figure 1a).
//
// The simulator is parameterized by the same five metrics the paper's cost
// model uses: tensor-core throughput per dtype, CUDA-core INT32 throughput,
// memory bandwidth, SM count, and occupancy.  Values are the published
// dense-math numbers for A100 SXM and H100/H800 SXM that Figure 1a lists.

#include <string>

namespace liquid::simgpu {

struct HardwareSpec {
  std::string name;

  // Device-level throughputs (operations per second; 1 MAC = 2 ops).
  double tc_fp16_ops = 0;   ///< FP16 tensor core
  double tc_int8_ops = 0;   ///< INT8 tensor core
  double tc_fp8_ops = 0;    ///< FP8 tensor core (0 if unsupported)
  double tc_int4_ops = 0;   ///< INT4 tensor core (0 if unsupported)
  double cuda_int32_ops = 0;///< CUDA-core INT32 ALU

  double mem_bw_bytes = 0;  ///< HBM bandwidth, bytes/s
  double nvlink_bw_bytes = 0;  ///< per-GPU interconnect bandwidth, bytes/s

  int num_sms = 0;
  int max_blocks_per_sm = 1;      ///< concurrent thread blocks (the paper's L)
  double smem_bytes_per_sm = 0;
  double smem_bw_bytes_per_sm = 0; ///< shared-memory bandwidth per SM
  double clock_hz = 0;

  /// Per-iteration software warp-group synchronization cost (named barriers +
  /// fence), charged by the ExCP pipeline.
  double wg_sync_seconds = 80e-9;
  /// Kernel launch latency, charged per non-persistent grouped-GEMM launch.
  double kernel_launch_seconds = 3e-6;

  static HardwareSpec A100();
  static HardwareSpec H100();
  /// H800: H100 silicon with reduced NVLink; on-die metrics match H100 and
  /// the paper benchmarks on this part.
  static HardwareSpec H800();
};

}  // namespace liquid::simgpu
