#pragma once
// Chrome-tracing exporter for pipeline simulations.
//
// Serializes the per-unit interval logs of a BlockPipelineResult into the
// Trace Event JSON format (load in chrome://tracing or https://ui.perfetto.dev)
// so the ExCP bubbles and ImFP overlap of Figure 6 can be inspected visually.

#include <string>

#include "simgpu/block_pipeline.hpp"

namespace liquid::simgpu {

/// Renders the recorded trace as a Trace Event JSON document.  Each hardware
/// unit (TMA, CUDA cores, tensor cores) becomes a named "thread"; durations
/// are emitted in microseconds (the format's native unit), scaled from the
/// simulation's seconds.
std::string ToChromeTrace(const BlockPipelineResult& result,
                          const std::string& process_name = "block");

/// Convenience: simulate with tracing enabled and write the JSON to `path`.
/// Returns false if the file cannot be written.
bool WriteChromeTrace(const BlockPipelineInput& input, const std::string& path,
                      const std::string& process_name = "block");

}  // namespace liquid::simgpu
