#include "simgpu/hardware.hpp"

namespace liquid::simgpu {

HardwareSpec HardwareSpec::A100() {
  HardwareSpec s;
  s.name = "A100";
  s.tc_fp16_ops = 312e12;
  s.tc_int8_ops = 624e12;
  s.tc_fp8_ops = 0;  // no FP8 tensor cores on Ampere
  s.tc_int4_ops = 1248e12;
  s.cuda_int32_ops = 19.5e12;
  s.mem_bw_bytes = 2.0e12;
  s.nvlink_bw_bytes = 600e9;  // NVLink3, bidirectional aggregate
  s.num_sms = 108;
  s.max_blocks_per_sm = 2;
  s.smem_bytes_per_sm = 164 * 1024;
  s.smem_bw_bytes_per_sm = 128.0 * 1.41e9;  // 128 B/cycle/SM
  s.clock_hz = 1.41e9;
  return s;
}

HardwareSpec HardwareSpec::H100() {
  HardwareSpec s;
  s.name = "H100";
  s.tc_fp16_ops = 989.4e12;
  s.tc_int8_ops = 1978.9e12;
  s.tc_fp8_ops = 1978.9e12;
  s.tc_int4_ops = 0;  // Hopper dropped INT4 tensor cores (Section 3)
  s.cuda_int32_ops = 33.5e12;
  s.mem_bw_bytes = 3.3e12;
  s.nvlink_bw_bytes = 900e9;  // NVLink4
  s.num_sms = 132;
  s.max_blocks_per_sm = 2;
  s.smem_bytes_per_sm = 228 * 1024;
  s.smem_bw_bytes_per_sm = 128.0 * 1.98e9;
  s.clock_hz = 1.98e9;
  return s;
}

HardwareSpec HardwareSpec::H800() {
  HardwareSpec s = H100();
  s.name = "H800";
  // The H800's defining restriction: NVLink cut to 400 GB/s for export.
  s.nvlink_bw_bytes = 400e9;
  return s;
}

}  // namespace liquid::simgpu
