#include "simgpu/kernel_config.hpp"

#include "core/dequant/dequant.hpp"

namespace liquid::simgpu {

std::string ToString(KernelKind kind) {
  switch (kind) {
    case KernelKind::kTrtFp16: return "TRT-FP16";
    case KernelKind::kTrtW8A8: return "TRT-W8A8";
    case KernelKind::kTrtFp8: return "TRT-FP8";
    case KernelKind::kTrtW4A16: return "TRT-W4A16";
    case KernelKind::kQServeW4A8: return "QServe";
    case KernelKind::kLiquidW4A8: return "LiquidGEMM";
    case KernelKind::kLiquidW4A8Serial: return "LiquidGEMM-LQQ";
    case KernelKind::kLiquidW4A8ExCP: return "LiquidGEMM-ExCP";
    case KernelKind::kBaselineW4A8: return "W4A8-Baseline";
  }
  return "?";
}

double KernelConfig::MmaOps(const HardwareSpec& hw) const {
  switch (kind) {
    case KernelKind::kTrtFp16:
    case KernelKind::kTrtW4A16:
      return hw.tc_fp16_ops;
    case KernelKind::kTrtFp8:
      return hw.tc_fp8_ops > 0 ? hw.tc_fp8_ops : hw.tc_int8_ops;
    default:
      return hw.tc_int8_ops;  // all W4A8/W8A8 paths use INT8 MMA
  }
}

KernelConfig KernelConfig::For(KernelKind kind) {
  KernelConfig c;
  c.kind = kind;
  switch (kind) {
    case KernelKind::kTrtFp16:
      c.pipeline = PipelineKind::kSymmetric;
      c.gemv_specialized = true;
      c.weight_bits = 16;
      c.act_bits = 16;
      c.alpha = 0;
      c.tile_m = 256;
      break;
    case KernelKind::kTrtW8A8:
      c.pipeline = PipelineKind::kSymmetric;
      c.gemv_specialized = true;
      c.weight_bits = 8;
      c.act_bits = 8;
      c.alpha = 0;
      c.tile_m = 256;
      break;
    case KernelKind::kTrtFp8:
      c.pipeline = PipelineKind::kSymmetric;
      c.gemv_specialized = true;
      c.weight_bits = 8;
      c.act_bits = 8;
      c.alpha = 0;
      c.tile_m = 256;
      break;
    case KernelKind::kTrtW4A16:
      // TRT's AWQ kernel: interleaved layout, fast u4->fp16 conversion,
      // well-overlapped multistage pipeline, FP16 MMA.
      c.pipeline = PipelineKind::kImFP;
      c.gemv_specialized = true;
      c.weight_bits = 4;
      c.act_bits = 16;
      c.alpha = 1.5;
      c.layout_aux = 0.25;
      c.tile_m = 256;
      break;
    case KernelKind::kQServeW4A8:
      // QServe on Hopper: Ampere-style kernel, subtraction-after-
      // multiplication dequant with vsub4 lowering, conventional 2D UINT4
      // layout (extra LDS.32s + address math), dequant serialized with MMA.
      c.pipeline = PipelineKind::kSerial;
      c.weight_bits = 4;
      c.act_bits = 8;
      c.alpha = MeasureAlphaQserve();
      c.layout_aux = 1.0;
      c.tile_m = 128;
      c.tc_efficiency = 0.65;   // no WGMMA/TMA path on Hopper
      c.grouped_launch = false; // no grouped-GEMM kernel: relaunch per expert
      c.setup_overhead_seconds = 8e-6;
      break;
    case KernelKind::kLiquidW4A8:
      c.pipeline = PipelineKind::kImFP;
      c.weight_bits = 4;
      c.act_bits = 8;
      c.alpha = MeasureAlphaLqq();
      c.layout_aux = 0.1;  // 1 LDS.128 per 32 elements, no address math
      c.tile_m = 256;      // (W·Xᵀ)ᵀ: WGMMA n tracks the batch (Section 5.4)
      c.persistent = true;
      c.tc_efficiency = 0.90;
      c.mem_efficiency = 0.90;
      break;
    case KernelKind::kLiquidW4A8Serial:
      c = For(KernelKind::kLiquidW4A8);
      c.kind = kind;
      c.pipeline = PipelineKind::kSerial;
      c.persistent = false;
      break;
    case KernelKind::kLiquidW4A8ExCP:
      c = For(KernelKind::kLiquidW4A8);
      c.kind = kind;
      c.pipeline = PipelineKind::kExCP;
      c.compute_wgs = 1;  // the third WG is consumed by the Dequant role
      break;
    case KernelKind::kBaselineW4A8:
      c = For(KernelKind::kQServeW4A8);
      c.kind = kind;
      c.tile_m = 256;  // isolate dequant+pipeline effects from tiling
      break;
  }
  return c;
}

}  // namespace liquid::simgpu
