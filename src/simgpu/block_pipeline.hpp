#pragma once
// Thread-block main-loop pipeline simulation (paper Section 5.1, Figure 6).
//
// Simulates one thread block executing `k_iters` main-loop iterations under
// one of four pipeline structures, on the block's time-shared hardware units
// (TMA channel, CUDA-core pipe, tensor-core pipe, warp groups, SMEM stage
// buffers):
//
//   kSymmetric  LOAD -> MMA, double-buffered.  W8A8/FP8/FP16: no dequant.
//   kSerial     LOAD -> (DQ; MMA) in the same warps.  QServe-style: the
//               dequant serializes with MMA inside the compute stage.
//   kExCP       LOAD -> DQ-WG -> MMA-WG.  Explicit coarse pipeline: dequant
//               runs in its own warp group but pays the RF<->SMEM round trip
//               and a software sync per handoff.
//   kImFP       LOAD -> {Compute WG0, Compute WG1}.  Implicit fine-grained
//               pipeline: each iteration splits into fine tasks consumed
//               preemptively; a WG dequantizes on CUDA cores then issues the
//               async WGMMA, so one WG's dequant overlaps the other's MMA
//               with no software synchronization.
//
// Per-iteration stage durations are inputs; the simulation produces the block
// completion time plus per-unit busy times and (optionally) interval logs.

#include <vector>

#include "simgpu/kernel_config.hpp"
#include "simgpu/timeline.hpp"

namespace liquid::simgpu {

struct BlockPipelineInput {
  PipelineKind pipeline = PipelineKind::kImFP;
  int k_iters = 1;
  double t_load = 0;        ///< per-iteration weight tile load (TMA)
  double t_dequant = 0;     ///< per-iteration dequant on CUDA cores
  double t_mma = 0;         ///< per-iteration MMA on tensor cores
  double t_smem_roundtrip = 0;  ///< ExCP only: RF->SMEM->RF of the INT8 tile
  double t_sync = 0;        ///< ExCP only: per-handoff software barrier
  int compute_wgs = 2;      ///< ImFP consumers
  int fine_tasks = 4;       ///< ImFP tasks per iteration
  int stage_depth = 4;      ///< SMEM pipeline buffers
  bool record_trace = false;
};

struct BlockPipelineResult {
  double total = 0;         ///< time until the last MMA of the last iteration
  double load_busy = 0;
  double dequant_busy = 0;
  double mma_busy = 0;
  std::vector<Interval> load_log;
  std::vector<Interval> dequant_log;
  std::vector<Interval> mma_log;

  [[nodiscard]] double BubbleFraction() const {
    return total > 0 ? 1.0 - mma_busy / total : 0.0;
  }
};

BlockPipelineResult SimulateBlockPipeline(const BlockPipelineInput& in);

}  // namespace liquid::simgpu
