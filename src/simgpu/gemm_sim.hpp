#pragma once
// Grid-level GEMM simulation (paper Section 3.2, "GPU-Level Execution").
//
// Combines the block pipeline simulation with the device-level wave model of
// Eq. 6: the output grid of ceil(M/Mt) x ceil(N/Nt) tiles is executed by
// S x L concurrent blocks; device throughputs are shared evenly among active
// blocks.  Grouped GEMMs (MoE experts, Section 7.3 ablation) either relaunch
// per group (baselines) or stream through one persistent kernel (LiquidGEMM).

#include <vector>

#include "core/types.hpp"
#include "simgpu/block_pipeline.hpp"
#include "simgpu/hardware.hpp"
#include "simgpu/kernel_config.hpp"

namespace liquid::simgpu {

struct GemmSimOptions {
  int grouped = 1;           ///< number of equal-shape GEMMs in the group
  bool record_trace = false;
};

struct GemmSimResult {
  double seconds = 0;        ///< end-to-end kernel time
  double t_load = 0;         ///< aggregate stage times, Eq. 6 decomposition
  double t_dequant = 0;
  double t_mma = 0;
  int waves = 0;
  int active_blocks = 0;
  int k_iters = 0;
  double mma_utilization = 0;   ///< TC busy fraction inside one block
  double bubble_fraction = 0;   ///< 1 - mma_busy/total for one block
  BlockPipelineResult block;    ///< representative block (trace if requested)
};

/// Simulates Y = X·Wᵀ with the given kernel on the given hardware.
GemmSimResult SimulateGemm(const HardwareSpec& hw, const KernelConfig& cfg,
                           const GemmShape& shape,
                           const GemmSimOptions& options = {});

/// Latency of a sequence of GEMMs executed back to back (one transformer
/// layer's QKV/O/FFN chain); each entry may itself be grouped (MoE experts).
struct GemmCall {
  GemmShape shape;
  int grouped = 1;
};
double SimulateGemmSequence(const HardwareSpec& hw, const KernelConfig& cfg,
                            const std::vector<GemmCall>& calls);

}  // namespace liquid::simgpu
