#include "simgpu/occupancy.hpp"

#include <algorithm>

namespace liquid::simgpu {

OccupancyResult ComputeOccupancy(const SmResources& sm,
                                 const BlockFootprint& block) {
  OccupancyResult out;
  if (block.warps <= 0) return out;
  out.limited_by_warps = sm.max_warps / block.warps;
  out.limited_by_registers =
      block.RegistersPerBlock() > 0
          ? static_cast<int>(sm.registers / block.RegistersPerBlock())
          : sm.max_blocks;
  out.limited_by_smem =
      block.smem_bytes > 0
          ? static_cast<int>(sm.smem_bytes / block.smem_bytes)
          : sm.max_blocks;
  out.limited_by_slots = sm.max_blocks;

  out.blocks_per_sm = std::min({out.limited_by_warps, out.limited_by_registers,
                                out.limited_by_smem, out.limited_by_slots});
  if (out.blocks_per_sm == out.limited_by_smem) out.limiter = "smem";
  if (out.blocks_per_sm == out.limited_by_registers) out.limiter = "registers";
  if (out.blocks_per_sm == out.limited_by_warps) out.limiter = "warps";
  if (out.blocks_per_sm == out.limited_by_slots) out.limiter = "slots";
  return out;
}

BlockFootprint FootprintFor(const KernelConfig& cfg) {
  BlockFootprint fp;
  // One Load WG plus the compute WGs (ExCP's dequant WG counts as compute
  // here; serial kernels still dedicate warps to the main loop).
  const int wgs = 1 + std::max(1, cfg.compute_wgs) +
                  (cfg.pipeline == PipelineKind::kExCP ? 1 : 0);
  fp.warps = 4 * wgs;

  // Registers: dominated by the INT32 accumulator fragment each compute
  // thread holds — tile_m x tile_n accumulators spread over the compute
  // threads — plus ~40 for operands, addresses, and descriptors.
  const int compute_threads = 128 * std::max(1, cfg.compute_wgs);
  const double accum =
      static_cast<double>(cfg.tile_m) * cfg.tile_n / compute_threads;
  fp.regs_per_thread = static_cast<int>(accum) + 40;

  // SMEM: staged weight buffers + one activation tile (INT8/FP16) + barriers.
  const double weight_stage =
      static_cast<double>(cfg.tile_n) * cfg.tile_k * cfg.weight_bits / 8.0;
  const double act_tile =
      static_cast<double>(cfg.tile_m) * cfg.tile_k * cfg.act_bits / 8.0;
  fp.smem_bytes = static_cast<std::size_t>(
      cfg.stage_depth * weight_stage + act_tile + 1024);
  return fp;
}

int MaxTileMForSmem(const SmResources& sm, const KernelConfig& cfg,
                    int min_blocks) {
  int best = 0;
  for (int tile_m = 8; tile_m <= 512; tile_m += 8) {
    KernelConfig probe = cfg;
    probe.tile_m = tile_m;
    const OccupancyResult occ = ComputeOccupancy(sm, FootprintFor(probe));
    if (occ.blocks_per_sm >= min_blocks) best = tile_m;
  }
  return best;
}

}  // namespace liquid::simgpu
