#pragma once
// Kernel variants under simulation (paper Sections 3, 5, 7.3).
//
// Each KernelKind bundles: operand precisions, the dequantization cost alpha
// (instructions per weight element, measured from the SWAR kernels in
// core/dequant), the pipeline structure (serial / ExCP / ImFP / symmetric),
// the SMEM layout's auxiliary instruction cost, and the tile shape.  These are
// exactly the knobs the paper's cost model (Eq. 3–6) exposes.

#include <cstddef>
#include <string>

#include "simgpu/hardware.hpp"

namespace liquid::simgpu {

enum class PipelineKind {
  kSymmetric,  ///< no main-loop dequant (W8A8 / FP8 / FP16): LOAD || MMA
  kSerial,     ///< dequant + MMA serialized in the same warps (QServe-style)
  kExCP,       ///< explicit 3-WG pipeline with RF<->SMEM round trip + syncs
  kImFP,       ///< implicit fine-grained pipeline, 1 load WG + N compute WGs
};

enum class KernelKind {
  kTrtFp16,
  kTrtW8A8,
  kTrtFp8,
  kTrtW4A16,
  kQServeW4A8,
  kLiquidW4A8,        ///< LQQ + ImFP + dual-MMA layout (the paper's kernel)
  kLiquidW4A8Serial,  ///< ablation: LQQ dequant, no pipeline ("LQQ" bar)
  kLiquidW4A8ExCP,    ///< ablation: LQQ dequant + explicit pipeline
  kBaselineW4A8,      ///< ablation baseline: QServe-style dequant, no pipeline
};

std::string ToString(KernelKind kind);

struct KernelConfig {
  KernelKind kind = KernelKind::kLiquidW4A8;
  PipelineKind pipeline = PipelineKind::kImFP;

  double weight_bits = 4;
  double act_bits = 8;
  double out_bits = 16;  ///< epilogue output (FP16)

  /// Dequant instructions per weight element (0 for symmetric kernels).
  double alpha = 0;
  /// Additional CUDA-core instructions per weight element for SMEM load and
  /// address arithmetic.  Dual-MMA packed layout: 1 LDS.128 per 32 elements
  /// (~0.1); conventional UINT4 layout: 2x LDS.32 + address math (~1.0).
  double layout_aux = 0;

  /// Tile shape.  tile_m is the *maximum* batch-side tile; LiquidGEMM's
  /// (W·Xᵀ)ᵀ trick (Section 5.4) lets the WGMMA n dimension track the batch
  /// up to 256, while fixed-shape kernels clip at their design tile.
  int tile_m = 128;
  int tile_n = 128;  ///< output channels per block
  int tile_k = 64;
  int compute_wgs = 2;      ///< ImFP consumers
  int fine_tasks_per_iter = 4;  ///< ImFP task granularity per k-iteration
  int stage_depth = 4;      ///< SMEM pipeline stages (double+ buffering)

  bool persistent = false;  ///< persistent kernel: pipelines across grouped GEMMs
  /// Whether one launch covers a whole GEMM group (TRT grouped-MoE kernels,
  /// LiquidGEMM's persistent kernel).  Kernels without grouped support
  /// relaunch per member GEMM.
  bool grouped_launch = true;

  /// TRT kernels switch to a weight-streaming GEMV kernel for tiny batches
  /// (paper Section 7.3: on Mixtral they beat LiquidGEMM below batch 32
  /// because of it; LiquidGEMM has no such specialization).
  bool gemv_specialized = false;
  int gemv_max_m = 16;            ///< per-GEMM batch bound for the GEMV path
  double gemv_mem_efficiency = 0.95;  ///< streaming loads run near peak BW

  /// Per-launch setup cost beyond the raw launch latency (scale-table
  /// preprocessing, ldmatrix descriptor setup).  Dominates small-batch GEMMs
  /// for QServe's kernel, which is why it only *matches* W8A8 on LLaMA2-7B
  /// at small batch (Figure 5) yet beats it on the larger models (Figure 12).
  double setup_overhead_seconds = 0;

  /// Achieved-vs-peak efficiency factors.  A WGMMA/TMA kernel sustains a
  /// large fraction of peak; QServe's Ampere-style kernel (mma.m16n8k32, no
  /// TMA/WGMMA) sustains markedly less on Hopper tensor cores.
  double tc_efficiency = 0.85;
  double mem_efficiency = 0.85;
  double cuda_efficiency = 0.85;

  /// Tensor-core throughput for this kernel's MMA dtype on `hw`.
  [[nodiscard]] double MmaOps(const HardwareSpec& hw) const;
  /// Effective per-element dequant instruction cost including layout aux.
  [[nodiscard]] double EffectiveAlpha() const { return alpha + layout_aux; }

  /// Paper-faithful preset for each kernel variant.
  static KernelConfig For(KernelKind kind);
};

}  // namespace liquid::simgpu
