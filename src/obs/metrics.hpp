#pragma once
// Fleet metrics: named counters/gauges sampled into a dense time series, plus
// fixed-bucket histograms — trajectories instead of end-of-run aggregates.
//
// The registry is sample-driven, not clock-driven: the owner calls Sample(t)
// at instants the simulation ALREADY visits (the autoscale event-pump tick,
// arrivals, scale/kill events), so attaching metrics never adds clock-sync
// points that would perturb the simulated behavior.  Each Sample snapshots
// every registered series into one row; export renders rows as JSONL (one
// object per line, histograms summarized on trailing lines) or CSV.
//
// Values are doubles on the simulated clock, so with a fixed seed the
// exported bytes are deterministic (golden-pinned alongside the trace).
//
// Thread-safety contract: a MetricsRegistry is EXTERNALLY SYNCHRONIZED — no
// internal locking; all Register/Set/Add/Sample/export calls must come from
// one thread at a time.  The cluster runtime satisfies this structurally:
// every metrics touch happens in the coordinator's serialized sections
// (worker tasks never see the registry), and the owning ClusterSimulator
// pointer is LIQUID_PT_GUARDED_BY the coordinator role so the clang
// -Wthread-safety CI build enforces it at compile time.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace liquid::obs {

/// Fixed-bucket histogram: `upper_bounds` are the inclusive bucket ceilings
/// (sorted ascending); values above the last bound land in an implicit
/// overflow bucket.  Percentile() interpolates within the containing bucket,
/// tightened by the observed min/max, so its error is bounded by the bucket
/// width (tested against util/stats Percentile on shared inputs).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Add(double value);
  [[nodiscard]] std::size_t count() const { return count_; }
  /// Interpolated percentile, `p` in [0, 100]; 0 when empty.
  [[nodiscard]] double Percentile(double p) const;
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] const std::vector<std::size_t>& buckets() const {
    return counts_;
  }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::size_t> counts_;  ///< bounds_.size() + 1 (overflow last)
  std::size_t count_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Log-spaced latency bucket ceilings (1 ms .. 50 s) shared by the TTFT and
/// TPOT fleet histograms.
[[nodiscard]] std::vector<double> LatencyBuckets();

class MetricsRegistry {
 public:
  enum class Kind : std::uint8_t {
    kCounter,  ///< monotone cumulative value (completions, rejects)
    kGauge,    ///< instantaneous reading (queue depth, $/hour burn)
  };

  /// Registers a series and returns its handle.  Register everything before
  /// the first Sample: the row schema is fixed at that point.
  std::size_t Register(std::string name, Kind kind);
  /// Registers a histogram (summarized at export, not sampled per row).
  Histogram& RegisterHistogram(std::string name, std::vector<double> bounds);

  void Set(std::size_t handle, double value) { values_[handle] = value; }
  void Add(std::size_t handle, double delta = 1.0) {
    values_[handle] += delta;
  }
  [[nodiscard]] double Value(std::size_t handle) const {
    return values_[handle];
  }

  /// Snapshots every series at simulated time `t` into one row.
  void Sample(double t);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t series() const { return names_.size(); }

  /// One JSON object per row ({"t": ..., "<series>": ...}), then one
  /// {"histogram": ...} summary line per registered histogram.
  [[nodiscard]] std::string ToJsonl() const;
  /// Header row (`t,<series>...`) then one line per sample; histograms are
  /// JSONL-only.
  [[nodiscard]] std::string ToCsv() const;
  bool WriteJsonl(const std::string& path) const;
  bool WriteCsv(const std::string& path) const;

 private:
  struct Row {
    double t = 0;
    std::vector<double> values;
  };
  struct NamedHistogram {
    std::string name;
    Histogram histogram;
  };

  std::vector<std::string> names_;
  std::vector<Kind> kinds_;
  std::vector<double> values_;
  std::vector<Row> rows_;
  /// Deque: RegisterHistogram hands out stable references across growth.
  std::deque<NamedHistogram> histograms_;
};

}  // namespace liquid::obs
