#pragma once
// Fleet-wide request-lifecycle tracing.  The cluster layer (router,
// scheduler, disagg coordinator, autoscaler, chaos) records structured
// events on the shared simulated clock; the recorder renders them after the
// run as Chrome Trace Event JSON (loadable in ui.perfetto.dev / chrome://
// tracing) or as JSONL for programmatic analysis.
//
// Hot-path cost is the whole design: recording pushes one POD struct into a
// vector — no strings, no allocation beyond vector growth, no formatting.
// Names, categories and argument keys are static per-event-type tables
// applied only at export.  Every hook in the simulator is guarded by a null
// check on the recorder pointer, so a fleet without telemetry attached pays
// a single branch per hook (`bench_telemetry_overhead` gates the attached
// cost below 5%).
//
// Perfetto lane mapping:
//   pid 0        = "fleet" control plane (router / autoscaler / interconnect
//                  / chaos threads)
//   pid i+1      = replica i ("engine" thread: prefill/chunk/decode spans;
//                  "lifecycle" thread: admit/complete/handoff instants)
//   async b/e    = per-request journey lanes (cat "request", id = request
//                  id): queued → run → migrate → run, grouped by id
//   flow s/t/f   = KV-migration arrows from the prefill replica's engine
//                  lane to the decode replica's
//
// Everything runs on the simulated clock, so with a fixed seed the recorded
// byte stream is deterministic — the telemetry golden test pins it.
//
// Thread-safety contract: a TraceRecorder is EXTERNALLY SYNCHRONIZED — it
// holds no lock, and every method assumes single-threaded access.  The
// parallel cluster runtime honors this by sharding: each replica records
// into a private per-replica TraceRecorder during the fan-out (one writer
// per shard, no sharing), and the coordinator folds the shards back with
// MergeShards() strictly between barriers.  The ClusterSimulator declares
// both the shard vector and the shared-recorder pointer
// LIQUID_GUARDED_BY/LIQUID_PT_GUARDED_BY its coordinator role, so the clang
// -Wthread-safety CI build rejects any new cross-thread touch; keep it that
// way rather than adding locks here (a mutex per recorded POD would dwarf
// the <5% telemetry budget).

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace liquid::obs {

/// Trace process/thread layout (see file comment).
inline constexpr std::int32_t kFleetPid = 0;
inline constexpr std::int32_t kTidRouter = 1;
inline constexpr std::int32_t kTidAutoscaler = 2;
inline constexpr std::int32_t kTidInterconnect = 3;
inline constexpr std::int32_t kTidChaos = 4;
/// Replica-process thread ids.
inline constexpr std::int32_t kTidEngine = 1;
inline constexpr std::int32_t kTidLifecycle = 2;
[[nodiscard]] constexpr std::int32_t ReplicaPid(std::size_t replica) {
  return static_cast<std::int32_t>(replica) + 1;
}

enum class TraceEventType : std::uint8_t {
  // Fleet control plane (pid 0).
  kArrival,           ///< a0 prompt_tokens, a1 max_new_tokens, a2 attempt
  kRoute,             ///< a0 replica, a1 predicted_ttft; ext = scorer terms
  kReject,            ///< a0 best predicted_ttft (SLO shed)
  kNoReplica,         ///< fleet-level drop: nothing alive to route to
  kRetryScheduled,    ///< a0 attempt, a1 release time
  kRetriesExhausted,  ///< a0 attempt
  kKill,              ///< a0 replica, a1 lost in-flight requests
  kDegrade,           ///< a0 replica, a1 slowdown factor
  kScaleUp,           ///< a0 replica, a1 pool, a2 signal value
  kScaleDown,         ///< a0 replica, a1 pool, a2 signal value
  kAutoscaleTick,
  kMigrationBegin,    ///< a0 src, a1 dst, a2 bytes
  kMigrationLand,     ///< a0 src, a1 dst, a2 visible stall seconds
  kMigrationReroute,  ///< a0 src, a1 new dst
  kTargetDeath,       ///< a0 dst that died mid-transfer
  kLocalFallback,     ///< a0 src decoding its own handoff
  kImportOom,         ///< a0 dst whose pool could not hold the KV

  // Replica plane (pid = replica + 1).
  kAdmit,         ///< instant; a0 cached prefix tokens credited
  kPrefill,       ///< span; a0 prompt tokens, a1 cached tokens
  kPrefillChunk,  ///< span; a0 chunk tokens, a1 prior tokens
  kDecodeStep,    ///< span; a0 batch size, a1 mean KV length
  kPrefixHit,     ///< instant; a0 cached prefix tokens
  kComplete,      ///< instant; a0 generated tokens, a1 TTFT seconds
  kHandoffExport, ///< instant; a0 exported KV tokens
  kPreempt,       ///< instant; a0 tokens generated this residency
  kPoolDrop,      ///< instant; prompt can never fit this pool

  // Per-request journey stages (async lanes under pid 0, cat "request").
  kStageQueued,   ///< a0 replica
  kStageRun,      ///< a0 replica
  kStageMigrate,  ///< a0 src, a1 dst
};

[[nodiscard]] const char* ToString(TraceEventType type);

enum class TracePhase : std::uint8_t {
  kInstant,
  kSpan,
  kAsyncBegin,
  kAsyncEnd,
  kFlowStart,
  kFlowStep,
  kFlowEnd,
};

/// One recorded event.  POD on purpose: recording must never allocate or
/// format (see file comment).
struct TraceEvent {
  TraceEventType type = TraceEventType::kArrival;
  TracePhase phase = TracePhase::kInstant;
  std::int32_t pid = kFleetPid;
  std::int32_t tid = kTidRouter;
  double t = 0;    ///< simulated seconds
  double dur = 0;  ///< span duration (kSpan only)
  std::uint64_t id = 0;  ///< request id (or replica id for fleet events)
  double a0 = 0, a1 = 0, a2 = 0;
  /// Variable-length (key, value) tail in the recorder's side pool (route
  /// decisions carry the scorer term breakdown here).
  std::uint32_t ext_off = 0, ext_len = 0;
};

/// One named value in an event's variable-length tail.  Keys must be string
/// literals (static storage): the recorder stores the pointer.
struct TraceArg {
  const char* key = "";
  double value = 0;
};

class TraceRecorder {
 public:
  void Reserve(std::size_t events) { events_.reserve(events); }

  /// Names a Perfetto process lane (replica or the fleet control plane).
  /// `sort_index` orders lanes top-to-bottom in the UI.
  void DeclareProcess(std::int32_t pid, std::string name, int sort_index);
  void DeclareThread(std::int32_t pid, std::int32_t tid, std::string name);

  void Instant(TraceEventType type, double t, std::int32_t pid,
               std::int32_t tid, std::uint64_t id, double a0 = 0,
               double a1 = 0, double a2 = 0);
  /// Instant carrying a variable-length (key, value) breakdown.
  void InstantWithArgs(TraceEventType type, double t, std::int32_t pid,
                       std::int32_t tid, std::uint64_t id, double a0,
                       double a1, double a2, std::span<const TraceArg> ext);
  void Span(TraceEventType type, double start, double dur, std::int32_t pid,
            std::int32_t tid, std::uint64_t id, double a0 = 0, double a1 = 0,
            double a2 = 0);
  /// Opens/closes one stage slice in the request's async journey lane.
  void AsyncBegin(TraceEventType type, double t, std::uint64_t id,
                  double a0 = 0, double a1 = 0, double a2 = 0);
  void AsyncEnd(TraceEventType type, double t, std::uint64_t id);
  /// KV-migration flow arrow anchor (binds to the engine-lane slice
  /// containing `t` on (pid, tid)).
  void Flow(TracePhase phase, double t, std::int32_t pid, std::int32_t tid,
            std::uint64_t id);

  /// Absorbs the events of `shards` into this recorder and re-establishes
  /// global time order.  The parallel cluster runtime records each replica's
  /// engine events into a private per-replica shard (so worker threads never
  /// touch a shared vector); at end of run the shards are folded back here.
  ///
  /// Determinism contract: the result depends only on event content and the
  /// ORDER OF THE SHARD LIST, never on thread scheduling — the merge is a
  /// concatenation (this recorder's events, then each shard in list order)
  /// followed by a stable sort on the simulated timestamp, so equal-time
  /// events tie-break by (source index, original record order).  Ext-pool
  /// offsets are rebased; shard name declarations are appended; the shards
  /// are left cleared.
  void MergeShards(std::span<TraceRecorder* const> shards);

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  void Clear();

  /// Chrome Trace Event JSON (the `{"traceEvents": [...]}` envelope);
  /// deterministic byte-for-byte for a fixed event sequence.
  [[nodiscard]] std::string ToChromeTraceJson() const;
  /// One JSON object per line, in record order — the programmatic decision
  /// log (learned routing weights replay the `route` lines).
  [[nodiscard]] std::string ToJsonl() const;
  bool WriteChromeTrace(const std::string& path) const;
  bool WriteJsonl(const std::string& path) const;

 private:
  struct NameDecl {
    std::int32_t pid = 0;
    std::int32_t tid = 0;
    bool is_thread = false;
    int sort_index = 0;
    std::string name;
  };

  std::vector<TraceEvent> events_;
  std::vector<TraceArg> ext_pool_;
  std::vector<NameDecl> decls_;
};

}  // namespace liquid::obs
