#pragma once
// Glue between the uniform CLI flags and the telemetry exporters: one call
// writes whichever artifacts (--trace-out / --trace-jsonl / --metrics-out /
// --metrics-csv) the user asked for, echoing each path to stdout so scripts
// can pick the files up.

#include <cstdio>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"
#include "util/cli_flags.hpp"

namespace liquid::obs {

/// Writes the requested telemetry artifacts; returns false when any write
/// fails (the failing path is reported on stderr).
inline bool WriteTelemetry(const CliFlags& flags, const TraceRecorder& trace,
                           const MetricsRegistry& metrics) {
  bool ok = true;
  const auto report = [&ok](bool wrote, const char* what,
                            const std::string& path) {
    if (wrote) {
      std::printf("wrote %s: %s\n", what, path.c_str());
    } else {
      std::fprintf(stderr, "FAILED to write %s: %s\n", what, path.c_str());
      ok = false;
    }
  };
  if (!flags.trace_out.empty()) {
    report(trace.WriteChromeTrace(flags.trace_out), "chrome trace",
           flags.trace_out);
  }
  if (!flags.trace_jsonl.empty()) {
    report(trace.WriteJsonl(flags.trace_jsonl), "trace jsonl",
           flags.trace_jsonl);
  }
  if (!flags.metrics_out.empty()) {
    report(metrics.WriteJsonl(flags.metrics_out), "metrics jsonl",
           flags.metrics_out);
  }
  if (!flags.metrics_csv.empty()) {
    report(metrics.WriteCsv(flags.metrics_csv), "metrics csv",
           flags.metrics_csv);
  }
  return ok;
}

}  // namespace liquid::obs
