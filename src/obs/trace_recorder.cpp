#include "obs/trace_recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>

#include "util/json.hpp"

namespace liquid::obs {
namespace {

/// Static per-type export metadata: display name, category, and the JSON
/// keys for a0..a2 (nullptr = the slot is unused by this type).
struct TypeInfo {
  const char* name;
  const char* cat;
  const char* k0;
  const char* k1;
  const char* k2;
  const char* ext_key;  ///< key for the variable-length tail, when present
};

const TypeInfo& InfoFor(TraceEventType type) {
  static const TypeInfo kInfo[] = {
      {"arrival", "router", "prompt_tokens", "max_new_tokens", "attempt",
       nullptr},
      {"route", "router", "replica", "predicted_ttft", "score", "terms"},
      {"reject", "router", "predicted_ttft", nullptr, nullptr, nullptr},
      {"no_replica", "router", nullptr, nullptr, nullptr, nullptr},
      {"retry_scheduled", "chaos", "attempt", "release_at", nullptr, nullptr},
      {"retries_exhausted", "chaos", "attempt", nullptr, nullptr, nullptr},
      {"kill", "chaos", "replica", "lost", nullptr, nullptr},
      {"degrade", "chaos", "replica", "slowdown", nullptr, nullptr},
      {"scale_up", "autoscale", "replica", "pool", "signal", nullptr},
      {"scale_down", "autoscale", "replica", "pool", "signal", nullptr},
      {"autoscale_tick", "autoscale", nullptr, nullptr, nullptr, nullptr},
      {"migration_begin", "disagg", "src", "dst", "bytes", nullptr},
      {"migration_land", "disagg", "src", "dst", "stall_seconds", nullptr},
      {"migration_reroute", "disagg", "src", "dst", nullptr, nullptr},
      {"target_death", "disagg", "dst", nullptr, nullptr, nullptr},
      {"local_fallback", "disagg", "src", nullptr, nullptr, nullptr},
      {"import_oom", "disagg", "dst", nullptr, nullptr, nullptr},
      {"admit", "lifecycle", "cached_tokens", nullptr, nullptr, nullptr},
      {"prefill", "engine", "prompt_tokens", "cached_tokens", nullptr,
       nullptr},
      {"prefill_chunk", "engine", "chunk_tokens", "prior_tokens", nullptr,
       nullptr},
      {"decode_step", "engine", "batch", "mean_len", nullptr, nullptr},
      {"prefix_hit", "lifecycle", "cached_tokens", nullptr, nullptr, nullptr},
      {"complete", "lifecycle", "generated", "ttft_seconds", nullptr,
       nullptr},
      {"handoff_export", "lifecycle", "kv_tokens", nullptr, nullptr, nullptr},
      {"preempt", "lifecycle", "generated", nullptr, nullptr, nullptr},
      {"pool_drop", "lifecycle", nullptr, nullptr, nullptr, nullptr},
      {"queued", "request", "replica", nullptr, nullptr, nullptr},
      {"run", "request", "replica", nullptr, nullptr, nullptr},
      {"migrate", "request", "src", "dst", nullptr, nullptr},
  };
  return kInfo[static_cast<std::size_t>(type)];
}

const char* PhaseName(TracePhase phase) {
  switch (phase) {
    case TracePhase::kInstant: return "instant";
    case TracePhase::kSpan: return "span";
    case TracePhase::kAsyncBegin: return "begin";
    case TracePhase::kAsyncEnd: return "end";
    case TracePhase::kFlowStart: return "flow_start";
    case TracePhase::kFlowStep: return "flow_step";
    case TracePhase::kFlowEnd: return "flow_end";
  }
  return "?";
}

/// Async-stage display name with the replica baked in ("run@r3"), so the
/// per-request journey lane reads where each stage executed.
void AppendStageName(std::string& out, const TraceEvent& e) {
  char buf[48];
  switch (e.type) {
    case TraceEventType::kStageQueued:
      std::snprintf(buf, sizeof(buf), "queued@r%d", static_cast<int>(e.a0));
      break;
    case TraceEventType::kStageRun:
      std::snprintf(buf, sizeof(buf), "run@r%d", static_cast<int>(e.a0));
      break;
    case TraceEventType::kStageMigrate:
      std::snprintf(buf, sizeof(buf), "migrate r%d->r%d",
                    static_cast<int>(e.a0), static_cast<int>(e.a1));
      break;
    default:
      std::snprintf(buf, sizeof(buf), "%s", InfoFor(e.type).name);
      break;
  }
  out += buf;
}

void AppendMicros(std::string& out, double seconds) {
  AppendJsonNumber(out, seconds * 1e6);
}

}  // namespace

const char* ToString(TraceEventType type) { return InfoFor(type).name; }

void TraceRecorder::DeclareProcess(std::int32_t pid, std::string name,
                                   int sort_index) {
  decls_.push_back({pid, 0, false, sort_index, std::move(name)});
}

void TraceRecorder::DeclareThread(std::int32_t pid, std::int32_t tid,
                                  std::string name) {
  decls_.push_back({pid, tid, true, 0, std::move(name)});
}

void TraceRecorder::Instant(TraceEventType type, double t, std::int32_t pid,
                            std::int32_t tid, std::uint64_t id, double a0,
                            double a1, double a2) {
  TraceEvent e;
  e.type = type;
  e.phase = TracePhase::kInstant;
  e.pid = pid;
  e.tid = tid;
  e.t = t;
  e.id = id;
  e.a0 = a0;
  e.a1 = a1;
  e.a2 = a2;
  events_.push_back(e);
}

void TraceRecorder::InstantWithArgs(TraceEventType type, double t,
                                    std::int32_t pid, std::int32_t tid,
                                    std::uint64_t id, double a0, double a1,
                                    double a2, std::span<const TraceArg> ext) {
  TraceEvent e;
  e.type = type;
  e.phase = TracePhase::kInstant;
  e.pid = pid;
  e.tid = tid;
  e.t = t;
  e.id = id;
  e.a0 = a0;
  e.a1 = a1;
  e.a2 = a2;
  e.ext_off = static_cast<std::uint32_t>(ext_pool_.size());
  e.ext_len = static_cast<std::uint32_t>(ext.size());
  ext_pool_.insert(ext_pool_.end(), ext.begin(), ext.end());
  events_.push_back(e);
}

void TraceRecorder::Span(TraceEventType type, double start, double dur,
                         std::int32_t pid, std::int32_t tid, std::uint64_t id,
                         double a0, double a1, double a2) {
  TraceEvent e;
  e.type = type;
  e.phase = TracePhase::kSpan;
  e.pid = pid;
  e.tid = tid;
  e.t = start;
  e.dur = dur;
  e.id = id;
  e.a0 = a0;
  e.a1 = a1;
  e.a2 = a2;
  events_.push_back(e);
}

void TraceRecorder::AsyncBegin(TraceEventType type, double t, std::uint64_t id,
                               double a0, double a1, double a2) {
  TraceEvent e;
  e.type = type;
  e.phase = TracePhase::kAsyncBegin;
  e.pid = kFleetPid;
  e.tid = 0;
  e.t = t;
  e.id = id;
  e.a0 = a0;
  e.a1 = a1;
  e.a2 = a2;
  events_.push_back(e);
}

void TraceRecorder::AsyncEnd(TraceEventType type, double t, std::uint64_t id) {
  TraceEvent e;
  e.type = type;
  e.phase = TracePhase::kAsyncEnd;
  e.pid = kFleetPid;
  e.tid = 0;
  e.t = t;
  e.id = id;
  events_.push_back(e);
}

void TraceRecorder::Flow(TracePhase phase, double t, std::int32_t pid,
                         std::int32_t tid, std::uint64_t id) {
  TraceEvent e;
  e.type = TraceEventType::kStageMigrate;
  e.phase = phase;
  e.pid = pid;
  e.tid = tid;
  e.t = t;
  e.id = id;
  events_.push_back(e);
}

void TraceRecorder::MergeShards(std::span<TraceRecorder* const> shards) {
  std::size_t extra_events = 0, extra_ext = 0, extra_decls = 0;
  for (const TraceRecorder* shard : shards) {
    extra_events += shard->events_.size();
    extra_ext += shard->ext_pool_.size();
    extra_decls += shard->decls_.size();
  }
  events_.reserve(events_.size() + extra_events);
  ext_pool_.reserve(ext_pool_.size() + extra_ext);
  decls_.reserve(decls_.size() + extra_decls);

  for (TraceRecorder* shard : shards) {
    const auto ext_base = static_cast<std::uint32_t>(ext_pool_.size());
    ext_pool_.insert(ext_pool_.end(), shard->ext_pool_.begin(),
                     shard->ext_pool_.end());
    for (TraceEvent e : shard->events_) {
      if (e.ext_len > 0) e.ext_off += ext_base;
      events_.push_back(e);
    }
    decls_.insert(decls_.end(),
                  std::make_move_iterator(shard->decls_.begin()),
                  std::make_move_iterator(shard->decls_.end()));
    shard->Clear();
  }

  std::stable_sort(events_.begin(), events_.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.t < b.t;
                   });
}

void TraceRecorder::Clear() {
  events_.clear();
  ext_pool_.clear();
  decls_.clear();
}

std::string TraceRecorder::ToChromeTraceJson() const {
  std::string out;
  out.reserve(events_.size() * 120 + decls_.size() * 80 + 64);
  out += "{\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  for (const NameDecl& d : decls_) {
    if (d.is_thread) {
      sep();
      out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":";
      out += std::to_string(d.pid);
      out += ",\"tid\":";
      out += std::to_string(d.tid);
      out += ",\"args\":{\"name\":";
      AppendJsonString(out, d.name);
      out += "}}";
    } else {
      sep();
      out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
      out += std::to_string(d.pid);
      out += ",\"args\":{\"name\":";
      AppendJsonString(out, d.name);
      out += "}}";
      sep();
      out += "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":";
      out += std::to_string(d.pid);
      out += ",\"args\":{\"sort_index\":";
      out += std::to_string(d.sort_index);
      out += "}}";
    }
  }

  const auto args = [&](const TraceEvent& e) {
    const TypeInfo& info = InfoFor(e.type);
    bool any = false;
    const auto one = [&](const char* key, double value) {
      if (key == nullptr) return;
      out += any ? "," : ",\"args\":{";
      any = true;
      AppendJsonString(out, key);
      out += ':';
      AppendJsonNumber(out, value);
    };
    one(info.k0, e.a0);
    one(info.k1, e.a1);
    one(info.k2, e.a2);
    for (std::uint32_t i = 0; i < e.ext_len; ++i) {
      const TraceArg& a = ext_pool_[e.ext_off + i];
      one(a.key, a.value);
    }
    if (any) out += '}';
  };

  for (const TraceEvent& e : events_) {
    const TypeInfo& info = InfoFor(e.type);
    sep();
    switch (e.phase) {
      case TracePhase::kInstant:
        out += "{\"name\":\"";
        out += info.name;
        out += "\",\"cat\":\"";
        out += info.cat;
        out += "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
        AppendMicros(out, e.t);
        out += ",\"pid\":";
        out += std::to_string(e.pid);
        out += ",\"tid\":";
        out += std::to_string(e.tid);
        if (e.id != 0 || e.type == TraceEventType::kArrival) {
          out += ",\"id\":";
          out += std::to_string(e.id);
        }
        args(e);
        out += '}';
        break;
      case TracePhase::kSpan:
        out += "{\"name\":\"";
        out += info.name;
        out += "\",\"cat\":\"";
        out += info.cat;
        out += "\",\"ph\":\"X\",\"ts\":";
        AppendMicros(out, e.t);
        out += ",\"dur\":";
        AppendMicros(out, e.dur);
        out += ",\"pid\":";
        out += std::to_string(e.pid);
        out += ",\"tid\":";
        out += std::to_string(e.tid);
        args(e);
        out += '}';
        break;
      case TracePhase::kAsyncBegin:
        out += "{\"name\":\"";
        AppendStageName(out, e);
        out += "\",\"cat\":\"request\",\"ph\":\"b\",\"ts\":";
        AppendMicros(out, e.t);
        out += ",\"pid\":0,\"tid\":0,\"id\":";
        out += std::to_string(e.id);
        args(e);
        out += '}';
        break;
      case TracePhase::kAsyncEnd:
        out += "{\"name\":\"";
        out += info.name;
        out += "\",\"cat\":\"request\",\"ph\":\"e\",\"ts\":";
        AppendMicros(out, e.t);
        out += ",\"pid\":0,\"tid\":0,\"id\":";
        out += std::to_string(e.id);
        out += '}';
        break;
      case TracePhase::kFlowStart:
      case TracePhase::kFlowStep:
      case TracePhase::kFlowEnd: {
        const char* ph = e.phase == TracePhase::kFlowStart ? "s"
                         : e.phase == TracePhase::kFlowStep ? "t"
                                                            : "f";
        out += "{\"name\":\"kv\",\"cat\":\"kvflow\",\"ph\":\"";
        out += ph;
        out += "\",\"ts\":";
        AppendMicros(out, e.t);
        out += ",\"pid\":";
        out += std::to_string(e.pid);
        out += ",\"tid\":";
        out += std::to_string(e.tid);
        out += ",\"id\":";
        out += std::to_string(e.id);
        if (e.phase == TracePhase::kFlowEnd) out += ",\"bp\":\"e\"";
        out += '}';
        break;
      }
    }
  }
  out += "\n],\n\"displayTimeUnit\":\"ms\"\n}\n";
  return out;
}

std::string TraceRecorder::ToJsonl() const {
  std::string out;
  out.reserve(events_.size() * 110);
  for (const TraceEvent& e : events_) {
    const TypeInfo& info = InfoFor(e.type);
    out += "{\"type\":\"";
    out += info.name;
    out += "\",\"phase\":\"";
    out += PhaseName(e.phase);
    out += "\",\"t\":";
    AppendJsonNumber(out, e.t);
    if (e.phase == TracePhase::kSpan) {
      out += ",\"dur\":";
      AppendJsonNumber(out, e.dur);
    }
    out += ",\"pid\":";
    out += std::to_string(e.pid);
    out += ",\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"id\":";
    out += std::to_string(e.id);
    const auto one = [&](const char* key, double value) {
      if (key == nullptr) return;
      out += ',';
      AppendJsonString(out, key);
      out += ':';
      AppendJsonNumber(out, value);
    };
    if (e.phase != TracePhase::kAsyncEnd && e.phase != TracePhase::kFlowStart &&
        e.phase != TracePhase::kFlowStep && e.phase != TracePhase::kFlowEnd) {
      one(info.k0, e.a0);
      one(info.k1, e.a1);
      one(info.k2, e.a2);
      if (e.ext_len > 0 && info.ext_key != nullptr) {
        out += ',';
        AppendJsonString(out, info.ext_key);
        out += ":{";
        for (std::uint32_t i = 0; i < e.ext_len; ++i) {
          const TraceArg& a = ext_pool_[e.ext_off + i];
          if (i > 0) out += ',';
          AppendJsonString(out, a.key);
          out += ':';
          AppendJsonNumber(out, a.value);
        }
        out += '}';
      }
    }
    out += "}\n";
  }
  return out;
}

bool TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  const std::string body = ToChromeTraceJson();
  file.write(body.data(), static_cast<std::streamsize>(body.size()));
  return static_cast<bool>(file);
}

bool TraceRecorder::WriteJsonl(const std::string& path) const {
  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  const std::string body = ToJsonl();
  file.write(body.data(), static_cast<std::streamsize>(body.size()));
  return static_cast<bool>(file);
}

}  // namespace liquid::obs
