#include "obs/metrics.hpp"

#include <algorithm>
#include <fstream>

#include "util/json.hpp"

namespace liquid::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const auto at = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(at - bounds_.begin())];
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  if (p <= 0) return min_;
  if (p >= 100) return max_;
  // Same rank convention as util/stats Percentile (linear over ranks
  // 0..count-1), approximated bucket-wise: locate the bucket holding the
  // target rank, then interpolate across the bucket's observed-value range.
  const double target = p / 100.0 * static_cast<double>(count_ - 1);
  std::size_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double lo_rank = static_cast<double>(cum);
    const double hi_rank = static_cast<double>(cum + counts_[i] - 1);
    if (target <= hi_rank) {
      double lo = i == 0 ? min_ : std::max(bounds_[i - 1], min_);
      double hi = i < bounds_.size() ? std::min(bounds_[i], max_) : max_;
      if (hi < lo) hi = lo;
      const double frac = counts_[i] > 1
                              ? (target - lo_rank) / (hi_rank - lo_rank)
                              : 0.5;
      return lo + frac * (hi - lo);
    }
    cum += counts_[i];
  }
  return max_;
}

std::vector<double> LatencyBuckets() {
  // 1-2-5 decades from 1 ms to 50 s: coarse enough to stay cheap, fine
  // enough that a percentile's bucket-width error stays useful.
  return {0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5,
          1.0,   2.0,   5.0,  10.0, 20.0, 50.0};
}

std::size_t MetricsRegistry::Register(std::string name, Kind kind) {
  names_.push_back(std::move(name));
  kinds_.push_back(kind);
  values_.push_back(0);
  return names_.size() - 1;
}

Histogram& MetricsRegistry::RegisterHistogram(std::string name,
                                              std::vector<double> bounds) {
  histograms_.push_back({std::move(name), Histogram(std::move(bounds))});
  return histograms_.back().histogram;
}

void MetricsRegistry::Sample(double t) {
  rows_.push_back({t, values_});
}

std::string MetricsRegistry::ToJsonl() const {
  std::string out;
  out.reserve(rows_.size() * (16 + names_.size() * 24));
  for (const Row& row : rows_) {
    out += "{\"t\":";
    AppendJsonNumber(out, row.t);
    for (std::size_t i = 0; i < names_.size(); ++i) {
      out += ',';
      AppendJsonString(out, names_[i]);
      out += ':';
      AppendJsonNumber(out, row.values[i]);
    }
    out += "}\n";
  }
  for (const NamedHistogram& h : histograms_) {
    out += "{\"histogram\":";
    AppendJsonString(out, h.name);
    out += ",\"count\":";
    out += std::to_string(h.histogram.count());
    out += ",\"min\":";
    AppendJsonNumber(out, h.histogram.count() > 0 ? h.histogram.min() : 0);
    out += ",\"max\":";
    AppendJsonNumber(out, h.histogram.count() > 0 ? h.histogram.max() : 0);
    out += ",\"p50\":";
    AppendJsonNumber(out, h.histogram.Percentile(50));
    out += ",\"p95\":";
    AppendJsonNumber(out, h.histogram.Percentile(95));
    out += ",\"p99\":";
    AppendJsonNumber(out, h.histogram.Percentile(99));
    out += ",\"buckets\":[";
    const std::vector<double>& bounds = h.histogram.bounds();
    const std::vector<std::size_t>& counts = h.histogram.buckets();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out += ',';
      out += "{\"le\":";
      if (i < bounds.size()) {
        AppendJsonNumber(out, bounds[i]);
      } else {
        out += "null";  // overflow bucket: no finite ceiling
      }
      out += ",\"count\":";
      out += std::to_string(counts[i]);
      out += '}';
    }
    out += "]}\n";
  }
  return out;
}

std::string MetricsRegistry::ToCsv() const {
  std::string out;
  out += "t";
  for (const std::string& name : names_) {
    out += ',';
    out += name;
  }
  out += '\n';
  for (const Row& row : rows_) {
    AppendJsonNumber(out, row.t);
    for (const double v : row.values) {
      out += ',';
      AppendJsonNumber(out, v);
    }
    out += '\n';
  }
  return out;
}

bool MetricsRegistry::WriteJsonl(const std::string& path) const {
  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  const std::string body = ToJsonl();
  file.write(body.data(), static_cast<std::streamsize>(body.size()));
  return static_cast<bool>(file);
}

bool MetricsRegistry::WriteCsv(const std::string& path) const {
  std::ofstream file(path, std::ios::binary);
  if (!file) return false;
  const std::string body = ToCsv();
  file.write(body.data(), static_cast<std::streamsize>(body.size()));
  return static_cast<bool>(file);
}

}  // namespace liquid::obs
