#pragma once
// Glue between the uniform CLI flags and the wall-clock profiler, matching
// telemetry_sink.hpp: `MaybeEnableProfiler(flags)` before the run turns the
// scopes on when `--profile-out BASE` was given, and `WriteProfile(flags)`
// after the run writes the whole artifact family next to BASE:
//
//   BASE.txt             indented scope-tree summary (counts + ms)
//   BASE.csv             path,count,total_ns,self_ns
//   BASE.folded          collapsed stacks for flamegraph.pl / speedscope
//   BASE.speedscope.json native speedscope profile
//   BASE.gemm_ai.csv     per-kernel GEMM arithmetic-intensity table

#include <cstdio>
#include <string>

#include "core/gemm/gemm_counters.hpp"
#include "obs/prof/wall_profiler.hpp"
#include "util/cli_flags.hpp"

namespace liquid::obs {

/// Turns the profiler on (and clears any earlier tree) iff `--profile-out`
/// was given.  Returns whether profiling is active.
inline bool MaybeEnableProfiler(const CliFlags& flags) {
  if (flags.profile_out.empty()) return false;
  WallProfiler::Instance().Reset();
  gemmstats::ResetGemmCounters();
  WallProfiler::Enable();
  return true;
}

/// Writes the profile artifact family; no-op (true) without `--profile-out`.
/// Returns false when any write fails (failing path reported on stderr).
inline bool WriteProfile(const CliFlags& flags) {
  if (flags.profile_out.empty()) return true;
  WallProfiler::Disable();
  bool ok = true;
  const auto write = [&ok](const std::string& path, const std::string& body,
                           const char* what) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    const bool wrote =
        f != nullptr &&
        std::fwrite(body.data(), 1, body.size(), f) == body.size();
    if (f != nullptr) std::fclose(f);
    if (wrote) {
      std::printf("wrote %s: %s\n", what, path.c_str());
    } else {
      std::fprintf(stderr, "FAILED to write %s: %s\n", what, path.c_str());
      ok = false;
    }
  };
  const WallProfiler& prof = WallProfiler::Instance();
  write(flags.profile_out + ".txt", prof.TextSummary(), "profile summary");
  write(flags.profile_out + ".csv", prof.Csv(), "profile csv");
  write(flags.profile_out + ".folded", prof.CollapsedStacks(),
        "profile folded stacks");
  write(flags.profile_out + ".speedscope.json", prof.SpeedscopeJson(),
        "profile speedscope");
  write(flags.profile_out + ".gemm_ai.csv", gemmstats::AiCsv(),
        "gemm arithmetic-intensity csv");
  return ok;
}

}  // namespace liquid::obs
