#include "obs/prof/wall_profiler.hpp"

#include <cstdio>
#include <cstring>
#include <map>

#include "util/json.hpp"

namespace liquid::obs {

std::atomic<bool> WallProfiler::enabled_{false};

namespace {

// Per-thread cursor into that thread's tree.  `tls_generation` detects a
// Reset() issued (from any thread) since this thread last recorded: the old
// root is gone, so the thread re-roots itself lazily on its next Enter.
std::atomic<std::uint64_t> g_generation{1};
thread_local ProfNode* tls_cursor = nullptr;
thread_local std::uint64_t tls_generation = 0;

}  // namespace

WallProfiler& WallProfiler::Instance() {
  static WallProfiler instance;
  return instance;
}

void WallProfiler::Reset() {
  util::MutexLock lock(mu_);
  roots_.clear();
  g_generation.fetch_add(1, std::memory_order_relaxed);
}

void WallProfiler::Enter(const char* name) {
  if (tls_cursor == nullptr ||
      tls_generation != g_generation.load(std::memory_order_relaxed)) {
    auto root = std::make_unique<ProfNode>();
    root->name = "<thread>";
    tls_cursor = root.get();
    tls_generation = g_generation.load(std::memory_order_relaxed);
    util::MutexLock lock(mu_);
    roots_.push_back(std::move(root));
  }
  ProfNode* parent = tls_cursor;
  ProfNode* child = nullptr;
  for (const auto& c : parent->children) {
    // Same string literal first (the common case: one macro site), spelled
    // twice (e.g. two TUs) second.
    if (c->name == name || std::strcmp(c->name, name) == 0) {
      child = c.get();
      break;
    }
  }
  if (child == nullptr) {
    auto owned = std::make_unique<ProfNode>();
    owned->name = name;
    owned->parent = parent;
    child = owned.get();
    // Child insertion mutates a tree that an exporter on another thread may
    // be walking; exports take the same lock.
    util::MutexLock lock(mu_);
    parent->children.push_back(std::move(owned));
  }
  ++child->count;
  tls_cursor = child;
}

void WallProfiler::Leave(std::uint64_t elapsed_ns) {
  if (tls_cursor == nullptr || tls_cursor->parent == nullptr) return;
  tls_cursor->total_ns += elapsed_ns;
  tls_cursor = tls_cursor->parent;
}

// --- export: merge thread trees into one strcmp-ordered tree -----------------

struct WallProfiler::Merged {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::map<std::string, Merged> children;  // std::map == byte-wise order

  [[nodiscard]] std::uint64_t SelfNs() const {
    std::uint64_t child_ns = 0;
    for (const auto& [_, c] : children) child_ns += c.total_ns;
    // Children can sum past the parent by the timers' own overhead; clamp so
    // self time never goes negative.
    return total_ns > child_ns ? total_ns - child_ns : 0;
  }
};

namespace {

void FoldInto(const ProfNode& src, WallProfiler::Merged& dst) {
  dst.count += src.count;
  dst.total_ns += src.total_ns;
  for (const auto& c : src.children) FoldInto(*c, dst.children[c->name]);
}

}  // namespace

WallProfiler::Merged WallProfiler::MergeThreads() const {
  Merged root;
  util::MutexLock lock(mu_);
  for (const auto& thread_root : roots_) {
    for (const auto& c : thread_root->children) {
      FoldInto(*c, root.children[c->name]);
    }
    root.count += 1;  // repurposed: thread count at the synthetic root
  }
  for (const auto& [_, c] : root.children) root.total_ns += c.total_ns;
  return root;
}

namespace {

void AppendMs(std::string& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  out += buf;
}

void TextNode(const WallProfiler::Merged& node, const std::string& name,
              int depth, bool include_times, std::string& out) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  out += name;
  out += "  count=";
  out += std::to_string(node.count);
  if (include_times) {
    out += " total_ms=";
    AppendMs(out, node.total_ns);
    out += " self_ms=";
    AppendMs(out, node.SelfNs());
  }
  out += '\n';
  for (const auto& [child_name, child] : node.children) {
    TextNode(child, child_name, depth + 1, include_times, out);
  }
}

void CsvNode(const WallProfiler::Merged& node, const std::string& path,
             bool include_times, std::string& out) {
  out += path;
  out += ',';
  out += std::to_string(node.count);
  if (include_times) {
    out += ',';
    out += std::to_string(node.total_ns);
    out += ',';
    out += std::to_string(node.SelfNs());
  }
  out += '\n';
  for (const auto& [name, child] : node.children) {
    CsvNode(child, path + "/" + name, include_times, out);
  }
}

void FoldedNode(const WallProfiler::Merged& node, const std::string& stack,
                std::string& out) {
  out += stack;
  out += ' ';
  out += std::to_string(node.SelfNs());
  out += '\n';
  for (const auto& [name, child] : node.children) {
    FoldedNode(child, stack + ";" + name, out);
  }
}

struct SpeedscopeState {
  std::vector<std::string> frames;
  std::map<std::string, std::size_t> frame_index;
  std::vector<std::vector<std::size_t>> samples;
  std::vector<std::uint64_t> weights;

  std::size_t FrameIdx(const std::string& name) {
    auto it = frame_index.find(name);
    if (it != frame_index.end()) return it->second;
    const std::size_t idx = frames.size();
    frames.push_back(name);
    frame_index.emplace(name, idx);
    return idx;
  }

  void Walk(const WallProfiler::Merged& node, const std::string& name,
            std::vector<std::size_t>& stack) {
    stack.push_back(FrameIdx(name));
    samples.push_back(stack);
    weights.push_back(node.SelfNs());
    for (const auto& [child_name, child] : node.children) {
      Walk(child, child_name, stack);
    }
    stack.pop_back();
  }
};

}  // namespace

std::string WallProfiler::TextSummary(bool include_times) const {
  const Merged root = MergeThreads();
  std::string out = "wall-profile threads=" + std::to_string(root.count);
  if (include_times) {
    out += " total_ms=";
    AppendMs(out, root.total_ns);
  }
  out += '\n';
  for (const auto& [name, child] : root.children) {
    TextNode(child, name, 1, include_times, out);
  }
  return out;
}

std::string WallProfiler::Csv(bool include_times) const {
  const Merged root = MergeThreads();
  std::string out =
      include_times ? "path,count,total_ns,self_ns\n" : "path,count\n";
  for (const auto& [name, child] : root.children) {
    CsvNode(child, name, include_times, out);
  }
  return out;
}

std::string WallProfiler::CollapsedStacks() const {
  const Merged root = MergeThreads();
  std::string out;
  for (const auto& [name, child] : root.children) {
    FoldedNode(child, name, out);
  }
  return out;
}

std::string WallProfiler::SpeedscopeJson() const {
  const Merged root = MergeThreads();
  SpeedscopeState state;
  std::vector<std::size_t> stack;
  for (const auto& [name, child] : root.children) {
    state.Walk(child, name, stack);
  }
  std::uint64_t end_value = 0;
  for (const std::uint64_t w : state.weights) end_value += w;

  JsonWriter w;
  w.BeginObject()
      .Key("$schema")
      .String("https://www.speedscope.app/file-format-schema.json")
      .Key("shared")
      .BeginObject()
      .Key("frames")
      .BeginArray();
  for (const auto& frame : state.frames) {
    w.BeginObject().Key("name").String(frame).EndObject();
  }
  w.EndArray().EndObject();
  w.Key("profiles").BeginArray().BeginObject();
  w.Key("type").String("sampled");
  w.Key("name").String("liquid wall profile");
  w.Key("unit").String("nanoseconds");
  w.Key("startValue").Number(std::uint64_t{0});
  w.Key("endValue").Number(end_value);
  w.Key("samples").BeginArray();
  for (const auto& sample : state.samples) {
    w.BeginArray();
    for (const std::size_t frame : sample) {
      w.Number(static_cast<std::uint64_t>(frame));
    }
    w.EndArray();
  }
  w.EndArray();
  w.Key("weights").BeginArray();
  for (const std::uint64_t weight : state.weights) w.Number(weight);
  w.EndArray();
  w.EndObject().EndArray();
  w.Key("exporter").String("liquid-wall-profiler");
  w.EndObject();
  return w.TakeString();
}

}  // namespace liquid::obs
