// Wall-clock scope profiler for the simulator's own host cost.
//
// PR 6's telemetry observes the *simulated* clock; this observes the
// *wall* clock the simulator burns advancing it.  `LIQUID_PROF_SCOPE("name")`
// drops a RAII timer that accumulates (count, total wall ns) into a
// per-thread hierarchical scope tree; exporters merge the thread trees and
// emit a deterministic-ordering text/CSV summary, collapsed stacks for
// flamegraph.pl / speedscope "folded" import, and a native speedscope JSON
// profile.
//
// Cost model, so it can live on hot paths:
//   - Build-time: `-DLIQUID_PROFILE=OFF` (CMake option) compiles the macro to
//     nothing — zero tokens in the instrumented TU beyond an empty statement.
//     A TU may also pre-define LIQUID_PROF_ENABLED (0 or 1) before including
//     this header to override the build-wide default (the compile-out test
//     uses this to prove emptiness inside a LIQUID_PROFILE=ON build).
//   - Run-time: scopes are inert until `WallProfiler::Enable()` — the macro's
//     constructor is one relaxed atomic load and a branch when disabled, so
//     default runs (and both arms of the telemetry-overhead A/B gate) pay the
//     same negligible cost.
//
// `Enter`/`Leave` are public and flag-independent: exporter golden tests call
// them directly with injected nanosecond values, so schema/ordering goldens
// hold in both build modes.  Times in exports are wall-clock and therefore
// nondeterministic; every exporter takes (or implies) an `include_times`
// switch so tests can pin the deterministic part (tree shape + counts) alone.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/thread_annotations.hpp"
#include "util/wall_timer.hpp"

#if !defined(LIQUID_PROF_ENABLED)
#if defined(LIQUID_PROFILE) && LIQUID_PROFILE
#define LIQUID_PROF_ENABLED 1
#else
#define LIQUID_PROF_ENABLED 0
#endif
#endif

namespace liquid::obs {

/// One scope in a thread's tree.  `name` must be a string with static
/// storage duration (the tree stores the pointer, not a copy); child lookup
/// compares pointers first and falls back to strcmp so the same literal
/// spelled in two TUs still merges.
struct ProfNode {
  const char* name = nullptr;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  ProfNode* parent = nullptr;
  std::vector<std::unique_ptr<ProfNode>> children;  // first-entry order
};

class WallProfiler {
 public:
  /// Process-wide singleton (scope macros need a zero-argument path).
  static WallProfiler& Instance();

  /// Runtime master switch for the macros.  Off by default: binaries opt in
  /// (e.g. when `--profile-out` is passed).  Relaxed is enough — scopes on
  /// the same thread see their own Enable, and cross-thread enable races
  /// only blur the first few samples.
  [[nodiscard]] static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  static void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  /// Drops all recorded trees.  Only call while no scope is active on any
  /// thread (live cursors into the dropped nodes would dangle).
  void Reset();

  /// Manual scope API — what the macro-generated RAII objects call, public
  /// so tests can build trees with injected deterministic durations.
  void Enter(const char* name);
  void Leave(std::uint64_t elapsed_ns);

  /// Human-readable indented tree, children in byte-wise (strcmp) name
  /// order.  `include_times=false` omits every wall-derived column, leaving
  /// byte-deterministic output under a fixed seed.
  [[nodiscard]] std::string TextSummary(bool include_times = true) const;

  /// `path,count[,total_ns,self_ns]` rows, DFS over the strcmp-ordered
  /// merged tree; `path` is '/'-joined.
  [[nodiscard]] std::string Csv(bool include_times = true) const;

  /// Brendan-Gregg folded stacks: `a;b;c <self_ns>` per node, suitable for
  /// flamegraph.pl and speedscope's folded importer.
  [[nodiscard]] std::string CollapsedStacks() const;

  /// Native speedscope JSON ("sampled" profile, one weighted sample per
  /// scope path, weight = self ns).
  [[nodiscard]] std::string SpeedscopeJson() const;

  /// Merged (cross-thread, strcmp-ordered) view; defined in the .cpp and
  /// public only so exporter helpers can name it.
  struct Merged;

 private:
  [[nodiscard]] Merged MergeThreads() const LIQUID_EXCLUDES(mu_);

  static std::atomic<bool> enabled_;

  // mu_ guards the roots_ vector itself (thread registration and export
  // walks).  Node *contents* (count/total_ns) are only written by the owning
  // thread through its thread-local cursor; exporters read them under mu_,
  // which excludes the only structural mutation (child insertion, also
  // taken under mu_ in Enter).
  mutable util::Mutex mu_;
  std::vector<std::unique_ptr<ProfNode>> roots_
      LIQUID_GUARDED_BY(mu_);  // one per observed thread
};

/// RAII timer the LIQUID_PROF_SCOPE macro expands to.  Checks the runtime
/// flag once in the constructor; a disabled scope does no other work.
class WallProfileScope {
 public:
  explicit WallProfileScope(const char* name) {
    if (!WallProfiler::Enabled()) return;
    active_ = true;
    WallProfiler::Instance().Enter(name);
    start_ns_ = WallTimer::NowNs();
  }
  ~WallProfileScope() {
    if (!active_) return;
    WallProfiler::Instance().Leave(WallTimer::NowNs() - start_ns_);
  }
  WallProfileScope(const WallProfileScope&) = delete;
  WallProfileScope& operator=(const WallProfileScope&) = delete;

 private:
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace liquid::obs

#if LIQUID_PROF_ENABLED
#define LIQUID_PROF_CONCAT_INNER(a, b) a##b
#define LIQUID_PROF_CONCAT(a, b) LIQUID_PROF_CONCAT_INNER(a, b)
/// Times the enclosing block under `name` (a static-storage string).
#define LIQUID_PROF_SCOPE(name)                          \
  ::liquid::obs::WallProfileScope LIQUID_PROF_CONCAT(    \
      liquid_prof_scope_, __LINE__)(name)
#else
// Expands to nothing: the trailing ';' at the use site is an empty statement.
#define LIQUID_PROF_SCOPE(name)
#endif
