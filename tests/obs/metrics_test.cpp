// MetricsRegistry and fixed-bucket Histogram behavior: registration/sampling
// semantics, export formats, and — the accuracy contract — the histogram's
// interpolated percentile landing within one bucket width of the exact
// util/stats Percentile on shared inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace liquid::obs {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h(LatencyBuckets());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.Percentile(99), 0.0);
}

TEST(HistogramTest, SingleValueEveryPercentile) {
  Histogram h({1.0, 2.0, 4.0});
  h.Add(1.5);
  for (const double p : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(p), 1.5) << "p=" << p;
  }
}

TEST(HistogramTest, OverflowBucketClampsToObservedMax) {
  Histogram h({1.0, 2.0});
  h.Add(10.0);  // beyond the last bound: overflow bucket
  h.Add(50.0);
  EXPECT_EQ(h.buckets().back(), 2u);
  EXPECT_LE(h.Percentile(99), h.max());
  EXPECT_GE(h.Percentile(1), h.min());
}

// The contract the fleet TTFT/TPOT histograms rely on: against the exact
// (sorted-sample) percentile, the bucketed estimate errs by at most the
// width of the containing bucket.
TEST(HistogramTest, PercentileWithinOneBucketWidthOfExact) {
  const std::vector<double> bounds = LatencyBuckets();
  Histogram h(bounds);
  Rng rng(77);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    // Latency-shaped: heavy close to 10ms, a long tail into seconds.
    const double v = 0.010 * (1.0 + 40.0 * rng.NextDouble() * rng.NextDouble() *
                                        rng.NextDouble());
    values.push_back(v);
    h.Add(v);
  }
  for (const double p : {50.0, 90.0, 95.0, 99.0}) {
    const double exact = liquid::Percentile(values, p);
    const double est = h.Percentile(p);
    // Bucket width at the exact value's position.
    double lo = 0, hi = bounds.back();
    for (const double b : bounds) {
      if (b >= exact) {
        hi = b;
        break;
      }
      lo = b;
    }
    EXPECT_NEAR(est, exact, hi - lo) << "p=" << p;
  }
}

TEST(MetricsRegistryTest, SampleSnapshotsEverySeries) {
  MetricsRegistry reg;
  const std::size_t gauge = reg.Register("queue", MetricsRegistry::Kind::kGauge);
  const std::size_t counter =
      reg.Register("done", MetricsRegistry::Kind::kCounter);
  reg.Set(gauge, 3.0);
  reg.Add(counter);
  reg.Sample(1.0);
  reg.Set(gauge, 1.0);
  reg.Add(counter, 4.0);
  reg.Sample(2.5);
  EXPECT_EQ(reg.rows(), 2u);
  EXPECT_EQ(reg.series(), 2u);
  EXPECT_DOUBLE_EQ(reg.Value(gauge), 1.0);
  EXPECT_DOUBLE_EQ(reg.Value(counter), 5.0);
}

TEST(MetricsRegistryTest, JsonlRowsAreValidJson) {
  MetricsRegistry reg;
  const std::size_t g = reg.Register("g", MetricsRegistry::Kind::kGauge);
  Histogram& h = reg.RegisterHistogram("lat", {0.5, 1.0});
  h.Add(0.25);
  reg.Set(g, 7.5);
  reg.Sample(0.125);
  const std::string jsonl = reg.ToJsonl();
  std::istringstream lines(jsonl);
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(JsonSyntaxValid(line)) << line;
    ++n;
  }
  EXPECT_EQ(n, 2u);  // one sample row + one histogram summary line
  EXPECT_NE(jsonl.find("\"g\""), std::string::npos);
  EXPECT_NE(jsonl.find("lat"), std::string::npos);
}

TEST(MetricsRegistryTest, CsvHeaderMatchesSeriesOrder) {
  MetricsRegistry reg;
  const std::size_t a = reg.Register("alpha", MetricsRegistry::Kind::kGauge);
  const std::size_t b = reg.Register("beta", MetricsRegistry::Kind::kCounter);
  reg.Set(a, 1.0);
  reg.Set(b, 2.0);
  reg.Sample(3.0);
  const std::string csv = reg.ToCsv();
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "t,alpha,beta");
  EXPECT_NE(csv.find("3,1,2"), std::string::npos);
}

TEST(MetricsRegistryTest, HistogramReferencesStayStableAcrossGrowth) {
  MetricsRegistry reg;
  Histogram& first = reg.RegisterHistogram("first", {1.0});
  first.Add(0.5);
  for (int i = 0; i < 32; ++i) {
    reg.RegisterHistogram("h" + std::to_string(i), {1.0});
  }
  first.Add(0.5);  // would crash/corrupt if the reference moved
  EXPECT_EQ(first.count(), 2u);
}

}  // namespace
}  // namespace liquid::obs
