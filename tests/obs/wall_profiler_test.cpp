// WallProfiler exporter goldens.  Times are injected through the public
// Enter/Leave API (nanosecond arguments, no real clock), so every golden
// here is byte-deterministic and holds under both LIQUID_PROFILE build
// modes.  The macro-path tests are additionally guarded on
// LIQUID_PROF_ENABLED so the -DLIQUID_PROFILE=OFF CI build still passes.

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "obs/prof/wall_profiler.hpp"
#include "util/json.hpp"

namespace liquid::obs {
namespace {

/// The canonical injected tree:
///   sim/run            1 call, 100us total
///     router/route_one 3 calls, 30us total
///     sim/events       2 calls, 50us total
///       sim/events/tick 2 calls, 20us total
void BuildCanonicalTree(WallProfiler& prof) {
  prof.Enter("sim/run");
  for (int i = 0; i < 3; ++i) {
    prof.Enter("router/route_one");
    prof.Leave(10'000);
  }
  for (int i = 0; i < 2; ++i) {
    prof.Enter("sim/events");
    prof.Enter("sim/events/tick");
    prof.Leave(10'000);
    prof.Leave(25'000);
  }
  prof.Leave(100'000);
}

TEST(WallProfilerTest, TextSummaryCountsGolden) {
  WallProfiler& prof = WallProfiler::Instance();
  prof.Reset();
  BuildCanonicalTree(prof);
  // Children print in byte-wise name order ('r' < 's'), not entry order.
  EXPECT_EQ(prof.TextSummary(/*include_times=*/false),
            "wall-profile threads=1\n"
            "  sim/run  count=1\n"
            "    router/route_one  count=3\n"
            "    sim/events  count=2\n"
            "      sim/events/tick  count=2\n");
}

TEST(WallProfilerTest, TextSummaryWithInjectedTimes) {
  WallProfiler& prof = WallProfiler::Instance();
  prof.Reset();
  BuildCanonicalTree(prof);
  // Injected durations make even the timed columns deterministic.
  // self(sim/run) = 100us - 30us - 50us = 20us.
  EXPECT_EQ(prof.TextSummary(),
            "wall-profile threads=1 total_ms=0.100\n"
            "  sim/run  count=1 total_ms=0.100 self_ms=0.020\n"
            "    router/route_one  count=3 total_ms=0.030 self_ms=0.030\n"
            "    sim/events  count=2 total_ms=0.050 self_ms=0.030\n"
            "      sim/events/tick  count=2 total_ms=0.020 self_ms=0.020\n");
}

TEST(WallProfilerTest, CsvGolden) {
  WallProfiler& prof = WallProfiler::Instance();
  prof.Reset();
  BuildCanonicalTree(prof);
  EXPECT_EQ(prof.Csv(/*include_times=*/false),
            "path,count\n"
            "sim/run,1\n"
            "sim/run/router/route_one,3\n"
            "sim/run/sim/events,2\n"
            "sim/run/sim/events/sim/events/tick,2\n");
  EXPECT_EQ(prof.Csv(),
            "path,count,total_ns,self_ns\n"
            "sim/run,1,100000,20000\n"
            "sim/run/router/route_one,3,30000,30000\n"
            "sim/run/sim/events,2,50000,30000\n"
            "sim/run/sim/events/sim/events/tick,2,20000,20000\n");
}

TEST(WallProfilerTest, CollapsedStacksGolden) {
  WallProfiler& prof = WallProfiler::Instance();
  prof.Reset();
  BuildCanonicalTree(prof);
  EXPECT_EQ(prof.CollapsedStacks(),
            "sim/run 20000\n"
            "sim/run;router/route_one 30000\n"
            "sim/run;sim/events 30000\n"
            "sim/run;sim/events;sim/events/tick 20000\n");
}

TEST(WallProfilerTest, SpeedscopeJsonSchema) {
  WallProfiler& prof = WallProfiler::Instance();
  prof.Reset();
  BuildCanonicalTree(prof);
  const std::string json = prof.SpeedscopeJson();
  ASSERT_TRUE(JsonSyntaxValid(json));
  EXPECT_NE(json.find("\"$schema\":\"https://www.speedscope.app/"
                      "file-format-schema.json\""),
            std::string::npos);
  EXPECT_NE(json.find("\"type\":\"sampled\""), std::string::npos);
  EXPECT_NE(json.find("\"unit\":\"nanoseconds\""), std::string::npos);
  // endValue == sum of self weights == the root's 100us.
  EXPECT_NE(json.find("\"endValue\":100000"), std::string::npos);
  // One frame entry per distinct scope name.
  EXPECT_NE(json.find("{\"name\":\"sim/run\"}"), std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"sim/events/tick\"}"), std::string::npos);
}

TEST(WallProfilerTest, SelfTimeClampsAtZero) {
  WallProfiler& prof = WallProfiler::Instance();
  prof.Reset();
  // Child reports MORE time than its parent (timer overhead skew): self must
  // clamp at 0, not wrap around as unsigned.
  prof.Enter("outer");
  prof.Enter("inner");
  prof.Leave(5'000);
  prof.Leave(1'000);
  EXPECT_EQ(prof.Csv(),
            "path,count,total_ns,self_ns\n"
            "outer,1,1000,0\n"
            "outer/inner,1,5000,5000\n");
}

TEST(WallProfilerTest, ResetDropsEverything) {
  WallProfiler& prof = WallProfiler::Instance();
  prof.Reset();
  BuildCanonicalTree(prof);
  prof.Reset();
  EXPECT_EQ(prof.TextSummary(/*include_times=*/false),
            "wall-profile threads=0\n");
  EXPECT_EQ(prof.Csv(/*include_times=*/false), "path,count\n");
  EXPECT_EQ(prof.CollapsedStacks(), "");
}

TEST(WallProfilerTest, MergesThreadTreesByName) {
  WallProfiler& prof = WallProfiler::Instance();
  prof.Reset();
  BuildCanonicalTree(prof);
  std::thread other([&prof] { BuildCanonicalTree(prof); });
  other.join();
  // Same scope names from two threads fold into one tree, counts summed.
  EXPECT_EQ(prof.TextSummary(/*include_times=*/false),
            "wall-profile threads=2\n"
            "  sim/run  count=2\n"
            "    router/route_one  count=6\n"
            "    sim/events  count=4\n"
            "      sim/events/tick  count=4\n");
}

TEST(WallProfilerTest, DisabledScopeRecordsNothing) {
  WallProfiler& prof = WallProfiler::Instance();
  prof.Reset();
  WallProfiler::Disable();
  { WallProfileScope scope("never"); }
  EXPECT_EQ(prof.TextSummary(/*include_times=*/false),
            "wall-profile threads=0\n");
}

TEST(WallProfilerTest, EnabledScopeRecordsRealTime) {
  WallProfiler& prof = WallProfiler::Instance();
  prof.Reset();
  WallProfiler::Enable();
  {
    WallProfileScope outer("scope/outer");
    WallProfileScope inner("scope/inner");
  }
  WallProfiler::Disable();
  EXPECT_EQ(prof.Csv(/*include_times=*/false),
            "path,count\n"
            "scope/outer,1\n"
            "scope/outer/scope/inner,1\n");
}

#if LIQUID_PROF_ENABLED
TEST(WallProfilerTest, MacroRecordsWhenCompiledInAndEnabled) {
  WallProfiler& prof = WallProfiler::Instance();
  prof.Reset();
  WallProfiler::Enable();
  {
    LIQUID_PROF_SCOPE("macro/outer");
    for (int i = 0; i < 3; ++i) {
      LIQUID_PROF_SCOPE("macro/inner");
    }
  }
  WallProfiler::Disable();
  EXPECT_EQ(prof.Csv(/*include_times=*/false),
            "path,count\n"
            "macro/outer,1\n"
            "macro/outer/macro/inner,3\n");
}
#endif

}  // namespace
}  // namespace liquid::obs
