// TraceRecorder export formats: the Chrome Trace Event envelope Perfetto
// loads (metadata + spans + instants + async journey lanes + flow arrows)
// and the JSONL decision log, both syntax-checked with the same strict
// parser CI's python pass uses, plus byte determinism for a fixed sequence.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/trace_recorder.hpp"
#include "util/json.hpp"

namespace liquid::obs {
namespace {

/// A miniature fleet story touching every phase kind once.
TraceRecorder RecordStory() {
  TraceRecorder rec;
  rec.DeclareProcess(kFleetPid, "fleet", 0);
  rec.DeclareThread(kFleetPid, kTidRouter, "router");
  rec.DeclareProcess(ReplicaPid(0), "replica 0", 1);
  rec.DeclareThread(ReplicaPid(0), kTidEngine, "engine");

  rec.Instant(TraceEventType::kArrival, 0.5, kFleetPid, kTidRouter, 7,
              /*prompt=*/512, /*max_new=*/64, /*attempt=*/0);
  const TraceArg terms[] = {{"queue", -0.25}, {"prefix", 0.5}};
  rec.InstantWithArgs(TraceEventType::kRoute, 0.5, kFleetPid, kTidRouter, 7,
                      /*replica=*/0, /*predicted_ttft=*/0.125, /*score=*/0.25,
                      terms);
  rec.AsyncBegin(TraceEventType::kStageQueued, 0.5, 7, 0);
  rec.AsyncEnd(TraceEventType::kStageQueued, 0.625, 7);
  rec.Span(TraceEventType::kPrefill, 0.625, 0.0625, ReplicaPid(0), kTidEngine,
           7, 512, 0);
  rec.Flow(TracePhase::kFlowStart, 0.6875, ReplicaPid(0), kTidEngine, 7);
  rec.Instant(TraceEventType::kComplete, 1.0, ReplicaPid(0), kTidLifecycle, 7,
              64, 0.1875);
  return rec;
}

TEST(TraceRecorderTest, ChromeTraceIsValidJsonWithEnvelope) {
  const TraceRecorder rec = RecordStory();
  const std::string json = rec.ToChromeTraceJson();
  EXPECT_TRUE(JsonSyntaxValid(json));
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Metadata names the lanes...
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  // ...and every phase kind shows up with its Chrome phase letter.
  for (const char* needle :
       {"\"ph\":\"i\"", "\"ph\":\"X\"", "\"ph\":\"b\"", "\"ph\":\"e\"",
        "\"ph\":\"s\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle;
  }
}

TEST(TraceRecorderTest, RouteEventCarriesTermBreakdown) {
  const std::string json = RecordStory().ToChromeTraceJson();
  EXPECT_NE(json.find("\"name\":\"route\""), std::string::npos);
  EXPECT_NE(json.find("\"queue\":-0.25"), std::string::npos);
  EXPECT_NE(json.find("\"prefix\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"score\":0.25"), std::string::npos);
}

TEST(TraceRecorderTest, TimesExportAsMicroseconds) {
  TraceRecorder rec;
  rec.Span(TraceEventType::kPrefill, 0.5, 0.25, ReplicaPid(2), kTidEngine, 1);
  const std::string json = rec.ToChromeTraceJson();
  EXPECT_NE(json.find("\"ts\":500000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":250000"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
}

TEST(TraceRecorderTest, JsonlOneValidObjectPerLine) {
  const TraceRecorder rec = RecordStory();
  const std::string jsonl = rec.ToJsonl();
  std::istringstream lines(jsonl);
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(JsonSyntaxValid(line)) << line;
    EXPECT_EQ(line.front(), '{');
    ++n;
  }
  EXPECT_EQ(n, rec.size());
  // The decision log nests the scorer terms under their own key.
  EXPECT_NE(jsonl.find("\"terms\":{"), std::string::npos);
}

TEST(TraceRecorderTest, FixedSequenceExportsByteIdentical) {
  const std::string a = RecordStory().ToChromeTraceJson();
  const std::string b = RecordStory().ToChromeTraceJson();
  EXPECT_EQ(a, b);
  EXPECT_EQ(RecordStory().ToJsonl(), RecordStory().ToJsonl());
}

TEST(TraceRecorderTest, ClearDropsEverything) {
  TraceRecorder rec = RecordStory();
  ASSERT_FALSE(rec.empty());
  rec.Clear();
  EXPECT_TRUE(rec.empty());
  EXPECT_EQ(rec.size(), 0u);
}

}  // namespace
}  // namespace liquid::obs
