// Compile-out proof: with profiling disabled, LIQUID_PROF_SCOPE must expand
// to NOTHING — not a disabled object, zero tokens.  This TU force-disables
// the macro via the LIQUID_PROF_ENABLED override (so the proof also runs
// inside a -DLIQUID_PROFILE=ON build) and checks the expansion both ways:
// a preprocessor stringize shows the literal emptiness, and a runtime pass
// shows an enabled profiler still records nothing through the macro.

#define LIQUID_PROF_ENABLED 0
#include "obs/prof/wall_profiler.hpp"

#include <gtest/gtest.h>

namespace liquid::obs {
namespace {

#define LIQ_STR_INNER(x) #x
#define LIQ_STR(x) LIQ_STR_INNER(x)

// Stringizing "(<expansion of the macro>)" must yield exactly "()": the
// macro contributed zero tokens.
static_assert(sizeof(LIQ_STR((LIQUID_PROF_SCOPE("x")))) == sizeof("()"),
              "LIQUID_PROF_SCOPE must expand to nothing when disabled");

TEST(ProfMacrosOffTest, MacroRecordsNothingEvenWhenProfilerEnabled) {
  WallProfiler& prof = WallProfiler::Instance();
  prof.Reset();
  WallProfiler::Enable();
  {
    LIQUID_PROF_SCOPE("compiled/out");
    LIQUID_PROF_SCOPE("also/compiled/out");
  }
  WallProfiler::Disable();
  EXPECT_EQ(prof.TextSummary(/*include_times=*/false),
            "wall-profile threads=0\n");
}

}  // namespace
}  // namespace liquid::obs
