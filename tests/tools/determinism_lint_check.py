#!/usr/bin/env python3
"""Self-test for tools/lint/determinism_lint.py against the known-bad /
known-good corpus in tests/tools/lint_corpus/.

Asserts EXACT finding counts per (file, rule), specific line numbers, exit
codes, suppression semantics (same-line and preceding-line markers,
mandatory reasons), and the JSON schema the CI job consumes.  Runs under
ctest as `determinism_lint_selftest`.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
LINTER = os.path.join(REPO_ROOT, "tools", "lint", "determinism_lint.py")
CORPUS = os.path.join(REPO_ROOT, "tests", "tools", "lint_corpus")

_failures = []


def check(cond, message):
    if not cond:
        _failures.append(message)
        print(f"FAIL: {message}")
    else:
        print(f"ok:   {message}")


def run_lint(paths, extra=()):
    with tempfile.NamedTemporaryFile(mode="r", suffix=".json") as tmp:
        proc = subprocess.run(
            [sys.executable, LINTER, *paths, "--quiet", "--json", tmp.name,
             *extra],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        tmp.seek(0)
        payload = json.load(tmp)
    return proc.returncode, payload


def counts_by_file_rule(payload):
    table = {}
    for f in payload["findings"]:
        key = (os.path.basename(f["file"]), f["rule"])
        table[key] = table.get(key, 0) + 1
    return table


def lines_for(payload, basename, rule):
    return sorted(
        f["line"]
        for f in payload["findings"]
        if os.path.basename(f["file"]) == basename and f["rule"] == rule
    )


def main():
    # --- whole-corpus scan: exact per-file/per-rule counts -----------------
    rc, payload = run_lint([CORPUS])
    check(rc == 1, "corpus scan exits 1 (unsuppressed findings present)")
    check(payload["version"] == 1, "JSON payload carries schema version 1")

    expected = {
        ("bad_wall_clock.cpp", "wall-clock"): 3,
        ("bad_rng.cpp", "adhoc-rng"): 3,
        ("bad_unordered_iter.cpp", "unordered-iteration"): 2,
        ("bad_pointer_keys.cpp", "pointer-keyed-order"): 2,
        ("bad_timestamp.cpp", "build-timestamp"): 1,
        ("suppressed.cpp", "unordered-iteration"): 1,
        ("suppressed.cpp", "wall-clock"): 1,
        ("bad_suppression.cpp", "bad-suppression"): 2,
        ("bad_suppression.cpp", "unordered-iteration"): 2,
    }
    actual = counts_by_file_rule(payload)
    for key, want in sorted(expected.items()):
        got = actual.get(key, 0)
        check(got == want, f"{key[0]} [{key[1]}]: {got} finding(s), want {want}")
    for key, got in sorted(actual.items()):
        check(key in expected, f"unexpected finding bucket {key} x{got}")

    check(
        lines_for(payload, "bad_wall_clock.cpp", "wall-clock") == [8, 12, 17],
        "wall-clock findings pin lines 8/12/17",
    )
    check(
        lines_for(payload, "bad_unordered_iter.cpp", "unordered-iteration")
        == [12, 19],
        "unordered-iteration findings pin lines 12/19 (range-for + .begin)",
    )
    check(
        lines_for(payload, "bad_suppression.cpp", "bad-suppression") == [13, 20],
        "bad-suppression findings pin lines 13/20 (bare marker, empty reason)",
    )

    # Nothing from the known-good file.
    clean_rows = [
        f for f in payload["findings"]
        if os.path.basename(f["file"]) == "clean.cpp"
    ]
    check(not clean_rows, f"clean.cpp has zero findings (got {clean_rows})")

    # Suppression semantics: reported, marked, reason carried through.
    sup = [
        f for f in payload["findings"]
        if os.path.basename(f["file"]) == "suppressed.cpp"
    ]
    check(
        all(f["suppressed"] and f["reason"] for f in sup) and len(sup) == 2,
        "suppressed.cpp findings are all suppressed with reasons attached",
    )
    bad = [
        f for f in payload["findings"]
        if os.path.basename(f["file"]) == "bad_suppression.cpp"
    ]
    check(
        all(not f["suppressed"] for f in bad),
        "malformed markers suppress nothing (including themselves)",
    )

    summary = payload["summary"]
    check(
        summary["total"] == sum(expected.values())
        and summary["suppressed"] == 2
        and summary["unsuppressed"] == summary["total"] - 2,
        f"summary counts are consistent ({summary})",
    )

    # --- single-file scans: exit-code contract ------------------------------
    rc_clean, _ = run_lint([os.path.join(CORPUS, "clean.cpp")])
    check(rc_clean == 0, "clean.cpp alone exits 0")
    rc_sup, _ = run_lint([os.path.join(CORPUS, "suppressed.cpp")])
    check(rc_sup == 0, "suppressed.cpp alone exits 0 (everything suppressed)")
    rc_bad, _ = run_lint([os.path.join(CORPUS, "bad_timestamp.cpp")])
    check(rc_bad == 1, "bad_timestamp.cpp alone exits 1")

    # --- allowed-path carve-outs: the sanctioned wrappers lint clean --------
    rc_wall, wall_payload = run_lint(
        [os.path.join(REPO_ROOT, "src", "util", "wall_timer.hpp")])
    check(
        rc_wall == 0 and not wall_payload["findings"],
        "util/wall_timer.hpp is carved out of the wall-clock rule",
    )
    rc_rng, rng_payload = run_lint(
        [os.path.join(REPO_ROOT, "src", "util", "rng.hpp")])
    check(
        rc_rng == 0 and not rng_payload["findings"],
        "util/rng.hpp is carved out of the adhoc-rng rule",
    )

    if _failures:
        print(f"\n{len(_failures)} check(s) failed")
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
