// Lint corpus: malformed suppressions.  determinism_lint_check.py asserts
// exactly 2 bad-suppression findings (bare marker line 13, empty reason
// line 20) plus the 2 underlying findings they fail to suppress — and that
// bad-suppression findings cannot themselves be suppressed.

#include <cstdint>
#include <unordered_map>

std::unordered_map<std::uint64_t, double> g_table;

double SumBare() {
  double total = 0;  // marker below has no reason — itself a finding
  // NOLINT-DETERMINISM
  for (const auto& [k, v] : g_table) total += v;
  return total;
}

double SumEmpty() {
  double total = 0;
  // NOLINT-DETERMINISM()
  for (const auto& [k, v] : g_table) total += v;
  return total;
}
