// Lint corpus: known-bad pointer-keyed ordered containers.  Never compiled —
// scanned by determinism_lint_check.py, which asserts exactly 2
// pointer-keyed-order findings (lines 11 and 12).

#include <map>
#include <set>

struct Replica {};

void Build() {
  std::map<Replica*, int> by_replica;
  std::set<const Replica*> seen;
  (void)by_replica;
  (void)seen;
}
