// Lint corpus: known-good file — determinism_lint_check.py asserts ZERO
// findings here.  Exercises the false-positive traps: determinism-safe
// constructs that look superficially like violations.
//
// A comment mentioning std::chrono::steady_clock or std::random_device must
// not fire (comments are stripped), and neither must the string literal
// below containing __DATE__.

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

// Ordered iteration is fine: std::map with an integer key.  (Named
// differently from the unordered parameter below — the linter's
// declaration scan is deliberately name-based and file-scoped.)
double SumOrdered(const std::map<std::uint64_t, double>& by_key) {
  double total = 0;
  for (const auto& [key, value] : by_key) total += value;
  return total;
}

// Keyed lookups into unordered containers are fine — only iteration is
// order-sensitive.
double Lookup(const std::unordered_map<std::uint64_t, double>& table,
              std::uint64_t key) {
  const auto it = table.find(key);
  return it == table.end() ? 0.0 : it->second;
}

std::string DocString() {
  return "the __DATE__ macro is banned in real code";
}
