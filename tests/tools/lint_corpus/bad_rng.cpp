// Lint corpus: known-bad ad-hoc RNG.  Never compiled — scanned by
// determinism_lint_check.py, which asserts exactly 3 adhoc-rng findings
// (lines 8, 12, 13).

#include <random>

int HostRand() {
  return std::rand();
}

double GaussNoise() {
  std::random_device rd;
  std::mt19937 gen(rd());
  return static_cast<double>(gen());
}
