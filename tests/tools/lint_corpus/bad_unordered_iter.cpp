// Lint corpus: known-bad unordered iteration.  Never compiled — scanned by
// determinism_lint_check.py, which asserts exactly 2 unordered-iteration
// findings (lines 12 and 19).

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

double SumValues(const std::unordered_map<std::uint64_t, double>& table) {
  double total = 0;
  // Order-dependent if total ever becomes an output stream: flagged.
  for (const auto& [key, value] : table) total += value;
  return total;
}

std::uint64_t FirstMember() {
  std::unordered_set<std::uint64_t> members;
  members.insert(42);
  return *members.begin();
}
