// Lint corpus: known-bad build timestamp.  Never compiled — scanned by
// determinism_lint_check.py, which asserts exactly 1 build-timestamp finding
// (line 6).

const char* BuildStamp() {
  return __DATE__ " " __TIME__;
}
