// Lint corpus: violations carrying valid suppression markers.
// determinism_lint_check.py asserts both findings are reported AND
// suppressed (same-line marker and preceding-line marker), so this file
// alone lints clean (exit 0).

#include <cstdint>
#include <unordered_set>

std::size_t EraseAll(std::unordered_set<std::uint64_t>& members) {
  std::size_t erased = 0;
  // NOLINT-DETERMINISM(erase-only sweep; surviving content is order-independent)
  for (auto it = members.begin(); it != members.end();) {
    it = members.erase(it);
    ++erased;
  }
  return erased;
}

double HostSeconds() {
  return 0;  // placeholder body; the marker below is what the test pins
}

double WallProbe() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // NOLINT-DETERMINISM(host-only diagnostic; never feeds simulated state)
}
