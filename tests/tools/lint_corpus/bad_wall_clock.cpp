// Lint corpus: known-bad wall-clock reads.  Never compiled — scanned by
// determinism_lint_check.py, which asserts exactly 3 wall-clock findings
// (lines 8, 12, 17).

#include <chrono>

double NowSteady() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

double NowSystem() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

long NowPosix() {
  timespec ts{};
  clock_gettime(0, &ts);
  return ts.tv_sec;
}
