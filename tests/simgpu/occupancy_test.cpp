#include "simgpu/occupancy.hpp"

#include <gtest/gtest.h>

namespace liquid::simgpu {
namespace {

TEST(OccupancyTest, BasicQuotients) {
  SmResources sm;  // Hopper defaults
  BlockFootprint block;
  block.warps = 12;          // 3 warp groups
  block.regs_per_thread = 96;
  block.smem_bytes = 64 * 1024;
  const OccupancyResult occ = ComputeOccupancy(sm, block);
  EXPECT_EQ(occ.limited_by_warps, 64 / 12);
  EXPECT_EQ(occ.limited_by_smem, static_cast<int>(sm.smem_bytes / block.smem_bytes));
  EXPECT_EQ(occ.blocks_per_sm,
            std::min({occ.limited_by_warps, occ.limited_by_registers,
                      occ.limited_by_smem, occ.limited_by_slots}));
}

TEST(OccupancyTest, SmemBoundKernel) {
  SmResources sm;
  BlockFootprint block;
  block.warps = 4;
  block.regs_per_thread = 32;
  block.smem_bytes = 200 * 1024;  // nearly the whole SM
  const OccupancyResult occ = ComputeOccupancy(sm, block);
  EXPECT_EQ(occ.blocks_per_sm, 1);
  EXPECT_STREQ(occ.limiter, "smem");
}

TEST(OccupancyTest, LiquidKernelResidency) {
  // The full-width (tile_m = 256) ping-pong configuration is register-bound
  // at one block per SM — the CUTLASS Hopper norm for fat tiles; the
  // simulator's L = 2 corresponds to the half-width tile each compute WG
  // effectively owns.
  const KernelConfig wide = KernelConfig::For(KernelKind::kLiquidW4A8);
  const OccupancyResult occ_wide =
      ComputeOccupancy(SmResources{}, FootprintFor(wide));
  EXPECT_GE(occ_wide.blocks_per_sm, 1);
  EXPECT_STREQ(occ_wide.limiter, "registers");
  // Shrinking the accumulator footprint (small-batch tiles) restores
  // multi-block residency.
  KernelConfig narrow = wide;
  narrow.tile_m = 64;
  EXPECT_GE(ComputeOccupancy(SmResources{}, FootprintFor(narrow)).blocks_per_sm,
            2);
}

TEST(OccupancyTest, TileMBoundedBySmem) {
  // Section 3.3: the batch-side tile cannot grow arbitrarily — SMEM (and
  // accumulator registers) cap it.  The bound must be finite and at least
  // the 256 LiquidGEMM uses.
  const KernelConfig cfg = KernelConfig::For(KernelKind::kLiquidW4A8);
  const int max_tile = MaxTileMForSmem(SmResources{}, cfg, 1);
  EXPECT_GE(max_tile, 256);
  EXPECT_LE(max_tile, 512);
  // Demanding 2 resident blocks tightens the bound.
  EXPECT_LE(MaxTileMForSmem(SmResources{}, cfg, 2), max_tile);
}

TEST(OccupancyTest, ExCpCostsAWarpGroup) {
  const KernelConfig imfp = KernelConfig::For(KernelKind::kLiquidW4A8);
  const KernelConfig excp = KernelConfig::For(KernelKind::kLiquidW4A8ExCP);
  // ExCP adds a dedicated dequant WG: more warps per block.
  EXPECT_GT(FootprintFor(excp).warps, FootprintFor(imfp).warps - 4);
}

TEST(OccupancyTest, ZeroWarpBlockYieldsZero) {
  const OccupancyResult occ = ComputeOccupancy(SmResources{}, BlockFootprint{});
  EXPECT_EQ(occ.blocks_per_sm, 0);
}

}  // namespace
}  // namespace liquid::simgpu
