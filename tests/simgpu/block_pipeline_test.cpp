// Invariant tests for the warp-group pipeline simulations (paper Section 5.1,
// Figure 6): steady-state rates, overlap properties, and the ordering
// ImFP <= ExCP and ImFP <= Serial that the design argues for.

#include "simgpu/block_pipeline.hpp"

#include <gtest/gtest.h>

namespace liquid::simgpu {
namespace {

BlockPipelineInput Base(PipelineKind kind, int k = 64) {
  BlockPipelineInput in;
  in.pipeline = kind;
  in.k_iters = k;
  in.t_load = 1.0;
  in.t_dequant = 0.4;
  in.t_mma = 1.2;
  in.compute_wgs = 2;
  in.fine_tasks = 4;
  in.stage_depth = 4;
  return in;
}

TEST(BlockPipelineTest, SymmetricSteadyStateIsMaxOfStages) {
  // Memory-bound: per-iteration time -> t_load.
  auto in = Base(PipelineKind::kSymmetric);
  in.t_mma = 0.5;
  const double k = in.k_iters;
  const double total = SimulateBlockPipeline(in).total;
  EXPECT_NEAR(total / k, in.t_load, 0.1);

  // Compute-bound: per-iteration time -> t_mma.
  in.t_mma = 2.0;
  const double total2 = SimulateBlockPipeline(in).total;
  EXPECT_NEAR(total2 / k, in.t_mma, 0.1);
}

TEST(BlockPipelineTest, SerialAddsDequantToCriticalPath) {
  // Compute-bound serial: steady iteration = t_dq + t_mma.
  auto in = Base(PipelineKind::kSerial);
  in.t_load = 0.1;
  const double total = SimulateBlockPipeline(in).total;
  EXPECT_NEAR(total / in.k_iters, in.t_dequant + in.t_mma, 0.1);
}

TEST(BlockPipelineTest, ImFpHidesDequantBehindMma) {
  // ImFP with t_dq < t_mma: dequant fully overlapped, steady rate = t_mma.
  auto in = Base(PipelineKind::kImFP);
  in.t_load = 0.1;
  const BlockPipelineResult r = SimulateBlockPipeline(in);
  EXPECT_NEAR(r.total / in.k_iters, in.t_mma, 0.15);
  // And the tensor core is nearly saturated.
  EXPECT_GT(r.mma_busy / r.total, 0.9);
}

TEST(BlockPipelineTest, ImFpBoundedByCudaWhenDequantDominates)
{
  // If alpha is huge (QServe-like) even ImFP becomes CUDA-bound.
  auto in = Base(PipelineKind::kImFP);
  in.t_load = 0.1;
  in.t_dequant = 5.0;
  const double total = SimulateBlockPipeline(in).total;
  EXPECT_NEAR(total / in.k_iters, in.t_dequant, 0.3);
}

TEST(BlockPipelineTest, ImFpNoSlowerThanExCpAndSerial) {
  for (const double t_dq : {0.1, 0.5, 1.0, 2.0}) {
    for (const double t_mma : {0.5, 1.0, 2.0}) {
      auto imfp = Base(PipelineKind::kImFP);
      auto excp = Base(PipelineKind::kExCP);
      auto serial = Base(PipelineKind::kSerial);
      for (auto* in : {&imfp, &excp, &serial}) {
        in->t_dequant = t_dq;
        in->t_mma = t_mma;
        in->t_sync = 0.05;
        in->t_smem_roundtrip = 0.2;
      }
      imfp.t_sync = imfp.t_smem_roundtrip = 0.0;    // ImFP pays neither
      serial.t_sync = serial.t_smem_roundtrip = 0.0;
      const double t_imfp = SimulateBlockPipeline(imfp).total;
      const double t_excp = SimulateBlockPipeline(excp).total;
      const double t_serial = SimulateBlockPipeline(serial).total;
      EXPECT_LE(t_imfp, t_excp * 1.001) << t_dq << " " << t_mma;
      EXPECT_LE(t_imfp, t_serial * 1.001) << t_dq << " " << t_mma;
    }
  }
}

TEST(BlockPipelineTest, ExCpRoundTripAndSyncHurtInMemoryBoundRegime) {
  // Paper Figure 13: at small batch (memory bound) ExCP *degrades*
  // performance versus the serial pipeline.
  auto serial = Base(PipelineKind::kSerial);
  serial.t_load = 2.0;  // memory bound
  serial.t_mma = 0.3;
  auto excp = serial;
  excp.pipeline = PipelineKind::kExCP;
  excp.t_smem_roundtrip = 0.8;
  excp.t_sync = 0.4;
  const double t_serial = SimulateBlockPipeline(serial).total;
  const double t_excp = SimulateBlockPipeline(excp).total;
  EXPECT_GE(t_excp, t_serial);
}

TEST(BlockPipelineTest, ExCpBeatsSerialWhenComputeBound) {
  // At large batch the explicit pipeline's overlap outweighs its overheads.
  auto serial = Base(PipelineKind::kSerial);
  serial.t_load = 0.2;
  serial.t_dequant = 1.0;
  serial.t_mma = 1.5;
  auto excp = serial;
  excp.pipeline = PipelineKind::kExCP;
  excp.t_smem_roundtrip = 0.2;
  excp.t_sync = 0.05;
  const double t_serial = SimulateBlockPipeline(serial).total;
  const double t_excp = SimulateBlockPipeline(excp).total;
  EXPECT_LT(t_excp, t_serial);
}

TEST(BlockPipelineTest, StageDepthLimitsLookahead) {
  // With depth 1 (no double buffering) the symmetric pipeline serializes
  // load and MMA; with depth 4 they overlap.
  auto shallow = Base(PipelineKind::kSymmetric);
  shallow.stage_depth = 1;
  auto deep = Base(PipelineKind::kSymmetric);
  deep.stage_depth = 4;
  const double t_shallow = SimulateBlockPipeline(shallow).total;
  const double t_deep = SimulateBlockPipeline(deep).total;
  EXPECT_GT(t_shallow, t_deep);
  EXPECT_NEAR(t_shallow / shallow.k_iters,
              shallow.t_load + shallow.t_mma, 0.1);
}

TEST(BlockPipelineTest, MoreComputeWgsHelpUntilPipesSaturate) {
  auto one = Base(PipelineKind::kImFP);
  one.t_load = 0.1;
  one.compute_wgs = 1;
  auto two = one;
  two.compute_wgs = 2;
  const double t1 = SimulateBlockPipeline(one).total;
  const double t2 = SimulateBlockPipeline(two).total;
  // With 1 WG, dequant and MMA of the *same* WG still pipeline via async
  // WGMMA, but two WGs can never be slower.
  EXPECT_LE(t2, t1 * 1.001);
}

TEST(BlockPipelineTest, BusyTimesAreConsistent) {
  auto in = Base(PipelineKind::kImFP);
  const BlockPipelineResult r = SimulateBlockPipeline(in);
  EXPECT_NEAR(r.load_busy, in.t_load * in.k_iters, 1e-9);
  EXPECT_NEAR(r.dequant_busy, in.t_dequant * in.k_iters, 1e-9);
  EXPECT_NEAR(r.mma_busy, in.t_mma * in.k_iters, 1e-9);
  EXPECT_GE(r.total, r.mma_busy);
}

TEST(BlockPipelineTest, TraceRecordsWhenRequested) {
  auto in = Base(PipelineKind::kExCP, 8);
  in.record_trace = true;
  const BlockPipelineResult r = SimulateBlockPipeline(in);
  EXPECT_EQ(r.load_log.size(), 8u);
  EXPECT_EQ(r.dequant_log.size(), 8u);
  EXPECT_EQ(r.mma_log.size(), 8u);
  // Causality: MMA i starts after dequant i ends (+ sync).
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_GE(r.mma_log[i].start, r.dequant_log[i].end);
    EXPECT_GE(r.dequant_log[i].start, r.load_log[i].end);
  }
}

TEST(BlockPipelineTest, SingleIterationHasNoOverlapBenefit) {
  auto in = Base(PipelineKind::kImFP, 1);
  const double total = SimulateBlockPipeline(in).total;
  // One iteration: load then compute; the fine tasks pipeline internally, so
  // the lower bound is t_load + (t_dq + t_mma)/tasks-pipelined; it can never
  // beat t_load + max stage.
  EXPECT_GE(total, in.t_load + in.t_mma / in.fine_tasks);
  EXPECT_LE(total, in.t_load + in.t_dequant + in.t_mma + 1e-9);
}

}  // namespace
}  // namespace liquid::simgpu
