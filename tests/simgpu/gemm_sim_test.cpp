// Grid-level GEMM simulator tests: reproduce the paper's qualitative kernel
// comparisons (Figures 5, 12, 13) as machine-checked invariants.

#include "simgpu/gemm_sim.hpp"

#include <gtest/gtest.h>

namespace liquid::simgpu {
namespace {

const HardwareSpec kH800 = HardwareSpec::H800();

GemmShape Ffn7B(std::size_t batch) {
  return {batch, 11008, 4096};  // LLaMA2-7B gate/up projection row count
}

double Latency(KernelKind kind, const GemmShape& shape, int grouped = 1) {
  GemmSimOptions opt;
  opt.grouped = grouped;
  return SimulateGemm(kH800, KernelConfig::For(kind), shape, opt).seconds;
}

TEST(GemmSimTest, LatencyIncreasesWithBatch) {
  for (const auto kind : {KernelKind::kLiquidW4A8, KernelKind::kTrtW8A8,
                          KernelKind::kQServeW4A8}) {
    double prev = 0;
    for (const std::size_t m : {4u, 16u, 64u, 128u, 256u}) {
      const double t = Latency(kind, Ffn7B(m));
      EXPECT_GE(t, prev * 0.999) << ToString(kind) << " m=" << m;
      prev = t;
    }
  }
}

TEST(GemmSimTest, W4A8MemoryBoundAdvantageAtSmallBatch) {
  // Figure 5 / roofline: at batch 4, W4 kernels load half of W8's bytes and
  // a quarter of FP16's.  The TRT kernels' GEMV fast path runs at slightly
  // higher bandwidth efficiency than the tiled pipeline, so the measured
  // ratios land a little under the pure byte ratios.
  const double w4 = Latency(KernelKind::kLiquidW4A8, Ffn7B(4));
  const double w8 = Latency(KernelKind::kTrtW8A8, Ffn7B(4));
  const double fp16 = Latency(KernelKind::kTrtFp16, Ffn7B(4));
  EXPECT_GT(w8, 1.4 * w4);
  EXPECT_GT(fp16, 2.8 * w4);
}

TEST(GemmSimTest, GemvPathWinsSmallBatchMoeLosesLarge) {
  // Figure 12 (Mixtral): the GEMV-specialized TRT-W4A16 kernel beats
  // LiquidGEMM on tiny per-expert batches; past the GEMV bound LiquidGEMM
  // takes over.
  const GemmShape expert_small{4, 2 * 14336, 4096};
  const GemmShape expert_large{64, 2 * 14336, 4096};
  GemmSimOptions opt;
  opt.grouped = 8;
  const auto w4a16 = KernelConfig::For(KernelKind::kTrtW4A16);
  const auto liquid = KernelConfig::For(KernelKind::kLiquidW4A8);
  EXPECT_LT(SimulateGemm(kH800, w4a16, expert_small, opt).seconds,
            SimulateGemm(kH800, liquid, expert_small, opt).seconds);
  EXPECT_GT(SimulateGemm(kH800, w4a16, expert_large, opt).seconds,
            SimulateGemm(kH800, liquid, expert_large, opt).seconds);
}

TEST(GemmSimTest, QserveLosesAtLargeBatchLiquidDoesNot) {
  // The paper's headline kernel result: at batch 256 QServe is ~2-3x slower
  // than LiquidGEMM (Figure 12: 2.75-2.90x), and even slower than W8A8,
  // while LiquidGEMM stays at least as fast as W8A8.
  const double liquid = Latency(KernelKind::kLiquidW4A8, Ffn7B(256));
  const double qserve = Latency(KernelKind::kQServeW4A8, Ffn7B(256));
  const double w8 = Latency(KernelKind::kTrtW8A8, Ffn7B(256));
  EXPECT_GT(qserve / liquid, 2.0);
  EXPECT_LT(qserve / liquid, 4.0);
  EXPECT_GT(qserve, w8);
  EXPECT_LE(liquid, w8 * 1.05);
}

TEST(GemmSimTest, QserveCompetitiveAtSmallBatch) {
  // Figure 12: QServe stays within ~2x of LiquidGEMM in the memory-bound
  // regime (its gap explodes only when compute-bound), and Figure 5: it
  // roughly matches W8A8 there on the small model.
  const double liquid = Latency(KernelKind::kLiquidW4A8, Ffn7B(4));
  const double qserve = Latency(KernelKind::kQServeW4A8, Ffn7B(4));
  EXPECT_LT(qserve / liquid, 2.0);
  const double w8 = Latency(KernelKind::kTrtW8A8, Ffn7B(4));
  EXPECT_GT(qserve / w8, 0.55);
  EXPECT_LT(qserve / w8, 1.4);
}

TEST(GemmSimTest, AblationOrderingMatchesFigure13) {
  // At large batch: Baseline >= LQQ-only >= ExCP >= ImFP.
  const GemmShape shape = Ffn7B(256);
  const double baseline = Latency(KernelKind::kBaselineW4A8, shape);
  const double lqq = Latency(KernelKind::kLiquidW4A8Serial, shape);
  const double excp = Latency(KernelKind::kLiquidW4A8ExCP, shape);
  const double imfp = Latency(KernelKind::kLiquidW4A8, shape);
  EXPECT_GE(baseline, lqq);
  EXPECT_GE(lqq, excp * 0.999);
  EXPECT_GE(excp, imfp * 0.999);
  // LQQ alone buys a measurable speedup in the compute-bound regime
  // (paper: up to 1.29x).
  EXPECT_GT(baseline / lqq, 1.1);
}

TEST(GemmSimTest, ExCpDegradesAtSmallBatch) {
  // Figure 13: enabling ExCP at small batch *hurts* relative to LQQ-only.
  const GemmShape shape = Ffn7B(8);
  const double lqq = Latency(KernelKind::kLiquidW4A8Serial, shape);
  const double excp = Latency(KernelKind::kLiquidW4A8ExCP, shape);
  EXPECT_GE(excp, lqq);
}

TEST(GemmSimTest, ImFpImprovesAcrossAllBatchSizes) {
  // Figure 13: ImFP never loses to the LQQ-only serial kernel.
  for (const std::size_t m : {4u, 8u, 32u, 64u, 128u, 256u}) {
    const double lqq = Latency(KernelKind::kLiquidW4A8Serial, Ffn7B(m));
    const double imfp = Latency(KernelKind::kLiquidW4A8, Ffn7B(m));
    EXPECT_LE(imfp, lqq * 1.001) << "m=" << m;
  }
}

TEST(GemmSimTest, PersistentKernelWinsOnGroupedGemm) {
  // MoE-style grouped GEMM: the persistent ImFP kernel pipelines across the
  // 8 expert GEMMs; a relaunch-per-expert kernel (QServe-style) pays 8
  // launches + drains, and even a grouped-launch non-persistent kernel can
  // never beat the persistent stream.
  const GemmShape expert{64, 14336 * 2, 4096};
  KernelConfig persistent = KernelConfig::For(KernelKind::kLiquidW4A8);
  KernelConfig grouped = persistent;
  grouped.persistent = false;
  KernelConfig relaunch = grouped;
  relaunch.grouped_launch = false;
  GemmSimOptions opt;
  opt.grouped = 8;
  const double t_p = SimulateGemm(kH800, persistent, expert, opt).seconds;
  const double t_g = SimulateGemm(kH800, grouped, expert, opt).seconds;
  const double t_r = SimulateGemm(kH800, relaunch, expert, opt).seconds;
  EXPECT_LT(t_p, t_r);
  // Aggregate bandwidth makes the grouped-launch drain cost small in the
  // memory-bound regime, but persistence is never slower than ~par.
  EXPECT_LE(t_p, t_g * 1.05);
}

TEST(GemmSimTest, TransposedTrickHelpsMidBatch) {
  // Section 5.4: with tile_m = 256 (WGMMA n tracks batch), a batch-192 GEMM
  // needs one m-tile; a fixed tile_m = 128 kernel needs two.
  KernelConfig wide = KernelConfig::For(KernelKind::kLiquidW4A8);
  KernelConfig narrow = wide;
  narrow.tile_m = 128;
  const GemmShape shape{192, 4096, 4096};
  const double t_wide = SimulateGemm(kH800, wide, shape).seconds;
  const double t_narrow = SimulateGemm(kH800, narrow, shape).seconds;
  EXPECT_LT(t_wide, t_narrow);
}

TEST(GemmSimTest, StageDecompositionIsPopulated) {
  const GemmSimResult r = SimulateGemm(
      kH800, KernelConfig::For(KernelKind::kLiquidW4A8), Ffn7B(128));
  EXPECT_GT(r.t_load, 0);
  EXPECT_GT(r.t_dequant, 0);
  EXPECT_GT(r.t_mma, 0);
  EXPECT_GT(r.k_iters, 0);
  EXPECT_GT(r.active_blocks, 0);
  EXPECT_GE(r.mma_utilization, 0.0);
  EXPECT_LE(r.mma_utilization, 1.0);
}

TEST(GemmSimTest, SymmetricKernelHasNoDequant) {
  const GemmSimResult r = SimulateGemm(
      kH800, KernelConfig::For(KernelKind::kTrtW8A8), Ffn7B(64));
  EXPECT_EQ(r.t_dequant, 0.0);
}

TEST(GemmSimTest, MoreBandwidthReducesMemoryBoundLatency) {
  HardwareSpec fast = kH800;
  fast.mem_bw_bytes *= 2;
  const auto cfg = KernelConfig::For(KernelKind::kLiquidW4A8);
  const double slow_t = SimulateGemm(kH800, cfg, Ffn7B(4)).seconds;
  const double fast_t = SimulateGemm(fast, cfg, Ffn7B(4)).seconds;
  EXPECT_LT(fast_t, slow_t);
  EXPECT_GT(fast_t, slow_t / 2.5);
}

TEST(GemmSimTest, A100SlowerThanH800) {
  const auto cfg = KernelConfig::For(KernelKind::kLiquidW4A8);
  const double a100 = SimulateGemm(HardwareSpec::A100(), cfg, Ffn7B(128)).seconds;
  const double h800 = SimulateGemm(kH800, cfg, Ffn7B(128)).seconds;
  EXPECT_GT(a100, h800);
}

TEST(GemmSimTest, SequenceSumsCalls) {
  const auto cfg = KernelConfig::For(KernelKind::kLiquidW4A8);
  const std::vector<GemmCall> calls{{Ffn7B(64), 1}, {GemmShape{64, 4096, 11008}, 1}};
  const double seq = SimulateGemmSequence(kH800, cfg, calls);
  const double a = SimulateGemm(kH800, cfg, calls[0].shape).seconds;
  const double b = SimulateGemm(kH800, cfg, calls[1].shape).seconds;
  EXPECT_NEAR(seq, a + b, 1e-12);
}

}  // namespace
}  // namespace liquid::simgpu
