// Property sweeps over the pipeline simulations: invariants that must hold
// for every pipeline kind across the whole (t_load, t_dequant, t_mma) regime
// grid — conservation, monotonicity, and lower bounds.

#include <gtest/gtest.h>

#include "simgpu/block_pipeline.hpp"

namespace liquid::simgpu {
namespace {

struct Regime {
  double t_load;
  double t_dq;
  double t_mma;
};

struct PipelineCase {
  PipelineKind kind;
  Regime regime;
};

class PipelinePropertyTest : public ::testing::TestWithParam<PipelineCase> {};

BlockPipelineInput MakeInput(const PipelineCase& c, int k = 32) {
  BlockPipelineInput in;
  in.pipeline = c.kind;
  in.k_iters = k;
  in.t_load = c.regime.t_load;
  in.t_dequant = c.regime.t_dq;
  in.t_mma = c.regime.t_mma;
  in.t_smem_roundtrip = c.kind == PipelineKind::kExCP ? 0.1 : 0.0;
  in.t_sync = c.kind == PipelineKind::kExCP ? 0.05 : 0.0;
  return in;
}

TEST_P(PipelinePropertyTest, TotalAtLeastEveryStageSum) {
  // No pipeline can finish before any single hardware unit's total work.
  const auto in = MakeInput(GetParam());
  const BlockPipelineResult r = SimulateBlockPipeline(in);
  const double k = in.k_iters;
  EXPECT_GE(r.total * 1.0000001, k * in.t_load);
  EXPECT_GE(r.total * 1.0000001, k * in.t_mma);
  if (in.pipeline != PipelineKind::kSymmetric) {
    EXPECT_GE(r.total * 1.0000001, k * in.t_dequant);
  }
}

TEST_P(PipelinePropertyTest, BusyTimeConservation) {
  const auto in = MakeInput(GetParam());
  const BlockPipelineResult r = SimulateBlockPipeline(in);
  const double k = in.k_iters;
  EXPECT_NEAR(r.load_busy, k * in.t_load, 1e-12);
  EXPECT_NEAR(r.mma_busy, k * in.t_mma, 1e-12);
}

TEST_P(PipelinePropertyTest, MonotoneInIterations) {
  auto in = MakeInput(GetParam(), 8);
  const double t8 = SimulateBlockPipeline(in).total;
  in.k_iters = 16;
  const double t16 = SimulateBlockPipeline(in).total;
  in.k_iters = 64;
  const double t64 = SimulateBlockPipeline(in).total;
  EXPECT_GT(t16, t8);
  EXPECT_GT(t64, t16);
  // Steady state: the per-iteration increment beyond the fill is constant.
  const double per_iter_a = (t16 - t8) / 8.0;
  const double per_iter_b = (t64 - t16) / 48.0;
  EXPECT_NEAR(per_iter_a, per_iter_b, per_iter_a * 0.25 + 1e-12);
}

TEST_P(PipelinePropertyTest, MonotoneInStageDurations) {
  const auto base_case = GetParam();
  const double base = SimulateBlockPipeline(MakeInput(base_case)).total;
  for (const int which : {0, 1, 2}) {
    PipelineCase heavier = base_case;
    if (which == 0) heavier.regime.t_load *= 1.5;
    if (which == 1) heavier.regime.t_dq *= 1.5;
    if (which == 2) heavier.regime.t_mma *= 1.5;
    const double t = SimulateBlockPipeline(MakeInput(heavier)).total;
    EXPECT_GE(t * 1.0000001, base) << "stage " << which;
  }
}

TEST_P(PipelinePropertyTest, DeterministicReplay) {
  const auto in = MakeInput(GetParam());
  const double a = SimulateBlockPipeline(in).total;
  const double b = SimulateBlockPipeline(in).total;
  EXPECT_EQ(a, b);
}

const Regime kRegimes[] = {
    {2.0, 0.2, 0.5},   // memory-bound
    {0.2, 2.0, 0.5},   // dequant-bound
    {0.2, 0.2, 2.0},   // tensor-core-bound
    {1.0, 1.0, 1.0},   // balanced
    {1.0, 0.0, 1.0},   // no dequant work
};

std::vector<PipelineCase> AllCases() {
  std::vector<PipelineCase> cases;
  for (const auto kind :
       {PipelineKind::kSymmetric, PipelineKind::kSerial, PipelineKind::kExCP,
        PipelineKind::kImFP}) {
    for (const auto& regime : kRegimes) {
      cases.push_back({kind, regime});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, PipelinePropertyTest,
                         ::testing::ValuesIn(AllCases()));

}  // namespace
}  // namespace liquid::simgpu
