#include "simgpu/timeline.hpp"

#include <gtest/gtest.h>

namespace liquid::simgpu {
namespace {

TEST(TimelineTest, ClaimSerializes) {
  Track t("t");
  const Interval a = t.Claim(0.0, 2.0);
  EXPECT_EQ(a.start, 0.0);
  EXPECT_EQ(a.end, 2.0);
  // A request ready at time 1 must wait until 2.
  const Interval b = t.Claim(1.0, 3.0);
  EXPECT_EQ(b.start, 2.0);
  EXPECT_EQ(b.end, 5.0);
  EXPECT_EQ(t.busy_time(), 5.0);
}

TEST(TimelineTest, IdleGapsDoNotCountAsBusy) {
  Track t("t");
  (void)t.Claim(0.0, 1.0);
  const Interval b = t.Claim(10.0, 1.0);
  EXPECT_EQ(b.start, 10.0);
  EXPECT_EQ(t.busy_time(), 2.0);
  EXPECT_EQ(t.free_at(), 11.0);
}

TEST(TimelineTest, RecordsIntervalsWhenAsked) {
  Track t("t", /*record=*/true);
  (void)t.Claim(0.0, 1.0);
  (void)t.Claim(5.0, 2.0);
  ASSERT_EQ(t.log().size(), 2u);
  EXPECT_EQ(t.log()[1].start, 5.0);
  EXPECT_EQ(t.log()[1].duration(), 2.0);
}

TEST(TimelineTest, ZeroDurationClaimsNotLogged) {
  Track t("t", /*record=*/true);
  (void)t.Claim(0.0, 0.0);
  EXPECT_TRUE(t.log().empty());
}

TEST(TimelineTest, ClaimAllWaitsForAllTracks) {
  Track a("a");
  Track b("b");
  (void)a.Claim(0.0, 3.0);  // a busy until 3
  (void)b.Claim(0.0, 1.0);  // b busy until 1
  const Interval iv = ClaimAll(2.0, 1.0, a, b);
  EXPECT_EQ(iv.start, 3.0);  // limited by a
  EXPECT_EQ(iv.end, 4.0);
  EXPECT_EQ(a.free_at(), 4.0);
  EXPECT_EQ(b.free_at(), 4.0);
}

TEST(TimelineTest, UtilizationFraction) {
  Track t("t");
  (void)t.Claim(0.0, 2.0);
  EXPECT_DOUBLE_EQ(Utilization(t, 4.0), 0.5);
  EXPECT_DOUBLE_EQ(Utilization(t, 0.0), 0.0);
}

TEST(TimelineTest, ResetClearsState) {
  Track t("t", true);
  (void)t.Claim(0.0, 2.0);
  t.Reset();
  EXPECT_EQ(t.free_at(), 0.0);
  EXPECT_EQ(t.busy_time(), 0.0);
  EXPECT_TRUE(t.log().empty());
}

}  // namespace
}  // namespace liquid::simgpu
