#include "simgpu/trace_export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace liquid::simgpu {
namespace {

BlockPipelineInput SmallPipeline() {
  BlockPipelineInput in;
  in.pipeline = PipelineKind::kExCP;
  in.k_iters = 4;
  in.t_load = 1e-6;
  in.t_dequant = 0.5e-6;
  in.t_mma = 1.2e-6;
  in.t_sync = 0.1e-6;
  in.record_trace = true;
  return in;
}

TEST(TraceExportTest, ContainsAllEvents) {
  const BlockPipelineResult result = SimulateBlockPipeline(SmallPipeline());
  const std::string json = ToChromeTrace(result);
  // 3 thread-name records + 1 process-name + 3 tracks x 4 iterations.
  std::size_t events = 0;
  for (std::size_t pos = json.find("\"ph\""); pos != std::string::npos;
       pos = json.find("\"ph\"", pos + 1)) {
    ++events;
  }
  EXPECT_EQ(events, 4u + 12u);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("TMA load"), std::string::npos);
  EXPECT_NE(json.find("Tensor cores (MMA)"), std::string::npos);
}

TEST(TraceExportTest, DurationsInMicroseconds) {
  const BlockPipelineResult result = SimulateBlockPipeline(SmallPipeline());
  const std::string json = ToChromeTrace(result);
  // The 1 us load must appear as "dur": 1 (within float formatting).
  EXPECT_NE(json.find("\"dur\": 1"), std::string::npos);
}

TEST(TraceExportTest, WritesFile) {
  const std::string path = "/tmp/liquid_trace_test.json";
  ASSERT_TRUE(WriteChromeTrace(SmallPipeline(), path, "excp"));
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream buf;
  buf << file.rdbuf();
  EXPECT_NE(buf.str().find("excp"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceExportTest, BadPathReturnsFalse) {
  EXPECT_FALSE(WriteChromeTrace(SmallPipeline(), "/nonexistent-dir/x.json"));
}

}  // namespace
}  // namespace liquid::simgpu
