// Tests of the analytical cost model against the numbers the paper derives
// from it (Section 3.3): transition batch sizes 150/300 on H100 and 156 on
// A100, the alpha budget ~5.07, and roofline geometry.

#include "model/cost_model.hpp"

#include <gtest/gtest.h>

#include "core/dequant/dequant.hpp"

namespace liquid::model {
namespace {

const HardwareSpec kH100 = HardwareSpec::H100();
const HardwareSpec kA100 = HardwareSpec::A100();

TEST(CostModelTest, TransitionBatchSizesMatchPaper) {
  // "batch size thresholds of 150 for W4A8 and 300 for W8A8 on H100"
  EXPECT_NEAR(TransitionBatchSize(kH100, PrecisionConfig::W4A8(kH100, 0)),
              150.0, 1.0);
  EXPECT_NEAR(TransitionBatchSize(kH100, PrecisionConfig::W8A8(kH100)),
              300.0, 1.0);
  // "156 for W8A8 on A100"
  EXPECT_NEAR(TransitionBatchSize(kA100, PrecisionConfig::W8A8(kA100)),
              156.0, 1.0);
}

TEST(CostModelTest, AlphaBudgetMatchesPaper) {
  // "the instruction cost per dequantized element must be alpha <= 5.07 on
  // H100" (memory-bound overlap).
  EXPECT_NEAR(AlphaBudgetMemoryBound(kH100, PrecisionConfig::W4A8(kH100, 0)),
              5.07, 0.01);
  // "threshold becomes alpha <= 5.05 when M = 150" (compute-bound).
  EXPECT_NEAR(
      AlphaBudgetComputeBound(kH100, PrecisionConfig::W4A8(kH100, 0), 150.0),
      5.08, 0.05);
}

TEST(CostModelTest, LqqMeetsAlphaBudgetQserveDoesNot) {
  const double budget =
      AlphaBudgetMemoryBound(kH100, PrecisionConfig::W4A8(kH100, 0));
  EXPECT_LT(liquid::MeasureAlphaLqq(), budget);
  // QServe's dequant arithmetic plus its layout's load/address overhead
  // (~1 instr/elem, Section 5.2) breaks the budget.
  EXPECT_GT(liquid::MeasureAlphaQserve() + 1.0, budget * 0.95);
}

TEST(CostModelTest, MemoryBoundRegimeFavorsW4OverW8) {
  const GemmShape shape{16, 8192, 8192};
  const auto w4 = PredictGemm(kH100, PrecisionConfig::W4A8(kH100, 0.875), shape);
  const auto w8 = PredictGemm(kH100, PrecisionConfig::W8A8(kH100), shape);
  EXPECT_TRUE(w4.memory_bound);
  EXPECT_TRUE(w8.memory_bound);
  EXPECT_NEAR(w8.total / w4.total, 2.0, 0.2);
}

TEST(CostModelTest, ComputeBoundRegimeEqualizesW4AndW8WithoutDequant) {
  const GemmShape shape{512, 8192, 8192};
  CostModelOptions opt;
  opt.tile_m = 512;  // let min(Mt, M) = M to probe the asymptotic regime
  const auto w4 =
      PredictGemm(kH100, PrecisionConfig::W4A8(kH100, 0), shape, opt);
  const auto w8 = PredictGemm(kH100, PrecisionConfig::W8A8(kH100), shape, opt);
  EXPECT_FALSE(w4.memory_bound);
  EXPECT_NEAR(w4.total / w8.total, 1.0, 0.01);
}

TEST(CostModelTest, HighAlphaMakesW4A8SlowerThanW8A8) {
  // Section 3.3's root cause: with QServe-like alpha, W4A8 loses its
  // memory-bound advantage and falls behind in the compute-bound regime.
  const GemmShape shape{256, 8192, 8192};
  const double alpha_qserve = liquid::MeasureAlphaQserve() + 1.0;
  const auto w4 =
      PredictGemm(kH100, PrecisionConfig::W4A8(kH100, alpha_qserve), shape);
  const auto w8 = PredictGemm(kH100, PrecisionConfig::W8A8(kH100), shape);
  EXPECT_GT(w4.total, w8.total);
}

TEST(CostModelTest, DequantTermScalesWithAlpha) {
  const GemmShape shape{64, 4096, 4096};
  const auto lo = PredictGemm(kH100, PrecisionConfig::W4A8(kH100, 1.0), shape);
  const auto hi = PredictGemm(kH100, PrecisionConfig::W4A8(kH100, 4.0), shape);
  EXPECT_NEAR(hi.t_dequant / lo.t_dequant, 4.0, 1e-9);
  EXPECT_EQ(hi.t_load, lo.t_load);
  EXPECT_EQ(hi.t_mma, lo.t_mma);
}

TEST(CostModelTest, RooflineKneeOrdering) {
  // Lower-precision weights move the knee right in element intensity
  // terms only via compute; W4A8's knee (ops/element) sits at half of
  // W8A8's because its element bandwidth doubles.
  const double knee_w4 =
      RooflineKneeIntensity(kH100, PrecisionConfig::W4A8(kH100, 0));
  const double knee_w8 =
      RooflineKneeIntensity(kH100, PrecisionConfig::W8A8(kH100));
  const double knee_fp16 =
      RooflineKneeIntensity(kH100, PrecisionConfig::Fp16(kH100));
  EXPECT_NEAR(knee_w8 / knee_w4, 2.0, 1e-6);
  // FP16 halves compute *and* element bandwidth: same knee as W8A8 (up to
  // the published 989.4 vs 1978.9 TOPS rounding).
  EXPECT_NEAR(knee_fp16 / knee_w8, 1.0, 1e-3);
}

TEST(CostModelTest, RooflineCurveShape) {
  const auto cfg = PrecisionConfig::W4A8(kH100, 0);
  const auto curve = RooflineCurve(kH100, cfg, 1000.0, 100);
  ASSERT_EQ(curve.size(), 100u);
  // Monotone non-decreasing, capped at peak.
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].attainable_ops, curve[i - 1].attainable_ops);
    EXPECT_LE(curve[i].attainable_ops, cfg.mma_ops * 1.0000001);
  }
  EXPECT_DOUBLE_EQ(curve.back().attainable_ops, cfg.mma_ops);
}

TEST(CostModelTest, W4A4UnsupportedOnHopper) {
  EXPECT_EQ(PrecisionConfig::W4A4(kH100).mma_ops, 0.0);
  EXPECT_GT(PrecisionConfig::W4A4(kA100).mma_ops, 0.0);
}

TEST(CostModelTest, TileBoundOnArithmeticIntensity) {
  // "the arithmetic intensity is ultimately bounded by the tile size Mt":
  // growing M beyond Mt multiplies tiles instead of shrinking per-tile time.
  const auto cfg = PrecisionConfig::W4A8(kH100, 0.875);
  CostModelOptions opt;
  opt.tile_m = 256;
  const auto at256 = PredictGemm(kH100, cfg, {256, 8192, 8192}, opt);
  const auto at512 = PredictGemm(kH100, cfg, {512, 8192, 8192}, opt);
  EXPECT_NEAR(at512.total / at256.total, 2.0, 0.01);
}

}  // namespace
}  // namespace liquid::model
