#include "model/projection.hpp"

#include <gtest/gtest.h>

namespace liquid::model {
namespace {

TEST(ProjectionTest, PublishedGenerationsPresent) {
  const auto gens = ProjectGenerations(0, 2.0, 1.3);
  ASSERT_EQ(gens.size(), 3u);
  EXPECT_EQ(gens[1].name, "A100");
  EXPECT_EQ(gens[2].name, "H100");
}

TEST(ProjectionTest, TransitionMatchesPaperAnchors) {
  const auto trend = TransitionTrend(ProjectGenerations(0, 2.0, 1.3));
  // A100 W8A8: 156; H100 W8A8: 300 (paper Section 3.3).
  EXPECT_NEAR(trend[1].w8a8_batch, 156.0, 1.0);
  EXPECT_NEAR(trend[2].w8a8_batch, 300.0, 1.0);
  // W4A8 halves the threshold on every generation.
  for (const auto& p : trend) {
    EXPECT_NEAR(p.w4a8_batch * 2.0, p.w8a8_batch, 1e-9);
  }
}

TEST(ProjectionTest, ComputeOutpacingBandwidthRaisesThreshold) {
  // Compute growing 2x/generation vs bandwidth 1.3x: the transition batch
  // must grow ~1.54x per future generation.
  const auto trend = TransitionTrend(ProjectGenerations(3, 2.0, 1.3));
  for (std::size_t i = 3; i < trend.size(); ++i) {
    EXPECT_NEAR(trend[i].w8a8_batch / trend[i - 1].w8a8_batch, 2.0 / 1.3,
                1e-9);
  }
}

TEST(ProjectionTest, BalancedGrowthKeepsThresholdFlat) {
  const auto trend = TransitionTrend(ProjectGenerations(2, 1.5, 1.5));
  EXPECT_NEAR(trend[3].w8a8_batch, trend[2].w8a8_batch, 1e-6);
  EXPECT_NEAR(trend[4].w8a8_batch, trend[2].w8a8_batch, 1e-6);
}

TEST(ProjectionTest, KvBytesToSaturate) {
  // Saturating H100 W8A8 (batch 300) on LLaMA2-7B at 1.5k context pins
  // ~118 GB of INT8 KV; W4A8's batch 150 halves that — the paper's
  // operational argument for W4A8.
  const double kv_per_token = 262144.0;  // LLaMA2-7B INT8
  const double w8 = KvBytesToSaturate(300, 1536, kv_per_token);
  const double w4 = KvBytesToSaturate(150, 1536, kv_per_token);
  EXPECT_NEAR(w8, 1.2e11, 2e9);
  EXPECT_NEAR(w8 / w4, 2.0, 1e-9);
}

}  // namespace
}  // namespace liquid::model
