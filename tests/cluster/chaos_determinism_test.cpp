// Same seed + same kill schedule ⇒ byte-identical FleetStats, plus a
// golden-value pin of the canonical chaos trace so silent behavior drift
// (a changed routing tie-break, a reordered retry, a tweaked TTFT predictor)
// fails CI instead of slipping through.

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "serving/workload.hpp"

namespace liquid::cluster {
namespace {

ReplicaSpec CanonicalReplica() {
  ReplicaSpec spec;
  spec.hw = simgpu::HardwareSpec::H800();
  spec.preset = serving::SystemPreset::LiquidServe();
  spec.model = serving::LlmConfig::Llama2_7B();
  spec.kv_pool_blocks = 512;
  spec.block_tokens = 16;
  spec.max_batch = 16;
  return spec;
}

/// The canonical chaos episode: 3 replicas, 2× overload-ish trace, one kill
/// mid-run and one late, tail-latency autoscaling, and a tight TTFT SLO.
FleetStats RunCanonicalChaos() {
  AutoscaleConfig autoscale;
  autoscale.enabled = true;
  autoscale.signal = AutoscaleSignal::kTailTtft;
  autoscale.ttft_p99_high = 1.0;
  autoscale.ttft_p99_low = 0.001;  // effectively never scale down: the kills
                                   // are this episode's shrink events
  autoscale.window_seconds = 5.0;
  autoscale.min_window_samples = 8;
  autoscale.max_replicas = 5;
  autoscale.cooldown_seconds = 0.5;
  SloConfig slo;
  slo.ttft_budget = 2.0;
  slo.reject_above = 1.0;

  ClusterSimulator sim(RoutePolicy::kLeastOutstanding, autoscale, slo);
  for (int i = 0; i < 3; ++i) sim.AddReplica(CanonicalReplica());

  // ~2x the 3-replica fleet's capacity for this mix, sustained long enough
  // (~3.6s of arrivals vs ~0.5s to first completions) that the TTFT window
  // fills while routing decisions are still being made: queues build, the
  // SLO sheds load, the autoscaler reacts, and the kills catch plenty of
  // in-flight work.
  serving::TraceConfig config;
  config.arrival_rate_per_s = 110.0;
  config.count = 400;
  config.prompt_min = 256;
  config.prompt_max = 2048;
  config.output_min = 64;
  config.output_max = 256;
  config.sessions = 12;
  const std::vector<serving::TimedRequest> trace =
      serving::GenerateTrace(config, /*seed=*/4242);

  const double mid = trace[trace.size() / 2].arrival_seconds;
  sim.ScheduleKill({mid, 1});
  sim.ScheduleKill({trace.back().arrival_seconds + 0.25, 0});
  return sim.Run(trace);
}

void ExpectIdentical(const FleetStats& a, const FleetStats& b) {
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.rerouted, b.rerouted);
  EXPECT_EQ(a.scale_ups, b.scale_ups);
  EXPECT_EQ(a.scale_downs, b.scale_downs);
  EXPECT_EQ(a.replicas_final, b.replicas_final);
  EXPECT_EQ(a.killed_replicas, b.killed_replicas);
  EXPECT_EQ(a.lost_requests, b.lost_requests);
  EXPECT_EQ(a.retried_requests, b.retried_requests);
  EXPECT_EQ(a.rejected_requests, b.rejected_requests);
  EXPECT_EQ(a.max_retry_attempts, b.max_retry_attempts);
  EXPECT_DOUBLE_EQ(a.wasted_tokens, b.wasted_tokens);
  EXPECT_DOUBLE_EQ(a.span_seconds, b.span_seconds);
  EXPECT_DOUBLE_EQ(a.generated_tokens, b.generated_tokens);
  EXPECT_DOUBLE_EQ(a.throughput_tokens_per_s, b.throughput_tokens_per_s);
  EXPECT_DOUBLE_EQ(a.ttft.p50, b.ttft.p50);
  EXPECT_DOUBLE_EQ(a.ttft.p95, b.ttft.p95);
  EXPECT_DOUBLE_EQ(a.ttft.p99, b.ttft.p99);
  EXPECT_DOUBLE_EQ(a.tpot.p50, b.tpot.p50);
  EXPECT_DOUBLE_EQ(a.tpot.p99, b.tpot.p99);
  EXPECT_DOUBLE_EQ(a.e2e.p50, b.e2e.p50);
  EXPECT_DOUBLE_EQ(a.e2e.p99, b.e2e.p99);
  ASSERT_EQ(a.replicas.size(), b.replicas.size());
  for (std::size_t i = 0; i < a.replicas.size(); ++i) {
    EXPECT_EQ(a.replicas[i].submitted, b.replicas[i].submitted);
    EXPECT_EQ(a.replicas[i].active, b.replicas[i].active);
    EXPECT_EQ(a.replicas[i].killed, b.replicas[i].killed);
    EXPECT_EQ(a.replicas[i].stats.completed, b.replicas[i].stats.completed);
    EXPECT_EQ(a.replicas[i].stats.preemptions,
              b.replicas[i].stats.preemptions);
    EXPECT_DOUBLE_EQ(a.replicas[i].stats.busy_seconds,
                     b.replicas[i].stats.busy_seconds);
  }
}

TEST(ChaosDeterminismTest, SameSeedSameKillsByteIdenticalStats) {
  const FleetStats a = RunCanonicalChaos();
  const FleetStats b = RunCanonicalChaos();
  ExpectIdentical(a, b);
}

TEST(ChaosDeterminismTest, CanonicalTraceGoldenValues) {
  const FleetStats s = RunCanonicalChaos();
  // Conservation sanity before pinning anything.
  ASSERT_EQ(s.completed + s.dropped + s.rejected_requests + s.lost_requests,
            s.submitted + s.retried_requests);
  std::printf(
      "canonical chaos: completed=%zu dropped=%zu rejected=%zu lost=%zu "
      "retried=%zu killed=%zu scale_ups=%zu wasted=%.17g ttft_p99=%.17g\n",
      s.completed, s.dropped, s.rejected_requests, s.lost_requests,
      s.retried_requests, s.killed_replicas, s.scale_ups, s.wasted_tokens,
      s.ttft.p99);

  // Golden values for the canonical episode.  These pin observable chaos
  // behavior: if an intentional change shifts them, re-run this test and
  // update the literals alongside the change that caused it.
  EXPECT_EQ(s.submitted, 400u);
  EXPECT_EQ(s.killed_replicas, 2u);
  EXPECT_EQ(s.completed, 367u);
  EXPECT_EQ(s.rejected_requests, 33u);
  EXPECT_EQ(s.lost_requests, 78u);
  EXPECT_GT(s.scale_ups, 0u);
  EXPECT_DOUBLE_EQ(s.wasted_tokens, 1007.0);
  EXPECT_DOUBLE_EQ(s.ttft.p99, 3.7262258421050749);
}

}  // namespace
}  // namespace liquid::cluster
