// Randomized chaos property test: for many seeds, build a random fleet, a
// random trace, a random kill schedule, random autoscale and SLO configs —
// then assert the fleet-wide conservation law
//
//   completed + dropped + rejected + lost == submitted + retried
//
// holds no matter what dies or gets shed.  Every lost in-flight request
// spawns exactly one retry, so both sides stay balanced even when a retry is
// lost again on a second kill.

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "serving/workload.hpp"
#include "util/rng.hpp"

namespace liquid::cluster {
namespace {

ReplicaSpec ChaosReplica(std::size_t pool_blocks) {
  ReplicaSpec spec;
  spec.hw = simgpu::HardwareSpec::H800();
  spec.preset = serving::SystemPreset::LiquidServe();
  spec.model = serving::LlmConfig::Llama2_7B();
  spec.kv_pool_blocks = pool_blocks;
  spec.block_tokens = 16;
  // A small batch keeps replicas saturated so kills catch in-flight work.
  spec.max_batch = 16;
  return spec;
}

struct ChaosScenario {
  RoutePolicy policy = RoutePolicy::kLeastOutstanding;
  AutoscaleConfig autoscale;
  SloConfig slo;
  std::size_t replicas = 2;
  std::size_t pool_blocks = 128;
  std::vector<serving::TimedRequest> trace;
  std::vector<KillEvent> kills;
};

ChaosScenario RandomScenario(std::uint64_t seed) {
  Rng rng(seed);
  ChaosScenario s;
  const RoutePolicy policies[] = {
      RoutePolicy::kRoundRobin, RoutePolicy::kLeastOutstanding,
      RoutePolicy::kLeastKvLoad, RoutePolicy::kSessionAffinity};
  s.policy = policies[rng.Below(4)];
  s.replicas = 2 + static_cast<std::size_t>(rng.Below(3));  // 2..4
  s.pool_blocks = 64 + static_cast<std::size_t>(rng.Below(3)) * 64;

  // Half the scenarios autoscale, split between the two signals.
  if (rng.NextDouble() < 0.5) {
    s.autoscale.enabled = true;
    s.autoscale.signal = rng.NextDouble() < 0.5 ? AutoscaleSignal::kQueueDepth
                                                : AutoscaleSignal::kTailTtft;
    s.autoscale.queue_high = rng.Uniform(3.0, 10.0);
    s.autoscale.queue_low = rng.Uniform(0.1, 1.0);
    s.autoscale.ttft_p99_high = rng.Uniform(0.5, 3.0);
    s.autoscale.ttft_p99_low = rng.Uniform(0.01, 0.2);
    s.autoscale.window_seconds = rng.Uniform(2.0, 15.0);
    s.autoscale.max_replicas = 6;
    s.autoscale.cooldown_seconds = rng.Uniform(0.0, 1.0);
  }
  // Half run SLO admission control with a budget tight enough to trip.
  if (rng.NextDouble() < 0.5) {
    s.slo.ttft_budget = rng.Uniform(0.1, 2.0);
    s.slo.reject_above = rng.Uniform(1.0, 2.0);
  }

  // Offered load swings from comfortable to ~4x overload (a 2..4-replica
  // fleet of these specs retires roughly 35..75 req/s of this mix).
  serving::TraceConfig trace;
  trace.arrival_rate_per_s = rng.Uniform(20.0, 150.0);
  trace.count = 60 + static_cast<std::size_t>(rng.Below(80));
  trace.prompt_min = 128;
  trace.prompt_max = 1024 + static_cast<std::size_t>(rng.Below(1536));
  trace.output_min = 32;
  trace.output_max = 192;
  trace.sessions = 8;
  s.trace = serving::GenerateTrace(trace, seed ^ 0xC0FFEEull);

  const double span =
      s.trace.empty() ? 1.0 : s.trace.back().arrival_seconds + 1.0;
  const std::size_t kills = 1 + rng.Below(3);  // 1..3 abrupt failures
  for (std::size_t k = 0; k < kills; ++k) {
    KillEvent kill;
    kill.time = rng.Uniform(0.05, span * 1.2);  // some land past last arrival
    kill.replica = rng.Below(s.replicas);
    s.kills.push_back(kill);
  }
  return s;
}

void ExpectConservation(const FleetStats& stats, std::uint64_t seed) {
  EXPECT_EQ(stats.completed + stats.dropped + stats.rejected_requests +
                stats.lost_requests,
            stats.submitted + stats.retried_requests)
      << "seed " << seed << ": completed=" << stats.completed
      << " dropped=" << stats.dropped
      << " rejected=" << stats.rejected_requests
      << " lost=" << stats.lost_requests << " submitted=" << stats.submitted
      << " retried=" << stats.retried_requests;
  // A kill's lost requests each spawn exactly one retry.
  EXPECT_EQ(stats.lost_requests, stats.retried_requests) << "seed " << seed;
}

TEST(ChaosPropertyTest, ConservationHoldsAcrossRandomChaos) {
  std::size_t scenarios_with_losses = 0;
  std::size_t scenarios_with_rejections = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const ChaosScenario s = RandomScenario(seed);
    ClusterSimulator sim(s.policy, s.autoscale, s.slo);
    for (std::size_t i = 0; i < s.replicas; ++i) {
      sim.AddReplica(ChaosReplica(s.pool_blocks));
    }
    for (const KillEvent& kill : s.kills) sim.ScheduleKill(kill);
    const FleetStats stats = sim.Run(s.trace);

    EXPECT_EQ(stats.submitted, s.trace.size()) << "seed " << seed;
    ExpectConservation(stats, seed);
    // A scheduled kill can no-op only when its target was already scaled
    // down or killed; at least one should land in almost every scenario.
    EXPECT_LE(stats.killed_replicas, s.kills.size()) << "seed " << seed;
    if (stats.lost_requests > 0) ++scenarios_with_losses;
    if (stats.rejected_requests > 0) ++scenarios_with_rejections;
    // Wasted work only arises from kills, and never exceeds what the fleet
    // generated in total (delivered + wasted).
    if (stats.killed_replicas == 0) {
      EXPECT_DOUBLE_EQ(stats.wasted_tokens, 0.0) << "seed " << seed;
    }
    EXPECT_GE(stats.wasted_tokens, 0.0) << "seed " << seed;
  }
  // The generator is tuned so chaos actually bites in a healthy fraction of
  // scenarios; if these drop to zero the test lost its teeth.
  EXPECT_GT(scenarios_with_losses, 10u);
  EXPECT_GT(scenarios_with_rejections, 5u);
  std::printf("chaos: %zu/60 scenarios lost in-flight work, %zu/60 shed load\n",
              scenarios_with_losses, scenarios_with_rejections);
}

TEST(ChaosPropertyTest, KillingWholeFleetDropsBacklogButConserves) {
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding);
  for (int i = 0; i < 2; ++i) sim.AddReplica(ChaosReplica(256));
  serving::TraceConfig config;
  config.arrival_rate_per_s = 100.0;
  config.count = 40;
  config.prompt_min = 256;
  config.prompt_max = 1024;
  config.output_min = 64;
  config.output_max = 192;
  const std::vector<serving::TimedRequest> trace =
      serving::GenerateTrace(config, 17);
  // Both replicas die just after the burst lands: everything in flight is
  // lost, retries find no alive replica and drop.
  const double t = trace.back().arrival_seconds + 0.01;
  sim.ScheduleKill({t, 0});
  sim.ScheduleKill({t + 0.001, 1});
  const FleetStats stats = sim.Run(trace);
  EXPECT_EQ(stats.killed_replicas, 2u);
  EXPECT_EQ(stats.replicas_final, 0u);
  ExpectConservation(stats, 17);
  EXPECT_GT(stats.dropped, 0u);  // retries with no fleet left
}

TEST(ChaosPropertyTest, RetriesSurviveKillAndComplete) {
  // One kill, plenty of surviving capacity: lost work is retried and the
  // whole trace still completes (nothing dropped or rejected).
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding);
  for (int i = 0; i < 3; ++i) sim.AddReplica(ChaosReplica(512));
  serving::TraceConfig config;
  config.arrival_rate_per_s = 80.0;
  config.count = 90;
  config.prompt_min = 256;
  config.prompt_max = 1024;
  config.output_min = 64;
  config.output_max = 192;
  const std::vector<serving::TimedRequest> trace =
      serving::GenerateTrace(config, 23);
  sim.ScheduleKill({trace[trace.size() / 2].arrival_seconds, 1});
  const FleetStats stats = sim.Run(trace);
  EXPECT_EQ(stats.killed_replicas, 1u);
  EXPECT_GT(stats.lost_requests, 0u);
  EXPECT_GT(stats.wasted_tokens, 0.0);
  ExpectConservation(stats, 23);
  EXPECT_EQ(stats.completed, stats.submitted);  // every request finishes
  EXPECT_TRUE(stats.replicas[1].killed);
  EXPECT_FALSE(stats.replicas[1].active);
}

}  // namespace
}  // namespace liquid::cluster
