// Randomized disaggregated chaos: for 60 seeds, build a random role-split
// fleet (prefill/decode pools, sometimes a unified straggler), a random
// long-prompt-heavy trace, random interconnect (including glacial links that
// force unified fallback), random retry budgets/backoff and kill schedules —
// then assert the extended conservation law
//
//   completed + dropped + rejected + lost == submitted + retried
//   lost == retried + retries_exhausted
//   in_migration == 0 at the end of the run
//
// holds no matter what dies, sheds, backs off, or is mid-migration when the
// lights go out.

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "serving/workload.hpp"
#include "util/rng.hpp"

namespace liquid::cluster {
namespace {

ReplicaSpec ChaosReplica(ReplicaRole role, std::size_t pool_blocks) {
  ReplicaSpec spec;
  spec.hw = simgpu::HardwareSpec::H800();
  spec.preset = serving::SystemPreset::LiquidServe();
  spec.model = serving::LlmConfig::Llama2_7B();
  spec.kv_pool_blocks = pool_blocks;
  spec.block_tokens = 16;
  spec.max_batch = 16;
  spec.role = role;
  spec.dollars_per_hour = role == ReplicaRole::kPrefill ? 3.0 : 2.0;
  return spec;
}

struct Scenario {
  std::vector<ReplicaRole> roles;
  std::size_t pool_blocks = 256;
  SloConfig slo;
  RetryPolicy retry;
  DisaggConfig disagg;
  std::vector<serving::TimedRequest> trace;
  std::vector<KillEvent> kills;
};

Scenario RandomScenario(std::uint64_t seed) {
  Rng rng(seed);
  Scenario s;
  const std::size_t prefills = 1 + rng.Below(2);  // 1..2
  const std::size_t decodes = 1 + rng.Below(3);   // 1..3
  for (std::size_t i = 0; i < prefills; ++i) {
    s.roles.push_back(ReplicaRole::kPrefill);
  }
  for (std::size_t i = 0; i < decodes; ++i) {
    s.roles.push_back(ReplicaRole::kDecode);
  }
  if (rng.NextDouble() < 0.3) s.roles.push_back(ReplicaRole::kUnified);
  s.pool_blocks = 128 + static_cast<std::size_t>(rng.Below(3)) * 128;

  // A third of the links are glacial (forcing unified fallback), the rest
  // NVLink-to-Ethernet class; budgets and caps vary.
  const double roll = rng.NextDouble();
  s.disagg.interconnect.bandwidth_gb_per_s =
      roll < 0.33 ? rng.Uniform(0.001, 0.05) : rng.Uniform(25.0, 900.0);
  s.disagg.interconnect.prefill_overlap = rng.Uniform(0.0, 0.9);
  s.disagg.interconnect.max_inflight_per_link = 1 + rng.Below(8);
  s.disagg.max_migration_seconds = rng.Uniform(0.05, 1.5);

  if (rng.NextDouble() < 0.5) {
    s.slo.ttft_budget = rng.Uniform(0.5, 3.0);
    s.slo.reject_above = rng.Uniform(1.0, 2.0);
  }
  if (rng.NextDouble() < 0.5) {
    s.retry.max_attempts = 1;  // one strike: a second loss exhausts
  }
  if (rng.NextDouble() < 0.5) {
    s.retry.base_backoff_seconds = rng.Uniform(0.05, 0.5);
  }

  serving::TraceConfig trace;
  trace.arrival_rate_per_s = rng.Uniform(15.0, 90.0);
  trace.count = 50 + static_cast<std::size_t>(rng.Below(60));
  trace.prompt_min = 256;
  trace.prompt_max = 1024 + static_cast<std::size_t>(rng.Below(1536));
  trace.output_min = 32;
  trace.output_max = 160;
  trace.sessions = 8;
  s.trace = serving::GenerateTrace(trace, seed ^ 0xD15A66ull);

  const double span =
      s.trace.empty() ? 1.0 : s.trace.back().arrival_seconds + 1.0;
  const std::size_t kills = 2 + rng.Below(3);  // 2..4 abrupt failures
  for (std::size_t k = 0; k < kills; ++k) {
    KillEvent kill;
    kill.time = rng.Uniform(0.05, span * 1.2);
    kill.replica = rng.Below(s.roles.size());
    s.kills.push_back(kill);
  }
  return s;
}

TEST(DisaggChaosTest, ConservationHoldsAcrossRandomDisaggChaos) {
  std::size_t scenarios_with_migrations = 0;
  std::size_t scenarios_with_fallbacks = 0;
  std::size_t scenarios_with_losses = 0;
  std::size_t total_target_deaths = 0;
  std::size_t total_exhausted = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const Scenario s = RandomScenario(seed);
    ClusterSimulator sim(RoutePolicy::kLeastOutstanding, {}, s.slo, s.retry,
                         s.disagg);
    for (const ReplicaRole role : s.roles) {
      sim.AddReplica(ChaosReplica(role, s.pool_blocks));
    }
    for (const KillEvent& kill : s.kills) sim.ScheduleKill(kill);
    const FleetStats stats = sim.Run(s.trace);

    EXPECT_EQ(stats.submitted, s.trace.size()) << "seed " << seed;
    EXPECT_EQ(stats.completed + stats.dropped + stats.rejected_requests +
                  stats.lost_requests,
              stats.submitted + stats.retried_requests)
        << "seed " << seed << ": completed=" << stats.completed
        << " dropped=" << stats.dropped
        << " rejected=" << stats.rejected_requests
        << " lost=" << stats.lost_requests
        << " submitted=" << stats.submitted
        << " retried=" << stats.retried_requests
        << " exhausted=" << stats.retries_exhausted
        << " migrated=" << stats.disagg.migrated_requests;
    // Every loss is either retried or gave up on-budget; nothing is left
    // mid-migration or waiting out a backoff after Run returns.
    EXPECT_EQ(stats.lost_requests,
              stats.retried_requests + stats.retries_exhausted)
        << "seed " << seed;
    EXPECT_EQ(stats.disagg.in_migration, 0u) << "seed " << seed;
    // Handoffs partition into migrations, local fallbacks, and those lost
    // with their prefill replica... but never vanish silently: everything
    // submitted is accounted terminal by the conservation check above.
    if (stats.killed_replicas == 0) {
      EXPECT_DOUBLE_EQ(stats.wasted_tokens, 0.0) << "seed " << seed;
    }
    EXPECT_GE(stats.wasted_tokens, 0.0) << "seed " << seed;
    // Cost accounting: priced replicas make a priced fleet.
    EXPECT_GT(stats.cost_dollars, 0.0) << "seed " << seed;
    EXPECT_GT(stats.prefill_pool_dollars, 0.0) << "seed " << seed;

    if (stats.disagg.migrated_requests > 0) ++scenarios_with_migrations;
    if (stats.disagg.local_decode_fallbacks > 0) ++scenarios_with_fallbacks;
    if (stats.lost_requests > 0) ++scenarios_with_losses;
    total_target_deaths += stats.disagg.target_deaths;
    total_exhausted += stats.retries_exhausted;
  }
  // The generator is tuned so each regime actually occurs; if these drop to
  // zero the test lost its teeth.
  EXPECT_GT(scenarios_with_migrations, 20u);
  EXPECT_GT(scenarios_with_fallbacks, 10u);
  EXPECT_GT(scenarios_with_losses, 10u);
  EXPECT_GT(total_target_deaths, 0u);
  EXPECT_GT(total_exhausted, 0u);
  std::printf(
      "disagg chaos: %zu/60 migrated, %zu/60 fell back, %zu/60 lost work, "
      "%zu target deaths, %zu retries exhausted\n",
      scenarios_with_migrations, scenarios_with_fallbacks,
      scenarios_with_losses, total_target_deaths, total_exhausted);
}

TEST(DisaggChaosTest, DisaggDeterminismSameSeedSameStats) {
  const auto run = [] {
    const Scenario s = RandomScenario(17);
    ClusterSimulator sim(RoutePolicy::kLeastOutstanding, {}, s.slo, s.retry,
                         s.disagg);
    for (const ReplicaRole role : s.roles) {
      sim.AddReplica(ChaosReplica(role, s.pool_blocks));
    }
    for (const KillEvent& kill : s.kills) sim.ScheduleKill(kill);
    return sim.Run(s.trace);
  };
  const FleetStats a = run();
  const FleetStats b = run();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.lost_requests, b.lost_requests);
  EXPECT_EQ(a.retried_requests, b.retried_requests);
  EXPECT_EQ(a.retries_exhausted, b.retries_exhausted);
  EXPECT_EQ(a.disagg.migrated_requests, b.disagg.migrated_requests);
  EXPECT_EQ(a.disagg.local_decode_fallbacks,
            b.disagg.local_decode_fallbacks);
  EXPECT_DOUBLE_EQ(a.disagg.migrated_kv_bytes, b.disagg.migrated_kv_bytes);
  EXPECT_DOUBLE_EQ(a.wasted_tokens, b.wasted_tokens);
  EXPECT_DOUBLE_EQ(a.ttft.p99, b.ttft.p99);
  EXPECT_DOUBLE_EQ(a.tpot.p99, b.tpot.p99);
  EXPECT_DOUBLE_EQ(a.cost_dollars, b.cost_dollars);
}

}  // namespace
}  // namespace liquid::cluster
