#include "cluster/cluster_sim.hpp"

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "serving/workload.hpp"

namespace liquid::cluster {
namespace {

using serving::TenantConfig;
using serving::TimedRequest;
using serving::TraceConfig;

ReplicaSpec SmallReplica(std::size_t pool_blocks = 256) {
  ReplicaSpec spec;
  spec.hw = simgpu::HardwareSpec::H800();
  spec.preset = serving::SystemPreset::LiquidServe();
  spec.model = serving::LlmConfig::Llama2_7B();
  spec.kv_pool_blocks = pool_blocks;
  spec.block_tokens = 16;
  spec.max_batch = 32;
  return spec;
}

std::vector<TimedRequest> SmallTrace(std::size_t count, std::uint64_t seed,
                                     double rate = 40.0) {
  TraceConfig config;
  config.arrival_rate_per_s = rate;
  config.count = count;
  config.prompt_min = 32;
  config.prompt_max = 256;
  config.output_min = 8;
  config.output_max = 48;
  return serving::GenerateTrace(config, seed);
}

TEST(ClusterSimTest, RunsTraceToCompletion) {
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding);
  for (int i = 0; i < 3; ++i) sim.AddReplica(SmallReplica());
  const FleetStats stats = sim.Run(SmallTrace(60, /*seed=*/1));
  EXPECT_EQ(stats.submitted, 60u);
  EXPECT_EQ(stats.completed + stats.dropped, stats.submitted);
  EXPECT_GT(stats.completed, 0u);
  EXPECT_GT(stats.throughput_tokens_per_s, 0);
  EXPECT_GT(stats.ttft.p50, 0);
  EXPECT_GE(stats.ttft.p99, stats.ttft.p50);
  EXPECT_GE(stats.e2e.p99, stats.e2e.p95);
  EXPECT_EQ(stats.replicas.size(), 3u);
}

TEST(ClusterSimTest, DeterministicAcrossRuns) {
  FleetStats a, b;
  for (FleetStats* out : {&a, &b}) {
    ClusterSimulator sim(RoutePolicy::kLeastKvLoad);
    for (int i = 0; i < 4; ++i) sim.AddReplica(SmallReplica());
    *out = sim.Run(SmallTrace(80, /*seed=*/7));
  }
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_DOUBLE_EQ(a.span_seconds, b.span_seconds);
  EXPECT_DOUBLE_EQ(a.generated_tokens, b.generated_tokens);
  EXPECT_DOUBLE_EQ(a.ttft.p50, b.ttft.p50);
  EXPECT_DOUBLE_EQ(a.ttft.p99, b.ttft.p99);
  EXPECT_DOUBLE_EQ(a.tpot.p99, b.tpot.p99);
  EXPECT_DOUBLE_EQ(a.e2e.p99, b.e2e.p99);
  ASSERT_EQ(a.replicas.size(), b.replicas.size());
  for (std::size_t i = 0; i < a.replicas.size(); ++i) {
    EXPECT_EQ(a.replicas[i].submitted, b.replicas[i].submitted);
    EXPECT_EQ(a.replicas[i].stats.completed, b.replicas[i].stats.completed);
  }
}

TEST(ClusterSimTest, ConservationUnderPreemptionPressure) {
  // Tiny KV pools so long prompts force preemptions and some drops.
  ClusterSimulator sim(RoutePolicy::kRoundRobin);
  for (int i = 0; i < 2; ++i) sim.AddReplica(SmallReplica(/*pool_blocks=*/48));
  TraceConfig config;
  config.arrival_rate_per_s = 50.0;
  config.count = 80;
  config.prompt_min = 64;
  config.prompt_max = 1024;  // some prompts exceed a 48-block (768-token) pool
  config.output_min = 8;
  config.output_max = 64;
  const FleetStats stats = sim.Run(serving::GenerateTrace(config, 3));
  EXPECT_EQ(stats.submitted, 80u);
  EXPECT_EQ(stats.completed + stats.dropped, stats.submitted);
  EXPECT_GT(stats.dropped, 0u);  // scenario is sized to overflow the pool
}

TEST(ClusterSimTest, ConservationAcrossManualScaleDown) {
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding);
  for (int i = 0; i < 3; ++i) sim.AddReplica(SmallReplica());
  const std::vector<TimedRequest> trace = SmallTrace(60, /*seed=*/11);
  // Feed the first half, yank a replica mid-flight, then finish the episode.
  const std::size_t half = trace.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    sim.AdvanceTo(trace[i].arrival_seconds);
    sim.SubmitAndRoute(trace[i]);
  }
  ASSERT_TRUE(sim.RemoveReplica(1));
  EXPECT_EQ(sim.ActiveReplicas(), 2u);
  const FleetStats stats = sim.Run(std::vector<TimedRequest>(
      trace.begin() + static_cast<std::ptrdiff_t>(half), trace.end()));
  EXPECT_EQ(stats.submitted, 60u);
  EXPECT_EQ(stats.completed + stats.dropped, stats.submitted);
  EXPECT_EQ(stats.replicas_final, 2u);
  EXPECT_FALSE(stats.replicas[1].active);
}

TEST(ClusterSimTest, RemoveLastReplicaRefused) {
  ClusterSimulator sim(RoutePolicy::kRoundRobin);
  const std::size_t id = sim.AddReplica(SmallReplica());
  EXPECT_FALSE(sim.RemoveReplica(id));
  EXPECT_EQ(sim.ActiveReplicas(), 1u);
}

TEST(ClusterSimTest, AutoscaleAddsReplicasUnderBurst) {
  AutoscaleConfig autoscale;
  autoscale.enabled = true;
  autoscale.queue_high = 4.0;
  autoscale.queue_low = -1.0;  // never scale down in this test
  autoscale.max_replicas = 6;
  autoscale.cooldown_seconds = 0.01;
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding, autoscale);
  sim.AddReplica(SmallReplica());
  // A hard burst: everything arrives almost at once.
  const FleetStats stats = sim.Run(SmallTrace(120, /*seed=*/5, /*rate=*/500.0));
  EXPECT_GT(stats.scale_ups, 0u);
  EXPECT_GT(stats.replicas_final, 1u);
  EXPECT_EQ(stats.completed + stats.dropped, stats.submitted);
}

TEST(ClusterSimTest, AutoscaleScalesDownWhenIdle) {
  AutoscaleConfig autoscale;
  autoscale.enabled = true;
  autoscale.queue_high = 1e9;  // never scale up
  autoscale.queue_low = 0.5;
  autoscale.min_replicas = 1;
  autoscale.cooldown_seconds = 0.0;
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding, autoscale);
  for (int i = 0; i < 4; ++i) sim.AddReplica(SmallReplica());
  // A slow trickle keeps mean queue depth near zero.
  const FleetStats stats = sim.Run(SmallTrace(30, /*seed=*/9, /*rate=*/0.5));
  EXPECT_GT(stats.scale_downs, 0u);
  EXPECT_LT(stats.replicas_final, 4u);
  EXPECT_GE(stats.replicas_final, 1u);
  EXPECT_EQ(stats.completed + stats.dropped, stats.submitted);
}

TEST(ClusterSimTest, HeterogeneousReplicasBothServe) {
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding);
  ReplicaSpec h800 = SmallReplica();
  ReplicaSpec a100 = SmallReplica();
  a100.hw = simgpu::HardwareSpec::A100();
  a100.preset = serving::SystemPreset::QServe();
  sim.AddReplica(h800);
  sim.AddReplica(a100);
  const FleetStats stats = sim.Run(SmallTrace(60, /*seed=*/13, /*rate=*/20.0));
  EXPECT_EQ(stats.completed + stats.dropped, stats.submitted);
  ASSERT_EQ(stats.replicas.size(), 2u);
  EXPECT_GT(stats.replicas[0].stats.completed, 0u);
  EXPECT_GT(stats.replicas[1].stats.completed, 0u);
  EXPECT_NE(stats.replicas[0].label, stats.replicas[1].label);
}

TEST(ClusterSimTest, MultiTenantTraceIsSortedAndSessionStable) {
  std::vector<TenantConfig> tenants(2);
  tenants[0].tenant = 1;
  tenants[0].trace.count = 40;
  tenants[0].sessions = 4;
  tenants[1].tenant = 2;
  tenants[1].trace.count = 40;
  tenants[1].trace.arrival_rate_per_s = 10.0;
  tenants[1].sessions = 4;
  const std::vector<TimedRequest> trace =
      serving::GenerateMultiTenantTrace(tenants, 21);
  ASSERT_EQ(trace.size(), 80u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i - 1].arrival_seconds, trace[i].arrival_seconds);
  }
  for (const TimedRequest& r : trace) {
    EXPECT_TRUE(r.tenant == 1 || r.tenant == 2);
    // Session keys embed the tenant, so affinity never mixes tenants.
    EXPECT_EQ(r.session >> 32, r.tenant);
  }
  // Determinism: same seed reproduces the identical trace.
  const std::vector<TimedRequest> again =
      serving::GenerateMultiTenantTrace(tenants, 21);
  ASSERT_EQ(again.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].id, again[i].id);
    EXPECT_DOUBLE_EQ(trace[i].arrival_seconds, again[i].arrival_seconds);
    EXPECT_EQ(trace[i].session, again[i].session);
  }
}

TEST(ClusterSimTest, AffinityKeepsSessionsTogetherEndToEnd) {
  std::vector<TenantConfig> tenants(1);
  tenants[0].tenant = 1;
  tenants[0].trace.count = 60;
  tenants[0].trace.arrival_rate_per_s = 30.0;
  tenants[0].trace.prompt_min = 32;
  tenants[0].trace.prompt_max = 128;
  tenants[0].trace.output_min = 8;
  tenants[0].trace.output_max = 32;
  tenants[0].sessions = 6;
  const std::vector<TimedRequest> trace =
      serving::GenerateMultiTenantTrace(tenants, 31);

  ClusterSimulator sim(RoutePolicy::kSessionAffinity);
  for (int i = 0; i < 3; ++i) sim.AddReplica(SmallReplica());
  std::unordered_map<std::uint64_t, std::size_t> placement;
  for (const TimedRequest& r : trace) {
    sim.AdvanceTo(r.arrival_seconds);
    const auto dest = sim.SubmitAndRoute(r);
    ASSERT_TRUE(dest.has_value());
    const auto [it, inserted] = placement.emplace(r.session, *dest);
    if (!inserted) {
      EXPECT_EQ(it->second, *dest) << "session " << r.session;
    }
  }
}

// The simulated engine retires small requests in milliseconds, so chaos
// scenarios need real work per request to keep replicas busy: long prompts,
// long outputs, and a scheduler batch small enough that queues form.
ReplicaSpec HeavyReplica() {
  ReplicaSpec spec = SmallReplica(/*pool_blocks=*/512);
  spec.max_batch = 16;
  return spec;
}

std::vector<TimedRequest> HeavyTrace(std::size_t count, std::uint64_t seed,
                                     double rate) {
  TraceConfig config;
  config.arrival_rate_per_s = rate;
  config.count = count;
  config.prompt_min = 256;
  config.prompt_max = 2048;
  config.output_min = 64;
  config.output_max = 256;
  return serving::GenerateTrace(config, seed);
}

TEST(ClusterSimTest, KillReplicaLosesInFlightAndRetries) {
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding);
  for (int i = 0; i < 3; ++i) sim.AddReplica(HeavyReplica());
  const std::vector<TimedRequest> trace =
      HeavyTrace(120, /*seed=*/19, /*rate=*/100.0);
  sim.ScheduleKill({trace[trace.size() / 2].arrival_seconds, 0});
  const FleetStats stats = sim.Run(trace);
  EXPECT_EQ(stats.killed_replicas, 1u);
  EXPECT_GT(stats.lost_requests, 0u);
  EXPECT_EQ(stats.lost_requests, stats.retried_requests);
  EXPECT_GE(stats.max_retry_attempts, 1u);  // retries carry their attempt count
  EXPECT_GT(stats.wasted_tokens, 0.0);
  EXPECT_EQ(stats.completed + stats.dropped + stats.rejected_requests +
                stats.lost_requests,
            stats.submitted + stats.retried_requests);
  EXPECT_TRUE(stats.replicas[0].killed);
  EXPECT_EQ(stats.replicas_final, 2u);
}

TEST(ClusterSimTest, KillInvalidOrDeadReplicaRefused) {
  ClusterSimulator sim(RoutePolicy::kRoundRobin);
  const std::size_t id = sim.AddReplica(SmallReplica());
  sim.AddReplica(SmallReplica());
  EXPECT_FALSE(sim.KillReplica(99, 0.0));
  EXPECT_TRUE(sim.KillReplica(id, 0.0));
  EXPECT_FALSE(sim.KillReplica(id, 0.0));  // already dead
  EXPECT_EQ(sim.ActiveReplicas(), 1u);
}

TEST(ClusterSimTest, KillingLastReplicaAllowedUnlikeRemove) {
  // Failures don't ask permission: the last replica can die, after which
  // arrivals (and the kill's own retries) drop.
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding);
  const std::size_t id = sim.AddReplica(SmallReplica());
  EXPECT_FALSE(sim.RemoveReplica(id));
  EXPECT_TRUE(sim.KillReplica(id, 0.0));
  EXPECT_EQ(sim.ActiveReplicas(), 0u);
  TimedRequest req;
  req.id = 1;
  req.prompt_tokens = 64;
  req.max_new_tokens = 8;
  EXPECT_FALSE(sim.SubmitAndRoute(req).has_value());
}

TEST(ClusterSimTest, SloAdmissionControlShedsOverload) {
  // A single small replica against a hard burst: with a tight TTFT budget the
  // router sheds most of the backlog instead of queueing it.
  SloConfig slo;
  slo.ttft_budget = 0.5;
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding, AutoscaleConfig{}, slo);
  sim.AddReplica(HeavyReplica());
  const FleetStats stats =
      sim.Run(HeavyTrace(120, /*seed=*/29, /*rate=*/150.0));
  EXPECT_GT(stats.rejected_requests, 0u);
  EXPECT_EQ(stats.completed + stats.dropped + stats.rejected_requests,
            stats.submitted);
  // Everything the fleet did accept finished reasonably close to the budget
  // (the predictor is an optimistic lower bound, not an oracle).
  EXPECT_LT(stats.completed, stats.submitted);
}

TEST(ClusterSimTest, TailTtftAutoscaleAddsReplicasUnderBurst) {
  AutoscaleConfig autoscale;
  autoscale.enabled = true;
  autoscale.signal = AutoscaleSignal::kTailTtft;
  autoscale.ttft_p99_high = 0.2;
  autoscale.ttft_p99_low = -1.0;  // never scale down in this test
  autoscale.window_seconds = 30.0;
  autoscale.min_window_samples = 2;
  autoscale.max_replicas = 6;
  autoscale.cooldown_seconds = 0.01;
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding, autoscale);
  sim.AddReplica(HeavyReplica());
  // Sustained overload: TTFTs climb as the queue builds, completions keep
  // flowing into the window so the signal can observe the pain.
  const FleetStats stats = sim.Run(HeavyTrace(120, /*seed=*/5, /*rate=*/80.0));
  EXPECT_GT(stats.scale_ups, 0u);
  EXPECT_GT(stats.replicas_final, 1u);
  EXPECT_EQ(stats.completed + stats.dropped, stats.submitted);
}

}  // namespace
}  // namespace liquid::cluster
