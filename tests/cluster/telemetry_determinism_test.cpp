// Telemetry determinism: the canonical chaos + autoscale + disagg episode
// with a recorder and metrics attached must (1) behave byte-for-byte like the
// untraced run — attaching telemetry is observation, not perturbation — and
// (2) export byte-identical artifacts on every same-seed run, pinned by an
// FNV-1a golden hash so silent drift in the exporters or the event stream
// fails CI.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"
#include "serving/workload.hpp"
#include "util/json.hpp"

namespace liquid::cluster {
namespace {

[[nodiscard]] std::uint64_t Fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

ReplicaSpec CanonicalReplica(ReplicaRole role) {
  ReplicaSpec spec;
  spec.hw = simgpu::HardwareSpec::H800();
  spec.preset = serving::SystemPreset::LiquidServe();
  spec.model = serving::LlmConfig::Llama2_7B();
  spec.kv_pool_blocks = 4096;
  spec.block_tokens = 16;
  spec.max_batch = 16;
  spec.role = role;
  if (role == ReplicaRole::kPrefill) {
    spec.options.prefill_chunk_tokens = 2048;
  }
  spec.dollars_per_hour = role == ReplicaRole::kPrefill ? 2.8 : 2.2;
  return spec;
}

/// The canonical telemetry episode: a 2P:4D disaggregated fleet with decode
/// autoscaling, one mid-run kill, and a kilotoken mix — every trace hook
/// fires (arrivals, routes, spans, migrations, kill, retries, scale events).
FleetStats RunCanonicalEpisode(obs::TraceRecorder* recorder,
                               obs::MetricsRegistry* metrics) {
  AutoscaleConfig autoscale;
  autoscale.enabled = true;
  autoscale.cooldown_seconds = 2.0;
  autoscale.tick_seconds = 0.5;
  autoscale.cost_aware = true;
  AutoscalePool decode_pool;
  decode_pool.role = ReplicaRole::kDecode;
  decode_pool.spec = CanonicalReplica(ReplicaRole::kDecode);
  decode_pool.signal = AutoscaleSignal::kFreeKv;
  decode_pool.high = 0.85;
  decode_pool.low = 0.05;
  decode_pool.min_replicas = 1;
  decode_pool.max_replicas = 6;
  autoscale.pools = {decode_pool};

  DisaggConfig disagg;
  disagg.interconnect.bandwidth_gb_per_s = 400.0;
  disagg.max_migration_seconds = 0.25;

  ClusterSimulator sim(RoutePolicy::kLeastOutstanding, autoscale, {}, {},
                       disagg);
  for (int i = 0; i < 2; ++i) {
    sim.AddReplica(CanonicalReplica(ReplicaRole::kPrefill));
  }
  // Undersized decode pool: KV pressure crosses the kFreeKv high watermark
  // mid-burst, so the trace records scale-up events.
  for (int i = 0; i < 2; ++i) {
    sim.AddReplica(CanonicalReplica(ReplicaRole::kDecode));
  }

  serving::TraceConfig config;
  config.arrival_rate_per_s = 28.0;
  config.count = 160;
  config.prompt_min = 2048;
  config.prompt_max = 8192;
  config.output_min = 32;
  config.output_max = 128;
  config.sessions = 32;
  const std::vector<serving::TimedRequest> trace =
      serving::GenerateTrace(config, /*seed=*/515);

  // Kill a prefill replica: the prefill pool has no autoscale pool, so the
  // victim is guaranteed alive at kill time regardless of decode shrinks.
  sim.ScheduleKill({trace[trace.size() / 2].arrival_seconds, /*replica=*/1});
  sim.AttachTelemetry(recorder, metrics);
  return sim.Run(trace);
}

/// Zeroes the host-wall-clock SimThroughput fields, which legitimately vary
/// run to run.  The deterministic counters (events_processed,
/// engine_iterations, fleet_events, sim_seconds) stay in the comparison.
FleetStats WithoutWallClock(FleetStats stats) {
  stats.sim_throughput.wall_seconds = 0;
  stats.sim_throughput.events_per_sec = 0;
  stats.sim_throughput.sim_seconds_per_wall_second = 0;
  stats.sim_throughput.wall_seconds_per_sim_hour = 0;
  return stats;
}

TEST(TelemetryDeterminismTest, AttachingTelemetryDoesNotPerturbTheRun) {
  const FleetStats untraced = RunCanonicalEpisode(nullptr, nullptr);
  obs::TraceRecorder recorder;
  obs::MetricsRegistry metrics;
  const FleetStats traced = RunCanonicalEpisode(&recorder, &metrics);
  // Byte-identical summaries: telemetry observed the identical simulation.
  EXPECT_EQ(FleetStatsToJson(WithoutWallClock(untraced)),
            FleetStatsToJson(WithoutWallClock(traced)));
  EXPECT_FALSE(recorder.empty());
  EXPECT_GT(metrics.rows(), 0u);
}

TEST(TelemetryDeterminismTest, SameSeedByteIdenticalArtifacts) {
  obs::TraceRecorder rec_a, rec_b;
  obs::MetricsRegistry met_a, met_b;
  RunCanonicalEpisode(&rec_a, &met_a);
  RunCanonicalEpisode(&rec_b, &met_b);
  EXPECT_EQ(rec_a.ToChromeTraceJson(), rec_b.ToChromeTraceJson());
  EXPECT_EQ(rec_a.ToJsonl(), rec_b.ToJsonl());
  EXPECT_EQ(met_a.ToJsonl(), met_b.ToJsonl());
  EXPECT_EQ(met_a.ToCsv(), met_b.ToCsv());
}

TEST(TelemetryDeterminismTest, CanonicalEpisodeGoldenHashes) {
  obs::TraceRecorder recorder;
  obs::MetricsRegistry metrics;
  const FleetStats stats = RunCanonicalEpisode(&recorder, &metrics);

  const std::string chrome = recorder.ToChromeTraceJson();
  const std::string trace_jsonl = recorder.ToJsonl();
  const std::string metrics_jsonl = metrics.ToJsonl();
  ASSERT_TRUE(JsonSyntaxValid(chrome));

  // The episode exercised the full event surface before anything is pinned.
  EXPECT_GT(stats.disagg.migrated_requests, 0u);
  EXPECT_EQ(stats.killed_replicas, 1u);
  EXPECT_GT(stats.scale_ups, 0u);
  EXPECT_NE(chrome.find("\"name\":\"migration_land\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"kill\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"scale_up\""), std::string::npos);
  EXPECT_NE(chrome.find("\"cat\":\"request\""), std::string::npos);
  EXPECT_NE(chrome.find("\"cat\":\"kvflow\""), std::string::npos);

  std::printf("telemetry goldens: events=%zu rows=%zu chrome=%llu "
              "trace_jsonl=%llu metrics_jsonl=%llu\n",
              recorder.size(), metrics.rows(),
              static_cast<unsigned long long>(Fnv1a(chrome)),
              static_cast<unsigned long long>(Fnv1a(trace_jsonl)),
              static_cast<unsigned long long>(Fnv1a(metrics_jsonl)));

  // Golden byte hashes for the canonical episode.  These pin the recorded
  // event stream AND the exporters: if an intentional change shifts them,
  // re-run this test and update the literals alongside the change.
  EXPECT_EQ(Fnv1a(chrome), 17777947067110539556ull);
  EXPECT_EQ(Fnv1a(trace_jsonl), 1129426537860808181ull);
  EXPECT_EQ(Fnv1a(metrics_jsonl), 7926352182877922469ull);
}

}  // namespace
}  // namespace liquid::cluster
