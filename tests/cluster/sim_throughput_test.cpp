// SimThroughputMeter: ClusterSimulator::Run must fill FleetStats with the
// host-side cost of the run.  The work counters (events_processed,
// engine_iterations, fleet_events, sim_seconds) count simulated work and are
// deterministic under a fixed seed; the wall-clock rates merely have to be
// self-consistent.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "serving/workload.hpp"
#include "util/json.hpp"

namespace liquid::cluster {
namespace {

ReplicaSpec SmallReplica() {
  ReplicaSpec spec;
  spec.hw = simgpu::HardwareSpec::H800();
  spec.preset = serving::SystemPreset::LiquidServe();
  spec.model = serving::LlmConfig::Llama2_7B();
  spec.kv_pool_blocks = 1024;
  spec.block_tokens = 16;
  spec.max_batch = 16;
  return spec;
}

std::vector<serving::TimedRequest> SmallTrace() {
  serving::TraceConfig config;
  config.arrival_rate_per_s = 30.0;
  config.count = 48;
  config.prompt_min = 64;
  config.prompt_max = 512;
  config.output_min = 8;
  config.output_max = 32;
  config.sessions = 8;
  return serving::GenerateTrace(config, /*seed=*/11);
}

FleetStats RunSmallFleet() {
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding);
  sim.AddReplica(SmallReplica());
  sim.AddReplica(SmallReplica());
  return sim.Run(SmallTrace());
}

TEST(SimThroughputTest, RunFillsTheMeter) {
  const FleetStats stats = RunSmallFleet();
  const SimThroughput& t = stats.sim_throughput;

  EXPECT_GT(t.engine_iterations, 0u);
  EXPECT_GT(t.fleet_events, 0u);
  EXPECT_EQ(t.events_processed, t.engine_iterations + t.fleet_events);
  // Every submitted request is at least one routing decision.
  EXPECT_GE(t.fleet_events, stats.submitted);
  // engine_iterations is the sum of per-replica scheduler iterations.
  std::uint64_t iterations = 0;
  for (const ReplicaReport& r : stats.replicas) {
    iterations += r.stats.iterations;
  }
  EXPECT_EQ(t.engine_iterations, iterations);

  EXPECT_GT(t.sim_seconds, 0.0);
  EXPECT_GT(t.wall_seconds, 0.0);
  EXPECT_GT(t.events_per_sec, 0.0);
  EXPECT_GT(t.sim_seconds_per_wall_second, 0.0);
  EXPECT_GT(t.wall_seconds_per_sim_hour, 0.0);
  // The rates are the counters over the measured wall time.
  EXPECT_NEAR(t.events_per_sec,
              static_cast<double>(t.events_processed) / t.wall_seconds,
              1e-6 * t.events_per_sec);
  EXPECT_NEAR(t.wall_seconds_per_sim_hour,
              t.wall_seconds / (t.sim_seconds / 3600.0),
              1e-6 * t.wall_seconds_per_sim_hour);
}

TEST(SimThroughputTest, WorkCountersAreDeterministic) {
  const FleetStats a = RunSmallFleet();
  const FleetStats b = RunSmallFleet();
  EXPECT_EQ(a.sim_throughput.events_processed,
            b.sim_throughput.events_processed);
  EXPECT_EQ(a.sim_throughput.engine_iterations,
            b.sim_throughput.engine_iterations);
  EXPECT_EQ(a.sim_throughput.fleet_events, b.sim_throughput.fleet_events);
  EXPECT_DOUBLE_EQ(a.sim_throughput.sim_seconds, b.sim_throughput.sim_seconds);
}

TEST(SimThroughputTest, JsonCarriesTheMeter) {
  const FleetStats stats = RunSmallFleet();
  const std::string json = FleetStatsToJson(stats);
  ASSERT_TRUE(JsonSyntaxValid(json));
  EXPECT_NE(json.find("\"sim_throughput\":{"), std::string::npos);
  EXPECT_NE(json.find("\"events_processed\":"), std::string::npos);
  EXPECT_NE(json.find("\"events_per_sec\":"), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds_per_sim_hour\":"), std::string::npos);
}

TEST(SimThroughputTest, HandBuiltStatsStayZero) {
  // FinalizeFleetStats does not invent throughput numbers; only Run meters.
  FleetStats stats;
  FinalizeFleetStats({}, stats);
  EXPECT_EQ(stats.sim_throughput.events_processed, 0u);
  EXPECT_EQ(stats.sim_throughput.wall_seconds, 0.0);
}

}  // namespace
}  // namespace liquid::cluster
