#include "cluster/router.hpp"

#include <gtest/gtest.h>

namespace liquid::cluster {
namespace {

serving::TimedRequest Req(std::uint64_t id, std::uint64_t session = 0) {
  serving::TimedRequest r;
  r.id = id;
  r.session = session;
  return r;
}

TEST(RouterTest, ParseAndPrintPolicies) {
  for (const RoutePolicy p :
       {RoutePolicy::kRoundRobin, RoutePolicy::kLeastOutstanding,
        RoutePolicy::kLeastKvLoad, RoutePolicy::kSessionAffinity}) {
    const auto parsed = ParseRoutePolicy(ToString(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(ParseRoutePolicy("no_such_policy").has_value());
}

TEST(RouterTest, RoundRobinCyclesAndSkipsDeadReplicas) {
  Router router(RoutePolicy::kRoundRobin);
  std::vector<ReplicaView> views(3);
  views[1].alive = false;
  EXPECT_EQ(router.Route(Req(0), views), 0u);
  EXPECT_EQ(router.Route(Req(1), views), 2u);  // skips dead replica 1
  EXPECT_EQ(router.Route(Req(2), views), 0u);
}

TEST(RouterTest, NoAliveReplicaRoutesNowhere) {
  Router router(RoutePolicy::kRoundRobin);
  std::vector<ReplicaView> views(2);
  views[0].alive = views[1].alive = false;
  EXPECT_FALSE(router.Route(Req(0), views).has_value());
}

TEST(RouterTest, LeastOutstandingPicksShortestQueue) {
  Router router(RoutePolicy::kLeastOutstanding);
  std::vector<ReplicaView> views(3);
  views[0].outstanding = 5;
  views[1].outstanding = 2;
  views[2].outstanding = 9;
  EXPECT_EQ(router.Route(Req(0), views), 1u);
}

TEST(RouterTest, LeastKvLoadPicksMostFreeBlocks) {
  Router router(RoutePolicy::kLeastKvLoad);
  std::vector<ReplicaView> views(3);
  // Queue depth says replica 0; KV headroom says replica 2.
  views[0].outstanding = 1;
  views[0].free_kv_blocks = 10;
  views[1].outstanding = 4;
  views[1].free_kv_blocks = 40;
  views[2].outstanding = 4;
  views[2].free_kv_blocks = 300;
  EXPECT_EQ(router.Route(Req(0), views), 2u);
}

TEST(RouterTest, LeastKvLoadTieBreaksTowardLowestIndex) {
  Router router(RoutePolicy::kLeastKvLoad);
  std::vector<ReplicaView> views(3);
  for (ReplicaView& v : views) v.free_kv_blocks = 7;
  EXPECT_EQ(router.Route(Req(0), views), 0u);
}

TEST(RouterTest, AffinityPinsSessionToFirstPlacement) {
  Router router(RoutePolicy::kSessionAffinity);
  std::vector<ReplicaView> views(3);
  views[0].outstanding = 9;
  views[1].outstanding = 0;
  views[2].outstanding = 9;
  ASSERT_EQ(router.Route(Req(0, /*session=*/42), views), 1u);
  // Even when another replica becomes less loaded, the session stays pinned.
  views[1].outstanding = 50;
  EXPECT_EQ(router.Route(Req(1, 42), views), 1u);
  EXPECT_EQ(router.Route(Req(2, 42), views), 1u);
  // A different session lands on the now least-loaded replica.
  EXPECT_EQ(router.Route(Req(3, 43), views), 0u);
}

TEST(RouterTest, AffinityRepinsWhenReplicaForgotten) {
  Router router(RoutePolicy::kSessionAffinity);
  std::vector<ReplicaView> views(2);
  views[0].outstanding = 0;
  views[1].outstanding = 3;
  ASSERT_EQ(router.Route(Req(0, 7), views), 0u);
  router.ForgetReplica(0);
  views[0].alive = false;
  EXPECT_EQ(router.Route(Req(1, 7), views), 1u);
}

}  // namespace
}  // namespace liquid::cluster
