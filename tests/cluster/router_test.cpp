#include "cluster/router.hpp"

#include <gtest/gtest.h>

namespace liquid::cluster {
namespace {

serving::TimedRequest Req(std::uint64_t id, std::uint64_t session = 0) {
  serving::TimedRequest r;
  r.id = id;
  r.session = session;
  return r;
}

TEST(RouterTest, ParseAndPrintPolicies) {
  for (const RoutePolicy p :
       {RoutePolicy::kRoundRobin, RoutePolicy::kLeastOutstanding,
        RoutePolicy::kLeastKvLoad, RoutePolicy::kSessionAffinity}) {
    const auto parsed = ParseRoutePolicy(ToString(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(ParseRoutePolicy("no_such_policy").has_value());
}

TEST(RouterTest, RoundRobinCyclesAndSkipsDeadReplicas) {
  Router router(RoutePolicy::kRoundRobin);
  std::vector<ReplicaView> views(3);
  views[1].alive = false;
  EXPECT_EQ(router.Route(Req(0), views), 0u);
  EXPECT_EQ(router.Route(Req(1), views), 2u);  // skips dead replica 1
  EXPECT_EQ(router.Route(Req(2), views), 0u);
}

TEST(RouterTest, NoAliveReplicaRoutesNowhere) {
  Router router(RoutePolicy::kRoundRobin);
  std::vector<ReplicaView> views(2);
  views[0].alive = views[1].alive = false;
  EXPECT_FALSE(router.Route(Req(0), views).has_value());
}

TEST(RouterTest, LeastOutstandingPicksShortestQueue) {
  Router router(RoutePolicy::kLeastOutstanding);
  std::vector<ReplicaView> views(3);
  views[0].outstanding = 5;
  views[1].outstanding = 2;
  views[2].outstanding = 9;
  EXPECT_EQ(router.Route(Req(0), views), 1u);
}

TEST(RouterTest, LeastKvLoadPicksMostFreeBlocks) {
  Router router(RoutePolicy::kLeastKvLoad);
  std::vector<ReplicaView> views(3);
  // Queue depth says replica 0; KV headroom says replica 2.
  views[0].outstanding = 1;
  views[0].free_kv_blocks = 10;
  views[1].outstanding = 4;
  views[1].free_kv_blocks = 40;
  views[2].outstanding = 4;
  views[2].free_kv_blocks = 300;
  EXPECT_EQ(router.Route(Req(0), views), 2u);
}

TEST(RouterTest, LeastKvLoadTieBreaksTowardLowestIndex) {
  Router router(RoutePolicy::kLeastKvLoad);
  std::vector<ReplicaView> views(3);
  for (ReplicaView& v : views) v.free_kv_blocks = 7;
  EXPECT_EQ(router.Route(Req(0), views), 0u);
}

TEST(RouterTest, AffinityPinsSessionToFirstPlacement) {
  Router router(RoutePolicy::kSessionAffinity);
  std::vector<ReplicaView> views(3);
  views[0].outstanding = 9;
  views[1].outstanding = 0;
  views[2].outstanding = 9;
  ASSERT_EQ(router.Route(Req(0, /*session=*/42), views), 1u);
  // Even when another replica becomes less loaded, the session stays pinned.
  views[1].outstanding = 50;
  EXPECT_EQ(router.Route(Req(1, 42), views), 1u);
  EXPECT_EQ(router.Route(Req(2, 42), views), 1u);
  // A different session lands on the now least-loaded replica.
  EXPECT_EQ(router.Route(Req(3, 43), views), 0u);
}

TEST(RouterTest, AffinityRepinsWhenReplicaForgotten) {
  Router router(RoutePolicy::kSessionAffinity);
  std::vector<ReplicaView> views(2);
  views[0].outstanding = 0;
  views[1].outstanding = 3;
  ASSERT_EQ(router.Route(Req(0, 7), views), 0u);
  router.ForgetReplica(0);
  views[0].alive = false;
  EXPECT_EQ(router.Route(Req(1, 7), views), 1u);
}

TEST(RouterTest, RoundRobinRotationFairAfterForgettingRemovedReplica) {
  // Regression: the cluster keeps replica indices stable after a kill or
  // scale-down (the dead replica stays in the view vector, alive=false).
  // ForgetReplica must NOT shift the cursor in that convention, or the
  // rotation re-serves the replica just served and starves another.
  Router router(RoutePolicy::kRoundRobin);
  std::vector<ReplicaView> views(3);
  EXPECT_EQ(router.Route(Req(0), views), 0u);
  EXPECT_EQ(router.Route(Req(1), views), 1u);  // cursor now 2
  // Replica 0 dies; indices stay stable.
  router.ForgetReplica(0);
  views[0].alive = false;
  // Rotation continues with replica 2, then alternates 1/2 — no double-serve
  // of replica 1 and no starvation of replica 2.
  EXPECT_EQ(router.Route(Req(2), views), 2u);
  EXPECT_EQ(router.Route(Req(3), views), 1u);
  EXPECT_EQ(router.Route(Req(4), views), 2u);
}

TEST(RouterTest, RoundRobinStaleCursorClampedToShrunkenViews) {
  Router router(RoutePolicy::kRoundRobin);
  std::vector<ReplicaView> views(4);
  for (int i = 0; i < 4; ++i) {
    (void)router.Route(Req(static_cast<unsigned>(i)), views);
  }
  // The fleet shrinks behind the router's back (no ForgetReplica call): a
  // stale cursor must still produce a valid, cycling rotation.
  views.resize(2);
  const auto a = router.Route(Req(10), views);
  const auto b = router.Route(Req(11), views);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_LT(*a, 2u);
  EXPECT_LT(*b, 2u);
  EXPECT_NE(*a, *b);
}

TEST(RouterTest, ForgetKilledReplicaDropsPinsAndRepins) {
  // Kill semantics: the replica is forgotten while still present in the view
  // vector (marked dead, never drained).  Its sessions must re-place.
  Router router(RoutePolicy::kSessionAffinity);
  std::vector<ReplicaView> views(3);
  views[0].outstanding = 1;
  views[1].outstanding = 0;
  views[2].outstanding = 5;
  ASSERT_EQ(router.Route(Req(0, /*session=*/9), views), 1u);
  // Replica 1 is killed: forgotten, marked dead, still in the vector.
  router.ForgetReplica(1);
  views[1].alive = false;
  // The session re-places by least-outstanding among survivors...
  EXPECT_EQ(router.Route(Req(1, 9), views), 0u);
  // ...and the new pin is sticky even when load shifts.
  views[0].outstanding = 50;
  EXPECT_EQ(router.Route(Req(2, 9), views), 0u);
}

TEST(RouterTest, AffinityReplacementAfterKillWithoutForget) {
  // Even if ForgetReplica were missed, a dead pinned replica must not be
  // routed to; the session re-pins to an alive one.
  Router router(RoutePolicy::kSessionAffinity);
  std::vector<ReplicaView> views(2);
  ASSERT_EQ(router.Route(Req(0, 5), views), 0u);
  views[0].alive = false;
  views[1].outstanding = 7;
  EXPECT_EQ(router.Route(Req(1, 5), views), 1u);
}

TEST(RouterTest, DecideRejectsWhenAllReplicasBustBudget) {
  Router router(RoutePolicy::kLeastOutstanding,
                SloConfig{/*ttft_budget=*/1.0, /*reject_above=*/1.0});
  std::vector<ReplicaView> views(3);
  for (ReplicaView& v : views) v.est_ttft_seconds = 5.0;
  const RouteDecision d = router.Decide(Req(0), views);
  EXPECT_EQ(d.outcome, RouteOutcome::kRejected);
  EXPECT_FALSE(d.replica.has_value());
  EXPECT_DOUBLE_EQ(d.predicted_ttft, 5.0);
}

TEST(RouterTest, DecideFallsBackToFastestReplicaUnderSlo) {
  // The policy's pick (affinity pin) busts the budget, but another replica
  // can still serve inside it: route there instead of rejecting.
  Router router(RoutePolicy::kSessionAffinity,
                SloConfig{/*ttft_budget=*/1.0, /*reject_above=*/1.0});
  std::vector<ReplicaView> views(2);
  views[0].outstanding = 0;
  ASSERT_EQ(router.Decide(Req(0, /*session=*/3), views).replica, 0u);
  views[0].est_ttft_seconds = 4.0;  // pinned replica now overloaded
  views[1].est_ttft_seconds = 0.5;
  views[1].outstanding = 1;
  const RouteDecision d = router.Decide(Req(1, 3), views);
  EXPECT_EQ(d.outcome, RouteOutcome::kRouted);
  EXPECT_EQ(d.replica, 1u);
  EXPECT_DOUBLE_EQ(d.predicted_ttft, 0.5);
}

TEST(RouterTest, DecideWithSloDisabledNeverRejects) {
  Router router(RoutePolicy::kRoundRobin);  // default SloConfig: disabled
  std::vector<ReplicaView> views(2);
  for (ReplicaView& v : views) v.est_ttft_seconds = 1e9;
  const RouteDecision d = router.Decide(Req(0), views);
  EXPECT_EQ(d.outcome, RouteOutcome::kRouted);
}

TEST(RouterTest, DecideNoAliveReplicaIsDropNotReject) {
  Router router(RoutePolicy::kLeastOutstanding,
                SloConfig{/*ttft_budget=*/1.0, /*reject_above=*/1.0});
  std::vector<ReplicaView> views(2);
  views[0].alive = views[1].alive = false;
  const RouteDecision d = router.Decide(Req(0), views);
  EXPECT_EQ(d.outcome, RouteOutcome::kNoReplica);
  EXPECT_FALSE(d.replica.has_value());
}

}  // namespace
}  // namespace liquid::cluster
