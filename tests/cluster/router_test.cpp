#include "cluster/router.hpp"

#include <gtest/gtest.h>

namespace liquid::cluster {
namespace {

serving::TimedRequest Req(std::uint64_t id, std::uint64_t session = 0) {
  serving::TimedRequest r;
  r.id = id;
  r.session = session;
  return r;
}

TEST(RouterTest, ParseAndPrintPoliciesRoundTrip) {
  // Table-driven: every preset round-trips through its canonical name, and
  // the advertised accepted-names list covers exactly those names.
  struct Case {
    RoutePolicy policy;
    const char* name;
  };
  const Case cases[] = {
      {RoutePolicy::kRoundRobin, "round_robin"},
      {RoutePolicy::kLeastOutstanding, "least_outstanding"},
      {RoutePolicy::kLeastKvLoad, "least_kv"},
      {RoutePolicy::kSessionAffinity, "affinity"},
      {RoutePolicy::kPrefixAware, "prefix_aware"},
  };
  const std::string names = RoutePolicyNames();
  for (const Case& c : cases) {
    EXPECT_STREQ(ToString(c.policy), c.name);
    const auto parsed = ParseRoutePolicy(c.name);
    ASSERT_TRUE(parsed.has_value()) << c.name;
    EXPECT_EQ(*parsed, c.policy) << c.name;
    EXPECT_NE(names.find(c.name), std::string::npos)
        << "'" << c.name << "' missing from RoutePolicyNames()";
  }
  // Unknown, near-miss, and case-mangled names are all rejected — callers
  // print RoutePolicyNames() on this path.
  for (const char* bad :
       {"no_such_policy", "", "prefix", "Affinity", "least_kv "}) {
    EXPECT_FALSE(ParseRoutePolicy(bad).has_value()) << "'" << bad << "'";
  }
}

TEST(RouterTest, RoundRobinCyclesAndSkipsDeadReplicas) {
  Router router(RoutePolicy::kRoundRobin);
  std::vector<ReplicaView> views(3);
  views[1].alive = false;
  EXPECT_EQ(router.Route(Req(0), views), 0u);
  EXPECT_EQ(router.Route(Req(1), views), 2u);  // skips dead replica 1
  EXPECT_EQ(router.Route(Req(2), views), 0u);
}

TEST(RouterTest, NoAliveReplicaRoutesNowhere) {
  Router router(RoutePolicy::kRoundRobin);
  std::vector<ReplicaView> views(2);
  views[0].alive = views[1].alive = false;
  EXPECT_FALSE(router.Route(Req(0), views).has_value());
}

TEST(RouterTest, LeastOutstandingPicksShortestQueue) {
  Router router(RoutePolicy::kLeastOutstanding);
  std::vector<ReplicaView> views(3);
  views[0].outstanding = 5;
  views[1].outstanding = 2;
  views[2].outstanding = 9;
  EXPECT_EQ(router.Route(Req(0), views), 1u);
}

TEST(RouterTest, LeastKvLoadPicksMostFreeBlocks) {
  Router router(RoutePolicy::kLeastKvLoad);
  std::vector<ReplicaView> views(3);
  // Queue depth says replica 0; KV headroom says replica 2.
  views[0].outstanding = 1;
  views[0].free_kv_blocks = 10;
  views[1].outstanding = 4;
  views[1].free_kv_blocks = 40;
  views[2].outstanding = 4;
  views[2].free_kv_blocks = 300;
  EXPECT_EQ(router.Route(Req(0), views), 2u);
}

TEST(RouterTest, LeastKvLoadTieBreaksTowardLowestIndex) {
  Router router(RoutePolicy::kLeastKvLoad);
  std::vector<ReplicaView> views(3);
  for (ReplicaView& v : views) v.free_kv_blocks = 7;
  EXPECT_EQ(router.Route(Req(0), views), 0u);
}

TEST(RouterTest, AffinityPinsSessionToFirstPlacement) {
  Router router(RoutePolicy::kSessionAffinity);
  std::vector<ReplicaView> views(3);
  views[0].outstanding = 9;
  views[1].outstanding = 0;
  views[2].outstanding = 9;
  ASSERT_EQ(router.Route(Req(0, /*session=*/42), views), 1u);
  // Even when another replica becomes less loaded, the session stays pinned.
  views[1].outstanding = 50;
  EXPECT_EQ(router.Route(Req(1, 42), views), 1u);
  EXPECT_EQ(router.Route(Req(2, 42), views), 1u);
  // A different session lands on the now least-loaded replica.
  EXPECT_EQ(router.Route(Req(3, 43), views), 0u);
}

TEST(RouterTest, AffinityRepinsWhenReplicaForgotten) {
  Router router(RoutePolicy::kSessionAffinity);
  std::vector<ReplicaView> views(2);
  views[0].outstanding = 0;
  views[1].outstanding = 3;
  ASSERT_EQ(router.Route(Req(0, 7), views), 0u);
  router.ForgetReplica(0);
  views[0].alive = false;
  EXPECT_EQ(router.Route(Req(1, 7), views), 1u);
}

TEST(RouterTest, RoundRobinRotationFairAfterForgettingRemovedReplica) {
  // Regression: the cluster keeps replica indices stable after a kill or
  // scale-down (the dead replica stays in the view vector, alive=false).
  // ForgetReplica must NOT shift the cursor in that convention, or the
  // rotation re-serves the replica just served and starves another.
  Router router(RoutePolicy::kRoundRobin);
  std::vector<ReplicaView> views(3);
  EXPECT_EQ(router.Route(Req(0), views), 0u);
  EXPECT_EQ(router.Route(Req(1), views), 1u);  // cursor now 2
  // Replica 0 dies; indices stay stable.
  router.ForgetReplica(0);
  views[0].alive = false;
  // Rotation continues with replica 2, then alternates 1/2 — no double-serve
  // of replica 1 and no starvation of replica 2.
  EXPECT_EQ(router.Route(Req(2), views), 2u);
  EXPECT_EQ(router.Route(Req(3), views), 1u);
  EXPECT_EQ(router.Route(Req(4), views), 2u);
}

TEST(RouterTest, RoundRobinStaleCursorClampedToShrunkenViews) {
  Router router(RoutePolicy::kRoundRobin);
  std::vector<ReplicaView> views(4);
  for (int i = 0; i < 4; ++i) {
    (void)router.Route(Req(static_cast<unsigned>(i)), views);
  }
  // The fleet shrinks behind the router's back (no ForgetReplica call): a
  // stale cursor must still produce a valid, cycling rotation.
  views.resize(2);
  const auto a = router.Route(Req(10), views);
  const auto b = router.Route(Req(11), views);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_LT(*a, 2u);
  EXPECT_LT(*b, 2u);
  EXPECT_NE(*a, *b);
}

TEST(RouterTest, ForgetKilledReplicaDropsPinsAndRepins) {
  // Kill semantics: the replica is forgotten while still present in the view
  // vector (marked dead, never drained).  Its sessions must re-place.
  Router router(RoutePolicy::kSessionAffinity);
  std::vector<ReplicaView> views(3);
  views[0].outstanding = 1;
  views[1].outstanding = 0;
  views[2].outstanding = 5;
  ASSERT_EQ(router.Route(Req(0, /*session=*/9), views), 1u);
  // Replica 1 is killed: forgotten, marked dead, still in the vector.
  router.ForgetReplica(1);
  views[1].alive = false;
  // The session re-places by least-outstanding among survivors...
  EXPECT_EQ(router.Route(Req(1, 9), views), 0u);
  // ...and the new pin is sticky even when load shifts.
  views[0].outstanding = 50;
  EXPECT_EQ(router.Route(Req(2, 9), views), 0u);
}

TEST(RouterTest, AffinityReplacementAfterKillWithoutForget) {
  // Even if ForgetReplica were missed, a dead pinned replica must not be
  // routed to; the session re-pins to an alive one.
  Router router(RoutePolicy::kSessionAffinity);
  std::vector<ReplicaView> views(2);
  ASSERT_EQ(router.Route(Req(0, 5), views), 0u);
  views[0].alive = false;
  views[1].outstanding = 7;
  EXPECT_EQ(router.Route(Req(1, 5), views), 1u);
}

TEST(RouterTest, DecideRejectsWhenAllReplicasBustBudget) {
  Router router(RoutePolicy::kLeastOutstanding,
                SloConfig{/*ttft_budget=*/1.0, /*reject_above=*/1.0});
  std::vector<ReplicaView> views(3);
  for (ReplicaView& v : views) v.est_ttft_seconds = 5.0;
  const RouteDecision d = router.Decide(Req(0), views);
  EXPECT_EQ(d.outcome, RouteOutcome::kRejected);
  EXPECT_FALSE(d.replica.has_value());
  EXPECT_DOUBLE_EQ(d.predicted_ttft, 5.0);
}

TEST(RouterTest, DecideFallsBackToFastestReplicaUnderSlo) {
  // The policy's pick (affinity pin) busts the budget, but another replica
  // can still serve inside it: route there instead of rejecting.
  Router router(RoutePolicy::kSessionAffinity,
                SloConfig{/*ttft_budget=*/1.0, /*reject_above=*/1.0});
  std::vector<ReplicaView> views(2);
  views[0].outstanding = 0;
  ASSERT_EQ(router.Decide(Req(0, /*session=*/3), views).replica, 0u);
  views[0].est_ttft_seconds = 4.0;  // pinned replica now overloaded
  views[1].est_ttft_seconds = 0.5;
  views[1].outstanding = 1;
  const RouteDecision d = router.Decide(Req(1, 3), views);
  EXPECT_EQ(d.outcome, RouteOutcome::kRouted);
  EXPECT_EQ(d.replica, 1u);
  EXPECT_DOUBLE_EQ(d.predicted_ttft, 0.5);
}

TEST(RouterTest, DecideWithSloDisabledNeverRejects) {
  Router router(RoutePolicy::kRoundRobin);  // default SloConfig: disabled
  std::vector<ReplicaView> views(2);
  for (ReplicaView& v : views) v.est_ttft_seconds = 1e9;
  const RouteDecision d = router.Decide(Req(0), views);
  EXPECT_EQ(d.outcome, RouteOutcome::kRouted);
}

TEST(RouterTest, DecideNoAliveReplicaIsDropNotReject) {
  Router router(RoutePolicy::kLeastOutstanding,
                SloConfig{/*ttft_budget=*/1.0, /*reject_above=*/1.0});
  std::vector<ReplicaView> views(2);
  views[0].alive = views[1].alive = false;
  const RouteDecision d = router.Decide(Req(0), views);
  EXPECT_EQ(d.outcome, RouteOutcome::kNoReplica);
  EXPECT_FALSE(d.replica.has_value());
}

// ---- Scorer-pipeline behavior (the placement refactor) ----------------

serving::TimedRequest SignedReq(std::uint64_t id, std::uint64_t session,
                                std::vector<std::uint64_t> hashes) {
  serving::TimedRequest r;
  r.id = id;
  r.session = session;
  r.prompt_tokens = hashes.size() * 16;
  r.prefix.block_tokens = 16;
  r.prefix.hashes = std::move(hashes);
  return r;
}

TEST(RouterScorerTest, PresetPipelinesExposeTheirTerms) {
  // The legacy presets are data now: single-term pipelines (affinity adds
  // its load fallback).  Guards against a preset silently changing shape.
  EXPECT_EQ(PromptPipeline(RoutePolicy::kRoundRobin).size(), 1u);
  EXPECT_EQ(PromptPipeline(RoutePolicy::kRoundRobin)[0].term,
            ScoreTerm::kRotation);
  EXPECT_EQ(PromptPipeline(RoutePolicy::kLeastOutstanding)[0].term,
            ScoreTerm::kLoad);
  EXPECT_EQ(PromptPipeline(RoutePolicy::kLeastKvLoad)[0].term,
            ScoreTerm::kFreeKv);
  EXPECT_EQ(PromptPipeline(RoutePolicy::kSessionAffinity)[0].term,
            ScoreTerm::kAffinity);
  const ScorerPipeline prefix = PromptPipeline(RoutePolicy::kPrefixAware);
  EXPECT_EQ(prefix[0].term, ScoreTerm::kPrefixOverlap);
  EXPECT_STREQ(ToString(ScoreTerm::kPrefixOverlap), "prefix_overlap");
}

TEST(RouterScorerTest, PrefixAwareRoutesToSharedBlocks) {
  Router router(RoutePolicy::kPrefixAware);
  serving::PrefixIndex warm;
  for (std::uint64_t h : {1ull, 2ull, 3ull, 4ull}) warm.Add(h);
  serving::PrefixIndex cold;
  std::vector<ReplicaView> views(3);
  views[0].prefix_index = &cold;
  views[1].prefix_index = &warm;  // holds the request's whole signature
  views[2].prefix_index = &cold;
  views[1].outstanding = 2;  // mild load must not scare the overlap away
  EXPECT_EQ(router.Route(SignedReq(0, 5, {1, 2, 3, 4}), views), 1u);
}

TEST(RouterScorerTest, PrefixAwareLoadTermSpillsHotspots) {
  // Overlap weight 2.0 vs load weight 0.5: a full overlap is worth a 4-deep
  // queue, not a 40-deep one — a hotspot spills to an idle replica.
  Router router(RoutePolicy::kPrefixAware);
  serving::PrefixIndex warm;
  for (std::uint64_t h : {1ull, 2ull}) warm.Add(h);
  std::vector<ReplicaView> views(2);
  views[0].prefix_index = &warm;
  views[0].outstanding = 10;  // 2.0 overlap < 0.5 * 10 load penalty
  views[1].outstanding = 0;
  EXPECT_EQ(router.Route(SignedReq(0, 5, {1, 2}), views), 1u);
  views[0].outstanding = 3;  // 2.0 overlap > 0.5 * 3: locality wins again
  EXPECT_EQ(router.Route(SignedReq(1, 6, {1, 2}), views), 0u);
}

TEST(RouterScorerTest, PrefixAwareDegeneratesToStickinessWhenDisjoint) {
  // No shared blocks anywhere: the pin term keeps the session home while
  // load stays comparable — affinity-like behavior on disjoint workloads.
  Router router(RoutePolicy::kPrefixAware);
  std::vector<ReplicaView> views(2);
  views[0].outstanding = 1;
  views[1].outstanding = 0;
  ASSERT_EQ(router.Route(SignedReq(0, 9, {42}), views), 1u);  // least loaded
  views[0].outstanding = 0;  // load evens out: the pin keeps the session home
  EXPECT_EQ(router.Route(SignedReq(1, 9, {43}), views), 1u);
}

TEST(RouterScorerTest, CustomPipelineOverridesPreset) {
  // The pipeline is data: swap in a pure predicted-TTFT scorer.
  Router router(RoutePolicy::kRoundRobin);
  router.set_pipeline({{ScoreTerm::kPredictedTtft, 1.0}});
  std::vector<ReplicaView> views(3);
  views[0].est_ttft_seconds = 0.8;
  views[1].est_ttft_seconds = 0.2;
  views[2].est_ttft_seconds = 0.5;
  EXPECT_EQ(router.Route(Req(0), views), 1u);
  EXPECT_EQ(router.Route(Req(1), views), 1u);  // no rotation term, no cursor
}

TEST(RouterScorerTest, DecodePrefixOverlapOutranksStickiness) {
  // Legacy decode placement would stay with the session's old decode home;
  // prefix_aware follows the migrating KV's shared blocks instead.
  Router router(RoutePolicy::kPrefixAware);
  serving::PrefixIndex warm;
  for (std::uint64_t h : {7ull, 8ull}) warm.Add(h);
  std::vector<ReplicaView> views(3);
  views[0].role = ReplicaRole::kDecode;
  views[0].free_kv_blocks = 50;
  views[1].role = ReplicaRole::kDecode;
  views[1].free_kv_blocks = 50;
  views[1].prefix_index = &warm;
  views[2].role = ReplicaRole::kPrefill;  // never a decode target
  // Pin session 3 onto replica 0 first (no overlap info).
  ASSERT_EQ(router.RouteDecode(3, views, 1), 0u);
  // With shared blocks visible on replica 1, the pin loses.
  const std::uint64_t sig[] = {7, 8};
  EXPECT_EQ(router.RouteDecode(3, views, 1, sig), 1u);
  // And under a legacy preset the pin would have held.
  Router legacy(RoutePolicy::kSessionAffinity);
  ASSERT_EQ(legacy.RouteDecode(3, views, 1), 0u);
  EXPECT_EQ(legacy.RouteDecode(3, views, 1, sig), 0u);
}

TEST(RouterScorerTest, DecodeRolePreferenceStillAbsoluteUnderPrefix) {
  // A unified replica holding the whole signature must not outbid a decode
  // replica: role preference is the top tier of the decode pipeline.
  Router router(RoutePolicy::kPrefixAware);
  serving::PrefixIndex warm;
  warm.Add(1);
  std::vector<ReplicaView> views(2);
  views[0].role = ReplicaRole::kUnified;
  views[0].prefix_index = &warm;
  views[0].free_kv_blocks = 100;
  views[1].role = ReplicaRole::kDecode;
  views[1].free_kv_blocks = 10;
  const std::uint64_t sig[] = {1};
  EXPECT_EQ(router.RouteDecode(1, views, 1, sig), 1u);
}

}  // namespace
}  // namespace liquid::cluster
