// Role-typed, cost-aware autoscaling tests, including the regressions this
// subsystem was built around:
//  - the autoscaler used to be arrival-driven only, so a post-burst fleet
//    never scaled down and billed peak-fleet $/hour across the drain tail;
//  - scale-up used to clone the FIRST added spec, so a decode-bound disagg
//    fleet grew another prefill replica;
//  - the scale-down victim scan could retire the last replica of a role;
//  - the kQueueDepth denominator counted fully degraded replicas at full
//    capacity, masking overload.
// Plus the determinism golden for the scale-event sequence and a chaos mix
// (kills + degradations + role-typed autoscaling) under the conservation
// invariant.

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "serving/workload.hpp"
#include "util/rng.hpp"

namespace liquid::cluster {
namespace {

using serving::TimedRequest;
using serving::TraceConfig;

ReplicaSpec Spec(ReplicaRole role, std::size_t pool_blocks = 512,
                 std::size_t max_batch = 16) {
  ReplicaSpec spec;
  spec.hw = simgpu::HardwareSpec::H800();
  spec.preset = serving::SystemPreset::LiquidServe();
  spec.model = serving::LlmConfig::Llama2_7B();
  spec.kv_pool_blocks = pool_blocks;
  spec.block_tokens = 16;
  spec.max_batch = max_batch;
  spec.role = role;
  spec.dollars_per_hour = role == ReplicaRole::kPrefill ? 2.8 : 2.2;
  if (role == ReplicaRole::kPrefill) {
    spec.options.prefill_chunk_tokens = 2048;
  }
  return spec;
}

std::vector<TimedRequest> Burst(std::size_t count, std::uint64_t seed,
                                double rate, std::size_t prompt_min = 256,
                                std::size_t prompt_max = 2048,
                                std::size_t output_min = 64,
                                std::size_t output_max = 256) {
  TraceConfig config;
  config.arrival_rate_per_s = rate;
  config.count = count;
  config.prompt_min = prompt_min;
  config.prompt_max = prompt_max;
  config.output_min = output_min;
  config.output_max = output_max;
  config.sessions = 8;
  return serving::GenerateTrace(config, seed);
}

void ExpectConservation(const FleetStats& s) {
  EXPECT_EQ(s.completed + s.dropped + s.rejected_requests + s.lost_requests,
            s.submitted + s.retried_requests);
  EXPECT_EQ(s.lost_requests, s.retried_requests + s.retries_exhausted);
  EXPECT_EQ(s.disagg.in_migration, 0u);
}

// --- Bugfix 1: the autoscaler only woke on arrivals -------------------------

AutoscaleConfig DrainTailConfig(double tick_seconds) {
  AutoscaleConfig autoscale;
  autoscale.enabled = true;
  autoscale.signal = AutoscaleSignal::kQueueDepth;
  autoscale.queue_high = 4.0;
  autoscale.queue_low = 0.5;
  autoscale.min_replicas = 1;
  autoscale.max_replicas = 6;
  autoscale.cooldown_seconds = 0.05;
  autoscale.tick_seconds = tick_seconds;
  return autoscale;
}

FleetStats RunDrainTail(double tick_seconds) {
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding,
                       DrainTailConfig(tick_seconds));
  sim.AddReplica(Spec(ReplicaRole::kUnified));
  // A hard burst, then a long idle tail closed by one straggler 60 s later:
  // with the legacy arrival-driven autoscaler nothing runs between the last
  // burst arrival and the straggler, so the scaled-up fleet burns $/hour
  // across the whole tail.
  std::vector<TimedRequest> trace = Burst(120, /*seed=*/5, /*rate=*/500.0);
  TimedRequest straggler;
  straggler.id = 100000;
  straggler.arrival_seconds = trace.back().arrival_seconds + 60.0;
  straggler.prompt_tokens = 128;
  straggler.max_new_tokens = 16;
  trace.push_back(straggler);
  return sim.Run(trace);
}

TEST(AutoscaleTest, DrainTailScalesBackToMinReplicas) {
  const FleetStats ticked = RunDrainTail(/*tick_seconds=*/0.2);
  EXPECT_GT(ticked.scale_ups, 0u);
  EXPECT_GT(ticked.scale_downs, 0u);
  EXPECT_EQ(ticked.replicas_final, 1u);  // back to min_replicas
  ExpectConservation(ticked);

  // The legacy arrival-driven config (tick_seconds = 0) is preserved for
  // golden compatibility — and demonstrates the bug: the fleet holds peak
  // size across the idle tail (at most the straggler's own arrival can
  // trigger a single late scale-down).
  const FleetStats legacy = RunDrainTail(/*tick_seconds=*/0);
  EXPECT_LE(legacy.scale_downs, 1u);
  EXPECT_GT(legacy.replicas_final, 1u);
  ExpectConservation(legacy);

  // And the $ total reflects the fix: retired replicas stop billing, so the
  // tail is no longer paid for at peak-fleet rates.
  EXPECT_GT(ticked.cost_dollars, 0.0);
  EXPECT_LT(ticked.cost_dollars, 0.5 * legacy.cost_dollars);
}

TEST(AutoscaleTest, AbstainingWindowedSignalCannotWedgeTheTickLoop) {
  // Regression: a pending stabilized shrink (shrink_stable_seconds longer
  // than the TTFT window) whose signal then ABSTAINS (window drained below
  // min_window_samples) used to leave the pending flag stuck, so the
  // periodic tick never disarmed and Run() span forever.  Terminating at
  // all is the assertion.
  AutoscaleConfig autoscale;
  autoscale.enabled = true;
  autoscale.signal = AutoscaleSignal::kTailTtft;
  autoscale.ttft_p99_high = 1e9;
  autoscale.ttft_p99_low = 10.0;  // everything reads "low": shrink desired
  autoscale.window_seconds = 2.0;
  autoscale.min_window_samples = 2;
  autoscale.cooldown_seconds = 0.1;
  autoscale.tick_seconds = 0.25;
  autoscale.shrink_stable_seconds = 30.0;  // longer than the window drains
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding, autoscale);
  sim.AddReplica(Spec(ReplicaRole::kUnified));
  sim.AddReplica(Spec(ReplicaRole::kUnified));
  const FleetStats stats = sim.Run(Burst(5, /*seed=*/41, /*rate=*/5.0));
  ExpectConservation(stats);
  EXPECT_EQ(stats.scale_downs, 0u);  // never stabilized, and never hung
  EXPECT_EQ(stats.replicas_final, 2u);
}

// --- Bugfix 2: role-blind scale-up / scale-down -----------------------------

TEST(AutoscaleTest, DecodeBoundFleetGrowsDecodePoolNotFirstSpec) {
  AutoscaleConfig autoscale;
  autoscale.enabled = true;
  autoscale.cooldown_seconds = 0.05;
  autoscale.tick_seconds = 0.1;
  AutoscalePool prefill_pool;
  prefill_pool.role = ReplicaRole::kPrefill;
  prefill_pool.spec = Spec(ReplicaRole::kPrefill);
  prefill_pool.signal = AutoscaleSignal::kQueueDepth;
  prefill_pool.high = 1e9;  // never hot in this test
  prefill_pool.low = -1.0;  // never shrinks either
  prefill_pool.min_replicas = 1;
  prefill_pool.max_replicas = 2;
  AutoscalePool decode_pool;
  decode_pool.role = ReplicaRole::kDecode;
  decode_pool.spec = Spec(ReplicaRole::kDecode);
  decode_pool.signal = AutoscaleSignal::kQueueDepth;
  decode_pool.high = 2.0;
  decode_pool.low = -1.0;
  decode_pool.min_replicas = 2;
  decode_pool.max_replicas = 5;
  autoscale.pools = {prefill_pool, decode_pool};

  DisaggConfig disagg;
  disagg.interconnect.bandwidth_gb_per_s = 400.0;
  disagg.max_migration_seconds = 0.5;
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding, autoscale, {}, {},
                       disagg);
  // The PREFILL spec is added first: the legacy autoscaler would have cloned
  // it no matter which pool hurt.
  sim.AddReplica(Spec(ReplicaRole::kPrefill));
  sim.AddReplica(Spec(ReplicaRole::kDecode));
  sim.AddReplica(Spec(ReplicaRole::kDecode));

  // Decode-bound mix: short prompts, long outputs — continuations pile up
  // on the decode pool while the prefill replica stays nearly idle.
  const FleetStats stats =
      sim.Run(Burst(80, /*seed=*/11, /*rate=*/60.0, /*prompt_min=*/64,
                    /*prompt_max=*/128, /*output_min=*/256,
                    /*output_max=*/512));
  ExpectConservation(stats);
  EXPECT_GT(stats.scale_ups, 0u);
  for (const ScaleEvent& e : stats.scale_events) {
    if (e.up) {
      EXPECT_EQ(e.role, ReplicaRole::kDecode);
    }
  }
  // The grown capacity is decode capacity; the prefill pool held its size.
  std::size_t prefill_total = 0, decode_total = 0;
  for (const ReplicaReport& r : stats.replicas) {
    prefill_total += r.role == ReplicaRole::kPrefill ? 1 : 0;
    decode_total += r.role == ReplicaRole::kDecode ? 1 : 0;
  }
  EXPECT_EQ(prefill_total, 1u);
  EXPECT_GT(decode_total, 2u);
}

TEST(AutoscaleTest, VictimScanNeverRetiresLastReplicaOfARole) {
  AutoscaleConfig autoscale;
  autoscale.enabled = true;
  autoscale.cooldown_seconds = 0.05;
  autoscale.tick_seconds = 0.2;
  AutoscalePool prefill_pool;
  prefill_pool.role = ReplicaRole::kPrefill;
  prefill_pool.spec = Spec(ReplicaRole::kPrefill);
  prefill_pool.signal = AutoscaleSignal::kQueueDepth;
  prefill_pool.high = 1e9;
  prefill_pool.low = 0.5;
  prefill_pool.min_replicas = 0;  // the ROLE GUARD, not min, must save it
  AutoscalePool decode_pool = prefill_pool;
  decode_pool.role = ReplicaRole::kDecode;
  decode_pool.spec = Spec(ReplicaRole::kDecode);
  autoscale.pools = {prefill_pool, decode_pool};

  DisaggConfig disagg;
  disagg.interconnect.bandwidth_gb_per_s = 400.0;
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding, autoscale, {}, {},
                       disagg);
  sim.AddReplica(Spec(ReplicaRole::kPrefill));
  sim.AddReplica(Spec(ReplicaRole::kDecode));
  sim.AddReplica(Spec(ReplicaRole::kDecode));

  // A slow trickle keeps every queue near zero: both pools signal shrink
  // the whole run.
  const FleetStats stats = sim.Run(Burst(12, /*seed=*/23, /*rate=*/0.5));
  ExpectConservation(stats);
  EXPECT_GT(stats.scale_downs, 0u);  // the spare decode replica retired
  EXPECT_EQ(stats.replicas_final, 2u);
  EXPECT_EQ(stats.disagg.prefill_replicas, 1u);
  EXPECT_EQ(stats.disagg.decode_replicas, 1u);
}

TEST(AutoscaleTest, CostAwareShrinkRetiresTheExpensivePoolFirst) {
  AutoscaleConfig autoscale;
  autoscale.enabled = true;
  autoscale.cooldown_seconds = 0.05;
  autoscale.tick_seconds = 0.2;
  autoscale.cost_aware = true;
  // Decode pool FIRST in config order: without cost-awareness it would be
  // the first shrink candidate; with it, the pricier prefill pool goes.
  AutoscalePool decode_pool;
  decode_pool.role = ReplicaRole::kDecode;
  decode_pool.spec = Spec(ReplicaRole::kDecode);  // $2.2/hr
  decode_pool.signal = AutoscaleSignal::kQueueDepth;
  decode_pool.high = 1e9;
  decode_pool.low = 0.5;
  decode_pool.min_replicas = 1;
  AutoscalePool prefill_pool = decode_pool;
  prefill_pool.role = ReplicaRole::kPrefill;
  prefill_pool.spec = Spec(ReplicaRole::kPrefill);  // $2.8/hr
  autoscale.pools = {decode_pool, prefill_pool};

  DisaggConfig disagg;
  disagg.interconnect.bandwidth_gb_per_s = 400.0;
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding, autoscale, {}, {},
                       disagg);
  sim.AddReplica(Spec(ReplicaRole::kPrefill));
  sim.AddReplica(Spec(ReplicaRole::kPrefill));
  sim.AddReplica(Spec(ReplicaRole::kDecode));
  sim.AddReplica(Spec(ReplicaRole::kDecode));

  const FleetStats stats = sim.Run(Burst(12, /*seed=*/29, /*rate=*/0.5));
  ExpectConservation(stats);
  ASSERT_GT(stats.scale_downs, 0u);
  for (const ScaleEvent& e : stats.scale_events) {
    if (!e.up) {
      EXPECT_EQ(e.role, ReplicaRole::kPrefill)
          << "cost-aware shrink should retire the $2.8/hr pool first";
      break;
    }
  }
}

// --- Bugfix 3: degraded replicas masked the queue-depth signal --------------

TEST(AutoscaleTest, DegradedReplicaCountsAsFractionalCapacity) {
  const auto run = [](bool degrade) {
    AutoscaleConfig autoscale;
    autoscale.enabled = true;
    autoscale.signal = AutoscaleSignal::kQueueDepth;
    // Raw mean over 2 replicas peaks at 12/2 = 6 < 8; effective-capacity
    // mean with one replica degraded 8x peaks at 12/1.125 ≈ 10.7 > 8.
    autoscale.queue_high = 8.0;
    autoscale.queue_low = -1.0;
    autoscale.max_replicas = 4;
    autoscale.cooldown_seconds = 0.01;
    ClusterSimulator sim(RoutePolicy::kLeastOutstanding, autoscale);
    sim.AddReplica(Spec(ReplicaRole::kUnified));
    sim.AddReplica(Spec(ReplicaRole::kUnified));
    if (degrade) {
      EXPECT_TRUE(sim.DegradeReplica(1, 8.0));
    }
    return sim.Run(Burst(12, /*seed=*/31, /*rate=*/2000.0,
                         /*prompt_min=*/2048, /*prompt_max=*/4096));
  };
  const FleetStats healthy = run(false);
  EXPECT_EQ(healthy.scale_ups, 0u);  // raw load alone never trips the high
  const FleetStats degraded = run(true);
  EXPECT_GT(degraded.scale_ups, 0u)
      << "a browned-out replica must not count as full capacity";
  ExpectConservation(degraded);
}

// --- Signal coverage: KV pressure grows the decode pool ---------------------

TEST(AutoscaleTest, FreeKvPressureGrowsDecodePool) {
  AutoscaleConfig autoscale;
  autoscale.enabled = true;
  autoscale.cooldown_seconds = 0.05;
  autoscale.tick_seconds = 0.1;
  AutoscalePool prefill_pool;
  prefill_pool.role = ReplicaRole::kPrefill;
  prefill_pool.spec = Spec(ReplicaRole::kPrefill);
  prefill_pool.high = 1e9;
  prefill_pool.low = -1.0;
  AutoscalePool decode_pool;
  decode_pool.role = ReplicaRole::kDecode;
  // Tiny decode pools: migrated kilotoken KV fills them fast.
  decode_pool.spec = Spec(ReplicaRole::kDecode, /*pool_blocks=*/192);
  decode_pool.signal = AutoscaleSignal::kFreeKv;
  decode_pool.high = 0.5;  // grow above 50% used
  decode_pool.low = -1.0;
  decode_pool.min_replicas = 1;
  decode_pool.max_replicas = 6;
  autoscale.pools = {prefill_pool, decode_pool};

  DisaggConfig disagg;
  disagg.interconnect.bandwidth_gb_per_s = 400.0;
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding, autoscale, {}, {},
                       disagg);
  sim.AddReplica(Spec(ReplicaRole::kPrefill));
  sim.AddReplica(Spec(ReplicaRole::kDecode, /*pool_blocks=*/192));

  const FleetStats stats =
      sim.Run(Burst(40, /*seed=*/37, /*rate=*/30.0, /*prompt_min=*/1024,
                    /*prompt_max=*/2048, /*output_min=*/64,
                    /*output_max=*/128));
  ExpectConservation(stats);
  EXPECT_GT(stats.scale_ups, 0u);
  for (const ScaleEvent& e : stats.scale_events) {
    if (e.up) {
      EXPECT_EQ(e.role, ReplicaRole::kDecode);
    }
  }
}

// --- Determinism golden: the scale-event sequence ---------------------------

FleetStats RunCanonicalAutoscaleChaos() {
  AutoscaleConfig autoscale;
  autoscale.enabled = true;
  autoscale.cooldown_seconds = 0.25;
  autoscale.tick_seconds = 0.2;
  autoscale.cost_aware = true;
  AutoscalePool prefill_pool;
  prefill_pool.role = ReplicaRole::kPrefill;
  prefill_pool.spec = Spec(ReplicaRole::kPrefill);
  prefill_pool.signal = AutoscaleSignal::kQueueDepth;
  prefill_pool.high = 6.0;
  prefill_pool.low = 0.25;
  prefill_pool.min_replicas = 1;
  prefill_pool.max_replicas = 3;
  AutoscalePool decode_pool;
  decode_pool.role = ReplicaRole::kDecode;
  decode_pool.spec = Spec(ReplicaRole::kDecode);
  decode_pool.signal = AutoscaleSignal::kQueueDepth;
  decode_pool.high = 6.0;
  decode_pool.low = 0.25;
  decode_pool.min_replicas = 1;
  decode_pool.max_replicas = 4;
  autoscale.pools = {prefill_pool, decode_pool};
  SloConfig slo;
  slo.ttft_budget = 3.0;
  RetryPolicy retry;
  retry.max_attempts = 2;
  retry.base_backoff_seconds = 0.1;
  DisaggConfig disagg;
  disagg.interconnect.bandwidth_gb_per_s = 400.0;
  disagg.max_migration_seconds = 0.5;

  ClusterSimulator sim(RoutePolicy::kLeastOutstanding, autoscale, slo, retry,
                       disagg);
  for (int i = 0; i < 2; ++i) sim.AddReplica(Spec(ReplicaRole::kPrefill));
  for (int i = 0; i < 2; ++i) sim.AddReplica(Spec(ReplicaRole::kDecode));

  const std::vector<TimedRequest> trace = Burst(200, /*seed=*/777,
                                                /*rate=*/70.0);
  sim.ScheduleKill({trace[trace.size() / 3].arrival_seconds, 3});
  sim.ScheduleDegrade({trace[trace.size() / 2].arrival_seconds, 0, 4.0});
  return sim.Run(trace);
}

TEST(AutoscaleTest, ScaleEventSequenceDeterministicAndGolden) {
  const FleetStats a = RunCanonicalAutoscaleChaos();
  const FleetStats b = RunCanonicalAutoscaleChaos();
  ExpectConservation(a);
  ASSERT_EQ(a.scale_events.size(), b.scale_events.size());
  for (std::size_t i = 0; i < a.scale_events.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.scale_events[i].time, b.scale_events[i].time) << i;
    EXPECT_EQ(a.scale_events[i].up, b.scale_events[i].up) << i;
    EXPECT_EQ(a.scale_events[i].role, b.scale_events[i].role) << i;
    EXPECT_EQ(a.scale_events[i].replica, b.scale_events[i].replica) << i;
    EXPECT_DOUBLE_EQ(a.scale_events[i].signal_value,
                     b.scale_events[i].signal_value)
        << i;
  }
  std::printf("autoscale golden: %zu events:", a.scale_events.size());
  for (const ScaleEvent& e : a.scale_events) {
    std::printf(" %s%s@%.3f(r%zu)", e.up ? "+" : "-", ToString(e.role),
                e.time, e.replica);
  }
  std::printf("\n");
  // Golden pins for the canonical episode: the burst scales the fleet up,
  // the drain tail scales it back down to the pool floors.  If an
  // intentional change shifts the sequence, re-run and update alongside it.
  EXPECT_GT(a.scale_ups, 0u);
  EXPECT_GT(a.scale_downs, 0u);
  EXPECT_EQ(a.replicas_final, 2u);  // one prefill + one decode floor
  EXPECT_EQ(a.disagg.prefill_replicas, 1u);
  EXPECT_EQ(a.disagg.decode_replicas, 1u);
}

// --- Chaos: kills + degradations + role-typed autoscaling -------------------

TEST(AutoscaleTest, ConservationHoldsAcrossAutoscaleChaosSeeds) {
  std::size_t scenarios_with_scaling = 0;
  std::size_t scenarios_with_losses = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
    AutoscaleConfig autoscale;
    autoscale.enabled = true;
    autoscale.cooldown_seconds = rng.Uniform(0.05, 0.5);
    autoscale.tick_seconds = rng.Uniform(0.1, 0.5);
    autoscale.cost_aware = rng.NextDouble() < 0.5;
    AutoscalePool prefill_pool;
    prefill_pool.role = ReplicaRole::kPrefill;
    prefill_pool.spec = Spec(ReplicaRole::kPrefill);
    prefill_pool.signal = rng.NextDouble() < 0.5 ? AutoscaleSignal::kQueueDepth
                                                 : AutoscaleSignal::kTailTtft;
    prefill_pool.high = prefill_pool.signal == AutoscaleSignal::kQueueDepth
                            ? rng.Uniform(3.0, 8.0)
                            : rng.Uniform(0.3, 1.5);
    prefill_pool.low = prefill_pool.signal == AutoscaleSignal::kQueueDepth
                           ? rng.Uniform(0.2, 0.8)
                           : rng.Uniform(0.01, 0.1);
    prefill_pool.min_replicas = 1;
    prefill_pool.max_replicas = 3;
    prefill_pool.min_window_samples = 4;
    AutoscalePool decode_pool;
    decode_pool.role = ReplicaRole::kDecode;
    decode_pool.spec = Spec(ReplicaRole::kDecode);
    const double roll = rng.NextDouble();
    decode_pool.signal = roll < 0.34   ? AutoscaleSignal::kQueueDepth
                         : roll < 0.67 ? AutoscaleSignal::kFreeKv
                                       : AutoscaleSignal::kTailTpot;
    decode_pool.high = decode_pool.signal == AutoscaleSignal::kQueueDepth
                           ? rng.Uniform(3.0, 8.0)
                       : decode_pool.signal == AutoscaleSignal::kFreeKv
                           ? rng.Uniform(0.5, 0.9)
                           : rng.Uniform(0.02, 0.1);
    decode_pool.low = decode_pool.signal == AutoscaleSignal::kFreeKv
                          ? rng.Uniform(0.05, 0.3)
                          : rng.Uniform(0.005, 0.3);
    decode_pool.min_replicas = 1;
    decode_pool.max_replicas = 4;
    decode_pool.min_window_samples = 4;
    autoscale.pools = {prefill_pool, decode_pool};

    SloConfig slo;
    if (rng.NextDouble() < 0.5) slo.ttft_budget = rng.Uniform(1.0, 3.0);
    RetryPolicy retry;
    if (rng.NextDouble() < 0.5) retry.max_attempts = 1;
    if (rng.NextDouble() < 0.5) {
      retry.base_backoff_seconds = rng.Uniform(0.05, 0.3);
    }
    DisaggConfig disagg;
    disagg.interconnect.bandwidth_gb_per_s = rng.Uniform(25.0, 900.0);
    disagg.max_migration_seconds = rng.Uniform(0.1, 1.0);

    ClusterSimulator sim(RoutePolicy::kLeastOutstanding, autoscale, slo,
                         retry, disagg);
    const std::size_t prefills = 1 + rng.Below(2);
    const std::size_t decodes = 1 + rng.Below(3);
    for (std::size_t i = 0; i < prefills; ++i) {
      sim.AddReplica(Spec(ReplicaRole::kPrefill));
    }
    for (std::size_t i = 0; i < decodes; ++i) {
      sim.AddReplica(Spec(ReplicaRole::kDecode));
    }

    const std::vector<TimedRequest> trace =
        Burst(50 + rng.Below(50), seed ^ 0xA5C3ull, rng.Uniform(20.0, 90.0));
    const double span = trace.back().arrival_seconds + 1.0;
    const std::size_t kills = 1 + rng.Below(3);
    for (std::size_t k = 0; k < kills; ++k) {
      sim.ScheduleKill({rng.Uniform(0.05, span * 1.2),
                        rng.Below(prefills + decodes)});
    }
    const std::size_t degrades = 1 + rng.Below(2);
    for (std::size_t d = 0; d < degrades; ++d) {
      sim.ScheduleDegrade({rng.Uniform(0.05, span),
                           rng.Below(prefills + decodes),
                           rng.Uniform(1.5, 8.0)});
    }

    const FleetStats stats = sim.Run(trace);
    EXPECT_EQ(stats.submitted, trace.size()) << "seed " << seed;
    ExpectConservation(stats);
    EXPECT_EQ(stats.scale_ups + stats.scale_downs, stats.scale_events.size())
        << "seed " << seed;
    if (!stats.scale_events.empty()) ++scenarios_with_scaling;
    if (stats.lost_requests > 0) ++scenarios_with_losses;
  }
  // The generator must actually exercise the machinery under test.
  EXPECT_GT(scenarios_with_scaling, 10u);
  EXPECT_GT(scenarios_with_losses, 5u);
  std::printf("autoscale chaos: %zu/20 scaled, %zu/20 lost work\n",
              scenarios_with_scaling, scenarios_with_losses);
}

}  // namespace
}  // namespace liquid::cluster
