// Chaos under prefix-aware placement: for 40 seeds, build a random fleet
// (sometimes disaggregated), a random SHARED-PREFIX trace, random kills AND
// partial degradations (replicas that slow down rather than die), route with
// the prefix_aware preset — and assert the conservation law
//
//   completed + dropped + rejected + lost == submitted + retried
//   lost == retried + retries_exhausted
//   in_migration == 0 at the end of the run
//
// still holds.  Prefix credits, degraded clocks and migrating hash sets must
// never create or lose a request.

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "serving/workload.hpp"
#include "util/rng.hpp"

namespace liquid::cluster {
namespace {

ReplicaSpec ChaosReplica(ReplicaRole role, std::size_t pool_blocks) {
  ReplicaSpec spec;
  spec.hw = simgpu::HardwareSpec::H800();
  spec.preset = serving::SystemPreset::LiquidServe();
  spec.model = serving::LlmConfig::Llama2_7B();
  spec.kv_pool_blocks = pool_blocks;
  spec.block_tokens = 16;  // matches prefix_block_tokens below
  spec.max_batch = 16;
  spec.role = role;
  spec.dollars_per_hour = 2.5;
  return spec;
}

struct Scenario {
  std::vector<ReplicaRole> roles;
  std::size_t pool_blocks = 256;
  SloConfig slo;
  RetryPolicy retry;
  DisaggConfig disagg;
  bool disaggregated = false;
  std::vector<serving::TimedRequest> trace;
  std::vector<KillEvent> kills;
  std::vector<DegradeEvent> degrades;
};

Scenario RandomScenario(std::uint64_t seed) {
  Rng rng(seed);
  Scenario s;
  // Half the fleets are unified, half split into prefill/decode pools (the
  // migration path carries prefix hashes across the wire).
  s.disaggregated = rng.NextDouble() < 0.5;
  if (s.disaggregated) {
    const std::size_t prefills = 1 + rng.Below(2);
    const std::size_t decodes = 1 + rng.Below(2);
    for (std::size_t i = 0; i < prefills; ++i) {
      s.roles.push_back(ReplicaRole::kPrefill);
    }
    for (std::size_t i = 0; i < decodes; ++i) {
      s.roles.push_back(ReplicaRole::kDecode);
    }
    s.disagg.interconnect.bandwidth_gb_per_s = rng.Uniform(25.0, 900.0);
    s.disagg.max_migration_seconds = rng.Uniform(0.1, 1.0);
  } else {
    const std::size_t replicas = 2 + rng.Below(3);
    for (std::size_t i = 0; i < replicas; ++i) {
      s.roles.push_back(ReplicaRole::kUnified);
    }
  }
  s.pool_blocks = 256 + static_cast<std::size_t>(rng.Below(3)) * 128;
  if (rng.NextDouble() < 0.4) {
    s.slo.ttft_budget = rng.Uniform(0.5, 3.0);
    s.slo.reject_above = rng.Uniform(1.0, 2.0);
  }
  if (rng.NextDouble() < 0.5) s.retry.max_attempts = 1;
  if (rng.NextDouble() < 0.5) {
    s.retry.base_backoff_seconds = rng.Uniform(0.05, 0.3);
  }

  serving::TraceConfig trace;
  trace.arrival_rate_per_s = rng.Uniform(15.0, 80.0);
  trace.count = 50 + static_cast<std::size_t>(rng.Below(60));
  trace.prompt_min = 256;
  trace.prompt_max = 1024 + static_cast<std::size_t>(rng.Below(1024));
  trace.output_min = 32;
  trace.output_max = 160;
  trace.sessions = 8;
  // The point of this suite: real shared prefixes in flight while chaos
  // fires, so credits and index updates race kills and migrations.
  trace.shared_prefix_fraction = rng.Uniform(0.25, 0.75);
  trace.prefix_groups = 2 + rng.Below(6);
  trace.prefix_block_tokens = 16;
  s.trace = serving::GenerateTrace(trace, seed ^ 0xF1D0ull);

  const double span =
      s.trace.empty() ? 1.0 : s.trace.back().arrival_seconds + 1.0;
  const std::size_t kills = 1 + rng.Below(3);
  for (std::size_t k = 0; k < kills; ++k) {
    s.kills.push_back(
        {rng.Uniform(0.05, span * 1.2), rng.Below(s.roles.size())});
  }
  const std::size_t degrades = 1 + rng.Below(3);
  for (std::size_t d = 0; d < degrades; ++d) {
    s.degrades.push_back({rng.Uniform(0.05, span),
                          rng.Below(s.roles.size()),
                          rng.Uniform(1.5, 6.0)});
  }
  return s;
}

FleetStats RunScenario(const Scenario& s) {
  ClusterSimulator sim(RoutePolicy::kPrefixAware, {}, s.slo, s.retry,
                       s.disagg);
  for (const ReplicaRole role : s.roles) {
    sim.AddReplica(ChaosReplica(role, s.pool_blocks));
  }
  for (const KillEvent& kill : s.kills) sim.ScheduleKill(kill);
  for (const DegradeEvent& degrade : s.degrades) {
    sim.ScheduleDegrade(degrade);
  }
  return sim.Run(s.trace);
}

TEST(PrefixChaosTest, ConservationHoldsWithPrefixDegradeAndKills) {
  std::size_t scenarios_with_hits = 0;
  std::size_t scenarios_with_losses = 0;
  std::size_t scenarios_with_degrades = 0;
  std::size_t scenarios_with_migrations = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const Scenario s = RandomScenario(seed);
    const FleetStats stats = RunScenario(s);

    EXPECT_EQ(stats.submitted, s.trace.size()) << "seed " << seed;
    EXPECT_EQ(stats.completed + stats.dropped + stats.rejected_requests +
                  stats.lost_requests,
              stats.submitted + stats.retried_requests)
        << "seed " << seed << ": completed=" << stats.completed
        << " dropped=" << stats.dropped
        << " rejected=" << stats.rejected_requests
        << " lost=" << stats.lost_requests
        << " submitted=" << stats.submitted
        << " retried=" << stats.retried_requests
        << " prefix_hits=" << stats.prefix_hits;
    EXPECT_EQ(stats.lost_requests,
              stats.retried_requests + stats.retries_exhausted)
        << "seed " << seed;
    EXPECT_EQ(stats.disagg.in_migration, 0u) << "seed " << seed;
    // Degradation alone never wastes tokens — only kills do.
    if (stats.killed_replicas == 0) {
      EXPECT_DOUBLE_EQ(stats.wasted_tokens, 0.0) << "seed " << seed;
    }
    // Savings are bounded by what was actually prompted.
    EXPECT_GE(stats.prefill_tokens_saved, 0.0) << "seed " << seed;

    if (stats.prefix_hits > 0) ++scenarios_with_hits;
    if (stats.lost_requests > 0) ++scenarios_with_losses;
    if (stats.degraded_replicas > 0) ++scenarios_with_degrades;
    if (stats.disagg.migrated_requests > 0) ++scenarios_with_migrations;
  }
  // Each regime must actually occur or the suite lost its teeth.
  EXPECT_GT(scenarios_with_hits, 10u);
  EXPECT_GT(scenarios_with_losses, 5u);
  EXPECT_GT(scenarios_with_degrades, 20u);
  EXPECT_GT(scenarios_with_migrations, 5u);
  std::printf(
      "prefix chaos: %zu/40 hit prefixes, %zu/40 lost work, %zu/40 "
      "degraded, %zu/40 migrated\n",
      scenarios_with_hits, scenarios_with_losses, scenarios_with_degrades,
      scenarios_with_migrations);
}

TEST(PrefixChaosTest, DeterministicUnderPrefixDegradeChaos) {
  const Scenario s = RandomScenario(11);
  const FleetStats a = RunScenario(s);
  const FleetStats b = RunScenario(s);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.lost_requests, b.lost_requests);
  EXPECT_EQ(a.retried_requests, b.retried_requests);
  EXPECT_EQ(a.prefix_hits, b.prefix_hits);
  EXPECT_EQ(a.degraded_replicas, b.degraded_replicas);
  EXPECT_DOUBLE_EQ(a.prefill_tokens_saved, b.prefill_tokens_saved);
  EXPECT_DOUBLE_EQ(a.wasted_tokens, b.wasted_tokens);
  EXPECT_DOUBLE_EQ(a.ttft.p99, b.ttft.p99);
  EXPECT_DOUBLE_EQ(a.span_seconds, b.span_seconds);
}

TEST(PrefixChaosTest, DegradedReplicaSlowsButLosesNothing) {
  // One replica, degraded 2x up front: everything completes — later.
  serving::TraceConfig config;
  config.arrival_rate_per_s = 20.0;
  config.count = 30;
  config.prompt_min = 256;
  config.prompt_max = 1024;
  config.output_min = 32;
  config.output_max = 96;
  const auto trace = serving::GenerateTrace(config, 5);

  const auto run = [&](double slowdown) {
    ClusterSimulator sim(RoutePolicy::kLeastOutstanding);
    sim.AddReplica(ChaosReplica(ReplicaRole::kUnified, 1024));
    if (slowdown > 1.0) {
      EXPECT_TRUE(sim.DegradeReplica(0, slowdown));
    }
    return sim.Run(trace);
  };
  const FleetStats fast = run(1.0);
  const FleetStats slow = run(2.0);
  EXPECT_EQ(slow.completed, fast.completed);
  EXPECT_EQ(slow.completed, trace.size());
  EXPECT_EQ(slow.degraded_replicas, 1u);
  EXPECT_EQ(fast.degraded_replicas, 0u);
  EXPECT_GT(slow.span_seconds, fast.span_seconds);
  EXPECT_GT(slow.ttft.p99, fast.ttft.p99);

  // Unknown and inactive replicas are rejected.
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding);
  sim.AddReplica(ChaosReplica(ReplicaRole::kUnified, 256));
  EXPECT_FALSE(sim.DegradeReplica(5, 2.0));
}

}  // namespace
}  // namespace liquid::cluster
