// Parallel runtime equivalence: the work-stealing execution mode
// (ClusterSimulator::SetThreads > 1) must reproduce the single-threaded
// oracle EXACTLY — not statistically.  Replica step work shares no mutable
// state and every cross-replica phase (routing, migration landings,
// autoscale ticks, chaos events, harvest) runs serialized in replica-index
// order, so for any scenario — kills, degradations, KV migrations,
// autoscaling, SLO shedding — every counter and every percentile must match
// bit for bit at any thread count.
//
// The suite drives randomized chaos scenarios (same generator family as
// chaos_property_test) plus a disaggregated fleet at 2/4/8 threads against
// the serial run, and pins the telemetry contract: the merged per-replica
// trace shards are deterministic across thread counts >= 2 and across
// repeat runs.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "obs/trace_recorder.hpp"
#include "serving/workload.hpp"
#include "util/rng.hpp"

namespace liquid::cluster {
namespace {

ReplicaSpec Replica(std::size_t pool_blocks,
                    ReplicaRole role = ReplicaRole::kUnified) {
  ReplicaSpec spec;
  spec.hw = simgpu::HardwareSpec::H800();
  spec.preset = serving::SystemPreset::LiquidServe();
  spec.model = serving::LlmConfig::Llama2_7B();
  spec.kv_pool_blocks = pool_blocks;
  spec.block_tokens = 16;
  spec.max_batch = 16;
  spec.role = role;
  if (role == ReplicaRole::kPrefill) spec.options.prefill_chunk_tokens = 1024;
  spec.dollars_per_hour = 2.5;
  return spec;
}

struct Scenario {
  RoutePolicy policy = RoutePolicy::kLeastOutstanding;
  AutoscaleConfig autoscale;
  SloConfig slo;
  std::size_t replicas = 2;
  std::size_t pool_blocks = 128;
  std::vector<serving::TimedRequest> trace;
  std::vector<KillEvent> kills;
  std::vector<DegradeEvent> degrades;
};

/// Random chaos scenario: kills AND partial degradations active, half with
/// autoscaling, half with SLO admission control — the full serial event
/// pump, so the parallel runtime is compared where every barrier matters.
Scenario RandomScenario(std::uint64_t seed) {
  Rng rng(seed);
  Scenario s;
  const RoutePolicy policies[] = {
      RoutePolicy::kRoundRobin, RoutePolicy::kLeastOutstanding,
      RoutePolicy::kLeastKvLoad, RoutePolicy::kSessionAffinity};
  s.policy = policies[rng.Below(4)];
  s.replicas = 2 + static_cast<std::size_t>(rng.Below(3));  // 2..4
  s.pool_blocks = 64 + static_cast<std::size_t>(rng.Below(3)) * 64;
  if (rng.NextDouble() < 0.5) {
    s.autoscale.enabled = true;
    s.autoscale.signal = rng.NextDouble() < 0.5 ? AutoscaleSignal::kQueueDepth
                                                : AutoscaleSignal::kTailTtft;
    s.autoscale.queue_high = rng.Uniform(3.0, 10.0);
    s.autoscale.queue_low = rng.Uniform(0.1, 1.0);
    s.autoscale.ttft_p99_high = rng.Uniform(0.5, 3.0);
    s.autoscale.ttft_p99_low = rng.Uniform(0.01, 0.2);
    s.autoscale.window_seconds = rng.Uniform(2.0, 15.0);
    s.autoscale.max_replicas = 6;
    s.autoscale.cooldown_seconds = rng.Uniform(0.0, 1.0);
  }
  if (rng.NextDouble() < 0.5) {
    s.slo.ttft_budget = rng.Uniform(0.1, 2.0);
    s.slo.reject_above = rng.Uniform(1.0, 2.0);
  }
  serving::TraceConfig trace;
  trace.arrival_rate_per_s = rng.Uniform(20.0, 150.0);
  trace.count = 60 + static_cast<std::size_t>(rng.Below(80));
  trace.prompt_min = 128;
  trace.prompt_max = 1024 + static_cast<std::size_t>(rng.Below(1536));
  trace.output_min = 32;
  trace.output_max = 192;
  trace.sessions = 8;
  s.trace = serving::GenerateTrace(trace, seed ^ 0xC0FFEEull);
  const double span =
      s.trace.empty() ? 1.0 : s.trace.back().arrival_seconds + 1.0;
  const std::size_t kills = 1 + rng.Below(2);
  for (std::size_t k = 0; k < kills; ++k) {
    s.kills.push_back({rng.Uniform(0.05, span * 1.2), rng.Below(s.replicas)});
  }
  const std::size_t degrades = 1 + rng.Below(2);
  for (std::size_t d = 0; d < degrades; ++d) {
    s.degrades.push_back({rng.Uniform(0.05, span), rng.Below(s.replicas),
                          rng.Uniform(1.5, 4.0)});
  }
  return s;
}

FleetStats RunScenario(const Scenario& s, std::size_t threads,
                       obs::TraceRecorder* trace = nullptr) {
  ClusterSimulator sim(s.policy, s.autoscale, s.slo);
  sim.SetThreads(threads);
  for (std::size_t i = 0; i < s.replicas; ++i) {
    sim.AddReplica(Replica(s.pool_blocks));
  }
  for (const KillEvent& kill : s.kills) sim.ScheduleKill(kill);
  for (const DegradeEvent& d : s.degrades) sim.ScheduleDegrade(d);
  if (trace != nullptr) sim.AttachTelemetry(trace, nullptr);
  return sim.Run(s.trace);
}

void ExpectExactMatch(const FleetStats& par, const FleetStats& ser,
                      const std::string& label) {
  // Deterministic counters: exact.
  EXPECT_EQ(par.submitted, ser.submitted) << label;
  EXPECT_EQ(par.completed, ser.completed) << label;
  EXPECT_EQ(par.dropped, ser.dropped) << label;
  EXPECT_EQ(par.preemptions, ser.preemptions) << label;
  EXPECT_EQ(par.rerouted, ser.rerouted) << label;
  EXPECT_EQ(par.scale_ups, ser.scale_ups) << label;
  EXPECT_EQ(par.scale_downs, ser.scale_downs) << label;
  EXPECT_EQ(par.replicas_final, ser.replicas_final) << label;
  EXPECT_EQ(par.killed_replicas, ser.killed_replicas) << label;
  EXPECT_EQ(par.lost_requests, ser.lost_requests) << label;
  EXPECT_EQ(par.retried_requests, ser.retried_requests) << label;
  EXPECT_EQ(par.rejected_requests, ser.rejected_requests) << label;
  EXPECT_EQ(par.degraded_replicas, ser.degraded_replicas) << label;
  EXPECT_EQ(par.prefix_hits, ser.prefix_hits) << label;
  EXPECT_EQ(par.disagg.prefill_handoffs, ser.disagg.prefill_handoffs) << label;
  EXPECT_EQ(par.disagg.migrated_requests, ser.disagg.migrated_requests)
      << label;
  EXPECT_EQ(par.disagg.local_decode_fallbacks,
            ser.disagg.local_decode_fallbacks)
      << label;
  EXPECT_EQ(par.disagg.import_ooms, ser.disagg.import_ooms) << label;
  EXPECT_EQ(par.sim_throughput.events_processed,
            ser.sim_throughput.events_processed)
      << label;
  EXPECT_EQ(par.sim_throughput.engine_iterations,
            ser.sim_throughput.engine_iterations)
      << label;
  EXPECT_EQ(par.sim_throughput.fleet_events, ser.sim_throughput.fleet_events)
      << label;
  // Simulated-time quantities: bit-exact too — the parallel mode runs the
  // SAME floating-point operations per replica in the same order, only on a
  // different thread.  (The issue asked for statistical tolerance; the
  // implementation delivers the stronger guarantee, so pin it.)
  EXPECT_EQ(par.span_seconds, ser.span_seconds) << label;
  EXPECT_EQ(par.generated_tokens, ser.generated_tokens) << label;
  EXPECT_EQ(par.wasted_tokens, ser.wasted_tokens) << label;
  EXPECT_EQ(par.cost_dollars, ser.cost_dollars) << label;
  EXPECT_EQ(par.ttft.p50, ser.ttft.p50) << label;
  EXPECT_EQ(par.ttft.p95, ser.ttft.p95) << label;
  EXPECT_EQ(par.ttft.p99, ser.ttft.p99) << label;
  EXPECT_EQ(par.tpot.p50, ser.tpot.p50) << label;
  EXPECT_EQ(par.tpot.p99, ser.tpot.p99) << label;
  EXPECT_EQ(par.e2e.p50, ser.e2e.p50) << label;
  EXPECT_EQ(par.e2e.p99, ser.e2e.p99) << label;
  EXPECT_EQ(par.sim_throughput.sim_seconds, ser.sim_throughput.sim_seconds)
      << label;
  // Scale-event sequences (order matters) and per-replica outcomes.
  ASSERT_EQ(par.scale_events.size(), ser.scale_events.size()) << label;
  for (std::size_t i = 0; i < par.scale_events.size(); ++i) {
    EXPECT_EQ(par.scale_events[i].time, ser.scale_events[i].time) << label;
    EXPECT_EQ(par.scale_events[i].up, ser.scale_events[i].up) << label;
    EXPECT_EQ(par.scale_events[i].replica, ser.scale_events[i].replica)
        << label;
  }
  ASSERT_EQ(par.replicas.size(), ser.replicas.size()) << label;
  for (std::size_t i = 0; i < par.replicas.size(); ++i) {
    EXPECT_EQ(par.replicas[i].submitted, ser.replicas[i].submitted) << label;
    EXPECT_EQ(par.replicas[i].killed, ser.replicas[i].killed) << label;
    EXPECT_EQ(par.replicas[i].active, ser.replicas[i].active) << label;
    EXPECT_EQ(par.replicas[i].stats.completed, ser.replicas[i].stats.completed)
        << label;
  }
}

void ExpectConservation(const FleetStats& stats, const std::string& label) {
  EXPECT_EQ(stats.completed + stats.dropped + stats.rejected_requests +
                stats.lost_requests,
            stats.submitted + stats.retried_requests)
      << label;
}

TEST(ParallelEquivalenceTest, ChaosScenariosMatchSerialOracle) {
  // 12 random chaos scenarios (kills + degradations + autoscale + SLO), each
  // at 2, 4 and 8 worker threads against the single-threaded oracle.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Scenario s = RandomScenario(seed);
    const FleetStats oracle = RunScenario(s, 1);
    ExpectConservation(oracle, "seed " + std::to_string(seed) + " serial");
    for (const std::size_t threads : {2u, 4u, 8u}) {
      const std::string label =
          "seed " + std::to_string(seed) + " threads " +
          std::to_string(threads);
      const FleetStats par = RunScenario(s, threads);
      ExpectConservation(par, label);
      ExpectExactMatch(par, oracle, label);
    }
  }
}

TEST(ParallelEquivalenceTest, DisaggFleetMatchesSerialOracle) {
  // Prefill/decode split with KV migrations in flight — the cross-replica
  // interaction the serial phases must keep ordered.
  serving::TraceConfig config;
  config.arrival_rate_per_s = 90.0;
  config.count = 150;
  config.prompt_min = 256;
  config.prompt_max = 2048;
  config.output_min = 32;
  config.output_max = 128;
  config.sessions = 16;
  const auto trace = serving::GenerateTrace(config, 7);

  const auto run = [&trace](std::size_t threads) {
    DisaggConfig disagg;
    disagg.interconnect.bandwidth_gb_per_s = 200.0;
    disagg.max_migration_seconds = 0.5;
    ClusterSimulator sim(RoutePolicy::kLeastOutstanding, {}, {}, {}, disagg);
    sim.SetThreads(threads);
    for (int i = 0; i < 2; ++i) {
      sim.AddReplica(Replica(2048, ReplicaRole::kPrefill));
    }
    for (int i = 0; i < 3; ++i) {
      sim.AddReplica(Replica(2048, ReplicaRole::kDecode));
    }
    sim.ScheduleKill({trace[trace.size() / 2].arrival_seconds, 3});
    return sim.Run(trace);
  };

  const FleetStats oracle = run(1);
  EXPECT_GT(oracle.disagg.migrated_requests, 0u);
  for (const std::size_t threads : {2u, 4u}) {
    ExpectExactMatch(run(threads), oracle,
                     "disagg threads " + std::to_string(threads));
  }
}

TEST(ParallelEquivalenceTest, MergedTraceIsDeterministicAcrossThreadCounts) {
  // Telemetry contract: per-replica shards merged at end of run yield an
  // identical byte stream for any thread count >= 2 and on repeat runs; the
  // event COUNT also matches the threads=1 stream (same simulated events,
  // possibly different interleave of equal-time records).
  const Scenario s = RandomScenario(5);

  obs::TraceRecorder serial;
  RunScenario(s, 1, &serial);
  ASSERT_GT(serial.size(), 0u);

  obs::TraceRecorder t2a;
  RunScenario(s, 2, &t2a);
  obs::TraceRecorder t2b;
  RunScenario(s, 2, &t2b);
  obs::TraceRecorder t4;
  RunScenario(s, 4, &t4);

  EXPECT_EQ(t2a.size(), serial.size());
  const std::string json2a = t2a.ToChromeTraceJson();
  EXPECT_EQ(json2a, t2b.ToChromeTraceJson()) << "repeat run at 2 threads";
  EXPECT_EQ(json2a, t4.ToChromeTraceJson()) << "2 threads vs 4 threads";
}

TEST(ParallelEquivalenceTest, ThreadsOneIsTheLegacyLoop) {
  // threads=1 (and SetThreads(1) called explicitly) must be byte-identical
  // to a simulator never touched by SetThreads — the golden-pinning path.
  const Scenario s = RandomScenario(3);

  obs::TraceRecorder untouched;
  {
    ClusterSimulator sim(s.policy, s.autoscale, s.slo);
    for (std::size_t i = 0; i < s.replicas; ++i) {
      sim.AddReplica(Replica(s.pool_blocks));
    }
    for (const KillEvent& kill : s.kills) sim.ScheduleKill(kill);
    for (const DegradeEvent& d : s.degrades) sim.ScheduleDegrade(d);
    sim.AttachTelemetry(&untouched, nullptr);
    sim.Run(s.trace);
  }
  obs::TraceRecorder explicit_one;
  const FleetStats one = RunScenario(s, 1, &explicit_one);
  EXPECT_EQ(one.sim_throughput.threads, 1u);
  EXPECT_EQ(explicit_one.ToChromeTraceJson(), untouched.ToChromeTraceJson());
}

}  // namespace
}  // namespace liquid::cluster
