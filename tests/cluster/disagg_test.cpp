// Disaggregated prefill/decode serving: role-aware routing, KV migration
// end-to-end through the cluster simulator, graceful fallback to unified
// serving (dead pools, unusable interconnect), retry budget/backoff, and the
// extended conservation invariant.

#include <gtest/gtest.h>

#include "cluster/cluster_sim.hpp"
#include "serving/workload.hpp"

namespace liquid::cluster {
namespace {

ReplicaSpec DisaggReplica(ReplicaRole role, std::size_t pool_blocks = 512) {
  ReplicaSpec spec;
  spec.hw = simgpu::HardwareSpec::H800();
  spec.preset = serving::SystemPreset::LiquidServe();
  spec.model = serving::LlmConfig::Llama2_7B();
  spec.kv_pool_blocks = pool_blocks;
  spec.block_tokens = 16;
  spec.max_batch = 16;
  spec.role = role;
  return spec;
}

std::vector<serving::TimedRequest> LongPromptTrace(std::size_t count,
                                                   std::uint64_t seed,
                                                   double rate = 30.0) {
  serving::TraceConfig config;
  config.arrival_rate_per_s = rate;
  config.count = count;
  config.prompt_min = 512;
  config.prompt_max = 2048;
  config.output_min = 32;
  config.output_max = 128;
  config.sessions = 8;
  return serving::GenerateTrace(config, seed);
}

void ExpectConservation(const FleetStats& s) {
  EXPECT_EQ(s.completed + s.dropped + s.rejected_requests + s.lost_requests,
            s.submitted + s.retried_requests)
      << "completed=" << s.completed << " dropped=" << s.dropped
      << " rejected=" << s.rejected_requests << " lost=" << s.lost_requests
      << " submitted=" << s.submitted << " retried=" << s.retried_requests;
  EXPECT_EQ(s.lost_requests, s.retried_requests + s.retries_exhausted);
  EXPECT_EQ(s.disagg.in_migration, 0u);  // nothing left on the wire
}

TEST(DisaggTest, PromptsPrefillThenMigrateAndComplete) {
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding);
  sim.AddReplica(DisaggReplica(ReplicaRole::kPrefill));
  sim.AddReplica(DisaggReplica(ReplicaRole::kPrefill));
  sim.AddReplica(DisaggReplica(ReplicaRole::kDecode));
  sim.AddReplica(DisaggReplica(ReplicaRole::kDecode));
  EXPECT_TRUE(sim.router().role_aware());

  const auto trace = LongPromptTrace(40, 11);
  const FleetStats s = sim.Run(trace);
  ExpectConservation(s);
  EXPECT_EQ(s.submitted, 40u);
  EXPECT_EQ(s.completed, 40u);
  EXPECT_EQ(s.disagg.prefill_replicas, 2u);
  EXPECT_EQ(s.disagg.decode_replicas, 2u);
  // Every prompt prefilled on the prefill pool and migrated across.
  EXPECT_EQ(s.disagg.prefill_handoffs, 40u);
  EXPECT_EQ(s.disagg.migrated_requests, 40u);
  EXPECT_GT(s.disagg.migrated_kv_bytes, 0.0);
  EXPECT_GT(s.disagg.migration_seconds.p50, 0.0);
  // Prefill replicas never complete a multi-token request; decode replicas
  // never prefill-handoff.
  EXPECT_EQ(s.replicas[0].stats.prefill_handoffs +
                s.replicas[1].stats.prefill_handoffs,
            40u);
  EXPECT_EQ(s.replicas[0].stats.completed + s.replicas[1].stats.completed,
            0u);
  EXPECT_EQ(s.replicas[2].stats.completed + s.replicas[3].stats.completed,
            40u);
  EXPECT_EQ(s.replicas[2].stats.prefill_handoffs, 0u);
  EXPECT_EQ(s.replicas[3].stats.prefill_handoffs, 0u);
}

TEST(DisaggTest, UnusableInterconnectFallsBackToUnifiedServing) {
  DisaggConfig disagg;
  disagg.interconnect.bandwidth_gb_per_s = 0;  // bandwidth → 0
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding, {}, {}, {}, disagg);
  sim.AddReplica(DisaggReplica(ReplicaRole::kPrefill));
  sim.AddReplica(DisaggReplica(ReplicaRole::kDecode));
  // Roles are configured, but with no way to move KV the router must treat
  // the fleet as unified.
  EXPECT_FALSE(sim.router().role_aware());

  const auto trace = LongPromptTrace(30, 5);
  const FleetStats s = sim.Run(trace);
  ExpectConservation(s);
  EXPECT_EQ(s.completed, 30u);
  EXPECT_EQ(s.disagg.migrated_requests, 0u);
  EXPECT_EQ(s.disagg.prefill_handoffs, 0u);
  // Both replicas served prompts end-to-end.
  EXPECT_GT(s.replicas[0].stats.completed, 0u);
  EXPECT_GT(s.replicas[1].stats.completed, 0u);
}

TEST(DisaggTest, MigrationBudgetBustDecodesLocally) {
  DisaggConfig disagg;
  disagg.interconnect.bandwidth_gb_per_s = 0.05;  // ~glacial link
  disagg.interconnect.prefill_overlap = 0;
  disagg.max_migration_seconds = 0.01;  // nothing fits this stall budget
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding, {}, {}, {}, disagg);
  sim.AddReplica(DisaggReplica(ReplicaRole::kPrefill));
  sim.AddReplica(DisaggReplica(ReplicaRole::kDecode));

  const auto trace = LongPromptTrace(25, 7, /*rate=*/10.0);
  const FleetStats s = sim.Run(trace);
  ExpectConservation(s);
  EXPECT_EQ(s.completed, 25u);
  // Every handoff bailed to local decode: unified-per-request degradation.
  EXPECT_EQ(s.disagg.prefill_handoffs, 25u);
  EXPECT_EQ(s.disagg.migrated_requests, 0u);
  EXPECT_EQ(s.disagg.local_decode_fallbacks, 25u);
  // The prefill replica did all the decoding too.
  EXPECT_EQ(s.replicas[0].stats.completed, 25u);
  EXPECT_EQ(s.replicas[1].stats.completed, 0u);
}

TEST(DisaggTest, DeadDecodePoolDecodesLocally) {
  DisaggConfig disagg;
  disagg.interconnect.bandwidth_gb_per_s = 400.0;
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding, {}, {}, {}, disagg);
  sim.AddReplica(DisaggReplica(ReplicaRole::kPrefill));
  sim.AddReplica(DisaggReplica(ReplicaRole::kDecode));
  // The decode pool dies before any arrival.
  sim.ScheduleKill({0.0, 1});

  const auto trace = LongPromptTrace(20, 3, /*rate=*/10.0);
  const FleetStats s = sim.Run(trace);
  ExpectConservation(s);
  EXPECT_EQ(s.killed_replicas, 1u);
  EXPECT_EQ(s.completed, 20u);
  EXPECT_EQ(s.disagg.migrated_requests, 0u);
  EXPECT_EQ(s.disagg.local_decode_fallbacks, 20u);
  EXPECT_EQ(s.replicas[0].stats.completed, 20u);
}

TEST(DisaggTest, TargetDeathMidTransferReentersRetryPath) {
  DisaggConfig disagg;
  // Slow enough that transfers are visibly in flight, with a budget loose
  // enough to keep migrating anyway.
  disagg.interconnect.bandwidth_gb_per_s = 2.0;
  disagg.interconnect.prefill_overlap = 0;
  disagg.interconnect.max_inflight_per_link = 64;
  disagg.max_migration_seconds = 10.0;
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding, {}, {}, {}, disagg);
  sim.AddReplica(DisaggReplica(ReplicaRole::kPrefill, 2048));
  sim.AddReplica(DisaggReplica(ReplicaRole::kDecode, 2048));

  const auto trace = LongPromptTrace(30, 13, /*rate=*/25.0);
  // Kill the decode replica mid-run: transfers headed there are lost.
  sim.ScheduleKill({trace[trace.size() / 2].arrival_seconds, 1});
  const FleetStats s = sim.Run(trace);
  ExpectConservation(s);
  EXPECT_EQ(s.killed_replicas, 1u);
  EXPECT_GT(s.disagg.target_deaths, 0u);
  EXPECT_GT(s.lost_requests, 0u);
  // Retries land back on the prefill replica, which decodes locally now
  // that the decode pool is gone — nothing is stranded.
  EXPECT_EQ(s.completed, s.submitted);
}

TEST(DisaggTest, GracefulScaleDownLosesNothingMidMigration) {
  // Aggressive queue-depth scale-down shrinks the fleet while transfers are
  // in flight; graceful removal must re-plan inbound migrations (or decode
  // locally at the source), never spend them as losses or retries.
  AutoscaleConfig autoscale;
  autoscale.enabled = true;
  autoscale.signal = AutoscaleSignal::kQueueDepth;
  autoscale.queue_high = 1e9;  // never scale up
  autoscale.queue_low = 2.0;   // shed replicas eagerly
  autoscale.min_replicas = 2;
  autoscale.cooldown_seconds = 0.1;
  DisaggConfig disagg;
  disagg.interconnect.bandwidth_gb_per_s = 2.0;  // transfers visibly fly
  disagg.interconnect.prefill_overlap = 0;
  disagg.interconnect.max_inflight_per_link = 64;
  disagg.max_migration_seconds = 10.0;
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding, autoscale, {}, {},
                       disagg);
  sim.AddReplica(DisaggReplica(ReplicaRole::kPrefill, 2048));
  sim.AddReplica(DisaggReplica(ReplicaRole::kDecode, 2048));
  sim.AddReplica(DisaggReplica(ReplicaRole::kDecode, 2048));
  sim.AddReplica(DisaggReplica(ReplicaRole::kDecode, 2048));

  const auto trace = LongPromptTrace(40, 29, /*rate=*/12.0);
  const FleetStats s = sim.Run(trace);
  ExpectConservation(s);
  EXPECT_GT(s.scale_downs, 0u);
  EXPECT_EQ(s.killed_replicas, 0u);
  EXPECT_EQ(s.lost_requests, 0u);       // graceful means graceful
  EXPECT_EQ(s.retries_exhausted, 0u);
  EXPECT_EQ(s.disagg.target_deaths, 0u);
  EXPECT_EQ(s.completed, s.submitted);
}

TEST(DisaggTest, RetryBudgetExhaustsInsteadOfStorming) {
  RetryPolicy retry;
  retry.max_attempts = 1;
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding, {}, {}, retry, {});
  sim.AddReplica(DisaggReplica(ReplicaRole::kUnified, 256));
  sim.AddReplica(DisaggReplica(ReplicaRole::kUnified, 256));

  serving::TraceConfig config;
  config.arrival_rate_per_s = 60.0;
  config.count = 60;
  config.prompt_min = 256;
  config.prompt_max = 1024;
  config.output_min = 64;
  config.output_max = 128;
  const auto trace = serving::GenerateTrace(config, 21);
  // Two kills in quick succession: requests retried off the first corpse
  // can die again on the second — their budget is then spent.
  const double mid = trace[trace.size() / 2].arrival_seconds;
  sim.ScheduleKill({mid, 0});
  sim.ScheduleKill({mid + 0.2, 1});
  const FleetStats s = sim.Run(trace);
  ExpectConservation(s);
  EXPECT_EQ(s.killed_replicas, 2u);
  EXPECT_GT(s.retries_exhausted, 0u);
  EXPECT_LE(s.max_retry_attempts, 1u);
}

TEST(DisaggTest, BackoffDelaysRetriesButLosesNothing) {
  RetryPolicy retry;
  retry.base_backoff_seconds = 0.25;
  ClusterSimulator sim(RoutePolicy::kLeastOutstanding, {}, {}, retry, {});
  for (int i = 0; i < 3; ++i) {
    sim.AddReplica(DisaggReplica(ReplicaRole::kUnified, 512));
  }
  serving::TraceConfig config;
  config.arrival_rate_per_s = 50.0;
  config.count = 80;
  config.prompt_min = 256;
  config.prompt_max = 1024;
  config.output_min = 64;
  config.output_max = 128;
  const auto trace = serving::GenerateTrace(config, 31);
  sim.ScheduleKill({trace[trace.size() / 2].arrival_seconds, 1});
  const FleetStats s = sim.Run(trace);
  ExpectConservation(s);
  EXPECT_GT(s.lost_requests, 0u);
  EXPECT_EQ(s.retries_exhausted, 0u);  // unlimited budget, only delayed
  EXPECT_EQ(s.completed, s.submitted);
}

TEST(DisaggTest, RoleAwareRoutingUnitChecks) {
  Router router(RoutePolicy::kLeastOutstanding);
  router.set_role_aware(true);
  std::vector<ReplicaView> views(4);
  views[0].role = ReplicaRole::kPrefill;
  views[0].outstanding = 5;
  views[1].role = ReplicaRole::kPrefill;
  views[1].outstanding = 2;
  views[2].role = ReplicaRole::kDecode;
  views[2].outstanding = 0;
  views[3].role = ReplicaRole::kUnified;
  views[3].outstanding = 0;
  serving::TimedRequest request;
  request.session = 9;

  // Prompts go to the least-loaded prefill replica — never the idle decode
  // or unified one while a prefill replica lives.
  EXPECT_EQ(router.Route(request, views), std::optional<std::size_t>(1));

  // Prefill pool dead: unified takes over; decode is still protected.
  views[0].alive = views[1].alive = false;
  EXPECT_EQ(router.Route(request, views), std::optional<std::size_t>(3));

  // Only decode replicas left: last resort, they serve prompts.
  views[3].alive = false;
  EXPECT_EQ(router.Route(request, views), std::optional<std::size_t>(2));
}

TEST(DisaggTest, RouteDecodePrefersAffinityThenFreeKv) {
  Router router(RoutePolicy::kLeastOutstanding);
  router.set_role_aware(true);
  std::vector<ReplicaView> views(3);
  views[0].role = ReplicaRole::kPrefill;
  views[0].free_kv_blocks = 1000;
  views[1].role = ReplicaRole::kDecode;
  views[1].free_kv_blocks = 50;
  views[2].role = ReplicaRole::kDecode;
  views[2].free_kv_blocks = 200;

  // First placement: most free KV among decode replicas (never prefill).
  EXPECT_EQ(router.RouteDecode(77, views, 10), std::optional<std::size_t>(2));
  // Same session sticks to its decode home even when the other has more
  // room now...
  views[1].free_kv_blocks = 500;
  EXPECT_EQ(router.RouteDecode(77, views, 10), std::optional<std::size_t>(2));
  // ...until the home cannot hold the continuation.
  EXPECT_EQ(router.RouteDecode(77, views, 300),
            std::optional<std::size_t>(1));
  // No decode-capable replica alive → caller decodes locally.
  views[1].alive = views[2].alive = false;
  EXPECT_EQ(router.RouteDecode(77, views, 10), std::nullopt);
}

}  // namespace
}  // namespace liquid::cluster
