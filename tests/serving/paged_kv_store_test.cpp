// Tests for the paged KV store with real quantized storage.

#include "serving/paged_kv_store.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace liquid::serving {
namespace {

constexpr std::size_t kHeads = 2;
constexpr std::size_t kDim = 16;
constexpr std::size_t kChannels = kHeads * kDim;

KvInt8Params UnitParams() {
  KvInt8Params p;
  p.channel_scale.assign(kChannels, 0.05f);
  return p;
}

std::vector<float> Token(Rng& rng) {
  std::vector<float> t(kChannels);
  for (auto& v : t) v = static_cast<float>(rng.Normal(0, 1.0));
  return t;
}

TEST(PagedKvStoreTest, AppendGatherRoundTrip) {
  PagedKvStore store(16, 4, kHeads, kDim, UnitParams(), UnitParams());
  ASSERT_TRUE(store.AddSequence(1));
  Rng rng(1);
  std::vector<std::vector<float>> ks, vs;
  for (int t = 0; t < 10; ++t) {  // spans 3 blocks of 4 tokens
    ks.push_back(Token(rng));
    vs.push_back(Token(rng));
    ASSERT_TRUE(store.AppendToken(1, ks.back(), vs.back()));
  }
  EXPECT_EQ(store.SequenceTokens(1), 10u);
  EXPECT_EQ(store.used_blocks(), 3u);

  std::vector<float> k_out, v_out;
  store.GatherSequence(1, k_out, v_out);
  ASSERT_EQ(k_out.size(), 10 * kChannels);
  for (int t = 0; t < 10; ++t) {
    for (std::size_t c = 0; c < kChannels; ++c) {
      // Half-step bound at scale 0.05 (values within +-6.35 representable).
      EXPECT_LE(std::fabs(k_out[t * kChannels + c] - ks[t][c]), 0.0251f);
      EXPECT_LE(std::fabs(v_out[t * kChannels + c] - vs[t][c]), 0.0251f);
    }
  }
}

TEST(PagedKvStoreTest, ReadSingleTokenMatchesGather) {
  PagedKvStore store(16, 4, kHeads, kDim, UnitParams(), UnitParams());
  ASSERT_TRUE(store.AddSequence(7));
  Rng rng(2);
  for (int t = 0; t < 6; ++t) {
    ASSERT_TRUE(store.AppendToken(7, Token(rng), Token(rng)));
  }
  std::vector<float> k_all, v_all;
  store.GatherSequence(7, k_all, v_all);
  std::vector<float> k(kChannels), v(kChannels);
  for (std::size_t t = 0; t < 6; ++t) {
    store.ReadToken(7, t, k, v);
    for (std::size_t c = 0; c < kChannels; ++c) {
      EXPECT_EQ(k[c], k_all[t * kChannels + c]);
      EXPECT_EQ(v[c], v_all[t * kChannels + c]);
    }
  }
}

TEST(PagedKvStoreTest, InterleavedSequencesStayIsolated) {
  PagedKvStore store(16, 4, kHeads, kDim, UnitParams(), UnitParams());
  ASSERT_TRUE(store.AddSequence(1));
  ASSERT_TRUE(store.AddSequence(2));
  Rng rng(3);
  std::vector<float> k1 = Token(rng), k2 = Token(rng);
  const std::vector<float> zeros(kChannels, 0.0f);
  // Interleave appends so their blocks interleave physically.
  ASSERT_TRUE(store.AppendToken(1, k1, zeros));
  ASSERT_TRUE(store.AppendToken(2, k2, zeros));
  ASSERT_TRUE(store.AppendToken(1, k1, zeros));
  std::vector<float> k(kChannels), v(kChannels);
  store.ReadToken(2, 0, k, v);
  for (std::size_t c = 0; c < kChannels; ++c) {
    EXPECT_NEAR(k[c], k2[c], 0.0251f);
  }
}

TEST(PagedKvStoreTest, OomReturnsFalseWithoutCorruption) {
  PagedKvStore store(2, 2, kHeads, kDim, UnitParams(), UnitParams());
  ASSERT_TRUE(store.AddSequence(1));
  Rng rng(4);
  const auto t = Token(rng);
  ASSERT_TRUE(store.AppendToken(1, t, t));  // block 1
  ASSERT_TRUE(store.AppendToken(1, t, t));
  ASSERT_TRUE(store.AppendToken(1, t, t));  // block 2
  ASSERT_TRUE(store.AppendToken(1, t, t));
  EXPECT_FALSE(store.AppendToken(1, t, t));  // pool exhausted
  EXPECT_EQ(store.SequenceTokens(1), 4u);
}

TEST(PagedKvStoreTest, FreeRecyclesBlocksForNewSequences) {
  PagedKvStore store(2, 2, kHeads, kDim, UnitParams(), UnitParams());
  ASSERT_TRUE(store.AddSequence(1));
  Rng rng(5);
  const auto a = Token(rng);
  ASSERT_TRUE(store.AppendToken(1, a, a));
  store.Free(1);
  EXPECT_EQ(store.used_blocks(), 0u);
  // New sequence reuses the freed block; data is freshly written.
  ASSERT_TRUE(store.AddSequence(2));
  const auto b = Token(rng);
  ASSERT_TRUE(store.AppendToken(2, b, b));
  std::vector<float> k(kChannels), v(kChannels);
  store.ReadToken(2, 0, k, v);
  for (std::size_t c = 0; c < kChannels; ++c) {
    EXPECT_NEAR(k[c], b[c], 0.0251f);
  }
}

}  // namespace
}  // namespace liquid::serving
