// Scheduler-level disaggregation hooks: prefill-only completion + KV export
// handoff, AcceptMigrated continuations (no re-prefill), ready-time gating,
// and the chunked-prefill PredictTtft credit for already-processed chunks.

#include "serving/scheduler.hpp"

#include <gtest/gtest.h>

namespace liquid::serving {
namespace {

const simgpu::HardwareSpec kH800 = simgpu::HardwareSpec::H800();

ServingEngine MakeEngine(std::size_t chunk = 0) {
  EngineOptions options;
  options.prefill_chunk_tokens = chunk;
  return ServingEngine(kH800, SystemPreset::LiquidServe(),
                       LlmConfig::Llama2_7B(), options);
}

TEST(PrefillHandoffTest, PrefillOnlyRequestExportsKvAtFirstToken) {
  const ServingEngine engine = MakeEngine();
  ContinuousBatchScheduler sched(engine, 256, 16);
  Request req;
  req.id = 42;
  req.prompt_tokens = 64;
  req.max_new_tokens = 32;
  req.prefill_only = true;
  sched.Submit(req);
  while (sched.Step()) {
  }
  // No completion — a handoff instead, with the KV gone from the pool.
  EXPECT_EQ(sched.stats().completed, 0u);
  ASSERT_EQ(sched.handoffs().size(), 1u);
  EXPECT_EQ(sched.stats().prefill_handoffs, 1u);
  const PrefillHandoff& h = sched.handoffs()[0];
  EXPECT_EQ(h.kv.id, 42u);
  EXPECT_EQ(h.kv.tokens, 65u);  // prompt + the first generated token
  EXPECT_EQ(sched.pool().used_blocks(), 0u);
  // The continuation carries the first-token timing and folded progress.
  EXPECT_EQ(h.request.prompt_tokens, 65u);
  EXPECT_EQ(h.request.max_new_tokens, 31u);
  EXPECT_EQ(h.request.progress, 1u);
  EXPECT_GE(h.request.first_token_time, 0.0);
  EXPECT_TRUE(h.request.kv_migrated);
  EXPECT_FALSE(h.request.prefill_only);
  EXPECT_DOUBLE_EQ(h.ready, h.request.first_token_time);
}

TEST(PrefillHandoffTest, PrefillOnlyWithSingleTokenBudgetCompletesNormally) {
  const ServingEngine engine = MakeEngine();
  ContinuousBatchScheduler sched(engine, 256, 16);
  Request req;
  req.id = 1;
  req.prompt_tokens = 32;
  req.max_new_tokens = 1;  // the first token IS the whole response
  req.prefill_only = true;
  sched.Submit(req);
  while (sched.Step()) {
  }
  EXPECT_EQ(sched.stats().completed, 1u);
  EXPECT_TRUE(sched.handoffs().empty());
}

TEST(PrefillHandoffTest, AcceptMigratedSkipsPrefillCharge) {
  const ServingEngine engine = MakeEngine();
  // Prefill side.
  ContinuousBatchScheduler prefill(engine, 256, 16);
  Request req;
  req.id = 7;
  req.prompt_tokens = 128;
  req.max_new_tokens = 16;
  req.prefill_only = true;
  prefill.Submit(req);
  while (prefill.Step()) {
  }
  ASSERT_EQ(prefill.handoffs().size(), 1u);
  const PrefillHandoff h = prefill.handoffs()[0];

  // Decode side: accepting the continuation must import the KV and decode
  // without recomputing the prefill.
  ContinuousBatchScheduler decode(engine, 256, 16);
  Request cont = h.request;
  cont.ready = h.ready;
  ASSERT_TRUE(decode.AcceptMigrated(cont, h.kv));
  EXPECT_EQ(decode.pool().SequenceTokens(7), 129u);
  while (decode.Step()) {
  }
  ASSERT_EQ(decode.stats().completed, 1u);
  // 15 decode steps remain; no prefill time should have been charged beyond
  // them.  Compare against serving the same remainder with a prefill: the
  // migrated path must be strictly cheaper in busy time.
  const double decode_busy = decode.stats().busy_seconds;
  ContinuousBatchScheduler fresh(engine, 256, 16);
  fresh.Submit({8, 129, 15, h.ready});
  while (fresh.Step()) {
  }
  EXPECT_LT(decode_busy, fresh.stats().busy_seconds);
  // The completion stitches end-to-end timing across both replicas.
  const RequestTiming& t = decode.completions()[0];
  EXPECT_EQ(t.generated, 16u);
  EXPECT_DOUBLE_EQ(t.first_token, h.request.first_token_time);
}

TEST(PrefillHandoffTest, ReadyTimeGatesAdmission) {
  const ServingEngine engine = MakeEngine();
  ContinuousBatchScheduler sched(engine, 256, 16);
  Request req;
  req.id = 3;
  req.prompt_tokens = 32;
  req.max_new_tokens = 4;
  req.arrival = 0.0;   // arrived long ago...
  req.ready = 5.0;     // ...but its KV lands at t=5
  sched.Submit(req);
  sched.StepUntil(1.0);
  EXPECT_EQ(sched.running(), 0u);  // not admitted before the KV exists
  while (sched.Step()) {
  }
  ASSERT_EQ(sched.stats().completed, 1u);
  EXPECT_GE(sched.completions()[0].finish, 5.0);
}

TEST(PrefillHandoffTest, ChunkedPredictTtftCreditsProcessedChunks) {
  const ServingEngine engine = MakeEngine(/*chunk=*/128);
  ContinuousBatchScheduler sched(engine, 1024, 16);
  sched.Submit({1, 1024, 8});
  // Admission is instant under chunked prefill; the prefill then advances
  // one chunk per Step.
  ASSERT_TRUE(sched.Step());
  ASSERT_EQ(sched.running(), 1u);
  double last = sched.PredictTtft(512);
  // As chunks complete, the predicted TTFT for a newcomer must fall: the
  // already-processed chunks are credited, not re-charged.
  for (int step = 0; step < 5; ++step) {
    ASSERT_TRUE(sched.Step());
    const double now = sched.PredictTtft(512);
    EXPECT_LT(now, last) << "step " << step;
    last = now;
  }
  // And strictly below charging the whole prompt again (the unfixed
  // behavior): predictor with zero credit = own prefill + full peer prefill.
  const double full_recharge =
      engine.PrefillSeconds(1, 512) + engine.PrefillSeconds(1, 1024);
  EXPECT_LT(last, full_recharge);
}

TEST(PrefillHandoffTest, ChunkedSchedulerStillCompletesEverything) {
  const ServingEngine engine = MakeEngine(/*chunk=*/256);
  ContinuousBatchScheduler sched(engine, 512, 16, /*max_batch=*/8);
  for (SeqId i = 0; i < 12; ++i) {
    sched.Submit({i, 100 + 150 * static_cast<std::size_t>(i % 4), 24});
  }
  const SchedulerStats stats = sched.RunToCompletion();
  EXPECT_EQ(stats.completed, 12u);
  EXPECT_DOUBLE_EQ(stats.generated_tokens, 12.0 * 24);
  EXPECT_EQ(sched.pool().used_blocks(), 0u);
}

}  // namespace
}  // namespace liquid::serving
