// Continuous-batching scheduler tests: admission, completion, preemption
// under KV pressure, and accounting invariants.

#include "serving/scheduler.hpp"

#include <gtest/gtest.h>

namespace liquid::serving {
namespace {

const simgpu::HardwareSpec kH800 = simgpu::HardwareSpec::H800();

ServingEngine MakeEngine() {
  return ServingEngine(kH800, SystemPreset::LiquidServe(),
                       LlmConfig::Llama2_7B());
}

TEST(SchedulerTest, CompletesAllRequests) {
  const ServingEngine engine = MakeEngine();
  ContinuousBatchScheduler sched(engine, /*blocks=*/4096, /*block_tokens=*/16);
  for (SeqId i = 0; i < 10; ++i) sched.Submit({i, 64, 32});
  const SchedulerStats stats = sched.RunToCompletion();
  EXPECT_EQ(stats.completed, 10u);
  EXPECT_DOUBLE_EQ(stats.generated_tokens, 10.0 * 32);
  EXPECT_GT(stats.simulated_seconds, 0);
  EXPECT_GT(stats.TokensPerSecond(), 0);
  EXPECT_EQ(sched.running(), 0u);
  EXPECT_EQ(sched.waiting(), 0u);
}

TEST(SchedulerTest, BatchesConcurrently) {
  const ServingEngine engine = MakeEngine();
  ContinuousBatchScheduler sched(engine, 4096, 16);
  for (SeqId i = 0; i < 16; ++i) sched.Submit({i, 32, 64});
  (void)sched.RunToCompletion();
  EXPECT_EQ(sched.stats().peak_running, 16u);
  // Iteration-level batching: far fewer iterations than sequential decode.
  EXPECT_LE(sched.stats().iterations, 70u);
}

TEST(SchedulerTest, AdmissionRespectsKvPool) {
  const ServingEngine engine = MakeEngine();
  // Pool of 8 blocks x 16 tokens; each request needs 4 blocks prompt + 1.
  ContinuousBatchScheduler sched(engine, 8, 16, /*max_batch=*/256);
  for (SeqId i = 0; i < 4; ++i) sched.Submit({i, 64, 4});
  EXPECT_TRUE(sched.Step());
  // Only 1 sequence fits (4+1 blocks of 8); the rest wait.
  EXPECT_EQ(sched.running(), 1u);
  EXPECT_EQ(sched.waiting(), 3u);
  const SchedulerStats stats = sched.RunToCompletion();
  EXPECT_EQ(stats.completed, 4u);
}

TEST(SchedulerTest, PreemptsUnderPressureAndStillFinishes) {
  const ServingEngine engine = MakeEngine();
  // Tight pool: 12 blocks x 4 tokens.  Each request peaks at 16+24 = 40
  // tokens = 10 blocks, so one fits alone but two cannot stay resident.
  ContinuousBatchScheduler sched(engine, 12, 4, 256);
  sched.Submit({0, 16, 24});
  sched.Submit({1, 16, 24});
  const SchedulerStats stats = sched.RunToCompletion();
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_GT(stats.preemptions, 0u);
  EXPECT_DOUBLE_EQ(stats.generated_tokens, 2.0 * 24);
}

TEST(SchedulerTest, ImpossibleRequestIsDroppedNotLivelocked) {
  const ServingEngine engine = MakeEngine();
  ContinuousBatchScheduler sched(engine, 4, 4, 256);  // 16-token pool
  sched.Submit({0, 64, 8});  // prompt alone needs 16 blocks
  sched.Submit({1, 8, 4});   // fits fine
  const SchedulerStats stats = sched.RunToCompletion();
  EXPECT_EQ(stats.dropped, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(SchedulerTest, MaxBatchCap) {
  const ServingEngine engine = MakeEngine();
  ContinuousBatchScheduler sched(engine, 100000, 16, /*max_batch=*/4);
  for (SeqId i = 0; i < 12; ++i) sched.Submit({i, 16, 8});
  (void)sched.Step();
  EXPECT_LE(sched.running(), 4u);
  const SchedulerStats stats = sched.RunToCompletion();
  EXPECT_EQ(stats.completed, 12u);
  EXPECT_LE(stats.peak_running, 4u);
}

TEST(SchedulerTest, NoWorkMeansStepReturnsFalse) {
  const ServingEngine engine = MakeEngine();
  ContinuousBatchScheduler sched(engine, 16, 16);
  EXPECT_FALSE(sched.Step());
}

}  // namespace
}  // namespace liquid::serving
