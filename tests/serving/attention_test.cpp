#include "serving/attention_model.hpp"

#include <gtest/gtest.h>

namespace liquid::serving {
namespace {

const simgpu::HardwareSpec kH800 = simgpu::HardwareSpec::H800();
const LlmConfig k7B = LlmConfig::Llama2_7B();

TEST(AttentionModelTest, DecodeLinearInBatchAndLength) {
  AttentionCostConfig cfg;
  const double base = DecodeAttentionSeconds(kH800, k7B, cfg, 16, 1024);
  EXPECT_NEAR(DecodeAttentionSeconds(kH800, k7B, cfg, 32, 1024), 2 * base,
              1e-12);
  EXPECT_NEAR(DecodeAttentionSeconds(kH800, k7B, cfg, 16, 2048), 2 * base,
              1e-12);
}

TEST(AttentionModelTest, KvBitsScaleDecodeCost) {
  AttentionCostConfig int8{8, 0.8, 1.15};
  AttentionCostConfig int4{4, 0.8, 1.15};
  const double t8 = DecodeAttentionSeconds(kH800, k7B, int8, 64, 1024);
  const double t4 = DecodeAttentionSeconds(kH800, k7B, int4, 64, 1024);
  EXPECT_NEAR(t8 / t4, 2.0, 1e-9);
}

TEST(AttentionModelTest, GqaReducesDecodeCost) {
  // Mistral-7B (8 KV heads) vs LLaMA2-7B (32 KV heads), same hidden size.
  AttentionCostConfig cfg;
  const double mha = DecodeAttentionSeconds(kH800, k7B, cfg, 64, 1024);
  const double gqa =
      DecodeAttentionSeconds(kH800, LlmConfig::Mistral_7B(), cfg, 64, 1024);
  EXPECT_NEAR(mha / gqa, 4.0, 1e-9);
}

TEST(AttentionModelTest, PrefillQuadraticInLength) {
  AttentionCostConfig cfg;
  const double t1 = PrefillAttentionSeconds(kH800, k7B, cfg, 8, 512);
  const double t2 = PrefillAttentionSeconds(kH800, k7B, cfg, 8, 1024);
  EXPECT_NEAR(t2 / t1, 4.0, 1e-9);
}

TEST(AttentionModelTest, EfficiencyDividesCost) {
  AttentionCostConfig fast{8, 0.9, 1.15};
  AttentionCostConfig slow{8, 0.45, 1.15};
  const double tf = DecodeAttentionSeconds(kH800, k7B, fast, 64, 1024);
  const double ts = DecodeAttentionSeconds(kH800, k7B, slow, 64, 1024);
  EXPECT_NEAR(ts / tf, 2.0, 1e-9);
}

TEST(AttentionModelTest, DecodeCostSanityMagnitude) {
  // Batch 128 x 1280 tokens of INT8 KV on LLaMA2-7B is ~43 GB -> ~15 ms at
  // H800 bandwidth * 0.8.
  AttentionCostConfig cfg{8, 0.8, 1.0};
  const double t = DecodeAttentionSeconds(kH800, k7B, cfg, 128, 1280);
  EXPECT_GT(t, 10e-3);
  EXPECT_LT(t, 25e-3);
}

}  // namespace
}  // namespace liquid::serving
