// Tests of the PagedAttention-style block manager: allocation, growth,
// fork/copy-on-write sharing, OOM behaviour, and accounting invariants.

#include "serving/kv_cache.hpp"

#include <gtest/gtest.h>

namespace liquid::serving {
namespace {

TEST(KvCacheTest, AllocatesCeilOfPromptBlocks) {
  KvBlockManager m(100, 16);
  EXPECT_TRUE(m.AddSequence(1, 33));  // 3 blocks
  EXPECT_EQ(m.used_blocks(), 3u);
  EXPECT_EQ(m.BlockTable(1).size(), 3u);
  EXPECT_EQ(m.SequenceTokens(1), 33u);
}

TEST(KvCacheTest, AppendAllocatesOnBoundary) {
  KvBlockManager m(100, 4);
  ASSERT_TRUE(m.AddSequence(1, 4));  // exactly 1 full block
  EXPECT_EQ(m.used_blocks(), 1u);
  EXPECT_TRUE(m.AppendToken(1));  // token 5 -> new block
  EXPECT_EQ(m.used_blocks(), 2u);
  EXPECT_TRUE(m.AppendToken(1));  // token 6 -> same block
  EXPECT_EQ(m.used_blocks(), 2u);
}

TEST(KvCacheTest, RejectsWhenPoolExhausted) {
  KvBlockManager m(2, 16);
  EXPECT_FALSE(m.AddSequence(1, 48));  // needs 3 > 2
  EXPECT_EQ(m.used_blocks(), 0u);      // nothing leaked
  EXPECT_TRUE(m.AddSequence(1, 32));
  EXPECT_FALSE(m.AddSequence(2, 1));
}

TEST(KvCacheTest, AppendOomLeavesStateUnchanged) {
  KvBlockManager m(1, 2);
  ASSERT_TRUE(m.AddSequence(1, 2));
  EXPECT_FALSE(m.AppendToken(1));  // would need block 2
  EXPECT_EQ(m.SequenceTokens(1), 2u);
}

TEST(KvCacheTest, FreeReturnsBlocks) {
  KvBlockManager m(10, 16);
  ASSERT_TRUE(m.AddSequence(1, 160));
  EXPECT_EQ(m.free_blocks(), 0u);
  m.Free(1);
  EXPECT_EQ(m.free_blocks(), 10u);
  EXPECT_FALSE(m.HasSequence(1));
}

TEST(KvCacheTest, ForkSharesBlocks) {
  KvBlockManager m(10, 16);
  ASSERT_TRUE(m.AddSequence(1, 32));  // 2 blocks
  ASSERT_TRUE(m.Fork(1, 2));
  EXPECT_EQ(m.used_blocks(), 2u);  // shared, not copied
  EXPECT_EQ(m.BlockTable(2), m.BlockTable(1));
  // Freeing the parent keeps the child's blocks alive.
  m.Free(1);
  EXPECT_EQ(m.used_blocks(), 2u);
  m.Free(2);
  EXPECT_EQ(m.used_blocks(), 0u);
}

TEST(KvCacheTest, CopyOnWriteOnSharedTail) {
  KvBlockManager m(10, 16);
  ASSERT_TRUE(m.AddSequence(1, 20));  // blocks: [full, 4/16]
  ASSERT_TRUE(m.Fork(1, 2));
  EXPECT_EQ(m.cow_count(), 0u);
  // Child appends into the shared partial tail -> must copy it.
  EXPECT_TRUE(m.AppendToken(2));
  EXPECT_EQ(m.cow_count(), 1u);
  EXPECT_EQ(m.used_blocks(), 3u);
  EXPECT_NE(m.BlockTable(2).back(), m.BlockTable(1).back());
  // First block still shared.
  EXPECT_EQ(m.BlockTable(2).front(), m.BlockTable(1).front());
}

TEST(KvCacheTest, ForkChainRefCounting) {
  KvBlockManager m(10, 16);
  ASSERT_TRUE(m.AddSequence(1, 16));
  ASSERT_TRUE(m.Fork(1, 2));
  ASSERT_TRUE(m.Fork(2, 3));
  EXPECT_EQ(m.used_blocks(), 1u);
  m.Free(1);
  m.Free(2);
  EXPECT_EQ(m.used_blocks(), 1u);  // seq 3 still holds it
  m.Free(3);
  EXPECT_EQ(m.used_blocks(), 0u);
}

TEST(KvCacheTest, DuplicateIdsRejected) {
  KvBlockManager m(10, 16);
  ASSERT_TRUE(m.AddSequence(1, 16));
  EXPECT_FALSE(m.AddSequence(1, 16));
  EXPECT_FALSE(m.Fork(1, 1));
  EXPECT_FALSE(m.Fork(99, 2));  // unknown parent
}

TEST(KvCacheTest, ExactFillThenDrainCycle) {
  // Property: repeated add/free cycles neither leak nor double-free.
  KvBlockManager m(64, 8);
  for (int round = 0; round < 50; ++round) {
    for (SeqId s = 0; s < 8; ++s) {
      ASSERT_TRUE(m.AddSequence(s, 64));  // 8 blocks each = full pool
    }
    EXPECT_EQ(m.free_blocks(), 0u);
    EXPECT_FALSE(m.AddSequence(100, 1));
    for (SeqId s = 0; s < 8; ++s) m.Free(s);
    EXPECT_EQ(m.free_blocks(), 64u);
  }
}

TEST(KvCacheTest, BlocksNeededHelper) {
  KvBlockManager m(1, 16);
  EXPECT_EQ(m.BlocksNeeded(0), 0u);
  EXPECT_EQ(m.BlocksNeeded(1), 1u);
  EXPECT_EQ(m.BlocksNeeded(16), 1u);
  EXPECT_EQ(m.BlocksNeeded(17), 2u);
}

}  // namespace
}  // namespace liquid::serving
