// Serving-engine tests: memory accounting, OOM behaviour (Table 1's OOM and
// batch-limit entries), breakdown structure, and the qualitative end-to-end
// relationships the paper reports.

#include "serving/engine.hpp"

#include <gtest/gtest.h>

namespace liquid::serving {
namespace {

const simgpu::HardwareSpec kH800 = simgpu::HardwareSpec::H800();

ServingEngine Make(const SystemPreset& preset, const LlmConfig& model) {
  return ServingEngine(kH800, preset, model);
}

TEST(EngineTest, WeightMemoryScalesWithPrecision) {
  const LlmConfig m = LlmConfig::Llama2_7B();
  const double fp16 = Make(SystemPreset::TrtFp16(), m).WeightMemoryBytes();
  const double w8 = Make(SystemPreset::TrtW8A8(), m).WeightMemoryBytes();
  const double w4 = Make(SystemPreset::LiquidServe(), m).WeightMemoryBytes();
  EXPECT_GT(fp16, 1.9 * w8);
  EXPECT_GT(w8, 1.7 * w4);  // 4-bit + group params + shared FP16 embeddings
  // LLaMA2-7B FP16 weights ~13.5 GB.
  EXPECT_NEAR(fp16, 13.5e9, 1.5e9);
}

TEST(EngineTest, Fp16SeventyBOoms) {
  // Table 1: TRT-FP16 on LLaMA2-70B is OOM on 80 GB (weights alone ~138 GB).
  const auto engine = Make(SystemPreset::TrtFp16(), LlmConfig::Llama2_70B());
  const auto peak = engine.PeakThroughput(1024, 512);
  EXPECT_TRUE(peak.oom);
  EXPECT_EQ(peak.batch, 0u);
}

TEST(EngineTest, Fp16MixtralOoms) {
  const auto engine = Make(SystemPreset::TrtFp16(), LlmConfig::Mixtral_8x7B());
  EXPECT_TRUE(engine.PeakThroughput(1024, 512).oom);
}

TEST(EngineTest, W8A8MixtralUnsupported) {
  const auto engine = Make(SystemPreset::TrtW8A8(), LlmConfig::Mixtral_8x7B());
  const auto peak = engine.PeakThroughput(1024, 512);
  EXPECT_FALSE(peak.supported);
}

TEST(EngineTest, QServeMixtralUnsupported) {
  const auto engine = Make(SystemPreset::QServe(), LlmConfig::Mixtral_8x7B());
  EXPECT_FALSE(engine.PeakThroughput(1024, 512).supported);
}

TEST(EngineTest, QuantizationExtendsMaxBatch) {
  // 4-bit weights leave more room for KV cache -> larger feasible batch.
  const LlmConfig m = LlmConfig::Llama2_70B();
  const auto w4 = Make(SystemPreset::LiquidServe(), m);
  const auto w8 = Make(SystemPreset::TrtW8A8(), m);
  EXPECT_GT(w4.MaxBatch(1024, 512), 2 * w8.MaxBatch(1024, 512));
}

TEST(EngineTest, MemoryGrowsMonotonicallyWithBatch) {
  const auto engine = Make(SystemPreset::LiquidServe(), LlmConfig::Llama2_7B());
  double prev = 0;
  for (std::size_t b = 1; b <= 256; b *= 2) {
    const double mem = engine.MemoryBytes({1024, 512, b});
    EXPECT_GT(mem, prev);
    prev = mem;
  }
}

TEST(EngineTest, RunProducesConsistentResult) {
  const auto engine = Make(SystemPreset::LiquidServe(), LlmConfig::Llama2_7B());
  const ServingResult r = engine.Run({1024, 512, 64});
  ASSERT_FALSE(r.oom);
  EXPECT_GT(r.tokens_per_second, 0);
  EXPECT_GT(r.prefill_seconds, 0);
  EXPECT_GT(r.decode_step_seconds, 0);
  EXPECT_NEAR(r.total_seconds,
              r.prefill_seconds + 512 * r.decode_step_seconds, 1e-9);
  EXPECT_NEAR(r.tokens_per_second, 64.0 * 512 / r.total_seconds, 1e-6);
  // Breakdown components all populated.
  EXPECT_GT(r.decode_layer.gemm, 0);
  EXPECT_GT(r.decode_layer.attention, 0);
  EXPECT_GT(r.decode_layer.others, 0);
}

TEST(EngineTest, LiquidServeBeatsLiquidServeWo) {
  // Table 1: swapping QServe's kernel into our stack costs 1.13-1.98x.
  for (const auto& model :
       {LlmConfig::Llama2_7B(), LlmConfig::Llama2_70B(), LlmConfig::Yi_34B()}) {
    const auto full = Make(SystemPreset::LiquidServe(), model)
                          .PeakThroughput(1024, 512);
    const auto wo = Make(SystemPreset::LiquidServeWo(), model)
                        .PeakThroughput(1024, 512);
    const double speedup = full.tokens_per_second / wo.tokens_per_second;
    EXPECT_GT(speedup, 1.05) << model.name;
    EXPECT_LT(speedup, 2.5) << model.name;
  }
}

TEST(EngineTest, LiquidServeBeatsQServeSystem) {
  for (const auto& model : {LlmConfig::Llama2_7B(), LlmConfig::Llama3_8B()}) {
    const auto liquid =
        Make(SystemPreset::LiquidServe(), model).PeakThroughput(1024, 512);
    const auto qserve =
        Make(SystemPreset::QServe(), model).PeakThroughput(1024, 512);
    EXPECT_GT(liquid.tokens_per_second, qserve.tokens_per_second) << model.name;
  }
}

TEST(EngineTest, LiquidServeBeatsW8A8On70B) {
  // Table 1's largest win: 3.16x over TRT-W8A8 on LLaMA2-70B (batch room).
  const LlmConfig m = LlmConfig::Llama2_70B();
  const auto liquid = Make(SystemPreset::LiquidServe(), m).PeakThroughput(1024, 512);
  const auto w8 = Make(SystemPreset::TrtW8A8(), m).PeakThroughput(1024, 512);
  const double speedup = liquid.tokens_per_second / w8.tokens_per_second;
  EXPECT_GT(speedup, 1.8);
  EXPECT_GT(liquid.batch, w8.batch);
}

TEST(EngineTest, ThroughputImprovesWithBatchInMemoryBoundRegime) {
  const auto engine = Make(SystemPreset::LiquidServe(), LlmConfig::Llama2_7B());
  const double t16 = engine.Run({1024, 512, 16}).tokens_per_second;
  const double t64 = engine.Run({1024, 512, 64}).tokens_per_second;
  EXPECT_GT(t64, t16);
}

TEST(EngineTest, DecodeStepGrowsWithKvLength) {
  const auto engine = Make(SystemPreset::LiquidServe(), LlmConfig::Llama2_7B());
  EXPECT_GT(engine.DecodeStepSeconds(64, 2048),
            engine.DecodeStepSeconds(64, 512));
}

}  // namespace
}  // namespace liquid::serving
