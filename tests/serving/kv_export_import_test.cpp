// KV export/import round-trips (the block-manager half of simulated KV
// migration): exporting must free exactly the blocks the sequence owned —
// refcount-aware for forked shared prefixes — and importing must rebuild the
// sequence with identical token count and logical block count on another
// manager, leaving both pools' accounting exact.

#include <gtest/gtest.h>

#include "serving/kv_cache.hpp"

namespace liquid::serving {
namespace {

TEST(KvExportImportTest, RoundTripPreservesTokensAndBlocks) {
  KvBlockManager src(32, 16);
  ASSERT_TRUE(src.AddSequence(7, 40));  // 3 blocks
  for (int i = 0; i < 9; ++i) ASSERT_TRUE(src.AppendToken(7));
  ASSERT_EQ(src.SequenceTokens(7), 49u);
  ASSERT_EQ(src.used_blocks(), 4u);  // ceil(49/16)

  const KvExport moved = src.Export(7);
  EXPECT_EQ(moved.id, 7u);
  EXPECT_EQ(moved.tokens, 49u);
  EXPECT_EQ(moved.blocks, 4u);
  EXPECT_EQ(src.used_blocks(), 0u);  // everything freed at the source
  EXPECT_FALSE(src.HasSequence(7));

  KvBlockManager dst(32, 16);
  ASSERT_TRUE(dst.Import(moved));
  EXPECT_EQ(dst.SequenceTokens(7), 49u);
  EXPECT_EQ(dst.used_blocks(), 4u);
  // The imported sequence behaves like any other: appends keep working.
  EXPECT_TRUE(dst.AppendToken(7));
  EXPECT_EQ(dst.SequenceTokens(7), 50u);
}

TEST(KvExportImportTest, ExportOfForkedChildPreservesParentRefcounts) {
  KvBlockManager pool(32, 16);
  ASSERT_TRUE(pool.AddSequence(1, 60));  // 4 blocks, partial tail
  const std::vector<std::size_t> parent_blocks = pool.BlockTable(1);
  ASSERT_TRUE(pool.Fork(1, 2));          // shares all 4 blocks
  EXPECT_EQ(pool.used_blocks(), 4u);

  // Child appends into the shared tail: copy-on-write gives it its own tail.
  ASSERT_TRUE(pool.AppendToken(2));
  EXPECT_EQ(pool.cow_count(), 1u);
  EXPECT_EQ(pool.used_blocks(), 5u);

  // Exporting the child must release only its CoW tail plus its references
  // on the shared blocks — the parent keeps all four blocks, intact.
  const KvExport moved = pool.Export(2);
  EXPECT_EQ(moved.tokens, 61u);
  EXPECT_EQ(moved.blocks, 4u);
  EXPECT_EQ(pool.used_blocks(), 4u);
  EXPECT_TRUE(pool.HasSequence(1));
  EXPECT_EQ(pool.BlockTable(1), parent_blocks);
  EXPECT_EQ(pool.SequenceTokens(1), 60u);

  // The parent's tail is exclusively owned again: appending must NOT trigger
  // another copy-on-write.
  ASSERT_TRUE(pool.AppendToken(1));
  EXPECT_EQ(pool.cow_count(), 1u);

  // The child materializes densely elsewhere (sharing never crosses pools).
  KvBlockManager dst(8, 16);
  ASSERT_TRUE(dst.Import(moved));
  EXPECT_EQ(dst.SequenceTokens(2), 61u);
  EXPECT_EQ(dst.used_blocks(), 4u);
}

TEST(KvExportImportTest, ExportOfParentLeavesChildAlive) {
  KvBlockManager pool(16, 16);
  ASSERT_TRUE(pool.AddSequence(1, 32));
  ASSERT_TRUE(pool.Fork(1, 2));
  const KvExport moved = pool.Export(1);
  EXPECT_EQ(moved.tokens, 32u);
  // The child still references both blocks; nothing returned to the free
  // list beyond the parent's dropped references.
  EXPECT_EQ(pool.used_blocks(), 2u);
  EXPECT_TRUE(pool.HasSequence(2));
  EXPECT_EQ(pool.SequenceTokens(2), 32u);
  EXPECT_TRUE(pool.AppendToken(2));
}

TEST(KvExportImportTest, ImportFailsCleanlyOnOomAndDuplicate) {
  KvBlockManager src(8, 16);
  ASSERT_TRUE(src.AddSequence(3, 100));  // 7 blocks
  const KvExport moved = src.Export(3);

  KvBlockManager tiny(4, 16);
  EXPECT_FALSE(tiny.Import(moved));  // 7 > 4 blocks
  EXPECT_EQ(tiny.used_blocks(), 0u);

  KvBlockManager dst(16, 16);
  ASSERT_TRUE(dst.Import(moved));
  EXPECT_FALSE(dst.Import(moved));  // id already present
  EXPECT_EQ(dst.used_blocks(), 7u);
}

TEST(KvExportImportTest, ExportOfUnknownSequenceIsEmpty) {
  KvBlockManager pool(4, 16);
  const KvExport none = pool.Export(99);
  EXPECT_EQ(none.id, 99u);
  EXPECT_EQ(none.tokens, 0u);
  EXPECT_EQ(none.blocks, 0u);
  EXPECT_EQ(pool.used_blocks(), 0u);
}

}  // namespace
}  // namespace liquid::serving
