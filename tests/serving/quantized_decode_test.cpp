// Integration: multi-step decode through the quantized paged KV store.
// A toy attention layer generates K/V per step, stores them INT8-quantized
// in paged blocks, and computes attention from the *stored* cache; the
// output must track an exact FP32 cache without divergence as the sequence
// grows — the property that lets serving systems quantize the KV cache at
// all (paper Section 6).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "serving/paged_kv_store.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace liquid::serving {
namespace {

constexpr std::size_t kHeads = 2;
constexpr std::size_t kDim = 16;
constexpr std::size_t kChannels = kHeads * kDim;
constexpr std::size_t kSteps = 48;

std::vector<float> AttentionFromCache(
    const std::vector<float>& q, const std::vector<float>& k_cache,
    const std::vector<float>& v_cache, std::size_t tokens) {
  std::vector<float> out(kChannels, 0.0f);
  const float scale = 1.0f / std::sqrt(static_cast<float>(kDim));
  for (std::size_t h = 0; h < kHeads; ++h) {
    std::vector<float> score(tokens);
    float maxs = -1e30f;
    for (std::size_t t = 0; t < tokens; ++t) {
      float dot = 0;
      for (std::size_t d = 0; d < kDim; ++d) {
        dot += q[h * kDim + d] * k_cache[t * kChannels + h * kDim + d];
      }
      score[t] = dot * scale;
      maxs = std::max(maxs, score[t]);
    }
    float denom = 0;
    for (std::size_t t = 0; t < tokens; ++t) {
      score[t] = std::exp(score[t] - maxs);
      denom += score[t];
    }
    for (std::size_t d = 0; d < kDim; ++d) {
      float acc = 0;
      for (std::size_t t = 0; t < tokens; ++t) {
        acc += score[t] / denom * v_cache[t * kChannels + h * kDim + d];
      }
      out[h * kDim + d] = acc;
    }
  }
  return out;
}

TEST(QuantizedDecodeTest, AttentionTracksExactCacheOverManySteps) {
  Rng rng(17);
  // Calibrate from a representative sample.
  std::vector<float> sample;
  for (int i = 0; i < 128; ++i) {
    for (std::size_t c = 0; c < kChannels; ++c) {
      sample.push_back(static_cast<float>(rng.Normal(0, 1.0)));
    }
  }
  const KvInt8Params params = CalibrateKvInt8(sample, kChannels, 1.3f);
  PagedKvStore store(64, 4, kHeads, kDim, params, params);
  ASSERT_TRUE(store.AddSequence(1));

  std::vector<float> exact_k, exact_v;
  double worst_err = 0;
  for (std::size_t step = 0; step < kSteps; ++step) {
    std::vector<float> k(kChannels), v(kChannels), q(kChannels);
    for (std::size_t c = 0; c < kChannels; ++c) {
      k[c] = static_cast<float>(rng.Normal(0, 1.0));
      v[c] = static_cast<float>(rng.Normal(0, 1.0));
      q[c] = static_cast<float>(rng.Normal(0, 1.0));
    }
    ASSERT_TRUE(store.AppendToken(1, k, v));
    exact_k.insert(exact_k.end(), k.begin(), k.end());
    exact_v.insert(exact_v.end(), v.begin(), v.end());

    std::vector<float> cached_k, cached_v;
    store.GatherSequence(1, cached_k, cached_v);
    const auto out_exact =
        AttentionFromCache(q, exact_k, exact_v, step + 1);
    const auto out_quant =
        AttentionFromCache(q, cached_k, cached_v, step + 1);
    worst_err = std::max(
        worst_err, RelativeFrobeniusError(out_exact, out_quant));
  }
  // INT8 KV: attention output error stays small and does NOT grow with the
  // sequence (each step's error is independent rounding, not accumulation).
  EXPECT_LT(worst_err, 0.03);
}

TEST(QuantizedDecodeTest, LongSequenceSpansManyBlocks) {
  Rng rng(18);
  KvInt8Params params;
  params.channel_scale.assign(kChannels, 0.05f);
  PagedKvStore store(64, 4, kHeads, kDim, params, params);
  ASSERT_TRUE(store.AddSequence(1));
  std::vector<float> token(kChannels, 1.0f);
  for (int t = 0; t < 200; ++t) {
    ASSERT_TRUE(store.AppendToken(1, token, token));
  }
  EXPECT_EQ(store.SequenceTokens(1), 200u);
  EXPECT_EQ(store.used_blocks(), 50u);
  std::vector<float> k(kChannels), v(kChannels);
  store.ReadToken(1, 199, k, v);
  EXPECT_NEAR(k[0], 1.0f, 0.05f);
}

}  // namespace
}  // namespace liquid::serving
