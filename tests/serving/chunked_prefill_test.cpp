// Tests for chunked prefill (EngineOptions::prefill_chunk_tokens).

#include <gtest/gtest.h>

#include "serving/engine.hpp"

namespace liquid::serving {
namespace {

ServingEngine MakeEngine(std::size_t chunk) {
  EngineOptions options;
  options.prefill_chunk_tokens = chunk;
  return ServingEngine(simgpu::HardwareSpec::H800(),
                       SystemPreset::LiquidServe(), LlmConfig::Llama2_7B(),
                       options);
}

TEST(ChunkedPrefillTest, UnchunkedWhenPromptFitsOneChunk) {
  const ServingEngine whole = MakeEngine(0);
  const ServingEngine chunked = MakeEngine(512);
  // Prompt shorter than the chunk: identical cost.
  EXPECT_DOUBLE_EQ(whole.PrefillSeconds(4, 256),
                   chunked.PrefillSeconds(4, 256));
}

TEST(ChunkedPrefillTest, ChunkingAddsCrossChunkAttention) {
  const ServingEngine whole = MakeEngine(0);
  const ServingEngine chunked = MakeEngine(256);
  const double t_whole = whole.PrefillSeconds(4, 1024);
  const double t_chunked = chunked.PrefillSeconds(4, 1024);
  // Chunked prefill is strictly slower in aggregate (extra KV re-reads)...
  EXPECT_GT(t_chunked, t_whole);
  // ...but within 2x for these sizes (the re-read is bandwidth-bound).
  EXPECT_LT(t_chunked, 2.0 * t_whole);
}

TEST(ChunkedPrefillTest, OverheadGrowsAsChunksShrink) {
  const double coarse = MakeEngine(512).PrefillSeconds(4, 2048);
  const double medium = MakeEngine(256).PrefillSeconds(4, 2048);
  const double fine = MakeEngine(128).PrefillSeconds(4, 2048);
  EXPECT_LE(coarse, medium);
  EXPECT_LE(medium, fine);
}

TEST(ChunkedPrefillTest, PartialTailChunkHandled) {
  // 1000 tokens in 256-chunks: 3 full + 232 tail; must not crash or stall.
  const double t = MakeEngine(256).PrefillSeconds(2, 1000);
  EXPECT_GT(t, 0);
  // And remains comparable to the next multiple of the chunk size.
  const double t_1024 = MakeEngine(256).PrefillSeconds(2, 1024);
  EXPECT_LT(t, t_1024);
}

TEST(ChunkedPrefillTest, RunStillConsistent) {
  const ServingEngine engine = MakeEngine(256);
  const ServingResult r = engine.Run({1024, 128, 8});
  ASSERT_FALSE(r.oom);
  EXPECT_NEAR(r.total_seconds,
              r.prefill_seconds + 128 * r.decode_step_seconds, 1e-9);
}

}  // namespace
}  // namespace liquid::serving
