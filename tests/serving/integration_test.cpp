// Integration sweep: every (model, system) pair of Table 1 through the full
// serving engine, checking structural invariants — finite positive costs,
// memory monotonicity, feasibility logic, and cross-system consistency.

#include <gtest/gtest.h>

#include <cmath>

#include "serving/engine.hpp"
#include "serving/system_preset.hpp"

namespace liquid::serving {
namespace {

struct Cell {
  std::size_t model_index;
  std::size_t system_index;
};

class Table1CellTest : public ::testing::TestWithParam<Cell> {
 protected:
  static const std::vector<LlmConfig>& Models() {
    static const auto models = LlmConfig::PaperModels();
    return models;
  }
  static const std::vector<SystemPreset>& Systems() {
    static const auto systems = SystemPreset::PaperSystems();
    return systems;
  }
};

TEST_P(Table1CellTest, RunIsWellFormed) {
  const auto& model = Models()[GetParam().model_index];
  const auto& preset = Systems()[GetParam().system_index];
  const ServingEngine engine(simgpu::HardwareSpec::H800(), preset, model);

  const ServingResult r = engine.Run({1024, 512, 8});
  if (!preset.Supports(model)) {
    EXPECT_FALSE(r.supported);
    return;
  }
  if (r.oom) {
    // OOM must be explained by the memory model.
    EXPECT_GT(engine.MemoryBytes({1024, 512, 8}), 0.0);
    return;
  }
  EXPECT_TRUE(std::isfinite(r.tokens_per_second));
  EXPECT_GT(r.tokens_per_second, 0);
  EXPECT_GT(r.prefill_seconds, 0);
  EXPECT_GT(r.decode_step_seconds, 0);
  EXPECT_GT(r.decode_layer.gemm, 0);
  EXPECT_GT(r.decode_layer.attention, 0);
  EXPECT_GE(r.memory_bytes, engine.WeightMemoryBytes());
}

TEST_P(Table1CellTest, DecodeStepMonotoneInBatch) {
  const auto& model = Models()[GetParam().model_index];
  const auto& preset = Systems()[GetParam().system_index];
  if (!preset.Supports(model)) GTEST_SKIP();
  const ServingEngine engine(simgpu::HardwareSpec::H800(), preset, model);
  double prev = 0;
  for (const std::size_t b : {1u, 8u, 64u}) {
    const double step = engine.DecodeStepSeconds(b, 1024);
    EXPECT_GE(step * 1.0000001, prev) << "batch " << b;
    prev = step;
  }
}

TEST_P(Table1CellTest, MemoryDecomposesSanely) {
  const auto& model = Models()[GetParam().model_index];
  const auto& preset = Systems()[GetParam().system_index];
  const ServingEngine engine(simgpu::HardwareSpec::H800(), preset, model);
  const double w = engine.WeightMemoryBytes();
  // Weight memory must scale with the configured weight bits (4 / 8 / 16).
  const double bits = preset.WeightBits();
  const double expected =
      model.TotalGemmWeights() * bits / 8.0 + model.EmbeddingWeights() * 2.0;
  EXPECT_NEAR(w, expected, expected * 0.1);  // quant params < 10%
  // Batch 2 costs more than batch 1 by at least one sequence of KV.
  const double m1 = engine.MemoryBytes({1024, 512, 1});
  const double m2 = engine.MemoryBytes({1024, 512, 2});
  EXPECT_GE(m2 - m1, 1536 * model.KvBytesPerToken(preset.kv_bits) * 0.99);
}

std::vector<Cell> AllCells() {
  std::vector<Cell> cells;
  for (std::size_t m = 0; m < 8; ++m) {
    for (std::size_t s = 0; s < 7; ++s) cells.push_back({m, s});
  }
  return cells;
}

INSTANTIATE_TEST_SUITE_P(AllPairs, Table1CellTest,
                         ::testing::ValuesIn(AllCells()));

TEST(ServingIntegrationTest, W4KernelsLeaveMostRoomForKv) {
  // Across every model, the W4 systems admit the largest batch.
  for (const auto& model : LlmConfig::PaperModels()) {
    const ServingEngine w4(simgpu::HardwareSpec::H800(),
                           SystemPreset::LiquidServe(), model);
    const ServingEngine fp16(simgpu::HardwareSpec::H800(),
                             SystemPreset::TrtFp16(), model);
    EXPECT_GE(w4.MaxBatch(1024, 512), fp16.MaxBatch(1024, 512)) << model.name;
  }
}

TEST(ServingIntegrationTest, GqaModelsSupportLargerBatches) {
  // LLaMA3-8B (8 KV heads) vs LLaMA2-7B (32): same system, ~4x smaller KV
  // per token -> strictly larger feasible batch despite more weights.
  const ServingEngine gqa(simgpu::HardwareSpec::H800(),
                          SystemPreset::LiquidServe(),
                          LlmConfig::Llama3_8B());
  const ServingEngine mha(simgpu::HardwareSpec::H800(),
                          SystemPreset::LiquidServe(),
                          LlmConfig::Llama2_7B());
  EXPECT_GT(gqa.MaxBatch(1024, 512, 4096), mha.MaxBatch(1024, 512, 4096));
}

}  // namespace
}  // namespace liquid::serving
