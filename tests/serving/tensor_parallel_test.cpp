#include "serving/tensor_parallel.hpp"

#include <gtest/gtest.h>

namespace liquid::serving {
namespace {

const simgpu::HardwareSpec kH800 = simgpu::HardwareSpec::H800();

TEST(TensorParallelTest, ShardDividesResources) {
  const LlmConfig m = LlmConfig::Llama2_70B();
  const LlmConfig shard = ShardModel(m, 8);
  EXPECT_EQ(shard.heads, 8);
  EXPECT_EQ(shard.kv_heads, 1);
  EXPECT_EQ(shard.ffn_intermediate, 28672 / 8);
  // Per-GPU GEMM weights are exactly 1/8 of the full model's.
  EXPECT_NEAR(shard.TotalGemmWeights(), m.TotalGemmWeights() / 8.0,
              m.TotalGemmWeights() * 1e-9);
}

TEST(TensorParallelTest, CanShardChecksDivisibility) {
  EXPECT_TRUE(CanShard(LlmConfig::Llama2_70B(), 8));
  EXPECT_TRUE(CanShard(LlmConfig::Llama2_7B(), 4));
  // Mistral: 8 KV heads; TP 16 would need replication we don't model.
  EXPECT_FALSE(CanShard(LlmConfig::Mistral_7B(), 16));
  // LLaMA2-13B has 40 heads: TP 16 does not divide.
  EXPECT_FALSE(CanShard(LlmConfig::Llama2_13B(), 16));
  EXPECT_TRUE(CanShard(LlmConfig::Llama2_13B(), 8));
}

TEST(TensorParallelTest, AllReduceScalesWithDegreeAndLink) {
  TensorParallelEngine tp2(kH800, SystemPreset::LiquidServe(),
                           LlmConfig::Llama2_7B(), 2);
  TensorParallelEngine tp8(kH800, SystemPreset::LiquidServe(),
                           LlmConfig::Llama2_70B(), 8);
  const double bytes = 1e6;
  // 2*(tp-1)/tp factor: 1.0 at tp=2, 1.75 at tp=8.
  EXPECT_NEAR(tp2.AllReduceSeconds(bytes) - 8e-6, bytes / 400e9, 1e-9);
  EXPECT_NEAR(tp8.AllReduceSeconds(bytes) - 8e-6, 1.75 * bytes / 400e9, 1e-9);
  // The H100's faster NVLink shrinks it.
  TensorParallelEngine tp8_h100(simgpu::HardwareSpec::H100(),
                                SystemPreset::LiquidServe(),
                                LlmConfig::Llama2_70B(), 8);
  EXPECT_LT(tp8_h100.AllReduceSeconds(bytes), tp8.AllReduceSeconds(bytes));
}

TEST(TensorParallelTest, Tp8MakesFp16SeventyBFeasible) {
  // Single-GPU TRT-FP16 OOMs on LLaMA2-70B (Table 1); TP8 shards fit.
  TensorParallelEngine tp(kH800, SystemPreset::TrtFp16(),
                          LlmConfig::Llama2_70B(), 8);
  const TpResult r = tp.Run({1024, 512, 32});
  EXPECT_TRUE(r.feasible);
  EXPECT_GT(r.tokens_per_second, 0);
  EXPECT_LT(r.memory_per_gpu, 80e9);
}

TEST(TensorParallelTest, ScalingEfficiencyBelowOneAndReasonable) {
  // W4A8 LLaMA2-7B fits one GPU, so TP2 pays all-reduce for less per-GPU
  // work: efficiency must be in (0.3, 1.0).
  TensorParallelEngine tp(kH800, SystemPreset::LiquidServe(),
                          LlmConfig::Llama2_7B(), 2);
  const TpResult r = tp.Run({1024, 512, 64});
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(r.scaling_efficiency, 0.3);
  EXPECT_LT(r.scaling_efficiency, 1.0);
}

TEST(TensorParallelTest, CutNvlinkHurtsScaling) {
  // The H800's 400 GB/s NVLink (vs H100's 900) lowers TP efficiency — the
  // deployment argument for single-GPU W4A8 serving on this part.
  const ServingWorkload w{1024, 512, 64};
  TensorParallelEngine h800(kH800, SystemPreset::LiquidServe(),
                            LlmConfig::Llama2_7B(), 4);
  TensorParallelEngine h100(simgpu::HardwareSpec::H100(),
                            SystemPreset::LiquidServe(),
                            LlmConfig::Llama2_7B(), 4);
  const TpResult r800 = h800.Run(w);
  const TpResult r100 = h100.Run(w);
  ASSERT_TRUE(r800.feasible);
  ASSERT_TRUE(r100.feasible);
  EXPECT_GT(r800.allreduce_seconds_per_layer,
            r100.allreduce_seconds_per_layer);
}

TEST(TensorParallelTest, InfeasibleDegreeReported) {
  TensorParallelEngine tp(kH800, SystemPreset::LiquidServe(),
                          LlmConfig::Llama2_13B(), 16);
  EXPECT_FALSE(tp.Run({1024, 512, 16}).feasible);
}

}  // namespace
}  // namespace liquid::serving
