#include "serving/workload.hpp"

#include <gtest/gtest.h>

#include "serving/scheduler.hpp"

namespace liquid::serving {
namespace {

TEST(WorkloadTest, TraceIsDeterministicAndOrdered) {
  TraceConfig cfg;
  cfg.count = 50;
  const auto a = GenerateTrace(cfg, 7);
  const auto b = GenerateTrace(cfg, 7);
  ASSERT_EQ(a.size(), 50u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival_seconds, b[i].arrival_seconds);
    EXPECT_EQ(a[i].prompt_tokens, b[i].prompt_tokens);
    if (i > 0) {
      EXPECT_GE(a[i].arrival_seconds, a[i - 1].arrival_seconds);
    }
  }
}

TEST(WorkloadTest, LengthsWithinBounds) {
  TraceConfig cfg;
  cfg.count = 200;
  cfg.prompt_min = 64;
  cfg.prompt_max = 512;
  cfg.output_min = 16;
  cfg.output_max = 128;
  for (const auto& r : GenerateTrace(cfg, 11)) {
    EXPECT_GE(r.prompt_tokens, cfg.prompt_min);
    EXPECT_LE(r.prompt_tokens, cfg.prompt_max);
    EXPECT_GE(r.max_new_tokens, cfg.output_min);
    EXPECT_LE(r.max_new_tokens, cfg.output_max);
  }
}

TEST(WorkloadTest, ArrivalRateApproximatelyRespected) {
  TraceConfig cfg;
  cfg.count = 2000;
  cfg.arrival_rate_per_s = 10.0;
  const auto trace = GenerateTrace(cfg, 3);
  const double span = trace.back().arrival_seconds;
  const double rate = static_cast<double>(cfg.count) / span;
  EXPECT_NEAR(rate, 10.0, 1.0);
}

TEST(WorkloadTest, TimingDerivedMetrics) {
  RequestTiming t;
  t.arrival = 1.0;
  t.first_token = 1.5;
  t.finish = 3.5;
  t.generated = 5;
  EXPECT_DOUBLE_EQ(t.Ttft(), 0.5);
  EXPECT_DOUBLE_EQ(t.Tpot(), 0.5);  // 4 further tokens over 2 s
  EXPECT_DOUBLE_EQ(t.EndToEnd(), 2.5);
}

TEST(WorkloadTest, SummaryPercentiles) {
  std::vector<RequestTiming> timings;
  for (int i = 1; i <= 100; ++i) {
    RequestTiming t;
    t.arrival = 0;
    t.first_token = 0.01 * i;
    t.finish = t.first_token + 1.0;
    t.generated = 11;
    timings.push_back(t);
  }
  const LatencyReport rep = SummarizeTimings(timings, 10.0);
  EXPECT_EQ(rep.count, 100u);
  EXPECT_NEAR(rep.ttft_p50, 0.505, 0.01);
  EXPECT_NEAR(rep.ttft_p99, 0.99, 0.011);
  EXPECT_NEAR(rep.tpot_p50, 0.1, 1e-9);
  EXPECT_NEAR(rep.throughput_tokens_per_s, 110.0, 1e-6);
}

TEST(WorkloadTest, SchedulerHonorsArrivals) {
  const auto hw = simgpu::HardwareSpec::H800();
  const ServingEngine engine(hw, SystemPreset::LiquidServe(),
                             LlmConfig::Llama2_7B());
  ContinuousBatchScheduler sched(engine, 4096, 16);
  // One immediate request and one far in the future.
  sched.SubmitTimed({0, 0.0, 32, 4});
  sched.SubmitTimed({1, 100.0, 32, 4});
  (void)sched.RunToCompletion();
  ASSERT_EQ(sched.completions().size(), 2u);
  const auto& late = sched.completions().back();
  EXPECT_EQ(late.id, 1u);
  // The clock fast-forwarded to its arrival; TTFT stays small.
  EXPECT_GE(late.first_token, 100.0);
  EXPECT_LT(late.Ttft(), 1.0);
}

TEST(WorkloadTest, EndToEndTraceThroughScheduler) {
  const auto hw = simgpu::HardwareSpec::H800();
  const ServingEngine engine(hw, SystemPreset::LiquidServe(),
                             LlmConfig::Llama2_7B());
  ContinuousBatchScheduler sched(engine, 8192, 16, 64);
  TraceConfig cfg;
  cfg.count = 24;
  cfg.arrival_rate_per_s = 50.0;
  cfg.prompt_min = 32;
  cfg.prompt_max = 128;
  cfg.output_min = 8;
  cfg.output_max = 32;
  for (const auto& r : GenerateTrace(cfg, 42)) sched.SubmitTimed(r);
  const SchedulerStats stats = sched.RunToCompletion();
  EXPECT_EQ(stats.completed, 24u);
  const LatencyReport rep =
      SummarizeTimings(sched.completions(), stats.simulated_seconds);
  EXPECT_EQ(rep.count, 24u);
  EXPECT_GT(rep.ttft_p50, 0);
  EXPECT_GE(rep.ttft_p99, rep.ttft_p50);
  EXPECT_GT(rep.tpot_p50, 0);
  EXPECT_GT(rep.throughput_tokens_per_s, 0);
}

}  // namespace
}  // namespace liquid::serving
