#include "serving/model_config.hpp"

#include <gtest/gtest.h>

namespace liquid::serving {
namespace {

TEST(ModelConfigTest, ParameterCountsApproximatelyMatchModelNames) {
  // GEMM + embedding weights should land near each model's nominal size.
  struct Expect {
    LlmConfig cfg;
    double billions;
    double tol;
  };
  const Expect cases[] = {
      {LlmConfig::Llama2_7B(), 6.6, 0.6},
      {LlmConfig::Llama2_13B(), 12.8, 1.0},
      {LlmConfig::Llama2_70B(), 68.0, 3.0},
      {LlmConfig::Llama1_30B(), 32.0, 2.0},
      {LlmConfig::Llama3_8B(), 7.9, 0.6},
      {LlmConfig::Mistral_7B(), 7.1, 0.5},
      {LlmConfig::Yi_34B(), 34.0, 2.0},
      {LlmConfig::Mixtral_8x7B(), 46.5, 2.5},
  };
  for (const auto& c : cases) {
    const double params =
        (c.cfg.TotalGemmWeights() + c.cfg.EmbeddingWeights()) / 1e9;
    EXPECT_NEAR(params, c.billions, c.tol) << c.cfg.name;
  }
}

TEST(ModelConfigTest, DenseLayerGemmShapes) {
  const LlmConfig m = LlmConfig::Llama2_7B();
  const auto calls = m.LayerGemms(32);
  ASSERT_EQ(calls.size(), 4u);
  // QKV fused: no GQA on LLaMA2-7B -> N = 3 * hidden.
  EXPECT_EQ(calls[0].shape.n, 3u * 4096);
  EXPECT_EQ(calls[0].shape.k, 4096u);
  EXPECT_EQ(calls[0].shape.m, 32u);
  // O projection.
  EXPECT_EQ(calls[1].shape.n, 4096u);
  // Gate+up fused.
  EXPECT_EQ(calls[2].shape.n, 2u * 11008);
  // Down.
  EXPECT_EQ(calls[3].shape.n, 4096u);
  EXPECT_EQ(calls[3].shape.k, 11008u);
  for (const auto& c : calls) EXPECT_EQ(c.grouped, 1);
}

TEST(ModelConfigTest, GqaShrinksQkv) {
  const LlmConfig m = LlmConfig::Llama2_70B();
  const auto calls = m.LayerGemms(8);
  // 8 KV heads x 128 = 1024 per K and V.
  EXPECT_EQ(calls[0].shape.n, 8192u + 2u * 1024);
}

TEST(ModelConfigTest, MoeEmitsGroupedGemms) {
  const LlmConfig m = LlmConfig::Mixtral_8x7B();
  const auto calls = m.LayerGemms(64);
  ASSERT_EQ(calls.size(), 4u);
  EXPECT_EQ(calls[2].grouped, 8);
  EXPECT_EQ(calls[3].grouped, 8);
  // 64 tokens x top-2 / 8 experts = 16 tokens per expert.
  EXPECT_EQ(calls[2].shape.m, 16u);
}

TEST(ModelConfigTest, MoeTokensPerExpertNeverZero) {
  const LlmConfig m = LlmConfig::Mixtral_8x7B();
  const auto calls = m.LayerGemms(1);
  EXPECT_GE(calls[2].shape.m, 1u);
}

TEST(ModelConfigTest, KvBytesPerToken) {
  const LlmConfig m = LlmConfig::Llama2_7B();
  // 2 (K,V) * 32 heads * 128 dim * 32 layers at 8 bits = 256 KiB per token.
  EXPECT_DOUBLE_EQ(m.KvBytesPerToken(8), 262144.0);
  // INT4 KV cache halves it.
  EXPECT_DOUBLE_EQ(m.KvBytesPerToken(4), 131072.0);
  // GQA: LLaMA2-70B has 8/64 of the heads but 80 layers.
  EXPECT_DOUBLE_EQ(LlmConfig::Llama2_70B().KvBytesPerToken(8),
                   2.0 * 8 * 128 * 80);
}

TEST(ModelConfigTest, PaperModelListComplete) {
  const auto models = LlmConfig::PaperModels();
  ASSERT_EQ(models.size(), 8u);
  EXPECT_EQ(models[0].name, "LLaMA1-30B");
  EXPECT_EQ(models[7].name, "Mixtral-8x7B");
}

}  // namespace
}  // namespace liquid::serving
