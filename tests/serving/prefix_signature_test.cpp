// Prefix-signature determinism and the fleet-wide prefix-cache index
// lifecycle: the same prompt must hash to the same blocks anywhere (that is
// what makes a cross-replica index meaningful), fork/Export/Import must
// preserve the hashes through sharing and migration, and eviction must
// decrement the index back to zero — a stale index would advertise prefill
// savings that no longer exist.

#include <gtest/gtest.h>

#include <cmath>

#include "serving/engine.hpp"
#include "serving/kv_cache.hpp"
#include "serving/scheduler.hpp"
#include "serving/workload.hpp"

namespace liquid::serving {
namespace {

TEST(PrefixSignatureTest, SamePromptSameHashesAcrossReplicas) {
  // Two "replicas" computing independently (same derivation inputs) agree on
  // every block hash — the signature is a pure function, never RNG state.
  const PrefixSignature a = MakePrefixSignature(/*content_key=*/7,
                                                /*unique_key=*/99,
                                                /*shared_tokens=*/128,
                                                /*prompt_tokens=*/300,
                                                /*block_tokens=*/16);
  const PrefixSignature b =
      MakePrefixSignature(7, 99, 128, 300, 16);
  ASSERT_EQ(a.hashes.size(), b.hashes.size());
  EXPECT_EQ(a.hashes, b.hashes);
  // ceil(300 / 16) = 19 blocks, the tail block short.
  EXPECT_EQ(a.hashes.size(), 19u);
  EXPECT_EQ(a.block_tokens, 16u);
}

TEST(PrefixSignatureTest, SharedPreambleMatchesExactlyToDivergence) {
  // Same content key, different unique keys: hashes agree for the blocks
  // fully inside the 128 shared tokens (128/16 = 8 blocks), then diverge —
  // and the rolling chain keeps them diverged forever after.
  const PrefixSignature a = MakePrefixSignature(7, 1, 128, 512, 16);
  const PrefixSignature b = MakePrefixSignature(7, 2, 128, 512, 16);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(a.hashes[i], b.hashes[i]) << "shared block " << i;
  }
  for (std::size_t i = 8; i < a.hashes.size(); ++i) {
    EXPECT_NE(a.hashes[i], b.hashes[i]) << "diverged block " << i;
  }
  // Different preambles never match, even at block 0.
  const PrefixSignature c = MakePrefixSignature(8, 1, 128, 512, 16);
  EXPECT_NE(a.hashes[0], c.hashes[0]);
}

TEST(PrefixSignatureTest, TraceSignaturesDeterministicAndSessionGrouped) {
  TraceConfig config;
  config.count = 24;
  config.sessions = 6;
  config.shared_prefix_fraction = 0.5;
  config.prefix_groups = 3;
  config.prefix_block_tokens = 16;
  const auto t1 = GenerateTrace(config, 42);
  const auto t2 = GenerateTrace(config, 42);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].prefix.hashes, t2[i].prefix.hashes) << "request " << i;
    EXPECT_FALSE(t1[i].prefix.empty());
  }
  // Requests whose sessions share a prefix group share leading hashes
  // (sessions 0 and 3 are both group 0 with prefix_groups=3).
  const TimedRequest* g0a = nullptr;
  const TimedRequest* g0b = nullptr;
  for (const TimedRequest& r : t1) {
    if (r.session == 0) g0a = &r;
    if (r.session == 3) g0b = &r;
  }
  ASSERT_NE(g0a, nullptr);
  ASSERT_NE(g0b, nullptr);
  EXPECT_EQ(g0a->prefix.hashes[0], g0b->prefix.hashes[0]);
}

TEST(PrefixSignatureTest, DisjointTracesShareNothing) {
  // shared_prefix_fraction = 0 (the default): every request is unique
  // content, so no two distinct requests agree on even one block.
  TraceConfig config;
  config.count = 16;
  config.sessions = 4;  // same sessions, still no content sharing
  const auto trace = GenerateTrace(config, 9);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    for (std::size_t j = i + 1; j < trace.size(); ++j) {
      EXPECT_NE(trace[i].prefix.hashes[0], trace[j].prefix.hashes[0]);
    }
  }
}

TEST(PrefixIndexTest, SharedPrefixBlocksIsLongestLeadingRun) {
  PrefixIndex index;
  index.Add(10);
  index.Add(20);
  index.Add(40);  // present but not contiguous with the prefix
  const std::uint64_t sig[] = {10, 20, 30, 40};
  EXPECT_EQ(index.SharedPrefixBlocks(sig), 2u);  // stops at the miss on 30
  index.Add(30);
  EXPECT_EQ(index.SharedPrefixBlocks(sig), 4u);
  EXPECT_EQ(index.SharedPrefixBlocks({}), 0u);
}

TEST(PrefixIndexTest, RegisterFreeDecrementsToZero) {
  KvBlockManager pool(/*total_blocks=*/64, /*block_tokens=*/16);
  const std::uint64_t sig[] = {1, 2, 3};
  ASSERT_TRUE(pool.AddSequence(7, 48));
  pool.RegisterPrefix(7, sig);
  EXPECT_EQ(pool.prefix_index().size(), 3u);
  EXPECT_EQ(pool.prefix_index().SharedPrefixBlocks(sig), 3u);
  // Eviction (Free) removes the registration with the blocks: the index
  // drains to exactly zero, advertising nothing stale.
  pool.Free(7);
  EXPECT_EQ(pool.prefix_index().size(), 0u);
  EXPECT_EQ(pool.prefix_index().SharedPrefixBlocks(sig), 0u);
}

TEST(PrefixIndexTest, ForkSharesHashesUntilLastHolderFrees) {
  KvBlockManager pool(64, 16);
  const std::uint64_t sig[] = {11, 22};
  ASSERT_TRUE(pool.AddSequence(1, 32));
  pool.RegisterPrefix(1, sig);
  ASSERT_TRUE(pool.Fork(1, 2));
  // Both holders reference the hashes; freeing the parent keeps them alive.
  pool.Free(1);
  EXPECT_EQ(pool.prefix_index().SharedPrefixBlocks(sig), 2u);
  pool.Free(2);
  EXPECT_EQ(pool.prefix_index().size(), 0u);
}

TEST(PrefixIndexTest, ExportImportMovesHashesBetweenPools) {
  KvBlockManager src(64, 16), dst(64, 16);
  const std::uint64_t sig[] = {5, 6, 7, 8};
  ASSERT_TRUE(src.AddSequence(9, 64));
  src.RegisterPrefix(9, sig);
  KvExport exported = src.Export(9);
  // The hashes ride the export and leave the source index with the blocks.
  EXPECT_EQ(exported.prefix_hashes.size(), 4u);
  EXPECT_EQ(src.prefix_index().size(), 0u);
  ASSERT_TRUE(dst.Import(exported));
  EXPECT_EQ(dst.prefix_index().SharedPrefixBlocks(sig), 4u);
  dst.Free(9);
  EXPECT_EQ(dst.prefix_index().size(), 0u);
}

TEST(PrefixIndexTest, ReRegisterReplacesInsteadOfLeaking) {
  KvBlockManager pool(64, 16);
  const std::uint64_t first[] = {1, 2};
  const std::uint64_t second[] = {3};
  ASSERT_TRUE(pool.AddSequence(4, 32));
  pool.RegisterPrefix(4, first);
  pool.RegisterPrefix(4, second);
  EXPECT_EQ(pool.prefix_index().size(), 1u);
  EXPECT_FALSE(pool.prefix_index().Contains(1));
  EXPECT_TRUE(pool.prefix_index().Contains(3));
}

class PrefixCreditTest : public ::testing::Test {
 protected:
  PrefixCreditTest()
      : engine_(simgpu::HardwareSpec::H800(), SystemPreset::LiquidServe(),
                LlmConfig::Llama2_7B()) {}

  static Request Req(SeqId id, std::size_t prompt,
                     const PrefixSignature& prefix,
                     std::size_t cached_blocks = 0) {
    Request r;
    r.id = id;
    r.prompt_tokens = prompt;
    r.max_new_tokens = 4;
    r.prefix = prefix;
    r.cached_prefix_blocks = cached_blocks;
    return r;
  }

  ServingEngine engine_;
};

TEST_F(PrefixCreditTest, SubmitCreditSkipsPrefillComputeWhileResident) {
  // A provider holds the 512-token preamble; the consumer arrives with the
  // credit the router computed.  Its prefill charge shrinks to the suffix.
  const PrefixSignature provider = MakePrefixSignature(1, 10, 512, 1024, 16);
  const PrefixSignature consumer = MakePrefixSignature(1, 11, 512, 1024, 16);
  ContinuousBatchScheduler cold(engine_, 256, 16);
  cold.Submit(Req(1, 1024, provider));
  const SchedulerStats cold_stats = cold.RunToCompletion();

  ContinuousBatchScheduler warm(engine_, 256, 16);
  warm.Submit(Req(1, 1024, provider));
  warm.Submit(Req(2, 1024, consumer, /*cached_blocks=*/32));
  const SchedulerStats warm_stats = warm.RunToCompletion();

  // Two prompts for less than double the cold busy time: the consumer's
  // shared 512 tokens were not re-prefilled.
  EXPECT_LT(warm_stats.busy_seconds, 2 * cold_stats.busy_seconds);
  EXPECT_EQ(warm_stats.prefix_hits, 1u);
  EXPECT_DOUBLE_EQ(warm_stats.prefill_tokens_saved, 512.0);
  EXPECT_EQ(cold_stats.prefix_hits, 0u);
}

TEST_F(PrefixCreditTest, StaleCreditIsNotHonored) {
  // The router promised 32 cached blocks, but nothing is resident by
  // admission (the holder freed): the promise is re-validated against the
  // live index and the full prefill is charged.
  const PrefixSignature sig = MakePrefixSignature(1, 2, 512, 1024, 16);
  ContinuousBatchScheduler cold(engine_, 256, 16);
  cold.Submit(Req(1, 1024, sig));
  const SchedulerStats cold_stats = cold.RunToCompletion();

  ContinuousBatchScheduler stale(engine_, 256, 16);
  stale.Submit(Req(1, 1024, sig, /*cached_blocks=*/32));
  const SchedulerStats stale_stats = stale.RunToCompletion();
  EXPECT_DOUBLE_EQ(stale_stats.busy_seconds, cold_stats.busy_seconds);
  EXPECT_EQ(stale_stats.prefix_hits, 0u);
  EXPECT_DOUBLE_EQ(stale_stats.prefill_tokens_saved, 0.0);
}

TEST_F(PrefixCreditTest, AdmissionRefreshesCreditFromLiveIndex) {
  // Two same-preamble requests routed with NO credit: the second's prefill
  // still reuses the first's resident blocks, because admission re-checks
  // the live index (the routing-time snapshot predates the first prefill).
  const PrefixSignature a = MakePrefixSignature(1, 10, 512, 1024, 16);
  const PrefixSignature b = MakePrefixSignature(1, 11, 512, 1024, 16);
  ContinuousBatchScheduler sched(engine_, 256, 16);
  sched.Submit(Req(1, 1024, a));
  sched.Submit(Req(2, 1024, b));
  const SchedulerStats stats = sched.RunToCompletion();
  EXPECT_EQ(stats.prefix_hits, 1u);  // the second request hit
  EXPECT_DOUBLE_EQ(stats.prefill_tokens_saved, 512.0);
}

TEST_F(PrefixCreditTest, FullHitStillRecomputesLastToken) {
  // Fully shared prompt content: two requests with identical signatures.
  const PrefixSignature sig = MakePrefixSignature(1, 2, 1024, 1024, 16);
  ContinuousBatchScheduler sched(engine_, 256, 16);
  sched.Submit(Req(1, 1024, sig));
  sched.Submit(Req(2, 1024, sig));
  const SchedulerStats stats = sched.RunToCompletion();
  // The second prompt is fully cached: 1023 tokens saved, the last one
  // recomputed for logits.
  EXPECT_EQ(stats.prefix_hits, 1u);
  EXPECT_DOUBLE_EQ(stats.prefill_tokens_saved, 1023.0);
  EXPECT_GT(stats.busy_seconds, 0.0);
}

TEST_F(PrefixCreditTest, PredictTtftPricesTheDiscount) {
  ContinuousBatchScheduler sched(engine_, 256, 16);
  const double cold = sched.PredictTtft(1024, 0);
  const double warm = sched.PredictTtft(1024, /*cached_prefix_tokens=*/512);
  EXPECT_LT(warm, cold);
  // The discount never inverts feasibility: an impossible prompt stays
  // impossible no matter the credit.
  EXPECT_TRUE(std::isinf(sched.PredictTtft(1 << 20, 4096)));
}

TEST_F(PrefixCreditTest, SlowdownScalesComputeAndPrediction) {
  ContinuousBatchScheduler fast(engine_, 256, 16);
  ContinuousBatchScheduler slow(engine_, 256, 16);
  slow.SetSlowdown(3.0);
  EXPECT_DOUBLE_EQ(slow.PredictTtft(512), 3.0 * fast.PredictTtft(512));

  Request r;
  r.id = 1;
  r.prompt_tokens = 512;
  r.max_new_tokens = 8;
  fast.Submit(r);
  slow.Submit(r);
  const SchedulerStats fs = fast.RunToCompletion();
  const SchedulerStats ss = slow.RunToCompletion();
  EXPECT_NEAR(ss.busy_seconds, 3.0 * fs.busy_seconds,
              1e-9 * fs.busy_seconds);
  // Degradation loses nothing: same work completes, just later.
  EXPECT_EQ(ss.completed, fs.completed);
  // Sub-1.0 factors clamp (degradation cannot speed a replica up).
  slow.SetSlowdown(0.25);
  EXPECT_DOUBLE_EQ(slow.slowdown(), 1.0);
}

}  // namespace
}  // namespace liquid::serving
