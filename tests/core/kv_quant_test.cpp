// Tests for KV-cache quantization: INT8 per-channel static and INT4
// per-token schemes, round-trip bounds, and attention-score fidelity.

#include "core/quant/kv_quant.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace liquid {
namespace {

constexpr std::size_t kHeads = 4;
constexpr std::size_t kDim = 32;
constexpr std::size_t kChannels = kHeads * kDim;

std::vector<float> RandomToken(Rng& rng, double sd = 1.0) {
  std::vector<float> t(kChannels);
  for (auto& v : t) v = static_cast<float>(rng.Normal(0, sd));
  return t;
}

TEST(KvInt8Test, CalibrationCoversSample) {
  Rng rng(1);
  std::vector<float> sample;
  for (int i = 0; i < 64; ++i) {
    const auto t = RandomToken(rng);
    sample.insert(sample.end(), t.begin(), t.end());
  }
  const KvInt8Params params = CalibrateKvInt8(sample, kChannels);
  // Every calibration value must quantize without clipping.
  for (std::size_t i = 0; i < sample.size(); ++i) {
    const float scaled = sample[i] / params.channel_scale[i % kChannels];
    EXPECT_LE(std::fabs(scaled), 127.0f);
  }
}

TEST(KvInt8Test, RoundTripWithinHalfStepForCoveredValues) {
  // Static quantization only guarantees the half-step bound for values
  // inside the calibrated range; test with a scaled-down calibration token.
  Rng rng(2);
  std::vector<float> sample;
  for (int i = 0; i < 32; ++i) {
    const auto t = RandomToken(rng);
    sample.insert(sample.end(), t.begin(), t.end());
  }
  const KvInt8Params params = CalibrateKvInt8(sample, kChannels);
  std::vector<float> token(sample.begin(), sample.begin() + kChannels);
  for (auto& v : token) v *= 0.9f;
  std::vector<std::int8_t> q(kChannels);
  std::vector<float> rec(kChannels);
  QuantizeKvInt8(token, params, q);
  DequantizeKvInt8(q, params, rec);
  for (std::size_t c = 0; c < kChannels; ++c) {
    EXPECT_LE(std::fabs(rec[c] - token[c]),
              params.channel_scale[c] * 0.5f * 1.0001f);
  }
}

TEST(KvInt8Test, OutOfRangeValuesClipSaturating) {
  KvInt8Params params;
  params.channel_scale.assign(kChannels, 0.01f);  // representable: +-1.27
  std::vector<float> token(kChannels, 5.0f);      // far out of range
  std::vector<std::int8_t> q(kChannels);
  std::vector<float> rec(kChannels);
  QuantizeKvInt8(token, params, q);
  DequantizeKvInt8(q, params, rec);
  for (std::size_t c = 0; c < kChannels; ++c) {
    EXPECT_EQ(q[c], 127);
    EXPECT_NEAR(rec[c], 1.27f, 1e-5);
  }
}

TEST(KvInt8Test, PerChannelScalesTrackChannelMagnitudes) {
  // A channel with 10x larger values gets a ~10x larger scale.
  std::vector<float> sample(kChannels * 8);
  Rng rng(3);
  for (std::size_t t = 0; t < 8; ++t) {
    for (std::size_t c = 0; c < kChannels; ++c) {
      sample[t * kChannels + c] =
          static_cast<float>(rng.Normal(0, c == 5 ? 10.0 : 1.0));
    }
  }
  const KvInt8Params params = CalibrateKvInt8(sample, kChannels);
  EXPECT_GT(params.channel_scale[5], 4.0f * params.channel_scale[6]);
}

TEST(KvInt4Test, RoundTripWithinHalfStep) {
  Rng rng(4);
  const auto token = RandomToken(rng);
  const KvInt4Token q = QuantizeKvInt4(token, kHeads, kDim);
  std::vector<float> rec(kChannels);
  DequantizeKvInt4(q, kHeads, kDim, rec);
  for (std::size_t h = 0; h < kHeads; ++h) {
    const float half_step = q.head_params[h].scale * 0.5f * 1.0001f;
    for (std::size_t d = 0; d < kDim; ++d) {
      EXPECT_LE(std::fabs(rec[h * kDim + d] - token[h * kDim + d]), half_step);
    }
  }
}

TEST(KvInt4Test, ExtremesAreExact) {
  // Asymmetric UINT4 maps the head min and max exactly onto the grid ends.
  std::vector<float> token(kChannels, 0.0f);
  token[0] = -3.0f;  // head 0 min
  token[1] = 5.0f;   // head 0 max
  const KvInt4Token q = QuantizeKvInt4(token, kHeads, kDim);
  std::vector<float> rec(kChannels);
  DequantizeKvInt4(q, kHeads, kDim, rec);
  EXPECT_NEAR(rec[0], -3.0f, 1e-5);
  EXPECT_NEAR(rec[1], 5.0f, 1e-5);
}

TEST(KvInt4Test, HalvesInt8Storage) {
  EXPECT_EQ(KvInt8BytesPerToken(kHeads, kDim), kChannels);
  EXPECT_LT(KvInt4BytesPerToken(kHeads, kDim), kChannels / 2 + kHeads * 4 + 1);
}

TEST(KvQuantTest, AttentionScoreErrorSmall) {
  // QK^T scores computed against an INT8-quantized K stay close to FP32 —
  // the property the serving attention path relies on.
  Rng rng(5);
  std::vector<float> sample;
  std::vector<std::vector<float>> keys;
  for (int i = 0; i < 64; ++i) {
    keys.push_back(RandomToken(rng));
    sample.insert(sample.end(), keys.back().begin(), keys.back().end());
  }
  const KvInt8Params params = CalibrateKvInt8(sample, kChannels);
  const auto query = RandomToken(rng);

  std::vector<float> exact, approx;
  std::vector<std::int8_t> q(kChannels);
  std::vector<float> rec(kChannels);
  for (const auto& key : keys) {
    double dot = 0;
    for (std::size_t c = 0; c < kDim; ++c) dot += query[c] * key[c];
    exact.push_back(static_cast<float>(dot));
    QuantizeKvInt8(key, params, q);
    DequantizeKvInt8(q, params, rec);
    double dot_q = 0;
    for (std::size_t c = 0; c < kDim; ++c) dot_q += query[c] * rec[c];
    approx.push_back(static_cast<float>(dot_q));
  }
  EXPECT_LT(RelativeFrobeniusError(exact, approx), 0.01);
}

TEST(KvQuantTest, Int4NoisierThanInt8) {
  Rng rng(6);
  std::vector<float> sample;
  for (int i = 0; i < 32; ++i) {
    const auto t = RandomToken(rng);
    sample.insert(sample.end(), t.begin(), t.end());
  }
  const KvInt8Params p8 = CalibrateKvInt8(sample, kChannels);
  const auto token = RandomToken(rng, 0.8);
  std::vector<std::int8_t> q8(kChannels);
  std::vector<float> rec8(kChannels), rec4(kChannels);
  QuantizeKvInt8(token, p8, q8);
  DequantizeKvInt8(q8, p8, rec8);
  const KvInt4Token q4 = QuantizeKvInt4(token, kHeads, kDim);
  DequantizeKvInt4(q4, kHeads, kDim, rec4);
  EXPECT_LT(MeanSquaredError(token, rec8), MeanSquaredError(token, rec4));
}

}  // namespace
}  // namespace liquid
