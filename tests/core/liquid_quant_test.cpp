// Tests for LiquidQuant (paper Section 4), including an *exhaustive* machine
// check of the overflow-freedom proof: every reachable (group min, group max,
// element) combination of the second level stays inside UINT8 at every
// intermediate step of Eq. 10/12.

#include "core/quant/liquid_quant.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/swar.hpp"

namespace liquid {
namespace {

MatrixF RandomWeights(std::size_t n, std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  MatrixF w(n, k);
  for (auto& v : w.Flat()) v = static_cast<float>(rng.Normal(0, 0.05));
  return w;
}

TEST(LiquidQuantTest, PaperWraparoundExample) {
  // Section 4's worked example: q_u4 = 15, max = 119, min = -104, s = 15.
  // Naive bit-level addition overflows; Eq. 12 must recover 121.
  const std::uint8_t q_u4 = 15;
  const std::uint8_t s = 15;
  const std::uint8_t a = static_cast<std::uint8_t>(128 - 104);  // 2^7 + min
  EXPECT_EQ(LqqDequantElement(q_u4, s, a), 121);
}

TEST(LiquidQuantTest, ExhaustiveOverflowProof) {
  // For every group (min, max) pair within the protective range and every
  // INT8 value q in [min, max]: quantize to u4 with s = ceil((max-min)/15),
  // then check (1) q_u4*s <= 240 (multiplication stays in UINT8), (2)
  // q_u4*s + a <= 255 (addition stays in UINT8, Eq. 11), and (3) the XOR
  // recovers exactly q_u4*s + min as a signed INT8.
  for (int gmin = -119; gmin <= 119; ++gmin) {
    for (int gmax = gmin; gmax <= 119; ++gmax) {
      const int range = gmax - gmin;
      const int s = range == 0 ? 1 : (range + 14) / 15;
      ASSERT_LE(s, 16);
      const int a = 128 + gmin;
      ASSERT_GE(a, 0);
      ASSERT_LE(a, 255);
      // Check the extreme q values plus the rounding-critical midpoints.
      const int probes[] = {gmin, gmax, gmin + range / 2, gmin + range / 3};
      for (const int q : probes) {
        const int q_u8 = q - gmin;
        const int q_u4 = std::min((q_u8 + s / 2) / s, 15);
        const int prod = q_u4 * s;
        ASSERT_LE(prod, 240);
        ASSERT_LE(prod + a, 255) << "gmin=" << gmin << " gmax=" << gmax;
        const int expected = prod + gmin;  // the dequantized INT8 value
        ASSERT_GE(expected, -128);
        ASSERT_LE(expected, 127);
        ASSERT_EQ(LqqDequantElement(static_cast<std::uint8_t>(q_u4),
                                    static_cast<std::uint8_t>(s),
                                    static_cast<std::uint8_t>(a)),
                  expected);
      }
    }
  }
}

TEST(LiquidQuantTest, XorEqualsConditionalAdd128) {
  // Eq. 9/12: XOR 0x80 == adding (2x-1)*2^7 with x chosen per the proof.
  for (int v = 0; v <= 255; ++v) {
    const int xored = v ^ 0x80;
    const int expected = v >= 128 ? v - 128 : v + 128;
    EXPECT_EQ(xored, expected);
  }
}

TEST(LiquidQuantTest, GroupParamsInRange) {
  const MatrixF w = RandomWeights(32, 512, 1);
  const LqqWeights q = QuantizeWeightsLqq(w);
  for (const LqqGroupParams& p : q.group_params) {
    EXPECT_GE(p.scale, 1);
    EXPECT_LE(p.scale, 16);
    EXPECT_GE(p.offset, 9);    // 128 - 119
    EXPECT_LE(p.offset, 247);  // 128 + 119
  }
}

TEST(LiquidQuantTest, SecondLevelErrorBoundedByHalfScale) {
  // |dequant(quant(q_i8)) - q_i8| <= s/2 per element (nearest rounding).
  const MatrixF w = RandomWeights(16, 256, 2);
  const FirstLevelResult first = QuantizeFirstLevel(w);
  const LqqWeights q = QuantizeSecondLevelLqq(first);
  const MatrixI8 rec = DequantizeSecondLevelReference(q);
  for (std::size_t n = 0; n < q.n; ++n) {
    for (std::size_t k = 0; k < q.k; ++k) {
      const LqqGroupParams& p = q.Params(n, k / q.group_size);
      EXPECT_LE(std::abs(static_cast<int>(rec.At(n, k)) -
                         static_cast<int>(first.q.At(n, k))),
                (p.scale + 1) / 2)
          << n << "," << k;
    }
  }
}

TEST(LiquidQuantTest, FullPipelineReconstruction) {
  const MatrixF w = RandomWeights(16, 256, 3);
  const LqqWeights q = QuantizeWeightsLqq(w);
  const MatrixF rec = DequantizeWeightsLqq(q);
  // 4-bit group quantization of Gaussian data: relative error well under 10%.
  EXPECT_LT(RelativeFrobeniusError(w.Flat(), rec.Flat()), 0.10);
  EXPECT_GT(SignalToQuantNoiseDb(w.Flat(), rec.Flat()), 20.0);
}

TEST(LiquidQuantTest, ConstantGroupIsExact) {
  MatrixF w(1, 64);
  for (auto& v : w.Flat()) v = 0.25f;
  const LqqWeights q = QuantizeWeightsLqq(w);
  const MatrixF rec = DequantizeWeightsLqq(q);
  for (std::size_t k = 0; k < 64; ++k) {
    EXPECT_NEAR(rec.At(0, k), 0.25f, 0.25f / 119.0f);
  }
}

TEST(LiquidQuantTest, U4AccessorMatchesPackedRegisters) {
  const MatrixF w = RandomWeights(8, 128, 4);
  const LqqWeights q = QuantizeWeightsLqq(w);
  for (std::size_t n = 0; n < q.n; ++n) {
    for (std::size_t r = 0; r < q.RegistersPerRow(); ++r) {
      const auto lanes = UnpackNibblesInterleaved(q.Register(n, r));
      for (std::size_t j = 0; j < 8; ++j) {
        EXPECT_EQ(q.U4At(n, r * 8 + j), lanes[j]);
        EXPECT_LE(lanes[j], 15);
      }
    }
  }
}

TEST(LiquidQuantTest, StorageBytesAccounting) {
  const MatrixF w = RandomWeights(64, 512, 5);
  const LqqWeights q = QuantizeWeightsLqq(w);
  // 64*512 u4 = 16 KiB packed + (64*8 groups)*2 B + 64*4 B channel scales.
  EXPECT_EQ(q.StorageBytes(), 64u * 512 / 2 + 64 * 8 * 2 + 64 * 4);
}

// Property sweep: the pipeline invariants hold across group sizes and shapes.
struct LqqSweepParam {
  std::size_t n;
  std::size_t k;
  std::size_t group;
};

class LqqSweepTest : public ::testing::TestWithParam<LqqSweepParam> {};

TEST_P(LqqSweepTest, RoundTripAndRanges) {
  const auto [n, k, g] = GetParam();
  const MatrixF w = RandomWeights(n, k, 1000 + n * 7 + k);
  LqqOptions opt;
  opt.group_size = g;
  const LqqWeights q = QuantizeWeightsLqq(w, opt);
  EXPECT_EQ(q.GroupsPerRow(), k / g);
  const FirstLevelResult first = QuantizeFirstLevel(w);
  const MatrixI8 rec = DequantizeSecondLevelReference(q);
  for (std::size_t row = 0; row < n; ++row) {
    for (std::size_t col = 0; col < k; ++col) {
      const LqqGroupParams& p = q.Params(row, col / g);
      // Dequantized value within half a step of the first-level value and
      // inside INT8.
      EXPECT_LE(std::abs(static_cast<int>(rec.At(row, col)) -
                         static_cast<int>(first.q.At(row, col))),
                (p.scale + 1) / 2);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LqqSweepTest,
    ::testing::Values(LqqSweepParam{1, 64, 64}, LqqSweepParam{4, 128, 32},
                      LqqSweepParam{8, 256, 64}, LqqSweepParam{16, 256, 128},
                      LqqSweepParam{3, 192, 64}, LqqSweepParam{64, 512, 256},
                      LqqSweepParam{2, 64, 8}, LqqSweepParam{5, 320, 64}));

}  // namespace
}  // namespace liquid
