#include "core/quant/first_level.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace liquid {
namespace {

MatrixF RandomWeights(std::size_t n, std::size_t k, std::uint64_t seed,
                      double outlier_frac = 0.0) {
  Rng rng(seed);
  MatrixF w(n, k);
  auto vals = outlier_frac > 0 ? rng.OutlierTensor(n * k, 0.05, outlier_frac, 15.0)
                               : rng.GaussianTensor(n * k, 0.05);
  for (std::size_t i = 0; i < w.size(); ++i) w.Flat()[i] = vals[i];
  return w;
}

TEST(FirstLevelTest, ProtectiveRangeIsEnforced) {
  const MatrixF w = RandomWeights(16, 256, 1, 0.02);
  const FirstLevelResult q = QuantizeFirstLevel(w);
  for (const std::int8_t v : q.q.Flat()) {
    EXPECT_GE(v, -kProtectiveMax);
    EXPECT_LE(v, kProtectiveMax);
  }
}

TEST(FirstLevelTest, FullRangeWhenUnprotected) {
  MatrixF w(1, 4);
  w.At(0, 0) = 1.0f;
  w.At(0, 1) = -1.0f;
  w.At(0, 2) = 0.5f;
  w.At(0, 3) = 0.0f;
  FirstLevelOptions opt;
  opt.protective_range = false;
  const FirstLevelResult q = QuantizeFirstLevel(w, opt);
  EXPECT_EQ(q.q.At(0, 0), 127);
  EXPECT_EQ(q.q.At(0, 1), -127);
}

TEST(FirstLevelTest, MaxAbsElementHitsBound) {
  const MatrixF w = RandomWeights(8, 128, 2);
  const FirstLevelResult q = QuantizeFirstLevel(w);
  for (std::size_t n = 0; n < w.rows(); ++n) {
    int absmax = 0;
    for (const std::int8_t v : q.q.Row(n)) {
      absmax = std::max<int>(absmax, std::abs(static_cast<int>(v)));
    }
    EXPECT_EQ(absmax, kProtectiveMax) << "row " << n;
  }
}

TEST(FirstLevelTest, ReconstructionErrorWithinHalfStep) {
  const MatrixF w = RandomWeights(8, 128, 3);
  const FirstLevelResult q = QuantizeFirstLevel(w);
  const MatrixF rec = DequantizeFirstLevel(q);
  for (std::size_t n = 0; n < w.rows(); ++n) {
    const float half_step = q.channel_scale[n] * 0.5f * 1.0001f;
    for (std::size_t k = 0; k < w.cols(); ++k) {
      EXPECT_LE(std::fabs(rec.At(n, k) - w.At(n, k)), half_step);
    }
  }
}

TEST(FirstLevelTest, ZeroRowHasUnitScale) {
  MatrixF w(2, 8);  // all zeros
  const FirstLevelResult q = QuantizeFirstLevel(w);
  EXPECT_EQ(q.channel_scale[0], 1.0f);
  for (const std::int8_t v : q.q.Flat()) EXPECT_EQ(v, 0);
}

TEST(FirstLevelTest, SmoothingPreservesProduct) {
  // X * W^T must be unchanged by (X / s) * (W * s)^T.
  Rng rng(4);
  MatrixF x(4, 64);
  for (auto& v : x.Flat()) v = static_cast<float>(rng.Normal(0, 1));
  MatrixF w = RandomWeights(8, 64, 5);
  const auto smooth = ComputeSmoothScale(x, w, 0.5);

  // Direct dot product check on a few entries.
  MatrixF xs = x;
  MatrixF ws = w;
  SmoothActivations(xs, smooth);
  SmoothWeights(ws, smooth);
  for (std::size_t m = 0; m < 4; ++m) {
    for (std::size_t n = 0; n < 8; ++n) {
      double before = 0;
      double after = 0;
      for (std::size_t k = 0; k < 64; ++k) {
        before += static_cast<double>(x.At(m, k)) * w.At(n, k);
        after += static_cast<double>(xs.At(m, k)) * ws.At(n, k);
      }
      EXPECT_NEAR(after, before, 1e-3 * (std::fabs(before) + 1.0));
    }
  }
}

TEST(FirstLevelTest, SmoothingReducesActivationOutlierImpact) {
  // With activation outliers in a few columns, smoothing shifts difficulty
  // into the weights: post-smoothing activation absmax per column shrinks.
  Rng rng(6);
  MatrixF x(16, 64);
  for (auto& v : x.Flat()) v = static_cast<float>(rng.Normal(0, 1));
  for (std::size_t m = 0; m < 16; ++m) x.At(m, 7) *= 50.0f;  // outlier channel
  MatrixF w = RandomWeights(8, 64, 7);
  const auto smooth = ComputeSmoothScale(x, w, 0.5);
  EXPECT_GT(smooth[7], smooth[3]);
}

TEST(FirstLevelTest, AlphaSearchReturnsCandidate) {
  Rng rng(8);
  MatrixF x(8, 64);
  for (auto& v : x.Flat()) v = static_cast<float>(rng.Normal(0, 1));
  const MatrixF w = RandomWeights(8, 64, 9);
  const std::vector<double> grid{0.3, 0.5, 0.7};
  const double alpha = SearchSmoothAlpha(x, w, 64, grid);
  EXPECT_TRUE(alpha == 0.3 || alpha == 0.5 || alpha == 0.7);
}

TEST(ActivationQuantTest, PerTokenRoundTrip) {
  Rng rng(10);
  MatrixF x(8, 128);
  for (auto& v : x.Flat()) v = static_cast<float>(rng.Normal(0, 3));
  const QuantizedActivations q = QuantizeActivationsPerToken(x);
  const MatrixF rec = DequantizeActivations(q);
  for (std::size_t m = 0; m < x.rows(); ++m) {
    const float half_step = q.token_scale[m] * 0.5f * 1.0001f;
    for (std::size_t k = 0; k < x.cols(); ++k) {
      EXPECT_LE(std::fabs(rec.At(m, k) - x.At(m, k)), half_step);
    }
  }
}

TEST(ActivationQuantTest, ScalesArePerToken) {
  MatrixF x(2, 4);
  x.At(0, 0) = 127.0f;   // row 0 absmax 127 -> scale 1
  x.At(1, 0) = 254.0f;   // row 1 absmax 254 -> scale 2
  const QuantizedActivations q = QuantizeActivationsPerToken(x);
  EXPECT_FLOAT_EQ(q.token_scale[0], 1.0f);
  EXPECT_FLOAT_EQ(q.token_scale[1], 2.0f);
  EXPECT_EQ(q.q.At(0, 0), 127);
  EXPECT_EQ(q.q.At(1, 0), 127);
}

}  // namespace
}  // namespace liquid
