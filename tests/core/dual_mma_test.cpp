// Tests for the dual-MMA packed layout (paper Section 5.2, Figure 7b):
// provenance is a bijection, the reorder round-trips, and each thread's 32
// elements form one contiguous 16-byte chunk in a single quantization group.

#include "core/layout/dual_mma_layout.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace liquid {
namespace {

LqqWeights RandomLqq(std::size_t n, std::size_t k, std::uint64_t seed,
                     std::size_t group = 64) {
  Rng rng(seed);
  MatrixF w(n, k);
  for (auto& v : w.Flat()) v = static_cast<float>(rng.Normal(0, 0.05));
  LqqOptions opt;
  opt.group_size = group;
  return QuantizeWeightsLqq(w, opt);
}

TEST(DualMmaTest, ProvenanceIsBijection) {
  const auto prov = BuildDualMmaProvenance();
  ASSERT_EQ(prov.size(), static_cast<std::size_t>(kSupertileRegs));
  std::set<std::pair<int, int>> seen;
  for (const RegisterProvenance& p : prov) {
    for (const FragCoord& c : p.lane) {
      EXPECT_GE(c.row, 0);
      EXPECT_LT(c.row, kSupertileRows);
      EXPECT_GE(c.col, 0);
      EXPECT_LT(c.col, kSupertileCols);
      EXPECT_TRUE(seen.insert({c.row, c.col}).second);
    }
  }
  EXPECT_EQ(seen.size(),
            static_cast<std::size_t>(kSupertileRows * kSupertileCols));
}

TEST(DualMmaTest, RegisterLanesShareRowAndGroup) {
  // All 8 lanes of any packed register come from one row and one 32-wide
  // k-range — the precondition for single-(scale, offset) dequantization.
  const auto prov = BuildDualMmaProvenance();
  for (const RegisterProvenance& p : prov) {
    const int row = p.lane[0].row;
    const int col_block = p.lane[0].col / 32;
    for (const FragCoord& c : p.lane) {
      EXPECT_EQ(c.row, row);
      EXPECT_EQ(c.col / 32, col_block);
    }
  }
}

TEST(DualMmaTest, ThreadChunkCoversTwoMmas) {
  // Registers 0-1 of a thread read MMA1 columns (0..31), registers 2-3 read
  // MMA2 columns (32..63) — the "dual" in dual-MMA.
  for (int t = 0; t < kWgThreads; ++t) {
    for (int reg = 0; reg < kRegsPerThread; ++reg) {
      for (int lane = 0; lane < 8; ++lane) {
        const FragCoord c = DualMmaLaneCoord(t, reg, lane);
        if (reg < 2) {
          EXPECT_LT(c.col, 32);
        } else {
          EXPECT_GE(c.col, 32);
        }
      }
    }
  }
}

TEST(DualMmaTest, PackUnpackRoundTrip) {
  const LqqWeights w = RandomLqq(128, 256, 1);
  const DualMmaPackedWeights packed = PackDualMma(w);
  const auto u4 = UnpackDualMmaToU4(packed);
  for (std::size_t n = 0; n < w.n; ++n) {
    for (std::size_t k = 0; k < w.k; ++k) {
      ASSERT_EQ(u4[n * w.k + k], w.U4At(n, k)) << n << "," << k;
    }
  }
}

TEST(DualMmaTest, TileCountAndSize) {
  const LqqWeights w = RandomLqq(192, 128, 2);
  const DualMmaPackedWeights packed = PackDualMma(w);
  EXPECT_EQ(packed.TilesN(), 3u);
  EXPECT_EQ(packed.TilesK(), 2u);
  EXPECT_EQ(packed.regs.size(), 3u * 2u * kSupertileRegs);
  // One supertile = 2 KiB of SMEM (512 registers).
  EXPECT_EQ(static_cast<int>(packed.Tile(0, 0).size()), kSupertileRegs);
}

TEST(DualMmaTest, GroupParamsPreserved) {
  const LqqWeights w = RandomLqq(64, 128, 3);
  const DualMmaPackedWeights packed = PackDualMma(w);
  ASSERT_EQ(packed.group_params.size(), w.group_params.size());
  for (std::size_t i = 0; i < w.group_params.size(); ++i) {
    EXPECT_EQ(packed.group_params[i].scale, w.group_params[i].scale);
    EXPECT_EQ(packed.group_params[i].offset, w.group_params[i].offset);
  }
}

TEST(DualMmaTest, GroupSize32Works) {
  // The smallest group size whose boundaries align with MMA fragments.
  const LqqWeights w = RandomLqq(64, 64, 4, /*group=*/32);
  const DualMmaPackedWeights packed = PackDualMma(w);
  const auto u4 = UnpackDualMmaToU4(packed);
  for (std::size_t n = 0; n < w.n; ++n) {
    for (std::size_t k = 0; k < w.k; ++k) {
      ASSERT_EQ(u4[n * w.k + k], w.U4At(n, k));
    }
  }
}

}  // namespace
}  // namespace liquid
