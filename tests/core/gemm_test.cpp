// End-to-end numerical tests of the functional GEMM kernels: every quantized
// path against the FP32 reference, the integer paths against exact integer
// recomputation, and the dual-MMA layout path against the linear path
// (bit-identical, since they dequantize the same registers).

#include "core/gemm/gemm.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace liquid {
namespace {

struct Problem {
  MatrixF x;
  MatrixF w;
};

Problem MakeProblem(std::size_t m, std::size_t n, std::size_t k,
                    std::uint64_t seed) {
  Rng rng(seed);
  Problem p{MatrixF(m, k), MatrixF(n, k)};
  for (auto& v : p.x.Flat()) v = static_cast<float>(rng.Normal(0, 1.0));
  for (auto& v : p.w.Flat()) v = static_cast<float>(rng.Normal(0, 0.05));
  return p;
}

// Quantized GEMM vs FP32 reference: relative Frobenius error bounds chosen
// from the precision of each path.  Group-wise 4-bit weights on Gaussian data
// give ~20 dB SQNR, i.e. ~10% relative error before dot-product averaging.
constexpr double kTolW8A8 = 0.02;
constexpr double kTolW4A8 = 0.15;
constexpr double kTolW4A16 = 0.13;
constexpr double kTolFp16 = 0.005;

TEST(GemmTest, ReferenceMatchesHandComputed) {
  MatrixF x(2, 3);
  MatrixF w(2, 3);
  // x = [[1,2,3],[4,5,6]], w = [[1,0,1],[0,1,0]]
  float xv[] = {1, 2, 3, 4, 5, 6};
  float wv[] = {1, 0, 1, 0, 1, 0};
  std::copy(xv, xv + 6, x.Flat().begin());
  std::copy(wv, wv + 6, w.Flat().begin());
  const MatrixF y = GemmReference(x, w);
  EXPECT_FLOAT_EQ(y.At(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(y.At(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(y.At(1, 0), 10.0f);
  EXPECT_FLOAT_EQ(y.At(1, 1), 5.0f);
}

TEST(GemmTest, Fp16CloseToReference) {
  const Problem p = MakeProblem(8, 64, 128, 1);
  const MatrixF ref = GemmReference(p.x, p.w);
  const MatrixF y = GemmFp16(p.x, p.w);
  EXPECT_LT(RelativeFrobeniusError(ref.Flat(), y.Flat()), kTolFp16);
}

TEST(GemmTest, W8A8CloseToReference) {
  const Problem p = MakeProblem(8, 64, 128, 2);
  const MatrixF ref = GemmReference(p.x, p.w);
  const auto wq = QuantizeWeightsW8A8(p.w);
  const auto xq = QuantizeActivationsPerToken(p.x);
  const MatrixF y = GemmW8A8(xq, wq);
  EXPECT_LT(RelativeFrobeniusError(ref.Flat(), y.Flat()), kTolW8A8);
}

TEST(GemmTest, W4A8LiquidCloseToReference) {
  const Problem p = MakeProblem(8, 64, 256, 3);
  const MatrixF ref = GemmReference(p.x, p.w);
  const MatrixF y = LiquidGemm(p.x, QuantizeWeightsLqq(p.w));
  EXPECT_LT(RelativeFrobeniusError(ref.Flat(), y.Flat()), kTolW4A8);
}

TEST(GemmTest, W4A8QserveCloseToReference) {
  const Problem p = MakeProblem(8, 64, 256, 4);
  const MatrixF ref = GemmReference(p.x, p.w);
  const auto wq = QuantizeWeightsQserve(p.w);
  const auto xq = QuantizeActivationsPerToken(p.x);
  const MatrixF y = GemmW4A8Qserve(xq, wq);
  EXPECT_LT(RelativeFrobeniusError(ref.Flat(), y.Flat()), kTolW4A8);
}

TEST(GemmTest, W4A16CloseToReference) {
  const Problem p = MakeProblem(8, 64, 256, 5);
  const MatrixF ref = GemmReference(p.x, p.w);
  const auto wq = QuantizeWeightsW4A16(p.w);
  const MatrixF y = GemmW4A16(p.x, wq);
  EXPECT_LT(RelativeFrobeniusError(ref.Flat(), y.Flat()), kTolW4A16);
}

TEST(GemmTest, LiquidGemmExactlyMatchesIntegerRecomputation) {
  // The W4A8 kernel is *deterministic integer math*: recomputing the INT32
  // accumulation from the dequantized reference weights must reproduce the
  // output bit-for-bit (modulo the final float scaling, which is identical).
  const Problem p = MakeProblem(4, 8, 128, 6);
  const LqqWeights wq = QuantizeWeightsLqq(p.w);
  const QuantizedActivations xq = QuantizeActivationsPerToken(p.x);
  const MatrixF y = GemmW4A8Liquid(xq, wq);
  const MatrixI8 wref = DequantizeSecondLevelReference(wq);
  for (std::size_t m = 0; m < 4; ++m) {
    for (std::size_t n = 0; n < 8; ++n) {
      std::int32_t acc = 0;
      for (std::size_t k = 0; k < 128; ++k) {
        acc += static_cast<std::int32_t>(xq.q.At(m, k)) * wref.At(n, k);
      }
      const float expect = static_cast<float>(acc) * xq.token_scale[m] *
                           wq.channel_scale[n];
      EXPECT_EQ(y.At(m, n), expect) << m << "," << n;
    }
  }
}

TEST(GemmTest, DualMmaPathBitIdenticalToLinearPath) {
  const Problem p = MakeProblem(8, 128, 256, 7);
  const LqqWeights wq = QuantizeWeightsLqq(p.w);
  const DualMmaPackedWeights packed = PackDualMma(wq);
  const QuantizedActivations xq = QuantizeActivationsPerToken(p.x);
  const MatrixF linear = GemmW4A8Liquid(xq, wq);
  const MatrixF dual = GemmW4A8LiquidDualMma(xq, packed);
  ASSERT_EQ(linear.rows(), dual.rows());
  ASSERT_EQ(linear.cols(), dual.cols());
  for (std::size_t i = 0; i < linear.size(); ++i) {
    ASSERT_EQ(linear.Flat()[i], dual.Flat()[i]) << "flat index " << i;
  }
}

TEST(GemmTest, LiquidBeatsNothingButMatchesQserveAccuracyClass) {
  // Both W4A8 schemes should land in the same accuracy class on the same
  // problem (the paper's claim that LQQ does not sacrifice accuracy).
  const Problem p = MakeProblem(16, 64, 512, 8);
  const MatrixF ref = GemmReference(p.x, p.w);
  const auto xq = QuantizeActivationsPerToken(p.x);
  const MatrixF y_lqq = GemmW4A8Liquid(xq, QuantizeWeightsLqq(p.w));
  const MatrixF y_qs = GemmW4A8Qserve(xq, QuantizeWeightsQserve(p.w));
  const double e_lqq = RelativeFrobeniusError(ref.Flat(), y_lqq.Flat());
  const double e_qs = RelativeFrobeniusError(ref.Flat(), y_qs.Flat());
  EXPECT_LT(e_lqq, 1.5 * e_qs + 1e-6);
}

TEST(GemmTest, ShapeMismatchesThrowInEveryBuildType) {
  // These used to be plain asserts, which vanish under -DNDEBUG and turn a
  // shape bug into a silent out-of-bounds read.  They must throw in Release.
  const Problem p = MakeProblem(4, 8, 64, 20);
  const auto xq = QuantizeActivationsPerToken(p.x);

  // K mismatch between activations and weights.
  const Problem wrong = MakeProblem(4, 8, 128, 21);
  EXPECT_THROW(GemmReference(p.x, wrong.w), std::invalid_argument);
  EXPECT_THROW(GemmW8A8(xq, QuantizeWeightsW8A8(wrong.w)),
               std::invalid_argument);
  EXPECT_THROW(GemmW4A8Liquid(xq, QuantizeWeightsLqq(wrong.w)),
               std::invalid_argument);
  EXPECT_THROW(GemmW4A8Qserve(xq, QuantizeWeightsQserve(wrong.w)),
               std::invalid_argument);
  EXPECT_THROW(GemmW4A16(p.x, QuantizeWeightsW4A16(wrong.w, 64)),
               std::invalid_argument);

  // Quantizer preconditions: K not a multiple of group_size, bad group sizes.
  EXPECT_THROW(QuantizeWeightsW4A16(p.w, 48), std::invalid_argument);
  EXPECT_THROW(QuantizeWeightsLqq(p.w, {48}), std::invalid_argument);
  EXPECT_THROW(QuantizeWeightsLqq(p.w, {12}), std::invalid_argument);  // %8
  EXPECT_THROW(QuantizeWeightsQserve(p.w, {0}), std::invalid_argument);
}

TEST(GemmTest, W4A16ZeroPointIsOnTheQuantizationGrid) {
  // The stored zero must be zero_q * scale for an integer zero_q in [0, 15] —
  // i.e. snapped to the quantization grid — so dequantization is exactly
  // (q - zero_q) * scale with no off-grid residual.
  const Problem p = MakeProblem(1, 32, 256, 22);
  const auto wq = QuantizeWeightsW4A16(p.w, 64);
  for (std::size_t i = 0; i < wq.group_zero.size(); ++i) {
    const float s = static_cast<float>(wq.group_scale[i]);
    const float z = static_cast<float>(wq.group_zero[i]);
    ASSERT_GT(s, 0.0f);
    const float ratio = z / s;
    // Half rounding of zero_q * scale perturbs the ratio by at most
    // ~2^-11 * 15 ≈ 0.008.
    EXPECT_NEAR(ratio, std::nearbyint(ratio), 0.01f) << "group " << i;
    EXPECT_GE(std::nearbyint(ratio), 0.0f);
    EXPECT_LE(std::nearbyint(ratio), 15.0f);
  }
  // Grid-snapped zero must not hurt reconstruction: every weight within half a
  // quantization step (plus Half rounding slack) of its dequantized value.
  float max_err = 0.0f;
  for (std::size_t row = 0; row < wq.n; ++row) {
    for (std::size_t col = 0; col < wq.k; ++col) {
      const std::size_t gi = col / wq.group_size;
      const float s = static_cast<float>(
          wq.group_scale[row * (wq.k / wq.group_size) + gi]);
      const float err = std::abs(wq.Dequant(row, col) - p.w.At(row, col));
      max_err = std::max(max_err, err / std::max(s, 1e-20f));
    }
  }
  EXPECT_LT(max_err, 0.56f);  // 0.5 quantization + Half rounding slack
}

struct GemmShapeParam {
  std::size_t m;
  std::size_t n;
  std::size_t k;
};

class GemmShapeSweep : public ::testing::TestWithParam<GemmShapeParam> {};

TEST_P(GemmShapeSweep, AllPathsTrackReference) {
  const auto [m, n, k] = GetParam();
  const Problem p = MakeProblem(m, n, k, 100 + m + n + k);
  const MatrixF ref = GemmReference(p.x, p.w);
  const auto xq = QuantizeActivationsPerToken(p.x);

  const MatrixF w8 = GemmW8A8(xq, QuantizeWeightsW8A8(p.w));
  EXPECT_LT(RelativeFrobeniusError(ref.Flat(), w8.Flat()), kTolW8A8);

  const MatrixF w4 = GemmW4A8Liquid(xq, QuantizeWeightsLqq(p.w));
  EXPECT_LT(RelativeFrobeniusError(ref.Flat(), w4.Flat()), kTolW4A8);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeSweep,
    ::testing::Values(GemmShapeParam{1, 64, 64},    // GEMV-like decode
                      GemmShapeParam{4, 64, 128},   // small batch
                      GemmShapeParam{16, 128, 256},
                      GemmShapeParam{64, 64, 192},  // non-square K
                      GemmShapeParam{3, 96, 320},   // odd M, N
                      GemmShapeParam{128, 64, 64}));

}  // namespace
}  // namespace liquid
